package mamut

import "testing"

func TestFacadeDefaults(t *testing.T) {
	if DefaultPlatform().PhysicalCores() != 16 {
		t.Error("default platform wrong")
	}
	if err := func() error { m := DefaultEncoderModel(); return m.Validate() }(); err != nil {
		t.Error(err)
	}
	if DefaultCatalog().Len() != 9 {
		t.Error("default catalog wrong")
	}
	if TargetFPS != 24 {
		t.Error("target FPS wrong")
	}
}

func TestNewControllerAllApproaches(t *testing.T) {
	for _, a := range []Approach{ApproachHeuristic, ApproachMonoAgent, ApproachMAMUT} {
		c, err := NewController(a, HR, 1)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if c.Name() != string(a) {
			t.Errorf("name %q != %q", c.Name(), a)
		}
	}
	if _, err := NewController("bogus", HR, 1); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestSimulationQuickstartFlow(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddStream(StreamConfig{Sequence: "Kimono", Approach: ApproachMAMUT, Frames: 300, CollectTrace: true}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddStream(StreamConfig{Sequence: "BQMall", Frames: 300}); err != nil {
		t.Fatal(err)
	}
	if sim.Streams() != 2 {
		t.Fatalf("streams = %d", sim.Streams())
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	if res.Sessions[0].Frames != 300 || res.Sessions[1].Frames != 300 {
		t.Error("frame budgets not honoured")
	}
	if len(res.Sessions[0].Trace) != 300 {
		t.Error("trace not collected")
	}
	if res.AvgPowerW <= DefaultPlatform().IdlePowerW {
		t.Error("power not above idle")
	}
}

func TestSimulationValidation(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddStream(StreamConfig{Frames: 10}); err == nil {
		t.Error("empty sequence accepted")
	}
	if err := sim.AddStream(StreamConfig{Sequence: "NoSuchVideo", Frames: 10}); err == nil {
		t.Error("unknown sequence accepted")
	}
	if err := sim.AddStream(StreamConfig{Sequence: "Kimono", Frames: 0}); err == nil {
		t.Error("zero frames accepted")
	}
	if err := sim.AddStream(StreamConfig{Sequence: "Kimono", Frames: 10, Approach: "bogus"}); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() float64 {
		sim, err := NewSimulation(SimulationConfig{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.AddStream(StreamConfig{Sequence: "Cactus", Frames: 200}); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.EnergyJ
	}
	if run() != run() {
		t.Error("same-seed simulations diverged")
	}
}

func TestSimulationStreamArrival(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddStream(StreamConfig{Sequence: "Kimono", Frames: 100}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddStream(StreamConfig{Sequence: "BQMall", Frames: 50, StartAtSec: 5, CollectTrace: true}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[1].Trace[0].Time < 5 {
		t.Errorf("late stream started at %.2fs, want >= 5", res.Sessions[1].Trace[0].Time)
	}
}

func TestScenarioWorkloadReexports(t *testing.T) {
	if len(ScenarioIWorkloads()) != 13 || len(ScenarioIIWorkloads()) != 9 {
		t.Error("workload lists wrong")
	}
	opts := QuickExperimentOptions()
	if opts.Repetitions >= DefaultExperimentOptions().Repetitions {
		t.Error("quick options not quicker")
	}
}

func TestRunServiceFacade(t *testing.T) {
	cfg := ServeConfig{
		Servers:  2,
		Policy:   PolicyPowerAware,
		Approach: ApproachHeuristic,
		Workload: ServeWorkload{
			ArrivalRate:    0.3,
			DurationSec:    60,
			MeanSessionSec: 15,
		},
		WarmupSec: 15,
		Seed:      4,
	}
	res, err := RunService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || len(res.Servers) != 2 {
		t.Fatalf("implausible service result: %+v", res)
	}
	if res.Policy != PolicyPowerAware {
		t.Errorf("result policy %q", res.Policy)
	}
	cells, err := RunServiceGrid(ServeGridSpec{
		Base:     cfg,
		Policies: ServePolicyNames(),
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(ServePolicyNames()) {
		t.Fatalf("grid returned %d cells", len(cells))
	}
	for i, c := range cells {
		if c.Policy != ServePolicyNames()[i] || c.Result == nil {
			t.Errorf("cell %d malformed: %+v", i, c)
		}
	}
}
