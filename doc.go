// Package mamut is a Go reproduction of "MAMUT: Multi-Agent Reinforcement
// Learning for Efficient Real-Time Multi-User Video Transcoding" (Costero,
// Iranfar, Zapater, Igual, Olcoz, Atienza - DATE 2019).
//
// MAMUT manages a multi-user HEVC transcoding server at run time. For each
// video stream three cooperating Q-learning agents each own one knob - the
// HEVC quantization parameter (AGqp), the number of WPP encoding threads
// (AGthread) and the per-core DVFS frequency (AGdvfs) - and share a
// discrete state space built from the four observables PSNR, power,
// bitrate and throughput. The goal is real-time throughput (24 FPS) and
// high quality under user-bandwidth and server-power constraints.
//
// Because this repository must run anywhere, the paper's physical testbed
// (Kvazaar encoder on a dual Xeon E5-2667 v4 with per-core DVFS) is
// replaced by calibrated analytic models with the same response surfaces;
// see DESIGN.md for the substitution table and calibration anchors. The
// controllers themselves - MAMUT and both baselines - are implemented
// exactly as the paper describes.
//
// This package is the public facade. It re-exports the key types and
// provides convenience constructors; the implementation lives under
// internal/:
//
//   - internal/core: the MAMUT controller (agents, schedule, rewards,
//     Algorithm 1 cooperative exploitation)
//   - internal/baseline: the mono-agent QL and heuristic baselines
//   - internal/rl: tabular Q-learning machinery (eq. 3 learning rate,
//     per-state phases, empirical transition model)
//   - internal/hevc, internal/platform, internal/video: the simulated
//     substrates
//   - internal/transcode: the event-scheduled multi-session engine (see
//     below)
//   - internal/experiments: everything needed to regenerate the paper's
//     figures and tables
//   - internal/serve: the continuous-serving layer (see below)
//
// # Simulation core
//
// The engine simulates all sessions of one server as an indexed event
// scheduler. Active sessions share one contention scale (and thermal
// throttle factor), so service rates only ever rescale uniformly; the
// engine exploits this by keeping a virtual service clock that advances
// at scale*throttle times real time, and a min-heap of pending frame
// completions keyed by virtual time that never needs re-keying. A frame
// event — completion, controller decision, next-frame admission — costs
// O(log n) in the number of active sessions; aggregate contention state
// and package power are maintained incrementally (platform.LoadAccount),
// and per-session dynamic energy integrates lazily against the virtual
// clock. Sessions have a live lifecycle: Simulation.AddStream works
// mid-run, Simulation.AdvanceTo steps the simulation to an absolute time
// for interleaving with outer event loops, and Simulation.OnStreamEnd
// delivers explicit departure notifications (a hook may add new streams,
// modelling continuous churn).
//
// # Serving layer
//
// Beyond the paper's fixed stream mixes, the serving layer runs the
// system as a continuously loaded service: a workload generator emits
// session arrivals (Poisson with a configurable HR/LR mix and
// exponential session lengths, optionally shaped by a diurnal or ramp
// load curve, or replayed from a deterministic trace), a dispatcher
// places each arrival on one server of a simulated fleet under a
// pluggable placement policy (round-robin, least-loaded, or
// power/thermal-aware) with per-server admission limits, and
// steady-state service metrics — per-class real-time SLO attainment,
// rejection rate, fleet power, per-server utilization — are aggregated
// over a measurement window after warm-up. The fleet runs as one
// event-interleaved simulation: every server engine is stepped to each
// arrival instant before the placement decision, so the dispatcher
// observes actual, contention-stretched session departures rather than
// nominal session lengths. Entry points: RunService for one run,
// RunServiceGrid for (policy x arrival-rate x seed) sweeps, and
// cmd/mamut-serve on the command line. After the last arrival the
// engines drain across the experiment scheduler's worker pool; results
// are bit-identical for any worker count.
//
// # Fleet-scale dispatch
//
// The dispatcher itself is indexed, so fleets of thousands of servers
// place arrivals in O(log n): engines expose the wall-clock time of
// their next pending event (NextEventTime — exact, because the engine
// settles energy/thermal/virtual-clock integration at events rather
// than at clock parks), a min-heap keyed by those times advances only
// the servers with events due before each arrival — idle engines are
// never touched — and per-server dispatch state (occupancy, estimated
// power) is maintained incrementally on admission and departure instead
// of being rebuilt per arrival. The built-in policies place through
// incremental fleet indexes (PlacementFleetIndexer): round-robin from
// its cursor, least-loaded from an occupancy bucket queue, power-aware
// from a power-headroom heap, each reproducing its O(n) scan — the same
// comparisons on the same floats, ties to the lowest server index. The
// scan dispatcher is retained (DispatchScan) as the semantic reference;
// equivalence tests and a CI golden pin the two paths byte-identical.
// BenchmarkFleetScale tracks the per-arrival cost: near-flat from 10 to
// 5000 servers, where the seed's O(servers) sweep grew linearly.
//
// # Sharded fleet dispatch
//
// Indexing removes the O(servers) placement cost; what remains serial
// is advancing the engine simulations themselves, and that
// parallelises. ServeConfig.Shards splits the fleet across per-shard
// dispatcher goroutines (server i belongs to shard i mod S) in a phased
// design: each shard exclusively owns its servers' engines, its
// partition of the engine event heap, and buffers for departures and
// knowledge harvests; the coordinator runs the arrival/epoch clock
// serially and, at each sweep, opens a barrier under which due shards
// advance their disjoint engines concurrently, then reconciles the
// buffers in shard-ID order before any placement decision. Shared state
// — the KnowledgeStore, global accounting, streaming aggregates, policy
// fleet indexes — is only ever touched in the serial phase, so no locks
// exist anywhere. Determinism is by construction: the shard heaps
// exactly partition the global heap (every engine sees the identical
// AdvanceTo sequence), departure folds sort by arrival ID (erasing the
// merge order), and the policy indexes are layout-independent — so
// Shards=S output is byte-identical to Shards<=1 for every policy, both
// dispatchers, knowledge reuse and full elasticity (equivalence tests,
// race-detector stress and CI goldens pin this). cmd/mamut-fleetbench
// measures ns/arrival across (fleet size x shard count) and writes a
// machine-readable artifact stamped with the measuring environment;
// SplitArrivals is the workload-side counterpart, dealing one arrival
// stream into interleaved per-region substreams.
//
// # Queued admission
//
// With ServeConfig.Queue the fleet stops dropping arrivals that find no
// capacity: the arrival path is an explicit admission pipeline with a
// bounded fleet-level waiting room. Each decision point — every
// arrival, every elastic epoch, and a final pass at the workload
// horizon — first syncs the fleet (step engines, fold departures), then
// drops queue entries whose per-entry deadline passed, then re-attempts
// admission for the waiting entries against the freed capacity: FIFO
// within a configurable resolution-class priority order (HR-first by
// default), strictly head-of-line, with draining servers admitting
// nothing. The outcome taxonomy splits four ways — admitted, queued
// (then re-admitted or deadline-dropped), and rejected, which keeps
// meaning capacity-rejected only (queue full, or queueing off) — so
// Offered == Admitted + Rejected + QueueDropped always holds, and
// latency becomes a first-class metric: queue-wait and
// time-to-first-frame p50/p95/p99 stream through the same fixed-bin
// sketches as FPS, with a time-decayed recent-backlog view alongside.
// Policies can observe the backlog (queue depth, capacity, oldest wait)
// through the optional ServeBacklogObserver extension. The pipeline
// runs entirely in the dispatcher's serial phase, so queued runs stay
// bit-identical across worker counts, both dispatchers and all shard
// counts — and with the queue off the dispatcher byte-reproduces the
// pre-queue output. Under a burst workload (ServeWorkload LoadBurst —
// a flash-crowd spike window) the deadline-bounded queue strictly beats
// drop-on-full on completed and SLO-attained sessions at equal fleet
// size, because capacity that frees after the spike serves arrivals
// drop-on-full lost forever (test-pinned).
//
// # Cross-session knowledge reuse
//
// Short-lived sessions are where a real transcoding service lives — and
// where from-scratch Q-learning fails: a 60-second session (~1440
// frames) barely finishes exploring. With ServeConfig.KnowledgeReuse
// the fleet shares learned knowledge across sessions, following the
// paper's KaaS follow-up line of work: when a session departs during
// the arrival phase, its three agents' Q-tables, visit counts and
// transition models are folded into a per-resolution-class
// KnowledgeStore with count-weighted averaging, and every later
// admission seeds its fresh controller from the accumulated snapshot.
// The eq. (3) learning-rate machinery then does the rest — states whose
// pooled visit counts push every action's learning rate below the phase
// thresholds start directly in exploitation, so warm sessions spend
// their short lives applying learned settings instead of re-exploring.
//
// Knowledge folding is deterministic by construction: contributions
// fold in arrival-ID order at the event-interleaved departure instants
// (pinning the floating-point fold sequence), and departures during the
// post-arrival drain phase are never folded — no admission could
// observe them, and excluding them keeps the drain embarrassingly
// parallel, so knowledge-reuse runs stay bit-identical for any worker
// count. Warm-started sessions contribute deltas — the seed-time counts
// are subtracted at harvest, so the pool grows linearly with genuinely
// gathered experience instead of re-compounding the seed each
// generation. Warm starts apply only to the MAMUT approach (the
// baselines have no tables worth sharing); classes without a prior
// departure start cold.
//
// # Quick start
//
//	sim, err := mamut.NewSimulation(mamut.SimulationConfig{Seed: 1})
//	if err != nil { ... }
//	err = sim.AddStream(mamut.StreamConfig{
//		Sequence: "Kimono",
//		Approach: mamut.ApproachMAMUT,
//		Frames:   2000,
//	})
//	result, err := sim.Run()
//
// See examples/ for runnable programs and cmd/mamut-experiments for the
// harness that regenerates every table and figure of the paper.
package mamut
