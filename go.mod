module mamut

go 1.24
