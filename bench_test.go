package mamut

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md S4 for the experiment index), plus the
// DESIGN.md S5 ablations and micro-benchmarks of the hot paths.
//
// The per-figure benchmarks run scaled-down windows so an iteration stays
// in the seconds range; cmd/mamut-experiments regenerates the full-scale
// numbers recorded in EXPERIMENTS.md. Key experiment outputs are attached
// to each benchmark via b.ReportMetric, so `go test -bench=.` doubles as a
// smoke reproduction: delta(%) orderings and watt levels are visible next
// to the timing.

import (
	"fmt"
	"math/rand"
	"testing"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/rl"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// benchOptions are small enough for benchmark iterations; the RL managers
// are only partially converged at this horizon.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Repetitions = 1
	o.WarmupFrames = 4000
	o.MeasureFrames = 2000
	return o
}

// BenchmarkFigure2Characterization regenerates the Fig. 2 operating-point
// sweep: RD curves plus power/throughput over threads x QP.
func BenchmarkFigure2Characterization(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2Sweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(experiments.Fig2Threads)*len(experiments.Fig2QPs) {
			b.Fatalf("points = %d", len(points))
		}
		if i == b.N-1 {
			// Report the paper's anchor points.
			for _, p := range points {
				if p.Threads == 10 && p.QP == 37 {
					b.ReportMetric(p.FPS, "fps@10t_qp37")
				}
				if p.Threads == 1 && p.QP == 32 {
					b.ReportMetric(p.FPS, "fps@1t_qp32")
				}
			}
		}
	}
}

// BenchmarkFigure4ScenarioI regenerates the Fig. 4 sweep (homogeneous
// 1..5 HR and 1..8 LR workloads, three approaches each) at benchmark
// scale.
func BenchmarkFigure4ScenarioI(b *testing.B) {
	opts := benchOptions()
	// A representative subset of the 13 workloads keeps iterations short.
	workloads := []experiments.WorkloadSpec{
		{Name: "1HR", HR: 1}, {Name: "3HR", HR: 3}, {Name: "4LR", LR: 4},
	}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunScenario(workloads, experiments.ScenarioI, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if r, ok := results[0].Get(experiments.MAMUT); ok {
				b.ReportMetric(r.DeltaPct, "mamut_delta_1HR")
				b.ReportMetric(r.Watts, "mamut_watts_1HR")
			}
			if r, ok := results[0].Get(experiments.Heuristic); ok {
				b.ReportMetric(r.DeltaPct, "heur_delta_1HR")
			}
		}
	}
}

// BenchmarkFigure5Trace regenerates the Fig. 5 execution trace (500 frames
// of MAMUT on one HR stream after warm-up).
func BenchmarkFigure5Trace(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Trace(opts, 500)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trace) != 500 {
			b.Fatal("trace truncated")
		}
	}
}

// BenchmarkTableIAverages regenerates Table I (average threads and
// frequency per approach and resolution class) from a Scenario I run.
func BenchmarkTableIAverages(b *testing.B) {
	opts := benchOptions()
	workloads := []experiments.WorkloadSpec{{Name: "2HR", HR: 2}, {Name: "2LR", LR: 2}}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunScenario(workloads, experiments.ScenarioI, opts)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.TableI(results)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Approach == experiments.MAMUT {
					b.ReportMetric(r.HRNth, "mamut_HR_Nth")
					b.ReportMetric(r.HRFreq, "mamut_HR_GHz")
				}
				if r.Approach == experiments.Heuristic {
					b.ReportMetric(r.HRFreq, "heur_HR_GHz")
				}
			}
		}
	}
}

// BenchmarkTableIIScenarioII regenerates Table II rows (mixed HR/LR
// batches with playlist churn) at benchmark scale.
func BenchmarkTableIIScenarioII(b *testing.B) {
	opts := benchOptions()
	workloads := []experiments.WorkloadSpec{
		{Name: "1HR1LR", HR: 1, LR: 1}, {Name: "2HR2LR", HR: 2, LR: 2},
	}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunScenario(workloads, experiments.ScenarioII, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if r, ok := results[1].Get(experiments.MAMUT); ok {
				b.ReportMetric(r.DeltaPct, "mamut_delta_2HR2LR")
				b.ReportMetric(r.Watts, "mamut_watts_2HR2LR")
			}
			if r, ok := results[1].Get(experiments.Heuristic); ok {
				b.ReportMetric(r.Watts, "heur_watts_2HR2LR")
			}
		}
	}
}

// BenchmarkLearningTime regenerates the SV-B learning-time comparison
// (mono-agent joint space vs MAMUT's decomposed spaces).
func BenchmarkLearningTime(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LearningTime(opts, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.MAMUTAllExploit), "mamut_frames")
			b.ReportMetric(float64(res.MonoWideFirstExploit), "monoWide_frames")
			b.ReportMetric(res.WideRatio, "ratio")
		}
	}
}

// benchAblation runs one named DESIGN.md S5 variant.
func benchAblation(b *testing.B, name string) {
	opts := benchOptions()
	var variant experiments.AblationVariant
	for _, v := range experiments.DefaultAblations() {
		if v.Name == name {
			variant = v
		}
	}
	if variant.Name == "" {
		b.Fatalf("unknown ablation %s", name)
	}
	w := experiments.WorkloadSpec{Name: "2HR1LR", HR: 2, LR: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(w, opts, []experiments.AblationVariant{variant})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res[0].DeltaPct, "delta_pct")
			b.ReportMetric(res[0].Watts, "watts")
		}
	}
}

// BenchmarkAblationCooperation disables Algorithm 1's expected-Q chain.
func BenchmarkAblationCooperation(b *testing.B) { benchAblation(b, "no-cooperation") }

// BenchmarkAblationLearningRate removes the cross-agent term of eq. (3).
func BenchmarkAblationLearningRate(b *testing.B) { benchAblation(b, "no-alpha-coupling") }

// BenchmarkAblationPeriods replaces the 24/12/6 schedule with uniform 6s.
func BenchmarkAblationPeriods(b *testing.B) { benchAblation(b, "uniform-periods") }

// BenchmarkEngineFrameThroughput measures the simulator's raw speed:
// simulated frames per second of wall time for a 4-stream workload.
func BenchmarkEngineFrameThroughput(b *testing.B) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	for i := 0; i < b.N; i++ {
		eng, err := transcode.NewEngine(spec, model, 1)
		if err != nil {
			b.Fatal(err)
		}
		set := transcode.Settings{QP: 32, Threads: 8, FreqGHz: 2.9}
		for s := 0; s < 4; s++ {
			seq := &video.Sequence{Name: "bench", Res: video.HR, Frames: 1 << 30, FrameRate: 24,
				BaseComplexity: 1, Dynamism: 0.4, MeanSceneLen: 90}
			src, err := video.NewGenerator(seq, rand.New(rand.NewSource(int64(s))))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.AddSession(transcode.SessionConfig{
				Source: src, Controller: &transcode.Static{S: set},
				Initial: set, FrameBudget: 2500,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*10000/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkEngineManySessions tracks the per-frame scheduling cost as the
// number of simultaneous sessions on one engine grows. The event-scheduled
// core pays O(log n) per frame event (heap pop/push plus incremental load
// accounting), so per-frame cost should stay near-flat as the session
// count grows; the pre-refactor linear scan paid O(n) per event and grew
// ~2.7x from 20 to 100 sessions. The serving subsystem (internal/serve)
// leans on exactly this scaling when a fleet server hosts a deep session
// backlog.
func BenchmarkEngineManySessions(b *testing.B) {
	for _, sessions := range []int{20, 50, 100, 200, 500} {
		b.Run(fmt.Sprintf("%dsessions", sessions), func(b *testing.B) {
			spec := platform.DefaultSpec()
			model := hevc.DefaultModel()
			const framesPer = 200
			set := transcode.Settings{QP: 35, Threads: 2, FreqGHz: 2.3}
			for i := 0; i < b.N; i++ {
				eng, err := transcode.NewEngine(spec, model, 1)
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < sessions; s++ {
					seq := &video.Sequence{Name: "bench", Res: video.LR, Frames: 1 << 30, FrameRate: 24,
						BaseComplexity: 1, Dynamism: 0.4, MeanSceneLen: 90}
					src, err := video.NewGenerator(seq, rand.New(rand.NewSource(int64(s))))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.AddSession(transcode.SessionConfig{
						Source: src, Controller: &transcode.Static{S: set},
						Initial: set, FrameBudget: framesPer,
					}); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
			total := float64(b.N) * float64(sessions*framesPer)
			b.ReportMetric(total/b.Elapsed().Seconds(), "frames/s")
			b.ReportMetric(b.Elapsed().Seconds()/total*1e9, "ns/frame")
		})
	}
}

// BenchmarkMAMUTDecision measures one controller decision (action
// selection + deferred Q update) on a trained controller.
func BenchmarkMAMUTDecision(b *testing.B) {
	spec := platform.DefaultSpec()
	cfg := core.DefaultConfig(video.HR, spec, 12)
	ctrl, err := core.New(cfg, transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	// Warm the tables so decisions exercise the exploitation path.
	cur := ctrl.Settings()
	for f := 0; f < 5000; f++ {
		cur = ctrl.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		ctrl.OnFrameDone(transcode.Observation{FPS: 25, InstFPS: 25, PSNRdB: 36, PowerW: 90, BitrateMbps: 4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := 5000 + i
		cur = ctrl.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		ctrl.OnFrameDone(transcode.Observation{FPS: 25, InstFPS: 25, PSNRdB: 36, PowerW: 90, BitrateMbps: 4})
	}
}

// BenchmarkQLearnerUpdate measures the tabular Q update with transition
// recording — the innermost learning operation.
func BenchmarkQLearnerUpdate(b *testing.B) {
	l, err := rl.NewLearner(rl.DefaultConfig(core.NumStates, 12))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.Intn(core.NumStates)
		a := rng.Intn(12)
		n := rng.Intn(core.NumStates)
		l.Update(s, a, n, 0.5, 10)
	}
}

// BenchmarkPlatformEvaluate measures the platform snapshot computation the
// engine performs at every event.
func BenchmarkPlatformEvaluate(b *testing.B) {
	srv, err := platform.NewServer(platform.DefaultSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	loads := []platform.SessionLoad{
		{Threads: 10, FreqGHz: 3.2, Speedup: 6.0},
		{Threads: 8, FreqGHz: 2.9, Speedup: 5.2},
		{Threads: 4, FreqGHz: 2.6, Speedup: 2.8},
		{Threads: 5, FreqGHz: 2.3, Speedup: 3.1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Evaluate(loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoderFrame measures the per-frame encoder model evaluation.
func BenchmarkEncoderFrame(b *testing.B) {
	enc, err := hevc.NewEncoder(video.HR, hevc.Ultrafast, hevc.DefaultModel(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.FrameWork(32, 1.1); err != nil {
			b.Fatal(err)
		}
		if _, _, err := enc.FrameQuality(32, 1.1); err != nil {
			b.Fatal(err)
		}
	}
}
