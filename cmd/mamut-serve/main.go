// Command mamut-serve simulates the transcoding service under continuous
// load: sessions arrive stochastically (Poisson, diurnal or ramping),
// are dispatched across a multi-server fleet by a placement policy, and
// steady-state service metrics (SLO attainment, rejection rate, fleet
// power, per-server utilization) are reported over a measurement window
// after warm-up. The fleet runs as one event-interleaved simulation: the
// dispatcher sees each session's actual, contention-stretched departure
// time when it places the next arrival, so admission and rejection
// reflect true occupancy rather than nominal session lengths. Output is
// byte-identical for a fixed seed, regardless of -workers.
//
// Dispatch is indexed by default: a min-heap of engines keyed by next
// event time advances only the servers with events due before each
// arrival, and the built-in policies place through incremental fleet
// indexes, so thousands of servers dispatch in O(log n) per arrival.
// -dispatch scan selects the O(servers) reference sweep; the two
// produce byte-identical output. -shards S additionally splits the
// fleet across S dispatcher goroutines that advance their servers'
// engines in parallel between placements (server i belongs to shard
// i mod S), reconciling with the coordinator before every decision —
// output stays byte-identical to -shards 1; the gain is wall clock on
// multi-core hosts at large fleet sizes (see cmd/mamut-fleetbench).
//
// With -knowledge the fleet shares learned transcoding knowledge across
// sessions (KaaS-style warm starts): departing MAMUT sessions contribute
// their Q-tables to a per-resolution-class knowledge base and new
// admissions are seeded from it, so short-lived sessions skip straight
// past exploration. Knowledge folds in arrival-ID order at the
// event-interleaved departure instants, so output stays byte-identical
// for any -workers count. -knowledge-out exports the run's store as a
// versioned, hash-stamped artifact and -knowledge-in warm-starts a later
// fleet from one (both imply -knowledge); the importer verifies the
// payload digest, so a corrupted artifact is rejected instead of
// silently poisoning every warm start.
//
// The fleet is elastic: sessions migrate live between servers (frozen
// mid-frame with learner state, rng cursors and energy accumulators,
// resumed elsewhere under a -migration-stall handoff penalty). -drain
// at:server schedules server drains (evacuate, then decommission),
// -autoscale grows and shrinks the fleet against target-utilization
// watermarks (-scale-min/-scale-max/-scale-target), and -rebalance
// migrates sessions away from power-hotspot servers — all on a fixed
// -epoch schedule, so elastic runs remain byte-identical for any
// -workers count and both dispatchers. The summary gains an "elastic:"
// line with migration and scaling counts.
//
// With -queue N arrivals that find no capacity wait in a bounded
// fleet-level admission queue instead of being rejected outright: FIFO
// within a resolution-class priority order (-queue-prio hr-first,
// lr-first or fifo), dropped after -queue-deadline seconds of waiting.
// Departures and elastic epochs re-admit from the queue (draining
// servers admit nothing); only arrivals that find the waiting room full
// are rejected. The summary gains a "queue:" line splitting outcomes —
// queued/admitted/deadline-dropped/rejected — and -quantiles adds
// queue-wait and time-to-first-frame p50/p95/p99. With the queue off,
// output is byte-identical to earlier releases.
//
// With -faults the run injects a deterministic fault plan into the
// fleet: crash@T:SRV kills a server (in-flight frame state lost),
// degrade@A-B:SRV:F cuts its power cap to F of nominal for the window,
// and blip@A-B:SRV takes it out of service for the window with sessions
// intact. Crash-interrupted sessions re-enter the -queue waiting room as
// recovery entries (per-class -fault-backoff/-fault-retries/
// -fault-deadline bounds; -fault-drop loses them instead, the baseline),
// restoring from their last -fault-checkpoint snapshot or cold-starting
// warm-seeded from the knowledge store. Fault runs stay byte-identical
// for any -workers, both dispatchers and all -shards; with no plan the
// output byte-matches fault-free builds. The summary gains "faults:" and
// "recovery:" lines (MTTR, recovery-latency quantiles, lost work,
// availability).
//
// Metrics stream: power, utilization, class statistics and FPS/duration
// quantile sketches fold into constant-size accumulators as sessions
// depart, so memory stays O(active sessions) over arbitrarily long
// horizons. -quantiles adds the per-class p50/p95/p99 and time-decayed
// window stats to the summary.
//
// Grid mode (-policies/-rates/-seeds) fans the (policy x rate x seed)
// product across the worker pool. With -checkpoint FILE each cell's
// result streams to FILE as it completes and an interrupted grid
// resumes from it bit-identically, recomputing only the missing cells.
//
// -cpuprofile and -memprofile write pprof profiles of the run, so fleet
// hot paths can be profiled without a custom harness.
//
// Usage:
//
//	mamut-serve -servers 4 -arrival-rate 0.5 -policy power -duration 600
//	mamut-serve -servers 2 -arrival-rate 0.3 -curve diurnal -format csv
//	mamut-serve -servers 2 -arrival-rate 0.4 -mean-session 15 -knowledge
//	mamut-serve -servers 2 -mean-session 15 -knowledge-out kb.json
//	mamut-serve -servers 2 -mean-session 15 -knowledge-in kb.json -seed 2
//	mamut-serve -servers 4 -arrival-rate 2 -curve diurnal -amplitude 0.9 \
//	    -autoscale -rebalance -drain 60:0    # elastic fleet under a spike
//	mamut-serve -servers 4 -arrival-rate 2 -curve burst -burst-factor 4 \
//	    -queue 64 -queue-deadline 20 -quantiles  # queued flash crowd
//	mamut-serve -servers 5000 -arrival-rate 100 -duration 60 -cpuprofile cpu.pprof
//	mamut-serve -servers 2 -policies round-robin,least-loaded,power \
//	    -rates 0.2,0.4,0.8 -seeds 1,2,3        # (policy x rate x seed) grid
//	mamut-serve -servers 2 -policies round-robin,power -seeds 1,2 \
//	    -checkpoint grid.ckpt                  # resumable grid
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mamut"
	"mamut/internal/cliutil"
)

func main() {
	var (
		servers    = flag.Int("servers", 2, "fleet size (number of simulated servers)")
		rate       = flag.Float64("arrival-rate", 0.2, "mean session arrival rate (sessions/sec)")
		policy     = flag.String("policy", mamut.PolicyLeastLoaded, "placement policy: "+strings.Join(mamut.ServePolicyNames(), "|"))
		duration   = flag.Float64("duration", 300, "arrival-process horizon (simulated seconds)")
		seed       = flag.Int64("seed", 1, "seed; equal seeds give byte-identical output")
		workers    = flag.Int("workers", 0, "parallel worker goroutines (0 = one per CPU); output is identical for any value")
		shards     = flag.Int("shards", 0, "fleet shards advancing engines in parallel (0/1 = unsharded); output is identical for any value")
		mix        = flag.Float64("mix", 0.4, "fraction of arrivals requesting HR (the rest are LR)")
		meanSess   = flag.Float64("mean-session", 60, "mean session length (seconds, exponential)")
		admission  = flag.Int("admission", 8, "per-server admission limit (sessions)")
		warmup     = flag.Float64("warmup", -1, "measurement-window start (seconds; -1 = duration/4)")
		approach   = flag.String("approach", string(mamut.ApproachMAMUT), "per-session controller: mamut|monoagent|heuristic")
		curve      = flag.String("curve", string(mamut.LoadConstant), "load curve: constant|diurnal|ramp|burst")
		amplitude  = flag.Float64("amplitude", 0.5, "diurnal modulation depth in [0,1)")
		rampTo     = flag.Float64("ramp-factor", 2, "ramp: final/base arrival-rate ratio")
		burstTo    = flag.Float64("burst-factor", 0, "burst: spike/base arrival-rate ratio (0 = default 3)")
		burstFrom  = flag.Float64("burst-start", 0, "burst: spike window start (seconds; with -burst-end 0, defaults to duration/4)")
		burstUntil = flag.Float64("burst-end", 0, "burst: spike window end (seconds; with -burst-start 0, defaults to duration/2)")
		queueCap   = flag.Int("queue", 0, "admission-queue capacity (0 = off: reject on full, the historical behavior)")
		queueDL    = flag.Float64("queue-deadline", 0, "admission-queue per-entry deadline (seconds; 0 = default 30)")
		queuePrio  = flag.String("queue-prio", "", "admission-queue priority order: "+strings.Join(queuePrioNames(), "|")+" (empty = hr-first)")
		faults     = flag.String("faults", "", "fault plan: comma-separated crash@T:SRV, degrade@A-B:SRV:FACTOR, blip@A-B:SRV events")
		faultCkpt  = flag.Float64("fault-checkpoint", 0, "periodic session-checkpoint interval for crash recovery (seconds; 0 = no checkpoints)")
		faultDrop  = flag.Bool("fault-drop", false, "drop crash-interrupted sessions instead of recovering them (the baseline)")
		faultBack  = flag.Float64("fault-backoff", 0, "recovery retry backoff, both classes (seconds; 0 = default 2)")
		faultRetry = flag.Int("fault-retries", 0, "recovery placement attempts per session, both classes (0 = default 5)")
		faultDL    = flag.Float64("fault-deadline", 0, "recovery deadline from crash to restore, both classes (seconds; 0 = default 30)")
		faultStall = flag.Float64("fault-stall", 0, "restore stall charged to a recovered session's interrupted frame (seconds; 0 = default 0.5)")
		slo        = flag.Float64("slo", 0.95, "session SLO: required avg FPS as a fraction of the target")
		knowledge  = flag.Bool("knowledge", false, "share learned knowledge across sessions (KaaS-style warm starts; mamut approach only)")
		rebalance  = flag.Bool("rebalance", false, "live-migrate sessions away from power hotspots every epoch")
		autoscale  = flag.Bool("autoscale", false, "scale the fleet to target utilization (watermark scale-out, drain-based scale-in)")
		drain      = flag.String("drain", "", "scheduled decommissions as at:server pairs, e.g. 120:0,300:3 (live-migrates sessions off)")
		epoch      = flag.Float64("epoch", 0, "control-epoch interval for rebalance/autoscale/drain (seconds; 0 = default 30)")
		migStall   = flag.Float64("migration-stall", 0, "per-migration stall penalty charged to the moved session (seconds; 0 = default 0.25)")
		scaleMin   = flag.Int("scale-min", 0, "autoscale: minimum in-service servers (0 = 1)")
		scaleMax   = flag.Int("scale-max", 0, "autoscale: maximum in-service servers (0 = 4x -servers)")
		scaleTgt   = flag.Float64("scale-target", 0, "autoscale: target utilization percent scale-outs size for (0 = 70)")
		dispatch   = flag.String("dispatch", string(mamut.DispatchIndexed), "fleet dispatcher: indexed|scan (byte-identical output)")
		format     = flag.String("format", "summary", "output format for single runs: summary|csv")
		policies   = flag.String("policies", "", "grid mode: comma-separated policies (with -rates/-seeds)")
		rates      = flag.String("rates", "", "grid mode: comma-separated arrival rates")
		seeds      = flag.String("seeds", "", "grid mode: comma-separated seeds")
		quantiles  = flag.Bool("quantiles", false, "summary: also print streamed FPS/duration quantiles and windowed stats")
		knowIn     = flag.String("knowledge-in", "", "import a knowledge artifact and warm-start the fleet from it (implies -knowledge)")
		knowOut    = flag.String("knowledge-out", "", "export the run's knowledge store to this file (implies -knowledge)")
		checkpoint = flag.String("checkpoint", "", "grid mode: stream per-cell results to this file and resume from it")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *warmup < 0 {
		*warmup = *duration / 4
	}
	// The library treats zero-valued config fields as "use the default",
	// so an *explicit* zero on these flags must be translated into the
	// forcing value (or rejected) rather than silently becoming the
	// default.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if setFlags["mix"] && *mix == 0 {
		*mix = -1 // negative forces a pure-LR workload
	}
	if setFlags["amplitude"] && *amplitude == 0 {
		*amplitude = 1e-9 // effectively unmodulated diurnal curve
	}
	if setFlags["slo"] && *slo == 0 {
		*slo = 1e-9 // effectively no FPS requirement: every session passes
	}
	if setFlags["admission"] && *admission <= 0 {
		fatal(fmt.Errorf("-admission %d must be >= 1", *admission))
	}
	if *queueCap <= 0 && (setFlags["queue-deadline"] || setFlags["queue-prio"]) {
		fatal(fmt.Errorf("-queue-deadline/-queue-prio require -queue N with N >= 1"))
	}
	if *queueCap > 0 {
		// Resolve the queue defaults here so the summary header can print
		// the effective values, mirroring the library's withDefaults.
		if *queueDL == 0 {
			*queueDL = mamut.DefaultQueueDeadlineSec
		}
		if *queuePrio == "" {
			*queuePrio = string(mamut.QueuePrioHRFirst)
		}
	}
	drainEvents, err := parseDrain(*drain)
	if err != nil {
		fatal(err)
	}
	if *faults == "" && (setFlags["fault-checkpoint"] || setFlags["fault-drop"] || setFlags["fault-backoff"] ||
		setFlags["fault-retries"] || setFlags["fault-deadline"] || setFlags["fault-stall"]) {
		fatal(fmt.Errorf("-fault-* flags require a -faults plan"))
	}
	faultPlan, err := mamut.ParseServeFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}
	cfg := mamut.ServeConfig{
		Servers:              *servers,
		MaxSessionsPerServer: *admission,
		Policy:               *policy,
		Approach:             mamut.Approach(*approach),
		Workload: mamut.ServeWorkload{
			ArrivalRate:    *rate,
			DurationSec:    *duration,
			HRFraction:     *mix,
			MeanSessionSec: *meanSess,
			Curve:          mamut.ServeLoadCurve(*curve),
			CurveAmplitude: *amplitude,
			RampEndFactor:  *rampTo,
			BurstFactor:    *burstTo,
			BurstStartSec:  *burstFrom,
			BurstEndSec:    *burstUntil,
		},
		WarmupSec:         *warmup,
		SLOFPSFactor:      *slo,
		KnowledgeReuse:    *knowledge || *knowIn != "" || *knowOut != "",
		Dispatch:          mamut.ServeDispatchMode(*dispatch),
		Seed:              *seed,
		Workers:           *workers,
		Shards:            *shards,
		EpochSec:          *epoch,
		Rebalance:         *rebalance,
		MigrationStallSec: *migStall,
		Drain:             drainEvents,
		Autoscale: mamut.ServeAutoscale{
			Enabled:       *autoscale,
			MinServers:    *scaleMin,
			MaxServers:    *scaleMax,
			TargetUtilPct: *scaleTgt,
		},
		Queue: mamut.ServeQueueConfig{
			Capacity:    *queueCap,
			DeadlineSec: *queueDL,
			Priority:    mamut.ServeQueuePriority(*queuePrio),
		},
		Faults: mamut.ServeFaultConfig{
			Plan:          faultPlan,
			CheckpointSec: *faultCkpt,
			Recovery: mamut.ServeFaultRecovery{
				Drop:     *faultDrop,
				HR:       mamut.ServeFaultRecoveryClass{BackoffSec: *faultBack, RetryMax: *faultRetry, DeadlineSec: *faultDL},
				LR:       mamut.ServeFaultRecoveryClass{BackoffSec: *faultBack, RetryMax: *faultRetry, DeadlineSec: *faultDL},
				StallSec: *faultStall,
			},
		},
	}
	opts := runOpts{
		format:       *format,
		policies:     *policies,
		rates:        *rates,
		seeds:        *seeds,
		workers:      *workers,
		quantiles:    *quantiles,
		knowledgeIn:  *knowIn,
		knowledgeOut: *knowOut,
		checkpoint:   *checkpoint,
	}

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		cpuFile = f
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	err = run(os.Stdout, cfg, opts)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// parseDrain parses the -drain flag: comma-separated at:server pairs.
func parseDrain(s string) ([]mamut.ServeDrainEvent, error) {
	if s == "" {
		return nil, nil
	}
	var events []mamut.ServeDrainEvent
	for _, part := range strings.Split(s, ",") {
		var ev mamut.ServeDrainEvent
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%f:%d", &ev.AtSec, &ev.Server); err != nil {
			return nil, fmt.Errorf("-drain entry %q: want at:server (e.g. 120:0): %v", part, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// runOpts carries the report- and persistence-level options of one
// invocation, separate from the simulation config.
type runOpts struct {
	format                    string
	policies, rates, seeds    string
	workers                   int
	quantiles                 bool
	knowledgeIn, knowledgeOut string
	checkpoint                string
}

func (o runOpts) gridMode() bool { return o.policies != "" || o.rates != "" || o.seeds != "" }

// run executes one service run (or a grid) and writes the report.
func run(w io.Writer, cfg mamut.ServeConfig, opts runOpts) error {
	if opts.gridMode() {
		if opts.knowledgeIn != "" || opts.knowledgeOut != "" {
			return fmt.Errorf("-knowledge-in/-knowledge-out apply to single runs, not grids")
		}
		return runGrid(w, cfg, opts)
	}
	if opts.checkpoint != "" {
		return fmt.Errorf("-checkpoint applies to grid mode (-policies/-rates/-seeds)")
	}
	if opts.knowledgeIn != "" {
		f, err := os.Open(opts.knowledgeIn)
		if err != nil {
			return err
		}
		ks, err := mamut.ImportKnowledge(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Knowledge = ks
	}
	res, err := mamut.RunService(cfg)
	if err != nil {
		return err
	}
	switch opts.format {
	case "summary":
		printSummary(w, cfg, res)
		if opts.quantiles {
			printQuantiles(w, cfg, res)
		}
	case "csv":
		printCSV(w, res)
	default:
		return fmt.Errorf("unknown format %q (summary|csv)", opts.format)
	}
	if opts.knowledgeOut != "" {
		if res.Knowledge == nil {
			return fmt.Errorf("run produced no knowledge store to export")
		}
		f, err := os.Create(opts.knowledgeOut)
		if err != nil {
			return err
		}
		if err := res.Knowledge.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func runGrid(w io.Writer, base mamut.ServeConfig, opts runOpts) error {
	spec := mamut.ServeGridSpec{Base: base, Workers: opts.workers}
	var err error
	if opts.policies != "" {
		if spec.Policies, err = cliutil.ParseStrings(opts.policies); err != nil {
			return err
		}
	}
	if opts.rates != "" {
		if spec.ArrivalRates, err = cliutil.ParseFloats(opts.rates); err != nil {
			return err
		}
	}
	if opts.seeds != "" {
		if spec.Seeds, err = cliutil.ParseInt64s(opts.seeds); err != nil {
			return err
		}
	}
	if opts.checkpoint != "" {
		ck, err := mamut.OpenServeCheckpoint(opts.checkpoint)
		if err != nil {
			return err
		}
		defer ck.Close()
		fmt.Fprintf(os.Stderr, "mamut-serve: checkpoint: %d completed cells on file\n", ck.Entries())
		spec.Checkpoint = ck
	}
	cells, err := mamut.RunServiceGrid(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "policy,arrival_rate,seed,offered,admitted,rejected,rejection_pct,"+
		"queue_dropped_pct,avg_queue_wait_sec,"+
		"measured,slo_pct,hr_slo_pct,lr_slo_pct,fleet_avg_power_w")
	for _, c := range cells {
		r := c.Result
		fmt.Fprintf(w, "%s,%g,%d,%d,%d,%d,%.2f,%.2f,%.3f,%d,%.2f,%.2f,%.2f,%.2f\n",
			c.Policy, c.ArrivalRate, c.Seed, r.Offered, r.Admitted, r.Rejected,
			r.RejectionPct, r.QueueDroppedPct, r.AvgQueueWaitSec,
			r.Measured, r.SLOAttainedPct,
			r.HR.SLOAttainedPct, r.LR.SLOAttainedPct, r.FleetAvgPowerW)
	}
	return nil
}

func printSummary(w io.Writer, cfg mamut.ServeConfig, r *mamut.ServeResult) {
	fmt.Fprintf(w, "mamut-serve: policy=%s servers=%d admission=%d approach=%s seed=%d\n",
		r.Policy, cfg.Servers, cfg.MaxSessionsPerServer, cfg.Approach, cfg.Seed)
	mix := cfg.Workload.HRFraction
	if mix < 0 {
		mix = 0
	}
	fmt.Fprintf(w, "workload: rate=%g/s curve=%s mix=%.0f%%HR mean-session=%gs horizon=%gs warmup=%gs\n",
		cfg.Workload.ArrivalRate, cfg.Workload.Curve, 100*mix,
		cfg.Workload.MeanSessionSec, r.DurationSec, r.WarmupSec)
	fmt.Fprintf(w, "arrivals: offered=%d admitted=%d rejected=%d (%.1f%%); in-window rejected %d of %d (%.1f%%)\n",
		r.Offered, r.Admitted, r.Rejected, r.RejectionPct,
		r.MeasuredRejected, r.MeasuredOffered, r.MeasuredRejectionPct)
	if cfg.Queue.Capacity > 0 {
		// Only queued configs print this line, keeping the byte output of
		// every pre-existing invocation unchanged. Print the *effective*
		// deadline/priority (the library resolves zero values the same
		// way), so flag-driven and config-driven runs report identically.
		deadline, prio := cfg.Queue.DeadlineSec, cfg.Queue.Priority
		if deadline == 0 {
			deadline = mamut.DefaultQueueDeadlineSec
		}
		if prio == "" {
			prio = mamut.QueuePrioHRFirst
		}
		fmt.Fprintf(w, "queue: cap=%d deadline=%gs prio=%s; queued=%d admitted=%d dropped=%d (%.1f%% of offered); avg wait %.2fs\n",
			cfg.Queue.Capacity, deadline, prio,
			r.Queued, r.QueueAdmitted, r.QueueDropped, r.QueueDroppedPct, r.AvgQueueWaitSec)
	}
	fmt.Fprintf(w, "SLO (avg FPS >= %.0f%% of target): %.1f%% of %d measured sessions\n",
		100*cfg.SLOFPSFactor, r.SLOAttainedPct, r.Measured)
	if cfg.KnowledgeReuse {
		fmt.Fprintf(w, "knowledge: %d departed sessions contributed, %d admissions warm-started\n",
			r.KnowledgeContributions, r.KnowledgeSeeded)
	}
	if cfg.Elastic() {
		// Only elastic configs print this line, so the byte output of
		// every pre-existing invocation is unchanged.
		fmt.Fprintf(w, "elastic: %d migrations, +%d/-%d servers (peak %d in service)\n",
			r.Migrations, r.ServersAdded, r.ServersRemoved, r.PeakServers)
	}
	if cfg.Faults.Enabled() {
		// Fault-injecting configs only, same byte-stability discipline.
		fmt.Fprintf(w, "faults: %d injected, %d crashed servers, availability %.2f%%; interrupted=%d recovered=%d lost=%d\n",
			r.FaultsInjected, r.ServersCrashed, r.AvailabilityPct,
			r.Interrupted, r.Recovered, r.Lost)
		fmt.Fprintf(w, "recovery: MTTR %.2fs, p50/p95/p99 %.2f/%.2f/%.2f s, lost work %.1fs\n",
			r.MTTRSec, r.RecoveryLatency.P50, r.RecoveryLatency.P95, r.RecoveryLatency.P99,
			r.LostWorkSec)
	}
	for _, cls := range []struct {
		name  string
		stats mamut.ServeClassStats
	}{{"HR", r.HR}, {"LR", r.LR}} {
		fmt.Fprintf(w, "  %s: %d sessions, SLO %.1f%%, avg FPS %.1f, avg PSNR %.1f dB, frame violations %.1f%%\n",
			cls.name, cls.stats.Sessions, cls.stats.SLOAttainedPct,
			cls.stats.AvgFPS, cls.stats.AvgPSNRdB, cls.stats.AvgViolationPct)
	}
	fmt.Fprintf(w, "fleet: avg power %.1f W over the measurement window\n", r.FleetAvgPowerW)
	fmt.Fprintln(w, "server  sessions  peak  util_pct  avg_power_w")
	for _, s := range r.Servers {
		fmt.Fprintf(w, "%6d  %8d  %4d  %8.1f  %11.1f\n",
			s.Index, s.Sessions, s.PeakActive, s.UtilizationPct, s.AvgPowerW)
	}
}

// printQuantiles reports the streamed per-class distributions and the
// time-decayed window stats. A separate block behind -quantiles so the
// default summary bytes stay stable; the latency line and the queue-depth
// suffix appear only when the admission queue is on, for the same reason.
func printQuantiles(w io.Writer, cfg mamut.ServeConfig, r *mamut.ServeResult) {
	for _, cls := range []struct {
		name string
		dist mamut.ServeClassDistributions
	}{{"HR", r.HRDist}, {"LR", r.LRDist}} {
		fmt.Fprintf(w, "  %s dist: fps p50/p95/p99 %.1f/%.1f/%.1f, session-sec p50/p95/p99 %.1f/%.1f/%.1f (%d sessions)\n",
			cls.name, cls.dist.FPS.P50, cls.dist.FPS.P95, cls.dist.FPS.P99,
			cls.dist.DurationSec.P50, cls.dist.DurationSec.P95, cls.dist.DurationSec.P99,
			cls.dist.FPS.Count)
	}
	if cfg.Queue.Capacity > 0 {
		fmt.Fprintf(w, "  latency: queue-wait p50/p95/p99 %.2f/%.2f/%.2f s, ttff p50/p95/p99 %.2f/%.2f/%.2f s\n",
			r.QueueWaitDist.P50, r.QueueWaitDist.P95, r.QueueWaitDist.P99,
			r.TTFFDist.P50, r.TTFFDist.P95, r.TTFFDist.P99)
	}
	fmt.Fprintf(w, "windowed (tau=%.0fs): SLO %.1f%%, rejection %.1f%%, utilization %.1f%%",
		r.Windowed.TauSec, r.Windowed.SLOAttainedPct, r.Windowed.RejectionPct, r.Windowed.UtilizationPct)
	if cfg.Queue.Capacity > 0 {
		fmt.Fprintf(w, ", queue depth %.1f", r.Windowed.QueueDepth)
	}
	if cfg.Faults.Enabled() {
		fmt.Fprintf(w, ", availability %.1f%%", r.Windowed.AvailabilityPct)
	}
	fmt.Fprintln(w)
}

// queuePrioNames lists the -queue-prio values for the flag help text.
func queuePrioNames() []string {
	var names []string
	for _, p := range mamut.ServeQueuePriorities() {
		names = append(names, string(p))
	}
	return names
}

func printCSV(w io.Writer, r *mamut.ServeResult) {
	fmt.Fprintln(w, "scope,sessions,peak_active,utilization_pct,avg_power_w,slo_pct,rejection_pct")
	for _, s := range r.Servers {
		fmt.Fprintf(w, "server%d,%d,%d,%.2f,%.2f,,\n",
			s.Index, s.Sessions, s.PeakActive, s.UtilizationPct, s.AvgPowerW)
	}
	fmt.Fprintf(w, "fleet,%d,,,%.2f,%.2f,%.2f\n",
		r.Admitted, r.FleetAvgPowerW, r.SLOAttainedPct, r.RejectionPct)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-serve:", err)
	os.Exit(1)
}
