// Command mamut-serve simulates the transcoding service under continuous
// load: sessions arrive stochastically (Poisson, diurnal or ramping),
// are dispatched across a multi-server fleet by a placement policy, and
// steady-state service metrics (SLO attainment, rejection rate, fleet
// power, per-server utilization) are reported over a measurement window
// after warm-up. The fleet runs as one event-interleaved simulation: the
// dispatcher sees each session's actual, contention-stretched departure
// time when it places the next arrival, so admission and rejection
// reflect true occupancy rather than nominal session lengths. Output is
// byte-identical for a fixed seed, regardless of -workers.
//
// Dispatch is indexed by default: a min-heap of engines keyed by next
// event time advances only the servers with events due before each
// arrival, and the built-in policies place through incremental fleet
// indexes, so thousands of servers dispatch in O(log n) per arrival.
// -dispatch scan selects the O(servers) reference sweep; the two
// produce byte-identical output.
//
// With -knowledge the fleet shares learned transcoding knowledge across
// sessions (KaaS-style warm starts): departing MAMUT sessions contribute
// their Q-tables to a per-resolution-class knowledge base and new
// admissions are seeded from it, so short-lived sessions skip straight
// past exploration. Knowledge folds in arrival-ID order at the
// event-interleaved departure instants, so output stays byte-identical
// for any -workers count.
//
// -cpuprofile and -memprofile write pprof profiles of the run, so fleet
// hot paths can be profiled without a custom harness.
//
// Usage:
//
//	mamut-serve -servers 4 -arrival-rate 0.5 -policy power -duration 600
//	mamut-serve -servers 2 -arrival-rate 0.3 -curve diurnal -format csv
//	mamut-serve -servers 2 -arrival-rate 0.4 -mean-session 15 -knowledge
//	mamut-serve -servers 5000 -arrival-rate 100 -duration 60 -cpuprofile cpu.pprof
//	mamut-serve -servers 2 -policies round-robin,least-loaded,power \
//	    -rates 0.2,0.4,0.8 -seeds 1,2,3        # (policy x rate x seed) grid
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mamut"
	"mamut/internal/cliutil"
)

func main() {
	var (
		servers    = flag.Int("servers", 2, "fleet size (number of simulated servers)")
		rate       = flag.Float64("arrival-rate", 0.2, "mean session arrival rate (sessions/sec)")
		policy     = flag.String("policy", mamut.PolicyLeastLoaded, "placement policy: "+strings.Join(mamut.ServePolicyNames(), "|"))
		duration   = flag.Float64("duration", 300, "arrival-process horizon (simulated seconds)")
		seed       = flag.Int64("seed", 1, "seed; equal seeds give byte-identical output")
		workers    = flag.Int("workers", 0, "parallel worker goroutines (0 = one per CPU); output is identical for any value")
		mix        = flag.Float64("mix", 0.4, "fraction of arrivals requesting HR (the rest are LR)")
		meanSess   = flag.Float64("mean-session", 60, "mean session length (seconds, exponential)")
		admission  = flag.Int("admission", 8, "per-server admission limit (sessions)")
		warmup     = flag.Float64("warmup", -1, "measurement-window start (seconds; -1 = duration/4)")
		approach   = flag.String("approach", string(mamut.ApproachMAMUT), "per-session controller: mamut|monoagent|heuristic")
		curve      = flag.String("curve", string(mamut.LoadConstant), "load curve: constant|diurnal|ramp")
		amplitude  = flag.Float64("amplitude", 0.5, "diurnal modulation depth in [0,1)")
		rampTo     = flag.Float64("ramp-factor", 2, "ramp: final/base arrival-rate ratio")
		slo        = flag.Float64("slo", 0.95, "session SLO: required avg FPS as a fraction of the target")
		knowledge  = flag.Bool("knowledge", false, "share learned knowledge across sessions (KaaS-style warm starts; mamut approach only)")
		dispatch   = flag.String("dispatch", string(mamut.DispatchIndexed), "fleet dispatcher: indexed|scan (byte-identical output)")
		format     = flag.String("format", "summary", "output format for single runs: summary|csv")
		policies   = flag.String("policies", "", "grid mode: comma-separated policies (with -rates/-seeds)")
		rates      = flag.String("rates", "", "grid mode: comma-separated arrival rates")
		seeds      = flag.String("seeds", "", "grid mode: comma-separated seeds")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *warmup < 0 {
		*warmup = *duration / 4
	}
	// The library treats zero-valued config fields as "use the default",
	// so an *explicit* zero on these flags must be translated into the
	// forcing value (or rejected) rather than silently becoming the
	// default.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if setFlags["mix"] && *mix == 0 {
		*mix = -1 // negative forces a pure-LR workload
	}
	if setFlags["amplitude"] && *amplitude == 0 {
		*amplitude = 1e-9 // effectively unmodulated diurnal curve
	}
	if setFlags["slo"] && *slo == 0 {
		*slo = 1e-9 // effectively no FPS requirement: every session passes
	}
	if setFlags["admission"] && *admission <= 0 {
		fatal(fmt.Errorf("-admission %d must be >= 1", *admission))
	}
	cfg := mamut.ServeConfig{
		Servers:              *servers,
		MaxSessionsPerServer: *admission,
		Policy:               *policy,
		Approach:             mamut.Approach(*approach),
		Workload: mamut.ServeWorkload{
			ArrivalRate:    *rate,
			DurationSec:    *duration,
			HRFraction:     *mix,
			MeanSessionSec: *meanSess,
			Curve:          mamut.ServeLoadCurve(*curve),
			CurveAmplitude: *amplitude,
			RampEndFactor:  *rampTo,
		},
		WarmupSec:      *warmup,
		SLOFPSFactor:   *slo,
		KnowledgeReuse: *knowledge,
		Dispatch:       mamut.ServeDispatchMode(*dispatch),
		Seed:           *seed,
		Workers:        *workers,
	}

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		cpuFile = f
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	err := run(os.Stdout, cfg, *format, *policies, *rates, *seeds, *workers)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// run executes one service run (or a grid) and writes the report.
func run(w io.Writer, cfg mamut.ServeConfig, format, policies, rates, seeds string, workers int) error {
	if policies != "" || rates != "" || seeds != "" {
		return runGrid(w, cfg, policies, rates, seeds, workers)
	}
	res, err := mamut.RunService(cfg)
	if err != nil {
		return err
	}
	switch format {
	case "summary":
		printSummary(w, cfg, res)
	case "csv":
		printCSV(w, res)
	default:
		return fmt.Errorf("unknown format %q (summary|csv)", format)
	}
	return nil
}

func runGrid(w io.Writer, base mamut.ServeConfig, policies, rates, seeds string, workers int) error {
	spec := mamut.ServeGridSpec{Base: base, Workers: workers}
	var err error
	if policies != "" {
		if spec.Policies, err = cliutil.ParseStrings(policies); err != nil {
			return err
		}
	}
	if rates != "" {
		if spec.ArrivalRates, err = cliutil.ParseFloats(rates); err != nil {
			return err
		}
	}
	if seeds != "" {
		if spec.Seeds, err = cliutil.ParseInt64s(seeds); err != nil {
			return err
		}
	}
	cells, err := mamut.RunServiceGrid(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "policy,arrival_rate,seed,offered,admitted,rejected,rejection_pct,"+
		"measured,slo_pct,hr_slo_pct,lr_slo_pct,fleet_avg_power_w")
	for _, c := range cells {
		r := c.Result
		fmt.Fprintf(w, "%s,%g,%d,%d,%d,%d,%.2f,%d,%.2f,%.2f,%.2f,%.2f\n",
			c.Policy, c.ArrivalRate, c.Seed, r.Offered, r.Admitted, r.Rejected,
			r.RejectionPct, r.Measured, r.SLOAttainedPct,
			r.HR.SLOAttainedPct, r.LR.SLOAttainedPct, r.FleetAvgPowerW)
	}
	return nil
}

func printSummary(w io.Writer, cfg mamut.ServeConfig, r *mamut.ServeResult) {
	fmt.Fprintf(w, "mamut-serve: policy=%s servers=%d admission=%d approach=%s seed=%d\n",
		r.Policy, cfg.Servers, cfg.MaxSessionsPerServer, cfg.Approach, cfg.Seed)
	mix := cfg.Workload.HRFraction
	if mix < 0 {
		mix = 0
	}
	fmt.Fprintf(w, "workload: rate=%g/s curve=%s mix=%.0f%%HR mean-session=%gs horizon=%gs warmup=%gs\n",
		cfg.Workload.ArrivalRate, cfg.Workload.Curve, 100*mix,
		cfg.Workload.MeanSessionSec, r.DurationSec, r.WarmupSec)
	fmt.Fprintf(w, "arrivals: offered=%d admitted=%d rejected=%d (%.1f%%); in-window rejected %d of %d (%.1f%%)\n",
		r.Offered, r.Admitted, r.Rejected, r.RejectionPct,
		r.MeasuredRejected, r.MeasuredOffered, r.MeasuredRejectionPct)
	fmt.Fprintf(w, "SLO (avg FPS >= %.0f%% of target): %.1f%% of %d measured sessions\n",
		100*cfg.SLOFPSFactor, r.SLOAttainedPct, r.Measured)
	if cfg.KnowledgeReuse {
		fmt.Fprintf(w, "knowledge: %d departed sessions contributed, %d admissions warm-started\n",
			r.KnowledgeContributions, r.KnowledgeSeeded)
	}
	for _, cls := range []struct {
		name  string
		stats mamut.ServeClassStats
	}{{"HR", r.HR}, {"LR", r.LR}} {
		fmt.Fprintf(w, "  %s: %d sessions, SLO %.1f%%, avg FPS %.1f, avg PSNR %.1f dB, frame violations %.1f%%\n",
			cls.name, cls.stats.Sessions, cls.stats.SLOAttainedPct,
			cls.stats.AvgFPS, cls.stats.AvgPSNRdB, cls.stats.AvgViolationPct)
	}
	fmt.Fprintf(w, "fleet: avg power %.1f W over the measurement window\n", r.FleetAvgPowerW)
	fmt.Fprintln(w, "server  sessions  peak  util_pct  avg_power_w")
	for _, s := range r.Servers {
		fmt.Fprintf(w, "%6d  %8d  %4d  %8.1f  %11.1f\n",
			s.Index, s.Sessions, s.PeakActive, s.UtilizationPct, s.AvgPowerW)
	}
}

func printCSV(w io.Writer, r *mamut.ServeResult) {
	fmt.Fprintln(w, "scope,sessions,peak_active,utilization_pct,avg_power_w,slo_pct,rejection_pct")
	for _, s := range r.Servers {
		fmt.Fprintf(w, "server%d,%d,%d,%.2f,%.2f,,\n",
			s.Index, s.Sessions, s.PeakActive, s.UtilizationPct, s.AvgPowerW)
	}
	fmt.Fprintf(w, "fleet,%d,,,%.2f,%.2f,%.2f\n",
		r.Admitted, r.FleetAvgPowerW, r.SLOAttainedPct, r.RejectionPct)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-serve:", err)
	os.Exit(1)
}
