package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mamut"
)

// -update-golden regenerates the committed fleet smoke goldens. The same
// files are asserted by the CI workflow against the built binary (same
// flags), so the library-level test here and the CLI-level smoke cannot
// drift apart.
var updateGolden = flag.Bool("update-golden", false, "regenerate testdata goldens")

// fleetSmokeConfig mirrors the CI smoke step's flags:
//
//	mamut-serve -servers 64 -arrival-rate 2 -duration 40 -warmup 10 \
//	    -mean-session 10 -approach heuristic -seed 7 -policy <p>
func fleetSmokeConfig(policy string) mamut.ServeConfig {
	return mamut.ServeConfig{
		Servers:              64,
		MaxSessionsPerServer: 8,
		Policy:               policy,
		Approach:             mamut.ApproachHeuristic,
		Workload: mamut.ServeWorkload{
			ArrivalRate:    2,
			DurationSec:    40,
			HRFraction:     0.4,
			MeanSessionSec: 10,
			Curve:          mamut.LoadConstant,
			CurveAmplitude: 0.5,
			RampEndFactor:  2,
		},
		WarmupSec:    10,
		SLOFPSFactor: 0.95,
		Seed:         7,
	}
}

// TestFleetSmokeGolden pins the mamut-serve summary output for a
// 64-server fleet under every built-in policy to committed goldens —
// byte-identical across worker counts and across both dispatcher
// implementations.
// elasticSmokeConfig mirrors the CI elastic smoke step's flags — a
// diurnal spike whose peak forces scale-out and whose trough forces
// scale-in, with a scheduled drain and hotspot rebalancing on top:
//
//	mamut-serve -servers 32 -admission 4 -arrival-rate 8 -duration 60 \
//	    -warmup 15 -mean-session 10 -amplitude 0.9 -approach heuristic \
//	    -seed 7 -curve diurnal -autoscale -rebalance -drain 20:0 \
//	    -epoch 5 -scale-max 48
func elasticSmokeConfig() mamut.ServeConfig {
	cfg := fleetSmokeConfig(mamut.PolicyLeastLoaded)
	cfg.Servers = 32
	cfg.MaxSessionsPerServer = 4
	cfg.Workload.ArrivalRate = 8
	cfg.Workload.DurationSec = 60
	cfg.Workload.Curve = mamut.LoadDiurnal
	cfg.Workload.CurveAmplitude = 0.9
	cfg.WarmupSec = 15
	cfg.EpochSec = 5
	cfg.Rebalance = true
	cfg.Autoscale = mamut.ServeAutoscale{Enabled: true, MaxServers: 48}
	cfg.Drain = []mamut.ServeDrainEvent{{AtSec: 20, Server: 0}}
	return cfg
}

// TestElasticFleetGolden pins the summary output of a 32-server elastic
// run — diurnal spike, autoscaling, hotspot rebalancing and a scheduled
// drain all active — to a committed golden, byte-identical across worker
// counts and both dispatchers: live migration and fleet topology changes
// preserve the repo's determinism contract.
func TestElasticFleetGolden(t *testing.T) {
	golden := filepath.Join("testdata", "elastic32.golden")
	outputs := map[string][]byte{}
	for _, variant := range []struct {
		name     string
		dispatch mamut.ServeDispatchMode
		workers  int
		shards   int
	}{
		{"indexed_w1", mamut.DispatchIndexed, 1, 0},
		{"indexed_w4", mamut.DispatchIndexed, 4, 0},
		{"scan_w1", mamut.DispatchScan, 1, 0},
		// Sharded variants assert against the same golden bytes: the
		// sharded dispatcher's contract is bit-identical output.
		{"indexed_w1_s4", mamut.DispatchIndexed, 1, 4},
		{"indexed_w4_s4", mamut.DispatchIndexed, 4, 4},
		{"scan_w1_s4", mamut.DispatchScan, 1, 4},
	} {
		cfg := elasticSmokeConfig()
		cfg.Dispatch = variant.dispatch
		cfg.Workers = variant.workers
		cfg.Shards = variant.shards
		var buf bytes.Buffer
		if err := run(&buf, cfg, runOpts{format: "summary", workers: cfg.Workers}); err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		outputs[variant.name] = buf.Bytes()
	}
	for name, out := range outputs {
		if !bytes.Equal(out, outputs["indexed_w1"]) {
			t.Fatalf("output of %s differs from indexed_w1", name)
		}
	}
	if !bytes.Contains(outputs["indexed_w1"], []byte("elastic: ")) {
		t.Fatalf("summary missing the elastic line:\n%s", outputs["indexed_w1"])
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, outputs["indexed_w1"], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden written to %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(outputs["indexed_w1"], want) {
		t.Errorf("output diverged from committed golden %s:\n got:\n%s\nwant:\n%s",
			golden, outputs["indexed_w1"], want)
	}
}

// queuedSmokeConfig mirrors the CI queued smoke step's flags — a tight
// fleet under a flash-crowd burst with the admission queue on, so queue
// entries, deadline drops and re-admissions all occur:
//
//	mamut-serve -servers 64 -admission 1 -arrival-rate 4 -duration 40 \
//	    -warmup 10 -mean-session 15 -approach heuristic -seed 7 \
//	    -curve burst -burst-factor 3 -burst-start 10 -burst-end 25 \
//	    -queue 32 -queue-deadline 8
func queuedSmokeConfig() mamut.ServeConfig {
	cfg := fleetSmokeConfig(mamut.PolicyLeastLoaded)
	cfg.MaxSessionsPerServer = 1
	cfg.Workload.ArrivalRate = 4
	cfg.Workload.MeanSessionSec = 15
	cfg.Workload.Curve = mamut.LoadBurst
	cfg.Workload.BurstFactor = 3
	cfg.Workload.BurstStartSec = 10
	cfg.Workload.BurstEndSec = 25
	cfg.Queue = mamut.ServeQueueConfig{Capacity: 32, DeadlineSec: 8}
	return cfg
}

// TestQueuedFleetGolden pins the summary output of a queued-admission
// burst run to a committed golden, byte-identical across worker counts,
// both dispatchers and shard counts: the admission pipeline preserves
// the repo's determinism contract.
func TestQueuedFleetGolden(t *testing.T) {
	golden := filepath.Join("testdata", "queue64.golden")
	outputs := map[string][]byte{}
	for _, variant := range []struct {
		name     string
		dispatch mamut.ServeDispatchMode
		workers  int
		shards   int
	}{
		{"indexed_w1", mamut.DispatchIndexed, 1, 0},
		{"indexed_w4", mamut.DispatchIndexed, 4, 0},
		{"scan_w1", mamut.DispatchScan, 1, 0},
		// Sharded variants assert against the same golden bytes: queue
		// admission runs in the serial phase only, so sharding stays
		// bit-identical with the queue on.
		{"indexed_w1_s4", mamut.DispatchIndexed, 1, 4},
		{"indexed_w4_s4", mamut.DispatchIndexed, 4, 4},
		{"scan_w1_s4", mamut.DispatchScan, 1, 4},
	} {
		cfg := queuedSmokeConfig()
		cfg.Dispatch = variant.dispatch
		cfg.Workers = variant.workers
		cfg.Shards = variant.shards
		var buf bytes.Buffer
		if err := run(&buf, cfg, runOpts{format: "summary", workers: cfg.Workers}); err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		outputs[variant.name] = buf.Bytes()
	}
	for name, out := range outputs {
		if !bytes.Equal(out, outputs["indexed_w1"]) {
			t.Fatalf("output of %s differs from indexed_w1", name)
		}
	}
	if !bytes.Contains(outputs["indexed_w1"], []byte("queue: ")) {
		t.Fatalf("summary missing the queue line:\n%s", outputs["indexed_w1"])
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, outputs["indexed_w1"], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden written to %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(outputs["indexed_w1"], want) {
		t.Errorf("output diverged from committed golden %s:\n got:\n%s\nwant:\n%s",
			golden, outputs["indexed_w1"], want)
	}
}

// chaosSmokeConfig mirrors the CI chaos smoke step's flags — a loaded
// 32-server fleet with a crash, a degrade window and a blip landing
// mid-run, periodic checkpoints and queue-based recovery on:
//
//	mamut-serve -servers 32 -admission 4 -arrival-rate 8 -duration 40 \
//	    -warmup 10 -mean-session 10 -approach heuristic -seed 7 \
//	    -queue 64 -faults crash@20:1,degrade@25-40:2:0.5,blip@30-36:3 \
//	    -fault-checkpoint 10 -quantiles
func chaosSmokeConfig() mamut.ServeConfig {
	cfg := fleetSmokeConfig(mamut.PolicyLeastLoaded)
	cfg.Servers = 32
	cfg.MaxSessionsPerServer = 4
	cfg.Workload.ArrivalRate = 8
	cfg.Queue = mamut.ServeQueueConfig{Capacity: 64}
	cfg.Faults = mamut.ServeFaultConfig{
		Plan: []mamut.ServeFaultEvent{
			{Kind: mamut.FaultCrash, Server: 1, AtSec: 20},
			{Kind: mamut.FaultDegrade, Server: 2, AtSec: 25, EndSec: 40, Factor: 0.5},
			{Kind: mamut.FaultBlip, Server: 3, AtSec: 30, EndSec: 36},
		},
		CheckpointSec: 10,
	}
	return cfg
}

// TestFaultEquivalence pins the summary output of a chaos run — crash,
// degrade and blip faults with checkpointed queue-based recovery — to a
// committed golden, byte-identical across worker counts, both
// dispatchers and shard counts: fault injection and recovery land only
// in the serial control phase, preserving the repo's determinism
// contract.
func TestFaultEquivalence(t *testing.T) {
	golden := filepath.Join("testdata", "chaos32.golden")
	outputs := map[string][]byte{}
	for _, variant := range []struct {
		name     string
		dispatch mamut.ServeDispatchMode
		workers  int
		shards   int
	}{
		{"indexed_w1", mamut.DispatchIndexed, 1, 0},
		{"indexed_w4", mamut.DispatchIndexed, 4, 0},
		{"scan_w1", mamut.DispatchScan, 1, 0},
		// Sharded variants assert against the same golden bytes: faults
		// strike between parallel windows, so sharding stays
		// bit-identical under chaos.
		{"indexed_w1_s4", mamut.DispatchIndexed, 1, 4},
		{"indexed_w4_s4", mamut.DispatchIndexed, 4, 4},
		{"scan_w1_s4", mamut.DispatchScan, 1, 4},
	} {
		cfg := chaosSmokeConfig()
		cfg.Dispatch = variant.dispatch
		cfg.Workers = variant.workers
		cfg.Shards = variant.shards
		var buf bytes.Buffer
		if err := run(&buf, cfg, runOpts{format: "summary", workers: cfg.Workers, quantiles: true}); err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		outputs[variant.name] = buf.Bytes()
	}
	for name, out := range outputs {
		if !bytes.Equal(out, outputs["indexed_w1"]) {
			t.Fatalf("output of %s differs from indexed_w1", name)
		}
	}
	if !bytes.Contains(outputs["indexed_w1"], []byte("faults: ")) {
		t.Fatalf("summary missing the faults line:\n%s", outputs["indexed_w1"])
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, outputs["indexed_w1"], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden written to %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(outputs["indexed_w1"], want) {
		t.Errorf("output diverged from committed golden %s:\n got:\n%s\nwant:\n%s",
			golden, outputs["indexed_w1"], want)
	}
}

func TestFleetSmokeGolden(t *testing.T) {
	for _, policy := range mamut.ServePolicyNames() {
		t.Run(policy, func(t *testing.T) {
			golden := filepath.Join("testdata", fmt.Sprintf("fleet64_%s.golden", policy))
			outputs := map[string][]byte{}
			for _, variant := range []struct {
				name     string
				dispatch mamut.ServeDispatchMode
				workers  int
				shards   int
			}{
				{"indexed_w1", mamut.DispatchIndexed, 1, 0},
				{"indexed_w4", mamut.DispatchIndexed, 4, 0},
				{"scan_w1", mamut.DispatchScan, 1, 0},
				// Sharded variants assert against the same golden bytes:
				// the sharded dispatcher's contract is bit-identical output.
				{"indexed_w1_s4", mamut.DispatchIndexed, 1, 4},
				{"indexed_w4_s4", mamut.DispatchIndexed, 4, 4},
				{"scan_w1_s4", mamut.DispatchScan, 1, 4},
			} {
				cfg := fleetSmokeConfig(policy)
				cfg.Dispatch = variant.dispatch
				cfg.Workers = variant.workers
				cfg.Shards = variant.shards
				var buf bytes.Buffer
				if err := run(&buf, cfg, runOpts{format: "summary", workers: cfg.Workers}); err != nil {
					t.Fatalf("%s: %v", variant.name, err)
				}
				outputs[variant.name] = buf.Bytes()
			}
			for name, out := range outputs {
				if !bytes.Equal(out, outputs["indexed_w1"]) {
					t.Fatalf("output of %s differs from indexed_w1", name)
				}
			}
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, outputs["indexed_w1"], 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden written to %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(outputs["indexed_w1"], want) {
				t.Errorf("output diverged from committed golden %s:\n got:\n%s\nwant:\n%s",
					golden, outputs["indexed_w1"], want)
			}
		})
	}
}
