// Command mamut-sim runs one multi-user transcoding simulation and prints
// per-stream summaries.
//
// Usage:
//
//	mamut-sim -controller mamut -hr 2 -lr 3 -frames 20000
//	mamut-sim -controller heuristic -hr 1 -frames 5000 -trace /tmp/trace.csv
//	mamut-sim -controller mamut -hr 4 -frames 8000 -stagger 30
//
// Streams are assigned catalog sequences round-robin. With -trace, the
// first stream's per-frame observations are written as CSV. With
// -stagger, stream i arrives i*stagger simulated seconds into the run
// (the engine's live session lifecycle), so contention builds gradually
// instead of all streams starting at once.
package main

import (
	"flag"
	"fmt"
	"os"

	"mamut"
	"mamut/internal/metrics"
	"mamut/internal/tables"
)

func main() {
	var (
		controller = flag.String("controller", "mamut", "controller: mamut|monoagent|heuristic")
		nHR        = flag.Int("hr", 1, "number of simultaneous HR (1080p) streams")
		nLR        = flag.Int("lr", 0, "number of simultaneous LR (832x480) streams")
		frames     = flag.Int("frames", 10000, "frames to transcode per stream")
		seed       = flag.Int64("seed", 1, "simulation seed")
		tracePath  = flag.String("trace", "", "write the first stream's per-frame trace CSV here")
		stagger    = flag.Float64("stagger", 0, "delay stream i's arrival by i*stagger simulated seconds")
	)
	flag.Parse()

	if *stagger < 0 {
		fatal(fmt.Errorf("-stagger %g must be >= 0", *stagger))
	}

	if *nHR+*nLR < 1 {
		fatal(fmt.Errorf("need at least one stream (-hr/-lr)"))
	}
	sim, err := mamut.NewSimulation(mamut.SimulationConfig{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	catalog := mamut.DefaultCatalog()
	hrSeqs := catalog.ByResolution(mamut.HR)
	lrSeqs := catalog.ByResolution(mamut.LR)
	addStreams := func(n int, seqs []*mamut.Sequence) error {
		for i := 0; i < n; i++ {
			if err := sim.AddStream(mamut.StreamConfig{
				Sequence:     seqs[i%len(seqs)].Name,
				Approach:     mamut.Approach(*controller),
				Frames:       *frames,
				StartAtSec:   float64(sim.Streams()) * *stagger,
				CollectTrace: *tracePath != "" && sim.Streams() == 0,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addStreams(*nHR, hrSeqs); err != nil {
		fatal(err)
	}
	if err := addStreams(*nLR, lrSeqs); err != nil {
		fatal(err)
	}

	res, err := sim.Run()
	if err != nil {
		fatal(err)
	}

	tb := tables.New(
		fmt.Sprintf("%s on %dHR+%dLR, %d frames/stream (simulated %.1f s, avg %.1f W)",
			*controller, *nHR, *nLR, *frames, res.DurationSec, res.AvgPowerW),
		"stream", "res", "FPS", "delta_pct", "PSNR_dB", "bitrate_Mbps", "threads", "freq_GHz", "QP")
	for _, sr := range res.Sessions {
		tb.MustAddRow(fmt.Sprint(sr.ID), sr.Res.String(), tables.F(sr.AvgFPS, 1),
			tables.F(sr.ViolationPct, 1), tables.F(sr.AvgPSNRdB, 1),
			tables.F(sr.AvgBitrateMbps, 2), tables.F(sr.AvgThreads, 1),
			tables.F(sr.AvgFreqGHz, 2), tables.F(sr.AvgQP, 1))
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := metrics.WriteTraceCSV(f, res.Sessions[0].Trace); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d frames)\n", *tracePath, len(res.Sessions[0].Trace))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-sim:", err)
	os.Exit(1)
}
