// Command mamut-fleetbench measures how arrival throughput of the
// serving fleet scales with Config.Shards: for each fleet size in
// -sizes and each shard count in -shards it runs the identical service
// simulation (same seed, same workload — offered load tracks fleet size
// via -rate-per-server, so every cell of one size processes the same
// arrival stream) and records wall clock per arrival. The per-size
// 1-shard cell is the speedup baseline. Results print as a table and
// are written as a machine-readable JSON artifact (-out), with the
// measuring environment (CPU count, GOMAXPROCS, Go version) stamped in —
// a 1-core host legitimately measures speedup ≈ 1, and the record has to
// say so.
//
// The workload defaults put the fleet in the frame-dominated regime the
// sharding targets (many resident sessions per arrival interval): the
// cost of a dispatcher step is advancing engines, which parallelises,
// not placement, which does not. Shard counts beyond the host's cores
// add barrier overhead for no gain; sweep -shards past NumCPU only to
// see that plateau.
//
// Every cell's service result is checked against the size's 1-shard
// cell (admissions, rejections, SLO attainment), so the benchmark
// doubles as a large-fleet equivalence smoke: a sharding bug cannot
// hide behind a fast wrong answer.
//
// Usage:
//
//	mamut-fleetbench                                # default matrix
//	mamut-fleetbench -sizes 10000,50000 -shards 1,8 -duration 20
//	mamut-fleetbench -out BENCH_fleetscale.json -notes "8-core CI runner"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mamut"
	"mamut/internal/experiments"
)

func main() {
	var (
		sizes     = flag.String("sizes", "1000,10000", "comma-separated fleet sizes")
		shards    = flag.String("shards", "1,2,4,8", "comma-separated shard counts (include 1 for the speedup baseline)")
		duration  = flag.Float64("duration", 30, "arrival-process horizon per cell (simulated seconds)")
		perServer = flag.Float64("rate-per-server", 0.05, "offered arrival rate per server (sessions/sec); total rate scales with fleet size")
		meanSess  = flag.Float64("mean-session", 10, "mean session length (seconds, exponential)")
		admission = flag.Int("admission", 8, "per-server admission limit (sessions)")
		policy    = flag.String("policy", mamut.PolicyLeastLoaded, "placement policy: "+strings.Join(mamut.ServePolicyNames(), "|"))
		approach  = flag.String("approach", string(mamut.ApproachHeuristic), "per-session controller: mamut|monoagent|heuristic")
		dispatch  = flag.String("dispatch", string(mamut.DispatchIndexed), "fleet dispatcher: indexed|scan")
		seed      = flag.Int64("seed", 1, "seed; every cell of one fleet size replays the identical arrival stream")
		out       = flag.String("out", "", "write the JSON scaling artifact to this file (e.g. BENCH_fleetscale.json)")
		notes     = flag.String("notes", "", "free-form note recorded in the artifact (host, runner, context)")
	)
	flag.Parse()

	sizeList, err := parseInts(*sizes)
	if err != nil {
		fatal(fmt.Errorf("-sizes: %w", err))
	}
	shardList, err := parseInts(*shards)
	if err != nil {
		fatal(fmt.Errorf("-shards: %w", err))
	}

	report := experiments.NewScalingReport("fleetscale")
	report.Notes = *notes

	fmt.Printf("fleetscale: %s/%s policy, %s dispatch, %.0fs horizon, %g arrivals/s/server (GOMAXPROCS=%d, NumCPU=%d)\n",
		*policy, *approach, *dispatch, *duration, *perServer, report.GOMAXPROCS, report.NumCPU)
	fmt.Printf("%-14s %10s %14s %10s  %s\n", "cell", "arrivals", "ns/arrival", "speedup", "result check")

	diverged := false
	for _, n := range sizeList {
		var baseline *mamut.ServeResult
		for _, s := range shardList {
			cfg := mamut.ServeConfig{
				Servers:              n,
				MaxSessionsPerServer: *admission,
				Policy:               *policy,
				Approach:             mamut.Approach(*approach),
				Workload: mamut.ServeWorkload{
					ArrivalRate:    *perServer * float64(n),
					DurationSec:    *duration,
					MeanSessionSec: *meanSess,
				},
				WarmupSec: *duration / 4,
				Seed:      *seed,
				// The post-horizon drain pool scales with the shards so
				// both phases of the run parallelise consistently.
				Workers:  s,
				Shards:   s,
				Dispatch: mamut.ServeDispatchMode(*dispatch),
			}
			label := fmt.Sprintf("n%d/s%d", n, s)
			var res *mamut.ServeResult
			cell, err := report.Measure(label, n, s, func() (int, error) {
				r, err := mamut.RunService(cfg)
				if err != nil {
					return 0, err
				}
				res = r
				return r.Offered, nil
			})
			if err != nil {
				fatal(err)
			}
			// Cross-check against the size's first cell: the sharded
			// dispatcher must reproduce the same service outcome.
			check := "baseline"
			if baseline == nil {
				baseline = res
			} else if res.Admitted != baseline.Admitted || res.Rejected != baseline.Rejected ||
				res.SLOAttainedPct != baseline.SLOAttainedPct {
				check = "DIVERGED"
				diverged = true
			} else {
				check = "identical"
			}
			fmt.Printf("%-14s %10d %14.0f %10s  %s\n", label, cell.Arrivals, cell.NsPerArrival, "-", check)
		}
	}
	best := report.ComputeSpeedups()
	for _, c := range report.Cells {
		if c.SpeedupX > 0 {
			fmt.Printf("%-14s speedup %.2fx vs 1 shard\n", c.Label, c.SpeedupX)
		}
	}
	fmt.Printf("best speedup: %.2fx\n", best)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("artifact written to %s\n", *out)
	}
	if diverged {
		fatal(fmt.Errorf("sharded cells diverged from their 1-shard baselines"))
	}
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be >= 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-fleetbench:", err)
	os.Exit(1)
}
