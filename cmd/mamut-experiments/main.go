// Command mamut-experiments regenerates every table and figure of the
// paper's evaluation from the simulated testbed.
//
// Usage:
//
//	mamut-experiments -exp all -out results/
//	mamut-experiments -exp fig4 -quick
//	mamut-experiments -exp table2 -seed 3 -reps 5
//
// Experiments: fig2, fig4, fig5, table1, table2, learntime, ablation, all.
// Each experiment prints its table(s) to stdout and, when -out is set,
// writes CSV and SVG artifacts into the output directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mamut/internal/config"
	"mamut/internal/experiments"
	"mamut/internal/metrics"
	"mamut/internal/plot"
	"mamut/internal/tables"
	"mamut/internal/transcode"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig2|fig4|fig5|table1|table2|learntime|ablation|all")
		out      = flag.String("out", "", "directory for CSV/SVG artifacts (optional)")
		quick    = flag.Bool("quick", false, "reduced repetitions and windows (faster, less converged)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		reps     = flag.Int("reps", 0, "override repetitions (0 = default)")
		workers  = flag.Int("workers", 0, "parallel worker goroutines (0 = one per CPU, 1 = serial); results are identical for any value")
		progress = flag.Bool("progress", false, "print per-unit progress to stderr")
		cfgPath  = flag.String("config", "", "JSON configuration file (see -dump-config)")
		dumpCfg  = flag.Bool("dump-config", false, "print the default configuration as JSON and exit")
	)
	flag.Parse()

	if *dumpCfg {
		if err := config.Default().Save(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	if *reps > 0 {
		opts.Repetitions = *reps
	}
	if *cfgPath != "" {
		f, err := config.LoadPath(*cfgPath)
		if err != nil {
			fatal(err)
		}
		opts, err = f.Apply(opts)
		if err != nil {
			fatal(err)
		}
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers %d must be >= 0", *workers))
	}
	opts.Workers = *workers
	if *progress {
		opts.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s done in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	all := *exp == "all"
	selected := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return all || selected[name] }

	var scenarioI []experiments.WorkloadResult
	if want("fig2") {
		run("fig2", func() error { return runFig2(opts, *out) })
	}
	if want("fig4") || want("table1") {
		run("fig4 (Scenario I)", func() error {
			var err error
			scenarioI, err = runFig4(opts, *out)
			return err
		})
	}
	if want("table1") {
		run("table1", func() error { return runTableI(scenarioI, *out) })
	}
	if want("fig5") {
		run("fig5", func() error { return runFig5(opts, *out) })
	}
	if want("table2") {
		run("table2 (Scenario II)", func() error { return runTableII(opts, *out) })
	}
	if want("learntime") {
		run("learntime", func() error { return runLearnTime(opts) })
	}
	if want("ablation") {
		run("ablation", func() error { return runAblation(opts) })
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-experiments:", err)
	os.Exit(1)
}

func writeFile(dir, name string, f func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	file, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer file.Close()
	return f(file)
}

func runFig2(opts experiments.Options, out string) error {
	points, err := experiments.Fig2Sweep(opts)
	if err != nil {
		return err
	}
	tb := tables.New("Figure 2: RD curves, power and throughput (1080p ultrafast @ 3.2 GHz)",
		"threads", "QP", "FPS", "power_W", "PSNR_dB", "bandwidth_MBps")
	for _, p := range points {
		tb.MustAddRow(fmt.Sprint(p.Threads), fmt.Sprint(p.QP), tables.F(p.FPS, 1),
			tables.F(p.PowerW, 1), tables.F(p.PSNRdB, 1), tables.F(p.BandwidthMBps, 3))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeFile(out, "fig2.csv", tb.WriteCSV); err != nil {
		return err
	}
	// RD chart: PSNR vs bandwidth, one series per thread count.
	rd := &plot.Chart{Title: "Fig. 2: RD curves", XLabel: "Bandwidth (MBytes/s)", YLabel: "PSNR (dB)"}
	pw := &plot.Chart{Title: "Fig. 2: power vs throughput", XLabel: "FPS", YLabel: "Power (Watts)"}
	for _, th := range experiments.Fig2Threads {
		var rdS, pwS plot.Series
		rdS.Name = fmt.Sprintf("%d threads", th)
		pwS.Name = rdS.Name
		for _, p := range points {
			if p.Threads != th {
				continue
			}
			rdS.X = append(rdS.X, p.BandwidthMBps)
			rdS.Y = append(rdS.Y, p.PSNRdB)
			pwS.X = append(pwS.X, p.FPS)
			pwS.Y = append(pwS.Y, p.PowerW)
		}
		rd.Series = append(rd.Series, rdS)
		pw.Series = append(pw.Series, pwS)
	}
	if err := writeFile(out, "fig2_rd.svg", rd.WriteSVG); err != nil {
		return err
	}
	return writeFile(out, "fig2_power.svg", pw.WriteSVG)
}

func scenarioTable(title string, results []experiments.WorkloadResult) *tables.Table {
	tb := tables.New(title,
		"workload", "approach", "watts", "Nth", "FPS", "delta_pct", "stall_pct", "PSNR_dB", "QP", "freq_GHz")
	for _, wr := range results {
		for _, r := range wr.ByApproach {
			tb.MustAddRow(wr.Spec.Name, string(r.Approach), tables.F(r.Watts, 1),
				tables.F(r.Nth, 1), tables.F(r.FPS, 1), tables.F(r.DeltaPct, 1),
				tables.F(r.StallPct, 1), tables.F(r.PSNRdB, 1), tables.F(r.QP, 1), tables.F(r.FreqGHz, 2))
		}
	}
	return tb
}

func runFig4(opts experiments.Options, out string) ([]experiments.WorkloadResult, error) {
	results, err := experiments.RunScenario(experiments.ScenarioIWorkloads(), experiments.ScenarioI, opts)
	if err != nil {
		return nil, err
	}
	tb := scenarioTable("Figure 4: Scenario I (QoS violations and power per workload)", results)
	if err := tb.Render(os.Stdout); err != nil {
		return nil, err
	}
	if err := writeFile(out, "fig4.csv", tb.WriteCSV); err != nil {
		return nil, err
	}
	// Two charts: delta and power across workloads, one series per
	// approach (workloads on x as their index).
	dc := &plot.Chart{Title: "Fig. 4: QoS violations", XLabel: "workload index (1HR..5HR, 1LR..8LR)", YLabel: "Delta (%)"}
	pc := &plot.Chart{Title: "Fig. 4: power", XLabel: "workload index (1HR..5HR, 1LR..8LR)", YLabel: "Power (Watts)"}
	for _, a := range experiments.AllApproaches {
		var ds, ps plot.Series
		ds.Name, ps.Name = string(a), string(a)
		for i, wr := range results {
			if r, ok := wr.Get(a); ok {
				ds.X = append(ds.X, float64(i))
				ds.Y = append(ds.Y, r.DeltaPct)
				ps.X = append(ps.X, float64(i))
				ps.Y = append(ps.Y, r.Watts)
			}
		}
		dc.Series = append(dc.Series, ds)
		pc.Series = append(pc.Series, ps)
	}
	if err := writeFile(out, "fig4_delta.svg", dc.WriteSVG); err != nil {
		return nil, err
	}
	if err := writeFile(out, "fig4_power.svg", pc.WriteSVG); err != nil {
		return nil, err
	}
	return results, nil
}

func runTableI(scenarioI []experiments.WorkloadResult, out string) error {
	if scenarioI == nil {
		return fmt.Errorf("table1 requires fig4 results (run with -exp fig4,table1 or all)")
	}
	rows, err := experiments.TableI(scenarioI)
	if err != nil {
		return err
	}
	tb := tables.New("Table I: number of threads and frequency used in average",
		"approach", "HR_Nth", "HR_freq_GHz", "LR_Nth", "LR_freq_GHz")
	for _, r := range rows {
		tb.MustAddRow(string(r.Approach), tables.F(r.HRNth, 1), tables.F(r.HRFreq, 2),
			tables.F(r.LRNth, 1), tables.F(r.LRFreq, 2))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	return writeFile(out, "table1.csv", tb.WriteCSV)
}

func runFig5(opts experiments.Options, out string) error {
	res, err := experiments.Fig5Trace(opts, 500)
	if err != nil {
		return err
	}
	sum := metrics.Summarize(res.Trace, transcode.DefaultTargetFPS)
	fmt.Printf("500-frame MAMUT trace after warm-up: FPS %.1f, PSNR %.1f dB, QP %.1f, threads %.1f, freq %.2f GHz, delta %.1f%%\n",
		sum.AvgFPS, sum.AvgPSNRdB, sum.AvgQP, sum.AvgThreads, sum.AvgFreqGHz, sum.DeltaPct)
	if err := writeFile(out, "fig5.csv", func(w io.Writer) error {
		return metrics.WriteTraceCSV(w, res.Trace)
	}); err != nil {
		return err
	}
	mk := func(title, ylabel string, pick func(transcode.Observation) float64) *plot.Chart {
		s := plot.Series{Name: ylabel}
		for i, o := range res.Trace {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, pick(o))
		}
		return &plot.Chart{Title: title, XLabel: "frame", YLabel: ylabel, Series: []plot.Series{s}}
	}
	charts := map[string]*plot.Chart{
		"fig5_fps.svg":     mk("Fig. 5: throughput", "FPS", func(o transcode.Observation) float64 { return o.FPS }),
		"fig5_psnr.svg":    mk("Fig. 5: quality", "PSNR (dB)", func(o transcode.Observation) float64 { return o.PSNRdB }),
		"fig5_qp.svg":      mk("Fig. 5: QP", "QP", func(o transcode.Observation) float64 { return float64(o.Settings.QP) }),
		"fig5_threads.svg": mk("Fig. 5: threads", "threads", func(o transcode.Observation) float64 { return float64(o.Settings.Threads) }),
		"fig5_freq.svg":    mk("Fig. 5: frequency", "GHz", func(o transcode.Observation) float64 { return o.Settings.FreqGHz }),
	}
	for name, c := range charts {
		if err := writeFile(out, name, c.WriteSVG); err != nil {
			return err
		}
	}
	return nil
}

func runTableII(opts experiments.Options, out string) error {
	results, err := experiments.RunScenario(experiments.ScenarioIIWorkloads(), experiments.ScenarioII, opts)
	if err != nil {
		return err
	}
	tb := scenarioTable("Table II: Scenario II average results", results)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	return writeFile(out, "table2.csv", tb.WriteCSV)
}

func runLearnTime(opts experiments.Options) error {
	res, err := experiments.LearningTime(opts, 120000)
	if err != nil {
		return err
	}
	fmt.Printf("MAMUT per-agent first exploitation frame: QP=%d threads=%d DVFS=%d (all: %d)\n",
		res.MAMUTFirstExploit[0], res.MAMUTFirstExploit[1], res.MAMUTFirstExploit[2], res.MAMUTAllExploit)
	fmt.Printf("mono-agent (%d joint actions) first exploitation frame: %d (ratio %.1fx)\n",
		res.MonoActions, res.MonoFirstExploit, res.Ratio)
	fmt.Printf("mono-agent (%d joint actions) first exploitation frame: %d (ratio %.1fx)\n",
		res.MonoWideActions, res.MonoWideFirstExploit, res.WideRatio)
	return nil
}

func runAblation(opts experiments.Options) error {
	results, err := experiments.RunAblations(experiments.WorkloadSpec{}, opts, nil)
	if err != nil {
		return err
	}
	tb := tables.New("Ablations (2HR1LR workload)", "variant", "delta_pct", "watts", "FPS", "PSNR_dB")
	for _, r := range results {
		tb.MustAddRow(r.Name, tables.F(r.DeltaPct, 1), tables.F(r.Watts, 1),
			tables.F(r.FPS, 1), tables.F(r.PSNRdB, 1))
	}
	return tb.Render(os.Stdout)
}
