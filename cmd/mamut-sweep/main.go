// Command mamut-sweep characterises the simulated encoder+platform over a
// grid of QP, thread and frequency values (a generalisation of the
// paper's Fig. 2 measurement), printing one CSV row per operating point.
//
// With -checkpoint FILE each completed operating point streams to FILE
// and an interrupted sweep resumes from it, recomputing only the
// missing points; the resumed CSV is byte-identical to an uninterrupted
// run.
//
// Usage:
//
//	mamut-sweep -res HR -qp 22,27,32,37 -threads 1,2,4,8,12 -freq 1.6,2.3,3.2
//	mamut-sweep -res LR -frames 240 > lr_sweep.csv
//	mamut-sweep -res HR -frames 480 -checkpoint sweep.ckpt > hr_sweep.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	"mamut/internal/cliutil"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func main() {
	var (
		resFlag    = flag.String("res", "HR", "resolution class: HR|LR")
		qpFlag     = flag.String("qp", "22,25,27,29,32,35,37", "comma-separated QP values")
		thFlag     = flag.String("threads", "1,2,4,6,8,10,12", "comma-separated thread counts")
		freqFlag   = flag.String("freq", "3.2", "comma-separated frequencies (GHz)")
		frames     = flag.Int("frames", 120, "frames per operating point")
		complexity = flag.Float64("complexity", 1.0, "base content complexity")
		seed       = flag.Int64("seed", 1, "seed")
		workers    = flag.Int("workers", 0, "parallel worker goroutines (0 = one per CPU); row order and values are identical for any value")
		checkpoint = flag.String("checkpoint", "", "stream completed points to this file and resume from it (rows then print once the sweep finishes)")
	)
	flag.Parse()
	if *workers < 0 {
		fatal(fmt.Errorf("-workers %d must be >= 0", *workers))
	}

	var res video.Resolution
	switch strings.ToUpper(*resFlag) {
	case "HR":
		res = video.HR
	case "LR":
		res = video.LR
	default:
		fatal(fmt.Errorf("unknown resolution %q", *resFlag))
	}
	qps, err := cliutil.ParseInts(*qpFlag)
	if err != nil {
		fatal(err)
	}
	threads, err := cliutil.ParseInts(*thFlag)
	if err != nil {
		fatal(err)
	}
	freqs, err := cliutil.ParseFloats(*freqFlag)
	if err != nil {
		fatal(err)
	}

	spec := platform.DefaultSpec()
	spec.PowerNoiseW = 0
	model := hevc.DefaultModel()
	model.PSNRNoiseDB = 0
	model.BitsNoiseFrac = 0

	// Every operating point is an independent single-session simulation
	// with its own engine and seed, so the grid fans out across the worker
	// pool; results come back indexed by grid position, keeping the CSV
	// row order identical to the serial nested loops.
	type point struct {
		qp, th int
		freq   float64
	}
	var grid []point
	for _, qp := range qps {
		for _, th := range threads {
			for _, f := range freqs {
				grid = append(grid, point{qp, th, f})
			}
		}
	}
	// rows/rowDone form a side channel between the Run closures (worker
	// goroutines) and the flush callback below, so every access is guarded
	// by rowsMu; rowDone marks completion explicitly rather than treating
	// an empty row string as "not finished".
	var rowsMu sync.Mutex
	rows := make([]string, len(grid))
	rowDone := make([]bool, len(grid))
	units := make([]experiments.Unit[string], len(grid))
	for i, p := range grid {
		i, p := i, p
		units[i] = experiments.Unit[string]{
			Label: fmt.Sprintf("%s qp=%d threads=%d freq=%.1f", res, p.qp, p.th, p.freq),
			Run: func() (string, error) {
				row, err := measure(res, p.qp, p.th, p.freq, *frames, *complexity, *seed, spec, model)
				if err == nil {
					rowsMu.Lock()
					rows[i] = row
					rowDone[i] = true
					rowsMu.Unlock()
				}
				return row, err
			},
		}
	}
	fmt.Println("res,qp,threads,freq_ghz,fps,power_w,psnr_db,bitrate_mbps")
	if *checkpoint != "" {
		// With a checkpoint the file, not stdout, is the durable record:
		// restored points skip their Run closures (so the rows side
		// channel stays empty), and the full CSV prints from the combined
		// results once the sweep completes.
		ck, err := experiments.OpenFileCheckpoint[string](*checkpoint)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mamut-sweep: checkpoint: %d completed points on file\n", ck.Entries())
		outs, _, err := experiments.RunUnitsCheckpointed(*workers, units, nil, ck)
		if cerr := ck.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		for _, row := range outs {
			fmt.Println(row)
		}
		return
	}
	// Stream the contiguous completed prefix after every finished unit, so
	// rows appear incrementally, in grid order, and a late failure still
	// leaves every row before it on stdout. The final unit's progress call
	// sees every rowDone flag set, so the whole grid is always drained.
	printed := 0
	flush := func(done, total int, label string) {
		rowsMu.Lock()
		defer rowsMu.Unlock()
		for printed < len(rows) && rowDone[printed] {
			fmt.Println(rows[printed])
			printed++
		}
	}
	if _, err := experiments.RunUnits(*workers, units, flush); err != nil {
		fatal(err)
	}
}

func measure(res video.Resolution, qp, th int, f float64, frames int, complexity float64, seed int64,
	spec platform.Spec, model hevc.Model) (string, error) {
	eng, err := transcode.NewEngine(spec, model, seed)
	if err != nil {
		return "", err
	}
	seq := &video.Sequence{
		Name: "sweep", Res: res, Frames: frames * 2, FrameRate: 24,
		BaseComplexity: complexity, Dynamism: 0, MeanSceneLen: 1000,
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(seed)))
	if err != nil {
		return "", err
	}
	set := transcode.Settings{QP: qp, Threads: th, FreqGHz: f}
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source:      src,
		Controller:  &transcode.Static{S: set},
		Initial:     set,
		FrameBudget: frames,
	}); err != nil {
		return "", err
	}
	out, err := eng.Run()
	if err != nil {
		return "", err
	}
	sr := out.Sessions[0]
	return fmt.Sprintf("%s,%d,%d,%.1f,%.2f,%.2f,%.2f,%.3f",
		res, qp, th, f, sr.AvgFPS, out.AvgPowerW, sr.AvgPSNRdB, sr.AvgBitrateMbps), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mamut-sweep:", err)
	os.Exit(1)
}
