package mamut

import (
	"fmt"
	"io"
	"math/rand"

	"mamut/internal/baseline"
	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/serve"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// Re-exported substrate types. Aliases keep the public API small while the
// implementation stays in internal packages.
type (
	// Settings are the three knobs a controller manages per stream.
	Settings = transcode.Settings
	// Observation is the per-frame feedback a controller receives.
	Observation = transcode.Observation
	// Controller decides the knob settings of one stream.
	Controller = transcode.Controller
	// Resolution is a stream's resolution class (HR or LR).
	Resolution = video.Resolution
	// Sequence is a catalog entry describing one source video.
	Sequence = video.Sequence
	// Catalog is a collection of sequences.
	Catalog = video.Catalog
	// PlatformSpec describes the server hardware model.
	PlatformSpec = platform.Spec
	// EncoderModel holds the HEVC encoder calibration constants.
	EncoderModel = hevc.Model
	// MAMUTConfig parametrises the multi-agent controller.
	MAMUTConfig = core.Config
	// MAMUTStats is the controller's learning telemetry.
	MAMUTStats = core.Stats
)

// Resolution classes.
const (
	HR = video.HR
	LR = video.LR
)

// Approach identifies a run-time management strategy.
type Approach = experiments.Approach

// The three approaches compared in the paper.
const (
	ApproachHeuristic = experiments.Heuristic
	ApproachMonoAgent = experiments.MonoAgent
	ApproachMAMUT     = experiments.MAMUT
)

// TargetFPS is the paper's real-time objective.
const TargetFPS = transcode.DefaultTargetFPS

// DefaultPlatform returns the paper's server model (dual Xeon E5-2667 v4).
func DefaultPlatform() PlatformSpec { return platform.DefaultSpec() }

// DefaultEncoderModel returns the calibrated Kvazaar-style encoder model.
func DefaultEncoderModel() EncoderModel { return hevc.DefaultModel() }

// DefaultCatalog returns the JCT-VC-style sequence catalog.
func DefaultCatalog() *Catalog { return video.DefaultCatalog() }

// NewController builds a controller of the given approach for one stream
// of the given resolution, with the paper's default configuration.
func NewController(a Approach, res Resolution, seed int64) (Controller, error) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	initial := experiments.InitialSettings(res)
	rng := rand.New(rand.NewSource(seed))
	switch a {
	case ApproachHeuristic:
		return baseline.NewHeuristic(baseline.DefaultHeuristicConfig(res, spec, model.MaxUsefulThreads(res)), initial)
	case ApproachMonoAgent:
		return baseline.NewMonoAgent(baseline.DefaultMonoConfig(res, spec, model.MaxUsefulThreads(res)), initial, rng)
	case ApproachMAMUT:
		return core.New(core.DefaultConfig(res, spec, model.MaxUsefulThreads(res)), initial, rng)
	default:
		return nil, fmt.Errorf("mamut: unknown approach %q", a)
	}
}

// SimulationConfig configures a multi-stream transcoding simulation.
type SimulationConfig struct {
	// Platform overrides the default server model when non-nil.
	Platform *PlatformSpec
	// Encoder overrides the default encoder model when non-nil.
	Encoder *EncoderModel
	// Catalog overrides the default sequence catalog when non-nil.
	Catalog *Catalog
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
}

// StreamConfig describes one user's transcoding request.
type StreamConfig struct {
	// Sequence names a catalog entry; the stream loops it.
	Sequence string
	// Approach selects the controller (ApproachMAMUT when empty).
	Approach Approach
	// Frames is the number of frames to transcode. Required.
	Frames int
	// BandwidthMbps is the user's bandwidth; the resolution default
	// (6 Mb/s HR, 3 Mb/s LR) when zero.
	BandwidthMbps float64
	// StartAtSec delays the stream's arrival to the given simulated time,
	// modelling users joining an already-busy server.
	StartAtSec float64
	// CollectTrace keeps per-frame observations in the result.
	CollectTrace bool
}

// StreamResult summarises one stream after Run.
type StreamResult = transcode.SessionResult

// SimulationResult is the outcome of Run.
type SimulationResult = transcode.Result

// StreamEnd is the departure notification delivered to an OnStreamEnd
// hook when a stream finishes its frame budget and leaves the server.
type StreamEnd = transcode.SessionEnd

// Simulation assembles streams on one simulated server.
type Simulation struct {
	eng     *transcode.Engine
	catalog *Catalog
	spec    PlatformSpec
	model   EncoderModel
	rng     *rand.Rand
	streams int
}

// NewSimulation builds an empty simulation.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	spec := platform.DefaultSpec()
	if cfg.Platform != nil {
		spec = *cfg.Platform
	}
	model := hevc.DefaultModel()
	if cfg.Encoder != nil {
		model = *cfg.Encoder
	}
	catalog := cfg.Catalog
	if catalog == nil {
		catalog = video.DefaultCatalog()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng, err := transcode.NewEngine(spec, model, rng.Int63())
	if err != nil {
		return nil, err
	}
	return &Simulation{eng: eng, catalog: catalog, spec: spec, model: model, rng: rng}, nil
}

// AddStream registers one transcoding request. It may also be called
// while the simulation is running — from between AdvanceTo steps or from
// an OnStreamEnd hook — as a live arrival: the stream then joins at
// StartAtSec, or immediately when that time has already passed.
func (s *Simulation) AddStream(cfg StreamConfig) error {
	if cfg.Sequence == "" {
		return fmt.Errorf("mamut: stream needs a sequence name")
	}
	seq, err := s.catalog.Get(cfg.Sequence)
	if err != nil {
		return err
	}
	if cfg.Approach == "" {
		cfg.Approach = ApproachMAMUT
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(s.rng.Int63())))
	if err != nil {
		return err
	}
	ctrl, err := s.newController(cfg.Approach, seq.Res)
	if err != nil {
		return err
	}
	bw := cfg.BandwidthMbps
	if bw == 0 {
		bw = core.DefaultBandwidth(seq.Res)
	}
	_, err = s.eng.AddSession(transcode.SessionConfig{
		Source:        src,
		Controller:    ctrl,
		Initial:       experiments.InitialSettings(seq.Res),
		BandwidthMbps: bw,
		FrameBudget:   cfg.Frames,
		StartAtSec:    cfg.StartAtSec,
		CollectTrace:  cfg.CollectTrace,
	})
	if err != nil {
		return err
	}
	s.streams++
	return nil
}

func (s *Simulation) newController(a Approach, res Resolution) (Controller, error) {
	rng := rand.New(rand.NewSource(s.rng.Int63()))
	initial := experiments.InitialSettings(res)
	switch a {
	case ApproachHeuristic:
		return baseline.NewHeuristic(baseline.DefaultHeuristicConfig(res, s.spec, s.model.MaxUsefulThreads(res)), initial)
	case ApproachMonoAgent:
		return baseline.NewMonoAgent(baseline.DefaultMonoConfig(res, s.spec, s.model.MaxUsefulThreads(res)), initial, rng)
	case ApproachMAMUT:
		return core.New(core.DefaultConfig(res, s.spec, s.model.MaxUsefulThreads(res)), initial, rng)
	default:
		return nil, fmt.Errorf("mamut: unknown approach %q", a)
	}
}

// Streams returns the number of registered streams.
func (s *Simulation) Streams() int { return s.streams }

// ActiveStreams returns the number of streams currently holding server
// resources (arrived and not yet departed).
func (s *Simulation) ActiveStreams() int { return s.eng.ActiveSessions() }

// Now returns the current simulated time.
func (s *Simulation) Now() float64 { return s.eng.Now() }

// OnStreamEnd installs a hook that fires when a stream reaches its frame
// budget and departs. The hook runs inside the event loop; it may call
// AddStream (continuous churn), but not Run/RunUntilAll/AdvanceTo.
func (s *Simulation) OnStreamEnd(fn func(StreamEnd)) { s.eng.OnSessionEnd(fn) }

// AdvanceTo steps the simulation to the given absolute time, processing
// every frame completion, departure and arrival at or before it. It lets
// callers interleave the simulation with an outer event loop; Run picks
// up from wherever the clock stands.
func (s *Simulation) AdvanceTo(t float64) error { return s.eng.AdvanceTo(t) }

// Run simulates until every stream finishes its frame budget.
func (s *Simulation) Run() (*SimulationResult, error) { return s.eng.Run() }

// RunUntilAll simulates with all streams kept busy until the slowest one
// reaches its budget (constant contention; see transcode.RunUntilAll). It
// is terminal: afterwards the simulation rejects Run, AdvanceTo and
// AddStream — build a new Simulation to continue.
func (s *Simulation) RunUntilAll() (*SimulationResult, error) { return s.eng.RunUntilAll() }

// Experiment re-exports: the full harness that regenerates the paper's
// evaluation lives in internal/experiments; these aliases expose it.
type (
	// ExperimentOptions configures the reproduction experiments.
	ExperimentOptions = experiments.Options
	// WorkloadSpec is a mix of simultaneous streams, e.g. 2HR3LR.
	WorkloadSpec = experiments.WorkloadSpec
	// WorkloadResult couples a workload with per-approach results.
	WorkloadResult = experiments.WorkloadResult
	// ApproachResult is one approach's measured behaviour on a workload.
	ApproachResult = experiments.ApproachResult
	// Fig2Point is one operating point of the Fig. 2 characterisation.
	Fig2Point = experiments.Fig2Point
	// Fig5Result is the Fig. 5 execution trace.
	Fig5Result = experiments.Fig5Result
	// TableIRow is one row of the paper's Table I.
	TableIRow = experiments.TableIRow
	// LearningTimeResult quantifies the SV-B learning-time comparison.
	LearningTimeResult = experiments.LearningTimeResult
	// AblationResult is one MAMUT-variant measurement.
	AblationResult = experiments.AblationResult
)

// Scenario kinds (paper SV-B and SV-C).
const (
	ScenarioI  = experiments.ScenarioI
	ScenarioII = experiments.ScenarioII
)

// DefaultExperimentOptions returns the options used for EXPERIMENTS.md.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns reduced options for quick runs.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// ScenarioIWorkloads returns the Fig. 4 workload list.
func ScenarioIWorkloads() []WorkloadSpec { return experiments.ScenarioIWorkloads() }

// ScenarioIIWorkloads returns the Table II workload list.
func ScenarioIIWorkloads() []WorkloadSpec { return experiments.ScenarioIIWorkloads() }

// RunScenario measures every workload under every approach.
func RunScenario(workloads []WorkloadSpec, kind experiments.ScenarioKind, opts ExperimentOptions) ([]WorkloadResult, error) {
	return experiments.RunScenario(workloads, kind, opts)
}

// RunWorkload measures one workload under one approach.
func RunWorkload(w WorkloadSpec, kind experiments.ScenarioKind, a Approach, opts ExperimentOptions) (ApproachResult, error) {
	return experiments.RunWorkload(w, kind, a, opts)
}

// Fig2Sweep regenerates the Fig. 2 characterisation points.
func Fig2Sweep(opts ExperimentOptions) ([]Fig2Point, error) { return experiments.Fig2Sweep(opts) }

// Fig5Trace regenerates the Fig. 5 execution trace.
func Fig5Trace(opts ExperimentOptions, window int) (*Fig5Result, error) {
	return experiments.Fig5Trace(opts, window)
}

// TableI aggregates Scenario I results into the paper's Table I.
func TableI(results []WorkloadResult) ([]TableIRow, error) { return experiments.TableI(results) }

// LearningTime runs the SV-B learning-time comparison.
func LearningTime(opts ExperimentOptions, frames int) (*LearningTimeResult, error) {
	return experiments.LearningTime(opts, frames)
}

// RunAblations measures the DESIGN.md S5 MAMUT variants.
func RunAblations(w WorkloadSpec, opts ExperimentOptions) ([]AblationResult, error) {
	return experiments.RunAblations(w, opts, nil)
}

// Serving-layer re-exports: internal/serve turns the batch simulator into
// a continuously loaded service (stochastic session churn dispatched
// across a multi-server fleet under a pluggable placement policy, with
// steady-state SLO/power/rejection metrics). Setting
// ServeConfig.KnowledgeReuse shares learned transcoding knowledge across
// sessions (KaaS-style warm starts): departing MAMUT sessions contribute
// their tables to a per-resolution-class KnowledgeStore and new
// admissions are seeded from it — see ServeResult.KnowledgeContributions
// and ServeResult.KnowledgeSeeded for the store's activity.
type (
	// ServeConfig configures one service run (fleet, policy, workload,
	// measurement protocol).
	ServeConfig = serve.Config
	// ServeWorkload describes the offered session arrival/departure
	// process (Poisson, diurnal, ramp, or trace replay).
	ServeWorkload = serve.Workload
	// ServeSessionRequest is one arrival of the offered load.
	ServeSessionRequest = serve.SessionRequest
	// ServeLoadCurve selects how the arrival rate evolves over a run.
	ServeLoadCurve = serve.LoadCurve
	// ServeResult is the steady-state outcome of a service run.
	ServeResult = serve.Result
	// ServeSessionOutcome is the service-level record of one arrival.
	ServeSessionOutcome = serve.SessionOutcome
	// ServeServerResult aggregates one server of the fleet.
	ServeServerResult = serve.ServerResult
	// ServeClassStats aggregates measured sessions of one resolution class.
	ServeClassStats = serve.ClassStats
	// ServeQuantileSummary reports streamed p50/p95/p99 of one metric.
	ServeQuantileSummary = serve.QuantileSummary
	// ServeClassDistributions carries a class's FPS and session-duration
	// quantile summaries, estimated online from fixed-bin sketches.
	ServeClassDistributions = serve.ClassDistributions
	// ServeWindowedStats reports time-decayed (recent-window) service
	// health alongside the whole-window averages.
	ServeWindowedStats = serve.WindowedStats
	// PlacementPolicy decides which server admits an arrival.
	PlacementPolicy = serve.Policy
	// PlacementFleetIndexer marks a PlacementPolicy that can place from
	// an incrementally maintained fleet index (O(log n) placement); all
	// built-in policies implement it.
	PlacementFleetIndexer = serve.FleetIndexer
	// PlacementFleetIndex is a policy's incremental view of the fleet.
	PlacementFleetIndex = serve.FleetIndex
	// ServerState is the dispatcher's view a policy decides from.
	ServerState = serve.ServerState
	// ServeDispatchMode selects the fleet dispatcher implementation.
	ServeDispatchMode = serve.DispatchMode
	// ServeGridSpec spans a (policy x arrival-rate x seed) grid.
	ServeGridSpec = serve.GridSpec
	// ServeGridCell couples one grid coordinate with its result.
	ServeGridCell = serve.GridCell
	// ServeRebalancer plans live session migrations on the service's
	// control-epoch schedule (ServeConfig.Rebalance enables the built-in
	// power-hotspot implementation; ServeConfig.RebalancerFactory
	// installs a custom one).
	ServeRebalancer = serve.Rebalancer
	// ServeMove is one rebalancing step: migrate Sessions live sessions
	// from server From to server To.
	ServeMove = serve.Move
	// ServeAutoscale parametrises target-utilization fleet autoscaling
	// (ServeConfig.Autoscale).
	ServeAutoscale = serve.AutoscaleConfig
	// ServeDrainEvent schedules one server decommission: stop admitting,
	// live-migrate the residents off, remove the server once empty.
	ServeDrainEvent = serve.DrainEvent
	// ServeQueueConfig bounds the fleet-level admission waiting room
	// (ServeConfig.Queue): capacity, per-entry deadline, and the
	// resolution-class priority order.
	ServeQueueConfig = serve.QueueConfig
	// ServeQueuePriority orders the admission queue across resolution
	// classes (FIFO within a class).
	ServeQueuePriority = serve.QueuePriority
	// ServeFleetState is the fleet-level (queue backlog) context a
	// backlog-observing policy sees before each placement decision.
	ServeFleetState = serve.FleetState
	// ServeFaultConfig schedules deterministic fault injection into a
	// service run (ServeConfig.Faults): the fault plan, the periodic
	// session-checkpoint interval, and the crash-recovery pipeline.
	ServeFaultConfig = serve.FaultConfig
	// ServeFaultEvent is one scheduled fault: a server crash at an
	// instant, or a degrade/blip window.
	ServeFaultEvent = serve.FaultEvent
	// ServeFaultKind identifies a failure mode (crash, degrade, blip).
	ServeFaultKind = serve.FaultKind
	// ServeFaultRecovery configures what happens to sessions a crash
	// interrupts: drop them, or re-admit through the waiting room with
	// per-class retry/backoff/deadline bounds.
	ServeFaultRecovery = serve.FaultRecovery
	// ServeFaultRecoveryClass bounds one resolution class's recovery
	// effort (backoff, retries, deadline).
	ServeFaultRecoveryClass = serve.FaultRecoveryClass
	// ServeBacklogObserver marks a PlacementPolicy that observes queue
	// backlog state (ServeFleetState) before each placement decision.
	ServeBacklogObserver = serve.BacklogObserver
	// MAMUTSnapshot is the portable learned state of one MAMUT controller
	// (all three agents' Q-tables, visit counts and transition models) —
	// the unit of cross-session knowledge reuse.
	MAMUTSnapshot = core.Snapshot
	// KnowledgeStore is the per-resolution-class shared knowledge base a
	// knowledge-reuse service run maintains.
	KnowledgeStore = serve.KnowledgeStore
	// ServeCheckpoint is a durable, append-only grid checkpoint: assign
	// one to ServeGridSpec.Checkpoint and an interrupted grid resumes
	// bit-identically, recomputing only the missing cells.
	ServeCheckpoint = experiments.FileCheckpoint[*serve.Result]
)

// NewKnowledgeStore returns an empty cross-session knowledge base.
// RunService builds its own when ServeConfig.KnowledgeReuse is set; a
// standalone store is for callers folding MAMUTSnapshots themselves.
func NewKnowledgeStore() *KnowledgeStore { return serve.NewKnowledgeStore() }

// ImportKnowledge reads a versioned, hash-stamped knowledge artifact
// written by KnowledgeStore.Export, verifying its digest before
// restoring the store. Pass the result as ServeConfig.Knowledge (with
// KnowledgeReuse set) to warm-start a fleet from an earlier run.
func ImportKnowledge(r io.Reader) (*KnowledgeStore, error) { return serve.ImportKnowledge(r) }

// OpenServeCheckpoint opens (or creates) the grid checkpoint file at
// path, loading every cell already on file.
func OpenServeCheckpoint(path string) (*ServeCheckpoint, error) {
	return experiments.OpenFileCheckpoint[*serve.Result](path)
}

// Placement policies.
const (
	PolicyRoundRobin  = serve.PolicyRoundRobin
	PolicyLeastLoaded = serve.PolicyLeastLoaded
	PolicyPowerAware  = serve.PolicyPowerAware
)

// Fleet dispatcher implementations. DispatchIndexed (the default)
// advances only servers with events due before each arrival via an
// engine event heap and places through the policies' fleet indexes, so
// dispatch costs O(log n) in the fleet size; DispatchScan is the
// O(servers) reference sweep. Both produce bit-identical results.
const (
	DispatchIndexed = serve.DispatchIndexed
	DispatchScan    = serve.DispatchScan
)

// Load curves for ServeWorkload.
const (
	LoadConstant = serve.LoadConstant
	LoadDiurnal  = serve.LoadDiurnal
	LoadRamp     = serve.LoadRamp
	LoadBurst    = serve.LoadBurst
)

// Admission-queue priority orders (ServeQueueConfig.Priority), plus the
// deadline the queue falls back to when none is configured.
const (
	QueuePrioHRFirst = serve.QueuePrioHRFirst
	QueuePrioLRFirst = serve.QueuePrioLRFirst
	QueuePrioFIFO    = serve.QueuePrioFIFO

	DefaultQueueDeadlineSec = serve.DefaultQueueDeadlineSec
)

// Fault kinds (ServeFaultEvent.Kind), plus the recovery bounds crash
// recovery falls back to when none are configured.
const (
	FaultCrash   = serve.FaultCrash
	FaultDegrade = serve.FaultDegrade
	FaultBlip    = serve.FaultBlip

	DefaultFaultBackoffSec      = serve.DefaultFaultBackoffSec
	DefaultFaultRetryMax        = serve.DefaultFaultRetryMax
	DefaultFaultDeadlineSec     = serve.DefaultFaultDeadlineSec
	DefaultFaultRestoreStallSec = serve.DefaultFaultRestoreStallSec
)

// ServePolicyNames lists the registered placement policies.
func ServePolicyNames() []string { return serve.PolicyNames() }

// ServeQueuePriorities lists the admission-queue priority orders in
// deterministic order.
func ServeQueuePriorities() []ServeQueuePriority { return serve.QueuePriorities() }

// ServeFaultKinds lists the fault-injection failure modes in
// deterministic order.
func ServeFaultKinds() []ServeFaultKind { return serve.FaultKinds() }

// ParseServeFaultPlan parses a comma-separated fault plan in the CLI
// spec syntax, e.g. "crash@120:0,degrade@60-180:2:0.5,blip@90-95:1".
func ParseServeFaultPlan(s string) ([]ServeFaultEvent, error) { return serve.ParseFaultPlan(s) }

// FormatServeFaultPlan renders a fault plan back into the spec syntax;
// the result re-parses to an equal plan.
func FormatServeFaultPlan(plan []ServeFaultEvent) string { return serve.FormatFaultPlan(plan) }

// RunService executes one service simulation: generate (or replay) the
// arrival process, dispatch every arrival across the fleet, simulate each
// server on the worker pool and aggregate steady-state metrics. Results
// are bit-identical for any ServeConfig.Workers value.
func RunService(cfg ServeConfig) (*ServeResult, error) { return serve.Run(cfg) }

// RunServiceGrid fans a (policy x arrival-rate x seed) grid of service
// runs across the worker pool, in deterministic cell order.
func RunServiceGrid(spec ServeGridSpec) ([]ServeGridCell, error) { return serve.RunGrid(spec) }

// ServeArrivals generates (or replays) the arrival stream a ServeConfig
// with this workload and seed would dispatch — the same stream RunService
// consumes. A nil catalog uses the default.
func ServeArrivals(w ServeWorkload, catalog *Catalog, seed int64) ([]ServeSessionRequest, error) {
	if catalog == nil {
		catalog = video.DefaultCatalog()
	}
	return serve.GenerateArrivals(w, catalog, seed)
}

// SplitServeArrivals partitions an arrival stream into interleaved
// round-robin substreams (request r to substream r.ID mod shards): each
// substream preserves time order, sizes differ by at most one, and the
// ID-ordered union is exactly the input — the workload-side primitive
// for driving independent per-region runs over one generated stream.
func SplitServeArrivals(arrivals []ServeSessionRequest, shards int) ([][]ServeSessionRequest, error) {
	return serve.SplitArrivals(arrivals, shards)
}
