// Pretrained: train a MAMUT controller online, persist its learned state
// (Q-tables, visit counts, transition model), and redeploy it on a new
// stream — it starts near its converged policy instead of relearning.
// This is the production counterpart of the paper's evaluation protocol,
// where the tables persist across repetitions of the transcoding process.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func main() {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	catalog := video.DefaultCatalog()

	// Phase 1: train online on Kimono for 20k frames.
	trained := runStream(spec, model, catalog, "Kimono", 20000, nil)
	var checkpoint bytes.Buffer
	if err := trained.ctrl.Save(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (training on Kimono): late-window violations %.1f%%, checkpoint %d bytes\n",
		trained.lateDelta, checkpoint.Len())

	// Phase 2a: a cold controller meets a different video.
	cold := runStream(spec, model, catalog, "BasketballDrive", 6000, nil)
	// Phase 2b: the warm-started controller meets the same video.
	warm := runStream(spec, model, catalog, "BasketballDrive", 6000, checkpoint.Bytes())

	fmt.Printf("phase 2 (BasketballDrive, 6000 frames):\n")
	fmt.Printf("  cold start:  %.1f%% violations\n", cold.delta)
	fmt.Printf("  warm start:  %.1f%% violations\n", warm.delta)
	if warm.delta < cold.delta {
		fmt.Println("the persisted policy transfers: the warm controller skips most of the learning cost")
	}
}

type streamRun struct {
	ctrl      *core.Controller
	delta     float64
	lateDelta float64
}

func runStream(spec platform.Spec, model hevc.Model, catalog *video.Catalog,
	sequence string, frames int, checkpoint []byte) streamRun {
	eng, err := transcode.NewEngine(spec, model, 5)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := catalog.Get(sequence)
	if err != nil {
		log.Fatal(err)
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(6)))
	if err != nil {
		log.Fatal(err)
	}
	initial := experiments.InitialSettings(seq.Res)
	ctrl, err := core.New(core.DefaultConfig(seq.Res, spec, model.MaxUsefulThreads(seq.Res)),
		initial, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	if checkpoint != nil {
		if err := ctrl.Load(bytes.NewReader(checkpoint)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source: src, Controller: ctrl, Initial: initial,
		BandwidthMbps: core.DefaultBandwidth(seq.Res),
		FrameBudget:   frames, CollectTrace: true,
	}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	trace := res.Sessions[0].Trace
	return streamRun{
		ctrl:      ctrl,
		delta:     violPct(trace),
		lateDelta: violPct(trace[len(trace)-len(trace)/4:]),
	}
}

func violPct(trace []transcode.Observation) float64 {
	if len(trace) == 0 {
		return 0
	}
	n := 0
	for _, o := range trace {
		if o.FPS < transcode.DefaultTargetFPS {
			n++
		}
	}
	return 100 * float64(n) / float64(len(trace))
}
