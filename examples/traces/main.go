// Traces: reproduce the paper's Fig. 5 — a detailed execution trace of
// MAMUT transcoding one HR video after learning: FPS hugging the 24 FPS
// target, threads nearly flat, frequency doing the fine-grained
// regulation. Writes fig5.csv (and prints an ASCII sparkline).
package main

import (
	"fmt"
	"log"
	"os"

	"mamut"
	"mamut/internal/metrics"
)

func main() {
	opts := mamut.DefaultExperimentOptions()
	opts.WarmupFrames = 20000 // enough for a single uncontended stream

	res, err := mamut.Fig5Trace(opts, 500)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("fig5.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := metrics.WriteTraceCSV(f, res.Trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote fig5.csv (%d frames)\n\n", len(res.Trace))

	// ASCII rendition of the figure's five panels, decimated to 80 cols.
	spark("FPS       ", res.Trace, func(o mamut.Observation) float64 { return o.FPS })
	spark("PSNR (dB) ", res.Trace, func(o mamut.Observation) float64 { return o.PSNRdB })
	spark("QP        ", res.Trace, func(o mamut.Observation) float64 { return float64(o.Settings.QP) })
	spark("threads   ", res.Trace, func(o mamut.Observation) float64 { return float64(o.Settings.Threads) })
	spark("freq (GHz)", res.Trace, func(o mamut.Observation) float64 { return o.Settings.FreqGHz })

	st := res.Stats
	fmt.Printf("\nagent exploitation began at frames: QP=%d threads=%d DVFS=%d\n",
		st.FirstExploitFrame[0], st.FirstExploitFrame[1], st.FirstExploitFrame[2])
}

func spark(label string, trace []mamut.Observation, pick func(mamut.Observation) float64) {
	const cols = 80
	levels := []rune(" .:-=+*#%@")
	lo, hi := pick(trace[0]), pick(trace[0])
	for _, o := range trace {
		v := pick(o)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	line := make([]rune, cols)
	for c := 0; c < cols; c++ {
		o := trace[c*len(trace)/cols]
		v := pick(o)
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		line[c] = levels[idx]
	}
	fmt.Printf("%s [%6.2f..%6.2f] %s\n", label, lo, hi, string(line))
}
