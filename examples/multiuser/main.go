// Multiuser: serve a mixed batch of HR and LR streams simultaneously —
// the paper's core setting. Each stream gets its own MAMUT controller;
// they couple through core contention and the shared power budget.
package main

import (
	"fmt"
	"log"

	"mamut"
)

func main() {
	sim, err := mamut.NewSimulation(mamut.SimulationConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Two 1080p users and three 832x480 users with different bandwidth
	// contracts; the last two join mid-run (user churn).
	streams := []mamut.StreamConfig{
		{Sequence: "BasketballDrive", Approach: mamut.ApproachMAMUT, Frames: 20000, BandwidthMbps: 6},
		{Sequence: "Cactus", Approach: mamut.ApproachMAMUT, Frames: 20000, BandwidthMbps: 6},
		{Sequence: "BQMall", Approach: mamut.ApproachMAMUT, Frames: 20000, BandwidthMbps: 3},
		{Sequence: "PartyScene", Approach: mamut.ApproachMAMUT, Frames: 20000, BandwidthMbps: 3, StartAtSec: 120},
		{Sequence: "RaceHorses", Approach: mamut.ApproachMAMUT, Frames: 20000, BandwidthMbps: 3, StartAtSec: 240},
	}
	for _, s := range streams {
		if err := sim.AddStream(s); err != nil {
			log.Fatal(err)
		}
	}

	// RunUntilAll keeps every stream transcoding until the slowest one is
	// done, so contention is constant throughout.
	res, err := sim.RunUntilAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d streams for %.0f simulated seconds at %.1f W average\n\n",
		len(res.Sessions), res.DurationSec, res.AvgPowerW)
	fmt.Println("stream  resolution  sequence           FPS    delta%   PSNR   threads  GHz")
	for i, sr := range res.Sessions {
		fmt.Printf("%4d    %-10s  %-17s  %5.1f  %6.1f  %5.1f  %6.1f  %5.2f\n",
			sr.ID, sr.Res, streams[i].Sequence, sr.AvgFPS, sr.ViolationPct,
			sr.AvgPSNRdB, sr.AvgThreads, sr.AvgFreqGHz)
	}

	fmt.Println("\nnote: averages include the online learning phase; see")
	fmt.Println("cmd/mamut-experiments for warmed-up, repetition-averaged numbers.")
}
