// Knowledge: share learned transcoding knowledge across sessions
// (KaaS-style warm starts) and measure what it buys in the short-session
// regime.
//
// A 2-server fleet faces churning sessions whose mean lifetime (15 s,
// ~360 frames) is far too short to learn good settings from scratch —
// a cold-started MAMUT session spends most of its life taking random
// exploration actions. With ServeConfig.KnowledgeReuse, every departing
// session's Q-tables, visit counts and transition models fold into a
// per-resolution-class knowledge base (count-weighted averaging, in
// arrival order), and each new admission is seeded from it: states the
// service has already explored start directly in the exploitation
// phase. Same seed, same arrivals — the only difference is whether
// knowledge persists across sessions.
package main

import (
	"fmt"
	"log"

	"mamut"
)

func main() {
	base := mamut.ServeConfig{
		Servers:              2,
		MaxSessionsPerServer: 6,
		Approach:             mamut.ApproachMAMUT,
		Workload: mamut.ServeWorkload{
			ArrivalRate:    0.35,
			DurationSec:    240,
			HRFraction:     0.4,
			MeanSessionSec: 15, // short sessions: the regime knowledge reuse targets
		},
		WarmupSec: 60,
		Seed:      7,
	}

	fmt.Println("mode   SLO%   HR-FPS  LR-FPS  contributions  warm-starts")
	for _, knowledge := range []bool{false, true} {
		cfg := base
		cfg.KnowledgeReuse = knowledge
		res, err := mamut.RunService(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "cold"
		if knowledge {
			mode = "warm"
		}
		fmt.Printf("%-5s  %4.1f  %6.1f  %6.1f  %13d  %11d\n",
			mode, res.SLOAttainedPct, res.HR.AvgFPS, res.LR.AvgFPS,
			res.KnowledgeContributions, res.KnowledgeSeeded)
	}
}
