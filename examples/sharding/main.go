// Sharding: split the serving fleet across per-shard dispatcher
// goroutines and verify the contract that makes that safe — the sharded
// run is bit-identical to the unsharded one.
//
// ServeConfig.Shards partitions the servers (server i belongs to shard
// i mod S); each shard advances its own engines in the parallel phase of
// every dispatcher step and reconciles with the coordinator before any
// placement, so every decision still sees the whole fleet. The program
// runs the identical workload unsharded and with 4 shards, checks the
// results are deeply equal, demonstrates the stream-splitting primitive
// (SplitArrivals: interleaved substreams whose union is the unsharded
// stream), and reports the measured wall-clock ratio — on a single-core
// host expect ~1.0x, the point being that correctness never depends on
// the host (see cmd/mamut-fleetbench for the scaling measurement).
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"mamut"
)

func main() {
	base := mamut.ServeConfig{
		Servers:              512,
		MaxSessionsPerServer: 8,
		Policy:               mamut.PolicyLeastLoaded,
		Approach:             mamut.ApproachHeuristic,
		Workload: mamut.ServeWorkload{
			ArrivalRate:    25,
			DurationSec:    60,
			MeanSessionSec: 10,
		},
		WarmupSec: 15,
		Seed:      7,
		Workers:   1,
	}

	run := func(shards int) (*mamut.ServeResult, time.Duration) {
		cfg := base
		cfg.Shards = shards
		cfg.Workers = shards // drain pool scales with the shards
		if shards == 0 {
			cfg.Workers = 1
		}
		start := time.Now()
		res, err := mamut.RunService(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	fmt.Printf("fleet of %d servers, %g arrivals/s for %gs (%s policy)\n\n",
		base.Servers, base.Workload.ArrivalRate, base.Workload.DurationSec, base.Policy)

	unsharded, t1 := run(0)
	sharded, t4 := run(4)

	for _, row := range []struct {
		name string
		res  *mamut.ServeResult
		el   time.Duration
	}{{"1 shard ", unsharded, t1}, {"4 shards", sharded, t4}} {
		fmt.Printf("%s  offered %d  admitted %d  rejected %d  SLO %.2f%%  fleet %.1f W  (%.2fs wall)\n",
			row.name, row.res.Offered, row.res.Admitted, row.res.Rejected,
			row.res.SLOAttainedPct, row.res.FleetAvgPowerW, row.el.Seconds())
	}

	if !reflect.DeepEqual(unsharded, sharded) {
		log.Fatal("sharded result diverged from the unsharded run — the determinism contract is broken")
	}
	fmt.Printf("\nresults are deeply equal: every float, every per-server entry, bit for bit\n")
	fmt.Printf("wall-clock ratio (1 shard / 4 shards): %.2fx\n\n", t1.Seconds()/t4.Seconds())

	// The workload-side splitting primitive: interleaved substreams whose
	// ID-ordered union is exactly the unsharded stream — what a regional
	// deployment would feed to independent per-region dispatchers.
	arrivals, err := mamut.ServeArrivals(base.Workload, nil, base.Seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := mamut.SplitServeArrivals(arrivals, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SplitArrivals: %d arrivals into substreams of", len(arrivals))
	total := 0
	for _, p := range parts {
		fmt.Printf(" %d", len(p))
		total += len(p)
	}
	fmt.Printf(" (union %d — nothing lost, nothing duplicated)\n", total)
}
