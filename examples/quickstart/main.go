// Quickstart: transcode one 1080p stream under MAMUT control and watch the
// multi-agent controller learn to hold the 24 FPS real-time target.
package main

import (
	"fmt"
	"log"

	"mamut"
)

func main() {
	sim, err := mamut.NewSimulation(mamut.SimulationConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// One user requests the Kimono sequence at 1080p. MAMUT's three agents
	// (QP, threads, DVFS) start untrained and learn online.
	const frames = 24000
	if err := sim.AddStream(mamut.StreamConfig{
		Sequence:     "Kimono",
		Approach:     mamut.ApproachMAMUT,
		Frames:       frames,
		CollectTrace: true,
	}); err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	stream := res.Sessions[0]
	fmt.Printf("transcoded %d frames in %.1f simulated seconds (avg %.1f W)\n",
		stream.Frames, res.DurationSec, res.AvgPowerW)
	fmt.Printf("whole run: FPS %.1f, PSNR %.1f dB, QoS violations %.1f%%\n\n",
		stream.AvgFPS, stream.AvgPSNRdB, stream.ViolationPct)

	// The learning curve: violations melt away as the agents leave the
	// exploration phase (paper SIV).
	fmt.Println("learning curve (QoS violations per 3000-frame window):")
	const window = 3000
	for start := 0; start < frames; start += window {
		viol := 0
		for _, obs := range stream.Trace[start : start+window] {
			if obs.FPS < mamut.TargetFPS {
				viol++
			}
		}
		bar := ""
		for i := 0; i < viol*50/window; i++ {
			bar += "#"
		}
		fmt.Printf("  frames %5d-%5d: %5.1f%% %s\n",
			start, start+window, 100*float64(viol)/window, bar)
	}

	// Where did the controller end up? (paper Fig. 5: many threads, QP in
	// the mid-30s, frequency doing the fine regulation)
	last := stream.Trace[frames-1].Settings
	fmt.Printf("\nfinal operating point: QP %d, %d threads, %.1f GHz\n",
		last.QP, last.Threads, last.FreqGHz)
}
