// Serving: run the transcoding service under continuous session churn and
// compare placement policies on the same offered load.
//
// A 2-server fleet faces a ramping arrival process of mixed HR/LR
// sessions that exceeds its admission capacity at the peak. Blind
// round-robin dispatch rejects arrivals whose turn lands on a full server
// even while the sibling has room (which quietly sheds load), and piles
// heavy HR streams together; the power-aware policy admits more users
// *and* holds the real-time SLO for more of them, because it balances
// estimated watts rather than session counts.
package main

import (
	"fmt"
	"log"

	"mamut"
)

func main() {
	base := mamut.ServeConfig{
		Servers:              2,
		MaxSessionsPerServer: 5,
		Approach:             mamut.ApproachHeuristic,
		Workload: mamut.ServeWorkload{
			ArrivalRate:    0.15,
			DurationSec:    400,
			HRFraction:     0.4,
			MeanSessionSec: 45,
			Curve:          mamut.LoadRamp,
			RampEndFactor:  2.5, // surge to 2.5x the base rate by the end
		},
		WarmupSec: 100,
		Seed:      1,
	}

	fmt.Println("policy        offered  rejected  rej%   SLO%   HR-SLO%  LR-SLO%  fleet W")
	for _, policy := range mamut.ServePolicyNames() {
		cfg := base
		cfg.Policy = policy
		res, err := mamut.RunService(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %7d  %8d  %4.1f  %5.1f  %7.1f  %7.1f  %7.1f\n",
			policy, res.Offered, res.Rejected, res.RejectionPct,
			res.SLOAttainedPct, res.HR.SLOAttainedPct, res.LR.SLOAttainedPct,
			res.FleetAvgPowerW)
	}

	fmt.Println("\nper-server picture under the power-aware policy:")
	cfg := base
	cfg.Policy = mamut.PolicyPowerAware
	res, err := mamut.RunService(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Servers {
		fmt.Printf("  server %d: %d sessions over the run, peak %d concurrent, "+
			"%.0f%% utilized, %.1f W\n",
			s.Index, s.Sessions, s.PeakActive, s.UtilizationPct, s.AvgPowerW)
	}
}
