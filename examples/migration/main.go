// Migration: drain a live transcoding server by handing its mid-stream
// sessions to another server, and watch them resume without losing a
// frame.
//
// Server A runs three sessions to t=2s — each mid-frame, with learner
// state, rng streams and energy accumulators in flight. A is then
// drained: every session is frozen with ExtractSession, serialised to a
// hash-stamped wire payload (what a real control plane would ship between
// hosts), decoded on server B and resumed with InjectSession under a
// 250 ms handoff stall. Occupancy moves from A to B, and every resumed
// session still transcodes its full frame budget — the stall is the only
// price of the move.
//
// The migration API is exact: the transcode package's tests pin that an
// extract/inject round-trip on the same server is bit-identical to never
// migrating at all. The serve package builds on this primitive for fleet
// drains, hotspot rebalancing and autoscaling (see ServeConfig.Rebalance,
// .Autoscale and .Drain).
package main

import (
	"fmt"
	"log"

	"mamut/internal/baseline"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

const frameBudget = 240 // ~10 s per session at the 24 fps target

func newServer(seed int64) *transcode.Engine {
	eng, err := transcode.NewEngine(platform.DefaultSpec(), hevc.DefaultModel(), seed)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// addSession registers one migratable session: a stateful source (its rng
// cursor travels with the session) driven by the rule-based controller.
func addSession(eng *transcode.Engine, i int) int {
	res := video.HR
	if i%2 == 1 {
		res = video.LR
	}
	spec := eng.Server().Spec()
	seq := &video.Sequence{
		Name: fmt.Sprintf("stream-%d", i), Res: res, Frames: 600, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.5, MeanSceneLen: 48,
	}
	src, err := video.NewStatefulGenerator(seq, 100+int64(i))
	if err != nil {
		log.Fatal(err)
	}
	initial := transcode.Settings{QP: 32, Threads: 4, FreqGHz: spec.Nearest(2.6)}
	ctrl, err := baseline.NewHeuristic(baseline.DefaultHeuristicConfig(res, spec, 6), initial)
	if err != nil {
		log.Fatal(err)
	}
	id, err := eng.AddSession(transcode.SessionConfig{
		Source:      src,
		Controller:  ctrl,
		Initial:     initial,
		FrameBudget: frameBudget,
		StartAtSec:  float64(i) * 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return id
}

func main() {
	a, b := newServer(1), newServer(2)
	var ids []int
	for i := 0; i < 3; i++ {
		ids = append(ids, addSession(a, i))
	}

	// Let server A transcode for two simulated seconds: every session is
	// now mid-stream.
	if err := a.AdvanceTo(2.0); err != nil {
		log.Fatal(err)
	}
	if err := b.AdvanceTo(2.0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before drain: server A %d active, server B %d active\n",
		a.ActiveSessions(), b.ActiveSessions())

	// Drain A: freeze, ship, resume on B — with a 250 ms handoff stall
	// charged to each moved session's in-flight frame.
	const stallSec = 0.25
	fmt.Println("\ndraining server A:")
	for i, id := range ids {
		st, err := a.ExtractSession(id)
		if err != nil {
			log.Fatal(err)
		}
		st.StallSec = stallSec
		wire, err := transcode.EncodeSessionState(st)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := transcode.DecodeSessionState(wire)
		if err != nil {
			log.Fatal(err)
		}
		// Fresh shells on the destination; InjectSession restores their
		// mid-stream state from the payload (and rejects a sequence that
		// does not match the one the state was extracted over).
		seq := &video.Sequence{
			Name: fmt.Sprintf("stream-%d", i), Res: st.Res, Frames: 600, FrameRate: 24,
			BaseComplexity: 1.0, Dynamism: 0.5, MeanSceneLen: 48,
		}
		src, err := video.NewStatefulGenerator(seq, 0)
		if err != nil {
			log.Fatal(err)
		}
		spec := b.Server().Spec()
		initial := transcode.Settings{QP: 32, Threads: 4, FreqGHz: spec.Nearest(2.6)}
		ctrl, err := baseline.NewHeuristic(baseline.DefaultHeuristicConfig(st.Res, spec, 6), initial)
		if err != nil {
			log.Fatal(err)
		}
		newID, err := b.InjectSession(src, ctrl, rt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  session %d (%s, frame %d/%d) -> server B as session %d (%d-byte payload)\n",
			id, st.Res, st.FrameIdx, frameBudget, newID, len(wire))
	}
	fmt.Printf("\nafter drain: server A %d active, server B %d active\n",
		a.ActiveSessions(), b.ActiveSessions())

	// Server A is empty and can be decommissioned; server B finishes the
	// resumed sessions.
	res, err := b.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresumed sessions on server B:")
	for _, s := range res.Sessions {
		fmt.Printf("  session %d (%s): %d/%d frames, avg %.1f fps, %.1f dB — completed after migration\n",
			s.ID, s.Res, s.Frames, frameBudget, s.AvgFPS, s.AvgPSNRdB)
	}
}
