// Comparison: the paper's head-to-head — heuristic vs mono-agent QL vs
// MAMUT on the same workload, with warm-up excluded and repetitions
// averaged (a scaled-down version of the Table II protocol).
package main

import (
	"fmt"
	"log"

	"mamut"
)

func main() {
	opts := mamut.QuickExperimentOptions()
	opts.Seed = 11

	workload := mamut.WorkloadSpec{Name: "2HR2LR", HR: 2, LR: 2}
	fmt.Printf("workload %s: %d repetitions, %d warm-up + %d measured frames per stream\n\n",
		workload.Name, opts.Repetitions, opts.WarmupFrames, opts.MeasureFrames)

	fmt.Println("approach    watts   Nth    FPS    delta%   PSNR(dB)  QP     GHz")
	var rows []mamut.ApproachResult
	for _, a := range []mamut.Approach{mamut.ApproachHeuristic, mamut.ApproachMonoAgent, mamut.ApproachMAMUT} {
		r, err := mamut.RunWorkload(workload, mamut.ScenarioII, a, opts)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, r)
		fmt.Printf("%-10s  %5.1f  %5.1f  %5.1f  %6.1f   %6.1f   %5.1f  %4.2f\n",
			a, r.Watts, r.Nth, r.FPS, r.DeltaPct, r.PSNRdB, r.QP, r.FreqGHz)
	}

	h, m := rows[0], rows[2]
	fmt.Printf("\nMAMUT vs heuristic: %.1fx fewer QoS violations, %.0f%% power saving\n",
		ratio(h.DeltaPct, m.DeltaPct), 100*(1-m.Watts/h.Watts))
	fmt.Println("(quick options: the RL managers are only partially converged here;")
	fmt.Println(" cmd/mamut-experiments uses the full protocol)")
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
