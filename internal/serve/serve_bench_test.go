package serve

import (
	"fmt"
	"testing"

	"mamut/internal/experiments"
)

// fleetScaleConfig is the fleet-scaling regime: the arrival rate grows
// with the fleet size (so the offered load per server stays constant as
// the fleet grows) and sessions are short, so the per-arrival cost is
// dominated by the dispatcher — advancing engines to the arrival
// instant, refreshing the fleet state and running the placement policy —
// rather than by frame-level simulation work, which is the same under
// every dispatcher. Round-robin placement spreads sessions across the
// whole fleet, so after the first rotation every server has hosted (and
// mostly finished) traffic: the regime where almost no server has an
// event before the next arrival instant, and a full per-arrival sweep
// pays O(servers) for nothing.
func fleetScaleConfig(servers int, policy string) Config {
	rate := 0.02 * float64(servers)
	return Config{
		Servers:  servers,
		Policy:   policy,
		Approach: experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    rate,
			DurationSec:    100, // ~2x servers arrivals at every fleet size
			MeanSessionSec: 0.1,
			MinSessionSec:  0.04,
		},
		WarmupSec: 1,
		Seed:      1,
		Workers:   1,
	}
}

// BenchmarkFleetScale tracks the per-arrival dispatch cost as the fleet
// grows from 10 to 5000 servers. The seed dispatcher paid O(servers) per
// arrival (advance every engine, rebuild the full state slice, scan the
// whole fleet in the policy), so ns/arrival grew linearly with fleet
// size; the event-heap dispatcher touches only engines with events
// before the arrival instant and places through the policy's fleet
// index, so ns/arrival stays near-flat.
func BenchmarkFleetScale(b *testing.B) {
	for _, servers := range []int{10, 100, 1000, 5000} {
		b.Run(fmt.Sprintf("%dservers", servers), func(b *testing.B) {
			cfg := fleetScaleConfig(servers, PolicyRoundRobin)
			arrivals := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Offered == 0 {
					b.Fatal("no arrivals offered")
				}
				arrivals += res.Offered
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(arrivals)*1e9, "ns/arrival")
		})
	}
}

// BenchmarkFleetScaleDispatch compares the two in-tree dispatchers on
// the same fleet (the scan path is the seed's O(servers) sweep, retained
// as the reference): the gap is pure dispatch overhead, since both paths
// simulate identical events and produce bit-identical results.
func BenchmarkFleetScaleDispatch(b *testing.B) {
	for _, mode := range DispatchModes() {
		for _, servers := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/%dservers", mode, servers), func(b *testing.B) {
				cfg := fleetScaleConfig(servers, PolicyRoundRobin)
				cfg.Dispatch = mode
				arrivals := 0
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					arrivals += res.Offered
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(arrivals)*1e9, "ns/arrival")
			})
		}
	}
}
