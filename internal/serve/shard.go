package serve

import (
	"context"
	"runtime/pprof"
	"strconv"

	"mamut/internal/heaps"
)

// Sharded fleet dispatch: the expensive half of every dispatcher step —
// advancing the frame-level engine simulations to the next arrival or
// epoch instant — parallelises across per-shard goroutines, while every
// decision that reads shared state stays on the coordinator. Config.Shards
// splits the fleet by server index (server i belongs to shard i mod S;
// autoscaled servers join on the same rule), and each shard owns, for its
// servers only, the engines, the resident bookkeeping, its slice of the
// engine event heap, and two reconciliation buffers.
//
// The run phases strictly:
//
//   - Advance (parallel): the coordinator opens a barrier and commands
//     every shard with due work to advance its engines to the target
//     instant. Shards touch disjoint state — their own engines, heaps,
//     per-server counters and buffers — so no lock is needed anywhere.
//     Departures surfaced here are buffered shard-locally by the
//     OnSessionEnd hook instead of touching the dispatcher.
//   - Reconcile (serial): after every shard acknowledges, the coordinator
//     drains the buffers in shard-ID order, applying the global side of
//     each departure (active count, stats batch, incremental state and
//     policy-index refresh, knowledge-harvest hand-off), then proceeds
//     with placement, knowledge folds, streaming aggregation, and any
//     elastic epoch work — exactly the single-goroutine code.
//
// Determinism is by construction, not by tolerance: each engine receives
// the identical AdvanceTo sequence it would unsharded (the shard heaps
// are an exact partition of the global heap, and engines are advanced to
// the same instants); the departure batches are sorted by arrival ID
// before folding, which erases the buffer merge order; the coalesced
// refreshState calls rebuild states idempotently from final per-server
// counts, and the policy indexes validate entry freshness on Place, so
// index-internal layout differences cannot change a placement. Hence
// `-shards S` output is bit-identical to `-shards 1` for every policy
// (including custom ones), both dispatchers, knowledge reuse, and the
// elastic features — the equivalence tests and CI goldens pin this.
//
// Elastic epochs need no special casing: drains, autoscaling and
// migrations already run in the serial phase, where the hook behaves
// inline (the parallel-window flag is down), so a migration's mid-epoch
// AdvanceTo surfaces departures with immediately visible effects.

// shard is one fleet partition and the channel endpoint of its goroutine.
type shard struct {
	id int
	// srv lists the owned server indexes (i mod shard count == id), in
	// ascending order; appended to by the coordinator when the fleet
	// scales out (serial phase only).
	srv []int
	// engines counts owned servers with a live engine — the scan-mode
	// wake filter (the indexed filter is the heap head).
	engines int
	// evts is the shard's partition of the engine event heap: exactly
	// the global heap's entries for owned servers.
	evts heaps.Heap[fleetEvent]
	// cmd carries "advance to t" barrier commands; closing it stops the
	// goroutine.
	cmd chan float64
	// departs and harvest buffer the parallel window's hook output until
	// the coordinator drains them at the barrier close.
	departs []departRec
	harvest []harvestEntry
}

// shardAck is one shard's barrier acknowledgement.
type shardAck struct {
	id  int
	err error
}

// due reports whether the shard has work before or at t.
func (sh *shard) due(t float64, indexed bool) bool {
	if indexed {
		return sh.evts.Len() > 0 && sh.evts.Peek().key <= t
	}
	return sh.engines > 0
}

// initShards partitions the fleet and spawns the shard goroutines. With
// Shards <= 1 (or a fleet smaller than the shard count rounding down to
// one) the dispatcher stays single-goroutine and this is a no-op.
func (d *dispatcher) initShards() {
	n := d.cfg.Shards
	if n > len(d.servers) {
		n = len(d.servers)
	}
	if n <= 1 {
		return
	}
	d.shards = make([]*shard, n)
	d.shardAcks = make(chan shardAck, n)
	for s := range d.shards {
		d.shards[s] = &shard{id: s, cmd: make(chan float64, 1)}
	}
	for i, fs := range d.servers {
		sh := d.shards[i%n]
		fs.sh = sh
		sh.srv = append(sh.srv, i)
	}
	d.shardWG.Add(n)
	for _, sh := range d.shards {
		go d.shardLoop(sh)
	}
}

// stopShards closes the barrier channels and joins the goroutines. Safe
// to call on an unsharded dispatcher and after a mid-run error.
func (d *dispatcher) stopShards() {
	if d.shards == nil {
		return
	}
	for _, sh := range d.shards {
		close(sh.cmd)
	}
	d.shardWG.Wait()
	d.shards = nil
}

// shardLoop is one shard goroutine: it advances the shard on each
// barrier command and acknowledges with the result. The pprof labels
// make -cpuprofile attribute sweep samples per shard.
func (d *dispatcher) shardLoop(sh *shard) {
	defer d.shardWG.Done()
	pprof.Do(context.Background(), pprof.Labels("mamut_shard", strconv.Itoa(sh.id)), func(context.Context) {
		for t := range sh.cmd {
			d.shardAcks <- shardAck{id: sh.id, err: d.advanceShard(sh, t)}
		}
	})
}

// advanceShard advances the shard's engines to t — the shard-owned slice
// of exactly what the unsharded sweepTo does. Indexed mode pops only the
// owned engines with due events; scan mode advances every owned live
// engine. Runs on the shard goroutine during the barrier window; all
// state touched (engines, the shard heap, the owned nextEvt entries, and
// — through the hooks — per-server counters and the shard buffers) is
// owned by this shard.
func (d *dispatcher) advanceShard(sh *shard, t float64) error {
	if !d.indexed {
		for _, i := range sh.srv {
			if eng := d.servers[i].eng; eng != nil {
				if err := eng.AdvanceTo(t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for sh.evts.Len() > 0 && sh.evts.Peek().key <= t {
		ent := sh.evts.Pop()
		if ent.key != d.nextEvt[ent.id] {
			continue // stale: the engine was re-keyed after this push
		}
		if err := d.servers[ent.id].eng.AdvanceTo(t); err != nil {
			return err
		}
		d.scheduleServer(ent.id)
	}
	return nil
}

// sweepShards is the sharded sweepTo: advance in parallel, reconcile in
// shard-ID order.
func (d *dispatcher) sweepShards(t float64) error {
	// Open the barrier window. The flag flips only here, on the
	// coordinator, with happens-before to every shard through the cmd
	// send and back through the ack receive.
	d.parallel = true
	woken := 0
	for _, sh := range d.shards {
		if sh.due(t, d.indexed) {
			sh.cmd <- t
			woken++
		}
	}
	var firstErr error
	errShard := -1
	for ; woken > 0; woken-- {
		// Drain every ack even after an error — the barrier must close
		// with all shards quiescent — and keep the lowest-shard error so
		// the failure surfaced is deterministic too.
		if ack := <-d.shardAcks; ack.err != nil && (errShard < 0 || ack.id < errShard) {
			firstErr, errShard = ack.err, ack.id
		}
	}
	d.parallel = false
	if firstErr != nil {
		return firstErr
	}
	// Reconcile: apply the global side of every buffered departure. The
	// shard-ID merge order is fixed, and the downstream folds sort by
	// arrival ID anyway; refreshState is idempotent over the final
	// counts, so coalescing the per-departure refreshes is invisible.
	for _, sh := range d.shards {
		for _, dr := range sh.departs {
			d.applyDeparture(dr)
		}
		sh.departs = sh.departs[:0]
		if len(sh.harvest) > 0 {
			d.pending = append(d.pending, sh.harvest...)
			sh.harvest = sh.harvest[:0]
		}
	}
	return nil
}
