package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/metrics"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// Config defaults.
const (
	// DefaultMaxSessionsPerServer matches the paper's single-server
	// capacity envelope (up to 5 HR or 8 LR streams stay real-time).
	DefaultMaxSessionsPerServer = 8
	// DefaultSLOFPSFactor is the per-session real-time SLO: a session
	// attains the SLO when its lifetime average FPS reaches this
	// fraction of the target frame rate. (The per-frame windowed-FPS
	// violation share is reported alongside, but controllers regulate
	// *around* the target, so average throughput is the quantity that
	// separates a keeping-up server from an overloaded one.)
	DefaultSLOFPSFactor = 0.95
)

// Config describes one service run: the fleet, the placement policy, the
// offered workload and the measurement protocol.
type Config struct {
	// Servers is the fleet size. Default 1.
	Servers int
	// MaxSessionsPerServer is the per-server admission limit.
	// DefaultMaxSessionsPerServer when 0.
	MaxSessionsPerServer int
	// Policy names the placement policy (see PolicyNames).
	// PolicyLeastLoaded when empty.
	Policy string
	// PolicyFactory overrides Policy with a custom policy constructor
	// (a fresh instance is requested per run).
	PolicyFactory func() Policy
	// Approach selects the per-session controller. MAMUT when empty.
	Approach experiments.Approach
	// KnowledgeReuse enables cross-session knowledge sharing (KaaS-style
	// warm starts): a per-resolution-class KnowledgeStore harvests the
	// learned state of every session that departs during the arrival
	// phase and seeds each new admission from it, so short-lived sessions
	// skip past exploration for states the service has already learned.
	// Requires the MAMUT approach. Results stay bit-identical for any
	// Workers count: contributions fold in arrival-ID order at the
	// event-interleaved departure instants, and drain-phase departures
	// (after the last arrival) never affect an admission.
	KnowledgeReuse bool
	// Workload is the offered load.
	Workload Workload
	// WarmupSec starts the measurement window: sessions arriving before
	// it and power drawn before it are excluded from the steady-state
	// metrics. The window ends at the workload horizon.
	WarmupSec float64
	// SLOFPSFactor is the session SLO threshold as a fraction of the
	// target frame rate. DefaultSLOFPSFactor when 0.
	SLOFPSFactor float64
	// Spec, Model and Catalog override the simulated substrate.
	Spec    *platform.Spec
	Model   *hevc.Model
	Catalog *video.Catalog
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// Workers sizes the pool the per-server simulations fan out on
	// (0 = one per CPU, 1 = serial). Results are bit-identical for any
	// worker count.
	Workers int
	// Progress observes completed per-server simulations.
	Progress experiments.ProgressFunc
}

// SessionOutcome is the service-level record of one arrival.
type SessionOutcome struct {
	// Req is the arrival as dispatched.
	Req SessionRequest
	// Server is the admitting server's index, or -1 when rejected.
	Server int
	// Measured reports whether the arrival fell inside the measurement
	// window (at or after warm-up).
	Measured bool
	// The remaining fields are zero for rejected arrivals.
	// Frames is the number of frames actually transcoded.
	Frames int
	// ViolationPct is the share of frames whose windowed FPS fell below
	// the target over the session's lifetime.
	ViolationPct float64
	// SLOMet reports AvgFPS >= SLOFPSFactor * target.
	SLOMet bool
	// Averages over the session's lifetime.
	AvgFPS         float64
	AvgPSNRdB      float64
	AvgBitrateMbps float64
}

// ServerResult aggregates one server of the fleet.
type ServerResult struct {
	// Index identifies the server.
	Index int
	// Sessions is the number of sessions admitted over the whole run.
	Sessions int
	// PeakActive is the highest number of simultaneously resident
	// sessions observed (by actual session lifetimes). The dispatcher
	// admits on those same event-interleaved lifetimes, so it never
	// exceeds the admission limit.
	PeakActive int
	// AvgPowerW is the package power averaged over the measurement
	// window (idle power when the server saw no load).
	AvgPowerW float64
	// UtilizationPct is the time-averaged resident-session count over
	// the measurement window, as a percentage of the admission limit.
	UtilizationPct float64
}

// ClassStats aggregates the measured sessions of one resolution class.
type ClassStats struct {
	// Sessions is the number of measured (admitted, in-window) sessions.
	Sessions int
	// SLOAttainedPct is the share of them that met the real-time SLO.
	SLOAttainedPct float64
	// AvgViolationPct, AvgFPS and AvgPSNRdB average over them.
	AvgViolationPct float64
	AvgFPS          float64
	AvgPSNRdB       float64
}

// Result is the steady-state outcome of a service run.
type Result struct {
	// Policy is the placement policy that ran.
	Policy string
	// DurationSec is the workload horizon; WarmupSec is the measurement
	// window start. (Simulation continues past the horizon until every
	// admitted session finishes.)
	DurationSec float64
	WarmupSec   float64
	// Offered / Admitted / Rejected count every arrival of the run;
	// RejectionPct is Rejected/Offered.
	Offered      int
	Admitted     int
	Rejected     int
	RejectionPct float64
	// MeasuredOffered and MeasuredRejected restrict the accounting to
	// the measurement window; MeasuredRejectionPct is their ratio.
	MeasuredOffered      int
	MeasuredRejected     int
	MeasuredRejectionPct float64
	// Measured is the number of admitted in-window sessions the SLO
	// statistics cover; SLOAttainedPct is the share that met the SLO.
	Measured       int
	SLOAttainedPct float64
	// HR and LR split the SLO statistics by resolution class.
	HR, LR ClassStats
	// FleetAvgPowerW is the mean per-server window power.
	FleetAvgPowerW float64
	// KnowledgeContributions and KnowledgeSeeded report the knowledge
	// store's activity when Config.KnowledgeReuse was on (zero
	// otherwise): sessions whose learned state was folded into the store
	// during the arrival phase, and admissions seeded from at least one
	// prior contribution (warm starts).
	KnowledgeContributions int
	KnowledgeSeeded        int
	// Servers holds one entry per server, in index order.
	Servers []ServerResult
	// Sessions holds one entry per arrival, in arrival order.
	Sessions []SessionOutcome
}

// withDefaults resolves zero config fields.
func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.MaxSessionsPerServer == 0 {
		c.MaxSessionsPerServer = DefaultMaxSessionsPerServer
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastLoaded
	}
	if c.Approach == "" {
		c.Approach = experiments.MAMUT
	}
	if c.SLOFPSFactor == 0 {
		c.SLOFPSFactor = DefaultSLOFPSFactor
	}
	c.Workload = c.Workload.withDefaults()
	return c
}

// Validate reports whether the config is usable (after defaults).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Servers < 1 {
		return fmt.Errorf("serve: fleet size %d < 1", c.Servers)
	}
	if c.MaxSessionsPerServer < 1 {
		return fmt.Errorf("serve: admission limit %d < 1", c.MaxSessionsPerServer)
	}
	if c.PolicyFactory == nil {
		if _, err := NewPolicy(c.Policy); err != nil {
			return err
		}
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.WarmupSec < 0 {
		return fmt.Errorf("serve: negative warm-up %g", c.WarmupSec)
	}
	if d := c.Workload.withDefaults().DurationSec; c.WarmupSec >= d && d > 0 {
		return fmt.Errorf("serve: warm-up %gs consumes the whole %gs horizon", c.WarmupSec, d)
	}
	if c.SLOFPSFactor < 0 {
		return fmt.Errorf("serve: negative SLO factor %g", c.SLOFPSFactor)
	}
	if c.SLOFPSFactor > 1 {
		// Controllers regulate *around* the target frame rate, so a
		// factor above 1 demands a sustained average beyond the target —
		// an unattainable SLO that silently zeroes SLOAttainedPct.
		return fmt.Errorf("serve: SLO factor %g > 1 is unattainable (sessions regulate around the target FPS)", c.SLOFPSFactor)
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: workers %d < 0", c.Workers)
	}
	if c.KnowledgeReuse && c.Approach != experiments.MAMUT {
		return fmt.Errorf("serve: knowledge reuse requires the %s approach, got %q", experiments.MAMUT, c.Approach)
	}
	return nil
}

// placement couples an arrival with the dispatcher's decision.
type placement struct {
	req    SessionRequest
	server int // -1 = rejected
}

// fleetServer is the dispatcher's live view of one server: its engine
// (created on first admission) and the sessions actually resident on it.
// The resident counts are maintained by the engine's OnSessionEnd hook,
// so the dispatcher sees contention-stretched lifetimes, not the nominal
// arrival + Frames/TargetFPS approximation.
type fleetServer struct {
	eng    *transcode.Engine
	hr, lr int

	// Knowledge harvest (knowledge reuse only). harvest maps the engine
	// session id of every resident MAMUT session to its contribution
	// identity; the departure hook moves entries to pending, and the
	// dispatcher folds pending into the store — sorted by arrival ID
	// across the whole fleet — at the next arrival instant. draining is
	// set before the post-arrival drain: drain departures are not
	// harvested (no admission can observe them), which keeps the drained
	// engines independent and the output identical for any worker count.
	harvest  map[int]harvestEntry
	pending  []harvestEntry
	draining bool
}

// harvestEntry identifies one future knowledge contribution. seeded is
// the snapshot the session was warm-started from (nil for a cold
// start): at harvest time its counts are subtracted from the departing
// snapshot so the session contributes only its own experience —
// re-contributing seeded mass would compound the pool exponentially
// across generations of warm starts.
type harvestEntry struct {
	reqID  int
	res    video.Resolution
	ctrl   *core.Controller
	seeded *core.Snapshot
}

// addSession builds the arrival's source and controller from its fixed
// per-session seeds and registers it on the server's engine as a live
// arrival at its dispatch time. seeded is the knowledge snapshot the
// controller factory warm-starts from (nil when knowledge reuse is off
// or the class is still cold), recorded for delta harvesting.
func (fs *fleetServer) addSession(req SessionRequest, cfg Config, catalog *video.Catalog,
	factory experiments.ControllerFactory, seeded *core.Snapshot) error {
	seq, err := catalog.Get(req.Sequence)
	if err != nil {
		return err
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(req.SourceSeed)))
	if err != nil {
		return err
	}
	initial := experiments.InitialSettings(req.Res)
	ctrl, err := factory(req.Res, initial, rand.New(rand.NewSource(req.ControllerSeed)))
	if err != nil {
		return err
	}
	id, err := fs.eng.AddSession(transcode.SessionConfig{
		Source:        src,
		Controller:    ctrl,
		Initial:       initial,
		BandwidthMbps: req.BandwidthMbps,
		TargetFPS:     cfg.Workload.TargetFPS,
		FrameBudget:   req.Frames,
		StartAtSec:    req.ArriveAtSec,
		CollectTrace:  true,
	})
	if err != nil {
		return err
	}
	if fs.harvest != nil {
		if mc, ok := ctrl.(*core.Controller); ok {
			fs.harvest[id] = harvestEntry{reqID: req.ID, res: req.Res, ctrl: mc, seeded: seeded}
		}
	}
	if req.Res == video.HR {
		fs.hr++
	} else {
		fs.lr++
	}
	return nil
}

// Run executes one service simulation as a single event-interleaved fleet:
// the arrival process and every server's frame-level simulation advance on
// one merged clock. Before each placement decision every engine is stepped
// to the arrival instant, so departures at or before it — at their
// *actual*, contention-stretched times — have already freed their slots,
// and the policy decides from true occupancy. After the last arrival the
// engines have no further interaction and drain to completion across the
// worker pool; results are bit-identical for any worker count.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := platform.DefaultSpec()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	model := hevc.DefaultModel()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	catalog := cfg.Catalog
	if catalog == nil {
		catalog = video.DefaultCatalog()
	}
	exOpts := experiments.Options{Spec: spec, Model: model}
	var store *KnowledgeStore
	var pendingSeed *core.Snapshot
	if cfg.KnowledgeReuse {
		store = NewKnowledgeStore()
		// The factory seeds from the exact snapshot the dispatcher
		// records as the admission's subtraction baseline (set right
		// before each addSession), so baseline == seed by construction —
		// delta harvesting cannot drift from what the controller
		// actually absorbed, even if fold points move.
		exOpts.WarmStart = func(video.Resolution) *core.Snapshot { return pendingSeed }
	}
	factory, err := experiments.Factory(cfg.Approach, exOpts)
	if err != nil {
		return nil, err
	}
	var pol Policy
	if cfg.PolicyFactory != nil {
		pol = cfg.PolicyFactory()
		if pol == nil {
			return nil, fmt.Errorf("serve: policy factory returned nil")
		}
	} else if pol, err = NewPolicy(cfg.Policy); err != nil {
		return nil, err
	}

	arrivals, err := GenerateArrivals(cfg.Workload, catalog, cfg.Seed)
	if err != nil {
		return nil, err
	}

	budget := powerBudgetW(spec)
	estW := map[video.Resolution]float64{
		video.HR: estSessionPowerW(spec, video.HR),
		video.LR: estSessionPowerW(spec, video.LR),
	}
	servers := make([]*fleetServer, cfg.Servers)
	for i := range servers {
		servers[i] = &fleetServer{}
		if store != nil {
			servers[i].harvest = make(map[int]harvestEntry)
		}
	}
	states := make([]ServerState, cfg.Servers)
	placements := make([]placement, 0, len(arrivals))
	seeded := 0
	for _, req := range arrivals {
		t := req.ArriveAtSec
		// Interleave: step every engine to the arrival instant. Departure
		// hooks fire along the way and release their slots.
		for _, fs := range servers {
			if fs.eng != nil {
				if err := fs.eng.AdvanceTo(t); err != nil {
					return nil, err
				}
			}
		}
		// Fold the departures the fleet surfaced on the way to t into the
		// knowledge store, in arrival-ID order, before this arrival's
		// placement and (possibly warm) controller construction.
		if store != nil {
			if err := foldDepartures(servers, store); err != nil {
				return nil, err
			}
		}
		for i, fs := range servers {
			states[i] = ServerState{
				Index:        i,
				Active:       fs.hr + fs.lr,
				HRActive:     fs.hr,
				LRActive:     fs.lr,
				MaxSessions:  cfg.MaxSessionsPerServer,
				EstPowerW:    spec.IdlePowerW + float64(fs.hr)*estW[video.HR] + float64(fs.lr)*estW[video.LR],
				EstArrivalW:  estW[req.Res],
				PowerBudgetW: budget,
			}
		}
		choice := pol.Place(req, states)
		if choice < -1 || choice >= cfg.Servers {
			// A deliberate reject is -1 and every other return must be a
			// real server index: folding garbage into the rejection count
			// would silently corrupt RejectionPct for buggy policies.
			return nil, fmt.Errorf("serve: policy %q violated the placement contract: returned %d for arrival %d (valid: -1 to reject, 0..%d to place)",
				pol.Name(), choice, req.ID, cfg.Servers-1)
		}
		if choice == -1 || states[choice].Full() {
			placements = append(placements, placement{req: req, server: -1})
			continue
		}
		fs := servers[choice]
		if fs.eng == nil {
			eng, err := transcode.NewEngine(spec, model, experiments.SubSeed(cfg.Seed, "serve|server", choice))
			if err != nil {
				return nil, err
			}
			fs.eng = eng
			eng.OnSessionEnd(func(end transcode.SessionEnd) {
				if end.Res == video.HR {
					fs.hr--
				} else {
					fs.lr--
				}
				if fs.harvest == nil || fs.draining {
					return
				}
				if entry, ok := fs.harvest[end.SessionID]; ok {
					fs.pending = append(fs.pending, entry)
					delete(fs.harvest, end.SessionID)
				}
			})
		}
		// Clone the class's current snapshot: the store keeps merging
		// afterwards, so the admission needs a frozen copy that serves
		// both as the controller's seed (via the WarmStart closure) and
		// as the baseline its departing contribution is measured against.
		var seedSnap *core.Snapshot
		if store != nil {
			if s := store.Seed(req.Res); s != nil {
				cp := s.Clone()
				seedSnap = &cp
				seeded++
			}
		}
		pendingSeed = seedSnap
		if err := fs.addSession(req, cfg, catalog, factory, seedSnap); err != nil {
			return nil, err
		}
		placements = append(placements, placement{req: req, server: choice})
	}

	// Tail: no placement decisions remain, so the loaded engines are
	// independent and drain to completion across the worker pool. The
	// knowledge harvest closes here — drain departures can no longer
	// affect an admission, and not folding them keeps the engines free of
	// shared state.
	for _, fs := range servers {
		fs.draining = true
	}
	// perServer[i] lists server i's admissions in placement order, which
	// is also its engine's AddSession order — aggregate relies on that
	// alignment.
	perServer := make([][]SessionRequest, cfg.Servers)
	for _, p := range placements {
		if p.server >= 0 {
			perServer[p.server] = append(perServer[p.server], p.req)
		}
	}
	var units []experiments.Unit[*transcode.Result]
	unitServer := make([]int, 0, cfg.Servers)
	for i, fs := range servers {
		if fs.eng == nil {
			continue
		}
		units = append(units, experiments.Unit[*transcode.Result]{
			Label: fmt.Sprintf("server %d (%d sessions)", i, len(perServer[i])),
			Run:   fs.eng.Run,
		})
		unitServer = append(unitServer, i)
	}
	outs, err := experiments.RunUnits(cfg.Workers, units, cfg.Progress)
	if err != nil {
		return nil, err
	}
	engRes := make([]*transcode.Result, cfg.Servers)
	for u, srv := range unitServer {
		engRes[srv] = outs[u]
	}
	res, err := aggregate(cfg, spec, pol.Name(), placements, perServer, engRes)
	if err != nil {
		return nil, err
	}
	if store != nil {
		res.KnowledgeContributions = store.Contributions(video.HR) + store.Contributions(video.LR)
		res.KnowledgeSeeded = seeded
	}
	return res, nil
}

// foldDepartures folds every departure the fleet has surfaced since the
// last fold into the knowledge store, in arrival-ID order across all
// servers. The fixed order pins the floating-point fold sequence, so the
// store contents — and every snapshot later admissions are seeded from —
// depend only on the workload and seed.
func foldDepartures(servers []*fleetServer, store *KnowledgeStore) error {
	var batch []harvestEntry
	for _, fs := range servers {
		batch = append(batch, fs.pending...)
		fs.pending = fs.pending[:0]
	}
	if len(batch) == 0 {
		return nil
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].reqID < batch[j].reqID })
	for _, e := range batch {
		snap := e.ctrl.Snapshot()
		if e.seeded != nil {
			// Contribute the session's own experience only: keep its
			// final Q estimates but weight them by the visits it made
			// itself, not by the recycled seed mass.
			if err := snap.SubtractCounts(*e.seeded); err != nil {
				return err
			}
		}
		if err := store.Contribute(e.res, snap); err != nil {
			return err
		}
	}
	return nil
}

// aggregate folds the dispatch log and the per-server simulation results
// into the service-level Result.
func aggregate(cfg Config, spec platform.Spec, policyName string, placements []placement,
	perServer [][]SessionRequest, engRes []*transcode.Result) (*Result, error) {
	horizon := cfg.Workload.DurationSec
	res := &Result{
		Policy:      policyName,
		DurationSec: horizon,
		WarmupSec:   cfg.WarmupSec,
		Offered:     len(placements),
	}

	// Per-session outcomes. Engine sessions were added in arrival order,
	// so perServer[s][k] corresponds to engRes[s].Sessions[k].
	nextOnServer := make([]int, cfg.Servers)
	actual := make([][]interval, cfg.Servers)
	var hrV, lrV []SessionOutcome
	for _, p := range placements {
		so := SessionOutcome{
			Req:      p.req,
			Server:   p.server,
			Measured: p.req.ArriveAtSec >= cfg.WarmupSec,
		}
		if p.server < 0 {
			res.Rejected++
			if so.Measured {
				res.MeasuredOffered++
				res.MeasuredRejected++
			}
			res.Sessions = append(res.Sessions, so)
			continue
		}
		res.Admitted++
		sr := engRes[p.server].Sessions[nextOnServer[p.server]]
		nextOnServer[p.server]++
		so.Frames = sr.Frames
		so.ViolationPct = sr.ViolationPct
		so.SLOMet = sr.AvgFPS >= cfg.SLOFPSFactor*cfg.Workload.TargetFPS
		so.AvgFPS = sr.AvgFPS
		so.AvgPSNRdB = sr.AvgPSNRdB
		so.AvgBitrateMbps = sr.AvgBitrateMbps
		end := p.req.ArriveAtSec
		if n := len(sr.Trace); n > 0 {
			end = sr.Trace[n-1].Time
		}
		actual[p.server] = append(actual[p.server], interval{p.req.ArriveAtSec, end})
		if so.Measured {
			res.MeasuredOffered++
			res.Measured++
			if p.req.Res == video.HR {
				hrV = append(hrV, so)
			} else {
				lrV = append(lrV, so)
			}
		}
		res.Sessions = append(res.Sessions, so)
	}
	if res.Offered > 0 {
		res.RejectionPct = 100 * float64(res.Rejected) / float64(res.Offered)
	}
	if res.MeasuredOffered > 0 {
		res.MeasuredRejectionPct = 100 * float64(res.MeasuredRejected) / float64(res.MeasuredOffered)
	}
	res.HR = classStats(hrV)
	res.LR = classStats(lrV)
	if res.Measured > 0 {
		met := 0
		for _, so := range hrV {
			if so.SLOMet {
				met++
			}
		}
		for _, so := range lrV {
			if so.SLOMet {
				met++
			}
		}
		res.SLOAttainedPct = 100 * float64(met) / float64(res.Measured)
	}

	// Per-server window power, utilization and peak occupancy.
	winLen := horizon - cfg.WarmupSec
	for i := 0; i < cfg.Servers; i++ {
		sr := ServerResult{Index: i, Sessions: len(perServer[i]), AvgPowerW: spec.IdlePowerW}
		if engRes[i] != nil {
			var traces [][]transcode.Observation
			for _, s := range engRes[i].Sessions {
				traces = append(traces, s.Trace)
			}
			switch w, err := metrics.TimeWeightedPower(traces, cfg.WarmupSec, horizon); {
			case err == nil:
				sr.AvgPowerW = w
			case errors.Is(err, metrics.ErrNoSamples):
				// No power reading inside the window (the server's
				// sessions all ran outside it): the idle-power fallback
				// is the truth, not an accident.
			default:
				// Anything else is a real accounting bug; reporting a
				// loaded server at idle power would silently skew the
				// fleet energy numbers.
				return nil, fmt.Errorf("serve: server %d window power: %w", i, err)
			}
		}
		busy := 0.0
		for _, iv := range actual[i] {
			lo, hi := iv.start, iv.end
			if lo < cfg.WarmupSec {
				lo = cfg.WarmupSec
			}
			if hi > horizon {
				hi = horizon
			}
			if hi > lo {
				busy += hi - lo
			}
		}
		if winLen > 0 {
			sr.UtilizationPct = 100 * busy / (winLen * float64(cfg.MaxSessionsPerServer))
		}
		sr.PeakActive = peakActive(actual[i])
		res.FleetAvgPowerW += sr.AvgPowerW
		res.Servers = append(res.Servers, sr)
	}
	res.FleetAvgPowerW /= float64(cfg.Servers)
	return res, nil
}

// classStats folds measured session outcomes of one class.
func classStats(v []SessionOutcome) ClassStats {
	cs := ClassStats{Sessions: len(v)}
	if len(v) == 0 {
		return cs
	}
	met := 0
	for _, so := range v {
		if so.SLOMet {
			met++
		}
		cs.AvgViolationPct += so.ViolationPct
		cs.AvgFPS += so.AvgFPS
		cs.AvgPSNRdB += so.AvgPSNRdB
	}
	n := float64(len(v))
	cs.SLOAttainedPct = 100 * float64(met) / n
	cs.AvgViolationPct /= n
	cs.AvgFPS /= n
	cs.AvgPSNRdB /= n
	return cs
}

// interval is one session's actual residency [start, end] on a server.
type interval struct{ start, end float64 }

// peakActive returns the maximum number of simultaneously open intervals.
func peakActive(ivs []interval) int {
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		events = append(events, event{iv.start, +1}, event{iv.end, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Close before open at equal times: back-to-back sessions do
		// not overlap.
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
