package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/heaps"
	"mamut/internal/hevc"
	"mamut/internal/metrics"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// Config defaults.
const (
	// DefaultMaxSessionsPerServer matches the paper's single-server
	// capacity envelope (up to 5 HR or 8 LR streams stay real-time).
	DefaultMaxSessionsPerServer = 8
	// DefaultSLOFPSFactor is the per-session real-time SLO: a session
	// attains the SLO when its lifetime average FPS reaches this
	// fraction of the target frame rate. (The per-frame windowed-FPS
	// violation share is reported alongside, but controllers regulate
	// *around* the target, so average throughput is the quantity that
	// separates a keeping-up server from an overloaded one.)
	DefaultSLOFPSFactor = 0.95
)

// Config describes one service run: the fleet, the placement policy, the
// offered workload and the measurement protocol.
type Config struct {
	// Servers is the fleet size. Default 1.
	Servers int
	// MaxSessionsPerServer is the per-server admission limit.
	// DefaultMaxSessionsPerServer when 0.
	MaxSessionsPerServer int
	// Policy names the placement policy (see PolicyNames).
	// PolicyLeastLoaded when empty.
	Policy string
	// PolicyFactory overrides Policy with a custom policy constructor
	// (a fresh instance is requested per run).
	PolicyFactory func() Policy
	// Approach selects the per-session controller. MAMUT when empty.
	Approach experiments.Approach
	// KnowledgeReuse enables cross-session knowledge sharing (KaaS-style
	// warm starts): a per-resolution-class KnowledgeStore harvests the
	// learned state of every session that departs during the arrival
	// phase and seeds each new admission from it, so short-lived sessions
	// skip past exploration for states the service has already learned.
	// Requires the MAMUT approach. Results stay bit-identical for any
	// Workers count: contributions fold in arrival-ID order at the
	// event-interleaved departure instants, and drain-phase departures
	// (after the last arrival) never affect an admission.
	KnowledgeReuse bool
	// Knowledge pre-seeds the run's knowledge store from a previously
	// exported one (see KnowledgeStore.Export / ImportKnowledge), so a
	// fleet warm-starts from knowledge gathered by earlier runs instead
	// of from scratch. The store is copied — the run never mutates the
	// caller's — and the run's own final store (imported + this run's
	// contributions) is returned in Result.Knowledge. Requires
	// KnowledgeReuse.
	Knowledge *KnowledgeStore
	// Workload is the offered load.
	Workload Workload
	// WarmupSec starts the measurement window: sessions arriving before
	// it and power drawn before it are excluded from the steady-state
	// metrics. The window ends at the workload horizon.
	WarmupSec float64
	// SLOFPSFactor is the session SLO threshold as a fraction of the
	// target frame rate. DefaultSLOFPSFactor when 0.
	SLOFPSFactor float64
	// Spec, Model and Catalog override the simulated substrate.
	Spec    *platform.Spec
	Model   *hevc.Model
	Catalog *video.Catalog
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// Workers sizes the pool the per-server simulations fan out on
	// (0 = one per CPU, 1 = serial). Results are bit-identical for any
	// worker count.
	Workers int
	// Shards splits the fleet across per-shard dispatcher goroutines:
	// server i belongs to shard i mod Shards, and each shard advances
	// its own engines (with its own slice of the event heap) in the
	// parallel phase of every dispatcher step, reconciling with the
	// coordinator at a barrier before any placement or epoch decision —
	// see shard.go. Results are bit-identical to Shards <= 1 (the
	// single-goroutine dispatcher) for every policy, both dispatchers,
	// knowledge reuse and the elastic features; shards only buy wall
	// clock on multi-core hosts once fleets are large enough that
	// advancing engines dominates placement. 0 or 1 = unsharded.
	Shards int
	// Dispatch selects the dispatcher implementation: DispatchIndexed
	// (default) or DispatchScan. The two produce bit-identical results;
	// the scan path is the O(servers)-per-arrival reference.
	Dispatch DispatchMode
	// RetainSessions keeps the per-arrival SessionOutcome log in
	// Result.Sessions. Off by default: every aggregate is folded
	// streamingly at each session's departure event, so the default path
	// allocates O(active sessions) — the property that makes month-long
	// horizons feasible — and Result.Sessions is nil. Retention changes
	// no other result field.
	RetainSessions bool
	// EpochSec is the control-epoch interval driving the elasticity
	// features below (rebalancing, autoscaling, scheduled drains).
	// DefaultEpochSec when 0 and any of them is enabled; ignored — no
	// epochs run — otherwise. Epochs interleave with the arrival stream
	// on the one merged clock (an epoch due at an arrival's instant runs
	// before the arrival) and continue to the workload horizon, so every
	// elasticity decision lands at a deterministic point of the event
	// order and results stay bit-identical for any Workers count and
	// both dispatchers.
	EpochSec float64
	// Rebalance enables the built-in power-hotspot rebalancer (see
	// RebalancerPowerHotspot): each epoch it live-migrates sessions away
	// from servers whose estimated package power exceeds their power
	// budget. Elasticity requires migratable sessions, so the MonoAgent
	// approach is rejected.
	Rebalance bool
	// RebalancerFactory overrides Rebalance with a custom Rebalancer
	// constructor (a fresh instance is requested per run). The
	// implementation must be deterministic — plan only from the fleet
	// states it is handed.
	RebalancerFactory func() Rebalancer
	// MigrationStallSec is the stall each live migration charges the
	// moved session: its in-flight frame is delayed this many real
	// seconds, counting against throughput — and therefore the SLO —
	// like any slow frame. DefaultMigrationStallSec when 0 and an
	// elasticity feature is enabled.
	MigrationStallSec float64
	// Autoscale enables target-utilization fleet autoscaling on the
	// epoch schedule: scale-out adds servers when utilization crosses
	// the high watermark, scale-in drains (migrate-then-decommission)
	// the highest-index server when it falls below the low one.
	Autoscale AutoscaleConfig
	// Drain schedules explicit server decommissions: at the first epoch
	// at or after each event's AtSec the server stops admitting, its
	// sessions are live-migrated off, and it leaves the fleet once
	// empty.
	Drain []DrainEvent
	// Queue bounds the fleet-level admission waiting room (see
	// admission.go): arrivals that find no server wait — FIFO within a
	// resolution-class priority order — and are re-attempted at every
	// decision point (arrivals, elastic epochs, the workload horizon)
	// until a server frees up or their deadline passes. The zero value
	// keeps the drop-on-full behaviour and byte-identical output.
	Queue QueueConfig
	// Faults schedules deterministic fault injection (see faults.go):
	// server crashes, power-cap degradations and availability blips land
	// at precomputed control moments of the serial phase, with periodic
	// session checkpoints and a queue-based recovery pipeline bringing
	// crash-interrupted sessions back. The zero value disables fault
	// code entirely and keeps byte-identical output.
	Faults FaultConfig
	// Progress observes completed per-server simulations.
	Progress experiments.ProgressFunc
}

// DispatchMode selects the dispatcher implementation.
type DispatchMode string

const (
	// DispatchIndexed is the default fleet dispatcher: a min-heap of
	// engines keyed by next event time advances only the servers with
	// events due before the arrival instant (idle engines are never
	// touched), server states are maintained incrementally on admission
	// and departure, and the built-in policies place through their fleet
	// index — so an arrival costs O(k log servers) for the k servers
	// with pending events instead of O(servers).
	DispatchIndexed DispatchMode = "indexed"
	// DispatchScan is the O(servers)-per-arrival reference dispatcher:
	// every live engine is advanced to each arrival instant, the full
	// state slice is rebuilt and the policy scans it. It produces
	// byte-identical results to DispatchIndexed (equivalence tests pin
	// this); it is retained as the semantic reference and for
	// benchmarking the sweep it replaced.
	DispatchScan DispatchMode = "scan"
)

// DispatchModes lists the dispatcher implementations.
func DispatchModes() []DispatchMode { return []DispatchMode{DispatchIndexed, DispatchScan} }

// SessionOutcome is the service-level record of one arrival.
type SessionOutcome struct {
	// Req is the arrival as dispatched.
	Req SessionRequest
	// Server is the admitting server's index, or -1 when rejected.
	Server int
	// Measured reports whether the arrival fell inside the measurement
	// window (at or after warm-up).
	Measured bool
	// Queued reports the arrival entered the admission queue instead of
	// being placed (or rejected) immediately; queueing enabled only.
	Queued bool
	// QueueWaitSec is the wait between arrival and admission — 0 for
	// direct admissions, and for entries that never got a server.
	QueueWaitSec float64
	// Dropped reports a queued arrival that left the queue without a
	// server (deadline passed, or the run ended while it waited). Such
	// arrivals are counted in Result.QueueDropped, never in Rejected.
	Dropped bool
	// Interrupted reports the session was resident on a server when it
	// crashed; fault injection only.
	Interrupted bool
	// Recovered reports an interrupted session that was restored onto a
	// surviving server (Server then holds the restoring server).
	Recovered bool
	// Lost reports an interrupted session that was never restored:
	// dropped with its server, shed from the recovery queue, out of
	// retries, or past its recovery deadline.
	Lost bool
	// The remaining fields are zero for rejected arrivals.
	// Frames is the number of frames actually transcoded.
	Frames int
	// ViolationPct is the share of frames whose windowed FPS fell below
	// the target over the session's lifetime.
	ViolationPct float64
	// SLOMet reports AvgFPS >= SLOFPSFactor * target.
	SLOMet bool
	// Averages over the session's lifetime.
	AvgFPS         float64
	AvgPSNRdB      float64
	AvgBitrateMbps float64
}

// ServerResult aggregates one server of the fleet.
type ServerResult struct {
	// Index identifies the server.
	Index int
	// Sessions is the number of sessions admitted over the whole run.
	Sessions int
	// PeakActive is the highest number of simultaneously resident
	// sessions observed (by actual session lifetimes). The dispatcher
	// admits on those same event-interleaved lifetimes, so it never
	// exceeds the admission limit.
	PeakActive int
	// AvgPowerW is the package power averaged over the measurement
	// window (idle power when the server saw no load).
	AvgPowerW float64
	// UtilizationPct is the time-averaged resident-session count over
	// the measurement window, as a percentage of the admission limit.
	UtilizationPct float64
}

// ClassStats aggregates the measured sessions of one resolution class.
type ClassStats struct {
	// Sessions is the number of measured (admitted, in-window) sessions.
	Sessions int
	// SLOAttainedPct is the share of them that met the real-time SLO.
	SLOAttainedPct float64
	// AvgViolationPct, AvgFPS and AvgPSNRdB average over them.
	AvgViolationPct float64
	AvgFPS          float64
	AvgPSNRdB       float64
}

// QuantileSummary reports streaming quantile estimates over one metric
// of the measured sessions, read from a fixed-bin histogram sketch
// (deterministic and order-independent, so results stay bit-identical
// across dispatchers and worker counts).
type QuantileSummary struct {
	// Count is the number of sessions folded into the sketch.
	Count int
	// P50, P95 and P99 are the estimated quantiles.
	P50, P95, P99 float64
}

// ClassDistributions holds the per-class distribution sketches: means
// hide tail behaviour, and the tail is where SLOs are lost.
type ClassDistributions struct {
	// FPS sketches each measured session's lifetime average FPS over
	// [0, 2x target), so P50/P95/P99 locate the slow tail of the class.
	FPS QuantileSummary
	// DurationSec sketches each measured session's actual residency time
	// (departure minus admission, contention-stretched; admission is the
	// arrival instant unless the session waited in the queue).
	DurationSec QuantileSummary
}

// WindowedStats reports exponentially time-decayed views of the core
// service metrics: each sample's weight decays as exp(-age/TauSec), so
// the values describe how the service was doing toward the end of the
// run rather than averaged over its whole history. Long horizons with
// drifting load (diurnal curves, ramps) read very differently here than
// in the lifetime averages.
type WindowedStats struct {
	// TauSec is the decay time constant (a quarter of the measurement
	// window).
	TauSec float64
	// SLOAttainedPct decays over measured session departures.
	SLOAttainedPct float64
	// RejectionPct decays over all arrivals.
	RejectionPct float64
	// UtilizationPct decays over the fleet occupancy sampled at each
	// arrival decision (resident sessions as a share of fleet capacity).
	UtilizationPct float64
	// QueueDepth decays over the admission-queue backlog sampled at each
	// arrival decision — the recent waiting-room pressure. Zero when
	// queueing is off.
	QueueDepth float64
	// AvailabilityPct decays over the share of the initial-or-crashed
	// fleet that was in service (not crashed, not blipped), sampled at
	// each arrival decision. Zero when fault injection is off.
	AvailabilityPct float64
}

// Result is the steady-state outcome of a service run.
type Result struct {
	// Policy is the placement policy that ran.
	Policy string
	// DurationSec is the workload horizon; WarmupSec is the measurement
	// window start. (Simulation continues past the horizon until every
	// admitted session finishes.)
	DurationSec float64
	WarmupSec   float64
	// Offered / Admitted / Rejected count every arrival of the run;
	// RejectionPct is Rejected/Offered. Rejected means capacity-rejected
	// at arrival — with queueing enabled, an arrival that waits in the
	// queue is later counted admitted or queue-dropped, never rejected,
	// and Offered == Admitted + Rejected + QueueDropped always holds.
	Offered      int
	Admitted     int
	Rejected     int
	RejectionPct float64
	// Queued / QueueAdmitted / QueueDropped account the admission
	// queue's activity when Config.Queue enables it (all zero
	// otherwise): arrivals that entered the waiting room, entries later
	// admitted from it, and entries dropped without a server (deadline
	// passed, or still waiting at the end of the run).
	Queued        int
	QueueAdmitted int
	QueueDropped  int
	// QueueDroppedPct is QueueDropped/Offered — the complement of
	// RejectionPct in the loss accounting (an offered session is lost
	// either at the door or in the queue, never both).
	QueueDroppedPct float64
	// AvgQueueWaitSec averages the admission wait over the measured
	// admitted sessions; direct admissions wait 0, so this is the
	// fleet-wide added latency, not the per-queued-session wait.
	AvgQueueWaitSec float64
	// MeasuredOffered and MeasuredRejected restrict the accounting to
	// the measurement window; MeasuredRejectionPct is their ratio.
	MeasuredOffered      int
	MeasuredRejected     int
	MeasuredRejectionPct float64
	// Measured is the number of admitted in-window sessions the SLO
	// statistics cover; SLOAttainedPct is the share that met the SLO.
	Measured       int
	SLOAttainedPct float64
	// HR and LR split the SLO statistics by resolution class.
	HR, LR ClassStats
	// FleetAvgPowerW is the mean per-server window power.
	FleetAvgPowerW float64
	// KnowledgeContributions and KnowledgeSeeded report the knowledge
	// store's activity when Config.KnowledgeReuse was on (zero
	// otherwise): sessions whose learned state was folded into the store
	// during the arrival phase, and admissions seeded from at least one
	// prior contribution (warm starts).
	KnowledgeContributions int
	KnowledgeSeeded        int
	// HRDist and LRDist sketch the distribution (not just the mean) of
	// per-session FPS and residency time for each class's measured
	// sessions.
	HRDist, LRDist ClassDistributions
	// QueueWaitDist and TTFFDist are the latency-first views a queued
	// service is judged by (zero-valued when queueing is off):
	// QueueWaitDist sketches the admission wait of every measured
	// admitted session (0 for direct admissions), TTFFDist the
	// time-to-first-frame — first transcoded frame minus arrival, i.e.
	// queue wait plus the first frame's contention-stretched service
	// time — of every measured session that departed.
	QueueWaitDist QuantileSummary
	TTFFDist      QuantileSummary
	// Windowed reports time-decayed views of SLO attainment, rejection
	// and utilization — the service "lately" rather than on average.
	Windowed WindowedStats
	// Migrations counts live session migrations (evacuations off
	// draining servers plus rebalancer moves); ServersAdded and
	// ServersRemoved count fleet topology changes; PeakServers is the
	// largest in-service fleet observed. With no elasticity feature
	// enabled, the counters are zero and PeakServers is the configured
	// fleet size.
	Migrations     int
	ServersAdded   int
	ServersRemoved int
	PeakServers    int
	// The fault block accounts Config.Faults activity (all zero when no
	// plan is configured). FaultsInjected counts fault events that
	// struck; ServersCrashed the servers lost for good. Interrupted
	// counts sessions resident on a crashing server; of those, Recovered
	// were restored onto surviving capacity and Lost never were —
	// Interrupted == Recovered + Lost once the run drains. LostWorkSec
	// totals the transcoding seconds lost between each victim's last
	// checkpoint (or start) and the crash. MTTRSec is the mean
	// crash-to-restore latency over recovered sessions, and
	// RecoveryLatency sketches its distribution. AvailabilityPct is the
	// time-averaged share of the initial fleet in service: crashed
	// servers are out from the crash to the horizon, blipped servers for
	// their windows.
	FaultsInjected  int
	ServersCrashed  int
	Interrupted     int
	Recovered       int
	Lost            int
	LostWorkSec     float64
	MTTRSec         float64
	RecoveryLatency QuantileSummary
	AvailabilityPct float64
	// Knowledge is the run's final knowledge store (imported snapshot
	// plus this run's contributions) when Config.KnowledgeReuse was on,
	// nil otherwise. Export it for a later run's Config.Knowledge.
	Knowledge *KnowledgeStore
	// Servers holds one entry per server, in index order.
	Servers []ServerResult
	// Sessions holds one entry per arrival, in arrival order — only when
	// Config.RetainSessions is set (nil otherwise; the default path does
	// not retain per-session state).
	Sessions []SessionOutcome
}

// withDefaults resolves zero config fields.
func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.MaxSessionsPerServer == 0 {
		c.MaxSessionsPerServer = DefaultMaxSessionsPerServer
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastLoaded
	}
	if c.Approach == "" {
		c.Approach = experiments.MAMUT
	}
	if c.SLOFPSFactor == 0 {
		c.SLOFPSFactor = DefaultSLOFPSFactor
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchIndexed
	}
	if c.Elastic() {
		if c.EpochSec == 0 {
			c.EpochSec = DefaultEpochSec
		}
		if c.MigrationStallSec == 0 {
			c.MigrationStallSec = DefaultMigrationStallSec
		}
		if c.Autoscale.Enabled {
			if c.Autoscale.MinServers == 0 {
				c.Autoscale.MinServers = 1
			}
			if c.Autoscale.MaxServers == 0 {
				c.Autoscale.MaxServers = 4 * c.Servers
			}
			if c.Autoscale.TargetUtilPct == 0 {
				c.Autoscale.TargetUtilPct = 70
			}
			if c.Autoscale.HighPct == 0 {
				c.Autoscale.HighPct = 85
			}
			if c.Autoscale.LowPct == 0 {
				c.Autoscale.LowPct = 40
			}
		}
	}
	if c.Queue.Capacity > 0 {
		if c.Queue.DeadlineSec == 0 {
			c.Queue.DeadlineSec = DefaultQueueDeadlineSec
		}
		if c.Queue.Priority == "" {
			c.Queue.Priority = QueuePrioHRFirst
		}
	}
	c.Faults = c.Faults.withDefaults()
	c.Workload = c.Workload.withDefaults()
	return c
}

// Validate reports whether the config is usable (after defaults).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Servers < 1 {
		return fmt.Errorf("serve: fleet size %d < 1", c.Servers)
	}
	if c.MaxSessionsPerServer < 1 {
		return fmt.Errorf("serve: admission limit %d < 1", c.MaxSessionsPerServer)
	}
	if c.PolicyFactory == nil {
		if _, err := NewPolicy(c.Policy); err != nil {
			return err
		}
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.WarmupSec < 0 {
		return fmt.Errorf("serve: negative warm-up %g", c.WarmupSec)
	}
	if d := c.Workload.withDefaults().DurationSec; c.WarmupSec >= d && d > 0 {
		return fmt.Errorf("serve: warm-up %gs consumes the whole %gs horizon", c.WarmupSec, d)
	}
	if c.SLOFPSFactor < 0 {
		return fmt.Errorf("serve: negative SLO factor %g", c.SLOFPSFactor)
	}
	if c.SLOFPSFactor > 1 {
		// Controllers regulate *around* the target frame rate, so a
		// factor above 1 demands a sustained average beyond the target —
		// an unattainable SLO that silently zeroes SLOAttainedPct.
		return fmt.Errorf("serve: SLO factor %g > 1 is unattainable (sessions regulate around the target FPS)", c.SLOFPSFactor)
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: workers %d < 0", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("serve: shards %d < 0", c.Shards)
	}
	switch c.Dispatch {
	case DispatchIndexed, DispatchScan:
	default:
		return fmt.Errorf("serve: unknown dispatch mode %q (have %v)", c.Dispatch, DispatchModes())
	}
	if c.Spec != nil {
		// A malformed custom spec is a config error; surfacing it here
		// keeps the dispatcher's power estimation from crashing mid-run.
		if err := c.Spec.Validate(); err != nil {
			return fmt.Errorf("serve: platform spec: %w", err)
		}
	}
	if c.KnowledgeReuse && c.Approach != experiments.MAMUT {
		return fmt.Errorf("serve: knowledge reuse requires the %s approach, got %q", experiments.MAMUT, c.Approach)
	}
	if c.Knowledge != nil && !c.KnowledgeReuse {
		return fmt.Errorf("serve: imported knowledge requires KnowledgeReuse")
	}
	if err := c.Queue.validate(); err != nil {
		return err
	}
	if err := c.Faults.validate(c.Servers, c.Workload.withDefaults().DurationSec, c.Queue.Capacity); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.Approach == experiments.MonoAgent {
		// Checkpoints and crash recovery extract full session state, and
		// degradation reprofiles live engines — both need the stateful
		// session machinery the mono-agent baseline does not expose.
		return fmt.Errorf("serve: fault injection requires migratable sessions; %s sessions are not migratable", experiments.MonoAgent)
	}
	if c.Elastic() {
		if c.Approach == experiments.MonoAgent {
			// Live migration needs the controller's full decision state;
			// the mono-agent baseline does not expose it.
			return fmt.Errorf("serve: elasticity (rebalance/autoscale/drain) requires migratable sessions; %s sessions are not migratable", experiments.MonoAgent)
		}
		if c.EpochSec < 0 {
			return fmt.Errorf("serve: negative epoch interval %g", c.EpochSec)
		}
		if c.MigrationStallSec < 0 {
			return fmt.Errorf("serve: negative migration stall %g", c.MigrationStallSec)
		}
		for _, ev := range c.Drain {
			if ev.AtSec < 0 {
				return fmt.Errorf("serve: drain event at negative time %g", ev.AtSec)
			}
			if ev.Server < 0 || ev.Server >= c.Servers {
				return fmt.Errorf("serve: drain event for server %d outside initial fleet 0..%d", ev.Server, c.Servers-1)
			}
		}
		if as := c.Autoscale; as.Enabled {
			if as.MinServers < 1 {
				return fmt.Errorf("serve: autoscale min %d < 1", as.MinServers)
			}
			if as.MinServers > c.Servers || as.MaxServers < c.Servers {
				return fmt.Errorf("serve: initial fleet %d outside autoscale bounds [%d,%d]", c.Servers, as.MinServers, as.MaxServers)
			}
			if as.TargetUtilPct <= 0 || as.TargetUtilPct > 100 {
				return fmt.Errorf("serve: autoscale target utilization %g%% outside (0,100]", as.TargetUtilPct)
			}
			if as.LowPct < 0 || as.LowPct >= as.HighPct || as.HighPct > 100 {
				return fmt.Errorf("serve: autoscale watermarks low=%g high=%g invalid (need 0 <= low < high <= 100)", as.LowPct, as.HighPct)
			}
		}
	}
	return nil
}

// departRec is the dispatcher's record of one completed session — the
// only per-session state that survives a departure. It is queued by the
// engine's OnSessionEnd hook and folded into the streaming aggregates in
// arrival-ID order (at the next arrival instant, or at finish for the
// drain phase), so the fold sequence — and therefore every accumulated
// float — depends only on the workload and seed, never on server
// iteration order, dispatcher implementation or the worker pool.
type departRec struct {
	reqID                                     int
	server                                    int
	res                                       video.Resolution
	arriveAt                                  float64
	startAt                                   float64 // admission time (== arriveAt unless queued)
	firstFrameAt                              float64 // first frame completion (0 = none observed; queueing only)
	endAt                                     float64 // actual, contention-stretched departure time
	measured                                  bool
	frames                                    int
	violationPct, avgFPS, avgPSNR, avgBitrate float64
}

// fleetServer is the dispatcher's live view of one server: its engine
// (created on first admission) and the sessions actually resident on it.
// The resident counts are maintained by the engine's OnSessionEnd hook,
// so the dispatcher sees contention-stretched lifetimes, not the nominal
// arrival + Frames/TargetFPS approximation.
type fleetServer struct {
	eng    *transcode.Engine
	hr, lr int

	// resident maps engine session ids to the arrival bookkeeping the
	// departure record needs; entries live exactly as long as the
	// session does.
	resident map[int]residentRec
	// cur/peak maintain PeakActive online: departures at or before an
	// arrival instant are processed before its admission, so the counter
	// reproduces the close-before-open convention of the retired
	// end-of-run interval event-sort.
	cur, peak int
	// power integrates this server's package-power readings over the
	// measurement window as they are emitted (engine OnFrame hook) —
	// streaming replacement for the end-of-run trace replay.
	power *metrics.PowerIntegrator
	// drained collects departure records from the post-arrival drain.
	// The drain runs engines concurrently, so each engine appends only
	// to its own server's slice; finish merges and sorts them.
	drained []departRec

	// Knowledge harvest (knowledge reuse only). harvest maps the engine
	// session id of every resident MAMUT session to its contribution
	// identity; the departure hook moves entries to the dispatcher's
	// pending batch, which folds into the store — sorted by arrival ID
	// across the whole fleet — at the next arrival instant. draining is
	// set before the post-arrival drain: drain departures are not
	// harvested (no admission can observe them), which keeps the drained
	// engines independent and the output identical for any worker count.
	harvest  map[int]harvestEntry
	draining bool

	// decom marks the server decommissioning (no admissions; evacuated by
	// migration at epochs); retired marks it emptied and out of the fleet.
	// Retired servers keep their accumulated results and their index — it
	// is never reused.
	decom   bool
	retired bool

	// Fault state (fault injection only). blipped marks the server
	// unavailable for a blip window (its state reports Draining, so
	// placement and rebalancing skip it while its engine keeps running);
	// crashed marks it killed by a crash fault — retired with its
	// sessions interrupted rather than drained. spec is the degraded
	// platform spec while a degrade window is open (nil = nominal), and
	// budgetW the per-server power budget placement reads — d.budget
	// except inside a degrade window.
	blipped bool
	crashed bool
	spec    *platform.Spec
	budgetW float64

	// sh is the shard owning this server (nil when the run is unsharded).
	// During the parallel sweep window only the owning shard's goroutine
	// touches this server; the departure hook buffers into sh instead of
	// the dispatcher (see shard.go).
	sh *shard
}

// residentRec is the arrival-side half of a future departRec. seq is the
// catalog sequence the session plays — needed to rebuild its content
// process shell if the session is live-migrated. startAt is when the
// session was actually admitted (after its queue wait, if any);
// firstFrameAt records the first frame completion the OnFrame hook
// observes (queued runs only — both survive live migration with the
// record).
type residentRec struct {
	reqID        int
	res          video.Resolution
	seq          string
	arriveAt     float64
	startAt      float64
	firstFrameAt float64
	measured     bool
	// req is the original arrival, kept only under fault injection: a
	// crash victim re-enters the admission queue as a recovery entry and
	// needs the full request to re-place (and possibly cold-restart).
	req SessionRequest
}

// harvestEntry identifies one future knowledge contribution. seeded is
// the snapshot the session was warm-started from (nil for a cold
// start): at harvest time its counts are subtracted from the departing
// snapshot so the session contributes only its own experience —
// re-contributing seeded mass would compound the pool exponentially
// across generations of warm starts.
type harvestEntry struct {
	reqID  int
	res    video.Resolution
	ctrl   *core.Controller
	seeded *core.Snapshot
}

// addSession builds the arrival's source and controller from its fixed
// per-session seeds and registers it on the server's engine as a live
// arrival at its admission time startAt (the arrival instant, unless
// the session waited in the admission queue first). seeded is the
// knowledge snapshot the controller factory warm-starts from (nil when
// knowledge reuse is off or the class is still cold), recorded for
// delta harvesting. Returns the engine session id.
func (fs *fleetServer) addSession(req SessionRequest, cfg Config, catalog *video.Catalog,
	factory experiments.ControllerFactory, seeded *core.Snapshot, startAt float64) (int, error) {
	seq, err := catalog.Get(req.Sequence)
	if err != nil {
		return 0, err
	}
	// Session rngs are xrand (splitmix64) streams: seeding a stdlib rand
	// source costs a ~600-word table initialisation, which profiled as
	// the single largest per-admission cost at fleet scale. The stateful
	// generator and the explicit source construction draw the identical
	// streams the plain xrand.New forms would — they additionally expose
	// the rng state live migration carries across servers.
	src, err := video.NewStatefulGenerator(seq, req.SourceSeed)
	if err != nil {
		return 0, err
	}
	initial := experiments.InitialSettings(req.Res)
	ctrlSrc := xrand.NewSource(req.ControllerSeed)
	ctrl, err := factory(req.Res, initial, rand.New(ctrlSrc))
	if err != nil {
		return 0, err
	}
	ctrl = wrapStateful(ctrl, ctrlSrc)
	id, err := fs.eng.AddSession(transcode.SessionConfig{
		Source:        src,
		Controller:    ctrl,
		Initial:       initial,
		BandwidthMbps: req.BandwidthMbps,
		TargetFPS:     cfg.Workload.TargetFPS,
		FrameBudget:   req.Frames,
		StartAtSec:    startAt,
		// No trace retention: every aggregate folds streamingly at the
		// departure event, and the engine discards departed sessions, so
		// server memory is O(resident sessions) however long the run.
		CollectTrace: false,
	})
	if err != nil {
		return 0, err
	}
	rec := residentRec{
		reqID:    req.ID,
		res:      req.Res,
		seq:      req.Sequence,
		arriveAt: req.ArriveAtSec,
		startAt:  startAt,
		// Measurement keys off the arrival, not the admission: a session
		// that arrived in-window is measured however long it queued.
		measured: req.ArriveAtSec >= cfg.WarmupSec,
	}
	if cfg.Faults.Enabled() {
		// Keep the full request only when a crash could force this
		// session back through the admission queue.
		rec.req = req
	}
	fs.resident[id] = rec
	fs.cur++
	if fs.cur > fs.peak {
		fs.peak = fs.cur
	}
	if fs.harvest != nil {
		if mc := mamutController(ctrl); mc != nil {
			fs.harvest[id] = harvestEntry{reqID: req.ID, res: req.Res, ctrl: mc, seeded: seeded}
		}
	}
	if req.Res == video.HR {
		fs.hr++
	} else {
		fs.lr++
	}
	return id, nil
}

// Run executes one service simulation as a single event-interleaved fleet:
// the arrival process and every server's frame-level simulation advance on
// one merged clock. Before each placement decision the fleet is stepped
// to the arrival instant, so departures at or before it — at their
// *actual*, contention-stretched times — have already freed their slots,
// and the policy decides from true occupancy. The default indexed
// dispatcher does this in O(k log servers) per arrival: a min-heap keyed
// by each engine's next event time pops only the k servers with events
// due (idle engines are never touched), server states update
// incrementally on admission/departure, and the built-in policies place
// through their fleet index. DispatchScan selects the O(servers)
// reference sweep instead; the two produce bit-identical results. After
// the last arrival the engines have no further interaction and drain to
// completion across the worker pool; results are bit-identical for any
// worker count.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &dispatcher{cfg: cfg, spec: platform.DefaultSpec(), model: hevc.DefaultModel(), catalog: cfg.Catalog}
	if cfg.Spec != nil {
		d.spec = *cfg.Spec
	}
	if cfg.Model != nil {
		d.model = *cfg.Model
	}
	if d.catalog == nil {
		d.catalog = video.DefaultCatalog()
	}
	exOpts := experiments.Options{Spec: d.spec, Model: d.model}
	if cfg.KnowledgeReuse {
		if cfg.Knowledge != nil {
			// Warm-start the whole run from imported knowledge. The copy
			// keeps the run from mutating the caller's store; the run's
			// final store is handed back via Result.Knowledge.
			d.store = cfg.Knowledge.clone()
		} else {
			d.store = NewKnowledgeStore()
		}
		// The factory seeds from the exact snapshot the dispatcher
		// records as the admission's subtraction baseline (set right
		// before each addSession), so baseline == seed by construction —
		// delta harvesting cannot drift from what the controller
		// actually absorbed, even if fold points move.
		exOpts.WarmStart = func(video.Resolution) *core.Snapshot { return d.pendingSeed }
	}
	factory, err := experiments.Factory(cfg.Approach, exOpts)
	if err != nil {
		return nil, err
	}
	d.factory = factory
	if cfg.PolicyFactory != nil {
		d.pol = cfg.PolicyFactory()
		if d.pol == nil {
			return nil, fmt.Errorf("serve: policy factory returned nil")
		}
	} else if d.pol, err = NewPolicy(cfg.Policy); err != nil {
		return nil, err
	}

	arrivals, err := GenerateArrivals(cfg.Workload, d.catalog, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := d.init(len(arrivals)); err != nil {
		return nil, err
	}
	// Join the shard goroutines however the run ends (including mid-run
	// errors); no-op for unsharded runs.
	defer d.stopShards()
	// Interleave the control timeline — elastic epochs, periodic fault
	// checkpoints, fault events — with the arrivals on the one merged
	// clock. A moment due exactly at an arrival's instant runs before the
	// arrival (drain/scale/fault effects apply to it), and the timeline
	// continues past the last arrival to the horizon. With no elasticity
	// and no faults the timeline is empty and this is the plain arrival
	// loop.
	moments := d.controlMoments()
	mi := 0
	for _, req := range arrivals {
		for mi < len(moments) && moments[mi].at <= req.ArriveAtSec {
			if err := d.control(moments[mi]); err != nil {
				return nil, err
			}
			mi++
		}
		if err := d.place(req); err != nil {
			return nil, err
		}
	}
	for ; mi < len(moments); mi++ {
		if err := d.control(moments[mi]); err != nil {
			return nil, err
		}
	}
	return d.finish()
}

// dispatcher is the live state of one service run's interleaved phase:
// the fleet, the policy (with its optional index), the engine event heap
// and the knowledge-harvest pipeline.
type dispatcher struct {
	cfg     Config
	spec    platform.Spec
	model   hevc.Model
	catalog *video.Catalog
	factory experiments.ControllerFactory
	pol     Policy

	// indexed selects the event-heap sweep and incremental server
	// states (Config.Dispatch != DispatchScan); idx is additionally
	// non-nil when the policy places through a fleet index.
	indexed bool
	idx     FleetIndex

	estW   map[video.Resolution]float64
	budget float64

	servers []*fleetServer
	states  []ServerState
	evts    heaps.Heap[fleetEvent]
	nextEvt []float64 // current heap key per server (+Inf = idle, not in heap)

	// Sharded sweep (cfg.Shards > 1 only; see shard.go): the fleet
	// partitions, the barrier acknowledgement channel, the goroutine
	// join, and the flag marking the parallel window — the departure
	// hook buffers shard-locally exactly while it is up.
	shards    []*shard
	shardAcks chan shardAck
	shardWG   sync.WaitGroup
	parallel  bool

	// Knowledge reuse: the store, the seed snapshot the WarmStart
	// closure hands the next controller, the cross-fleet departure batch
	// awaiting its fold, and the warm-start count.
	store       *KnowledgeStore
	pendingSeed *core.Snapshot
	pending     []harvestEntry
	seeded      int

	// Elasticity (epochSec > 0 only): the rebalancer, the scheduled
	// decommissions still to apply, the in-service (non-retired) server
	// count with its peak, the event counters, and a scratch slice for
	// the live-states view scan-mode policies place from once the fleet
	// has retired servers.
	reb        Rebalancer
	epochSec   float64
	drainQueue []DrainEvent
	liveSrv    int
	peakSrv    int
	migrations int
	addedSrv   int
	removedSrv int
	scratch    []ServerState

	// Streaming aggregation state. Sessions fold in at their departure
	// events (pendingStats, sorted by arrival ID per fold batch); the
	// scalar counters update at placement time. Nothing here grows with
	// the number of sessions served.
	sloFPS       float64 // SLO threshold: SLOFPSFactor * target FPS
	active       int     // fleet-wide resident sessions
	offered      int
	admitted     int
	rejected     int
	measOffered  int
	measRejected int
	measured     int
	admitCount   []int     // per-server admissions
	busy         []float64 // per-server in-window residency seconds
	hrAgg, lrAgg classAgg
	hrFPS, lrFPS *metrics.Histogram
	hrDur, lrDur *metrics.Histogram
	sloWin       *metrics.DecayedMean
	rejWin       *metrics.DecayedMean
	utilWin      *metrics.DecayedMean
	pendingStats []departRec
	outcomes     []SessionOutcome // only when cfg.RetainSessions

	// Queued admission (cfg.Queue.Capacity > 0 only; see admission.go):
	// the waiting room in arrival order, its outcome counters, the
	// queue-wait and time-to-first-frame sketches, the decayed backlog
	// view, and the optional backlog-observing side of the policy.
	queueOn       bool
	queue         []queueEntry
	qOrder        []int // scratch for queueOrder
	queuedTotal   int
	queueAdmitted int
	queueDropped  int
	qwSum         float64
	qwH, ttffH    *metrics.Histogram
	depthWin      *metrics.DecayedMean
	backlogObs    BacklogObserver

	// Fault injection (cfg.Faults.Enabled() only; see faults.go): the
	// per-session checkpoint snapshots, the initial fleet size the
	// availability accounting normalises by, the fault/outage counters,
	// and the recovery-latency sketches.
	faultsOn    bool
	snaps       map[int]faultSnap // keyed by arrival ID
	initialSrv  int
	crashedSrv  int
	blippedCnt  int
	faultCount  int
	interrupted int
	recovered   int
	lostSess    int
	lostWorkSec float64
	unavailSec  float64
	mttrSum     float64
	recH        *metrics.Histogram
	availWin    *metrics.DecayedMean
}

// classAgg streams the per-class session sums ClassStats is derived from.
type classAgg struct {
	n, met                   int
	sumViol, sumFPS, sumPSNR float64
}

// stats derives the reported ClassStats with the same arithmetic the
// retired end-of-run fold used.
func (a classAgg) stats() ClassStats {
	cs := ClassStats{Sessions: a.n}
	if a.n == 0 {
		return cs
	}
	n := float64(a.n)
	cs.SLOAttainedPct = 100 * float64(a.met) / n
	cs.AvgViolationPct = a.sumViol / n
	cs.AvgFPS = a.sumFPS / n
	cs.AvgPSNRdB = a.sumPSNR / n
	return cs
}

// init builds the per-server structures and the policy index.
func (d *dispatcher) init(arrivals int) error {
	cfg := d.cfg
	d.budget = powerBudgetW(d.spec)
	hrW, err := estSessionPowerW(d.spec, video.HR)
	if err != nil {
		return err
	}
	lrW, err := estSessionPowerW(d.spec, video.LR)
	if err != nil {
		return err
	}
	d.estW = map[video.Resolution]float64{video.HR: hrW, video.LR: lrW}
	d.servers = make([]*fleetServer, cfg.Servers)
	for i := range d.servers {
		d.servers[i] = &fleetServer{resident: make(map[int]residentRec), budgetW: d.budget}
		if d.store != nil {
			d.servers[i].harvest = make(map[int]harvestEntry)
		}
	}
	d.states = make([]ServerState, cfg.Servers)
	for i := range d.states {
		d.states[i] = ServerState{
			Index:       i,
			MaxSessions: cfg.MaxSessionsPerServer,
			// Idle power exactly: the incremental refresh expression with
			// zero resident sessions reduces to the same float.
			EstPowerW:    d.spec.IdlePowerW,
			PowerBudgetW: d.budget,
		}
	}
	d.sloFPS = cfg.SLOFPSFactor * cfg.Workload.TargetFPS
	d.admitCount = make([]int, cfg.Servers)
	d.busy = make([]float64, cfg.Servers)
	d.liveSrv = cfg.Servers
	d.peakSrv = cfg.Servers
	if cfg.Elastic() {
		d.epochSec = cfg.EpochSec
		if cfg.RebalancerFactory != nil {
			if d.reb = cfg.RebalancerFactory(); d.reb == nil {
				return fmt.Errorf("serve: rebalancer factory returned nil")
			}
		} else if cfg.Rebalance {
			d.reb = powerHotspot{}
		}
		d.drainQueue = append([]DrainEvent(nil), cfg.Drain...)
		sort.Slice(d.drainQueue, func(i, j int) bool {
			if d.drainQueue[i].AtSec != d.drainQueue[j].AtSec {
				return d.drainQueue[i].AtSec < d.drainQueue[j].AtSec
			}
			return d.drainQueue[i].Server < d.drainQueue[j].Server
		})
	}
	// Distribution sketches: FPS over [0, 2x target) — sessions regulate
	// around the target, so the range brackets it symmetrically — and
	// residency over [0, 8x mean session length), which covers the p99 of
	// the exponential session-length distribution with room for
	// contention stretch; the tails clamp.
	for _, h := range []**metrics.Histogram{&d.hrFPS, &d.lrFPS} {
		var err error
		if *h, err = metrics.NewHistogram(0, 2*cfg.Workload.TargetFPS, 256); err != nil {
			return err
		}
	}
	for _, h := range []**metrics.Histogram{&d.hrDur, &d.lrDur} {
		var err error
		if *h, err = metrics.NewHistogram(0, 8*cfg.Workload.MeanSessionSec, 512); err != nil {
			return err
		}
	}
	// Decayed windows: a quarter of the measurement window, so the
	// values describe the last stretch of the run.
	tau := (cfg.Workload.DurationSec - cfg.WarmupSec) / 4
	for _, m := range []**metrics.DecayedMean{&d.sloWin, &d.rejWin, &d.utilWin} {
		var err error
		if *m, err = metrics.NewDecayedMean(tau); err != nil {
			return err
		}
	}
	if q := cfg.Queue; q.Capacity > 0 {
		d.queueOn = true
		d.queue = make([]queueEntry, 0, q.Capacity)
		var err error
		// Queue wait is bounded by the deadline; time-to-first-frame adds
		// the first frame's contention-stretched service time on top, so
		// its range doubles the deadline (the tails clamp).
		if d.qwH, err = metrics.NewHistogram(0, q.DeadlineSec, 256); err != nil {
			return err
		}
		if d.ttffH, err = metrics.NewHistogram(0, 2*(q.DeadlineSec+1), 512); err != nil {
			return err
		}
		if d.depthWin, err = metrics.NewDecayedMean(tau); err != nil {
			return err
		}
		// Backlog observation is a queued-admission feature: with the
		// queue off the pipeline never consults the fleet state, keeping
		// the pre-queue arrival path untouched.
		if ob, ok := d.pol.(BacklogObserver); ok {
			d.backlogObs = ob
		}
	}
	if cfg.Faults.Enabled() {
		d.faultsOn = true
		d.initialSrv = cfg.Servers
		d.snaps = make(map[int]faultSnap)
		// Recovery latency is bounded by the slower class deadline (the
		// default even under Recovery.Drop, where nothing recovers and
		// the sketch stays empty).
		bound := DefaultFaultDeadlineSec
		for _, cl := range []FaultRecoveryClass{cfg.Faults.Recovery.HR, cfg.Faults.Recovery.LR} {
			if cl.DeadlineSec > bound {
				bound = cl.DeadlineSec
			}
		}
		var err error
		if d.recH, err = metrics.NewHistogram(0, bound, 256); err != nil {
			return err
		}
		if d.availWin, err = metrics.NewDecayedMean(tau); err != nil {
			return err
		}
	}
	if cfg.RetainSessions {
		d.outcomes = make([]SessionOutcome, arrivals)
	}
	d.indexed = cfg.Dispatch != DispatchScan
	if d.indexed {
		d.nextEvt = make([]float64, cfg.Servers)
		for i := range d.nextEvt {
			d.nextEvt[i] = math.Inf(1)
		}
		if fi, ok := d.pol.(FleetIndexer); ok {
			d.idx = fi.NewFleetIndex(d.states)
		}
	}
	d.initShards()
	return nil
}

// place runs the admission pipeline for one arrival: sync the fleet to
// the arrival instant, run a queue decision point against the freed
// capacity, then dispatch the arrival itself — admit, queue, or reject
// (see admission.go for the pipeline and the outcome taxonomy).
func (d *dispatcher) place(req SessionRequest) error {
	t := req.ArriveAtSec
	if err := d.syncPoint(t); err != nil {
		return err
	}
	if d.queueOn {
		// Waiting entries get first claim on the capacity this sweep's
		// departures freed — the arrival may not overtake them.
		if err := d.queueStep(t); err != nil {
			return err
		}
	}
	choice := -1
	if !d.queueOn || len(d.queue) == 0 {
		// A non-empty queue means its head just failed to place at this
		// very instant: the arrival goes behind it, no placement attempt.
		var err error
		if choice, err = d.choose(req, t); err != nil {
			return err
		}
	}
	d.offered++
	measured := t >= d.cfg.WarmupSec
	if measured {
		d.measOffered++
	}
	switch {
	case choice >= 0:
		if err := d.admit(req, choice, t, measured); err != nil {
			return err
		}
	case d.queueOn && len(d.queue) < d.cfg.Queue.Capacity:
		d.enqueue(req, measured)
	default:
		d.rejected++
		if measured {
			d.measRejected++
		}
		if d.outcomes != nil {
			d.outcomes[req.ID] = SessionOutcome{Req: req, Server: -1, Measured: measured}
		}
		d.sampleWindows(t, true)
		return nil
	}
	d.sampleWindows(t, false)
	return nil
}

// sampleWindows feeds the decayed rejection and utilization views with
// this arrival's decision and the fleet occupancy it left behind.
func (d *dispatcher) sampleWindows(t float64, rejected bool) {
	if rejected {
		d.rejWin.Add(t, 100)
	} else {
		d.rejWin.Add(t, 0)
	}
	if d.queueOn {
		d.depthWin.Add(t, float64(len(d.queue)))
	}
	capacity := float64(d.liveSrv * d.cfg.MaxSessionsPerServer)
	if capacity > 0 {
		d.utilWin.Add(t, 100*float64(d.active)/capacity)
	} else {
		// The whole fleet is decommissioned: no capacity reads as fully
		// utilized, not as idle.
		d.utilWin.Add(t, 100)
	}
	if d.faultsOn {
		// Availability over the servers faults can touch: the live fleet
		// plus what crashed out of it, so elastic scale-in does not read
		// as an outage.
		if denom := d.liveSrv + d.crashedSrv; denom > 0 {
			d.availWin.Add(t, 100*float64(d.liveSrv-d.blippedCnt)/float64(denom))
		}
	}
}

// foldStats folds every departure surfaced since the last fold into the
// streaming aggregates, in arrival-ID order. t is the fold instant (the
// arrival being placed, or the horizon for the drain batch), used as the
// decay timestamp of the windowed views.
func (d *dispatcher) foldStats(t float64) {
	if len(d.pendingStats) == 0 {
		return
	}
	sort.Slice(d.pendingStats, func(i, j int) bool { return d.pendingStats[i].reqID < d.pendingStats[j].reqID })
	for _, r := range d.pendingStats {
		d.foldDepart(r, t)
	}
	d.pendingStats = d.pendingStats[:0]
}

// foldDepart folds one completed session into the streaming aggregates:
// busy time, per-class sums, distribution sketches, decayed windows and
// (when retained) its outcome entry.
func (d *dispatcher) foldDepart(r departRec, t float64) {
	sloMet := r.avgFPS >= d.sloFPS
	// Busy time starts at admission (startAt), not arrival: a queued
	// session occupied no server while it waited. With queueing off the
	// two instants coincide.
	lo, hi := r.startAt, r.endAt
	if lo < d.cfg.WarmupSec {
		lo = d.cfg.WarmupSec
	}
	if hi > d.cfg.Workload.DurationSec {
		hi = d.cfg.Workload.DurationSec
	}
	if hi > lo {
		d.busy[r.server] += hi - lo
	}
	if d.outcomes != nil {
		so := &d.outcomes[r.reqID]
		so.Frames = r.frames
		so.ViolationPct = r.violationPct
		so.SLOMet = sloMet
		so.AvgFPS = r.avgFPS
		so.AvgPSNRdB = r.avgPSNR
		so.AvgBitrateMbps = r.avgBitrate
	}
	if !r.measured {
		return
	}
	agg, fpsH, durH := &d.hrAgg, d.hrFPS, d.hrDur
	if r.res != video.HR {
		agg, fpsH, durH = &d.lrAgg, d.lrFPS, d.lrDur
	}
	agg.n++
	if sloMet {
		agg.met++
	}
	agg.sumViol += r.violationPct
	agg.sumFPS += r.avgFPS
	agg.sumPSNR += r.avgPSNR
	fpsH.Add(r.avgFPS)
	durH.Add(r.endAt - r.startAt)
	if d.queueOn {
		// Time-to-first-frame: from the user's arrival (not admission) to
		// the first frame completion; a session that never completed a
		// frame is charged its whole span.
		ttff := r.endAt - r.arriveAt
		if r.firstFrameAt > 0 {
			ttff = r.firstFrameAt - r.arriveAt
		}
		d.ttffH.Add(ttff)
	}
	if sloMet {
		d.sloWin.Add(t, 100)
	} else {
		d.sloWin.Add(t, 0)
	}
}

// sweepTo advances the fleet to the arrival instant. The indexed path
// pops only engines whose next event is due at or before it — idle or
// empty engines are never touched — so the sweep costs O(k log servers)
// for the k servers with events. Advancing an engine lazily is exact:
// the transcode engine settles its energy/thermal/virtual-clock
// integration at events, never at parks, so skipped parks cannot shift
// any result (see transcode.Engine.AdvanceTo). The scan path advances
// every live engine, as the reference dispatcher did.
func (d *dispatcher) sweepTo(t float64) error {
	if d.shards != nil {
		return d.sweepShards(t)
	}
	if !d.indexed {
		for _, fs := range d.servers {
			if fs.eng != nil {
				if err := fs.eng.AdvanceTo(t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for d.evts.Len() > 0 && d.evts.Peek().key <= t {
		ent := d.evts.Pop()
		if ent.key != d.nextEvt[ent.id] {
			continue // stale: the engine was re-keyed after this push
		}
		if err := d.servers[ent.id].eng.AdvanceTo(t); err != nil {
			return err
		}
		d.scheduleServer(ent.id)
	}
	return nil
}

// scheduleServer re-keys one engine in the event heap from its next
// pending event; idle engines (+Inf) leave the heap entirely. Old heap
// entries are invalidated by the key change and discarded when popped.
func (d *dispatcher) scheduleServer(i int) {
	next := d.servers[i].eng.NextEventTime()
	d.nextEvt[i] = next
	if math.IsInf(next, 1) {
		return
	}
	// A sharded run keys the event into the owning shard's partition of
	// the heap; the partitions' union is exactly the unsharded heap.
	if sh := d.servers[i].sh; sh != nil {
		sh.evts.Push(fleetEvent{key: next, id: i})
		return
	}
	d.evts.Push(fleetEvent{key: next, id: i})
}

// refreshState rebuilds one server's incrementally maintained state from
// its resident counts — evaluating the same expression the scan path
// uses, so both paths compare identical floats — and forwards it to the
// policy's fleet index.
func (d *dispatcher) refreshState(i int) {
	fs := d.servers[i]
	s := &d.states[i]
	s.Active = fs.hr + fs.lr
	s.HRActive = fs.hr
	s.LRActive = fs.lr
	s.EstPowerW = d.spec.IdlePowerW + float64(fs.hr)*d.estW[video.HR] + float64(fs.lr)*d.estW[video.LR]
	// A blipped server reports Draining (hence Full): placement and
	// rebalancing skip it for the window without a dedicated state bit.
	s.Draining = fs.decom || fs.blipped
	s.PowerBudgetW = fs.budgetW
	if d.idx != nil {
		d.idx.Update(*s)
	}
}

// refreshScanStates prepares the state slice a scanning policy places
// from. In scan mode the slice is rebuilt from the resident counts per
// arrival (the reference behaviour); in indexed mode occupancy and
// power are already current and only the arrival's class-specific
// EstArrivalW needs stamping. Once the fleet has retired servers the
// policy receives the in-service view only (matching what the fleet
// indexes are rebuilt from), so e.g. round-robin's modulus cycles over
// the same servers on both dispatch paths.
func (d *dispatcher) refreshScanStates(req SessionRequest) []ServerState {
	aw := d.estW[req.Res]
	if d.indexed {
		for i := range d.states {
			d.states[i].EstArrivalW = aw
		}
	} else {
		for i, fs := range d.servers {
			if fs.retired {
				continue
			}
			d.states[i] = ServerState{
				Index:        i,
				Active:       fs.hr + fs.lr,
				HRActive:     fs.hr,
				LRActive:     fs.lr,
				MaxSessions:  d.cfg.MaxSessionsPerServer,
				EstPowerW:    d.spec.IdlePowerW + float64(fs.hr)*d.estW[video.HR] + float64(fs.lr)*d.estW[video.LR],
				EstArrivalW:  aw,
				Draining:     fs.decom || fs.blipped,
				PowerBudgetW: fs.budgetW,
			}
		}
	}
	if d.removedSrv+d.crashedSrv == 0 {
		return d.states
	}
	live := d.scratch[:0]
	for i, fs := range d.servers {
		if !fs.retired {
			live = append(live, d.states[i])
		}
	}
	d.scratch = live
	return live
}

// createEngine builds server i's engine on first admission and installs
// the streaming hooks: the departure hook releases slots, queues the
// session's departure record and knowledge harvest, and refreshes the
// incremental state; the frame hook feeds the server's window-power
// integrator. The engine discards departed sessions — the departure
// record carries everything the aggregates need — so server memory
// stays O(resident sessions) over any horizon.
func (d *dispatcher) createEngine(i int) error {
	fs := d.servers[i]
	spec := d.spec
	if fs.spec != nil {
		// First admission lands inside a degrade window: the engine is
		// born with the derated spec and reprofiles back at the window
		// close.
		spec = *fs.spec
	}
	eng, err := transcode.NewEngine(spec, d.model, experiments.SubSeed(d.cfg.Seed, "serve|server", i))
	if err != nil {
		return err
	}
	fs.eng = eng
	if fs.sh != nil {
		fs.sh.engines++ // scan-mode shard wake filter; only a crash fault tears an engine down
	}
	fs.power = metrics.NewPowerIntegrator(d.cfg.WarmupSec, d.cfg.Workload.DurationSec)
	eng.DiscardDeparted(true)
	eng.OnFrame(func(obs transcode.Observation) {
		// The engine emits observations in non-decreasing time order and
		// equal-time completions share one meter reading, so streaming
		// integration reproduces the retired sorted-trace replay bitwise.
		fs.power.Add(obs.Time, obs.PowerW)
		if d.queueOn && obs.FrameIndex == 0 {
			// First frame of a session: record the instant for the
			// time-to-first-frame fold at departure. Per-server state
			// only, so the hook stays shard-safe; the record (and the
			// stamp) migrates with the session. The zero-check keeps an
			// earlier stamp authoritative if frame numbering ever
			// restarts (e.g. after a migration).
			if rec, ok := fs.resident[obs.SessionID]; ok && rec.firstFrameAt == 0 {
				rec.firstFrameAt = obs.Time
				fs.resident[obs.SessionID] = rec
			}
		}
	})
	eng.OnSessionEnd(func(end transcode.SessionEnd) {
		if end.Res == video.HR {
			fs.hr--
		} else {
			fs.lr--
		}
		fs.cur--
		rec, ok := fs.resident[end.SessionID]
		if !ok {
			// Defensive: every admitted session was registered.
			return
		}
		delete(fs.resident, end.SessionID)
		dr := departRec{
			reqID:        rec.reqID,
			server:       i,
			res:          rec.res,
			arriveAt:     rec.arriveAt,
			startAt:      rec.startAt,
			firstFrameAt: rec.firstFrameAt,
			endAt:        end.Time,
			measured:     rec.measured,
			frames:       end.Result.Frames,
			violationPct: end.Result.ViolationPct,
			avgFPS:       end.Result.AvgFPS,
			avgPSNR:      end.Result.AvgPSNRdB,
			avgBitrate:   end.Result.AvgBitrateMbps,
		}
		if fs.draining {
			// No placement can observe drain departures, and the drain
			// runs engines concurrently: shared dispatcher state (the
			// state slice, the policy index, the pending batches) must
			// not be touched from here — the record goes to the server's
			// own drained slice and folds, sorted, at finish.
			fs.drained = append(fs.drained, dr)
			return
		}
		if d.parallel {
			// Parallel sweep window of a sharded run: the hook is on the
			// owning shard's goroutine, so only shard-local state may be
			// touched. The global side — the active count, the stats
			// batch, the state/index refresh, the harvest hand-off — is
			// applied by the coordinator at the barrier close in shard-ID
			// order; the folds sort by arrival ID, so nothing downstream
			// can tell the difference from the inline path below.
			sh := fs.sh
			sh.departs = append(sh.departs, dr)
			if fs.harvest != nil {
				if entry, ok := fs.harvest[end.SessionID]; ok {
					sh.harvest = append(sh.harvest, entry)
					delete(fs.harvest, end.SessionID)
				}
			}
			return
		}
		d.applyDeparture(dr)
		if fs.harvest != nil {
			if entry, ok := fs.harvest[end.SessionID]; ok {
				d.pending = append(d.pending, entry)
				delete(fs.harvest, end.SessionID)
			}
		}
	})
	return nil
}

// applyDeparture applies one departure's global side to the dispatcher:
// the active count, the stats batch and (indexed) the server's dispatch
// state. Shared by the inline OnSessionEnd path and the shard serial-
// phase reconciliation — both must fold a departure identically.
func (d *dispatcher) applyDeparture(dr departRec) {
	d.active--
	d.pendingStats = append(d.pendingStats, dr)
	if d.snaps != nil {
		// The session completed; its crash checkpoint is dead weight.
		delete(d.snaps, dr.reqID)
	}
	if d.indexed {
		d.refreshState(dr.server)
	}
}

// foldDepartures folds every departure the fleet has surfaced since the
// last fold into the knowledge store, in arrival-ID order across all
// servers. The fixed order pins the floating-point fold sequence, so the
// store contents — and every snapshot later admissions are seeded from —
// depend only on the workload and seed. (Both dispatch paths surface the
// same departures before an arrival — a departure is an engine event —
// so the folded batches are identical.)
func (d *dispatcher) foldDepartures() error {
	if len(d.pending) == 0 {
		return nil
	}
	sort.Slice(d.pending, func(i, j int) bool { return d.pending[i].reqID < d.pending[j].reqID })
	for _, e := range d.pending {
		snap := e.ctrl.Snapshot()
		if e.seeded != nil {
			// Contribute the session's own experience only: keep its
			// final Q estimates but weight them by the visits it made
			// itself, not by the recycled seed mass.
			if err := snap.SubtractCounts(*e.seeded); err != nil {
				return err
			}
		}
		if err := d.store.Contribute(e.res, snap); err != nil {
			return err
		}
	}
	d.pending = d.pending[:0]
	return nil
}

// finish drains the loaded engines across the worker pool, folds the
// drain-phase departures and builds the service result from the
// streaming aggregates. No placement decisions remain, so the engines
// are independent; the knowledge harvest closes here — drain departures
// can no longer affect an admission, and not folding them keeps the
// engines free of shared state.
func (d *dispatcher) finish() (*Result, error) {
	cfg := d.cfg
	if d.queueOn {
		// Final decision point at the horizon: departures between the
		// last arrival and the end of the run free capacity the queue is
		// still entitled to. Whatever cannot admit here drops — nothing
		// runs the pipeline after the horizon. (Park-invariance makes the
		// extra sweep exact, and only queued runs take this pass, so the
		// queue-off byte-identity is untouched.)
		horizon := cfg.Workload.DurationSec
		if err := d.syncPoint(horizon); err != nil {
			return nil, err
		}
		if err := d.queueStep(horizon); err != nil {
			return nil, err
		}
		d.flushQueue()
	}
	for _, fs := range d.servers {
		fs.draining = true
	}
	var units []experiments.Unit[*transcode.Result]
	for i, fs := range d.servers {
		if fs.eng == nil {
			continue
		}
		units = append(units, experiments.Unit[*transcode.Result]{
			Label: fmt.Sprintf("server %d (%d sessions)", i, d.admitCount[i]),
			Run:   fs.eng.Run,
		})
	}
	// The engine results themselves carry nothing the aggregates need:
	// every session folded (or will fold) through its departure record,
	// and the power integrators streamed each reading at completion time.
	if _, err := experiments.RunUnits(cfg.Workers, units, cfg.Progress); err != nil {
		return nil, err
	}
	// Merge the per-server drain batches and fold them in arrival-ID
	// order at the horizon — the same deterministic fold discipline as
	// the arrival phase, independent of the worker pool.
	for _, fs := range d.servers {
		d.pendingStats = append(d.pendingStats, fs.drained...)
		fs.drained = nil
	}
	d.foldStats(cfg.Workload.DurationSec)
	return d.buildResult()
}

// buildResult reads the streaming aggregates out into the Result.
func (d *dispatcher) buildResult() (*Result, error) {
	cfg := d.cfg
	horizon := cfg.Workload.DurationSec
	res := &Result{
		Policy:           d.pol.Name(),
		DurationSec:      horizon,
		WarmupSec:        cfg.WarmupSec,
		Offered:          d.offered,
		Admitted:         d.admitted,
		Rejected:         d.rejected,
		MeasuredOffered:  d.measOffered,
		MeasuredRejected: d.measRejected,
		Measured:         d.measured,
	}
	if res.Offered > 0 {
		res.RejectionPct = 100 * float64(res.Rejected) / float64(res.Offered)
	}
	if res.MeasuredOffered > 0 {
		res.MeasuredRejectionPct = 100 * float64(res.MeasuredRejected) / float64(res.MeasuredOffered)
	}
	res.HR = d.hrAgg.stats()
	res.LR = d.lrAgg.stats()
	if res.Measured > 0 {
		res.SLOAttainedPct = 100 * float64(d.hrAgg.met+d.lrAgg.met) / float64(res.Measured)
	}
	res.HRDist = ClassDistributions{FPS: quantiles(d.hrFPS), DurationSec: quantiles(d.hrDur)}
	res.LRDist = ClassDistributions{FPS: quantiles(d.lrFPS), DurationSec: quantiles(d.lrDur)}
	res.Windowed = WindowedStats{
		TauSec:         d.sloWin.Tau(),
		SLOAttainedPct: d.sloWin.Value(),
		RejectionPct:   d.rejWin.Value(),
		UtilizationPct: d.utilWin.Value(),
	}
	if d.queueOn {
		res.Queued = d.queuedTotal
		res.QueueAdmitted = d.queueAdmitted
		res.QueueDropped = d.queueDropped
		if res.Offered > 0 {
			res.QueueDroppedPct = 100 * float64(res.QueueDropped) / float64(res.Offered)
		}
		if res.Measured > 0 {
			res.AvgQueueWaitSec = d.qwSum / float64(res.Measured)
		}
		res.QueueWaitDist = quantiles(d.qwH)
		res.TTFFDist = quantiles(d.ttffH)
		res.Windowed.QueueDepth = d.depthWin.Value()
	}
	if d.faultsOn {
		res.FaultsInjected = d.faultCount
		res.ServersCrashed = d.crashedSrv
		res.Interrupted = d.interrupted
		res.Recovered = d.recovered
		res.Lost = d.lostSess
		res.LostWorkSec = d.lostWorkSec
		if d.recovered > 0 {
			res.MTTRSec = d.mttrSum / float64(d.recovered)
		}
		res.RecoveryLatency = quantiles(d.recH)
		if denom := horizon * float64(d.initialSrv); denom > 0 {
			pct := 100 * (1 - d.unavailSec/denom)
			if pct < 0 {
				pct = 0
			}
			res.AvailabilityPct = pct
		}
		res.Windowed.AvailabilityPct = d.availWin.Value()
	}

	winLen := horizon - cfg.WarmupSec
	for i, fs := range d.servers {
		sr := ServerResult{Index: i, Sessions: d.admitCount[i], PeakActive: fs.peak, AvgPowerW: d.spec.IdlePowerW}
		if fs.power != nil {
			switch w, err := fs.power.Average(); {
			case err == nil:
				sr.AvgPowerW = w
			case errors.Is(err, metrics.ErrNoSamples):
				// No power reading inside the window (the server's
				// sessions all ran outside it): the idle-power fallback
				// is the truth, not an accident.
			default:
				// Anything else is a real accounting bug; reporting a
				// loaded server at idle power would silently skew the
				// fleet energy numbers.
				return nil, fmt.Errorf("serve: server %d window power: %w", i, err)
			}
		}
		if winLen > 0 {
			sr.UtilizationPct = 100 * d.busy[i] / (winLen * float64(cfg.MaxSessionsPerServer))
		}
		res.FleetAvgPowerW += sr.AvgPowerW
		res.Servers = append(res.Servers, sr)
	}
	res.FleetAvgPowerW /= float64(len(d.servers))
	res.Migrations = d.migrations
	res.ServersAdded = d.addedSrv
	res.ServersRemoved = d.removedSrv
	res.PeakServers = d.peakSrv
	if d.store != nil {
		res.KnowledgeContributions = d.store.Contributions(video.HR) + d.store.Contributions(video.LR)
		res.KnowledgeSeeded = d.seeded
		res.Knowledge = d.store
	}
	if cfg.RetainSessions {
		res.Sessions = d.outcomes
	}
	return res, nil
}

// quantiles reads a sketch's summary.
func quantiles(h *metrics.Histogram) QuantileSummary {
	return QuantileSummary{Count: h.N(), P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}
}

// fleetEvent is one engine-heap entry: the next event time a server's
// engine reported when it was (re-)keyed.
type fleetEvent struct {
	key float64
	id  int
}

// Less orders the dispatcher's engine heap by next event time, server
// index tie-break.
func (e fleetEvent) Less(o fleetEvent) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.id < o.id
}
