package serve

import (
	"fmt"

	"mamut/internal/experiments"
)

// GridSpec describes a (policy x arrival-rate x seed) experiment grid.
// Every cell is one full service run derived from Base; cells are
// independent and fan out across the experiments.RunUnits worker pool
// with bit-identical results for any worker count.
type GridSpec struct {
	// Base is the cell template; Policy, Workload.ArrivalRate and Seed
	// are overridden per cell, and each cell runs its fleet serially so
	// the grid level owns the parallelism.
	Base Config
	// Policies, ArrivalRates and Seeds span the grid. An empty axis
	// falls back to the Base value (a single point on that axis).
	Policies     []string
	ArrivalRates []float64
	Seeds        []int64
	// Workers sizes the grid's worker pool (0 = one per CPU).
	Workers int
	// Progress observes completed cells.
	Progress experiments.ProgressFunc
	// Checkpoint, when non-nil, streams each cell's result as it
	// completes and lets an interrupted grid resume: cells already on
	// file are restored bit-identically instead of recomputed.
	Checkpoint experiments.Checkpointer[*Result]
}

// GridCell couples one grid coordinate with its service result.
type GridCell struct {
	Policy      string
	ArrivalRate float64
	Seed        int64
	Result      *Result
}

// RunGrid runs every cell of the grid and returns the cells in
// policy-major, then rate, then seed order — the same order the
// equivalent serial nested loops would produce.
func RunGrid(spec GridSpec) ([]GridCell, error) {
	// With an explicit Policies axis the cells run named policies; with
	// no axis the base config's policy — including a custom
	// PolicyFactory — is the single point on that axis.
	policies := spec.Policies
	usingFactory := false
	if len(policies) == 0 {
		if spec.Base.PolicyFactory != nil {
			p := spec.Base.PolicyFactory()
			if p == nil {
				return nil, fmt.Errorf("serve: policy factory returned nil")
			}
			usingFactory = true
			policies = []string{p.Name()}
		} else {
			policies = []string{spec.Base.withDefaults().Policy}
		}
	}
	rates := spec.ArrivalRates
	if len(rates) == 0 {
		rates = []float64{spec.Base.Workload.ArrivalRate}
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{spec.Base.Seed}
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("serve: workers %d < 0", spec.Workers)
	}

	var units []experiments.Unit[*Result]
	var cells []GridCell
	for _, p := range policies {
		for _, r := range rates {
			for _, s := range seeds {
				cfg := spec.Base
				cfg.Policy = p
				if !usingFactory {
					cfg.PolicyFactory = nil
				}
				cfg.Workload.ArrivalRate = r
				cfg.Seed = s
				cfg.Workers = 1
				cfg.Progress = nil
				cells = append(cells, GridCell{Policy: p, ArrivalRate: r, Seed: s})
				units = append(units, experiments.Unit[*Result]{
					Label: fmt.Sprintf("%s rate=%g seed=%d", p, r, s),
					Run:   func() (*Result, error) { return Run(cfg) },
				})
			}
		}
	}
	outs, _, err := experiments.RunUnitsCheckpointed(spec.Workers, units, spec.Progress, spec.Checkpoint)
	if err != nil {
		return nil, err
	}
	for i := range cells {
		cells[i].Result = outs[i]
	}
	return cells, nil
}
