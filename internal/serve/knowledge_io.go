package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"mamut/internal/core"
	"mamut/internal/rl"
	"mamut/internal/video"
)

// This file makes the KnowledgeStore durable: a versioned, hash-stamped
// JSON artifact that outlives a single run, so a fleet can warm-start
// from knowledge gathered by earlier runs (the KaaS regime's knowledge
// base as a persistent service, not a per-process cache). The payload is
// canonical — encoding/json sorts map keys — so equal stores produce
// equal bytes, and the embedded SHA-256 digest lets an importer reject a
// corrupted or tampered artifact before seeding a fleet from it.

// Knowledge artifact framing.
const (
	knowledgeFormat = "mamut-knowledge"
	// KnowledgeFormatVersion is the current artifact version. Importers
	// accept this version and older; newer versions error cleanly.
	KnowledgeFormatVersion = 1
)

// knowledgeFile is the on-disk envelope around the store payload.
type knowledgeFile struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// SHA256 is the hex digest of the exact payload bytes.
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// knowledgeClass is the serialised per-resolution-class entry.
type knowledgeClass struct {
	Contributions int            `json:"contributions"`
	Agents        [3]rl.Snapshot `json:"agents"`
}

// MarshalJSON serialises the store as a map keyed by resolution-class
// name. Equal stores marshal to equal bytes (map keys sort), which is
// what makes the export digest — and checkpointed results that embed a
// store — reproducible.
func (ks *KnowledgeStore) MarshalJSON() ([]byte, error) {
	classes := make(map[string]knowledgeClass, len(ks.byRes))
	for res, snap := range ks.byRes {
		classes[res.String()] = knowledgeClass{
			Contributions: ks.contributions[res],
			Agents:        snap.Agents,
		}
	}
	return json.Marshal(classes)
}

// UnmarshalJSON restores a store serialised by MarshalJSON, validating
// every snapshot.
func (ks *KnowledgeStore) UnmarshalJSON(b []byte) error {
	var classes map[string]knowledgeClass
	if err := json.Unmarshal(b, &classes); err != nil {
		return fmt.Errorf("serve: knowledge payload: %w", err)
	}
	ks.byRes = make(map[video.Resolution]*core.Snapshot, len(classes))
	ks.contributions = make(map[video.Resolution]int, len(classes))
	for name, kc := range classes {
		var res video.Resolution
		switch name {
		case video.HR.String():
			res = video.HR
		case video.LR.String():
			res = video.LR
		default:
			return fmt.Errorf("serve: knowledge payload: unknown resolution class %q", name)
		}
		if kc.Contributions < 1 {
			return fmt.Errorf("serve: knowledge payload: class %s has %d contributions", name, kc.Contributions)
		}
		snap := core.Snapshot{Agents: kc.Agents}
		if err := snap.Validate(); err != nil {
			return fmt.Errorf("serve: knowledge payload: class %s: %w", name, err)
		}
		ks.byRes[res] = &snap
		ks.contributions[res] = kc.Contributions
	}
	return nil
}

// clone deep-copies the store, so a run can accumulate onto imported
// knowledge without mutating the caller's copy.
func (ks *KnowledgeStore) clone() *KnowledgeStore {
	cp := NewKnowledgeStore()
	for res, snap := range ks.byRes {
		s := snap.Clone()
		cp.byRes[res] = &s
		cp.contributions[res] = ks.contributions[res]
	}
	return cp
}

// Export writes the store as a versioned, hash-stamped JSON artifact. A
// later run imports it with ImportKnowledge and passes it as
// Config.Knowledge, warm-starting the whole fleet from it.
func (ks *KnowledgeStore) Export(w io.Writer) error {
	payload, err := json.Marshal(ks)
	if err != nil {
		return fmt.Errorf("serve: export knowledge: %w", err)
	}
	sum := sha256.Sum256(payload)
	f := knowledgeFile{
		Format:  knowledgeFormat,
		Version: KnowledgeFormatVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&f); err != nil {
		return fmt.Errorf("serve: export knowledge: %w", err)
	}
	return nil
}

// ImportKnowledge reads an artifact written by Export, verifying the
// format, the version and the payload digest before validating and
// restoring the store. A digest mismatch means the artifact was
// corrupted or tampered with in storage — seeding a fleet from it would
// silently poison every warm start, so it is rejected outright.
func ImportKnowledge(r io.Reader) (*KnowledgeStore, error) {
	var f knowledgeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("serve: import knowledge: %w", err)
	}
	if f.Format != knowledgeFormat {
		return nil, fmt.Errorf("serve: import knowledge: format %q is not %q", f.Format, knowledgeFormat)
	}
	if f.Version < 1 || f.Version > KnowledgeFormatVersion {
		return nil, fmt.Errorf("serve: import knowledge: artifact version %d not supported (current %d)",
			f.Version, KnowledgeFormatVersion)
	}
	sum := sha256.Sum256(f.Payload)
	if got := hex.EncodeToString(sum[:]); got != f.SHA256 {
		return nil, fmt.Errorf("serve: import knowledge: payload checksum mismatch (artifact corrupted or tampered with): have %s, recorded %s",
			got, f.SHA256)
	}
	ks := NewKnowledgeStore()
	if err := json.Unmarshal(f.Payload, ks); err != nil {
		return nil, err
	}
	return ks, nil
}
