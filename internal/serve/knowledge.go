package serve

import (
	"fmt"

	"mamut/internal/core"
	"mamut/internal/video"
)

// KnowledgeStore is the per-resolution-class shared knowledge base of a
// serving fleet — cross-session knowledge reuse in the KaaS regime: the
// store accumulates the learned state of departing MAMUT sessions and
// seeds every new admission from it, so short-lived sessions start warm
// instead of re-exploring a platform the service has already learned.
//
// Determinism is the design centerpiece. Contributions fold into the
// store in a fixed order: at each event-interleaved arrival instant the
// dispatcher collects the departures every engine surfaced while being
// stepped to that instant, sorts them by arrival ID and folds them
// before the placement decision, so the snapshot a new session is seeded
// from depends only on (workload, seed) — never on server iteration
// order or the worker pool. Departures during the post-arrival drain
// phase are deliberately not folded: no admission can observe them, and
// skipping them keeps the drain embarrassingly parallel, so mamut-serve
// output stays byte-identical for any -workers count.
//
// Warm-started sessions contribute deltas: at harvest the snapshot the
// session was seeded from is subtracted (counts only — the session's
// final Q estimates are kept, weighted by its own visits), so the pool's
// mass grows linearly with genuinely gathered experience instead of
// re-compounding the seed every generation.
//
// The store is not safe for concurrent use: the dispatcher only touches
// it from the sequential interleaved phase.
type KnowledgeStore struct {
	byRes         map[video.Resolution]*core.Snapshot
	contributions map[video.Resolution]int
}

// NewKnowledgeStore returns an empty store.
func NewKnowledgeStore() *KnowledgeStore {
	return &KnowledgeStore{
		byRes:         make(map[video.Resolution]*core.Snapshot),
		contributions: make(map[video.Resolution]int),
	}
}

// Contribute folds one departed session's snapshot into the class's
// accumulated knowledge with count-weighted averaging. The first
// contribution of a class adopts the snapshot; later ones must match its
// table dimensions. The snapshot is copied — the caller may keep using
// its own.
func (ks *KnowledgeStore) Contribute(res video.Resolution, snap core.Snapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if cur := ks.byRes[res]; cur != nil {
		if err := cur.Merge(snap); err != nil {
			return fmt.Errorf("serve: knowledge contribution for %s: %w", res, err)
		}
	} else {
		cp := snap.Clone()
		ks.byRes[res] = &cp
	}
	ks.contributions[res]++
	return nil
}

// Seed returns the accumulated snapshot for a resolution class, or nil
// when no session of that class has contributed yet (cold start). The
// returned snapshot is owned by the store: read it (core.NewWarm copies
// while seeding), do not mutate or retain it.
func (ks *KnowledgeStore) Seed(res video.Resolution) *core.Snapshot {
	return ks.byRes[res]
}

// Contributions reports how many sessions of a class have been folded in.
func (ks *KnowledgeStore) Contributions(res video.Resolution) int {
	return ks.contributions[res]
}
