package serve

import (
	"reflect"
	"testing"

	"mamut/internal/experiments"
)

func gridSpec(workers int) GridSpec {
	return GridSpec{
		Base: Config{
			Servers:              2,
			MaxSessionsPerServer: 3,
			Approach:             experiments.Heuristic,
			Workload: Workload{
				ArrivalRate:    0.2,
				DurationSec:    80,
				MeanSessionSec: 15,
			},
			WarmupSec: 20,
		},
		Policies:     []string{PolicyRoundRobin, PolicyPowerAware},
		ArrivalRates: []float64{0.15, 0.4},
		Seeds:        []int64{1, 2},
		Workers:      workers,
	}
}

// TestRunGridSerialParallelEquivalence is the serve-grid equivalence
// guarantee: the (policy x load x seed) grid produces bit-identical
// results whether cells run serially or fan out across workers.
func TestRunGridSerialParallelEquivalence(t *testing.T) {
	serial, err := RunGrid(gridSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGrid(gridSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("grid results differ between serial and parallel execution")
	}
}

func TestRunGridOrderAndAxes(t *testing.T) {
	spec := gridSpec(0)
	cells, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Policies) * len(spec.ArrivalRates) * len(spec.Seeds); len(cells) != want {
		t.Fatalf("grid has %d cells, want %d", len(cells), want)
	}
	k := 0
	for _, p := range spec.Policies {
		for _, r := range spec.ArrivalRates {
			for _, s := range spec.Seeds {
				c := cells[k]
				k++
				if c.Policy != p || c.ArrivalRate != r || c.Seed != s {
					t.Fatalf("cell %d = (%s, %g, %d), want (%s, %g, %d)",
						k-1, c.Policy, c.ArrivalRate, c.Seed, p, r, s)
				}
				if c.Result == nil || c.Result.Policy != p {
					t.Fatalf("cell %d missing or mislabelled result", k-1)
				}
			}
		}
	}
	// Empty axes collapse to the base config's single point.
	single, err := RunGrid(GridSpec{Base: gridSpec(0).Base, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 {
		t.Fatalf("axis defaults produced %d cells, want 1", len(single))
	}
}

// TestRunGridKeepsCustomPolicyFactory guards against the grid silently
// swapping a custom policy for the named default when no Policies axis
// is given.
func TestRunGridKeepsCustomPolicyFactory(t *testing.T) {
	spec := GridSpec{Base: gridSpec(0).Base, Workers: 1}
	spec.Base.PolicyFactory = func() Policy { return &countingPolicy{} }
	cells, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	if cells[0].Policy != "counting" || cells[0].Result.Policy != "counting" {
		t.Errorf("custom policy dropped: cell=%q result=%q",
			cells[0].Policy, cells[0].Result.Policy)
	}
}

// countingPolicy is a trivial custom policy (always server 0).
type countingPolicy struct{ calls int }

func (p *countingPolicy) Name() string { return "counting" }

func (p *countingPolicy) Place(_ SessionRequest, servers []ServerState) int {
	p.calls++
	for _, s := range servers {
		if !s.Full() {
			return s.Index
		}
	}
	return -1
}
