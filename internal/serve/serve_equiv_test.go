package serve

import (
	"reflect"
	"testing"

	"mamut/internal/experiments"
)

// equivConfig drives a fleet hard enough that placements, rejections and
// departures all occur, so a divergence between the dispatch paths has
// every chance to surface.
func equivConfig(policy string) Config {
	return Config{
		Servers:              3,
		MaxSessionsPerServer: 3,
		Policy:               policy,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.4,
			DurationSec:    150,
			MeanSessionSec: 25,
		},
		WarmupSec: 30,
		Seed:      9,
		Workers:   1,
	}
}

// TestDispatchEquivalence pins the tentpole guarantee: the indexed
// dispatcher (engine event heap, incremental states, policy fleet
// indexes) reproduces the O(servers) scan reference bit for bit — same
// placements, same per-session outcomes, same power accounting — for
// every built-in policy.
func TestDispatchEquivalence(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			scanCfg := equivConfig(policy)
			scanCfg.Dispatch = DispatchScan
			scan, err := Run(scanCfg)
			if err != nil {
				t.Fatal(err)
			}
			idxCfg := equivConfig(policy)
			idxCfg.Dispatch = DispatchIndexed
			idx, err := Run(idxCfg)
			if err != nil {
				t.Fatal(err)
			}
			if scan.Admitted == 0 || scan.Rejected == 0 {
				t.Fatalf("config not exercising admission and rejection (admitted %d, rejected %d)",
					scan.Admitted, scan.Rejected)
			}
			if !reflect.DeepEqual(scan, idx) {
				t.Error("indexed dispatch diverged from the scan reference")
			}
		})
	}
}

// TestDispatchEquivalenceKnowledge extends the equivalence to knowledge
// reuse (MAMUT controllers, warm starts, fold-order-sensitive store
// state) and to a parallel drain: the indexed path must surface the same
// departures before each arrival, in the same fold order, for any worker
// count.
func TestDispatchEquivalenceKnowledge(t *testing.T) {
	base := Config{
		Servers:              2,
		MaxSessionsPerServer: 6,
		KnowledgeReuse:       true,
		Workload: Workload{
			ArrivalRate:    0.35,
			DurationSec:    120,
			MeanSessionSec: 15,
		},
		WarmupSec: 30,
		Seed:      7,
	}
	run := func(mode DispatchMode, workers int) *Result {
		cfg := base
		cfg.Dispatch = mode
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scan := run(DispatchScan, 1)
	if scan.KnowledgeContributions == 0 || scan.KnowledgeSeeded == 0 {
		t.Fatalf("config exercised no knowledge activity (contributions %d, seeded %d)",
			scan.KnowledgeContributions, scan.KnowledgeSeeded)
	}
	for _, workers := range []int{1, 4} {
		if got := run(DispatchIndexed, workers); !reflect.DeepEqual(scan, got) {
			t.Errorf("indexed knowledge run (workers=%d) diverged from the scan reference", workers)
		}
	}
}

// TestDispatchEquivalenceCustomPolicy: a policy without a fleet index
// still runs on the event-heap sweep with incrementally maintained
// states; the slice it scans must match the rebuilt reference slice at
// every arrival.
func TestDispatchEquivalenceCustomPolicy(t *testing.T) {
	// mostLoaded is deliberately not a FleetIndexer: pick the fullest
	// non-full server (worst-fit), reject only when all are full.
	factory := func() Policy { return mostLoaded{} }
	scanCfg := equivConfig("")
	scanCfg.PolicyFactory = factory
	scanCfg.Dispatch = DispatchScan
	scan, err := Run(scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	idxCfg := equivConfig("")
	idxCfg.PolicyFactory = factory
	idxCfg.Dispatch = DispatchIndexed
	idx, err := Run(idxCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scan, idx) {
		t.Error("indexed dispatch with a scan-only policy diverged from the reference")
	}
}

type mostLoaded struct{}

func (mostLoaded) Name() string { return "most-loaded" }

func (mostLoaded) Place(_ SessionRequest, servers []ServerState) int {
	best := -1
	bestActive := -1
	for _, s := range servers {
		if s.Full() {
			continue
		}
		if s.Active > bestActive {
			best, bestActive = s.Index, s.Active
		}
	}
	return best
}
