package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"mamut/internal/experiments"
	"mamut/internal/video"
)

// The sharded dispatcher's whole contract is invisibility: Shards=S must
// reproduce the unsharded run bit for bit — same placements, same folds,
// same floats — for every policy, both dispatch paths, knowledge reuse
// and the elastic features. These tests pin the contract with DeepEqual
// against the unsharded reference; `go test -race` doubles them as the
// data-race proof of the barrier discipline.

// shardConfig spreads load over enough servers that every shard owns
// several, with admission pressure so placements, rejections and
// departures all cross shard boundaries.
func shardConfig(policy string) Config {
	return Config{
		Servers:              8,
		MaxSessionsPerServer: 3,
		Policy:               policy,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    1.0,
			DurationSec:    150,
			MeanSessionSec: 20,
		},
		WarmupSec: 30,
		Seed:      9,
		Workers:   1,
	}
}

// TestShardEquivalence: for every built-in policy and both dispatchers,
// sharded runs (including a shard count exceeding the fleet, which
// clamps) are bit-identical to the unsharded reference.
func TestShardEquivalence(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			for _, dispatch := range DispatchModes() {
				base := shardConfig(policy)
				base.Dispatch = dispatch
				want, err := Run(base)
				if err != nil {
					t.Fatal(err)
				}
				if want.Admitted == 0 || want.Rejected == 0 {
					t.Fatalf("config not exercising admission and rejection (admitted %d, rejected %d)",
						want.Admitted, want.Rejected)
				}
				for _, shards := range []int{1, 2, 3, 16} {
					cfg := shardConfig(policy)
					cfg.Dispatch = dispatch
					cfg.Shards = shards
					got, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%s shards=%d diverged from the unsharded reference", dispatch, shards)
					}
				}
			}
		})
	}
}

// TestShardEquivalenceKnowledge: the shard-buffered harvest hand-off
// must leave the knowledge store — and every warm start seeded from it —
// exactly where the inline hook leaves it.
func TestShardEquivalenceKnowledge(t *testing.T) {
	base := shardConfig(PolicyLeastLoaded)
	base.Servers = 4
	base.Approach = experiments.MAMUT
	base.KnowledgeReuse = true
	base.Workload.ArrivalRate = 0.5
	base.Workload.DurationSec = 120
	run := func(shards, workers int) *Result {
		cfg := base
		cfg.Shards = shards
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(0, 1)
	if want.KnowledgeContributions == 0 || want.KnowledgeSeeded == 0 {
		t.Fatalf("config exercised no knowledge activity (contributions %d, seeded %d)",
			want.KnowledgeContributions, want.KnowledgeSeeded)
	}
	for _, shards := range []int{2, 4} {
		for _, workers := range []int{1, 4} {
			if got := run(shards, workers); !reflect.DeepEqual(want, got) {
				t.Errorf("shards=%d workers=%d knowledge run diverged from the unsharded reference", shards, workers)
			}
		}
	}
}

// TestShardEquivalenceElastic: epochs, drains, autoscaling (which grows
// the fleet into the shards mid-run), rebalancer migrations and their
// mid-epoch engine advances all run in the serial phase — the sharded
// run must still match bit for bit on both dispatch paths.
func TestShardEquivalenceElastic(t *testing.T) {
	for _, dispatch := range DispatchModes() {
		base := elasticConfig(PolicyLeastLoaded)
		base.Dispatch = dispatch
		want, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if want.Migrations == 0 || want.ServersAdded == 0 || want.ServersRemoved == 0 {
			t.Fatalf("config exercised no elastic activity (migrations %d, added %d, removed %d)",
				want.Migrations, want.ServersAdded, want.ServersRemoved)
		}
		for _, shards := range []int{2, 3} {
			cfg := elasticConfig(PolicyLeastLoaded)
			cfg.Dispatch = dispatch
			cfg.Shards = shards
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s shards=%d elastic run diverged from the unsharded reference", dispatch, shards)
			}
		}
	}
}

// TestShardEquivalenceCustomPolicy: a scan-only custom policy places
// from the state slice the reconcile phase refreshed — the coalesced
// refreshes must present the identical floats the inline hook maintains.
func TestShardEquivalenceCustomPolicy(t *testing.T) {
	run := func(shards int) *Result {
		cfg := shardConfig("")
		cfg.PolicyFactory = func() Policy { return mostLoaded{} }
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(0)
	for _, shards := range []int{2, 4} {
		if got := run(shards); !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d custom-policy run diverged from the unsharded reference", shards)
		}
	}
}

// TestShardedRaceStress drives a busier sharded fleet end to end on both
// dispatch paths with session retention on. Its real assertions come
// from the race detector (CI runs the package under -race): every
// barrier window in the run is checked for an unhappens-before access.
func TestShardedRaceStress(t *testing.T) {
	for _, dispatch := range DispatchModes() {
		cfg := Config{
			Servers:              12,
			MaxSessionsPerServer: 4,
			Approach:             experiments.Heuristic,
			Workload: Workload{
				ArrivalRate:    3,
				DurationSec:    60,
				MeanSessionSec: 10,
				Curve:          LoadDiurnal,
				CurveAmplitude: 0.6,
			},
			WarmupSec:      10,
			Seed:           3,
			Workers:        4,
			Shards:         4,
			Dispatch:       dispatch,
			RetainSessions: true,
			EpochSec:       10,
			Rebalance:      true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted == 0 {
			t.Fatalf("%s: stress run admitted nothing", dispatch)
		}
	}
}

// TestConfigValidateShards: a negative shard count is a config error; a
// huge one is just clamped to the fleet.
func TestConfigValidateShards(t *testing.T) {
	cfg := shardConfig(PolicyLeastLoaded)
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Shards should fail validation")
	}
}

// TestSplitArrivals pins the stream-splitting invariants: substreams
// interleave one-in-S by arrival ID, each preserves time order, sizes
// differ by at most one, and re-merging by ID reproduces the stream.
func TestSplitArrivals(t *testing.T) {
	w := Workload{ArrivalRate: 2, DurationSec: 100, MeanSessionSec: 8}
	arrivals, err := GenerateArrivals(w.withDefaults(), video.DefaultCatalog(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) < 20 {
		t.Fatalf("workload too small to exercise the split (%d arrivals)", len(arrivals))
	}
	rng := rand.New(rand.NewSource(5))
	for _, shards := range []int{1, 2, 3, 7} {
		parts, err := SplitArrivals(arrivals, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != shards {
			t.Fatalf("got %d substreams for %d shards", len(parts), shards)
		}
		total, minLen, maxLen := 0, len(arrivals), 0
		merged := make([]SessionRequest, len(arrivals))
		for s, part := range parts {
			total += len(part)
			if len(part) < minLen {
				minLen = len(part)
			}
			if len(part) > maxLen {
				maxLen = len(part)
			}
			last := -1.0
			for _, r := range part {
				if r.ID%shards != s {
					t.Fatalf("shards=%d: arrival %d landed on substream %d", shards, r.ID, s)
				}
				if r.ArriveAtSec < last {
					t.Fatalf("shards=%d: substream %d out of time order", shards, s)
				}
				last = r.ArriveAtSec
				merged[r.ID] = r
			}
		}
		if total != len(arrivals) {
			t.Fatalf("shards=%d: split dropped arrivals (%d of %d)", shards, total, len(arrivals))
		}
		if maxLen-minLen > 1 {
			t.Fatalf("shards=%d: unbalanced split (min %d, max %d)", shards, minLen, maxLen)
		}
		// The union, reassembled in ID order, is the unsharded stream —
		// spot-check a few random positions plus full equality.
		for i := 0; i < 10; i++ {
			j := rng.Intn(len(arrivals))
			if merged[j] != arrivals[j] {
				t.Fatalf("shards=%d: arrival %d mutated by the split", shards, j)
			}
		}
		if !reflect.DeepEqual(merged, arrivals) {
			t.Fatalf("shards=%d: ID-ordered union differs from the input stream", shards)
		}
	}
	if _, err := SplitArrivals(arrivals, 0); err == nil {
		t.Fatal("splitting into 0 shards should fail")
	}
}
