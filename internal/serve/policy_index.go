package serve

import "mamut/internal/heaps"

// Indexed placement: the built-in policies answer Place from an
// incrementally maintained index instead of scanning the whole fleet, so
// a placement decision costs O(log servers) (or O(1)) instead of
// O(servers). The dispatcher detects the capability through the optional
// FleetIndexer interface and keeps the index current by calling Update
// whenever one server's state changes (an admission, or a departure
// observed through the engine's OnSessionEnd hook).
//
// Determinism is the contract: for any sequence of updates, Place must
// return exactly what the policy's scan Place would return on the
// equivalent full state slice — including tie-breaks (lowest index) —
// because the scan implementations remain the semantic reference and the
// dispatcher's two paths are required to produce byte-identical service
// results. The least-loaded and power-aware indexes therefore compare
// the very same quantities the scans compare (integer occupancy;
// PowerBudgetW - EstPowerW on identical floats) and resolve ties by
// server index, and both use lazily invalidated heaps: every state
// change pushes a fresh entry, and entries that no longer match the
// server's current state are discarded when they surface at the top.

// FleetIndexer is an optional Policy extension: a policy that can place
// arrivals from an incrementally maintained fleet index. All built-in
// policies implement it; the dispatcher falls back to the O(servers)
// scan for policies that don't. Backlog observation (BacklogObserver) is
// orthogonal: when the admission queue is on, the dispatcher delivers
// ObserveFleet to the policy value itself even when the placement goes
// through the index, so an indexed policy sees the same queue state the
// scan path would.
type FleetIndexer interface {
	Policy
	// NewFleetIndex builds the policy's index over the fleet's initial
	// states (one per server, ordered by Index). The returned index is
	// owned by one run: it may share mutable state (e.g. a rotation
	// cursor) with the policy instance.
	NewFleetIndex(states []ServerState) FleetIndex
}

// FleetIndex is a policy's incremental view of the fleet.
type FleetIndex interface {
	// Update refreshes one server's state after an admission or a
	// departure changed it.
	Update(s ServerState)
	// Place chooses the admitting server for the arrival (or -1 to
	// reject), exactly as the policy's Place would on the full fleet
	// state. As with Place, the dispatcher still rejects the arrival
	// when the chosen server is full.
	Place(req SessionRequest) int
}

// --- round-robin -----------------------------------------------------

// rrIndex is the trivial index: blind rotation never inspects server
// state, so Place is the cursor applied to the fleet it was built over
// (server indexes, not positions — after a retirement the two differ).
// It shares the cursor with the policy instance, so a rebuild on a
// topology change continues the rotation where it was.
type rrIndex struct {
	p   *roundRobin
	ids []int
}

// NewFleetIndex implements FleetIndexer.
func (p *roundRobin) NewFleetIndex(states []ServerState) FleetIndex {
	ids := make([]int, len(states))
	for i, s := range states {
		ids[i] = s.Index
	}
	return &rrIndex{p: p, ids: ids}
}

func (x *rrIndex) Update(ServerState) {}

func (x *rrIndex) Place(SessionRequest) int {
	idx := x.ids[x.p.next%len(x.ids)]
	x.p.next++
	return idx
}

// --- least-loaded ----------------------------------------------------

// llIndex is a bucket queue over occupancy: bucket[a] holds candidate
// servers with a resident sessions, as a min-heap of server indices so
// ties resolve to the lowest index, exactly like the scan. Occupancy is
// bounded by the admission limit, so Place probes at most MaxSessions
// buckets — O(admission limit + log servers) per arrival, independent
// of fleet size.
type llIndex struct {
	occ    []int
	max    []int
	drain  []bool
	bucket []heaps.Heap[serverIdx]
}

// serverIdx orders bucket entries by server index.
type serverIdx int

func (a serverIdx) Less(b serverIdx) bool { return a < b }

// NewFleetIndex implements FleetIndexer.
func (leastLoaded) NewFleetIndex(states []ServerState) FleetIndex {
	maxSessions := 0
	for _, s := range states {
		if s.MaxSessions > maxSessions {
			maxSessions = s.MaxSessions
		}
	}
	// Per-server arrays are indexed by ServerState.Index, which an
	// elastic fleet does not keep dense: retired servers leave holes and
	// added servers extend past them, so size by the largest index.
	n := indexSpan(states)
	x := &llIndex{
		occ:    make([]int, n),
		max:    make([]int, n),
		drain:  make([]bool, n),
		bucket: make([]heaps.Heap[serverIdx], maxSessions), // placeable occupancies: 0..max-1
	}
	for _, s := range states {
		x.set(s)
	}
	return x
}

// set records a server's occupancy and, when placeable, files it in its
// bucket. Stale entries in other buckets are discarded lazily by Place.
func (x *llIndex) set(s ServerState) {
	x.occ[s.Index] = s.Active
	x.max[s.Index] = s.MaxSessions
	x.drain[s.Index] = s.Draining
	if !s.Full() && s.Active < len(x.bucket) {
		x.bucket[s.Active].Push(serverIdx(s.Index))
	}
}

func (x *llIndex) Update(s ServerState) { x.set(s) }

func (x *llIndex) Place(SessionRequest) int {
	for a := range x.bucket {
		b := &x.bucket[a]
		for b.Len() > 0 {
			idx := int(b.Peek())
			if x.occ[idx] == a && a < x.max[idx] && !x.drain[idx] {
				return idx
			}
			b.Pop() // stale: the server moved to another occupancy or drained
		}
	}
	return -1
}

// --- power-aware -----------------------------------------------------

// paIndex keeps the non-full servers in a max-heap of power headroom
// (PowerBudgetW - EstPowerW, the scan's ranking quantity computed from
// the identical floats), index-ascending among equal headrooms. Entries
// are validated against the server's current headroom and occupancy when
// they surface; every Update pushes a fresh entry, so the current state
// of every candidate is always represented.
type paIndex struct {
	head  []float64
	occ   []int
	max   []int
	drain []bool
	h     heaps.Heap[paEntry]
}

// NewFleetIndex implements FleetIndexer.
func (powerAware) NewFleetIndex(states []ServerState) FleetIndex {
	n := indexSpan(states) // see llIndex: elastic fleets are not dense
	x := &paIndex{
		head:  make([]float64, n),
		occ:   make([]int, n),
		max:   make([]int, n),
		drain: make([]bool, n),
	}
	for _, s := range states {
		x.set(s)
	}
	return x
}

func (x *paIndex) set(s ServerState) {
	x.head[s.Index] = s.PowerBudgetW - s.EstPowerW
	x.occ[s.Index] = s.Active
	x.max[s.Index] = s.MaxSessions
	x.drain[s.Index] = s.Draining
	if !s.Full() {
		x.h.Push(paEntry{headroom: x.head[s.Index], id: s.Index})
	}
}

func (x *paIndex) Update(s ServerState) { x.set(s) }

func (x *paIndex) Place(SessionRequest) int {
	for x.h.Len() > 0 {
		top := x.h.Peek()
		if top.headroom == x.head[top.id] && x.occ[top.id] < x.max[top.id] && !x.drain[top.id] {
			return top.id
		}
		x.h.Pop() // stale: the server's headroom, fullness or drain state changed
	}
	return -1
}

// indexSpan sizes a per-server array for states whose Index values may
// be sparse (one past the largest index present).
func indexSpan(states []ServerState) int {
	n := 0
	for _, s := range states {
		if s.Index >= n {
			n = s.Index + 1
		}
	}
	return n
}

// paEntry is one headroom-heap candidate.
type paEntry struct {
	headroom float64
	id       int
}

// Less orders by headroom descending, then server index ascending —
// the scan's argmax-with-first-wins tie-break.
func (e paEntry) Less(o paEntry) bool {
	if e.headroom != o.headroom {
		return e.headroom > o.headroom
	}
	return e.id < o.id
}
