// Package serve turns the batch transcoding simulator into a continuously
// loaded transcoding *service*: sessions arrive and depart stochastically,
// a dispatcher places each arrival on one server of a simulated fleet
// under a pluggable placement policy and per-server admission limits, and
// quality of service is measured in steady state over a window after
// warm-up. This is the regime the paper's follow-up work (KaaS resource
// management, digital-twin collaborative transcoding) studies, and the
// foundation for sharding/balancing experiments at fleet scale.
//
// The fleet runs as one event-interleaved simulation: every server's
// engine is stepped to each arrival instant before the placement
// decision, and session departures are observed at their actual,
// contention-stretched times through the engine's OnSessionEnd hook — not
// approximated from nominal session lengths. SLO, rejection and
// utilization metrics therefore reflect true occupancy.
//
// With Config.KnowledgeReuse the fleet shares learned transcoding
// knowledge across sessions (KaaS-style warm starts): departing MAMUT
// sessions fold their tables into a per-resolution-class KnowledgeStore
// and new admissions are seeded from it, so short-lived sessions skip
// past exploration (see knowledge.go). The store is durable: Export
// writes it as a versioned, hash-stamped artifact and ImportKnowledge
// restores it for Config.Knowledge, warm-starting a later fleet from an
// earlier run's experience (see knowledge_io.go).
//
// With Config.Queue arrivals that find no capacity wait in a bounded
// fleet-level admission queue instead of being rejected: FIFO within a
// resolution-class priority order, per-entry deadline drop, re-admission
// at departures, elastic epochs and the horizon, with queue-wait and
// time-to-first-frame streaming as first-class latency metrics (see
// admission.go for the pipeline and the outcome taxonomy).
//
// Metrics stream. Every aggregate — per-server power, busy time, class
// statistics, FPS/duration quantile sketches, time-decayed window
// means — folds into constant-size accumulators (internal/metrics) at
// each session's departure, in deterministic arrival-ID order, and the
// engines discard departed sessions. The dispatcher therefore holds
// O(active sessions) state however long the horizon runs; the
// per-arrival outcome log is opt-in via Config.RetainSessions and
// changes no other result field.
//
// The fleet is elastic (see elastic.go). Sessions are migratable: the
// transcode package's ExtractSession/InjectSession freeze a live session
// mid-frame — learner tables, rng cursors, energy accumulators and all —
// and resume it on another engine, bit-identically for a same-server
// round trip. On top of that primitive the dispatcher runs an epoch
// schedule (Config.EpochSec) that interleaves with arrivals and applies,
// in a fixed order: scheduled drains (Config.Drain — a draining server
// admits nothing, its sessions are evacuated and it is decommissioned
// once empty), autoscaling (Config.Autoscale — target-utilization
// watermarks add servers mid-run or drain the highest-index one), and a
// pluggable Rebalancer (Config.Rebalance / RebalancerFactory — the
// built-in planner migrates sessions away from power-hotspot servers).
// Every migration charges Config.MigrationStallSec to the moved
// session's in-flight frame. Epoch decisions run in the sequential
// phase and pick sessions in arrival-ID order, so elastic runs stay
// byte-identical across worker counts and both dispatchers; with every
// elastic feature off the dispatcher is byte-identical to the
// fixed-fleet implementation it grew from (CI-pinned goldens).
//
// Failure domains and recovery (see faults.go). Config.Faults injects a
// pre-declared fault plan into the same serial control phase: crash (a
// server dies at an instant — engine torn down, in-flight sessions
// interrupted, the server never returns), degrade (a power-cap derate
// window, applied live through the platform spec and an engine
// re-profile) and blip (an unavailability window during which the server
// admits nothing but its sessions keep running). Periodic checkpoints
// (Config.Faults.CheckpointSec) snapshot live sessions via the same
// extract/encode path migration uses; crash-interrupted sessions re-enter
// the admission queue as recovery entries with per-class backoff, retry
// and deadline budgets, restoring from their last snapshot — or
// cold-restarting, warm-seeded from the KnowledgeStore when enabled —
// on the next server with capacity, and shedding by class priority when
// recovery demand exceeds queue capacity. Fault edges, checkpoints and
// elastic epochs merge into one deterministic control timeline
// (controlMoments), so chaos runs stay byte-identical across worker
// counts, dispatchers and shard counts; with no plan configured the
// subsystem is inert and output byte-matches the pre-fault goldens.
// MTTR, recovery-latency quantiles, lost work and fleet availability are
// first-class result fields.
//
// Everything is deterministic for a fixed seed: the arrival process, the
// placement decisions and every per-server simulation derive their
// randomness from experiments.SubSeed. The interleaved phase is
// sequential by construction; once the last arrival is placed the engines
// are independent and drain across the experiments.RunUnits worker pool,
// so results are bit-identical for any worker count.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// SessionRequest is one arrival of the offered load: a user asking the
// service to transcode one stream for a while.
type SessionRequest struct {
	// ID numbers arrivals in time order, starting at 0.
	ID int
	// ArriveAtSec is the arrival time on the service clock.
	ArriveAtSec float64
	// Res is the requested resolution class.
	Res video.Resolution
	// Sequence is the catalog entry the session transcodes (looped).
	Sequence string
	// Frames is the session length: the user departs after this many
	// frames have been transcoded.
	Frames int
	// BandwidthMbps is the user's bandwidth (resolution default when 0).
	BandwidthMbps float64
	// SourceSeed and ControllerSeed drive the session's private
	// randomness, fixed at generation time so placement never perturbs
	// session content.
	SourceSeed     int64
	ControllerSeed int64
}

// LoadCurve selects how the arrival rate evolves over the run.
type LoadCurve string

const (
	// LoadConstant holds the arrival rate fixed (homogeneous Poisson).
	LoadConstant LoadCurve = "constant"
	// LoadDiurnal modulates the rate sinusoidally around the base rate,
	// modelling a day/night traffic cycle compressed into the run.
	LoadDiurnal LoadCurve = "diurnal"
	// LoadRamp ramps the rate linearly from the base rate to
	// base*RampEndFactor over the run, modelling a traffic surge.
	LoadRamp LoadCurve = "ramp"
	// LoadBurst holds the base rate except inside the window
	// [BurstStartSec, BurstEndSec), where the rate jumps to
	// base*BurstFactor — a flash-crowd spike. The shape the admission
	// queue exists for: capacity that frees after the spike can still
	// serve what arrived during it.
	LoadBurst LoadCurve = "burst"
)

// Workload describes the offered load: a stochastic session
// arrival/departure process, or a deterministic trace to replay.
type Workload struct {
	// ArrivalRate is the base arrival rate in sessions per second.
	ArrivalRate float64
	// DurationSec is the horizon of the arrival process: no session
	// arrives at or after this time.
	DurationSec float64
	// HRFraction is the probability an arrival requests HR (the rest
	// request LR). DefaultHRFraction when 0 and negative to force 0.
	HRFraction float64
	// MeanSessionSec is the mean session length in seconds; lengths are
	// exponentially distributed (memoryless viewers) and floored at
	// MinSessionSec. DefaultMeanSessionSec when 0.
	MeanSessionSec float64
	// MinSessionSec floors the session length. DefaultMinSessionSec
	// when 0.
	MinSessionSec float64
	// TargetFPS converts session seconds to a frame budget.
	// transcode.DefaultTargetFPS when 0.
	TargetFPS float64
	// Curve selects the load shape (LoadConstant when empty).
	Curve LoadCurve
	// CurveAmplitude is the diurnal modulation depth in [0,1):
	// rate(t) = base * (1 + amplitude*sin(2*pi*t/period)).
	// DefaultCurveAmplitude when 0.
	CurveAmplitude float64
	// CurvePeriodSec is the diurnal period (DurationSec when 0).
	CurvePeriodSec float64
	// RampEndFactor is the final/base rate ratio of LoadRamp.
	// DefaultRampEndFactor when 0.
	RampEndFactor float64
	// BurstFactor is the burst/base rate ratio of LoadBurst.
	// DefaultBurstFactor when 0.
	BurstFactor float64
	// BurstStartSec and BurstEndSec bound the LoadBurst spike window
	// [start, end). When both are 0 the window defaults to the second
	// quarter of the run: [DurationSec/4, DurationSec/2).
	BurstStartSec, BurstEndSec float64
	// Trace, when non-empty, is replayed verbatim (sorted by arrival
	// time) instead of sampling the stochastic process; the fields above
	// are ignored except DurationSec, which defaults to the last arrival
	// plus one second when 0. Entries with an explicit Sequence take
	// their Res from the catalog entry; entries without one draw a
	// sequence of their Res deterministically.
	Trace []SessionRequest
}

// Workload defaults.
const (
	DefaultHRFraction     = 0.4
	DefaultMeanSessionSec = 60.0
	DefaultMinSessionSec  = 5.0
	DefaultCurveAmplitude = 0.5
	DefaultRampEndFactor  = 2.0
	DefaultBurstFactor    = 3.0
)

// withDefaults fills zero fields in.
func (w Workload) withDefaults() Workload {
	if w.HRFraction == 0 {
		w.HRFraction = DefaultHRFraction
	}
	// A negative HRFraction (the "force pure LR" escape hatch) is kept
	// as-is so withDefaults stays idempotent; hrFraction() clamps it at
	// the point of use.
	if w.MeanSessionSec == 0 {
		w.MeanSessionSec = DefaultMeanSessionSec
	}
	if w.MinSessionSec == 0 {
		w.MinSessionSec = DefaultMinSessionSec
	}
	if w.TargetFPS == 0 {
		w.TargetFPS = transcode.DefaultTargetFPS
	}
	if w.Curve == "" {
		w.Curve = LoadConstant
	}
	if w.CurveAmplitude == 0 {
		w.CurveAmplitude = DefaultCurveAmplitude
	}
	if w.CurvePeriodSec == 0 {
		w.CurvePeriodSec = w.DurationSec
	}
	if w.RampEndFactor == 0 {
		w.RampEndFactor = DefaultRampEndFactor
	}
	if w.Curve == LoadBurst {
		if w.BurstFactor == 0 {
			w.BurstFactor = DefaultBurstFactor
		}
		if w.BurstStartSec == 0 && w.BurstEndSec == 0 {
			w.BurstStartSec = w.DurationSec / 4
			w.BurstEndSec = w.DurationSec / 2
		}
	}
	if len(w.Trace) > 0 && w.DurationSec == 0 {
		last := 0.0
		for _, r := range w.Trace {
			if r.ArriveAtSec > last {
				last = r.ArriveAtSec
			}
		}
		w.DurationSec = last + 1
	}
	return w
}

// Validate reports whether the workload is usable (after defaults).
func (w Workload) Validate() error {
	w = w.withDefaults()
	if len(w.Trace) > 0 {
		for i, r := range w.Trace {
			if r.ArriveAtSec < 0 {
				return fmt.Errorf("serve: trace entry %d: negative arrival %g", i, r.ArriveAtSec)
			}
			if r.Frames < 1 {
				return fmt.Errorf("serve: trace entry %d: frame budget %d < 1", i, r.Frames)
			}
		}
		return nil
	}
	if w.ArrivalRate <= 0 {
		return fmt.Errorf("serve: arrival rate %g must be positive", w.ArrivalRate)
	}
	if w.DurationSec <= 0 {
		return fmt.Errorf("serve: duration %g must be positive", w.DurationSec)
	}
	if w.HRFraction > 1 {
		return fmt.Errorf("serve: HR fraction %g outside [0,1]", w.HRFraction)
	}
	if w.MeanSessionSec <= 0 || w.MinSessionSec <= 0 {
		return fmt.Errorf("serve: session lengths must be positive (mean %g, min %g)", w.MeanSessionSec, w.MinSessionSec)
	}
	if w.TargetFPS <= 0 {
		return fmt.Errorf("serve: target FPS %g must be positive", w.TargetFPS)
	}
	switch w.Curve {
	case LoadConstant, LoadRamp:
	case LoadBurst:
		if w.BurstFactor <= 0 {
			return fmt.Errorf("serve: burst factor %g must be positive", w.BurstFactor)
		}
		if w.BurstStartSec < 0 || w.BurstEndSec <= w.BurstStartSec {
			return fmt.Errorf("serve: burst window [%g, %g) must satisfy 0 <= start < end", w.BurstStartSec, w.BurstEndSec)
		}
	case LoadDiurnal:
		if w.CurveAmplitude < 0 || w.CurveAmplitude >= 1 {
			return fmt.Errorf("serve: diurnal amplitude %g outside [0,1)", w.CurveAmplitude)
		}
		if w.CurvePeriodSec <= 0 {
			return fmt.Errorf("serve: diurnal period %g must be positive", w.CurvePeriodSec)
		}
	default:
		return fmt.Errorf("serve: unknown load curve %q", w.Curve)
	}
	if w.Curve == LoadRamp && w.RampEndFactor <= 0 {
		return fmt.Errorf("serve: ramp end factor %g must be positive", w.RampEndFactor)
	}
	return nil
}

// hrFraction resolves the effective HR probability (negative means 0).
func (w Workload) hrFraction() float64 {
	if w.HRFraction < 0 {
		return 0
	}
	return w.HRFraction
}

// rateAt returns the instantaneous arrival rate at time t.
func (w Workload) rateAt(t float64) float64 {
	switch w.Curve {
	case LoadDiurnal:
		return w.ArrivalRate * (1 + w.CurveAmplitude*math.Sin(2*math.Pi*t/w.CurvePeriodSec))
	case LoadRamp:
		frac := t / w.DurationSec
		return w.ArrivalRate * (1 + (w.RampEndFactor-1)*frac)
	case LoadBurst:
		if t >= w.BurstStartSec && t < w.BurstEndSec {
			return w.ArrivalRate * w.BurstFactor
		}
		return w.ArrivalRate
	default:
		return w.ArrivalRate
	}
}

// peakRate bounds rateAt over [0, DurationSec] for thinning.
func (w Workload) peakRate() float64 {
	switch w.Curve {
	case LoadDiurnal:
		return w.ArrivalRate * (1 + w.CurveAmplitude)
	case LoadRamp:
		if w.RampEndFactor > 1 {
			return w.ArrivalRate * w.RampEndFactor
		}
		return w.ArrivalRate
	case LoadBurst:
		if w.BurstFactor > 1 {
			return w.ArrivalRate * w.BurstFactor
		}
		return w.ArrivalRate
	default:
		return w.ArrivalRate
	}
}

// GenerateArrivals samples the workload's session arrival process. The
// result is fully determined by (w, catalog, seed): a non-homogeneous
// Poisson process sampled by thinning against the peak rate, with the
// HR/LR mix, sequence choice, session length and per-session seeds all
// drawn from one seeded rng. In trace mode the trace is replayed: entries
// are sorted by arrival time, re-numbered, and zero fields (bandwidth,
// seeds) are filled in deterministically.
func GenerateArrivals(w Workload, catalog *video.Catalog, seed int64) ([]SessionRequest, error) {
	w = w.withDefaults()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if catalog == nil || catalog.Len() == 0 {
		return nil, fmt.Errorf("serve: empty catalog")
	}
	if len(w.Trace) > 0 {
		return normalizeTrace(w, catalog, seed)
	}

	rng := rand.New(rand.NewSource(experiments.SubSeed(seed, "serve|arrivals", 0)))
	peak := w.peakRate()
	var out []SessionRequest
	t := 0.0
	for {
		t += rng.ExpFloat64() / peak
		if t >= w.DurationSec {
			break
		}
		// Thinning: keep the candidate with probability rate(t)/peak.
		if rng.Float64() >= w.rateAt(t)/peak {
			continue
		}
		res := video.LR
		if rng.Float64() < w.hrFraction() {
			res = video.HR
		}
		seq, err := catalog.Pick(res, rng)
		if err != nil {
			return nil, err
		}
		lengthSec := w.MeanSessionSec * rng.ExpFloat64()
		if lengthSec < w.MinSessionSec {
			lengthSec = w.MinSessionSec
		}
		frames := int(lengthSec*w.TargetFPS + 0.5)
		if frames < 1 {
			frames = 1
		}
		out = append(out, SessionRequest{
			ID:             len(out),
			ArriveAtSec:    t,
			Res:            res,
			Sequence:       seq.Name,
			Frames:         frames,
			BandwidthMbps:  core.DefaultBandwidth(res),
			SourceSeed:     rng.Int63(),
			ControllerSeed: rng.Int63(),
		})
	}
	return out, nil
}

// normalizeTrace prepares a user-supplied trace for dispatch.
func normalizeTrace(w Workload, catalog *video.Catalog, seed int64) ([]SessionRequest, error) {
	out := make([]SessionRequest, len(w.Trace))
	copy(out, w.Trace)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ArriveAtSec < out[j].ArriveAtSec })
	for i := range out {
		r := &out[i]
		r.ID = i
		if r.Sequence == "" {
			seq, err := catalog.Pick(r.Res, rand.New(rand.NewSource(experiments.SubSeed(seed, "serve|traceseq", i))))
			if err != nil {
				return nil, err
			}
			r.Sequence = seq.Name
		} else {
			seq, err := catalog.Get(r.Sequence)
			if err != nil {
				return nil, err
			}
			// The sequence is authoritative for the resolution class:
			// Res's zero value (HR) cannot be told apart from "unset",
			// so a mismatching Res would silently skew dispatch power
			// estimates and per-class stats.
			r.Res = seq.Res
		}
		if r.BandwidthMbps == 0 {
			r.BandwidthMbps = core.DefaultBandwidth(r.Res)
		}
		if r.SourceSeed == 0 {
			r.SourceSeed = experiments.SubSeed(seed, "serve|tracesrc", i)
		}
		if r.ControllerSeed == 0 {
			r.ControllerSeed = experiments.SubSeed(seed, "serve|tracectl", i)
		}
	}
	return out, nil
}

// SplitArrivals deterministically partitions an arrival stream into
// shard substreams by interleaved round-robin on arrival ID: request r
// goes to substream r.ID mod shards. GenerateArrivals (and trace
// normalization) number arrivals 0..n-1 in time order, so the substreams
// interleave one-in-S, each preserves the stream's time order, their
// sizes differ by at most one, and their ID-ordered union is exactly the
// input stream — the invariants a regional split of the workload needs
// (hashing the ID would satisfy them equally, minus the balance bound).
// The sharded dispatcher itself partitions servers, not arrivals (every
// arrival must see the whole fleet for placement to stay policy-exact —
// see shard.go); SplitArrivals is the workload-side primitive for
// driving independent per-region runs over one generated stream.
func SplitArrivals(arrivals []SessionRequest, shards int) ([][]SessionRequest, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: cannot split arrivals into %d shards", shards)
	}
	out := make([][]SessionRequest, shards)
	for s := range out {
		out[s] = make([]SessionRequest, 0, (len(arrivals)+shards-1)/shards)
	}
	for _, r := range arrivals {
		s := r.ID % shards
		if s < 0 { // defensive: hand-built traces could carry negative IDs
			s += shards
		}
		out[s] = append(out[s], r)
	}
	return out, nil
}
