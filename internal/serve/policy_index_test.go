package serve

import (
	"math/rand"
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

// TestBuiltinPoliciesAreFleetIndexers: every registered policy offers the
// indexed fast path.
func TestBuiltinPoliciesAreFleetIndexers(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(FleetIndexer); !ok {
			t.Errorf("policy %q does not implement FleetIndexer", name)
		}
	}
}

// TestLeastLoadedIndexTieBreak: the bucket queue must resolve occupancy
// ties to the lowest server index, like the scan.
func TestLeastLoadedIndexTieBreak(t *testing.T) {
	s := states(2, 1, 1, 3)
	idx := leastLoaded{}.NewFleetIndex(s)
	if got := idx.Place(SessionRequest{}); got != 1 {
		t.Errorf("tie at occupancy 1: placed on %d, want 1", got)
	}
	// Admit on 1: now server 2 is the unique minimum.
	s[1].Active = 2
	idx.Update(s[1])
	if got := idx.Place(SessionRequest{}); got != 2 {
		t.Errorf("after admit, placed on %d, want 2", got)
	}
	// Fill everything: reject.
	for i := range s {
		s[i].Active = s[i].MaxSessions
		idx.Update(s[i])
	}
	if got := idx.Place(SessionRequest{}); got != -1 {
		t.Errorf("full fleet placed on %d, want -1", got)
	}
	// A departure reopens exactly that server.
	s[3].Active--
	idx.Update(s[3])
	if got := idx.Place(SessionRequest{}); got != 3 {
		t.Errorf("after departure, placed on %d, want 3", got)
	}
}

// TestPowerAwareIndexOrdering: the headroom heap must produce the scan's
// ordering — maximum PowerBudgetW-EstPowerW headroom first, lowest index
// among exact ties — and track departures and admissions.
func TestPowerAwareIndexOrdering(t *testing.T) {
	s := []ServerState{
		{Index: 0, Active: 1, MaxSessions: 4, PowerBudgetW: 140, EstPowerW: 80},
		{Index: 1, Active: 1, MaxSessions: 4, PowerBudgetW: 140, EstPowerW: 60},
		{Index: 2, Active: 1, MaxSessions: 4, PowerBudgetW: 140, EstPowerW: 60},
	}
	idx := powerAware{}.NewFleetIndex(s)
	// Servers 1 and 2 tie on headroom (80 W); the lower index wins, as in
	// the scan.
	if got := idx.Place(SessionRequest{}); got != 1 {
		t.Errorf("headroom tie: placed on %d, want 1", got)
	}
	// Load server 1 past server 0: ordering must follow.
	s[1].Active, s[1].EstPowerW = 2, 100
	idx.Update(s[1])
	if got := idx.Place(SessionRequest{}); got != 2 {
		t.Errorf("after admit on 1, placed on %d, want 2", got)
	}
	// Full servers leave the ordering even with the best headroom.
	s[2].Active = 4
	idx.Update(s[2])
	if got := idx.Place(SessionRequest{}); got != 0 {
		t.Errorf("with 2 full, placed on %d, want 0", got)
	}
	// A departure restores it.
	s[2].Active = 3
	idx.Update(s[2])
	if got := idx.Place(SessionRequest{}); got != 2 {
		t.Errorf("after departure on 2, placed on %d, want 2", got)
	}
}

// TestIndexedPoliciesMatchScanRandomized cross-checks each indexed
// policy against its scan reference over randomized fleets and random
// admit/departure churn: after every state change both must pick the
// same server. The states evolve exactly like the dispatcher's — hr/lr
// counts with the estimated-power expression — so the floats the two
// implementations compare are the ones production compares.
func TestIndexedPoliciesMatchScanRandomized(t *testing.T) {
	spec := platform.DefaultSpec()
	hrW, err := estSessionPowerW(spec, video.HR)
	if err != nil {
		t.Fatal(err)
	}
	lrW, err := estSessionPowerW(spec, video.LR)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.Intn(12)
				maxSess := 1 + rng.Intn(5)
				budget := 90 + 20*rng.Float64()
				hr := make([]int, n)
				lr := make([]int, n)
				states := make([]ServerState, n)
				refresh := func(i int) {
					states[i] = ServerState{
						Index:        i,
						Active:       hr[i] + lr[i],
						HRActive:     hr[i],
						LRActive:     lr[i],
						MaxSessions:  maxSess,
						EstPowerW:    spec.IdlePowerW + float64(hr[i])*hrW + float64(lr[i])*lrW,
						PowerBudgetW: budget,
					}
				}
				for i := 0; i < n; i++ {
					occ := rng.Intn(maxSess + 1)
					hr[i] = rng.Intn(occ + 1)
					lr[i] = occ - hr[i]
					refresh(i)
				}
				scanPol, err := NewPolicy(name)
				if err != nil {
					t.Fatal(err)
				}
				idxPol, err := NewPolicy(name)
				if err != nil {
					t.Fatal(err)
				}
				idx := idxPol.(FleetIndexer).NewFleetIndex(states)

				for step := 0; step < 40; step++ {
					res := video.LR
					if rng.Intn(2) == 0 {
						res = video.HR
					}
					req := SessionRequest{ID: step, Res: res}
					aw := hrW
					if res == video.LR {
						aw = lrW
					}
					for i := range states {
						states[i].EstArrivalW = aw
					}
					want := scanPol.Place(req, states)
					got := idx.Place(req)
					if got != want {
						t.Fatalf("trial %d step %d: indexed placed %d, scan placed %d (states %+v)",
							trial, step, got, want, states)
					}
					// Apply the admission the dispatcher would.
					if want >= 0 && !states[want].Full() {
						if res == video.HR {
							hr[want]++
						} else {
							lr[want]++
						}
						refresh(want)
						idx.Update(states[want])
					}
					// Random departure churn.
					if i := rng.Intn(n); hr[i]+lr[i] > 0 {
						if hr[i] > 0 && (lr[i] == 0 || rng.Intn(2) == 0) {
							hr[i]--
						} else {
							lr[i]--
						}
						refresh(i)
						idx.Update(states[i])
					}
				}
			}
		})
	}
}
