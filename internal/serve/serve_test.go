package serve

import (
	"reflect"
	"testing"

	"mamut/internal/experiments"
	"mamut/internal/platform"
	"mamut/internal/video"
)

// quickConfig is a small but non-trivial service run: a 3-server fleet
// under moderate churn, cheap enough for unit tests via the heuristic
// controller.
func quickConfig() Config {
	return Config{
		Servers:              3,
		MaxSessionsPerServer: 4,
		Policy:               PolicyLeastLoaded,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.3,
			DurationSec:    150,
			MeanSessionSec: 20,
		},
		WarmupSec: 30,
		Seed:      11,
		Workers:   1,
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := cfgWithWorkers(quickConfig(), 1)
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfgWithWorkers(quickConfig(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("results differ between 1 and 4 workers")
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, again) {
		t.Error("repeated identical runs differ")
	}
}

func cfgWithWorkers(c Config, w int) Config {
	c.Workers = w
	return c
}

func TestRunAccounting(t *testing.T) {
	cfg := quickConfig()
	cfg.RetainSessions = true // the checks below read the per-arrival log
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if res.Offered != res.Admitted+res.Rejected {
		t.Errorf("offered %d != admitted %d + rejected %d", res.Offered, res.Admitted, res.Rejected)
	}
	if len(res.Sessions) != res.Offered {
		t.Errorf("session log has %d entries for %d arrivals", len(res.Sessions), res.Offered)
	}
	if len(res.Servers) != cfg.Servers {
		t.Errorf("server results %d != fleet size %d", len(res.Servers), cfg.Servers)
	}
	if res.Measured != res.HR.Sessions+res.LR.Sessions {
		t.Errorf("measured %d != HR %d + LR %d", res.Measured, res.HR.Sessions, res.LR.Sessions)
	}
	admitted := 0
	for _, so := range res.Sessions {
		if so.Server >= 0 {
			admitted++
			if so.Frames != so.Req.Frames {
				t.Errorf("session %d transcoded %d of %d frames", so.Req.ID, so.Frames, so.Req.Frames)
			}
		}
	}
	if admitted != res.Admitted {
		t.Errorf("session log admits %d, result says %d", admitted, res.Admitted)
	}
	perServer := 0
	for i, sr := range res.Servers {
		if sr.Index != i {
			t.Errorf("server %d has index %d", i, sr.Index)
		}
		if sr.AvgPowerW < 1 {
			t.Errorf("server %d power %.1f W implausible", i, sr.AvgPowerW)
		}
		if sr.UtilizationPct < 0 {
			t.Errorf("server %d utilization %.1f%% negative", i, sr.UtilizationPct)
		}
		if sr.PeakActive > sr.Sessions {
			t.Errorf("server %d peak %d exceeds its %d sessions", i, sr.PeakActive, sr.Sessions)
		}
		perServer += sr.Sessions
	}
	if perServer != res.Admitted {
		t.Errorf("per-server sessions sum to %d, admitted %d", perServer, res.Admitted)
	}
	if res.FleetAvgPowerW <= 0 {
		t.Errorf("fleet power %.1f W implausible", res.FleetAvgPowerW)
	}
}

// TestPowerAwareBeatsRoundRobinOnRejections drives the fleet past its
// admission capacity: blind round-robin rejects arrivals whose turn lands
// on a full server even while a sibling has room, while the power-aware
// policy only rejects when the whole fleet is full.
func TestPowerAwareBeatsRoundRobinOnRejections(t *testing.T) {
	base := Config{
		Servers:              2,
		MaxSessionsPerServer: 4,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.4,
			DurationSec:    300,
			MeanSessionSec: 25,
		},
		WarmupSec: 60,
		Seed:      5,
		Workers:   0,
	}
	rr := base
	rr.Policy = PolicyRoundRobin
	rrRes, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	pow := base
	pow.Policy = PolicyPowerAware
	powRes, err := Run(pow)
	if err != nil {
		t.Fatal(err)
	}
	if rrRes.Rejected == 0 {
		t.Fatal("overload produced no round-robin rejections; test is not exercising admission")
	}
	if powRes.RejectionPct >= rrRes.RejectionPct {
		t.Errorf("power-aware rejection %.1f%% not below round-robin %.1f%%",
			powRes.RejectionPct, rrRes.RejectionPct)
	}
}

// TestPowerAwareBeatsRoundRobinOnSLO replays a deterministic trace whose
// arrival order (HR, LR, HR, LR, ...) makes blind rotation pile every
// heavy HR stream onto one server. Balancing estimated watts instead
// keeps both servers real-time capable.
func TestPowerAwareBeatsRoundRobinOnSLO(t *testing.T) {
	var trace []SessionRequest
	for i := 0; i < 5; i++ {
		trace = append(trace,
			SessionRequest{ArriveAtSec: float64(i), Res: video.HR, Frames: 2400, Sequence: "Cactus"},
			SessionRequest{ArriveAtSec: float64(i) + 0.5, Res: video.LR, Frames: 2400, Sequence: "BQMall"},
		)
	}
	base := Config{
		Servers:        2,
		Approach:       experiments.Heuristic,
		Workload:       Workload{Trace: trace},
		Seed:           3,
		Workers:        0,
		RetainSessions: true, // the HR-split sanity check reads the log
	}
	rr := base
	rr.Policy = PolicyRoundRobin
	rrRes, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	pow := base
	pow.Policy = PolicyPowerAware
	powRes, err := Run(pow)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: round-robin anti-balanced the classes (one server all-HR).
	var rrHR [2]int
	for _, so := range rrRes.Sessions {
		if so.Req.Res == video.HR && so.Server >= 0 {
			rrHR[so.Server]++
		}
	}
	if rrHR[0] != 5 || rrHR[1] != 0 {
		t.Fatalf("round-robin HR split %v, expected all 5 on server 0", rrHR)
	}
	if powRes.SLOAttainedPct <= rrRes.SLOAttainedPct {
		t.Errorf("power-aware SLO attainment %.1f%% not above round-robin %.1f%%",
			powRes.SLOAttainedPct, rrRes.SLOAttainedPct)
	}
}

// TestActualDeparturesChangePlacement demonstrates the event-interleaved
// dispatcher deciding differently from the old nominal-occupancy
// approximation. On a deliberately tiny platform (one single-threaded
// core) an HR session cannot reach the 24 FPS target, so its actual
// lifetime stretches far past the nominal Frames/TargetFPS residency:
//
//   - A arrives at t=0 on server 0 with a 240-frame budget — nominally
//     resident until t=10, actually until well past t=15;
//   - B arrives at t=15. The nominal dispatcher would see server 0 free
//     and (least-loaded breaking ties by index) place B there, doubling
//     up on the struggling server; the event-interleaved dispatcher sees
//     A still holding its slot and diverts B to server 1;
//   - C arrives at t=16 with both servers truly occupied and is rejected,
//     so the rejection metrics also reflect actual departures — the
//     nominal view would have admitted it.
func TestActualDeparturesChangePlacement(t *testing.T) {
	tiny := platform.DefaultSpec()
	tiny.Sockets = 1
	tiny.CoresPerSocket = 1
	tiny.ThreadsPerCore = 1
	cfg := Config{
		Servers:              2,
		MaxSessionsPerServer: 1,
		Policy:               PolicyLeastLoaded,
		Approach:             experiments.Heuristic,
		Spec:                 &tiny,
		Workload: Workload{Trace: []SessionRequest{
			{ArriveAtSec: 0, Sequence: "Cactus", Frames: 240},
			{ArriveAtSec: 15, Sequence: "Cactus", Frames: 240},
			{ArriveAtSec: 16, Sequence: "Cactus", Frames: 60},
		}},
		Seed:           21,
		Workers:        1,
		RetainSessions: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := res.Sessions[0], res.Sessions[1], res.Sessions[2]
	if a.Server != 0 {
		t.Fatalf("A placed on server %d, want 0", a.Server)
	}
	// Premise: A's nominal residency ended before B arrived, its actual
	// one did not.
	nominalEnd := a.Req.ArriveAtSec + float64(a.Req.Frames)/cfg.Workload.withDefaults().TargetFPS
	if nominalEnd >= b.Req.ArriveAtSec {
		t.Fatalf("nominal end %.1fs not before B's arrival %.1fs; premise broken", nominalEnd, b.Req.ArriveAtSec)
	}
	if a.AvgFPS >= cfg.Workload.withDefaults().TargetFPS {
		t.Fatalf("A averaged %.1f FPS on a single core; expected it stretched", a.AvgFPS)
	}
	// The divergent decision: nominal occupancy would put B on server 0.
	if b.Server != 1 {
		t.Errorf("B placed on server %d; actual occupancy should divert it to server 1", b.Server)
	}
	// And the rejection the nominal view would not have produced.
	if c.Server != -1 {
		t.Errorf("C admitted to server %d; both servers are actually occupied at t=16", c.Server)
	}
	if res.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", res.Rejected)
	}
	// Peak occupancy can no longer exceed the admission limit: admission
	// is enforced on actual residency.
	for _, sr := range res.Servers {
		if sr.PeakActive > cfg.MaxSessionsPerServer {
			t.Errorf("server %d peak %d exceeds admission limit %d", sr.Index, sr.PeakActive, cfg.MaxSessionsPerServer)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Servers: -1, Workload: Workload{ArrivalRate: 1, DurationSec: 10}},
		{Policy: "bogus", Workload: Workload{ArrivalRate: 1, DurationSec: 10}},
		{Workload: Workload{}},
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, WarmupSec: 10},
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, WarmupSec: -1},
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, SLOFPSFactor: -2},
		// An SLO factor above 1 demands average FPS beyond the target the
		// controllers regulate around: unattainable, silently zeroing
		// SLOAttainedPct.
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, SLOFPSFactor: 1.05},
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, Workers: -1},
		// Knowledge reuse needs a learner that can export its tables.
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, Approach: experiments.Heuristic, KnowledgeReuse: true},
		// Imported knowledge without reuse would silently never seed.
		{Workload: Workload{ArrivalRate: 1, DurationSec: 10}, Knowledge: NewKnowledgeStore()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
	if err := (Config{Workload: Workload{ArrivalRate: 1, DurationSec: 10}}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := Run(Config{Approach: "bogus", Workload: Workload{ArrivalRate: 1, DurationSec: 10}}); err == nil {
		t.Error("unknown approach accepted")
	}
}
