package serve

import (
	"path/filepath"
	"reflect"
	"testing"

	"mamut/internal/experiments"
)

func checkpointGridSpec() GridSpec {
	return GridSpec{
		Base: Config{
			Servers:              2,
			MaxSessionsPerServer: 4,
			Workload: Workload{
				DurationSec:    90,
				MeanSessionSec: 15,
			},
			WarmupSec: 20,
		},
		Policies:     []string{"round-robin", "power"},
		ArrivalRates: []float64{0.3},
		Seeds:        []int64{5, 6},
		Workers:      2,
	}
}

// TestGridCheckpointResumeBitIdentical: interrupt a grid after a prefix
// of cells, resume against the same checkpoint file, and require the
// combined result to equal an uninterrupted grid exactly — the resume
// acceptance criterion. A knowledge-reuse cell rides along so the
// store's JSON round-trip through the checkpoint is pinned too.
func TestGridCheckpointResumeBitIdentical(t *testing.T) {
	want, err := RunGrid(checkpointGridSpec())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := experiments.OpenFileCheckpoint[*Result](path)
	if err != nil {
		t.Fatal(err)
	}
	// "Interrupt": run only the first policy's cells (a prefix of the
	// full grid's unit order), then drop the handle.
	partial := checkpointGridSpec()
	partial.Policies = partial.Policies[:1]
	partial.Checkpoint = ck
	if _, err := RunGrid(partial); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	ck2, err := experiments.OpenFileCheckpoint[*Result](path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if got := ck2.Entries(); got != 2 {
		t.Fatalf("checkpoint holds %d cells, want 2", got)
	}
	full := checkpointGridSpec()
	full.Checkpoint = ck2
	got, err := RunGrid(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed grid differs from uninterrupted grid")
	}
}

// TestGridCheckpointKnowledgeRoundTrip: a knowledge-reuse cell's result
// — including the exported store — survives the checkpoint's JSON
// round-trip exactly.
func TestGridCheckpointKnowledgeRoundTrip(t *testing.T) {
	spec := GridSpec{
		Base: func() Config {
			c := shortSessionConfig()
			c.Workload.DurationSec = 120
			c.KnowledgeReuse = true
			return c
		}(),
		Workers: 1,
	}
	want, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want[0].Result.Knowledge == nil {
		t.Fatal("knowledge cell carries no store")
	}

	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := experiments.OpenFileCheckpoint[*Result](path)
	if err != nil {
		t.Fatal(err)
	}
	spec.Checkpoint = ck
	if _, err := RunGrid(spec); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Everything now comes from the file, nothing recomputes.
	ck2, err := experiments.OpenFileCheckpoint[*Result](path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	spec.Checkpoint = ck2
	spec.Base.PolicyFactory = nil // ensure no accidental recompute path
	got, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("checkpointed knowledge cell differs after JSON round-trip")
	}
}
