package serve

import (
	"math"
	"reflect"
	"testing"

	"mamut/internal/video"
)

func TestGenerateArrivalsDeterministic(t *testing.T) {
	w := Workload{ArrivalRate: 0.5, DurationSec: 200}
	cat := video.DefaultCatalog()
	a, err := GenerateArrivals(w, cat, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArrivals(w, cat, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different arrivals")
	}
	c, err := GenerateArrivals(w, cat, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical arrivals")
	}
}

func TestGenerateArrivalsShape(t *testing.T) {
	cat := video.DefaultCatalog()
	w := Workload{ArrivalRate: 1.0, DurationSec: 400, HRFraction: 0.5, MeanSessionSec: 30}
	arr, err := GenerateArrivals(w, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(400) should land well inside 4 sigma.
	if n := len(arr); math.Abs(float64(n)-400) > 4*math.Sqrt(400) {
		t.Errorf("arrival count %d far from rate*duration = 400", n)
	}
	minFrames := int(math.Round(DefaultMinSessionSec * 24))
	prev := 0.0
	hr := 0
	for i, r := range arr {
		if r.ID != i {
			t.Fatalf("arrival %d has ID %d", i, r.ID)
		}
		if r.ArriveAtSec < prev || r.ArriveAtSec >= w.DurationSec {
			t.Fatalf("arrival %d at %g out of order or past horizon", i, r.ArriveAtSec)
		}
		prev = r.ArriveAtSec
		if r.Frames < minFrames {
			t.Fatalf("arrival %d has %d frames, below the %d floor", i, r.Frames, minFrames)
		}
		if r.Sequence == "" || r.BandwidthMbps <= 0 || r.SourceSeed == 0 || r.ControllerSeed == 0 {
			t.Fatalf("arrival %d not fully populated: %+v", i, r)
		}
		seq, err := cat.Get(r.Sequence)
		if err != nil || seq.Res != r.Res {
			t.Fatalf("arrival %d sequence %q does not match class %s", i, r.Sequence, r.Res)
		}
		if r.Res == video.HR {
			hr++
		}
	}
	if frac := float64(hr) / float64(len(arr)); frac < 0.35 || frac > 0.65 {
		t.Errorf("HR fraction %.2f far from configured 0.5", frac)
	}
}

func TestGenerateArrivalsLoadCurves(t *testing.T) {
	cat := video.DefaultCatalog()
	base := Workload{ArrivalRate: 0.5, DurationSec: 600}
	constant, err := GenerateArrivals(base, cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	ramp := base
	ramp.Curve = LoadRamp
	ramp.RampEndFactor = 3
	ramped, err := GenerateArrivals(ramp, cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Mean rate of the ramp is 2x the base: the count should clearly grow.
	if len(ramped) <= len(constant) {
		t.Errorf("ramp to 3x produced %d arrivals vs %d constant", len(ramped), len(constant))
	}
	// The ramp's second half must be busier than its first half.
	half := 0
	for _, r := range ramped {
		if r.ArriveAtSec < base.DurationSec/2 {
			half++
		}
	}
	if 2*half >= len(ramped) {
		t.Errorf("ramp front-loaded: %d of %d arrivals in the first half", half, len(ramped))
	}

	diurnal := base
	diurnal.Curve = LoadDiurnal
	diurnal.CurveAmplitude = 0.9
	if _, err := GenerateArrivals(diurnal, cat, 3); err != nil {
		t.Fatalf("diurnal generation failed: %v", err)
	}

	burst := base
	burst.Curve = LoadBurst
	burst.BurstFactor = 5
	burst.BurstStartSec = 100
	burst.BurstEndSec = 200
	bursted, err := GenerateArrivals(burst, cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The 100s spike window at 5x should hold clearly more arrivals than
	// any same-length off-window stretch at the base rate.
	inWindow, before := 0, 0
	for _, r := range bursted {
		switch {
		case r.ArriveAtSec >= 100 && r.ArriveAtSec < 200:
			inWindow++
		case r.ArriveAtSec < 100:
			before++
		}
	}
	if inWindow <= 2*before {
		t.Errorf("burst window not spiking: %d arrivals inside vs %d before", inWindow, before)
	}
}

func TestBurstCurveShape(t *testing.T) {
	w := Workload{ArrivalRate: 2, DurationSec: 100, Curve: LoadBurst,
		BurstFactor: 3, BurstStartSec: 10, BurstEndSec: 30}.withDefaults()
	for _, tc := range []struct {
		t    float64
		want float64
	}{
		{0, 2}, {9.99, 2}, // before the window: base rate
		{10, 6}, {29.99, 6}, // inside [start, end): spiked
		{30, 2}, {99, 2}, // at and after end: base rate again
	} {
		if got := w.rateAt(tc.t); got != tc.want {
			t.Errorf("rateAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if got := w.peakRate(); got != 6 {
		t.Errorf("peakRate() = %g, want 6", got)
	}

	// Defaults: factor 3, window = the second quarter of the run.
	d := Workload{ArrivalRate: 1, DurationSec: 400, Curve: LoadBurst}.withDefaults()
	if d.BurstFactor != DefaultBurstFactor || d.BurstStartSec != 100 || d.BurstEndSec != 200 {
		t.Errorf("burst defaults: factor %g window [%g, %g), want %g and [100, 200)",
			d.BurstFactor, d.BurstStartSec, d.BurstEndSec, DefaultBurstFactor)
	}

	// A sub-unity factor is a dip, not a spike: peak stays the base rate.
	dip := Workload{ArrivalRate: 2, DurationSec: 100, Curve: LoadBurst,
		BurstFactor: 0.5, BurstStartSec: 10, BurstEndSec: 30}.withDefaults()
	if got := dip.peakRate(); got != 2 {
		t.Errorf("dip peakRate() = %g, want the base rate 2", got)
	}
}

func TestGenerateArrivalsTraceReplay(t *testing.T) {
	cat := video.DefaultCatalog()
	w := Workload{Trace: []SessionRequest{
		{ArriveAtSec: 5, Res: video.LR, Frames: 100},
		{ArriveAtSec: 1, Res: video.HR, Frames: 200, Sequence: "Kimono"},
	}}
	arr, err := GenerateArrivals(w, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 {
		t.Fatalf("replay returned %d arrivals", len(arr))
	}
	if arr[0].ArriveAtSec != 1 || arr[1].ArriveAtSec != 5 {
		t.Error("trace not sorted by arrival time")
	}
	if arr[0].ID != 0 || arr[1].ID != 1 {
		t.Error("trace not renumbered")
	}
	if arr[0].Sequence != "Kimono" {
		t.Error("explicit sequence overwritten")
	}
	if arr[1].Sequence == "" || arr[1].BandwidthMbps == 0 || arr[1].SourceSeed == 0 {
		t.Errorf("trace defaults not filled: %+v", arr[1])
	}
	seq, err := cat.Get(arr[1].Sequence)
	if err != nil || seq.Res != video.LR {
		t.Errorf("filled sequence %q not an LR catalog entry", arr[1].Sequence)
	}

	again, err := GenerateArrivals(w, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr, again) {
		t.Error("trace normalization not deterministic")
	}
}

func TestWorkloadValidate(t *testing.T) {
	cases := []Workload{
		{},                                 // no rate
		{ArrivalRate: 1},                   // no duration
		{ArrivalRate: -1, DurationSec: 10}, // negative rate
		{ArrivalRate: 1, DurationSec: 10, HRFraction: 2},
		{ArrivalRate: 1, DurationSec: 10, Curve: "bogus"},
		{ArrivalRate: 1, DurationSec: 10, Curve: LoadDiurnal, CurveAmplitude: 1.5},
		{ArrivalRate: 1, DurationSec: 10, Curve: LoadBurst, BurstFactor: -1},
		{ArrivalRate: 1, DurationSec: 10, Curve: LoadBurst, BurstStartSec: 5, BurstEndSec: 2},
		{ArrivalRate: 1, DurationSec: 10, Curve: LoadBurst, BurstStartSec: -1, BurstEndSec: 4},
		{Trace: []SessionRequest{{ArriveAtSec: -1, Frames: 10}}},
		{Trace: []SessionRequest{{ArriveAtSec: 0, Frames: 0}}},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid workload %+v passed validation", i, w)
		}
	}
	ok := Workload{ArrivalRate: 1, DurationSec: 10}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

func TestTraceSequenceDeterminesResolution(t *testing.T) {
	cat := video.DefaultCatalog()
	// BQMall is an LR catalog entry; Res is left at its zero value (HR).
	w := Workload{Trace: []SessionRequest{{ArriveAtSec: 0, Frames: 50, Sequence: "BQMall"}}}
	arr, err := GenerateArrivals(w, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if arr[0].Res != video.LR {
		t.Errorf("trace entry classified as %s, want LR from its sequence", arr[0].Res)
	}
	unknown := Workload{Trace: []SessionRequest{{ArriveAtSec: 0, Frames: 50, Sequence: "Nope"}}}
	if _, err := GenerateArrivals(unknown, cat, 1); err == nil {
		t.Error("unknown trace sequence accepted")
	}
}

func TestNegativeHRFractionForcesPureLR(t *testing.T) {
	cat := video.DefaultCatalog()
	w := Workload{ArrivalRate: 0.5, DurationSec: 200, HRFraction: -1}
	arr, err := GenerateArrivals(w, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	for _, r := range arr {
		if r.Res != video.LR {
			t.Fatalf("arrival %d is %s in a forced-LR workload", r.ID, r.Res)
		}
	}
	// The sentinel must survive repeated defaulting (Run applies
	// withDefaults before GenerateArrivals applies it again).
	twice := w.withDefaults().withDefaults()
	if got, err := GenerateArrivals(twice, cat, 1); err != nil || len(got) != len(arr) {
		t.Errorf("defaults not idempotent: %d arrivals vs %d, err %v", len(got), len(arr), err)
	}
}
