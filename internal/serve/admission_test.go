package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mamut/internal/video"
)

// queuedEquivConfig drives a tight fleet through a flash-crowd burst
// with the admission queue on, hard enough that every outcome class —
// direct admission, queueing, re-admission, deadline drop and
// capacity rejection — occurs.
func queuedEquivConfig() Config {
	cfg := equivConfig(PolicyLeastLoaded)
	cfg.MaxSessionsPerServer = 1
	cfg.Workload.ArrivalRate = 0.6
	cfg.Workload.Curve = LoadBurst
	cfg.Workload.BurstFactor = 4
	cfg.Workload.BurstStartSec = 20
	cfg.Workload.BurstEndSec = 60
	cfg.Queue = QueueConfig{Capacity: 8, DeadlineSec: 25}
	return cfg
}

// TestQueueEquivalence pins the tentpole determinism contract with the
// admission queue on: scan and indexed dispatch, any worker count and
// any shard count produce DeepEqual results — the queue decision points
// all live in the serial phase.
func TestQueueEquivalence(t *testing.T) {
	run := func(mode DispatchMode, workers, shards int) *Result {
		cfg := queuedEquivConfig()
		cfg.Dispatch = mode
		cfg.Workers = workers
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(DispatchScan, 1, 0)
	if base.Queued == 0 || base.QueueAdmitted == 0 || base.QueueDropped == 0 || base.Rejected == 0 {
		t.Fatalf("config not exercising every queue outcome (queued %d, queue-admitted %d, queue-dropped %d, rejected %d)",
			base.Queued, base.QueueAdmitted, base.QueueDropped, base.Rejected)
	}
	for _, mode := range []DispatchMode{DispatchScan, DispatchIndexed} {
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{0, 4} {
				if got := run(mode, workers, shards); !reflect.DeepEqual(base, got) {
					t.Errorf("queued run (dispatch=%s workers=%d shards=%d) diverged from the scan reference",
						mode, workers, shards)
				}
			}
		}
	}
}

// TestQueueEquivalenceElastic extends the queued determinism contract
// to knowledge reuse and an autoscaling fleet: epoch-boundary queue
// drains and scale-out re-admissions must land identically on both
// dispatch paths and any worker count.
func TestQueueEquivalenceElastic(t *testing.T) {
	base := Config{
		Servers:              2,
		MaxSessionsPerServer: 2,
		KnowledgeReuse:       true,
		Workload: Workload{
			ArrivalRate:    0.5,
			DurationSec:    120,
			MeanSessionSec: 15,
			Curve:          LoadBurst,
			BurstFactor:    4,
			BurstStartSec:  30,
			BurstEndSec:    70,
		},
		WarmupSec: 30,
		Seed:      7,
		EpochSec:  10,
		Autoscale: AutoscaleConfig{Enabled: true, MaxServers: 4},
		Queue:     QueueConfig{Capacity: 6, DeadlineSec: 20},
	}
	run := func(mode DispatchMode, workers int) *Result {
		cfg := base
		cfg.Dispatch = mode
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scan := run(DispatchScan, 1)
	if scan.Queued == 0 || scan.QueueAdmitted == 0 {
		t.Fatalf("config exercised no queue activity (queued %d, queue-admitted %d)",
			scan.Queued, scan.QueueAdmitted)
	}
	if scan.ServersAdded == 0 {
		t.Fatalf("config exercised no scale-out (the epoch drain path went untested)")
	}
	for _, workers := range []int{1, 4} {
		if got := run(DispatchIndexed, workers); !reflect.DeepEqual(scan, got) {
			t.Errorf("elastic queued run (workers=%d) diverged from the scan reference", workers)
		}
	}
}

// TestQueueBeatsDropOnFull pins the headline: under a burst workload at
// equal fleet size, the deadline-bounded queue strictly beats
// drop-on-full on completed sessions AND on SLO-attained sessions —
// capacity that frees after the spike serves arrivals the drop policy
// lost forever.
func TestQueueBeatsDropOnFull(t *testing.T) {
	config := func(queue bool) Config {
		cfg := Config{
			Servers:              16,
			MaxSessionsPerServer: 1,
			Policy:               PolicyLeastLoaded,
			Approach:             "heuristic",
			// Base load well under capacity, spike well over it: the
			// headroom that returns after the spike is what the queue
			// converts into completed sessions drop-on-full lost.
			Workload: Workload{
				ArrivalRate:    0.5,
				DurationSec:    60,
				MeanSessionSec: 15,
				Curve:          LoadBurst,
				BurstFactor:    6,
				BurstStartSec:  10,
				BurstEndSec:    25,
			},
			WarmupSec: 10,
			Seed:      7,
			Workers:   1,
		}
		if queue {
			cfg.Queue = QueueConfig{Capacity: 64, DeadlineSec: 30}
		}
		return cfg
	}
	drop, err := Run(config(false))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := Run(config(true))
	if err != nil {
		t.Fatal(err)
	}
	if drop.Rejected == 0 {
		t.Fatalf("burst config not saturating the drop-on-full fleet (rejected %d)", drop.Rejected)
	}
	attained := func(r *Result) int {
		return int(math.Round(r.SLOAttainedPct / 100 * float64(r.Measured)))
	}
	if queued.Admitted <= drop.Admitted {
		t.Errorf("queue does not beat drop-on-full on completed sessions: %d <= %d",
			queued.Admitted, drop.Admitted)
	}
	if attained(queued) <= attained(drop) {
		t.Errorf("queue does not beat drop-on-full on SLO-attained sessions: %d <= %d",
			attained(queued), attained(drop))
	}
}

// TestQueueOutcomeAccounting pins the outcome taxonomy: every offered
// arrival is exactly one of admitted, capacity-rejected or
// deadline-dropped; every queued arrival resolves to re-admission or
// drop; and RejectionPct counts capacity rejections only.
func TestQueueOutcomeAccounting(t *testing.T) {
	cfg := queuedEquivConfig()
	cfg.RetainSessions = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Admitted + res.Rejected + res.QueueDropped; got != res.Offered {
		t.Errorf("admitted %d + rejected %d + queue-dropped %d = %d, want offered %d",
			res.Admitted, res.Rejected, res.QueueDropped, got, res.Offered)
	}
	if got := res.QueueAdmitted + res.QueueDropped; got != res.Queued {
		t.Errorf("queue-admitted %d + queue-dropped %d = %d, want queued %d",
			res.QueueAdmitted, res.QueueDropped, got, res.Queued)
	}
	if want := 100 * float64(res.Rejected) / float64(res.Offered); res.RejectionPct != want {
		t.Errorf("RejectionPct %g includes more than capacity rejections (want %g)", res.RejectionPct, want)
	}
	if want := 100 * float64(res.QueueDropped) / float64(res.Offered); res.QueueDroppedPct != want {
		t.Errorf("QueueDroppedPct %g, want %g", res.QueueDroppedPct, want)
	}
	for _, so := range res.Sessions {
		switch {
		case so.Dropped:
			if so.Server >= 0 || !so.Queued {
				t.Errorf("arrival %d: dropped outcome must be an unplaced queued entry (server %d, queued %v)",
					so.Req.ID, so.Server, so.Queued)
			}
		case so.Server >= 0 && so.Queued:
			if so.QueueWaitSec <= 0 {
				t.Errorf("arrival %d: re-admitted from the queue but wait %g <= 0", so.Req.ID, so.QueueWaitSec)
			}
		case so.Server >= 0:
			if so.QueueWaitSec != 0 {
				t.Errorf("arrival %d: direct admission charged a queue wait %g", so.Req.ID, so.QueueWaitSec)
			}
		}
	}
}

// queueTrace is the deterministic admission scenario the deadline and
// priority tests replay: one single-slot server, a long session holding
// it, two arrivals that must queue, and a late arrival whose placement
// is the decision point after the holder departs.
func queueTrace() []SessionRequest {
	return []SessionRequest{
		{ID: 0, ArriveAtSec: 0, Res: video.LR, Frames: 960},
		{ID: 1, ArriveAtSec: 1, Res: video.LR, Frames: 240},
		{ID: 2, ArriveAtSec: 2, Res: video.HR, Frames: 240},
		{ID: 3, ArriveAtSec: 60, Res: video.LR, Frames: 240},
	}
}

func runQueueTrace(t *testing.T, q QueueConfig) *Result {
	t.Helper()
	cfg := Config{
		Servers:              1,
		MaxSessionsPerServer: 1,
		Policy:               PolicyLeastLoaded,
		Approach:             "heuristic",
		Workload: Workload{
			Trace:       queueTrace(),
			DurationSec: 300,
		},
		RetainSessions: true,
		Seed:           3,
		Workers:        1,
		Queue:          q,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQueueDeadlineDrop pins the deadline semantics on the replayed
// trace: with a deadline shorter than the holder's residual service the
// queued arrivals drop; with a generous deadline the same arrivals are
// re-admitted once the holder departs.
func TestQueueDeadlineDrop(t *testing.T) {
	short := runQueueTrace(t, QueueConfig{Capacity: 4, DeadlineSec: 5})
	if short.QueueAdmitted != 0 || short.QueueDropped != 2 {
		t.Errorf("deadline 5s: want both queued arrivals dropped, got admitted %d dropped %d",
			short.QueueAdmitted, short.QueueDropped)
	}
	if so := short.Sessions[1]; !so.Dropped || so.Server != -1 {
		t.Errorf("deadline 5s: arrival 1 not recorded as dropped (server %d)", so.Server)
	}
	// The expired entries drop at arrival 3's decision point, clearing
	// the queue, and the holder has departed by then — so arrival 3 is
	// admitted directly, never queued.
	if so := short.Sessions[3]; so.Server < 0 || so.Queued {
		t.Errorf("deadline 5s: arrival 3 should admit directly after the drops (server %d, queued %v)",
			so.Server, so.Queued)
	}
	long := runQueueTrace(t, QueueConfig{Capacity: 4, DeadlineSec: 200})
	if long.QueueAdmitted == 0 {
		t.Fatalf("deadline 200s: no queued arrival was re-admitted")
	}
	// The holder (960 frames at ~24 FPS) departs around t=40; arrival 3
	// at t=60 is the decision point that re-admits from the queue, so
	// the winner's wait spans most of the holder's service time.
	var winner *SessionOutcome
	for i := range long.Sessions {
		if so := &long.Sessions[i]; so.Queued && so.Server >= 0 {
			winner = so
			break
		}
	}
	if winner == nil {
		t.Fatal("deadline 200s: no re-admitted outcome retained")
	}
	if winner.QueueWaitSec < 30 || winner.QueueWaitSec > 60 {
		t.Errorf("re-admitted arrival %d waited %.1fs, want the holder's residual service (~38-58s)",
			winner.Req.ID, winner.QueueWaitSec)
	}
}

// TestQueuePriorityOrder pins the class-priority order on the replayed
// trace: exactly one slot frees while an LR and an HR arrival wait, so
// the priority decides who gets it — HR under hr-first, the earlier LR
// under fifo and under lr-first.
func TestQueuePriorityOrder(t *testing.T) {
	for _, tc := range []struct {
		prio     QueuePriority
		admitted int // arrival ID that wins the freed slot
		dropped  int // arrival ID that waits until the horizon flush
	}{
		{QueuePrioHRFirst, 2, 1},
		{QueuePrioFIFO, 1, 2},
		{QueuePrioLRFirst, 1, 2},
	} {
		res := runQueueTrace(t, QueueConfig{Capacity: 4, DeadlineSec: 200, Priority: tc.prio})
		if so := res.Sessions[tc.admitted]; so.Server < 0 {
			t.Errorf("%s: arrival %d should win the freed slot, was not admitted", tc.prio, tc.admitted)
		}
		if so := res.Sessions[tc.dropped]; !so.Dropped {
			t.Errorf("%s: arrival %d should lose the freed slot and drop, got server %d",
				tc.prio, tc.dropped, so.Server)
		}
	}
}

// TestQueueConfigValidate pins the config surface: a zero-capacity
// queue must be the exact historical no-queue config, so deadline or
// priority without capacity is an error, not a silent no-op.
func TestQueueConfigValidate(t *testing.T) {
	base := equivConfig(PolicyLeastLoaded)
	for _, tc := range []struct {
		name string
		q    QueueConfig
		want string
	}{
		{"off", QueueConfig{}, ""},
		{"on", QueueConfig{Capacity: 4}, ""},
		{"negative capacity", QueueConfig{Capacity: -1}, "capacity"},
		{"deadline without capacity", QueueConfig{DeadlineSec: 5}, "capacity"},
		{"priority without capacity", QueueConfig{Priority: QueuePrioFIFO}, "capacity"},
		{"negative deadline", QueueConfig{Capacity: 4, DeadlineSec: -1}, "deadline"},
		{"unknown priority", QueueConfig{Capacity: 4, Priority: "shortest-first"}, "priority"},
	} {
		cfg := base
		cfg.Queue = tc.q
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// backlogSpy is a least-loaded clone that records the fleet/backlog
// observations the dispatcher delivers before each placement decision.
type backlogSpy struct {
	observations []FleetState
}

func (s *backlogSpy) Name() string { return "backlog-spy" }

func (s *backlogSpy) Place(_ SessionRequest, servers []ServerState) int {
	best, bestActive := -1, int(^uint(0)>>1)
	for _, sv := range servers {
		if !sv.Full() && sv.Active < bestActive {
			best, bestActive = sv.Index, sv.Active
		}
	}
	return best
}

func (s *backlogSpy) ObserveFleet(fs FleetState) { s.observations = append(s.observations, fs) }

// TestBacklogObserver pins the policy extension: with the queue on, a
// BacklogObserver policy sees queue depth/age before placement
// decisions (in nondecreasing time order); with the queue off it is
// never called, so pre-queue policies cannot be perturbed.
func TestBacklogObserver(t *testing.T) {
	run := func(q QueueConfig) *backlogSpy {
		spy := &backlogSpy{}
		cfg := queuedEquivConfig()
		cfg.Policy = ""
		cfg.PolicyFactory = func() Policy { return spy }
		cfg.Queue = q
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return spy
	}
	spy := run(QueueConfig{Capacity: 8, DeadlineSec: 25})
	if len(spy.observations) == 0 {
		t.Fatal("queue on: policy observed no fleet states")
	}
	maxDepth, last := 0, math.Inf(-1)
	for _, fs := range spy.observations {
		if fs.Now < last {
			t.Fatalf("observations out of order: %g after %g", fs.Now, last)
		}
		last = fs.Now
		if fs.QueueDepth > maxDepth {
			maxDepth = fs.QueueDepth
		}
		if fs.QueueCapacity != 8 {
			t.Fatalf("observed capacity %d, want 8", fs.QueueCapacity)
		}
		if fs.QueueDepth > 0 && fs.QueueOldestWaitSec <= 0 {
			t.Fatalf("depth %d with oldest wait %g", fs.QueueDepth, fs.QueueOldestWaitSec)
		}
	}
	if maxDepth == 0 {
		t.Error("queue on: policy never observed a non-empty backlog")
	}
	if spy := run(QueueConfig{}); len(spy.observations) != 0 {
		t.Errorf("queue off: policy observed %d fleet states, want none", len(spy.observations))
	}
}

// TestQueueOffFieldsInert pins the compatibility contract: with the
// queue off, every queue-related Result field is zero-valued — the
// historical result surface, bit for bit.
func TestQueueOffFieldsInert(t *testing.T) {
	res, err := Run(equivConfig(PolicyLeastLoaded))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued != 0 || res.QueueAdmitted != 0 || res.QueueDropped != 0 ||
		res.QueueDroppedPct != 0 || res.AvgQueueWaitSec != 0 ||
		res.QueueWaitDist.Count != 0 || res.TTFFDist.Count != 0 ||
		res.Windowed.QueueDepth != 0 {
		t.Errorf("queue-off run populated queue fields: %+v", res)
	}
}
