package serve

import (
	"reflect"
	"strings"
	"testing"

	"mamut/internal/experiments"
)

// elasticConfig drives every elasticity mechanism at once: a scheduled
// drain forces live migrations, the autoscaler reacts to a diurnal swing
// in both directions, and the hotspot rebalancer plans over the mutated
// fleet — the richest deterministic surface a divergence could hide in.
func elasticConfig(policy string) Config {
	return Config{
		Servers:              3,
		MaxSessionsPerServer: 3,
		Policy:               policy,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.4,
			DurationSec:    240,
			MeanSessionSec: 25,
			Curve:          LoadDiurnal,
			CurveAmplitude: 0.8,
		},
		WarmupSec: 30,
		Seed:      9,
		Workers:   1,
		EpochSec:  15,
		Rebalance: true,
		Autoscale: AutoscaleConfig{Enabled: true, MaxServers: 6},
		Drain:     []DrainEvent{{AtSec: 60, Server: 0}},
	}
}

// TestElasticDispatchEquivalence pins the subsystem's determinism
// contract: with drains, autoscaling and rebalancing all active, the
// indexed dispatcher still reproduces the scan reference bit for bit,
// for any worker count, under every built-in policy.
func TestElasticDispatchEquivalence(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			scanCfg := elasticConfig(policy)
			scanCfg.Dispatch = DispatchScan
			scan, err := Run(scanCfg)
			if err != nil {
				t.Fatal(err)
			}
			if scan.Migrations == 0 {
				t.Fatalf("config exercised no migrations")
			}
			if scan.ServersAdded == 0 || scan.ServersRemoved == 0 {
				t.Fatalf("config exercised no topology change (added %d, removed %d)",
					scan.ServersAdded, scan.ServersRemoved)
			}
			for _, workers := range []int{1, 4} {
				cfg := elasticConfig(policy)
				cfg.Dispatch = DispatchIndexed
				cfg.Workers = workers
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(scan, got) {
					t.Errorf("indexed elastic run (workers=%d) diverged from the scan reference", workers)
				}
			}
		})
	}
}

// TestElasticKnowledgeEquivalence extends the elastic determinism to
// knowledge reuse: migrated MAMUT sessions carry their harvest identity
// (and seeded-baseline subtraction) to the destination server, so the
// store contents must not depend on the dispatch path or worker count.
func TestElasticKnowledgeEquivalence(t *testing.T) {
	base := elasticConfig(PolicyLeastLoaded)
	base.Approach = experiments.MAMUT
	base.KnowledgeReuse = true
	run := func(mode DispatchMode, workers int) *Result {
		cfg := base
		cfg.Dispatch = mode
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scan := run(DispatchScan, 1)
	if scan.Migrations == 0 || scan.KnowledgeContributions == 0 {
		t.Fatalf("config exercised no migrated knowledge (migrations %d, contributions %d)",
			scan.Migrations, scan.KnowledgeContributions)
	}
	for _, workers := range []int{1, 4} {
		if got := run(DispatchIndexed, workers); !reflect.DeepEqual(scan, got) {
			t.Errorf("indexed elastic knowledge run (workers=%d) diverged from the scan reference", workers)
		}
	}
}

// TestDrainDecommission pins the drain lifecycle: the drained server
// stops admitting, its residents are live-migrated off and finish their
// full frame budgets elsewhere, and the server leaves the fleet.
func TestDrainDecommission(t *testing.T) {
	cfg := Config{
		Servers:              3,
		MaxSessionsPerServer: 4,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.25,
			DurationSec:    200,
			MeanSessionSec: 40,
		},
		Seed:           11,
		Workers:        1,
		EpochSec:       10,
		Drain:          []DrainEvent{{AtSec: 50, Server: 1}},
		RetainSessions: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Errorf("drain produced no migrations")
	}
	if res.ServersRemoved != 1 {
		t.Errorf("ServersRemoved = %d, want 1", res.ServersRemoved)
	}
	if res.ServersAdded != 0 || res.PeakServers != cfg.Servers {
		t.Errorf("drain-only run grew the fleet: added %d, peak %d", res.ServersAdded, res.PeakServers)
	}
	// No admissions land on the drained server after the decommission
	// epoch, and every admitted session — migrated or not — transcodes
	// its full budget.
	for _, so := range res.Sessions {
		if so.Server == 1 && so.Req.ArriveAtSec >= 50 {
			t.Errorf("arrival %d admitted to draining server 1 at t=%g", so.Req.ID, so.Req.ArriveAtSec)
		}
		if so.Server >= 0 && so.Frames != so.Req.Frames {
			t.Errorf("arrival %d finished %d/%d frames", so.Req.ID, so.Frames, so.Req.Frames)
		}
	}
}

// TestAutoscaleSpikeBeatsStatic is the subsystem's headline guarantee:
// under a load spike that overwhelms the configured fleet, the
// autoscaled + rebalanced service strictly beats the static fleet on
// BOTH SLO attainment and rejection rate.
func TestAutoscaleSpikeBeatsStatic(t *testing.T) {
	base := Config{
		Servers:              2,
		MaxSessionsPerServer: 5,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			// A compressed day: the diurnal peak more than doubles the
			// base rate, far past what two servers can hold.
			ArrivalRate:    0.5,
			DurationSec:    300,
			MeanSessionSec: 30,
			Curve:          LoadDiurnal,
			CurveAmplitude: 0.9,
		},
		WarmupSec: 30,
		Seed:      5,
	}
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	elastic := base
	elastic.EpochSec = 10
	elastic.Rebalance = true
	elastic.Autoscale = AutoscaleConfig{Enabled: true, MaxServers: 8}
	scaled, err := Run(elastic)
	if err != nil {
		t.Fatal(err)
	}
	if static.Rejected == 0 {
		t.Fatalf("spike does not overwhelm the static fleet (0 rejections) — the comparison is vacuous")
	}
	if scaled.ServersAdded == 0 {
		t.Fatalf("autoscaler never scaled out under the spike")
	}
	if scaled.SLOAttainedPct <= static.SLOAttainedPct {
		t.Errorf("autoscaled SLO attainment %.2f%% does not beat static %.2f%%",
			scaled.SLOAttainedPct, static.SLOAttainedPct)
	}
	if scaled.RejectionPct >= static.RejectionPct {
		t.Errorf("autoscaled rejection %.2f%% does not beat static %.2f%%",
			scaled.RejectionPct, static.RejectionPct)
	}
}

// TestElasticOffUnchanged: with no elasticity feature enabled the new
// result fields are inert — no epochs run, counters stay zero and
// PeakServers reports the configured fleet.
func TestElasticOffUnchanged(t *testing.T) {
	res, err := Run(Config{
		Servers:  2,
		Approach: experiments.Heuristic,
		Workload: Workload{ArrivalRate: 0.2, DurationSec: 60, MeanSessionSec: 20},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 || res.ServersAdded != 0 || res.ServersRemoved != 0 {
		t.Errorf("inert run reported elasticity activity: %+v", res)
	}
	if res.PeakServers != 2 {
		t.Errorf("PeakServers = %d, want 2", res.PeakServers)
	}
}

// TestElasticValidate covers the new config rejections.
func TestElasticValidate(t *testing.T) {
	base := Config{
		Workload: Workload{ArrivalRate: 0.2, DurationSec: 60},
		Servers:  2,
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"monoagent", func(c *Config) { c.Approach = experiments.MonoAgent; c.Rebalance = true }, "not migratable"},
		{"negative epoch", func(c *Config) { c.Rebalance = true; c.EpochSec = -1 }, "negative epoch"},
		{"negative stall", func(c *Config) { c.Rebalance = true; c.MigrationStallSec = -0.5 }, "negative migration stall"},
		{"drain out of range", func(c *Config) { c.Drain = []DrainEvent{{AtSec: 10, Server: 2}} }, "outside initial fleet"},
		{"drain negative time", func(c *Config) { c.Drain = []DrainEvent{{AtSec: -1, Server: 0}} }, "negative time"},
		{"autoscale bounds", func(c *Config) { c.Autoscale = AutoscaleConfig{Enabled: true, MinServers: 3} }, "outside autoscale bounds"},
		{"autoscale watermarks", func(c *Config) { c.Autoscale = AutoscaleConfig{Enabled: true, LowPct: 90, HighPct: 80} }, "watermarks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
