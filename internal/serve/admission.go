package serve

import (
	"fmt"

	"mamut/internal/core"
	"mamut/internal/video"
)

// Queued admission: the arrival path is an explicit pipeline instead of
// the monolithic place-or-reject decision the serving layer grew up
// with. Every arrival flows
//
//	arrival ──► syncPoint ──► queueStep ──► placement attempt
//	                                            │
//	               ┌────── admitted ◄───────────┤ server found
//	               │                            │ fleet full
//	               │          ┌── queued ◄──────┤ (queue has room)
//	               │          │                 │ (queue full / off)
//	               │          │        rejected ◄┘
//	               │          ▼
//	               │   bounded waiting room — FIFO within a
//	               │   resolution-class priority order
//	               │          │
//	               ◄── admitted at a later decision point
//	               │          │
//	               │   deadline passes / run ends
//	               │          ▼
//	               │   deadline-dropped
//
// syncPoint steps the fleet to the decision instant and folds every
// departure that surfaced on the way (knowledge store first, then the
// streaming aggregates, both in arrival-ID order); queueStep then drops
// queue entries whose deadline passed and re-attempts admission for the
// waiting entries against the freed capacity. Decision points are the
// instants the fleet state can have changed: every arrival (departures
// at or before it have freed slots), every elastic epoch (autoscale
// scale-out adds admittable servers, retirement removes them), and one
// final pass at the workload horizon before the post-arrival drain.
//
// The outcome taxonomy is therefore queued / admitted /
// deadline-dropped / rejected: Rejected keeps meaning capacity-rejected
// at arrival (queue full, or queueing off), a queued arrival is later
// counted admitted or dropped — never rejected — and
// Offered == Admitted + Rejected + QueueDropped always holds.
//
// Everything here runs in the serial phase of the dispatcher (between
// arrivals, at epochs, or before the drain), never during a parallel
// shard window, so queued runs keep the repo's determinism contract:
// bit-identical results for any worker count, both dispatchers and all
// shard counts. With Capacity == 0 no queue state exists and the
// dispatcher byte-reproduces the pre-queue output.

// Queued-admission defaults.
const (
	// DefaultQueueDeadlineSec is the per-entry queueing deadline when a
	// Config enables the queue without setting one: an arrival still
	// waiting this long after it arrived is dropped at the next decision
	// point.
	DefaultQueueDeadlineSec = 30.0
)

// QueuePriority orders the waiting room's admission attempts across
// resolution classes. Within a class the order is always FIFO (arrival
// ID), and admission is strictly head-of-line: the first entry of the
// priority order that fails to place ends the attempt round, so no
// waiting entry is ever overtaken.
type QueuePriority string

const (
	// QueuePrioHRFirst admits waiting HR sessions before LR ones — the
	// default: HR sessions carry the service's premium traffic and the
	// higher per-slot revenue.
	QueuePrioHRFirst QueuePriority = "hr-first"
	// QueuePrioLRFirst admits waiting LR sessions first (they fit more
	// easily and drain the backlog faster).
	QueuePrioLRFirst QueuePriority = "lr-first"
	// QueuePrioFIFO ignores classes entirely: strict arrival order.
	QueuePrioFIFO QueuePriority = "fifo"
)

// QueuePriorities lists the admission orders in deterministic order.
func QueuePriorities() []QueuePriority {
	return []QueuePriority{QueuePrioHRFirst, QueuePrioLRFirst, QueuePrioFIFO}
}

// QueueConfig bounds the fleet-level admission waiting room. The zero
// value disables queueing (drop-on-full, the pre-queue behaviour).
type QueueConfig struct {
	// Capacity is the maximum number of arrivals waiting at once; an
	// arrival that finds no server while the queue is at capacity is
	// rejected. 0 disables the queue entirely.
	Capacity int
	// DeadlineSec is the longest an entry may wait: entries whose
	// deadline has passed are dropped (QueueDropped, not Rejected) at
	// the next decision point. DefaultQueueDeadlineSec when 0.
	DeadlineSec float64
	// Priority orders admission attempts across resolution classes.
	// QueuePrioHRFirst when empty.
	Priority QueuePriority
}

// validate rejects unusable queue configs (after defaults).
func (q QueueConfig) validate() error {
	if q.Capacity < 0 {
		return fmt.Errorf("serve: negative queue capacity %d", q.Capacity)
	}
	if q.Capacity == 0 {
		if q.DeadlineSec != 0 || q.Priority != "" {
			return fmt.Errorf("serve: queue deadline/priority set but queue capacity is 0 (queueing disabled)")
		}
		return nil
	}
	if q.DeadlineSec < 0 {
		return fmt.Errorf("serve: negative queue deadline %g", q.DeadlineSec)
	}
	switch q.Priority {
	case QueuePrioHRFirst, QueuePrioLRFirst, QueuePrioFIFO:
	default:
		return fmt.Errorf("serve: unknown queue priority %q (have %v)", q.Priority, QueuePriorities())
	}
	return nil
}

// queueEntry is one arrival waiting for capacity — or, under fault
// injection, a crash-interrupted session waiting to be restored. The
// queue slice keeps entry order (ascending arrival IDs for ordinary
// entries; recovery entries join at the tail at their crash instant, so
// FIFO means first-queued-first within a class either way) and
// FIFO-within-class needs no sorting.
type queueEntry struct {
	req      SessionRequest
	measured bool
	deadline float64
	settled  bool // scratch flag for the current attempt round (admitted, restored or dropped)

	// Recovery fields (crash recovery only; see faults.go). rec is the
	// victim's resident bookkeeping at the crash, snap its last
	// checkpoint payload (nil = cold restart), seeded its warm-start
	// baseline carried across the restore, attempt/eligibleAt the
	// retry-with-backoff state, and crashAt the instant the MTTR clock
	// started.
	recovery   bool
	rec        residentRec
	snap       []byte
	seeded     *core.Snapshot
	attempt    int
	eligibleAt float64
	crashAt    float64
}

// syncPoint steps the fleet to the decision instant t and folds every
// departure surfaced on the way — knowledge store first, then the
// streaming aggregates, both in arrival-ID order. Shared by the arrival
// path, the epoch path and the final horizon pass, so every decision
// (placement, queue admission, scaling) reads the same post-departure
// fleet state discipline.
func (d *dispatcher) syncPoint(t float64) error {
	if err := d.sweepTo(t); err != nil {
		return err
	}
	if d.store != nil {
		if err := d.foldDepartures(); err != nil {
			return err
		}
	}
	d.foldStats(t)
	return nil
}

// queueStep runs one queue decision point at time t: expired entries
// drop, then waiting entries re-attempt admission against whatever
// capacity the departures (or topology changes) since the last point
// freed. Caller must have synced the fleet to t first.
func (d *dispatcher) queueStep(t float64) error {
	d.dropExpired(t)
	return d.admitQueued(t)
}

// dropExpired drops every entry whose deadline has passed (strictly
// before t: an entry is still admittable at its deadline instant),
// preserving the arrival order of the survivors.
func (d *dispatcher) dropExpired(t float64) {
	if len(d.queue) == 0 {
		return
	}
	kept := d.queue[:0]
	for _, e := range d.queue {
		if e.deadline < t {
			d.dropEntry(e)
			continue
		}
		kept = append(kept, e)
	}
	d.queue = kept
}

// dropEntry accounts one queue entry leaving without a server: an
// ordinary arrival is queue-dropped; a recovery entry is a lost session
// (it was admitted long ago — the crash, not the waiting room, took it).
func (d *dispatcher) dropEntry(e queueEntry) {
	if e.recovery {
		d.lostSess++
		if d.outcomes != nil {
			d.outcomes[e.req.ID].Lost = true
		}
		return
	}
	d.queueDropped++
	if d.outcomes != nil {
		d.outcomes[e.req.ID].Dropped = true
	}
}

// admitQueued attempts admission for the waiting entries in priority
// order (FIFO within class). The attempt is strictly head-of-line: the
// first eligible entry the policy cannot place ends the round, so a
// later entry never overtakes an earlier one of the same or a preferred
// class. Recovery entries differ in two ways: one backing off between
// retries is skipped without holding the line (it declined this round;
// nothing is overtaking it), and one that exhausts its retry budget is
// dropped in place — the entry is gone, so ending the round for it
// would starve everything behind a permanently unplaceable session.
// Draining servers admit nothing (their states report Full), and with
// the whole fleet decommissioned there is nothing to consult.
func (d *dispatcher) admitQueued(t float64) error {
	if len(d.queue) == 0 || d.liveSrv == 0 {
		return nil
	}
	settled := 0
	for _, qi := range d.queueOrder() {
		e := &d.queue[qi]
		if e.recovery && e.eligibleAt > t {
			continue
		}
		choice, err := d.choose(e.req, t)
		if err != nil {
			return err
		}
		if choice < 0 {
			if e.recovery {
				e.attempt++
				cl := d.recoveryClass(e.req.Res)
				if e.attempt >= cl.RetryMax {
					d.dropEntry(*e)
					e.settled = true
					settled++
					continue
				}
				e.eligibleAt = t + cl.BackoffSec
			}
			break
		}
		if e.recovery {
			if err := d.restoreSession(e, choice, t); err != nil {
				return err
			}
		} else {
			if err := d.admit(e.req, choice, t, e.measured); err != nil {
				return err
			}
			d.queueAdmitted++
		}
		e.settled = true
		settled++
	}
	if settled > 0 {
		kept := d.queue[:0]
		for _, e := range d.queue {
			if !e.settled {
				kept = append(kept, e)
			}
		}
		d.queue = kept
	}
	return nil
}

// queueOrder returns the indexes of the waiting entries in admission
// order: the preferred class's entries in arrival order, then the other
// class's (or plain arrival order for QueuePrioFIFO). The queue slice
// itself is already arrival-ordered.
func (d *dispatcher) queueOrder() []int {
	order := d.qOrder[:0]
	appendClass := func(hr bool) {
		for i := range d.queue {
			if (d.queue[i].req.Res == video.HR) == hr {
				order = append(order, i)
			}
		}
	}
	switch d.cfg.Queue.Priority {
	case QueuePrioFIFO:
		for i := range d.queue {
			order = append(order, i)
		}
	case QueuePrioLRFirst:
		appendClass(false)
		appendClass(true)
	default: // QueuePrioHRFirst
		appendClass(true)
		appendClass(false)
	}
	d.qOrder = order
	return order
}

// enqueue parks an arrival in the waiting room.
func (d *dispatcher) enqueue(req SessionRequest, measured bool) {
	d.queue = append(d.queue, queueEntry{
		req:      req,
		measured: measured,
		deadline: req.ArriveAtSec + d.cfg.Queue.DeadlineSec,
	})
	d.queuedTotal++
	if d.outcomes != nil {
		d.outcomes[req.ID] = SessionOutcome{Req: req, Server: -1, Measured: measured, Queued: true}
	}
}

// flushQueue drops every entry still waiting — the run ended and no
// capacity will ever free up for them.
func (d *dispatcher) flushQueue() {
	for _, e := range d.queue {
		d.dropEntry(e)
	}
	d.queue = d.queue[:0]
}

// choose asks the policy for req's server at decision instant now. A
// backlog-observing policy sees the fleet-level context first. Returns
// the chosen index, or -1 when the policy rejects or the chosen server
// is full; out-of-range returns are the contract violation the caller
// must fail loudly on, surfaced before any accounting.
func (d *dispatcher) choose(req SessionRequest, now float64) (int, error) {
	choice := -1
	if d.liveSrv > 0 {
		// With the whole fleet decommissioned (drain events can do that)
		// there is nothing to consult — and the round-robin modulus would
		// see an empty live view.
		if d.backlogObs != nil {
			d.backlogObs.ObserveFleet(d.fleetState(now))
		}
		if d.idx != nil {
			choice = d.idx.Place(req)
		} else {
			choice = d.pol.Place(req, d.refreshScanStates(req))
		}
	}
	if choice < -1 || choice >= len(d.states) {
		// A deliberate reject is -1 and every other return must be a
		// real server index: folding garbage into the rejection count
		// would silently corrupt RejectionPct for buggy policies.
		return -1, fmt.Errorf("serve: policy %q violated the placement contract: returned %d for arrival %d (valid: -1 to reject, 0..%d to place)",
			d.pol.Name(), choice, req.ID, len(d.states)-1)
	}
	if choice >= 0 && d.states[choice].Full() {
		choice = -1
	}
	return choice, nil
}

// admit places req on server choice at time startAt (the arrival instant
// for a direct admission, the decision instant for a queued one — the
// engine-side session starts then, while SLO measurement keeps keying
// off the arrival time).
func (d *dispatcher) admit(req SessionRequest, choice int, startAt float64, measured bool) error {
	fs := d.servers[choice]
	if fs.eng == nil {
		if err := d.createEngine(choice); err != nil {
			return err
		}
	}
	// Clone the class's current snapshot: the store keeps merging
	// afterwards, so the admission needs a frozen copy that serves
	// both as the controller's seed (via the WarmStart closure) and
	// as the baseline its departing contribution is measured against.
	var seedSnap *core.Snapshot
	if d.store != nil {
		if s := d.store.Seed(req.Res); s != nil {
			cp := s.Clone()
			seedSnap = &cp
			d.seeded++
		}
	}
	d.pendingSeed = seedSnap
	if _, err := fs.addSession(req, d.cfg, d.catalog, d.factory, seedSnap, startAt); err != nil {
		return err
	}
	d.admitted++
	if measured {
		d.measured++
	}
	d.admitCount[choice]++
	d.active++
	if d.queueOn && measured {
		// Queue wait folds at admission (0 for direct admissions), so the
		// sketch and the mean cover every measured admitted session.
		wait := startAt - req.ArriveAtSec
		d.qwSum += wait
		d.qwH.Add(wait)
	}
	if d.outcomes != nil {
		// Field-wise: a queued arrival's entry already carries Queued.
		// The departure fold completes it (frames, averages, SLO).
		so := &d.outcomes[req.ID]
		so.Req = req
		so.Server = choice
		so.Measured = measured
		so.QueueWaitSec = startAt - req.ArriveAtSec
	}
	if d.indexed {
		d.refreshState(choice)
		// The admission scheduled an arrival event at this very instant
		// on the server's engine; re-key it so the next sweep steps the
		// engine through the session start.
		d.scheduleServer(choice)
	}
	return nil
}

// fleetState snapshots the fleet-level decision context for a
// backlog-observing policy. The queue slice is arrival-ordered, so its
// head is the oldest waiting entry.
func (d *dispatcher) fleetState(now float64) FleetState {
	st := FleetState{
		Now:           now,
		QueueDepth:    len(d.queue),
		QueueCapacity: d.cfg.Queue.Capacity,
	}
	if len(d.queue) > 0 {
		st.QueueOldestWaitSec = now - d.queue[0].req.ArriveAtSec
	}
	return st
}
