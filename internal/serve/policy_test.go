package serve

import (
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

func states(active ...int) []ServerState {
	out := make([]ServerState, len(active))
	for i, a := range active {
		out[i] = ServerState{Index: i, Active: a, MaxSessions: 4, PowerBudgetW: 140, EstPowerW: 50}
	}
	return out
}

func TestNewPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRoundRobinRotatesBlindly(t *testing.T) {
	p, _ := NewPolicy(PolicyRoundRobin)
	s := states(4, 0, 0) // server 0 full
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := p.Place(SessionRequest{}, s); got != w {
			t.Fatalf("placement %d: got server %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedSkipsFullServers(t *testing.T) {
	p, _ := NewPolicy(PolicyLeastLoaded)
	if got := p.Place(SessionRequest{}, states(4, 3, 1)); got != 2 {
		t.Errorf("least-loaded chose %d, want 2", got)
	}
	if got := p.Place(SessionRequest{}, states(2, 2, 2)); got != 0 {
		t.Errorf("tie should go to the lowest index, got %d", got)
	}
	if got := p.Place(SessionRequest{}, states(4, 4, 4)); got != -1 {
		t.Errorf("full fleet should reject, got %d", got)
	}
}

func TestPowerAwareBalancesWatts(t *testing.T) {
	p, _ := NewPolicy(PolicyPowerAware)
	spec := platform.DefaultSpec()
	hrW, err := estSessionPowerW(spec, video.HR)
	if err != nil {
		t.Fatal(err)
	}
	lrW, err := estSessionPowerW(spec, video.LR)
	if err != nil {
		t.Fatal(err)
	}
	if hrW <= lrW {
		t.Fatalf("HR estimate %.1f W not above LR estimate %.1f W", hrW, lrW)
	}
	// Server 0 hosts one HR session, server 1 one LR session: equal
	// session counts, but server 1 has more power headroom.
	s := []ServerState{
		{Index: 0, Active: 1, HRActive: 1, MaxSessions: 4, EstPowerW: spec.IdlePowerW + hrW, EstArrivalW: hrW, PowerBudgetW: spec.PowerCapW},
		{Index: 1, Active: 1, LRActive: 1, MaxSessions: 4, EstPowerW: spec.IdlePowerW + lrW, EstArrivalW: hrW, PowerBudgetW: spec.PowerCapW},
	}
	if got := p.Place(SessionRequest{Res: video.HR}, s); got != 1 {
		t.Errorf("power-aware chose %d, want the cooler server 1", got)
	}
	// A full fleet rejects.
	s[0].Active, s[1].Active = 4, 4
	if got := p.Place(SessionRequest{}, s); got != -1 {
		t.Errorf("full fleet should reject, got %d", got)
	}
	// Over budget everywhere: still place (degrade, don't reject),
	// preferring the least overloaded server.
	s[0].Active, s[1].Active = 1, 1
	s[0].EstPowerW, s[1].EstPowerW = 200, 180
	if got := p.Place(SessionRequest{Res: video.LR}, s); got != 1 {
		t.Errorf("over-budget fallback chose %d, want 1", got)
	}
}

func TestPowerBudgetTightenedByThermal(t *testing.T) {
	spec := platform.DefaultSpec()
	capOnly := powerBudgetW(spec)
	if capOnly != spec.PowerCapW {
		t.Fatalf("budget without thermal = %g, want cap %g", capOnly, spec.PowerCapW)
	}
	spec.Thermal = platform.DefaultThermalSpec()
	withThermal := powerBudgetW(spec)
	want := (spec.Thermal.ThrottleC - spec.Thermal.AmbientC) / spec.Thermal.RthCPerW
	if want < spec.PowerCapW {
		if withThermal != want {
			t.Errorf("thermal budget = %g, want throttle steady-state %g", withThermal, want)
		}
	} else if withThermal != spec.PowerCapW {
		t.Errorf("thermal budget = %g, want cap %g", withThermal, spec.PowerCapW)
	}
}
