package serve

import (
	"fmt"

	"mamut/internal/platform"
	"mamut/internal/video"
)

// ServerState is the dispatcher's view of one server at an arrival
// instant. Occupancy reflects *actual* session lifetimes: the fleet runs
// as one event-interleaved simulation, every engine is stepped to the
// arrival instant before the decision, and departures are observed
// through the engine's OnSessionEnd hook — so a session that contention
// stretched past its nominal length still holds its slot, exactly as a
// production front-end subscribed to backend session-end events would
// see it.
type ServerState struct {
	// Index identifies the server in the fleet.
	Index int
	// Active is the number of resident sessions.
	Active int
	// HRActive and LRActive split Active by resolution class.
	HRActive, LRActive int
	// MaxSessions is the server's admission limit.
	MaxSessions int
	// EstPowerW is the estimated package power: idle plus a per-session
	// estimate for each resident session.
	EstPowerW float64
	// EstArrivalW is the estimated power the incoming session would add
	// to this server (computed from the fleet's platform spec).
	EstArrivalW float64
	// Draining marks a server being decommissioned: it admits nothing
	// (Full reports true) and its sessions are being live-migrated off.
	// Always false unless the config enables an elasticity feature.
	Draining bool
	// PowerBudgetW is the power level the server should stay under: the
	// power cap, tightened to the thermal-throttle steady-state power
	// when the thermal model is enabled.
	PowerBudgetW float64
}

// Full reports whether the server can admit nothing: at its admission
// limit, or draining toward decommission.
func (s ServerState) Full() bool { return s.Draining || s.Active >= s.MaxSessions }

// Policy decides which server of the fleet admits an arrival. Place
// returns the chosen server's Index, or -1 to reject the arrival. The
// dispatcher also rejects when the chosen server is Full. Policies may
// keep state (e.g. a rotation cursor) but must be deterministic.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Place chooses a server for the request. servers is ordered by
	// Index and never empty.
	Place(req SessionRequest, servers []ServerState) int
}

// FleetState is fleet-level context a policy may observe in addition to
// the per-server states: the admission-queue backlog at the placement
// instant. Zero-valued when queueing is off.
type FleetState struct {
	// Now is the placement instant (seconds since run start).
	Now float64
	// QueueDepth is the number of entries waiting in the admission
	// queue, before the placement being decided.
	QueueDepth int
	// QueueCapacity is the configured waiting-room bound (0 = queueing
	// off).
	QueueCapacity int
	// QueueOldestWaitSec is how long the oldest waiting entry has been
	// queued; 0 when the queue is empty.
	QueueOldestWaitSec float64
}

// BacklogObserver is an optional extension a Policy may implement to see
// fleet-level backlog state. When the admission queue is enabled the
// dispatcher calls ObserveFleet immediately before every Place decision
// (on both dispatch paths — for indexed placement the observation goes
// to the policy value backing the index); with queueing off it is never
// called. Observations arrive in decision order, so a deterministic
// policy stays deterministic.
type BacklogObserver interface {
	ObserveFleet(FleetState)
}

// Policy registry names.
const (
	// PolicyRoundRobin rotates blindly through the fleet, ignoring
	// occupancy — the classic DNS-round-robin baseline. Arrivals whose
	// turn lands on a full server are rejected even if others have room.
	PolicyRoundRobin = "round-robin"
	// PolicyLeastLoaded places on the server with the fewest resident
	// sessions, rejecting only when the whole fleet is full.
	PolicyLeastLoaded = "least-loaded"
	// PolicyPowerAware places on the non-full server with the most
	// power/thermal headroom, weighting HR sessions by their higher
	// estimated power draw; it rejects only when the whole fleet is
	// full. Under mixed HR/LR load this balances *watts*, not session
	// counts, which is what keeps every server real-time capable.
	PolicyPowerAware = "power"
)

// PolicyNames lists the registered policies in deterministic order.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyPowerAware}
}

// NewPolicy builds a fresh instance of a registered policy. Instances
// carry rotation state and must not be shared between concurrent runs.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case PolicyRoundRobin:
		return &roundRobin{}, nil
	case PolicyLeastLoaded:
		return leastLoaded{}, nil
	case PolicyPowerAware:
		return powerAware{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (have %v)", name, PolicyNames())
	}
}

type roundRobin struct{ next int }

func (*roundRobin) Name() string { return PolicyRoundRobin }

func (p *roundRobin) Place(_ SessionRequest, servers []ServerState) int {
	idx := servers[p.next%len(servers)].Index
	p.next++
	return idx
}

type leastLoaded struct{}

func (leastLoaded) Name() string { return PolicyLeastLoaded }

func (leastLoaded) Place(_ SessionRequest, servers []ServerState) int {
	best := -1
	bestActive := 0
	for _, s := range servers {
		if s.Full() {
			continue
		}
		if best == -1 || s.Active < bestActive {
			best, bestActive = s.Index, s.Active
		}
	}
	return best
}

type powerAware struct{}

func (powerAware) Name() string { return PolicyPowerAware }

func (powerAware) Place(_ SessionRequest, servers []ServerState) int {
	// Place on the non-full server with the most power headroom (budget
	// minus estimated package power), lowest index among exact ties. The
	// arrival's own estimated draw (EstArrivalW) is fleet-uniform, so it
	// shifts every candidate's headroom equally and cannot change the
	// ranking; keeping it out of the comparison means the scan and the
	// indexed headroom heap order by the very same float values. When
	// every server is over budget this naturally degrades to the least
	// overloaded one — degrading everyone a little beats rejecting
	// outright.
	best := -1
	bestHeadroom := 0.0
	for _, s := range servers {
		if s.Full() {
			continue
		}
		headroom := s.PowerBudgetW - s.EstPowerW
		if best == -1 || headroom > bestHeadroom {
			best, bestHeadroom = s.Index, headroom
		}
	}
	return best
}

// estSessionPowerW estimates the steady dynamic power one session of the
// given resolution class adds to a server built on spec, at the common
// initial operating point (mid frequency, the class's typical thread
// count, ~80% parallel efficiency). The dispatcher uses this single
// scalar per class; it does not need to be exact, only to rank HR above
// LR in proportion to their compute appetite. A spec whose DVFS ladder
// cannot resolve the operating point (a malformed custom spec) is a
// config error for the caller to surface, not a crash.
func estSessionPowerW(spec platform.Spec, res video.Resolution) (float64, error) {
	const efficiency = 0.8
	midGHz := spec.Nearest(2.6)
	vf, err := spec.VFNorm(midGHz)
	if err != nil {
		return 0, fmt.Errorf("serve: platform spec: %w", err)
	}
	threads := 6.0
	if res == video.LR {
		threads = 3.0
	}
	return spec.DynPowerPerCoreW * vf * efficiency * threads, nil
}

// powerBudgetW derives the dispatcher's per-server power budget from a
// platform spec: the power cap, tightened to the steady-state power at
// which the package would reach its throttle temperature when the thermal
// model is enabled. Staying under this level keeps the server out of
// thermal throttling, which would otherwise cut every resident session's
// service rate.
func powerBudgetW(spec platform.Spec) float64 {
	budget := spec.PowerCapW
	if spec.Thermal.Enabled {
		if p := (spec.Thermal.ThrottleC - spec.Thermal.AmbientC) / spec.Thermal.RthCPerW; p < budget {
			budget = p
		}
	}
	return budget
}
