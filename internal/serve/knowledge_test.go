package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
)

// shortSessionConfig is the KaaS regime the knowledge store exists for:
// sessions churning through the fleet with mean lifetimes far too short
// to learn from scratch (15 s ~ 360 frames, barely past exploration).
func shortSessionConfig() Config {
	return Config{
		Servers:              2,
		MaxSessionsPerServer: 6,
		Workload: Workload{
			ArrivalRate:    0.35,
			DurationSec:    240,
			MeanSessionSec: 15,
		},
		WarmupSec: 60,
		Seed:      7,
		Workers:   0,
	}
}

// TestWarmStartBeatsColdOnShortSessions is the acceptance check for
// cross-session knowledge reuse: at the same seed, the warm-started
// fleet strictly improves short-session SLO attainment over cold starts,
// because sessions seeded from departed sessions' pooled tables exploit
// learned settings instead of spending their short lives exploring.
func TestWarmStartBeatsColdOnShortSessions(t *testing.T) {
	cold, err := Run(shortSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := shortSessionConfig()
	warmCfg.KnowledgeReuse = true
	warm, err := Run(warmCfg)
	if err != nil {
		t.Fatal(err)
	}

	if cold.Measured == 0 || warm.Measured == 0 {
		t.Fatalf("no measured sessions (cold %d, warm %d)", cold.Measured, warm.Measured)
	}
	if cold.KnowledgeContributions != 0 || cold.KnowledgeSeeded != 0 {
		t.Errorf("cold run reports knowledge activity: %d contributions, %d seeded",
			cold.KnowledgeContributions, cold.KnowledgeSeeded)
	}
	if warm.KnowledgeContributions == 0 {
		t.Error("warm run harvested no departures")
	}
	if warm.KnowledgeSeeded == 0 {
		t.Error("warm run seeded no admissions")
	}
	if warm.SLOAttainedPct <= cold.SLOAttainedPct {
		t.Errorf("warm SLO attainment %.1f%% not strictly above cold %.1f%%",
			warm.SLOAttainedPct, cold.SLOAttainedPct)
	}
	// The mechanism, not just the headline number: warm sessions sustain
	// higher average throughput in both classes.
	if warm.HR.AvgFPS <= cold.HR.AvgFPS || warm.LR.AvgFPS <= cold.LR.AvgFPS {
		t.Errorf("warm avg FPS (HR %.1f, LR %.1f) not above cold (HR %.1f, LR %.1f)",
			warm.HR.AvgFPS, warm.LR.AvgFPS, cold.HR.AvgFPS, cold.LR.AvgFPS)
	}
}

// TestKnowledgeDeterministicAcrossWorkers: the knowledge fold order is
// pinned to arrival IDs at the interleaved departure instants and drain
// departures are excluded, so a knowledge-reuse run is bit-identical for
// any worker count.
func TestKnowledgeDeterministicAcrossWorkers(t *testing.T) {
	cfg := shortSessionConfig()
	cfg.Workload.DurationSec = 150
	cfg.KnowledgeReuse = true
	serial, err := Run(cfgWithWorkers(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfgWithWorkers(cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("knowledge-reuse results differ between 1 and 4 workers")
	}
	if serial.KnowledgeContributions == 0 || serial.KnowledgeSeeded == 0 {
		t.Fatalf("test exercised no knowledge activity (contributions %d, seeded %d)",
			serial.KnowledgeContributions, serial.KnowledgeSeeded)
	}
}

func TestKnowledgeReuseRequiresMAMUT(t *testing.T) {
	cfg := shortSessionConfig()
	cfg.KnowledgeReuse = true
	cfg.Approach = experiments.Heuristic
	if err := cfg.Validate(); err == nil {
		t.Error("knowledge reuse with a non-learning approach passed validation")
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted knowledge reuse with a non-learning approach")
	}
}

// TestKnowledgeStorePoolsPerClass exercises the store directly:
// contributions pool visit counts per resolution class, classes are
// isolated, and an empty class seeds cold.
func TestKnowledgeStorePoolsPerClass(t *testing.T) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	newCtrl := func(res video.Resolution, seed int64) *core.Controller {
		cfg := core.DefaultConfig(res, spec, model.MaxUsefulThreads(res))
		c, err := core.New(cfg, experiments.InitialSettings(res), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	train := func(c *core.Controller, visits int) {
		for k := core.AgentQP; k <= core.AgentDVFS; k++ {
			l := c.Learner(k)
			for a := 0; a < l.Config().Actions; a++ {
				for i := 0; i < visits; i++ {
					l.Update(3, a, 3, 1.0, 0)
				}
			}
		}
	}

	ks := NewKnowledgeStore()
	if ks.Seed(video.HR) != nil {
		t.Error("empty store seeded an HR snapshot")
	}

	a, b := newCtrl(video.HR, 1), newCtrl(video.HR, 2)
	train(a, 2)
	train(b, 3)
	if err := ks.Contribute(video.HR, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ks.Contribute(video.HR, b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := ks.Contributions(video.HR); got != 2 {
		t.Errorf("HR contributions = %d, want 2", got)
	}
	sn := ks.Seed(video.HR)
	if sn == nil {
		t.Fatal("no HR snapshot after contributions")
	}
	qpActions := a.Learner(core.AgentQP).Config().Actions
	if got := sn.Agents[core.AgentQP].VisitsSA[3*qpActions]; got != 5 {
		t.Errorf("pooled Num(3,0) = %d, want 5", got)
	}
	// LR is untouched by HR contributions.
	if ks.Seed(video.LR) != nil || ks.Contributions(video.LR) != 0 {
		t.Error("HR contributions leaked into the LR class")
	}

	// An LR snapshot has LR-sized thread tables; contributing it to the
	// LR class works even though it cannot merge with HR's.
	c := newCtrl(video.LR, 3)
	train(c, 1)
	if err := ks.Contribute(video.LR, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if ks.Seed(video.LR) == nil {
		t.Error("no LR snapshot after contribution")
	}

	// A mismatched contribution (LR tables into the HR class) errors
	// atomically: the QP agent's dimensions match across classes, but
	// the thread agent's don't, and a half-merged store would silently
	// corrupt every later warm start.
	before := ks.Seed(video.HR).Agents[core.AgentQP].VisitsSA[3*qpActions]
	if err := ks.Contribute(video.HR, c.Snapshot()); err == nil {
		t.Fatal("LR snapshot accepted into the HR class")
	}
	if got := ks.Seed(video.HR).Agents[core.AgentQP].VisitsSA[3*qpActions]; got != before {
		t.Errorf("failed contribution mutated the store: Num(3,0) %d -> %d", before, got)
	}
	if got := ks.Contributions(video.HR); got != 2 {
		t.Errorf("failed contribution counted: HR contributions = %d, want 2", got)
	}
}
