package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

func TestFaultPlanParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"crash@120:0",
		"blip@90-95:1",
		"degrade@60-180:2:0.5",
		"crash@20:1,degrade@25-40:2:0.75,blip@30-36:3",
		"crash@0.5:0,crash@1.25:7",
	} {
		plan, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
		}
		back, err := ParseFaultPlan(FormatFaultPlan(plan))
		if err != nil {
			t.Fatalf("re-parsing FormatFaultPlan of %q: %v", spec, err)
		}
		if !reflect.DeepEqual(plan, back) {
			t.Errorf("plan %q does not round-trip: %v vs %v", spec, plan, back)
		}
	}
	if plan, err := ParseFaultPlan("  "); err != nil || plan != nil {
		t.Errorf("blank plan: got (%v, %v), want (nil, nil)", plan, err)
	}
}

func TestFaultPlanParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash",                 // no spec
		"crash@",                // empty spec
		"@120:0",                // no kind
		"meteor@120:0",          // unknown kind
		"crash@120",             // missing server
		"crash@120:0:5",         // too many parts
		"crash@abc:0",           // bad time
		"crash@NaN:0",           // non-finite time
		"crash@Inf:0",           // non-finite time
		"crash@120:x",           // bad server
		"crash@120:-1",          // negative server
		"blip@90:1",             // blip needs a window
		"blip@90-95:1:0.5",      // blip takes no factor
		"degrade@60-180:2",      // degrade needs a factor
		"degrade@60-x:2:0.5",    // bad window end
		"degrade@60-180:2:oops", // bad factor
		"crash@120:0,,blip@1-2:0",
	} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted a malformed spec", spec)
		}
	}
}

// FuzzFaultPlanParse asserts the parser never panics, and that every
// plan it accepts round-trips exactly through FormatFaultPlan — and
// survives semantic validation without panicking either way.
func FuzzFaultPlanParse(f *testing.F) {
	f.Add("crash@120:0")
	f.Add("degrade@60-180:2:0.5,blip@90-95:1")
	f.Add("crash@20:1,crash@20:1")
	f.Add("blip@5-900:0")
	f.Add("degrade@1-2:0:1e308")
	f.Add("crash@-1:0,@,x@y:z")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaultPlan(spec)
		if err != nil {
			if plan != nil {
				t.Fatalf("ParseFaultPlan(%q) returned both a plan and %v", spec, err)
			}
			return
		}
		back, err := ParseFaultPlan(FormatFaultPlan(plan))
		if err != nil {
			t.Fatalf("accepted plan %q does not re-parse: %v", spec, err)
		}
		if !reflect.DeepEqual(plan, back) {
			t.Fatalf("plan %q does not round-trip: %v vs %v", spec, plan, back)
		}
		// Semantic validation must reject or accept, never panic.
		cfg := FaultConfig{Plan: plan, Recovery: FaultRecovery{Drop: true}}
		_ = cfg.validate(8, 300, 0)
	})
}

func TestFaultConfigValidate(t *testing.T) {
	base := func() Config {
		return Config{
			Servers:  4,
			Approach: "heuristic",
			Workload: Workload{ArrivalRate: 0.2, DurationSec: 100, MeanSessionSec: 10},
			Queue:    QueueConfig{Capacity: 8},
		}
	}
	plan := func(spec string) []FaultEvent {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
		}
		return p
	}
	for _, tc := range []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid chaos", func(c *Config) {
			c.Faults = FaultConfig{Plan: plan("crash@20:1,degrade@25-40:2:0.5,blip@30-36:3"), CheckpointSec: 10}
		}, ""},
		{"touching windows ok", func(c *Config) {
			c.Faults.Plan = plan("blip@10-20:0,degrade@20-30:0:0.5")
		}, ""},
		{"drop without queue ok", func(c *Config) {
			c.Queue = QueueConfig{}
			c.Faults = FaultConfig{Plan: plan("crash@20:0"), Recovery: FaultRecovery{Drop: true}}
		}, ""},
		{"server outside fleet", func(c *Config) {
			c.Faults.Plan = plan("crash@20:4")
		}, "outside initial fleet"},
		{"at horizon", func(c *Config) {
			c.Faults.Plan = plan("crash@100:0")
		}, "horizon"},
		{"window past horizon", func(c *Config) {
			c.Faults.Plan = plan("blip@90-110:0")
		}, "horizon"},
		{"inverted window", func(c *Config) {
			c.Faults.Plan = plan("blip@40-30:0")
		}, "ordered"},
		{"factor out of range", func(c *Config) {
			c.Faults.Plan = plan("degrade@10-20:0:1.5")
		}, "outside (0,1)"},
		{"overlapping windows", func(c *Config) {
			c.Faults.Plan = plan("degrade@10-30:0:0.5,blip@20-40:0")
		}, "overlap"},
		{"event after crash", func(c *Config) {
			c.Faults.Plan = plan("crash@20:0,blip@30-40:0")
		}, "already crashed"},
		{"double crash", func(c *Config) {
			c.Faults.Plan = plan("crash@20:0,crash@30:0")
		}, "already crashed"},
		{"same instant same server", func(c *Config) {
			c.Faults.Plan = plan("blip@10-20:0,degrade@10-15:0:0.5")
		}, "same instant"},
		{"crash recovery needs queue", func(c *Config) {
			c.Queue = QueueConfig{}
			c.Faults.Plan = plan("crash@20:0")
		}, "admission queue"},
		{"negative checkpoint", func(c *Config) {
			c.Faults = FaultConfig{Plan: plan("blip@10-20:0"), CheckpointSec: -1}
		}, "checkpoint"},
		{"checkpoint without plan", func(c *Config) {
			c.Faults = FaultConfig{CheckpointSec: 10}
		}, "no fault plan"},
		{"recovery without plan", func(c *Config) {
			c.Faults = FaultConfig{Recovery: FaultRecovery{Drop: true}}
		}, "no fault plan"},
		{"negative backoff", func(c *Config) {
			c.Faults = FaultConfig{Plan: plan("crash@20:0"), Recovery: FaultRecovery{HR: FaultRecoveryClass{BackoffSec: -1}}}
		}, "negative HR"},
		{"negative stall", func(c *Config) {
			c.Faults = FaultConfig{Plan: plan("crash@20:0"), Recovery: FaultRecovery{StallSec: -1}}
		}, "stall"},
		{"monoagent rejected", func(c *Config) {
			c.Approach = "monoagent"
			c.Faults.Plan = plan("blip@10-20:0")
		}, "not migratable"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestDegradedSpecFlooredAboveIdle(t *testing.T) {
	base := platform.DefaultSpec()
	spec := degradedSpec(base, 0.5)
	if spec.PowerCapW >= base.PowerCapW {
		t.Errorf("factor 0.5 did not cut the cap: %g", spec.PowerCapW)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("derated spec invalid: %v", err)
	}
	tiny := degradedSpec(base, 1e-9)
	if err := tiny.Validate(); err != nil {
		t.Errorf("floor did not keep a tiny factor valid: %v", err)
	}
	if want := base.IdlePowerW + 1; tiny.PowerCapW != want {
		t.Errorf("tiny factor cap %g, want the idle+1 floor %g", tiny.PowerCapW, want)
	}
}

// TestQueueStepDropAndReadmitSameInstant pins the queueStep ordering
// when a deadline drop and an epoch re-admission land at the same
// control instant: expired entries are dropped first (even though the
// capacity they waited for freed before their deadline — there was no
// decision point in between), then the survivors re-admit against the
// freed slot, all inside the one epoch queueStep.
func TestQueueStepDropAndReadmitSameInstant(t *testing.T) {
	cfg := Config{
		Servers:              1,
		MaxSessionsPerServer: 1,
		Policy:               PolicyLeastLoaded,
		Approach:             "heuristic",
		Workload: Workload{
			// The holder departs around t=25 (600 frames at ~24 FPS);
			// the next decision point is the epoch at t=30, where
			// arrival 1's deadline (29.5) has just passed and arrival
			// 2's (30.5) has not.
			Trace: []SessionRequest{
				{ID: 0, ArriveAtSec: 0, Res: video.LR, Frames: 600},
				{ID: 1, ArriveAtSec: 0.5, Res: video.LR, Frames: 240},
				{ID: 2, ArriveAtSec: 1.5, Res: video.LR, Frames: 240},
			},
			DurationSec: 300,
		},
		RetainSessions: true,
		Seed:           3,
		Workers:        1,
		// A pinned single-server autoscale enables the epoch schedule
		// without ever changing the fleet.
		EpochSec:  10,
		Autoscale: AutoscaleConfig{Enabled: true, MinServers: 1, MaxServers: 1},
		Queue:     QueueConfig{Capacity: 4, DeadlineSec: 29},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueDropped != 1 || res.QueueAdmitted != 1 {
		t.Fatalf("want exactly one drop and one re-admission at the epoch, got dropped %d admitted %d",
			res.QueueDropped, res.QueueAdmitted)
	}
	if so := res.Sessions[1]; !so.Dropped {
		t.Errorf("arrival 1 (deadline 29.5) should drop at the t=30 epoch, got server %d", so.Server)
	}
	if so := res.Sessions[2]; so.Server != 0 || so.QueueWaitSec != 28.5 {
		t.Errorf("arrival 2 should re-admit at the t=30 epoch (wait 28.5s), got server %d wait %g",
			so.Server, so.QueueWaitSec)
	}
}

// faultTrace is the deterministic crash-recovery scenario the
// interleaving tests replay: three single-slot servers, three holders,
// one ordinary arrival that must queue, a crash that turns holder 0
// into a recovery entry behind it, and a late arrival whose decision
// point re-admits both against the two slots that freed meanwhile.
func faultTrace(victimRes video.Resolution) []SessionRequest {
	return []SessionRequest{
		{ID: 0, ArriveAtSec: 0, Res: victimRes, Frames: 600}, // server 0; crash victim
		{ID: 1, ArriveAtSec: 1, Res: video.LR, Frames: 360},  // server 1; departs ~16
		{ID: 2, ArriveAtSec: 2, Res: video.LR, Frames: 600},  // server 2; departs ~27
		{ID: 3, ArriveAtSec: 3, Res: video.LR, Frames: 240},  // fleet full: queues
		{ID: 4, ArriveAtSec: 40, Res: video.LR, Frames: 240}, // the decision point
	}
}

func runFaultTrace(t *testing.T, victimRes video.Resolution) *Result {
	t.Helper()
	cfg := Config{
		Servers:              3,
		MaxSessionsPerServer: 1,
		Policy:               PolicyLeastLoaded,
		Approach:             "heuristic",
		Workload: Workload{
			Trace:       faultTrace(victimRes),
			DurationSec: 300,
		},
		RetainSessions: true,
		Seed:           3,
		Workers:        1,
		Queue:          QueueConfig{Capacity: 8, DeadlineSec: 250},
		Faults: FaultConfig{
			Plan: []FaultEvent{{Kind: FaultCrash, Server: 0, AtSec: 5}},
			Recovery: FaultRecovery{
				HR: FaultRecoveryClass{DeadlineSec: 100},
				LR: FaultRecoveryClass{DeadlineSec: 100},
			},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted != 1 || res.Recovered != 1 || res.Lost != 0 {
		t.Fatalf("want the one victim recovered, got interrupted %d recovered %d lost %d",
			res.Interrupted, res.Recovered, res.Lost)
	}
	so := res.Sessions[0]
	if !so.Interrupted || !so.Recovered || so.Lost {
		t.Fatalf("victim outcome not interrupted+recovered: %+v", so)
	}
	return res
}

// TestRecoveryInterleavesFIFO pins the waiting-room order with a
// recovery entry behind an ordinary arrival of the same class: FIFO by
// entry time, so the arrival that queued before the crash wins the
// lower-indexed freed server and the recovery entry takes the next.
func TestRecoveryInterleavesFIFO(t *testing.T) {
	res := runFaultTrace(t, video.LR)
	if so := res.Sessions[3]; so.Server != 1 {
		t.Errorf("ordinary arrival 3 queued first, should win server 1, got %d", so.Server)
	}
	if so := res.Sessions[0]; so.Server != 2 {
		t.Errorf("recovery of arrival 0 entered later, should take server 2, got %d", so.Server)
	}
}

// TestRecoveryInterleavesPriority pins the class-priority order across
// recovery and ordinary entries: an HR recovery entry overtakes an
// earlier-queued LR arrival under the default hr-first order — priority
// ranks classes, FIFO only orders within one.
func TestRecoveryInterleavesPriority(t *testing.T) {
	res := runFaultTrace(t, video.HR)
	if so := res.Sessions[0]; so.Server != 1 {
		t.Errorf("HR recovery should overtake the waiting LR arrival for server 1, got %d", so.Server)
	}
	if so := res.Sessions[3]; so.Server != 2 {
		t.Errorf("ordinary LR arrival should take server 2 behind the HR recovery, got %d", so.Server)
	}
}

// TestRecoveryBeatsDropOnCrash pins the headline: under a crash
// scenario at equal fleet size, checkpointed snapshot-restore through
// the admission queue strictly beats dropping interrupted sessions on
// completed sessions AND on SLO-attained sessions.
func TestRecoveryBeatsDropOnCrash(t *testing.T) {
	config := func(drop bool) Config {
		return Config{
			Servers:              6,
			MaxSessionsPerServer: 2,
			Policy:               PolicyLeastLoaded,
			Approach:             "heuristic",
			Workload: Workload{
				ArrivalRate:    0.2,
				DurationSec:    120,
				MeanSessionSec: 40,
				HRFraction:     0.4,
			},
			WarmupSec: 10,
			Seed:      7,
			Workers:   1,
			Queue:     QueueConfig{Capacity: 16},
			Faults: FaultConfig{
				// Two crashes mid-window take a third of the fleet; tight
				// checkpoints keep the snapshot rollback small, so restored
				// sessions can still make their SLO.
				Plan: []FaultEvent{
					{Kind: FaultCrash, Server: 0, AtSec: 50},
					{Kind: FaultCrash, Server: 1, AtSec: 55},
				},
				CheckpointSec: 5,
				Recovery:      FaultRecovery{Drop: drop},
			},
		}
	}
	drop, err := Run(config(true))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(config(false))
	if err != nil {
		t.Fatal(err)
	}
	if drop.Interrupted == 0 || drop.Lost != drop.Interrupted {
		t.Fatalf("drop baseline not exercising the crash (interrupted %d, lost %d)",
			drop.Interrupted, drop.Lost)
	}
	if rec.Recovered == 0 {
		t.Fatalf("recovery run restored nothing (interrupted %d)", rec.Interrupted)
	}
	completed := func(r *Result) int { return r.HR.Sessions + r.LR.Sessions }
	attained := func(r *Result) int {
		return int(math.Round(r.SLOAttainedPct / 100 * float64(r.Measured)))
	}
	if completed(rec) <= completed(drop) {
		t.Errorf("recovery does not beat drop on completed sessions: %d <= %d",
			completed(rec), completed(drop))
	}
	if attained(rec) <= attained(drop) {
		t.Errorf("recovery does not beat drop on SLO-attained sessions: %d <= %d",
			attained(rec), attained(drop))
	}
}

// chaosEquivConfig drives a loaded fleet through a crash, a degrade
// window and a blip with checkpointed queue recovery on — the in-package
// twin of the CLI chaos golden.
func chaosEquivConfig() Config {
	return Config{
		Servers:              16,
		MaxSessionsPerServer: 4,
		Policy:               PolicyLeastLoaded,
		Approach:             "heuristic",
		Workload: Workload{
			ArrivalRate:    4,
			DurationSec:    40,
			HRFraction:     0.4,
			MeanSessionSec: 10,
		},
		WarmupSec: 10,
		Seed:      7,
		Queue:     QueueConfig{Capacity: 32},
		Faults: FaultConfig{
			Plan: []FaultEvent{
				{Kind: FaultCrash, Server: 1, AtSec: 20},
				{Kind: FaultDegrade, Server: 2, AtSec: 25, EndSec: 40, Factor: 0.5},
				{Kind: FaultBlip, Server: 3, AtSec: 30, EndSec: 36},
			},
			CheckpointSec: 10,
		},
	}
}

// TestShardFaultChaosEquivalence pins the determinism contract under
// chaos: crash, degrade and blip faults with checkpointed recovery
// produce DeepEqual results across both dispatchers, worker counts and
// shard counts. (The TestShard prefix puts it under CI's -race stress
// of the sharded path.)
func TestShardFaultChaosEquivalence(t *testing.T) {
	run := func(mode DispatchMode, workers, shards int) *Result {
		cfg := chaosEquivConfig()
		cfg.Dispatch = mode
		cfg.Workers = workers
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(DispatchScan, 1, 0)
	if base.FaultsInjected != 3 || base.ServersCrashed != 1 {
		t.Fatalf("chaos config not injecting the plan (injected %d, crashed %d)",
			base.FaultsInjected, base.ServersCrashed)
	}
	if base.Interrupted == 0 || base.Recovered == 0 {
		t.Fatalf("chaos config not exercising recovery (interrupted %d, recovered %d)",
			base.Interrupted, base.Recovered)
	}
	for _, mode := range []DispatchMode{DispatchScan, DispatchIndexed} {
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{0, 4} {
				if got := run(mode, workers, shards); !reflect.DeepEqual(base, got) {
					t.Errorf("chaos run (dispatch=%s workers=%d shards=%d) diverged from the scan reference",
						mode, workers, shards)
				}
			}
		}
	}
}

// TestFaultsOffByteStability pins that a zero FaultConfig changes
// nothing: the result of a fault-free run DeepEquals the result of the
// same config before the fault fields existed (all fault counters zero,
// no availability accounting).
func TestFaultsOffFieldsInert(t *testing.T) {
	cfg := equivConfig(PolicyLeastLoaded)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected != 0 || res.ServersCrashed != 0 || res.Interrupted != 0 ||
		res.Recovered != 0 || res.Lost != 0 || res.LostWorkSec != 0 ||
		res.MTTRSec != 0 || res.AvailabilityPct != 0 || res.Windowed.AvailabilityPct != 0 {
		t.Errorf("fault-free run reported fault activity: %+v", res)
	}
}
