package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// trainedStore runs a short knowledge-reuse fleet and returns its store.
func trainedStore(t *testing.T) *KnowledgeStore {
	t.Helper()
	cfg := shortSessionConfig()
	cfg.Workload.DurationSec = 120
	cfg.KnowledgeReuse = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Knowledge == nil || res.KnowledgeContributions == 0 {
		t.Fatal("training run produced no knowledge")
	}
	return res.Knowledge
}

// TestKnowledgeExportImportRoundTrip: Export then Import restores an
// exactly equal store, and equal stores export equal bytes (the digest
// is reproducible).
func TestKnowledgeExportImportRoundTrip(t *testing.T) {
	ks := trainedStore(t)
	var buf bytes.Buffer
	if err := ks.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportKnowledge(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ks) {
		t.Error("imported store differs from exported store")
	}
	// Re-exporting the imported store reproduces the artifact bytes.
	var buf2 bytes.Buffer
	if err := got.Export(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("round-tripped export is not byte-identical")
	}
}

// TestKnowledgeImportRejectsDamage: a flipped payload byte, a future
// version and a foreign format must all be rejected before any store
// state is built.
func TestKnowledgeImportRejectsDamage(t *testing.T) {
	ks := trainedStore(t)
	var buf bytes.Buffer
	if err := ks.Export(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := buf.String()

	// Corrupt one digit inside the payload (keep JSON well-formed so
	// only the checksum can catch it).
	corrupt := strings.Replace(artifact, `"contributions":`, `"contributions":1`, 1)
	if corrupt == artifact {
		t.Fatal("corruption did not apply")
	}
	if _, err := ImportKnowledge(strings.NewReader(corrupt)); err == nil {
		t.Error("corrupted payload accepted")
	} else if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("unexpected corruption error: %v", err)
	}

	future := strings.Replace(artifact, `"version":1`, `"version":2`, 1)
	if future == artifact {
		t.Fatal("version bump did not apply")
	}
	if _, err := ImportKnowledge(strings.NewReader(future)); err == nil {
		t.Error("future version accepted")
	} else if !strings.Contains(err.Error(), "version 2 not supported") {
		t.Errorf("unexpected version error: %v", err)
	}

	foreign := strings.Replace(artifact, knowledgeFormat, "other-format", 1)
	if _, err := ImportKnowledge(strings.NewReader(foreign)); err == nil {
		t.Error("foreign format accepted")
	}

	if _, err := ImportKnowledge(strings.NewReader("not json")); err == nil {
		t.Error("non-JSON artifact accepted")
	}
}

// TestImportedKnowledgeWarmStartsFleet: a fleet seeded from an imported
// store reports seeding activity immediately and is bit-identical to a
// fleet seeded from the original in-memory store.
func TestImportedKnowledgeWarmStartsFleet(t *testing.T) {
	ks := trainedStore(t)
	var buf bytes.Buffer
	if err := ks.Export(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := ImportKnowledge(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	next := shortSessionConfig()
	next.Workload.DurationSec = 90
	next.Seed = 11
	next.KnowledgeReuse = true

	fromMemory := next
	fromMemory.Knowledge = ks
	want, err := Run(fromMemory)
	if err != nil {
		t.Fatal(err)
	}
	fromFile := next
	fromFile.Knowledge = imported
	got, err := Run(fromFile)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fleet warm-started from artifact differs from in-memory warm start")
	}
	if got.KnowledgeSeeded == 0 {
		t.Error("imported knowledge seeded no sessions")
	}

	// The caller's store must not absorb this run's contributions.
	if !reflect.DeepEqual(imported, func() *KnowledgeStore {
		k, err := ImportKnowledge(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()) {
		t.Error("Run mutated the imported store")
	}
}
