package serve

import (
	"runtime"
	"testing"

	"mamut/internal/experiments"
)

// longHorizonConfig is a small fleet under sustained churn, sized so an
// 8-hour horizon stays fast enough for a unit test.
func longHorizonConfig(horizonSec float64) Config {
	return Config{
		Servers:              4,
		MaxSessionsPerServer: 4,
		Approach:             experiments.Heuristic,
		Workload: Workload{
			ArrivalRate:    0.2,
			DurationSec:    horizonSec,
			MeanSessionSec: 10,
		},
		WarmupSec: 120,
		Seed:      17,
		Workers:   1,
	}
}

func retainedHeap(tb testing.TB) uint64 {
	tb.Helper()
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestLongHorizonConstantMemory: the default (streaming) path holds
// O(active sessions) state, so the retained heap after an 8-hour
// horizon must match the 1-hour horizon's instead of growing with the
// arrival count. Before this refactor every session's full observation
// trace and placement record were retained to the end of the run —
// roughly 60 MB over 8 hours at this load — so the bound below fails
// loudly against any regression to per-arrival retention.
func TestLongHorizonConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour horizons are slow")
	}
	run := func(horizonSec float64) (*Result, uint64) {
		res, err := Run(longHorizonConfig(horizonSec))
		if err != nil {
			t.Fatal(err)
		}
		return res, retainedHeap(t)
	}
	res1, heap1 := run(3600)
	res8, heap8 := run(8 * 3600)
	if res8.Admitted <= 4*res1.Admitted {
		t.Fatalf("8h horizon admitted %d sessions vs %d at 1h — load did not scale", res8.Admitted, res1.Admitted)
	}
	if res1.Sessions != nil || res8.Sessions != nil {
		t.Fatal("default path retained the per-arrival log")
	}
	// keep both results alive across the measurements
	runtime.KeepAlive(res1)

	const slackBytes = 8 << 20
	if heap8 > heap1+slackBytes {
		t.Errorf("retained heap grew with the horizon: %d bytes at 1h, %d at 8h (Δ %d)",
			heap1, heap8, heap8-heap1)
	}
	runtime.KeepAlive(res8)
}

// TestRetainSessionsOptIn: the per-arrival log is off by default and
// complete when requested, with every other field unchanged.
func TestRetainSessionsOptIn(t *testing.T) {
	cfg := longHorizonConfig(600)
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Sessions != nil {
		t.Fatal("default run retained sessions")
	}
	cfg.RetainSessions = true
	kept, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.Sessions) != kept.Offered {
		t.Fatalf("retained %d outcomes for %d offered arrivals", len(kept.Sessions), kept.Offered)
	}
	// Retention must not perturb the simulation or the aggregates.
	kept.Sessions = nil
	if def.SLOAttainedPct != kept.SLOAttainedPct || def.FleetAvgPowerW != kept.FleetAvgPowerW ||
		def.Admitted != kept.Admitted || def.Rejected != kept.Rejected {
		t.Error("RetainSessions changed aggregate results")
	}
}

// BenchmarkLongHorizonMemory reports the allocation footprint of a full
// service run per simulated hour of horizon. With streaming aggregation
// allocs/op grows linearly with arrivals (each session is simulated)
// while live heap stays flat; the interesting figure is B/op staying
// proportional to work, not horizon-squared retention.
func BenchmarkLongHorizonMemory(b *testing.B) {
	for _, hours := range []float64{1, 8} {
		name := "1h"
		if hours == 8 {
			name = "8h"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(longHorizonConfig(hours * 3600)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
