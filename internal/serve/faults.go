package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// Fault injection and session recovery: a deterministic fault plan
// (Config.Faults) injects server failures into the serial control phase
// of a service run, and a recovery pipeline built from the existing
// machinery — PR 7's session freeze/restore, PR 9's waiting room, the
// knowledge store's warm starts — brings interrupted sessions back.
//
// Three fault kinds:
//
//   - crash: the server dies at AtSec and never returns. Every resident
//     session's in-flight state is lost; sessions restore from their
//     last periodic checkpoint (Config.Faults.CheckpointSec) through the
//     admission queue, or are lost with the server when Recovery.Drop is
//     set.
//   - degrade: the server's firmware power cap is cut to Factor of
//     nominal for the window [AtSec, EndSec) — the platform spec is
//     swapped live (platform.Server.SetSpec via transcode.Reprofile),
//     and the dispatcher's per-server power budget shrinks with it, so
//     power-aware placement and the hotspot rebalancer steer load away
//     for the duration.
//   - blip: the server is unavailable for [AtSec, EndSec) — it admits
//     nothing and is skipped by rebalancing — but returns with its
//     sessions intact (their frames kept transcoding; only the control
//     plane lost it).
//
// Recovery is a queue-of-last-resort pipeline: a crash victim re-enters
// the PR 9 waiting room as a *recovery entry* carrying its last
// checkpoint snapshot (or nothing, for a cold restart seeded from the
// knowledge store), with per-resolution-class retry/backoff and a
// recovery deadline. Re-admission restores the snapshot on the chosen
// server — charging Recovery.StallSec to the interrupted frame, like a
// migration stall — or re-admits the session from scratch when no
// snapshot exists. When post-fault capacity cannot hold the backlog the
// waiting room sheds from the tail of the class-priority order, so
// low-priority recoveries are lost before high-priority ones.
//
// Every fault lands at a precomputed control moment of the one merged
// event order (see controlMoments), strictly in the serial phase, so
// fault runs keep the repo invariant: byte-identical results across
// worker counts, both dispatchers and all shard counts — and with no
// plan configured, no fault code runs and output byte-matches the
// pre-fault goldens.

// Fault-recovery defaults (applied per resolution class when a plan is
// configured without Recovery.Drop).
const (
	// DefaultFaultBackoffSec is the wait between failed re-admission
	// attempts of a recovery entry.
	DefaultFaultBackoffSec = 2.0
	// DefaultFaultRetryMax bounds the placement attempts per recovery
	// entry before it is lost.
	DefaultFaultRetryMax = 5
	// DefaultFaultDeadlineSec bounds the total time from crash to
	// restore; an entry still waiting this long after its crash is lost.
	DefaultFaultDeadlineSec = 30.0
	// DefaultFaultRestoreStallSec is charged to a restored session's
	// interrupted frame (state download and re-attachment), counting
	// against its SLO like a migration stall.
	DefaultFaultRestoreStallSec = 0.5
)

// FaultKind identifies one failure mode.
type FaultKind string

const (
	// FaultCrash kills a server at AtSec: in-flight frame state is lost
	// and the server never returns.
	FaultCrash FaultKind = "crash"
	// FaultDegrade cuts a server's power cap to Factor of nominal for
	// [AtSec, EndSec).
	FaultDegrade FaultKind = "degrade"
	// FaultBlip makes a server unavailable for [AtSec, EndSec); it
	// returns with its sessions intact.
	FaultBlip FaultKind = "blip"
)

// FaultKinds lists the failure modes in deterministic order.
func FaultKinds() []FaultKind { return []FaultKind{FaultCrash, FaultDegrade, FaultBlip} }

// FaultEvent is one scheduled fault. Crash is a point event (EndSec and
// Factor zero); degrade and blip are windows [AtSec, EndSec), and only
// degrade carries a Factor.
type FaultEvent struct {
	// Kind is the failure mode.
	Kind FaultKind
	// Server is the victim's index in the initial fleet.
	Server int
	// AtSec is when the fault strikes.
	AtSec float64
	// EndSec closes the window for degrade/blip (exclusive); 0 for crash.
	EndSec float64
	// Factor is the degraded power cap as a fraction of nominal, in
	// (0,1); 0 for the other kinds.
	Factor float64
}

// String formats the event in the spec syntax ParseFaultPlan accepts, so
// plans round-trip exactly.
func (ev FaultEvent) String() string {
	switch ev.Kind {
	case FaultCrash:
		return fmt.Sprintf("crash@%g:%d", ev.AtSec, ev.Server)
	case FaultBlip:
		return fmt.Sprintf("blip@%g-%g:%d", ev.AtSec, ev.EndSec, ev.Server)
	default:
		return fmt.Sprintf("degrade@%g-%g:%d:%g", ev.AtSec, ev.EndSec, ev.Server, ev.Factor)
	}
}

// ParseFaultPlan parses a comma-separated fault plan in the -faults spec
// syntax:
//
//	crash@T:SRV            server SRV dies at T
//	blip@A-B:SRV           server SRV unavailable for [A,B)
//	degrade@A-B:SRV:F      server SRV's power cap cut to F of nominal for [A,B)
//
// e.g. "crash@120:0,degrade@60-180:2:0.5,blip@90-95:1". The parse is
// purely syntactic; Config.Validate applies the semantic rules (bounds,
// overlaps, ordering against the horizon and fleet).
func ParseFaultPlan(s string) ([]FaultEvent, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var plan []FaultEvent
	for _, part := range strings.Split(s, ",") {
		ev, err := parseFaultEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		plan = append(plan, ev)
	}
	return plan, nil
}

// FormatFaultPlan renders a plan back into the spec syntax; the result
// re-parses to an equal plan.
func FormatFaultPlan(plan []FaultEvent) string {
	parts := make([]string, len(plan))
	for i, ev := range plan {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ",")
}

// parseFaultEvent parses one kind@spec entry.
func parseFaultEvent(s string) (FaultEvent, error) {
	var ev FaultEvent
	kind, rest, ok := strings.Cut(s, "@")
	if !ok || rest == "" {
		return ev, fmt.Errorf("serve: fault %q: want kind@spec (e.g. crash@120:0)", s)
	}
	parts := strings.Split(rest, ":")
	parseSrv := func(p string) error {
		srv, err := strconv.Atoi(p)
		if err != nil {
			return fmt.Errorf("serve: fault %q: server index %q: %v", s, p, err)
		}
		if srv < 0 {
			return fmt.Errorf("serve: fault %q: negative server index %d", s, srv)
		}
		ev.Server = srv
		return nil
	}
	parseSec := func(p, what string) (float64, error) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, fmt.Errorf("serve: fault %q: %s %q: %v", s, what, p, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("serve: fault %q: %s %q is not finite", s, what, p)
		}
		return v, nil
	}
	parseWindow := func(p string) error {
		a, b, ok := strings.Cut(p, "-")
		if !ok {
			return fmt.Errorf("serve: fault %q: want a start-end window (e.g. 60-180)", s)
		}
		var err error
		if ev.AtSec, err = parseSec(a, "window start"); err != nil {
			return err
		}
		if ev.EndSec, err = parseSec(b, "window end"); err != nil {
			return err
		}
		return nil
	}
	switch FaultKind(kind) {
	case FaultCrash:
		ev.Kind = FaultCrash
		if len(parts) != 2 {
			return ev, fmt.Errorf("serve: fault %q: want crash@T:SRV", s)
		}
		var err error
		if ev.AtSec, err = parseSec(parts[0], "time"); err != nil {
			return ev, err
		}
		if err := parseSrv(parts[1]); err != nil {
			return ev, err
		}
	case FaultBlip:
		ev.Kind = FaultBlip
		if len(parts) != 2 {
			return ev, fmt.Errorf("serve: fault %q: want blip@A-B:SRV", s)
		}
		if err := parseWindow(parts[0]); err != nil {
			return ev, err
		}
		if err := parseSrv(parts[1]); err != nil {
			return ev, err
		}
	case FaultDegrade:
		ev.Kind = FaultDegrade
		if len(parts) != 3 {
			return ev, fmt.Errorf("serve: fault %q: want degrade@A-B:SRV:FACTOR", s)
		}
		if err := parseWindow(parts[0]); err != nil {
			return ev, err
		}
		if err := parseSrv(parts[1]); err != nil {
			return ev, err
		}
		var err error
		if ev.Factor, err = parseSec(parts[2], "factor"); err != nil {
			return ev, err
		}
	default:
		return ev, fmt.Errorf("serve: fault %q: unknown kind %q (have %v)", s, kind, FaultKinds())
	}
	return ev, nil
}

// FaultRecoveryClass bounds one resolution class's recovery effort.
type FaultRecoveryClass struct {
	// BackoffSec is the wait between failed re-admission attempts.
	// DefaultFaultBackoffSec when 0.
	BackoffSec float64
	// RetryMax bounds the placement attempts before the session is lost.
	// DefaultFaultRetryMax when 0.
	RetryMax int
	// DeadlineSec bounds crash-to-restore; a session still waiting this
	// long after its crash is lost. DefaultFaultDeadlineSec when 0.
	DeadlineSec float64
}

// FaultRecovery configures what happens to sessions a crash interrupts.
type FaultRecovery struct {
	// Drop loses interrupted sessions with their server — the baseline
	// the recovery pipeline is measured against. With Drop unset, crash
	// victims re-enter the admission queue as recovery entries.
	Drop bool
	// HR and LR bound each class's recovery effort.
	HR, LR FaultRecoveryClass
	// StallSec is charged to a restored session's interrupted frame.
	// DefaultFaultRestoreStallSec when 0.
	StallSec float64
}

// FaultConfig schedules deterministic fault injection into a service
// run. The zero value disables it entirely (no fault code runs and
// output byte-matches fault-free builds).
type FaultConfig struct {
	// Plan is the fault schedule (see ParseFaultPlan for the CLI spec
	// syntax). Empty disables fault injection.
	Plan []FaultEvent
	// CheckpointSec periodically freezes every resident session's state
	// (transcode.EncodeSessionState) so crash victims restore from their
	// last snapshot instead of restarting cold. 0 disables checkpoints:
	// crash victims restart from scratch, warm-seeded from the knowledge
	// store when Config.KnowledgeReuse is on.
	CheckpointSec float64
	// Recovery configures the crash-recovery pipeline.
	Recovery FaultRecovery
}

// Enabled reports whether any fault is scheduled.
func (f FaultConfig) Enabled() bool { return len(f.Plan) > 0 }

// hasCrash reports whether the plan schedules at least one crash.
func (f FaultConfig) hasCrash() bool {
	for _, ev := range f.Plan {
		if ev.Kind == FaultCrash {
			return true
		}
	}
	return false
}

// withDefaults resolves the zero recovery fields (plan configured only).
func (f FaultConfig) withDefaults() FaultConfig {
	if !f.Enabled() || f.Recovery.Drop {
		return f
	}
	r := &f.Recovery
	for _, cl := range []*FaultRecoveryClass{&r.HR, &r.LR} {
		if cl.BackoffSec == 0 {
			cl.BackoffSec = DefaultFaultBackoffSec
		}
		if cl.RetryMax == 0 {
			cl.RetryMax = DefaultFaultRetryMax
		}
		if cl.DeadlineSec == 0 {
			cl.DeadlineSec = DefaultFaultDeadlineSec
		}
	}
	if r.StallSec == 0 {
		r.StallSec = DefaultFaultRestoreStallSec
	}
	return f
}

// validate applies the semantic plan rules (after defaults): every event
// in bounds, no overlapping windows or post-crash events per server, and
// a recovery path that can actually run.
func (f FaultConfig) validate(servers int, horizon float64, queueCapacity int) error {
	if !f.Enabled() {
		if f.CheckpointSec != 0 || f.Recovery != (FaultRecovery{}) {
			return fmt.Errorf("serve: fault checkpoint/recovery set but no fault plan (fault injection disabled)")
		}
		return nil
	}
	if f.CheckpointSec < 0 {
		return fmt.Errorf("serve: negative fault checkpoint interval %g", f.CheckpointSec)
	}
	for cls, cl := range map[string]FaultRecoveryClass{"HR": f.Recovery.HR, "LR": f.Recovery.LR} {
		if cl.BackoffSec < 0 || cl.RetryMax < 0 || cl.DeadlineSec < 0 {
			return fmt.Errorf("serve: negative %s fault-recovery bound (backoff %g, retries %d, deadline %g)",
				cls, cl.BackoffSec, cl.RetryMax, cl.DeadlineSec)
		}
	}
	if f.Recovery.StallSec < 0 {
		return fmt.Errorf("serve: negative fault restore stall %g", f.Recovery.StallSec)
	}
	for _, ev := range f.Plan {
		switch ev.Kind {
		case FaultCrash, FaultDegrade, FaultBlip:
		default:
			return fmt.Errorf("serve: fault %v: unknown kind %q (have %v)", ev, ev.Kind, FaultKinds())
		}
		if ev.Server < 0 || ev.Server >= servers {
			return fmt.Errorf("serve: fault %v: server %d outside initial fleet 0..%d", ev, ev.Server, servers-1)
		}
		if ev.AtSec < 0 || ev.AtSec >= horizon {
			return fmt.Errorf("serve: fault %v: time %g outside the [0,%g) horizon", ev, ev.AtSec, horizon)
		}
		if ev.Kind == FaultCrash {
			if ev.EndSec != 0 || ev.Factor != 0 {
				return fmt.Errorf("serve: fault %v: crash takes no window or factor", ev)
			}
			continue
		}
		if ev.EndSec <= ev.AtSec || ev.EndSec > horizon {
			return fmt.Errorf("serve: fault %v: window [%g,%g) must be ordered and end by the %g horizon",
				ev, ev.AtSec, ev.EndSec, horizon)
		}
		if ev.Kind == FaultDegrade {
			if ev.Factor <= 0 || ev.Factor >= 1 {
				return fmt.Errorf("serve: fault %v: degrade factor %g outside (0,1)", ev, ev.Factor)
			}
		} else if ev.Factor != 0 {
			return fmt.Errorf("serve: fault %v: blip takes no factor", ev)
		}
	}
	// Per-server ordering: sort by start time and walk consecutive pairs.
	// Nothing may follow a crash, windows may not overlap (touching —
	// one window ending exactly where the next starts — is fine), and
	// two events may not strike the same server at the same instant.
	byServer := map[int][]FaultEvent{}
	for _, ev := range f.Plan {
		byServer[ev.Server] = append(byServer[ev.Server], ev)
	}
	for _, evs := range byServer {
		sort.Slice(evs, func(i, j int) bool { return evs[i].AtSec < evs[j].AtSec })
		for i := 1; i < len(evs); i++ {
			prev, next := evs[i-1], evs[i]
			if prev.Kind == FaultCrash {
				return fmt.Errorf("serve: fault %v: server %d already crashed at %g", next, next.Server, prev.AtSec)
			}
			if next.AtSec == prev.AtSec {
				return fmt.Errorf("serve: faults %v and %v strike server %d at the same instant", prev, next, prev.Server)
			}
			if next.AtSec < prev.EndSec {
				return fmt.Errorf("serve: faults %v and %v overlap on server %d", prev, next, prev.Server)
			}
		}
	}
	if f.hasCrash() && !f.Recovery.Drop && queueCapacity <= 0 {
		return fmt.Errorf("serve: crash recovery re-enters sessions through the admission queue; set Queue.Capacity (or Recovery.Drop to lose interrupted sessions)")
	}
	return nil
}

// faultSnap is one session's last periodic checkpoint, keyed by arrival
// ID in dispatcher.snaps; at holds the checkpoint instant for the
// lost-work accounting.
type faultSnap struct {
	data []byte
	at   float64
}

// recoveryClass resolves the recovery bounds for a resolution class.
func (d *dispatcher) recoveryClass(res video.Resolution) FaultRecoveryClass {
	if res == video.HR {
		return d.cfg.Faults.Recovery.HR
	}
	return d.cfg.Faults.Recovery.LR
}

// --- control timeline -------------------------------------------------

// momentKind orders control moments landing at the same instant: epochs
// first (topology decisions precede faults, matching the pre-fault epoch
// loop exactly when no faults are scheduled), then checkpoints (a
// snapshot taken at the instant of a crash is taken *before* it — the
// operator scheduling both deserves the save), then faults.
type momentKind int

const (
	momentEpoch momentKind = iota
	momentCheckpoint
	momentFault
)

// controlMoment is one precomputed entry of the run's control timeline:
// an elastic epoch, a periodic checkpoint pass, or a fault event edge
// (start, or the end of a degrade/blip window).
type controlMoment struct {
	at    float64
	kind  momentKind
	ev    FaultEvent // momentFault only
	start bool       // fault window start (crash counts as a start)
}

// controlMoments precomputes the run's whole control timeline: every
// epoch instant (exactly the floats the retired epoch loop generated),
// every checkpoint instant, and both edges of every fault window, sorted
// by time with a fixed tie order. Run consumes the timeline interleaved
// with the arrival stream — a moment due at an arrival's instant runs
// before the arrival — so every control action lands at a deterministic
// point of the one merged event order. An empty timeline reduces Run to
// the plain arrival loop.
func (d *dispatcher) controlMoments() []controlMoment {
	var ms []controlMoment
	horizon := d.cfg.Workload.DurationSec
	if d.epochSec > 0 {
		for k := 1; ; k++ {
			t := float64(k) * d.epochSec
			if t > horizon {
				break
			}
			ms = append(ms, controlMoment{at: t, kind: momentEpoch})
		}
	}
	if d.faultsOn {
		if cp := d.cfg.Faults.CheckpointSec; cp > 0 {
			for k := 1; ; k++ {
				t := float64(k) * cp
				if t > horizon {
					break
				}
				ms = append(ms, controlMoment{at: t, kind: momentCheckpoint})
			}
		}
		for _, ev := range d.cfg.Faults.Plan {
			ms = append(ms, controlMoment{at: ev.AtSec, kind: momentFault, ev: ev, start: true})
			if ev.Kind != FaultCrash {
				ms = append(ms, controlMoment{at: ev.EndSec, kind: momentFault, ev: ev})
			}
		}
	}
	sort.SliceStable(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.start != b.start {
			// A window ending exactly where another starts on the same
			// server releases it first.
			return !a.start
		}
		return a.ev.Server < b.ev.Server
	})
	return ms
}

// control executes one timeline moment.
func (d *dispatcher) control(m controlMoment) error {
	switch m.kind {
	case momentEpoch:
		return d.epoch(m.at)
	case momentCheckpoint:
		return d.checkpointFleet(m.at)
	default:
		return d.applyFault(m)
	}
}

// applyFault executes one fault edge: sync the fleet to the instant,
// apply the fault, then run a queue decision point — a crash just
// enqueued recovery entries that want the surviving capacity, and a
// window end just returned some.
func (d *dispatcher) applyFault(m controlMoment) error {
	t := m.at
	if err := d.syncPoint(t); err != nil {
		return err
	}
	if m.start {
		d.faultCount++
	}
	var err error
	switch {
	case m.ev.Kind == FaultCrash:
		d.crashServer(t, m.ev.Server)
	case m.ev.Kind == FaultBlip && m.start:
		d.blipStart(m.ev.Server)
	case m.ev.Kind == FaultBlip:
		d.blipEnd(m.ev)
	case m.start:
		err = d.degradeStart(t, m.ev)
	default:
		err = d.degradeEnd(t, m.ev.Server)
	}
	if err != nil {
		return err
	}
	if d.queueOn {
		return d.queueStep(t)
	}
	return nil
}

// --- crash ------------------------------------------------------------

// crashServer kills server srv at time t: every resident session is
// interrupted (re-queued for recovery, or lost under Recovery.Drop), the
// engine is torn down, and the server leaves the fleet for good. The
// waiting room then sheds from the tail of the class-priority order if
// the crash pushed it over capacity.
func (d *dispatcher) crashServer(t float64, srv int) {
	fs := d.servers[srv]
	if fs.retired {
		return // already out of the fleet (drained empty before the fault)
	}
	horizon := d.cfg.Workload.DurationSec
	drop := d.cfg.Faults.Recovery.Drop || !d.queueOn
	for _, id := range sessionsByArrival(fs, len(fs.resident)) {
		rec := fs.resident[id]
		d.interrupted++
		// The span served before the crash is real busy time on this
		// server; the restored remainder accrues on the new server.
		lo, hi := rec.startAt, t
		if lo < d.cfg.WarmupSec {
			lo = d.cfg.WarmupSec
		}
		if hi > horizon {
			hi = horizon
		}
		if hi > lo {
			d.busy[srv] += hi - lo
		}
		snap, hasSnap := d.snaps[rec.reqID]
		snapAt := rec.startAt
		if hasSnap {
			snapAt = snap.at
			delete(d.snaps, rec.reqID)
		}
		if t > snapAt {
			d.lostWorkSec += t - snapAt
		}
		if d.outcomes != nil {
			d.outcomes[rec.reqID].Interrupted = true
		}
		if drop {
			d.lostSess++
			if d.outcomes != nil {
				d.outcomes[rec.reqID].Lost = true
			}
			continue
		}
		cl := d.recoveryClass(rec.res)
		var seeded *core.Snapshot
		if fs.harvest != nil {
			if he, ok := fs.harvest[id]; ok {
				seeded = he.seeded
			}
		}
		// The recovery entry joins the waiting room at the crash instant
		// — behind the arrivals already waiting in its class, ahead of
		// later ones — eligible immediately (backoff starts only after a
		// failed attempt) and bounded by the class recovery deadline.
		d.queue = append(d.queue, queueEntry{
			req:        rec.req,
			measured:   rec.measured,
			deadline:   t + cl.DeadlineSec,
			recovery:   true,
			rec:        rec,
			snap:       snap.data,
			seeded:     seeded,
			eligibleAt: t,
			crashAt:    t,
		})
	}
	// Tear the server down. The engine reference is dropped (its heap
	// entries go stale through the +Inf key and are discarded on pop);
	// the power integrator and counters keep their history for the final
	// report. Crashes are reported separately from drain decommissions.
	victims := fs.cur
	fs.resident = make(map[int]residentRec)
	if fs.harvest != nil {
		fs.harvest = make(map[int]harvestEntry)
	}
	fs.cur, fs.hr, fs.lr = 0, 0, 0
	d.active -= victims
	if fs.eng != nil {
		fs.eng = nil
		if fs.sh != nil {
			fs.sh.engines--
		}
	}
	fs.spec = nil
	fs.budgetW = d.budget
	if fs.blipped {
		fs.blipped = false
		d.blippedCnt--
	}
	fs.decom = true
	fs.retired = true
	fs.crashed = true
	d.liveSrv--
	d.crashedSrv++
	if d.indexed {
		d.nextEvt[srv] = math.Inf(1)
	}
	if t < horizon {
		d.unavailSec += horizon - t
	}
	d.refreshState(srv)
	d.rebuildIndex()
	// Shed if the recovery entries pushed the waiting room over
	// capacity: drop from the tail of the class-priority order, so the
	// lowest-priority latest entries go first (Fu & van der Schaar-style
	// priority shedding when capacity < demand).
	if over := len(d.queue) - d.cfg.Queue.Capacity; over > 0 && d.queueOn {
		order := d.queueOrder()
		doomed := make(map[int]bool, over)
		for k := len(order) - 1; k >= 0 && over > 0; k-- {
			doomed[order[k]] = true
			over--
		}
		kept := d.queue[:0]
		for qi := range d.queue {
			if doomed[qi] {
				d.dropEntry(d.queue[qi])
			} else {
				kept = append(kept, d.queue[qi])
			}
		}
		d.queue = kept
	}
}

// --- blip -------------------------------------------------------------

// blipStart takes the server out of service for the window: it admits
// nothing (its state reports Draining, hence Full) and rebalancing skips
// it, but its engine keeps transcoding — the sessions never notice.
func (d *dispatcher) blipStart(srv int) {
	fs := d.servers[srv]
	if fs.retired {
		return
	}
	fs.blipped = true
	d.blippedCnt++
	d.refreshState(srv)
}

// blipEnd returns the server to service and charges the window to the
// availability accounting.
func (d *dispatcher) blipEnd(ev FaultEvent) {
	fs := d.servers[ev.Server]
	if !fs.blipped {
		return // retired (or crashed) while blipped; nothing to restore
	}
	fs.blipped = false
	d.blippedCnt--
	d.unavailSec += ev.EndSec - ev.AtSec
	d.refreshState(ev.Server)
}

// --- degrade ----------------------------------------------------------

// degradedSpec derates a platform spec's power cap to factor of nominal,
// floored just above idle so the spec stays valid.
func degradedSpec(spec platform.Spec, factor float64) platform.Spec {
	spec.PowerCapW *= factor
	if floor := spec.IdlePowerW + 1; spec.PowerCapW < floor {
		spec.PowerCapW = floor
	}
	return spec
}

// degradeStart cuts the server's power cap for the window: the engine's
// platform spec is swapped live (future frame completions meter against
// the derated cap) and the dispatcher's per-server power budget shrinks,
// steering power-aware placement and the hotspot rebalancer away. The
// engine is advanced to the fault instant first so the settlement anchor
// is identical on both dispatch paths.
func (d *dispatcher) degradeStart(t float64, ev FaultEvent) error {
	fs := d.servers[ev.Server]
	if fs.retired {
		return nil
	}
	dspec := degradedSpec(d.spec, ev.Factor)
	fs.spec = &dspec
	fs.budgetW = powerBudgetW(dspec)
	if fs.eng != nil {
		if err := fs.eng.AdvanceTo(t); err != nil {
			return err
		}
		if err := fs.eng.Reprofile(dspec); err != nil {
			return fmt.Errorf("serve: degrade server %d: %w", ev.Server, err)
		}
		if d.indexed {
			d.scheduleServer(ev.Server)
		}
	}
	d.refreshState(ev.Server)
	return nil
}

// degradeEnd restores the nominal spec and budget at the window close.
func (d *dispatcher) degradeEnd(t float64, srv int) error {
	fs := d.servers[srv]
	if fs.spec == nil {
		return nil // retired while degraded, or the start never applied
	}
	fs.spec = nil
	fs.budgetW = d.budget
	if fs.eng != nil && !fs.retired {
		if err := fs.eng.AdvanceTo(t); err != nil {
			return err
		}
		if err := fs.eng.Reprofile(d.spec); err != nil {
			return fmt.Errorf("serve: restore server %d spec: %w", srv, err)
		}
		if d.indexed {
			d.scheduleServer(srv)
		}
	}
	d.refreshState(srv)
	return nil
}

// --- checkpoint & restore ---------------------------------------------

// checkpointFleet freezes every resident session's state at time t and
// stores the encoded snapshot for crash recovery. Each session is
// extracted, encoded, and injected straight back: the same-engine
// round-trip takes the engine's undo fast path, so the engine state
// after the pass is bit-identical to never having checkpointed — the
// snapshot is a pure read. Sessions whose state cannot be extracted are
// skipped (they simply have no snapshot to restore from); a failed
// re-inject would leave the engine inconsistent and fails the run.
func (d *dispatcher) checkpointFleet(t float64) error {
	if err := d.syncPoint(t); err != nil {
		return err
	}
	for i, fs := range d.servers {
		if fs.eng == nil || len(fs.resident) == 0 || fs.retired {
			continue
		}
		// Align the engine clock with the checkpoint instant so both
		// dispatch paths extract from identical settlement anchors.
		if err := fs.eng.AdvanceTo(t); err != nil {
			return err
		}
		for _, id := range sessionsByArrival(fs, len(fs.resident)) {
			rec, ok := fs.resident[id]
			if !ok {
				continue // departed during the AdvanceTo above
			}
			st, err := fs.eng.ExtractSession(id)
			if err != nil {
				continue
			}
			data, encErr := transcode.EncodeSessionState(st)
			if _, err := fs.eng.InjectSession(nil, nil, st); err != nil {
				return fmt.Errorf("serve: checkpoint server %d session %d: %w", i, id, err)
			}
			if encErr == nil {
				d.snaps[rec.reqID] = faultSnap{data: data, at: t}
			}
		}
		if d.indexed {
			d.scheduleServer(i)
		}
	}
	return nil
}

// restoreSession re-admits one recovery entry on server choice at time
// t: from its checkpoint snapshot when it has one (the session resumes
// mid-stream, charged Recovery.StallSec on the interrupted frame), or
// from scratch otherwise (warm-seeded from the knowledge store like any
// fresh admission, keeping its original arrival identity). Recovery is
// migration-like on the books: the session was already counted admitted
// and measured at its original admission, so only the recovery counters
// and the MTTR sketch move here.
func (d *dispatcher) restoreSession(e *queueEntry, choice int, t float64) error {
	fs := d.servers[choice]
	if fs.eng == nil {
		if err := d.createEngine(choice); err != nil {
			return err
		}
	}
	if err := fs.eng.AdvanceTo(t); err != nil {
		return err
	}
	rec := e.rec
	restored := false
	if len(e.snap) > 0 {
		if st, err := transcode.DecodeSessionState(e.snap); err == nil {
			st.StallSec = d.cfg.Faults.Recovery.StallSec
			// Fresh shells, exactly like a migration: InjectSession
			// restores their mid-stream state from the payload.
			seq, err := d.catalog.Get(rec.seq)
			if err != nil {
				return err
			}
			gsrc, err := video.NewStatefulGenerator(seq, 0)
			if err != nil {
				return err
			}
			ctrlSrc := xrand.NewSource(0)
			d.pendingSeed = nil
			ctrl, err := d.factory(rec.res, experiments.InitialSettings(rec.res), rand.New(ctrlSrc))
			if err != nil {
				return err
			}
			ctrl = wrapStateful(ctrl, ctrlSrc)
			newID, err := fs.eng.InjectSession(gsrc, ctrl, st)
			if err != nil {
				return fmt.Errorf("serve: restore session %d on server %d: %w", rec.reqID, choice, err)
			}
			// Busy time restarts here: the pre-crash span was credited
			// to the crashed server at the crash.
			rec.startAt = t
			fs.resident[newID] = rec
			fs.cur++
			if fs.cur > fs.peak {
				fs.peak = fs.cur
			}
			if rec.res == video.HR {
				fs.hr++
			} else {
				fs.lr++
			}
			if fs.harvest != nil {
				if mc := mamutController(ctrl); mc != nil {
					// Keep the original seed baseline: the session's
					// eventual contribution must subtract what it was
					// seeded with, not re-donate it.
					fs.harvest[newID] = harvestEntry{reqID: rec.reqID, res: rec.res, ctrl: mc, seeded: e.seeded}
				}
			}
			restored = true
		}
	}
	if !restored {
		// Cold restart: a fresh admission under the original arrival
		// identity, warm-seeded from the knowledge store when on.
		var seedSnap *core.Snapshot
		if d.store != nil {
			if s := d.store.Seed(rec.res); s != nil {
				cp := s.Clone()
				seedSnap = &cp
				d.seeded++
			}
		}
		d.pendingSeed = seedSnap
		id, err := fs.addSession(e.req, d.cfg, d.catalog, d.factory, seedSnap, t)
		if err != nil {
			return err
		}
		// Keep the original first-frame stamp: time-to-first-frame is a
		// user-facing latency and the user saw their first frame before
		// the crash.
		r := fs.resident[id]
		r.firstFrameAt = rec.firstFrameAt
		fs.resident[id] = r
	}
	d.active++
	d.recovered++
	d.mttrSum += t - e.crashAt
	d.recH.Add(t - e.crashAt)
	if d.outcomes != nil {
		so := &d.outcomes[rec.reqID]
		so.Recovered = true
		so.Server = choice
	}
	if d.indexed {
		d.refreshState(choice)
		d.scheduleServer(choice)
	}
	return nil
}
