package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mamut/internal/core"
	"mamut/internal/experiments"
	"mamut/internal/transcode"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// Fleet elasticity: live session migration, server drain/decommission and
// autoscaling. The dispatcher runs a fixed epoch schedule interleaved with
// the arrival stream (an epoch due at an arrival's instant fires before
// the arrival, and epochs continue past the last arrival to the workload
// horizon); at each epoch it steps the fleet to the epoch instant, applies
// scheduled drains and the autoscaler's watermark decisions, migrates
// sessions off draining servers, and lets the Rebalancer plan hotspot
// migrations. Everything happens in the sequential phase of the run —
// never during the concurrent post-horizon drain — and sessions are always
// selected in arrival-ID order, so results stay bit-identical for any
// worker count and both dispatcher implementations.
//
// A migration moves the live session — frame cursor, playlist/content
// process, controller decision state, every rng stream, accumulators — via
// transcode.ExtractSession/InjectSession, paying Config.MigrationStallSec
// of in-flight-frame stall on the destination. The session keeps its
// arrival identity: its eventual departure record (and therefore its SLO
// outcome, busy time and per-class statistics) is attributed to the server
// it departs from.

// Elasticity defaults.
const (
	// DefaultEpochSec is the control-epoch interval when a Config enables
	// an elasticity feature without setting EpochSec.
	DefaultEpochSec = 30.0
	// DefaultMigrationStallSec is the per-migration stall penalty: the
	// in-flight frame of a migrated session is delayed this many real
	// seconds (state transfer and stream re-attachment), counting against
	// the SLO like any slow frame.
	DefaultMigrationStallSec = 0.25
)

// RebalancerPowerHotspot names the built-in rebalancer Config.Rebalance
// enables: every epoch it plans one migration away from each server whose
// estimated package power exceeds its power budget, onto the server with
// the most power headroom.
const RebalancerPowerHotspot = "power-hotspot"

// Move directs one rebalancing step: migrate Sessions resident sessions
// from server From to server To. The dispatcher executes moves in plan
// order, picks the sessions with the lowest arrival IDs, and caps each
// move at the destination's free capacity; moves onto full or draining
// servers are skipped, not errors (the plan may be deliberately greedy).
type Move struct {
	From, To int
	Sessions int
}

// Rebalancer plans live session migrations on the dispatcher's epoch
// schedule. Implementations must be deterministic: the plan may depend
// only on the arguments (the dispatcher's two implementations and any
// worker count present identical fleet states, and the results are
// required to stay byte-identical).
type Rebalancer interface {
	// Name returns the rebalancer's registry name.
	Name() string
	// Plan inspects the in-service fleet (ordered by Index; draining
	// servers included with Draining set, decommissioned servers absent)
	// and returns the migrations to perform at this epoch.
	Plan(now float64, servers []ServerState) []Move
}

// powerHotspot is the built-in Rebalancer: one session per epoch away
// from each over-budget server, onto the coolest server with room —
// mirroring the power-aware placement policy's ranking quantity so the
// two pull the fleet toward the same equilibrium.
type powerHotspot struct{}

// Name implements Rebalancer.
func (powerHotspot) Name() string { return RebalancerPowerHotspot }

// Plan implements Rebalancer.
func (powerHotspot) Plan(_ float64, servers []ServerState) []Move {
	var moves []Move
	for _, s := range servers {
		if s.Draining || s.Active == 0 || s.EstPowerW <= s.PowerBudgetW {
			continue
		}
		// Coolest target with room, lowest index among ties (the
		// power-aware scan's argmax-with-first-wins discipline).
		best, bestHead := -1, 0.0
		for _, t := range servers {
			if t.Full() || t.Index == s.Index {
				continue
			}
			if head := t.PowerBudgetW - t.EstPowerW; best == -1 || head > bestHead {
				best, bestHead = t.Index, head
			}
		}
		// Only migrate toward genuinely cooler ground: a target no better
		// than the hotspot itself would just move the hotspot around.
		if best == -1 || bestHead <= s.PowerBudgetW-s.EstPowerW {
			continue
		}
		moves = append(moves, Move{From: s.Index, To: best, Sessions: 1})
	}
	return moves
}

// AutoscaleConfig parametrises target-utilization fleet autoscaling.
// Utilization is resident sessions as a share of the admittable fleet's
// capacity (non-draining in-service servers x the admission limit),
// evaluated at each control epoch: above HighPct the fleet scales out to
// the size that brings utilization back to TargetUtilPct (bounded by
// MaxServers); below LowPct it drains the highest-index admittable
// server (one per epoch, bounded by MinServers), which is then emptied
// by migration and decommissioned once empty.
type AutoscaleConfig struct {
	// Enabled turns the autoscaler on.
	Enabled bool
	// MinServers and MaxServers bound the in-service fleet size.
	// Defaults: 1 and 4x the initial fleet.
	MinServers, MaxServers int
	// TargetUtilPct is the utilization scale-outs size the fleet for.
	// Default 70.
	TargetUtilPct float64
	// HighPct and LowPct are the scale-out/scale-in watermarks.
	// Defaults 85 and 40.
	HighPct, LowPct float64
}

// DrainEvent schedules one server decommission: at the first control
// epoch at or after AtSec the server stops admitting, its sessions are
// migrated off (in arrival-ID order, as capacity allows), and it is
// removed from the fleet once empty.
type DrainEvent struct {
	// AtSec is the service time the decommission is requested at.
	AtSec float64
	// Server is the index of the server to decommission (an initial
	// fleet index, 0..Servers-1).
	Server int
}

// Elastic reports whether the config enables any elasticity feature
// (rebalancing, autoscaling or scheduled drains) — and therefore the
// epoch schedule that drives them.
func (c Config) Elastic() bool {
	return c.Rebalance || c.RebalancerFactory != nil || c.Autoscale.Enabled || len(c.Drain) > 0
}

// --- stateful controller wrapper -------------------------------------

// statefulMAMUT couples a core.Controller with the rng source its
// exploration draws from, implementing transcode.StatefulController so
// MAMUT sessions are migratable: the resume payload (settings, learner
// tables, in-flight pending update) and the rng stream position together
// are the controller's complete state. Wrapping is transparent — the
// embedded controller sees the identical rng stream it would own
// directly, so non-elastic results are unchanged.
type statefulMAMUT struct {
	*core.Controller
	src *xrand.Source
}

// mamutCtrlState is the wrapper's serialised form.
type mamutCtrlState struct {
	Resume json.RawMessage `json:"resume"`
	RNG    uint64          `json:"rng"`
}

// ControllerState implements transcode.StatefulController.
func (c *statefulMAMUT) ControllerState() ([]byte, error) {
	resume, err := c.MarshalResumeState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(mamutCtrlState{Resume: resume, RNG: c.src.State()})
}

// RestoreControllerState implements transcode.StatefulController.
func (c *statefulMAMUT) RestoreControllerState(data []byte) error {
	var st mamutCtrlState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("serve: restore mamut controller: %w", err)
	}
	if len(st.Resume) == 0 {
		return fmt.Errorf("serve: restore mamut controller: missing resume payload")
	}
	if err := c.RestoreResumeState(st.Resume); err != nil {
		return err
	}
	c.src.SetState(st.RNG)
	return nil
}

var _ transcode.StatefulController = (*statefulMAMUT)(nil)

// wrapStateful makes a factory-built controller migratable where the
// factory alone cannot: a core.Controller is paired with the rng source
// it was built over. Other controllers pass through (the heuristic is
// stateful by itself; the mono-agent is rejected for elastic configs by
// Validate).
func wrapStateful(ctrl transcode.Controller, src *xrand.Source) transcode.Controller {
	if mc, ok := ctrl.(*core.Controller); ok {
		return &statefulMAMUT{Controller: mc, src: src}
	}
	return ctrl
}

// mamutController unwraps the knowledge-harvest target from a session's
// controller.
func mamutController(ctrl transcode.Controller) *core.Controller {
	switch c := ctrl.(type) {
	case *statefulMAMUT:
		return c.Controller
	case *core.Controller:
		return c
	}
	return nil
}

// --- epoch machinery --------------------------------------------------

// epoch runs one control step at time t: step the fleet there, fold what
// departed, then drain/scale/migrate. Called only in the sequential phase
// (between arrivals, or between the last arrival and the horizon), so
// every decision and migration lands at a deterministic point of the one
// merged event order.
func (d *dispatcher) epoch(t float64) error {
	if err := d.syncPoint(t); err != nil {
		return err
	}
	// The scan dispatcher rebuilds states per arrival rather than
	// incrementally; sync them here so epoch decisions read the same
	// occupancy/power floats the indexed path maintains.
	if !d.indexed {
		for i, fs := range d.servers {
			if !fs.retired {
				d.refreshState(i)
			}
		}
	}
	for len(d.drainQueue) > 0 && d.drainQueue[0].AtSec <= t {
		d.markDraining(d.drainQueue[0].Server)
		d.drainQueue = d.drainQueue[1:]
	}
	if d.cfg.Autoscale.Enabled {
		d.autoscale()
	}
	if err := d.evacuate(t); err != nil {
		return err
	}
	if d.reb != nil {
		if err := d.applyMoves(t, d.reb.Plan(t, d.planStates())); err != nil {
			return err
		}
	}
	d.retireEmpty()
	if d.queueOn {
		// Epoch boundaries are queue decision points: autoscale may just
		// have added capacity, and retirement/draining changed the
		// admittable set (draining servers report Full, so the queue
		// never lands on them).
		return d.queueStep(t)
	}
	return nil
}

// markDraining decommissions server i: no further admissions (its state
// reports Full), and evacuate will migrate its sessions off until it can
// be retired. Idempotent; retired servers are left alone.
func (d *dispatcher) markDraining(i int) {
	fs := d.servers[i]
	if fs.decom || fs.retired {
		return
	}
	fs.decom = true
	d.refreshState(i)
}

// autoscale applies the watermark policy against current utilization.
func (d *dispatcher) autoscale() {
	as := d.cfg.Autoscale
	admittable := 0
	for _, fs := range d.servers {
		if !fs.retired && !fs.decom {
			admittable++
		}
	}
	capacity := admittable * d.cfg.MaxSessionsPerServer
	switch {
	case capacity == 0 || 100*float64(d.active) > as.HighPct*float64(capacity):
		if admittable >= as.MaxServers {
			return
		}
		// Size for the target: the smallest admittable fleet that brings
		// utilization back to TargetUtilPct.
		desired := int(math.Ceil(100 * float64(d.active) / (as.TargetUtilPct * float64(d.cfg.MaxSessionsPerServer))))
		if desired <= admittable {
			desired = admittable + 1
		}
		if desired > as.MaxServers {
			desired = as.MaxServers
		}
		for n := admittable; n < desired; n++ {
			d.addServer()
		}
	case 100*float64(d.active) < as.LowPct*float64(capacity):
		if admittable <= as.MinServers {
			return
		}
		// Drain the highest-index admittable server, one per epoch —
		// scale-in is deliberately slower than scale-out so a transient
		// lull cannot collapse the fleet under a returning peak.
		for i := len(d.servers) - 1; i >= 0; i-- {
			if fs := d.servers[i]; !fs.retired && !fs.decom {
				d.markDraining(i)
				return
			}
		}
	}
}

// addServer grows the fleet by one server (engine built lazily on first
// admission, seeded by its index exactly like an initial server).
func (d *dispatcher) addServer() {
	i := len(d.servers)
	fs := &fleetServer{resident: make(map[int]residentRec), budgetW: d.budget}
	if d.store != nil {
		fs.harvest = make(map[int]harvestEntry)
	}
	if d.shards != nil {
		// Scaled-out servers join shards on the same index-mod rule as
		// the initial fleet (runs in the serial phase; shards are idle).
		sh := d.shards[i%len(d.shards)]
		fs.sh = sh
		sh.srv = append(sh.srv, i)
	}
	d.servers = append(d.servers, fs)
	d.states = append(d.states, ServerState{
		Index:        i,
		MaxSessions:  d.cfg.MaxSessionsPerServer,
		EstPowerW:    d.spec.IdlePowerW,
		PowerBudgetW: d.budget,
	})
	d.admitCount = append(d.admitCount, 0)
	d.busy = append(d.busy, 0)
	if d.indexed {
		d.nextEvt = append(d.nextEvt, math.Inf(1))
	}
	d.liveSrv++
	if d.liveSrv > d.peakSrv {
		d.peakSrv = d.liveSrv
	}
	d.addedSrv++
	d.rebuildIndex()
}

// retireEmpty removes emptied draining servers from the fleet. Their
// accumulated results (admissions, power window, peak) stay in the final
// report; their indexes are never reused.
func (d *dispatcher) retireEmpty() {
	changed := false
	for _, fs := range d.servers {
		if fs.decom && !fs.retired && fs.cur == 0 {
			fs.retired = true
			d.liveSrv--
			d.removedSrv++
			changed = true
		}
	}
	if changed {
		d.rebuildIndex()
	}
}

// rebuildIndex rebuilds the policy's fleet index over the in-service
// servers after a topology change (a server added or retired). Marking a
// server draining needs no rebuild: its state update invalidates its
// index entries lazily.
func (d *dispatcher) rebuildIndex() {
	if !d.indexed {
		return
	}
	if fi, ok := d.pol.(FleetIndexer); ok {
		d.idx = fi.NewFleetIndex(d.planStates())
	}
}

// planStates snapshots the in-service fleet's states, ordered by index —
// what rebalancers plan from and rebuilt indexes initialise from.
func (d *dispatcher) planStates() []ServerState {
	out := make([]ServerState, 0, d.liveSrv)
	for i, fs := range d.servers {
		if !fs.retired {
			out = append(out, d.states[i])
		}
	}
	return out
}

// evacuate migrates sessions off every draining server, lowest arrival
// ID first, onto the least-loaded admittable server. Sessions that do
// not fit anywhere stay and are retried at the next epoch.
func (d *dispatcher) evacuate(t float64) error {
	for i, fs := range d.servers {
		if !fs.decom || fs.retired || fs.cur == 0 {
			continue
		}
		for _, id := range sessionsByArrival(fs, len(fs.resident)) {
			to := d.evacTarget()
			if to < 0 {
				break
			}
			if err := d.migrate(t, i, id, to); err != nil {
				return err
			}
		}
	}
	return nil
}

// evacTarget picks the least-loaded admittable server (lowest index
// among ties), or -1 when the whole fleet is full.
func (d *dispatcher) evacTarget() int {
	best, bestActive := -1, 0
	for i := range d.states {
		s := &d.states[i]
		if s.Full() {
			continue
		}
		if best == -1 || s.Active < bestActive {
			best, bestActive = i, s.Active
		}
	}
	return best
}

// sessionsByArrival returns up to n of the server's resident session ids,
// ordered by arrival ID — the deterministic migration order.
func sessionsByArrival(fs *fleetServer, n int) []int {
	ids := make([]int, 0, len(fs.resident))
	for id := range fs.resident {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return fs.resident[ids[a]].reqID < fs.resident[ids[b]].reqID })
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// applyMoves executes a rebalancing plan. Out-of-range endpoints are a
// contract violation (a buggy rebalancer must fail loudly); infeasible
// moves — draining or full destinations, emptied sources, counts beyond
// capacity — are capped or skipped, because a plan is allowed to be
// greedy about a fleet whose earlier moves already changed it.
func (d *dispatcher) applyMoves(t float64, moves []Move) error {
	for _, m := range moves {
		if m.From < 0 || m.From >= len(d.servers) || m.To < 0 || m.To >= len(d.servers) || m.Sessions < 0 {
			return fmt.Errorf("serve: rebalancer %q violated the plan contract: move %+v outside fleet of %d servers",
				d.reb.Name(), m, len(d.servers))
		}
		if m.From == m.To {
			continue
		}
		src, dst := d.servers[m.From], d.servers[m.To]
		if src.retired || dst.retired || dst.decom {
			continue
		}
		for _, id := range sessionsByArrival(src, m.Sessions) {
			if d.states[m.To].Full() {
				break
			}
			if err := d.migrate(t, m.From, id, m.To); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrate moves one live session between servers at time t: extract on
// the source engine, rebuild its source/controller shells, and inject on
// the destination with the configured stall penalty. All dispatcher-side
// bookkeeping (resident maps, class counts, knowledge-harvest identity,
// incremental states, the engine event heap) moves with it.
func (d *dispatcher) migrate(t float64, from, sessID, to int) error {
	src, dst := d.servers[from], d.servers[to]
	rec, ok := src.resident[sessID]
	if !ok {
		return fmt.Errorf("serve: migrate: server %d has no session %d", from, sessID)
	}
	if err := src.eng.AdvanceTo(t); err != nil {
		return err
	}
	if dst.eng == nil {
		if err := d.createEngine(to); err != nil {
			return err
		}
	}
	if err := dst.eng.AdvanceTo(t); err != nil {
		return err
	}
	st, err := src.eng.ExtractSession(sessID)
	if err != nil {
		return fmt.Errorf("serve: migrate session %d off server %d: %w", sessID, from, err)
	}
	st.StallSec = d.cfg.MigrationStallSec

	// Fresh shells for the destination; InjectSession restores their
	// mid-stream state from the payload, so the construction seeds are
	// irrelevant — and the warm-start hook must stay out of the way (the
	// resume payload carries the learner tables in full).
	seq, err := d.catalog.Get(rec.seq)
	if err != nil {
		return err
	}
	gsrc, err := video.NewStatefulGenerator(seq, 0)
	if err != nil {
		return err
	}
	ctrlSrc := xrand.NewSource(0)
	d.pendingSeed = nil
	ctrl, err := d.factory(rec.res, experiments.InitialSettings(rec.res), rand.New(ctrlSrc))
	if err != nil {
		return err
	}
	ctrl = wrapStateful(ctrl, ctrlSrc)
	newID, err := dst.eng.InjectSession(gsrc, ctrl, st)
	if err != nil {
		return fmt.Errorf("serve: migrate session %d to server %d: %w", sessID, to, err)
	}

	delete(src.resident, sessID)
	src.cur--
	dst.resident[newID] = rec
	dst.cur++
	if dst.cur > dst.peak {
		dst.peak = dst.cur
	}
	if rec.res == video.HR {
		src.hr--
		dst.hr++
	} else {
		src.lr--
		dst.lr++
	}
	if src.harvest != nil {
		if he, ok := src.harvest[sessID]; ok {
			delete(src.harvest, sessID)
			if mc := mamutController(ctrl); mc != nil {
				he.ctrl = mc
				dst.harvest[newID] = he
			}
		}
	}
	d.migrations++
	d.refreshState(from)
	d.refreshState(to)
	if d.indexed {
		d.scheduleServer(from)
		d.scheduleServer(to)
	}
	return nil
}
