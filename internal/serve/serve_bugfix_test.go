package serve

import (
	"strings"
	"testing"

	"mamut/internal/experiments"
	"mamut/internal/platform"
)

// constPolicy always returns the same placement choice.
type constPolicy struct{ choice int }

func (p *constPolicy) Name() string                            { return "const" }
func (p *constPolicy) Place(SessionRequest, []ServerState) int { return p.choice }

// TestPolicyContractViolationIsAnError: a Place return outside
// [-1, Servers) is a broken custom policy, not a rejection — folding it
// into the rejection count would silently corrupt RejectionPct.
func TestPolicyContractViolationIsAnError(t *testing.T) {
	base := func(choice int) Config {
		return Config{
			Servers:       2,
			Approach:      experiments.Heuristic,
			PolicyFactory: func() Policy { return &constPolicy{choice: choice} },
			Workload: Workload{Trace: []SessionRequest{
				{ArriveAtSec: 0, Sequence: "BQMall", Frames: 24},
				{ArriveAtSec: 1, Sequence: "BQMall", Frames: 24},
			}},
			Seed:    1,
			Workers: 1,
		}
	}
	for _, choice := range []int{2, 7, -2, -100} {
		_, err := Run(base(choice))
		if err == nil {
			t.Errorf("choice %d: contract violation folded into rejections instead of erroring", choice)
			continue
		}
		if !strings.Contains(err.Error(), "placement contract") {
			t.Errorf("choice %d: unexpected error %v", choice, err)
		}
	}

	// The documented reject (-1) stays a rejection, not an error.
	res, err := Run(base(-1))
	if err != nil {
		t.Fatalf("deliberate reject errored: %v", err)
	}
	if res.Rejected != res.Offered || res.Rejected == 0 {
		t.Errorf("deliberate rejects: %d of %d offered", res.Rejected, res.Offered)
	}

	// A valid choice of a full server also stays a rejection.
	full := base(0)
	full.MaxSessionsPerServer = 1
	res, err = Run(full)
	if err != nil {
		t.Fatalf("full-server choice errored: %v", err)
	}
	if res.Admitted != 1 || res.Rejected != 1 {
		t.Errorf("full-server choice: admitted %d rejected %d, want 1/1", res.Admitted, res.Rejected)
	}
}

// TestMalformedSpecIsConfigError: a custom platform.Spec the dispatcher's
// power estimation cannot work with (here: an empty DVFS ladder) must
// surface as a config error from Validate and Run — the seed dispatcher
// crashed the process via panic(err) in estSessionPowerW instead.
func TestMalformedSpecIsConfigError(t *testing.T) {
	bad := platform.DefaultSpec()
	bad.Ladder = nil
	cfg := Config{
		Servers:  2,
		Approach: experiments.Heuristic,
		Spec:     &bad,
		Workload: Workload{ArrivalRate: 1, DurationSec: 10},
		Seed:     1,
	}
	if err := cfg.Validate(); err == nil {
		t.Error("malformed spec passed validation")
	} else if !strings.Contains(err.Error(), "platform spec") {
		t.Errorf("unexpected validation error: %v", err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Run panicked on a malformed spec: %v", r)
		}
	}()
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a malformed spec")
	}
}

// TestIdlePowerFallback: a server that never admitted a session reports
// idle power, while a loaded server reports its measured (above-idle)
// average. The no-samples fallback, degenerate-window error and the
// error-text contract of the underlying integrator are pinned in
// internal/metrics.
func TestIdlePowerFallback(t *testing.T) {
	spec := platform.DefaultSpec()
	base := Config{
		Servers:       2,
		Approach:      experiments.Heuristic,
		PolicyFactory: func() Policy { return &constPolicy{choice: 0} },
		Workload: Workload{Trace: []SessionRequest{
			{ArriveAtSec: 0, Sequence: "BQMall", Frames: 48},
		}},
		Seed:    1,
		Workers: 1,
	}

	// Server 1 never admits a session: pure idle fallback.
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Servers[1].AvgPowerW; got != spec.IdlePowerW {
		t.Errorf("empty server power = %g, want idle %g", got, spec.IdlePowerW)
	}
	if got := res.Servers[0].AvgPowerW; got <= spec.IdlePowerW {
		t.Errorf("loaded server power %g not above idle %g", got, spec.IdlePowerW)
	}
}
