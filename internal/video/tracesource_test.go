package video

import (
	"strings"
	"testing"
)

func TestTraceSourceReplaysAndLoops(t *testing.T) {
	src, err := NewTraceSource("trace", HR, []float64{1.0, 1.2, 0.8}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		c     float64
		scene bool
	}{
		{1.0, true}, {1.2, true}, {0.8, false}, // first pass (frame 0 and cut at 1)
		{1.0, true}, {1.2, true}, {0.8, false}, // loop wrap flags frame 0 again
	}
	for i, w := range want {
		f := src.Next()
		if f.Index != i {
			t.Fatalf("frame %d index %d", i, f.Index)
		}
		if f.Complexity != w.c {
			t.Errorf("frame %d complexity %g, want %g", i, f.Complexity, w.c)
		}
		if f.SceneChange != w.scene {
			t.Errorf("frame %d scene %v, want %v", i, f.SceneChange, w.scene)
		}
	}
	if src.Res() != HR || src.Sequence().Name != "trace" {
		t.Error("metadata wrong")
	}
	if got := src.Sequence().BaseComplexity; got != 1.0 {
		t.Errorf("base complexity %g, want mean 1.0", got)
	}
}

func TestNewTraceSourceValidation(t *testing.T) {
	if _, err := NewTraceSource("", HR, []float64{1}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTraceSource("x", HR, nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceSource("x", HR, []float64{1, 0}, nil); err == nil {
		t.Error("zero complexity accepted")
	}
	if _, err := NewTraceSource("x", HR, []float64{1}, []int{5}); err == nil {
		t.Error("out-of-range scene cut accepted")
	}
}

func TestReadComplexityCSVHeaderless(t *testing.T) {
	comps, cuts, err := ReadComplexityCSV(strings.NewReader("1.0\n1.5\n0.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 || comps[1] != 1.5 {
		t.Errorf("comps = %v", comps)
	}
	if len(cuts) != 0 {
		t.Errorf("cuts = %v", cuts)
	}
}

func TestReadComplexityCSVWithHeader(t *testing.T) {
	in := "frame,complexity,scene_change\n0,1.0,true\n1,1.1,false\n2,1.4,true\n"
	comps, cuts, err := ReadComplexityCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 || comps[2] != 1.4 {
		t.Errorf("comps = %v", comps)
	}
	if len(cuts) != 2 || cuts[0] != 0 || cuts[1] != 2 {
		t.Errorf("cuts = %v", cuts)
	}
}

func TestReadComplexityCSVErrors(t *testing.T) {
	if _, _, err := ReadComplexityCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ReadComplexityCSV(strings.NewReader("complexity\n")); err == nil {
		t.Error("header-only input accepted")
	}
	if _, _, err := ReadComplexityCSV(strings.NewReader("abc\n")); err == nil {
		t.Error("non-numeric input accepted")
	}
}

// Round trip: a trace extracted from a generated sequence drives a
// TraceSource with identical frames.
func TestTraceSourceRoundTripWithCSV(t *testing.T) {
	in := "complexity,scene_change\n1.00,true\n1.05,false\n0.95,false\n1.30,true\n1.25,false\n"
	comps, cuts, err := ReadComplexityCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource("round", LR, comps, cuts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(comps); i++ {
		f := src.Next()
		if f.Complexity != comps[i] {
			t.Errorf("frame %d complexity %g, want %g", i, f.Complexity, comps[i])
		}
	}
}
