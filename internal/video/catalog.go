package video

import (
	"fmt"
	"math/rand"
	"sort"
)

// Catalog is a named collection of sequences, indexed by resolution class.
// The default catalog mirrors the JCT-VC common test conditions classes the
// paper draws from (class B for HR, class C for LR), with per-sequence
// content statistics chosen to span near-static (Kimono) to highly dynamic
// (RaceHorses) material.
type Catalog struct {
	seqs map[string]*Sequence
	// names and byRes are precomputed at construction (a catalog is
	// immutable once built): Pick sits on the serving fleet's per-arrival
	// path, where rebuilding and re-sorting the pool for every draw
	// dominated the arrival-generation cost.
	names []string
	byRes map[Resolution][]*Sequence
}

// NewCatalog builds a catalog from the given sequences. Names must be
// unique and every sequence must validate.
func NewCatalog(seqs ...*Sequence) (*Catalog, error) {
	c := &Catalog{
		seqs:  make(map[string]*Sequence, len(seqs)),
		byRes: make(map[Resolution][]*Sequence),
	}
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.seqs[s.Name]; dup {
			return nil, fmt.Errorf("video: duplicate sequence name %q", s.Name)
		}
		c.seqs[s.Name] = s
	}
	for n := range c.seqs {
		c.names = append(c.names, n)
	}
	sort.Strings(c.names)
	for _, n := range c.names {
		s := c.seqs[n]
		c.byRes[s.Res] = append(c.byRes[s.Res], s)
	}
	return c, nil
}

// DefaultCatalog returns the JCT-VC-style catalog used throughout the
// experiments. The numbers are content statistics, not pixel data: base
// complexity and dynamism are set from the well-known character of each
// sequence (e.g. BasketballDrive/RaceHorses are high-motion, Kimono is a
// slow pan).
func DefaultCatalog() *Catalog {
	c, err := NewCatalog(
		// Class B (1920x1080) - HR.
		&Sequence{Name: "Kimono", Res: HR, Frames: 240, FrameRate: 24, BaseComplexity: 0.85, Dynamism: 0.25, MeanSceneLen: 120},
		&Sequence{Name: "ParkScene", Res: HR, Frames: 240, FrameRate: 24, BaseComplexity: 0.95, Dynamism: 0.35, MeanSceneLen: 100},
		&Sequence{Name: "Cactus", Res: HR, Frames: 500, FrameRate: 50, BaseComplexity: 1.00, Dynamism: 0.45, MeanSceneLen: 90},
		&Sequence{Name: "BasketballDrive", Res: HR, Frames: 500, FrameRate: 50, BaseComplexity: 1.15, Dynamism: 0.80, MeanSceneLen: 60},
		&Sequence{Name: "BQTerrace", Res: HR, Frames: 600, FrameRate: 60, BaseComplexity: 1.05, Dynamism: 0.55, MeanSceneLen: 80},
		// Class C (832x480) - LR.
		&Sequence{Name: "BasketballDrill", Res: LR, Frames: 500, FrameRate: 50, BaseComplexity: 1.05, Dynamism: 0.65, MeanSceneLen: 70},
		&Sequence{Name: "BQMall", Res: LR, Frames: 600, FrameRate: 60, BaseComplexity: 1.00, Dynamism: 0.50, MeanSceneLen: 90},
		&Sequence{Name: "PartyScene", Res: LR, Frames: 500, FrameRate: 50, BaseComplexity: 1.20, Dynamism: 0.70, MeanSceneLen: 60},
		&Sequence{Name: "RaceHorses", Res: LR, Frames: 300, FrameRate: 30, BaseComplexity: 1.25, Dynamism: 0.90, MeanSceneLen: 50},
	)
	if err != nil {
		// The default catalog is a compile-time constant in spirit; a
		// construction failure is a programming error.
		panic(err)
	}
	return c
}

// Get returns the sequence with the given name.
func (c *Catalog) Get(name string) (*Sequence, error) {
	s, ok := c.seqs[name]
	if !ok {
		return nil, fmt.Errorf("video: unknown sequence %q", name)
	}
	return s, nil
}

// Names returns all sequence names in deterministic (sorted) order. The
// returned slice is a copy; callers may modify it.
func (c *Catalog) Names() []string {
	return append([]string(nil), c.names...)
}

// ByResolution returns the sequences of one resolution class in
// deterministic (name-sorted) order. The returned slice is a copy;
// callers may modify it.
func (c *Catalog) ByResolution(r Resolution) []*Sequence {
	return append([]*Sequence(nil), c.byRes[r]...)
}

// Len returns the number of sequences in the catalog.
func (c *Catalog) Len() int { return len(c.seqs) }

// Pick returns a uniformly random sequence of the given resolution class.
func (c *Catalog) Pick(r Resolution, rng *rand.Rand) (*Sequence, error) {
	pool := c.byRes[r]
	if len(pool) == 0 {
		return nil, fmt.Errorf("video: catalog has no %s sequences", r)
	}
	return pool[rng.Intn(len(pool))], nil
}
