package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResolutionGeometry(t *testing.T) {
	cases := []struct {
		res         Resolution
		w, h, px    int
		rows        int
		stringLabel string
	}{
		{HR, 1920, 1080, 1920 * 1080, 17, "HR"},
		{LR, 832, 480, 832 * 480, 8, "LR"},
	}
	for _, c := range cases {
		if got := c.res.Width(); got != c.w {
			t.Errorf("%s Width = %d, want %d", c.res, got, c.w)
		}
		if got := c.res.Height(); got != c.h {
			t.Errorf("%s Height = %d, want %d", c.res, got, c.h)
		}
		if got := c.res.Pixels(); got != c.px {
			t.Errorf("%s Pixels = %d, want %d", c.res, got, c.px)
		}
		if got := c.res.CTURows(); got != c.rows {
			t.Errorf("%s CTURows = %d, want %d", c.res, got, c.rows)
		}
		if got := c.res.String(); got != c.stringLabel {
			t.Errorf("String = %q, want %q", got, c.stringLabel)
		}
	}
}

func TestResolutionStringUnknown(t *testing.T) {
	if got := Resolution(99).String(); got != "Resolution(99)" {
		t.Errorf("unknown resolution String = %q", got)
	}
}

func TestSequenceValidate(t *testing.T) {
	valid := Sequence{Name: "x", Res: HR, Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 50}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	bad := []Sequence{
		{Res: HR, Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 50},
		{Name: "x", Frames: 0, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 50},
		{Name: "x", Frames: 10, FrameRate: 0, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 50},
		{Name: "x", Frames: 10, FrameRate: 24, BaseComplexity: 0, Dynamism: 0.5, MeanSceneLen: 50},
		{Name: "x", Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: 1.5, MeanSceneLen: 50},
		{Name: "x", Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: -0.1, MeanSceneLen: 50},
		{Name: "x", Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sequence %d accepted", i)
		}
	}
}

func TestGeneratorComplexityBounds(t *testing.T) {
	seq := &Sequence{Name: "t", Res: HR, Frames: 100, FrameRate: 24, BaseComplexity: 1.2, Dynamism: 1.0, MeanSceneLen: 20}
	src, err := NewGenerator(seq, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		f := src.Next()
		if f.Complexity < minComplexity || f.Complexity > maxComplexity {
			t.Fatalf("frame %d complexity %g outside [%g,%g]", i, f.Complexity, minComplexity, maxComplexity)
		}
		if f.Index != i {
			t.Fatalf("frame index %d, want %d", f.Index, i)
		}
		if math.IsNaN(f.Complexity) {
			t.Fatalf("frame %d complexity NaN", i)
		}
	}
}

func TestGeneratorFirstFrameIsSceneChange(t *testing.T) {
	seq := &Sequence{Name: "t", Res: LR, Frames: 100, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 30}
	src, err := NewGenerator(seq, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if f := src.Next(); !f.SceneChange {
		t.Error("first frame not flagged as scene change")
	}
	if f := src.Next(); f.SceneChange {
		t.Error("second frame unexpectedly a scene change (scene too short)")
	}
}

func TestGeneratorSceneChangesOccur(t *testing.T) {
	seq := &Sequence{Name: "t", Res: HR, Frames: 100, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.8, MeanSceneLen: 30}
	src, err := NewGenerator(seq, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for i := 0; i < 3000; i++ {
		if src.Next().SceneChange {
			changes++
		}
	}
	// With mean scene length 30 we expect on the order of 100 scene cuts;
	// accept a broad band to keep the test robust to the process details.
	if changes < 40 || changes > 300 {
		t.Errorf("scene changes over 3000 frames = %d, want within [40,300]", changes)
	}
}

func TestGeneratorRejectsNilRNGAndBadSeq(t *testing.T) {
	seq := &Sequence{Name: "t", Res: HR, Frames: 100, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 30}
	if _, err := NewGenerator(seq, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewGenerator(&Sequence{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	seq := &Sequence{Name: "t", Res: HR, Frames: 100, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.6, MeanSceneLen: 40}
	a, _ := NewGenerator(seq, rand.New(rand.NewSource(42)))
	b, _ := NewGenerator(seq, rand.New(rand.NewSource(42)))
	for i := 0; i < 500; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
}

// Property: regardless of sequence parameters within the valid domain, the
// generated complexity stays within the documented clamp bounds.
func TestGeneratorComplexityBoundsProperty(t *testing.T) {
	prop := func(base, dyn float64, seed int64) bool {
		// Map arbitrary floats into the valid parameter domain.
		b := 0.5 + math.Mod(math.Abs(base), 1.5)
		d := math.Mod(math.Abs(dyn), 1.0)
		seq := &Sequence{Name: "p", Res: LR, Frames: 50, FrameRate: 30, BaseComplexity: b, Dynamism: d, MeanSceneLen: 25}
		src, err := NewGenerator(seq, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			f := src.Next()
			if f.Complexity < minComplexity || f.Complexity > maxComplexity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	if c.Len() != 9 {
		t.Fatalf("catalog has %d sequences, want 9", c.Len())
	}
	hr := c.ByResolution(HR)
	lr := c.ByResolution(LR)
	if len(hr) != 5 {
		t.Errorf("HR sequences = %d, want 5", len(hr))
	}
	if len(lr) != 4 {
		t.Errorf("LR sequences = %d, want 4", len(lr))
	}
	for _, s := range append(hr, lr...) {
		if err := s.Validate(); err != nil {
			t.Errorf("catalog sequence %s invalid: %v", s.Name, err)
		}
	}
	if _, err := c.Get("Kimono"); err != nil {
		t.Errorf("Get(Kimono): %v", err)
	}
	if _, err := c.Get("DoesNotExist"); err == nil {
		t.Error("Get of unknown sequence succeeded")
	}
}

func TestCatalogNamesSortedAndStable(t *testing.T) {
	c := DefaultCatalog()
	names := c.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %v", names)
		}
	}
}

func TestCatalogRejectsDuplicates(t *testing.T) {
	s := &Sequence{Name: "dup", Res: HR, Frames: 10, FrameRate: 24, BaseComplexity: 1, Dynamism: 0.5, MeanSceneLen: 30}
	if _, err := NewCatalog(s, s); err == nil {
		t.Error("duplicate sequence names accepted")
	}
}

func TestCatalogPick(t *testing.T) {
	c := DefaultCatalog()
	rng := rand.New(rand.NewSource(7))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s, err := c.Pick(LR, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.Res != LR {
			t.Fatalf("Pick(LR) returned %s sequence %s", s.Res, s.Name)
		}
		seen[s.Name] = true
	}
	if len(seen) != 4 {
		t.Errorf("Pick over 200 draws saw %d distinct LR sequences, want 4", len(seen))
	}
	empty, _ := NewCatalog()
	if _, err := empty.Pick(HR, rng); err == nil {
		t.Error("Pick from empty catalog succeeded")
	}
}
