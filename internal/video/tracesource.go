package video

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceSource replays an explicit per-frame complexity trace — e.g. one
// extracted from a real video by an offline analysis pass — instead of the
// synthetic scene process. It loops the trace forever, flagging the wrap
// as a scene change.
type TraceSource struct {
	seq          *Sequence
	complexities []float64
	sceneCuts    map[int]bool
	pos          int
	index        int
}

// NewTraceSource builds a Source that replays the given complexities for a
// stream of the given name and resolution. sceneCuts (optional) marks
// trace positions that start a new scene.
func NewTraceSource(name string, res Resolution, complexities []float64, sceneCuts []int) (*TraceSource, error) {
	if name == "" {
		return nil, fmt.Errorf("video: trace source needs a name")
	}
	if len(complexities) == 0 {
		return nil, fmt.Errorf("video: empty complexity trace")
	}
	for i, c := range complexities {
		if c <= 0 {
			return nil, fmt.Errorf("video: non-positive complexity %g at frame %d", c, i)
		}
	}
	cuts := make(map[int]bool, len(sceneCuts))
	for _, i := range sceneCuts {
		if i < 0 || i >= len(complexities) {
			return nil, fmt.Errorf("video: scene cut %d outside trace of %d frames", i, len(complexities))
		}
		cuts[i] = true
	}
	seq := &Sequence{
		Name:           name,
		Res:            res,
		Frames:         len(complexities),
		FrameRate:      24,
		BaseComplexity: mean(complexities),
		Dynamism:       0.5, // informational only; the trace drives content
		MeanSceneLen:   len(complexities),
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return &TraceSource{seq: seq, complexities: complexities, sceneCuts: cuts}, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Next implements Source.
func (t *TraceSource) Next() Frame {
	f := Frame{
		Index:       t.index,
		Complexity:  t.complexities[t.pos],
		SceneChange: t.sceneCuts[t.pos] || t.pos == 0,
	}
	t.index++
	t.pos++
	if t.pos == len(t.complexities) {
		t.pos = 0
	}
	return f
}

// Sequence implements Source.
func (t *TraceSource) Sequence() *Sequence { return t.seq }

// Res implements Source.
func (t *TraceSource) Res() Resolution { return t.seq.Res }

var _ Source = (*TraceSource)(nil)

// ReadComplexityCSV parses a complexity trace from CSV. Accepted formats:
// a single column of floats, or a CSV with a header row containing a
// "complexity" column (and optionally a "scene_change" boolean column).
// It returns the complexities and the scene-cut positions.
func ReadComplexityCSV(r io.Reader) (complexities []float64, sceneCuts []int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("video: read complexity csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("video: empty complexity csv")
	}

	// Header detection: a "complexity" column name.
	compCol, sceneCol := -1, -1
	start := 0
	for i, h := range records[0] {
		switch strings.ToLower(strings.TrimSpace(h)) {
		case "complexity":
			compCol = i
		case "scene_change":
			sceneCol = i
		}
	}
	if compCol >= 0 {
		start = 1
	} else {
		compCol = 0
	}

	for rowIdx, rec := range records[start:] {
		if compCol >= len(rec) {
			return nil, nil, fmt.Errorf("video: row %d has no column %d", rowIdx+start, compCol)
		}
		c, err := strconv.ParseFloat(strings.TrimSpace(rec[compCol]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("video: row %d: bad complexity %q", rowIdx+start, rec[compCol])
		}
		complexities = append(complexities, c)
		if sceneCol >= 0 && sceneCol < len(rec) {
			if b, err := strconv.ParseBool(strings.TrimSpace(rec[sceneCol])); err == nil && b {
				sceneCuts = append(sceneCuts, rowIdx)
			}
		}
	}
	if len(complexities) == 0 {
		return nil, nil, fmt.Errorf("video: complexity csv has no data rows")
	}
	return complexities, sceneCuts, nil
}
