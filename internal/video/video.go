// Package video models the video sources that a transcoding server serves.
//
// The paper evaluates MAMUT on JCT-VC common-test-condition sequences with
// two resolutions: High Resolution (HR, 1920x1080) and Low Resolution
// (LR, 832x480). The agents never see pixels; what matters for run-time
// management is how encoding *work*, output quality and output size vary
// frame to frame. This package therefore represents a video as a named
// sequence with per-frame content complexity produced by a scene-based
// stochastic process: scenes of varying length, each with its own base
// spatial/temporal complexity, plus within-scene AR(1) jitter and abrupt
// jumps at scene cuts. That process is what makes the environment the
// agents face stochastic, exactly as paper SIV-A argues.
package video

import (
	"fmt"
	"math/rand"

	"mamut/internal/xrand"
)

// Resolution identifies one of the two resolution classes used in the paper.
type Resolution int

const (
	// HR is the high-resolution class: 1920x1080 (JCT-VC class B).
	HR Resolution = iota
	// LR is the low-resolution class: 832x480 (JCT-VC class C).
	LR
)

// String returns the paper's shorthand for the resolution class.
func (r Resolution) String() string {
	switch r {
	case HR:
		return "HR"
	case LR:
		return "LR"
	default:
		return fmt.Sprintf("Resolution(%d)", int(r))
	}
}

// Width returns the luma width in pixels.
func (r Resolution) Width() int {
	if r == HR {
		return 1920
	}
	return 832
}

// Height returns the luma height in pixels.
func (r Resolution) Height() int {
	if r == HR {
		return 1080
	}
	return 480
}

// Pixels returns the number of luma samples per frame.
func (r Resolution) Pixels() int { return r.Width() * r.Height() }

// CTURows returns the number of 64x64 CTU rows, which bounds the useful
// wavefront (WPP) parallelism of an HEVC encoder.
func (r Resolution) CTURows() int {
	h := r.Height()
	return (h + 63) / 64
}

// Frame describes the content of a single frame as seen by the encoder
// model: a dimensionless complexity around 1.0 and a scene-change flag.
type Frame struct {
	// Index is the zero-based display index within the sequence.
	Index int
	// Complexity is the combined spatio-temporal coding complexity of the
	// frame, normalised so that 1.0 is a typical frame. Higher values cost
	// more encode cycles, more bits, and slightly less PSNR at equal QP.
	Complexity float64
	// SceneChange is true when this frame starts a new scene.
	SceneChange bool
}

// Sequence describes one catalog entry: a named source video with the
// statistical parameters of its content.
type Sequence struct {
	// Name is the JCT-VC sequence name.
	Name string
	// Res is the resolution class the sequence belongs to.
	Res Resolution
	// Frames is the nominal sequence length in frames.
	Frames int
	// FrameRate is the native capture rate in frames per second.
	FrameRate float64
	// BaseComplexity shifts the whole sequence's complexity (1.0 = typical).
	BaseComplexity float64
	// Dynamism in [0,1] scales how much complexity moves within and across
	// scenes: 0 is near-static content, 1 is highly dynamic sport content.
	Dynamism float64
	// MeanSceneLen is the average scene length in frames.
	MeanSceneLen int
}

// Validate reports whether the sequence parameters are usable.
func (s *Sequence) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("video: sequence has empty name")
	case s.Frames <= 0:
		return fmt.Errorf("video: sequence %s: non-positive frame count %d", s.Name, s.Frames)
	case s.FrameRate <= 0:
		return fmt.Errorf("video: sequence %s: non-positive frame rate %g", s.Name, s.FrameRate)
	case s.BaseComplexity <= 0:
		return fmt.Errorf("video: sequence %s: non-positive base complexity %g", s.Name, s.BaseComplexity)
	case s.Dynamism < 0 || s.Dynamism > 1:
		return fmt.Errorf("video: sequence %s: dynamism %g outside [0,1]", s.Name, s.Dynamism)
	case s.MeanSceneLen <= 1:
		return fmt.Errorf("video: sequence %s: mean scene length %d too small", s.Name, s.MeanSceneLen)
	}
	return nil
}

// Source produces the per-frame content of a video stream. A Source never
// ends on its own: streams loop or chain according to the playlist that
// built them, and the transcoding engine decides how many frames to pull.
type Source interface {
	// Next returns the content descriptor of the next frame.
	Next() Frame
	// Sequence returns the catalog entry currently playing.
	Sequence() *Sequence
	// Res returns the resolution class of the stream (fixed for a stream).
	Res() Resolution
}

// complexity process constants. Within a scene the complexity follows an
// AR(1) process around the scene mean; scene cuts redraw the mean.
const (
	ar1Coeff        = 0.90 // frame-to-frame correlation within a scene
	innovationScale = 0.05 // white-noise scale, multiplied by dynamism
	sceneJumpScale  = 0.35 // scene-mean spread, multiplied by dynamism
	minComplexity   = 0.40
	maxComplexity   = 2.50
)

// generator streams frames for a single Sequence. src is non-nil only
// when the generator owns its rng stream (NewStatefulGenerator), which is
// what enables SourceState/RestoreSourceState.
type generator struct {
	seq        *Sequence
	rng        *rand.Rand
	src        *xrand.Source
	index      int
	sceneLeft  int
	sceneMean  float64
	current    float64
	firstFrame bool
}

// NewGenerator returns a Source that plays seq forever (looping), using rng
// for the content process. The rng must not be shared with other consumers.
func NewGenerator(seq *Sequence, rng *rand.Rand) (Source, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("video: nil rng")
	}
	g := &generator{seq: seq, rng: rng, firstFrame: true}
	g.startScene()
	return g, nil
}

func (g *generator) startScene() {
	d := g.seq.Dynamism
	// Scene length is geometric-ish around the mean, at least 8 frames so a
	// "scene" is long enough for agents to react to.
	mean := float64(g.seq.MeanSceneLen)
	l := int(mean * (0.5 + g.rng.Float64()))
	if l < 8 {
		l = 8
	}
	g.sceneLeft = l
	g.sceneMean = clampComplexity(g.seq.BaseComplexity * (1 + sceneJumpScale*d*g.rng.NormFloat64()))
	g.current = g.sceneMean
}

func (g *generator) Next() Frame {
	sceneChange := false
	if g.sceneLeft == 0 {
		g.startScene()
		sceneChange = true
	}
	g.sceneLeft--

	d := g.seq.Dynamism
	// AR(1) around the scene mean.
	noise := innovationScale * (0.3 + d) * g.rng.NormFloat64()
	g.current = g.sceneMean + ar1Coeff*(g.current-g.sceneMean) + noise*g.sceneMean
	g.current = clampComplexity(g.current)

	f := Frame{
		Index:       g.index,
		Complexity:  g.current,
		SceneChange: sceneChange || g.firstFrame,
	}
	g.firstFrame = false
	g.index++
	return f
}

func (g *generator) Sequence() *Sequence { return g.seq }
func (g *generator) Res() Resolution     { return g.seq.Res }

func clampComplexity(c float64) float64 {
	if c < minComplexity {
		return minComplexity
	}
	if c > maxComplexity {
		return maxComplexity
	}
	return c
}
