package video

import (
	"fmt"
	"math/rand"
)

// Playlist plays a fixed list of sequences back to back, switching after
// each sequence's nominal frame count, and loops the last entry forever once
// the list is exhausted. Scenario II of the paper uses playlists of an
// initial video followed by four random videos of the same resolution.
type Playlist struct {
	entries []*Sequence
	rng     *rand.Rand

	cur       Source
	curIdx    int
	remaining int
	index     int
}

// NewPlaylist builds a playlist source over the given sequences. All
// entries must share one resolution class. The rng drives the per-sequence
// content processes and must not be shared.
func NewPlaylist(entries []*Sequence, rng *rand.Rand) (*Playlist, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("video: empty playlist")
	}
	if rng == nil {
		return nil, fmt.Errorf("video: nil rng")
	}
	res := entries[0].Res
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		if e.Res != res {
			return nil, fmt.Errorf("video: playlist mixes resolutions %s and %s", res, e.Res)
		}
	}
	p := &Playlist{entries: entries, rng: rng, curIdx: -1}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// ScenarioIIPlaylist builds the stream shape used in paper SV-C: the given
// initial sequence followed by count random sequences of the same
// resolution drawn from the catalog.
func ScenarioIIPlaylist(c *Catalog, initial *Sequence, count int, rng *rand.Rand) (*Playlist, error) {
	if initial == nil {
		return nil, fmt.Errorf("video: nil initial sequence")
	}
	entries := make([]*Sequence, 0, count+1)
	entries = append(entries, initial)
	for i := 0; i < count; i++ {
		s, err := c.Pick(initial.Res, rng)
		if err != nil {
			return nil, err
		}
		entries = append(entries, s)
	}
	return NewPlaylist(entries, rng)
}

func (p *Playlist) advance() error {
	if p.curIdx < len(p.entries)-1 {
		p.curIdx++
	}
	seq := p.entries[p.curIdx]
	src, err := NewGenerator(seq, p.rng)
	if err != nil {
		return err
	}
	p.cur = src
	p.remaining = seq.Frames
	return nil
}

// Next returns the next frame, transparently crossing sequence boundaries.
// The first frame of each new sequence is flagged as a scene change, since
// for the encoder a source switch is at least as disruptive as a cut.
func (p *Playlist) Next() Frame {
	if p.remaining == 0 {
		// advance cannot fail here: entries were validated in NewPlaylist.
		if err := p.advance(); err != nil {
			panic(err)
		}
	}
	p.remaining--
	f := p.cur.Next()
	f.Index = p.index
	p.index++
	return f
}

// Sequence returns the catalog entry currently playing.
func (p *Playlist) Sequence() *Sequence { return p.entries[p.curIdx] }

// Res returns the resolution class of the stream.
func (p *Playlist) Res() Resolution { return p.entries[0].Res }

// Entries returns the playlist order (useful for logging experiments).
func (p *Playlist) Entries() []*Sequence {
	out := make([]*Sequence, len(p.entries))
	copy(out, p.entries)
	return out
}

var _ Source = (*Playlist)(nil)
