package video

import (
	"math/rand"
	"testing"
)

func testSeq(name string, res Resolution, frames int) *Sequence {
	return &Sequence{
		Name: name, Res: res, Frames: frames, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.3, MeanSceneLen: 50,
	}
}

func TestNewPlaylistValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewPlaylist(nil, rng); err == nil {
		t.Error("empty playlist accepted")
	}
	if _, err := NewPlaylist([]*Sequence{testSeq("a", HR, 100)}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	mixed := []*Sequence{testSeq("a", HR, 100), testSeq("b", LR, 100)}
	if _, err := NewPlaylist(mixed, rng); err == nil {
		t.Error("mixed-resolution playlist accepted")
	}
	bad := []*Sequence{{Name: "broken"}}
	if _, err := NewPlaylist(bad, rng); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestPlaylistCrossesBoundariesAndLoopsLast(t *testing.T) {
	entries := []*Sequence{testSeq("first", LR, 30), testSeq("second", LR, 40)}
	p, err := NewPlaylist(entries, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Res() != LR {
		t.Errorf("playlist resolution %s", p.Res())
	}
	if p.Sequence().Name != "first" {
		t.Errorf("starts on %q", p.Sequence().Name)
	}
	total := 30 + 40 + 40 + 15 // first, second, and the last loops forever
	for i := 0; i < total; i++ {
		f := p.Next()
		if f.Index != i {
			t.Fatalf("frame %d has stream index %d", i, f.Index)
		}
		// The first frame of every (re)started sequence is a cut.
		if i == 0 || i == 30 || i == 70 || i == 110 {
			if !f.SceneChange {
				t.Errorf("frame %d should be a scene change", i)
			}
		}
		switch {
		case i < 30:
			if p.Sequence().Name != "first" {
				t.Fatalf("frame %d played from %q", i, p.Sequence().Name)
			}
		case i >= 30:
			if p.Sequence().Name != "second" {
				t.Fatalf("frame %d played from %q", i, p.Sequence().Name)
			}
		}
	}
}

func TestPlaylistEntriesIsACopy(t *testing.T) {
	entries := []*Sequence{testSeq("a", HR, 50), testSeq("b", HR, 60)}
	p, err := NewPlaylist(entries, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	got := p.Entries()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("entries %v", got)
	}
	got[0] = testSeq("mutated", HR, 10)
	if p.Entries()[0].Name != "a" {
		t.Error("Entries exposed internal slice")
	}
}

func TestScenarioIIPlaylist(t *testing.T) {
	c := DefaultCatalog()
	rng := rand.New(rand.NewSource(4))
	initial, err := c.Get("RaceHorses")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ScenarioIIPlaylist(c, initial, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	entries := p.Entries()
	if len(entries) != 5 {
		t.Fatalf("playlist has %d entries, want initial + 4", len(entries))
	}
	if entries[0].Name != "RaceHorses" {
		t.Errorf("playlist starts with %q", entries[0].Name)
	}
	for i, e := range entries {
		if e.Res != initial.Res {
			t.Errorf("entry %d (%s) has resolution %s", i, e.Name, e.Res)
		}
	}
	if _, err := ScenarioIIPlaylist(c, nil, 4, rng); err == nil {
		t.Error("nil initial sequence accepted")
	}
}
