package video

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"mamut/internal/xrand"
)

// StatefulSource is a Source whose content process can be frozen and
// resumed bit-exactly — the playlist-cursor half of live session
// migration. SourceState returns an opaque, JSON-stable payload;
// RestoreSourceState on a source built for the same sequence resumes the
// identical frame stream.
type StatefulSource interface {
	Source
	// SourceState freezes the stream position and content process.
	SourceState() ([]byte, error)
	// RestoreSourceState resumes from a SourceState payload.
	RestoreSourceState(data []byte) error
}

// NewStatefulGenerator returns a looping generator whose stream is
// bit-identical to NewGenerator(seq, xrand.New(seed)) but which
// additionally supports SourceState/RestoreSourceState. The generator
// owns its rng stream, which is what makes the state self-contained.
func NewStatefulGenerator(seq *Sequence, seed int64) (StatefulSource, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSource(seed)
	g := &generator{seq: seq, rng: rand.New(src), src: src, firstFrame: true}
	g.startScene()
	return g, nil
}

// sourceFormatVersion is the current SourceState payload format. Loaders
// reject newer payloads instead of misinterpreting them.
const sourceFormatVersion = 1

// generatorState is the serialised content process of a generator. All
// floats are finite and round-trip exactly through encoding/json
// (shortest-representation float encoding), so restore is bit-identical.
type generatorState struct {
	Version    int     `json:"format_version"`
	Sequence   string  `json:"sequence"`
	Index      int     `json:"index"`
	SceneLeft  int     `json:"scene_left"`
	SceneMean  float64 `json:"scene_mean"`
	Current    float64 `json:"current"`
	FirstFrame bool    `json:"first_frame"`
	RNG        uint64  `json:"rng_state"`
}

// SourceState implements StatefulSource. It errors when the generator was
// built with a caller-owned rng (NewGenerator), whose state is not
// reachable from here.
func (g *generator) SourceState() ([]byte, error) {
	if g.src == nil {
		return nil, fmt.Errorf("video: source for %s was built without snapshot support (use NewStatefulGenerator)", g.seq.Name)
	}
	return json.Marshal(generatorState{
		Version:    sourceFormatVersion,
		Sequence:   g.seq.Name,
		Index:      g.index,
		SceneLeft:  g.sceneLeft,
		SceneMean:  g.sceneMean,
		Current:    g.current,
		FirstFrame: g.firstFrame,
		RNG:        g.src.State(),
	})
}

// RestoreSourceState implements StatefulSource.
func (g *generator) RestoreSourceState(data []byte) error {
	if g.src == nil {
		return fmt.Errorf("video: source for %s was built without snapshot support (use NewStatefulGenerator)", g.seq.Name)
	}
	var st generatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("video: restore source state: %w", err)
	}
	switch {
	case st.Version < 0 || st.Version > sourceFormatVersion:
		return fmt.Errorf("video: restore source state: format version %d not supported (current %d)", st.Version, sourceFormatVersion)
	case st.Sequence != g.seq.Name:
		return fmt.Errorf("video: restore source state: payload is for sequence %q, source plays %q", st.Sequence, g.seq.Name)
	case st.Index < 0 || st.SceneLeft < 0:
		return fmt.Errorf("video: restore source state: negative cursor (index %d, scene left %d)", st.Index, st.SceneLeft)
	case !isFiniteComplexity(st.SceneMean) || !isFiniteComplexity(st.Current):
		return fmt.Errorf("video: restore source state: complexity out of range (mean %g, current %g)", st.SceneMean, st.Current)
	}
	g.index = st.Index
	g.sceneLeft = st.SceneLeft
	g.sceneMean = st.SceneMean
	g.current = st.Current
	g.firstFrame = st.FirstFrame
	g.src.SetState(st.RNG)
	return nil
}

func isFiniteComplexity(c float64) bool {
	return !math.IsNaN(c) && !math.IsInf(c, 0) && c >= minComplexity && c <= maxComplexity
}
