package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mamut/internal/transcode"
)

// WriteTraceCSV writes per-frame observations as CSV with a header row,
// suitable for plotting Fig. 5-style execution traces.
func WriteTraceCSV(w io.Writer, trace []transcode.Observation) error {
	cw := csv.NewWriter(w)
	header := []string{
		"frame", "time_s", "fps", "inst_fps", "psnr_db", "bitrate_mbps",
		"power_w", "qp", "threads", "freq_ghz", "complexity", "scene_change", "sequence",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, o := range trace {
		rec := []string{
			strconv.Itoa(o.FrameIndex),
			fmtF(o.Time), fmtF(o.FPS), fmtF(o.InstFPS), fmtF(o.PSNRdB),
			fmtF(o.BitrateMbps), fmtF(o.PowerW),
			strconv.Itoa(o.Settings.QP), strconv.Itoa(o.Settings.Threads),
			fmtF(o.Settings.FreqGHz), fmtF(o.Complexity),
			strconv.FormatBool(o.SceneChange), o.SequenceName,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
