package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mamut/internal/transcode"
)

func obs(frame int, t, fps float64, power float64) transcode.Observation {
	return transcode.Observation{
		FrameIndex: frame, Time: t, FPS: fps, InstFPS: fps,
		PSNRdB: 36, BitrateMbps: 4, PowerW: power,
		Settings: transcode.Settings{QP: 32, Threads: 8, FreqGHz: 2.9},
	}
}

func TestSummarize(t *testing.T) {
	trace := []transcode.Observation{
		obs(0, 0.1, 20, 80), // violation
		obs(1, 0.2, 25, 80),
		obs(2, 0.3, 30, 80),
		obs(3, 0.4, 25, 80),
	}
	s := Summarize(trace, 24)
	if s.Frames != 4 {
		t.Errorf("frames = %d", s.Frames)
	}
	if s.DeltaPct != 25 {
		t.Errorf("delta = %g, want 25", s.DeltaPct)
	}
	if s.AvgFPS != 25 {
		t.Errorf("avg fps = %g, want 25", s.AvgFPS)
	}
	if s.AvgThreads != 8 || s.AvgQP != 32 {
		t.Error("averaged settings wrong")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 24)
	if s.Frames != 0 || s.DeltaPct != 0 {
		t.Error("empty summary not zero")
	}
}

func TestWindow(t *testing.T) {
	trace := []transcode.Observation{obs(0, 0, 25, 80), obs(1, 1, 25, 80), obs(2, 2, 25, 80), obs(3, 3, 25, 80)}
	w := Window(trace, 1, 3)
	if len(w) != 2 || w[0].FrameIndex != 1 || w[1].FrameIndex != 2 {
		t.Errorf("window = %v", w)
	}
}

func TestTimeWeightedPowerConstant(t *testing.T) {
	traces := [][]transcode.Observation{{
		obs(0, 1, 25, 100), obs(1, 2, 25, 100), obs(2, 3, 25, 100),
	}}
	p, err := TimeWeightedPower(traces, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-100) > 1e-9 {
		t.Errorf("power = %g, want 100", p)
	}
}

func TestTimeWeightedPowerStep(t *testing.T) {
	// 100 W during [0,1), 50 W during [1,2): average 75.
	traces := [][]transcode.Observation{{obs(0, 0, 25, 100), obs(1, 1, 25, 50)}}
	p, err := TimeWeightedPower(traces, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-75) > 1e-9 {
		t.Errorf("power = %g, want 75", p)
	}
}

func TestTimeWeightedPowerMergesSessions(t *testing.T) {
	// Session A samples at t=0 (100 W), session B at t=1 (60 W); window
	// [0,2] sees 100 for 1s then 60 for 1s.
	traces := [][]transcode.Observation{
		{obs(0, 0, 25, 100)},
		{obs(0, 1, 25, 60)},
	}
	p, err := TimeWeightedPower(traces, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-80) > 1e-9 {
		t.Errorf("power = %g, want 80", p)
	}
}

func TestTimeWeightedPowerLeadingGap(t *testing.T) {
	// First sample at t=5; window [3,6]: the first reading extends back.
	traces := [][]transcode.Observation{{obs(0, 5, 25, 90)}}
	p, err := TimeWeightedPower(traces, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-90) > 1e-9 {
		t.Errorf("power = %g, want 90", p)
	}
}

func TestTimeWeightedPowerErrors(t *testing.T) {
	if _, err := TimeWeightedPower(nil, 0, 1); err == nil {
		t.Error("no samples accepted")
	}
	traces := [][]transcode.Observation{{obs(0, 0, 25, 100)}}
	if _, err := TimeWeightedPower(traces, 2, 1); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138089935299395) > 1e-9 {
		t.Errorf("stddev = %g", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestMeanSummary(t *testing.T) {
	a := SessionSummary{Frames: 100, DeltaPct: 10, AvgFPS: 24, AvgPSNRdB: 34, AvgThreads: 10, AvgFreqGHz: 2.8, AvgQP: 32, AvgBitrateMbps: 4}
	b := SessionSummary{Frames: 100, DeltaPct: 20, AvgFPS: 26, AvgPSNRdB: 36, AvgThreads: 12, AvgFreqGHz: 3.0, AvgQP: 34, AvgBitrateMbps: 6}
	m := MeanSummary([]SessionSummary{a, b})
	if m.DeltaPct != 15 || m.AvgFPS != 25 || m.AvgThreads != 11 || m.AvgBitrateMbps != 5 {
		t.Errorf("mean summary %+v", m)
	}
	if z := MeanSummary(nil); z.Frames != 0 {
		t.Error("empty mean not zero")
	}
}

// Property: time-weighted power of readings bounded in [lo,hi] stays in
// [lo,hi].
func TestTimeWeightedPowerBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		n := 3 + int(seed%13+13)%13
		tr := make([]transcode.Observation, 0, n)
		tcur := 0.0
		lo, hi := 60.0, 120.0
		s := uint64(seed)
		next := func() float64 { // tiny deterministic LCG
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 999
		}
		for i := 0; i < n; i++ {
			tcur += 0.01 + next()
			tr = append(tr, obs(i, tcur, 25, lo+(hi-lo)*next()))
		}
		p, err := TimeWeightedPower([][]transcode.Observation{tr}, tr[0].Time, tr[len(tr)-1].Time+1)
		if err != nil {
			return false
		}
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	trace := []transcode.Observation{obs(0, 0.5, 25, 80), obs(1, 0.54, 26, 81)}
	trace[0].SequenceName = "Kimono"
	if err := WriteTraceCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,time_s,fps") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Kimono") {
		t.Errorf("row = %q", lines[1])
	}
}
