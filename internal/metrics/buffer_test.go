package metrics

import (
	"testing"

	"mamut/internal/transcode"
)

// traceAt builds a trace with the given completion times.
func traceAt(times ...float64) []transcode.Observation {
	out := make([]transcode.Observation, len(times))
	for i, t := range times {
		out[i] = transcode.Observation{FrameIndex: i, Time: t}
	}
	return out
}

func TestBufferedViolationsOnSchedule(t *testing.T) {
	// 24 FPS exactly: frame i completes at i/24. No stalls.
	times := make([]float64, 48)
	for i := range times {
		times[i] = float64(i) / 24
	}
	q, err := BufferedViolations(traceAt(times...), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", q.Stalls)
	}
	if q.Frames != 48 {
		t.Errorf("frames = %d", q.Frames)
	}
}

func TestBufferedViolationsAbsorbsTransientDip(t *testing.T) {
	// Encode at 30 FPS for 30 frames (builds buffer), then one slow frame
	// (0.25 s), then 30 FPS again. The accumulated earliness should cover
	// the dip: no stalls with an unbounded buffer.
	var times []float64
	tcur := 0.0
	for i := 0; i < 30; i++ {
		tcur += 1.0 / 30
		times = append(times, tcur)
	}
	tcur += 0.25
	times = append(times, tcur)
	for i := 0; i < 30; i++ {
		tcur += 1.0 / 30
		times = append(times, tcur)
	}
	q, err := BufferedViolations(traceAt(times...), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stalls != 0 {
		t.Errorf("stalls = %d, want 0 (buffer should absorb the dip)", q.Stalls)
	}
}

func TestBufferedViolationsChronicUnderrun(t *testing.T) {
	// Encoding at 12 FPS against a 24 FPS playout: everything after the
	// pre-roll stalls.
	times := make([]float64, 24)
	for i := range times {
		times[i] = float64(i) / 12
	}
	q, err := BufferedViolations(traceAt(times...), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stalls < 20 {
		t.Errorf("stalls = %d, want most frames", q.Stalls)
	}
	if q.MaxLatenessSec <= 0 {
		t.Error("max lateness not recorded")
	}
}

func TestBufferedViolationsEarlinessCoversLaterDip(t *testing.T) {
	// Race far ahead (60 FPS for 60 frames), then one 0.5 s stall: the
	// accumulated earliness covers it completely.
	var times []float64
	tcur := 0.0
	for i := 0; i < 60; i++ {
		tcur += 1.0 / 60
		times = append(times, tcur)
	}
	tcur += 0.5
	times = append(times, tcur)
	q, err := BufferedViolations(traceAt(times...), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", q.Stalls)
	}
}

func TestBufferedViolationsPreroll(t *testing.T) {
	// A slow start is forgiven by a long pre-roll: playout begins only
	// after startupFrames are transcoded.
	times := []float64{1.0, 2.0, 2.04, 2.08, 2.12} // two slow, then 24 FPS
	slowStart, err := BufferedViolations(traceAt(times...), 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if slowStart.Stalls != 0 {
		t.Errorf("stalls = %d, want 0 with pre-roll 2", slowStart.Stalls)
	}
}

func TestBufferedViolationsErrors(t *testing.T) {
	if _, err := BufferedViolations(nil, 0, 1); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := BufferedViolations(nil, 24, 0); err == nil {
		t.Error("zero pre-roll accepted")
	}
	bad := []transcode.Observation{{FrameIndex: 3, Time: 1}, {FrameIndex: 2, Time: 2}}
	if _, err := BufferedViolations(bad, 24, 1); err == nil {
		t.Error("out-of-order trace accepted")
	}
	empty, err := BufferedViolations(nil, 24, 1)
	if err != nil || empty.Frames != 0 {
		t.Error("empty trace mishandled")
	}
}
