package metrics

import (
	"fmt"
	"math"
)

// This file holds the streaming counterparts of the offline aggregations:
// accumulators that fold one sample at a time in O(1) memory, so a
// serving run's metrics no longer require retaining per-frame traces or
// per-session logs for an end-of-run replay. Each accumulator is
// deterministic — feeding the same sample sequence produces bit-identical
// results — which is what lets the serve dispatcher keep its
// "byte-identical for any worker count / dispatcher" guarantees while
// dropping O(total sessions) retention.

// PowerIntegrator integrates the step function defined by a stream of
// power readings over the window [from, to], producing the same
// time-weighted average as TimeWeightedPower — bit for bit — without
// retaining the trace. Samples must be fed in non-decreasing time order;
// a transcode engine emits its observations exactly so, and equal-time
// readings within one completion batch share a single meter reading, so
// the emission order reproduces the offline sorted-merge order.
//
// Each reading holds until the next one; the final reading holds until
// the window end, and the first reading extends backwards over any
// leading gap — the same step-function convention TimeWeightedPower
// integrates. The arithmetic (segment clipping, skip tests, addition
// order) mirrors the offline loop exactly so the two agree to the last
// ulp.
type PowerIntegrator struct {
	from, to float64

	n              int
	firstT, firstW float64
	prevT, prevW   float64
	energy         float64
	covered        float64
}

// NewPowerIntegrator returns an integrator over the window [from, to].
// The window's validity is checked at Average time, matching the offline
// error contract.
func NewPowerIntegrator(from, to float64) *PowerIntegrator {
	return &PowerIntegrator{from: from, to: to}
}

// Add feeds one power reading at time t. Times must be non-decreasing.
func (p *PowerIntegrator) Add(t, w float64) {
	if p.n == 0 {
		p.firstT, p.firstW = t, w
	} else {
		p.segment(p.prevT, t, p.prevW)
	}
	p.prevT, p.prevW = t, w
	p.n++
}

// segment books the span [segStart, segEnd) at power w, clipped to the
// window — the exact branch sequence of the offline integration loop.
func (p *PowerIntegrator) segment(segStart, segEnd, w float64) {
	if segEnd <= p.from || segStart >= p.to {
		return
	}
	if segStart < p.from {
		segStart = p.from
	}
	if segEnd > p.to {
		segEnd = p.to
	}
	if segEnd > segStart {
		p.energy += w * (segEnd - segStart)
		p.covered += segEnd - segStart
	}
}

// Samples reports how many readings have been fed.
func (p *PowerIntegrator) Samples() int { return p.n }

// Average closes the integration (the last reading holds to the window
// end, the first extends back over any leading gap) and returns the
// time-weighted mean power. It does not mutate the accumulator, so it
// may be called repeatedly and interleaved with Add. The error cases are
// those of TimeWeightedPower: an empty window, no samples (ErrNoSamples,
// the caller's idle fallback), and a window left uncovered.
func (p *PowerIntegrator) Average() (float64, error) {
	if p.to <= p.from {
		return 0, fmt.Errorf("metrics: empty interval [%g,%g]", p.from, p.to)
	}
	if p.n == 0 {
		return 0, fmt.Errorf("%w in [%g,%g]", ErrNoSamples, p.from, p.to)
	}
	energy, covered := p.energy, p.covered
	// Final segment: the last reading holds until the window end.
	segStart, segEnd := p.prevT, p.to
	if !(segEnd <= p.from || segStart >= p.to) {
		if segStart < p.from {
			segStart = p.from
		}
		if segEnd > segStart {
			energy += p.prevW * (segEnd - segStart)
			covered += segEnd - segStart
		}
	}
	// Leading gap before the first sample: extend the first reading back.
	// Added last, after every forward segment, exactly as offline.
	if first := p.firstT; first > p.from {
		lead := math.Min(first, p.to) - p.from
		if lead > 0 {
			energy += p.firstW * lead
			covered += lead
		}
	}
	if covered <= 0 {
		return 0, fmt.Errorf("%w: interval [%g,%g] not covered", ErrNoSamples, p.from, p.to)
	}
	return energy / covered, nil
}

// Histogram is a fixed-bin streaming quantile sketch over [lo, hi):
// values are counted into equal-width bins plus underflow/overflow
// tails, and quantiles are read back with linear interpolation inside
// the containing bin. Unlike sampling sketches it is deterministic and
// order-independent (insertion order cannot change any estimate), and
// two histograms over the same range merge exactly — the properties the
// serve layer needs for bit-identical results across dispatchers and
// worker counts. Resolution is (hi-lo)/bins; tails clamp to the range
// bounds.
type Histogram struct {
	lo, hi      float64
	counts      []int
	under, over int
	n           int
}

// NewHistogram returns a histogram over [lo, hi) with the given number
// of equal-width bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("metrics: histogram range [%g,%g) is empty", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("metrics: histogram needs at least 1 bin, got %d", bins)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}, nil
}

// Add counts one value.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
		if i >= len(h.counts) { // guard against rounding at the top edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N reports how many values have been counted.
func (h *Histogram) N() int { return h.n }

// Quantile returns the q-quantile (q in [0,1]) estimated by linear
// interpolation within the containing bin; underflow and overflow mass
// clamps to the range bounds. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			binLo := h.lo + float64(i)*width
			return binLo + width*(target-cum)/float64(c)
		}
		cum = next
	}
	return h.hi
}

// Merge folds another histogram into this one. The ranges and bin counts
// must match exactly.
func (h *Histogram) Merge(o *Histogram) error {
	if h.lo != o.lo || h.hi != o.hi || len(h.counts) != len(o.counts) {
		return fmt.Errorf("metrics: merging mismatched histograms ([%g,%g)x%d vs [%g,%g)x%d)",
			h.lo, h.hi, len(h.counts), o.lo, o.hi, len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.n += o.n
	return nil
}

// DecayedMean is an exponentially time-decayed weighted mean: each
// sample's weight decays as exp(-age/tau), so At reports a recency-
// weighted view of the sample stream — "how is the service doing
// lately" — rather than the lifetime average. Feeding an indicator
// scaled to {0, 100} makes it a windowed percentage. Samples must be
// fed in non-decreasing time order.
type DecayedMean struct {
	tau      float64
	t        float64
	num, den float64
}

// NewDecayedMean returns a decayed mean with time constant tau (seconds).
func NewDecayedMean(tau float64) (*DecayedMean, error) {
	if !(tau > 0) {
		return nil, fmt.Errorf("metrics: decay time constant %g must be positive", tau)
	}
	return &DecayedMean{tau: tau}, nil
}

// Tau returns the time constant.
func (m *DecayedMean) Tau() float64 { return m.tau }

// Add folds one sample observed at time t with unit weight.
func (m *DecayedMean) Add(t, x float64) {
	if dt := t - m.t; dt > 0 {
		f := math.Exp(-dt / m.tau)
		m.num *= f
		m.den *= f
		m.t = t
	}
	m.num += x
	m.den++
}

// Value returns the decayed mean (0 before any sample). Numerator and
// denominator decay by the same factor, so the ratio needs no "as seen
// from" time: only the relative ages of the samples matter.
func (m *DecayedMean) Value() float64 {
	if m.den == 0 {
		return 0
	}
	return m.num / m.den
}

// Merge folds another decayed mean into this one: the side anchored
// earlier is decayed to the later anchor and the weighted sums add, so
// the result is the decayed mean of the union of the two sample streams.
// The time constants must match. Merging is exactly commutative (IEEE
// addition commutes) and associative up to floating-point rounding in
// the composed decay factors — exp(-a)*exp(-b) vs exp(-(a+b)) — so
// shard-partitioned streams merge to the same value whatever the split,
// within a few ulp (property-tested in merge_test.go).
func (m *DecayedMean) Merge(o *DecayedMean) error {
	if m.tau != o.tau {
		return fmt.Errorf("metrics: merging decayed means with different time constants (%g vs %g)", m.tau, o.tau)
	}
	if o.den == 0 {
		return nil
	}
	if m.den == 0 {
		m.t, m.num, m.den = o.t, o.num, o.den
		return nil
	}
	num, den, t := o.num, o.den, o.t
	if dt := m.t - t; dt > 0 {
		// The other side is older: decay it forward to our anchor.
		f := math.Exp(-dt / m.tau)
		num *= f
		den *= f
		t = m.t
	} else if dt < 0 {
		// We are older: decay ourselves forward to the other anchor.
		f := math.Exp(dt / m.tau)
		m.num *= f
		m.den *= f
	}
	m.t = t
	m.num += num
	m.den += den
	return nil
}
