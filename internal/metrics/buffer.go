package metrics

import (
	"fmt"

	"mamut/internal/transcode"
)

// BufferedQoS evaluates delivery-side QoS with a playout buffer, the
// mechanism paper SIII-D.a invokes to justify rewarding FPS above the
// target: "spare encoded frames can be buffered. Buffered frames can be
// used to compensate the overall framerate if, at some points, FPS
// temporarily drops below the target."
//
// The model: the viewer consumes one frame every 1/target seconds once
// playout starts; frames finished early queue in a buffer of bufferCap
// frames. A frame is a *stall* (buffered violation) if its playout
// deadline passes before it has been transcoded. startupFrames are
// buffered before playout begins (the usual pre-roll).
type BufferedQoS struct {
	// Stalls counts frames delivered after their playout deadline.
	Stalls int
	// StallPct is Stalls as a percentage of the evaluated frames.
	StallPct float64
	// MaxLatenessSec is the worst deadline miss observed.
	MaxLatenessSec float64
	// Frames is the number of frames evaluated.
	Frames int
}

// BufferedViolations computes BufferedQoS over a trace. The trace must be
// one session's observations in frame order. startupFrames is the
// pre-roll (at least 1). The sender buffer is unbounded, the natural
// reading for transcode-ahead delivery; encoder back-pressure from a
// bounded buffer would change the engine's timing and is not modelled.
func BufferedViolations(trace []transcode.Observation, targetFPS float64, startupFrames int) (BufferedQoS, error) {
	if targetFPS <= 0 {
		return BufferedQoS{}, fmt.Errorf("metrics: target FPS %g invalid", targetFPS)
	}
	if startupFrames < 1 {
		return BufferedQoS{}, fmt.Errorf("metrics: startup frames %d < 1", startupFrames)
	}
	out := BufferedQoS{Frames: len(trace)}
	if len(trace) == 0 {
		return out, nil
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].FrameIndex <= trace[i-1].FrameIndex {
			return BufferedQoS{}, fmt.Errorf("metrics: trace not in frame order at %d", i)
		}
	}
	period := 1 / targetFPS
	// Playout starts when the pre-roll is transcoded (or at the last
	// frame if the trace is shorter than the pre-roll).
	prerollIdx := startupFrames - 1
	if prerollIdx >= len(trace) {
		prerollIdx = len(trace) - 1
	}
	playoutStart := trace[prerollIdx].Time
	for i, o := range trace {
		deadline := playoutStart + float64(i-prerollIdx)*period
		if i <= prerollIdx {
			deadline = playoutStart
		}
		if late := o.Time - deadline; late > 1e-9 {
			out.Stalls++
			if late > out.MaxLatenessSec {
				out.MaxLatenessSec = late
			}
		}
	}
	out.StallPct = 100 * float64(out.Stalls) / float64(len(trace))
	return out, nil
}
