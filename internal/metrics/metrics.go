// Package metrics turns per-frame observations into the aggregate numbers
// the paper reports: average power (Watts), average threads per video
// (Nth), average throughput (FPS), the QoS-violation percentage (Delta),
// PSNR and bitrate. It supports windowing (to exclude the learning phase)
// and averaging across repetitions.
//
// Alongside the offline (retained-trace) aggregations, streaming.go
// provides their online counterparts for long-horizon serving runs:
// PowerIntegrator (time-weighted power, bit-identical to
// TimeWeightedPower over the same sample sequence), Histogram (a
// deterministic fixed-bin quantile sketch for p50/p95/p99) and
// DecayedMean (exponentially time-decayed averages). Each folds one
// sample at a time in O(1) memory.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mamut/internal/transcode"
)

// ErrNoSamples reports that TimeWeightedPower had no power readings to
// integrate over the requested window. Callers can treat it as "the
// server was idle over the window" (falling back to idle power) while
// still propagating every other error, which signals a caller bug.
var ErrNoSamples = errors.New("metrics: no power samples")

// SessionSummary aggregates one session's observations over a window.
type SessionSummary struct {
	// Frames is the number of observations summarised.
	Frames int
	// DeltaPct is the percentage of frames whose windowed FPS fell below
	// the target (the paper's QoS-violation metric).
	DeltaPct float64
	// Averages over the window.
	AvgFPS         float64
	AvgPSNRdB      float64
	AvgBitrateMbps float64
	AvgThreads     float64
	AvgFreqGHz     float64
	AvgQP          float64
}

// Summarize aggregates a slice of observations (already windowed by the
// caller) against the given FPS target.
func Summarize(trace []transcode.Observation, targetFPS float64) SessionSummary {
	s := SessionSummary{Frames: len(trace)}
	if len(trace) == 0 {
		return s
	}
	viol := 0
	for _, o := range trace {
		if o.FPS < targetFPS {
			viol++
		}
		s.AvgFPS += o.FPS
		s.AvgPSNRdB += o.PSNRdB
		s.AvgBitrateMbps += o.BitrateMbps
		s.AvgThreads += float64(o.Settings.Threads)
		s.AvgFreqGHz += o.Settings.FreqGHz
		s.AvgQP += float64(o.Settings.QP)
	}
	n := float64(len(trace))
	s.DeltaPct = 100 * float64(viol) / n
	s.AvgFPS /= n
	s.AvgPSNRdB /= n
	s.AvgBitrateMbps /= n
	s.AvgThreads /= n
	s.AvgFreqGHz /= n
	s.AvgQP /= n
	return s
}

// Window clips a trace to observations with FrameIndex in [from, to).
func Window(trace []transcode.Observation, from, to int) []transcode.Observation {
	var out []transcode.Observation
	for _, o := range trace {
		if o.FrameIndex >= from && o.FrameIndex < to {
			out = append(out, o)
		}
	}
	return out
}

// TimeWeightedPower estimates the time-averaged package power over the
// simulated interval [from, to] by integrating the step function defined
// by the merged, time-sorted power readings of all session traces. The
// power reading attached to each observation is the global server power at
// that completion time, so merging all sessions gives a dense sampling.
func TimeWeightedPower(traces [][]transcode.Observation, from, to float64) (float64, error) {
	if to <= from {
		return 0, fmt.Errorf("metrics: empty interval [%g,%g]", from, to)
	}
	type sample struct{ t, w float64 }
	var samples []sample
	for _, tr := range traces {
		for _, o := range tr {
			samples = append(samples, sample{o.Time, o.PowerW})
		}
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("%w in [%g,%g]", ErrNoSamples, from, to)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].t < samples[j].t })

	// Integrate: each sample's reading holds until the next sample.
	var energy, covered float64
	for i, s := range samples {
		segStart := s.t
		segEnd := to
		if i+1 < len(samples) {
			segEnd = samples[i+1].t
		}
		if segEnd <= from || segStart >= to {
			continue
		}
		if segStart < from {
			segStart = from
		}
		if segEnd > to {
			segEnd = to
		}
		if segEnd > segStart {
			energy += s.w * (segEnd - segStart)
			covered += segEnd - segStart
		}
	}
	// Leading gap before the first sample: extend the first reading back.
	if first := samples[0].t; first > from {
		lead := math.Min(first, to) - from
		if lead > 0 {
			energy += samples[0].w * lead
			covered += lead
		}
	}
	if covered <= 0 {
		return 0, fmt.Errorf("%w: interval [%g,%g] not covered", ErrNoSamples, from, to)
	}
	return energy / covered, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanSummary averages per-repetition session summaries field by field.
func MeanSummary(sums []SessionSummary) SessionSummary {
	if len(sums) == 0 {
		return SessionSummary{}
	}
	var out SessionSummary
	for _, s := range sums {
		out.Frames += s.Frames
		out.DeltaPct += s.DeltaPct
		out.AvgFPS += s.AvgFPS
		out.AvgPSNRdB += s.AvgPSNRdB
		out.AvgBitrateMbps += s.AvgBitrateMbps
		out.AvgThreads += s.AvgThreads
		out.AvgFreqGHz += s.AvgFreqGHz
		out.AvgQP += s.AvgQP
	}
	n := float64(len(sums))
	out.Frames = int(float64(out.Frames) / n)
	out.DeltaPct /= n
	out.AvgFPS /= n
	out.AvgPSNRdB /= n
	out.AvgBitrateMbps /= n
	out.AvgThreads /= n
	out.AvgFreqGHz /= n
	out.AvgQP /= n
	return out
}
