package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// Shard reconciliation folds per-shard aggregates back into the global
// ones, so the merge operations must not care how a sample stream was
// partitioned or in which order the partitions fold. These property
// tests drive random streams through random splits and assert exactly
// that: Histogram.Merge is integer arithmetic and must agree bit for
// bit; DecayedMean.Merge composes decay factors and is held to a few
// ulp.

// mergeSplit deals each sample of a stream to one of k partitions at
// random, preserving per-partition time order (a shard sees its subset
// of the stream in stream order).
func mergeSplit(rng *rand.Rand, n, k int) [][]int {
	parts := make([][]int, k)
	for i := 0; i < n; i++ {
		p := rng.Intn(k)
		parts[p] = append(parts[p], i)
	}
	return parts
}

// TestHistogramMergeProperties: merging random partitions of a stream,
// in a random partition order, reproduces the single-stream histogram
// exactly — every bin count, both tails, and every quantile.
func TestHistogramMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64() * 10
		hi := lo + 1 + rng.Float64()*50
		bins := 1 + rng.Intn(64)
		n := rng.Intn(400)
		// Samples spill past the range on purpose so the tails merge too.
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = lo + (rng.Float64()*1.4-0.2)*(hi-lo)
		}

		whole, err := NewHistogram(lo, hi, bins)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			whole.Add(x)
		}

		k := 1 + rng.Intn(6)
		parts := make([]*Histogram, k)
		for p := range parts {
			parts[p], _ = NewHistogram(lo, hi, bins)
		}
		for p, idxs := range mergeSplit(rng, n, k) {
			for _, i := range idxs {
				parts[p].Add(xs[i])
			}
		}
		merged, _ := NewHistogram(lo, hi, bins)
		for _, p := range rng.Perm(k) {
			if err := merged.Merge(parts[p]); err != nil {
				t.Fatal(err)
			}
		}

		if merged.n != whole.n || merged.under != whole.under || merged.over != whole.over {
			t.Fatalf("trial %d: totals diverged: merged (n=%d u=%d o=%d) vs whole (n=%d u=%d o=%d)",
				trial, merged.n, merged.under, merged.over, whole.n, whole.under, whole.over)
		}
		for i := range whole.counts {
			if merged.counts[i] != whole.counts[i] {
				t.Fatalf("trial %d: bin %d diverged: %d vs %d", trial, i, merged.counts[i], whole.counts[i])
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
			if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
				t.Fatalf("trial %d: q%.2f diverged: %v vs %v", trial, q, got, want)
			}
		}
	}
}

// TestHistogramMergeAssociativity: (a⊔b)⊔c equals a⊔(b⊔c) exactly.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		bins := 1 + rng.Intn(16)
		fill := func() *Histogram {
			h, _ := NewHistogram(0, 100, bins)
			for i := rng.Intn(50); i > 0; i-- {
				h.Add(rng.Float64()*120 - 10)
			}
			return h
		}
		a1, b1, c1 := fill(), fill(), fill()
		a2, _ := NewHistogram(0, 100, bins)
		if err := a2.Merge(a1); err != nil {
			t.Fatal(err)
		}
		// Left fold: (a ⊔ b) ⊔ c.
		left := *a2
		left.counts = append([]int(nil), a2.counts...)
		if err := left.Merge(b1); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(c1); err != nil {
			t.Fatal(err)
		}
		// Right fold: a ⊔ (b ⊔ c).
		bc := *b1
		bc.counts = append([]int(nil), b1.counts...)
		if err := bc.Merge(c1); err != nil {
			t.Fatal(err)
		}
		right := *a2
		right.counts = append([]int(nil), a2.counts...)
		if err := right.Merge(&bc); err != nil {
			t.Fatal(err)
		}
		if left.n != right.n || left.under != right.under || left.over != right.over {
			t.Fatalf("trial %d: association changed totals", trial)
		}
		for i := range left.counts {
			if left.counts[i] != right.counts[i] {
				t.Fatalf("trial %d: association changed bin %d", trial, i)
			}
		}
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a, _ := NewHistogram(0, 10, 8)
	b, _ := NewHistogram(0, 10, 9)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bin counts should fail")
	}
	c, _ := NewHistogram(0, 11, 8)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched ranges should fail")
	}
}

// decayedSample is one (time, value) observation of a stream.
type decayedSample struct{ t, x float64 }

// TestDecayedMeanMergeProperties: partitioning a time-ordered stream
// into random shards, folding each shard into its own DecayedMean, and
// merging in a random order must agree with the single-stream value up
// to floating-point rounding in the composed decay factors.
func TestDecayedMeanMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 200; trial++ {
		tau := 1 + rng.Float64()*100
		n := 1 + rng.Intn(300)
		samples := make([]decayedSample, n)
		clock := rng.Float64() * 10
		for i := range samples {
			clock += rng.Float64() * 3
			samples[i] = decayedSample{clock, rng.Float64() * 100}
		}

		whole, err := NewDecayedMean(tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			whole.Add(s.t, s.x)
		}

		k := 1 + rng.Intn(6)
		parts := make([]*DecayedMean, k)
		for p := range parts {
			parts[p], _ = NewDecayedMean(tau)
		}
		for p, idxs := range mergeSplit(rng, n, k) {
			for _, i := range idxs {
				parts[p].Add(samples[i].t, samples[i].x)
			}
		}
		merged, _ := NewDecayedMean(tau)
		for _, p := range rng.Perm(k) {
			if err := merged.Merge(parts[p]); err != nil {
				t.Fatal(err)
			}
		}

		got, want := merged.Value(), whole.Value()
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d (k=%d): merged %v vs whole %v (diff %g)", trial, k, got, want, got-want)
		}
	}
}

// TestDecayedMeanMergeCommutes: a⊔b and b⊔a are bit-identical — the
// younger anchor always wins and IEEE addition commutes, so there is no
// rounding asymmetry at all for a single pairwise merge.
func TestDecayedMeanMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 200; trial++ {
		tau := 1 + rng.Float64()*50
		fill := func() *DecayedMean {
			m, _ := NewDecayedMean(tau)
			clock := rng.Float64() * 5
			for i := rng.Intn(40); i > 0; i-- {
				clock += rng.Float64() * 2
				m.Add(clock, rng.Float64()*10)
			}
			return m
		}
		a, b := fill(), fill()
		ab, ba := *a, *b
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if ab != ba {
			t.Fatalf("trial %d: merge does not commute: %+v vs %+v", trial, ab, ba)
		}
	}
}

func TestDecayedMeanMergeEdges(t *testing.T) {
	a, _ := NewDecayedMean(10)
	b, _ := NewDecayedMean(10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Value() != 0 {
		t.Fatalf("empty⊔empty should stay empty, got %v", a.Value())
	}
	b.Add(3, 42)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Value() != 42 {
		t.Fatalf("empty⊔{42} should equal 42, got %v", a.Value())
	}
	c, _ := NewDecayedMean(20)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different time constants should fail")
	}
}

// TestDecayedMeanMergeEmptyRightExact: x⊔empty must leave x bit-exact —
// the merge early-returns before touching the anchor or the sums, so
// folding idle shards can never perturb a stream.
func TestDecayedMeanMergeEmptyRightExact(t *testing.T) {
	a, _ := NewDecayedMean(10)
	a.Add(1, 3.25)
	a.Add(4, 7.5)
	before := *a
	empty, _ := NewDecayedMean(10)
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if *a != before {
		t.Fatalf("x⊔empty changed the receiver: %+v vs %+v", *a, before)
	}
}

// TestDecayedMeanMergeEqualAnchors: when both sides are anchored at the
// same instant no decay factor is applied at all — the merge is plain
// IEEE addition of the weighted sums, so the result is exact, not
// merely within tolerance.
func TestDecayedMeanMergeEqualAnchors(t *testing.T) {
	a, _ := NewDecayedMean(10)
	b, _ := NewDecayedMean(10)
	a.Add(5, 3)
	b.Add(5, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// (3+7)/(1+1): both sums are small integers, so the mean is exact.
	if a.Value() != 5 {
		t.Fatalf("equal-anchor merge: got %v, want exactly 5", a.Value())
	}
	// Still exact with unequal weights on each side.
	c, _ := NewDecayedMean(10)
	d, _ := NewDecayedMean(10)
	c.Add(2, 1)
	c.Add(2, 1)
	c.Add(2, 1)
	d.Add(2, 9)
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 3 {
		t.Fatalf("equal-anchor merge: got %v, want exactly (1+1+1+9)/4 = 3", c.Value())
	}
}

// TestDecayedMeanMergeTinyTauUnderflow: with a tiny time constant the
// decay factor exp(-dt/tau) underflows to exactly 0.0, so the older
// side vanishes completely and the merge equals the newer side bit for
// bit — underflow degrades to "only the newest samples matter", never
// to NaN or garbage.
func TestDecayedMeanMergeTinyTauUnderflow(t *testing.T) {
	const tau = 1e-12
	old, _ := NewDecayedMean(tau)
	old.Add(0, 1e300) // enormous, but about to be decayed to zero
	fresh, _ := NewDecayedMean(tau)
	fresh.Add(1, 42)
	want := *fresh
	if err := old.Merge(fresh); err != nil {
		t.Fatal(err)
	}
	if *old != want {
		t.Fatalf("underflow merge: got %+v, want the newer side exactly %+v", *old, want)
	}
	if old.Value() != 42 {
		t.Fatalf("underflow merge: value %v, want exactly 42", old.Value())
	}
	// The mirrored merge (newer receiver, older argument) must agree —
	// the older side decays to zero on either side of the call.
	fresh2, _ := NewDecayedMean(tau)
	fresh2.Add(1, 42)
	old2, _ := NewDecayedMean(tau)
	old2.Add(0, 1e300)
	if err := fresh2.Merge(old2); err != nil {
		t.Fatal(err)
	}
	if *fresh2 != want {
		t.Fatalf("mirrored underflow merge: got %+v, want %+v", *fresh2, want)
	}
}
