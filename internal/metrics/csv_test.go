package metrics

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"mamut/internal/transcode"
)

func sampleTrace() []transcode.Observation {
	return []transcode.Observation{
		{
			FrameIndex: 0, Time: 0.0417, FPS: 24.0, InstFPS: 24.0,
			PSNRdB: 38.25, BitrateMbps: 4.125, PowerW: 96.5,
			Settings:   transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6},
			Complexity: 1.05, SceneChange: true, SequenceName: "Kimono",
		},
		{
			FrameIndex: 1, Time: 0.0833, FPS: 24.1, InstFPS: 24.2,
			PSNRdB: 38.11, BitrateMbps: 4.0, PowerW: 95.25,
			Settings:   transcode.Settings{QP: 33, Threads: 5, FreqGHz: 2.3},
			Complexity: 0.98, SceneChange: false, SequenceName: "Kimono",
		},
	}
}

func TestWriteTraceCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want header + 2 rows", len(recs))
	}
	header := recs[0]
	if header[0] != "frame" || header[len(header)-1] != "sequence" {
		t.Errorf("unexpected header %v", header)
	}
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(rec), len(header))
		}
	}
	col := func(rec []string, name string) string {
		for i, h := range header {
			if h == name {
				return rec[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	obs := sampleTrace()[1]
	row := recs[2]
	if got := col(row, "frame"); got != "1" {
		t.Errorf("frame = %s", got)
	}
	if got, _ := strconv.ParseFloat(col(row, "psnr_db"), 64); got != 38.11 {
		t.Errorf("psnr_db = %g, want %g", got, obs.PSNRdB)
	}
	if got := col(row, "qp"); got != "33" {
		t.Errorf("qp = %s", got)
	}
	if got := col(row, "scene_change"); got != "false" {
		t.Errorf("scene_change = %s", got)
	}
	if got := col(row, "sequence"); got != "Kimono" {
		t.Errorf("sequence = %s", got)
	}
}

func TestWriteTraceCSVEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if strings.Count(out, "\n") != 0 || !strings.HasPrefix(out, "frame,") {
		t.Errorf("empty trace should emit only the header, got %q", out)
	}
}

// failWriter errors after n bytes, exercising the error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteTraceCSVPropagatesWriteErrors(t *testing.T) {
	// The csv package buffers, so errors surface at Flush regardless of
	// where the underlying writer failed; any byte budget must error.
	for _, budget := range []int{0, 10, 100} {
		if err := WriteTraceCSV(&failWriter{n: budget}, sampleTrace()); err == nil {
			t.Errorf("budget %d: no error from failing writer", budget)
		}
	}
}
