package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mamut/internal/transcode"
)

// TestPowerIntegratorMatchesOffline: the streaming integrator must
// reproduce TimeWeightedPower bit for bit when fed the merged readings
// in time order — the property the serve layer relies on to drop trace
// retention without moving a single golden byte.
func TestPowerIntegratorMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		from := rng.Float64() * 50
		to := from + 1 + rng.Float64()*100
		// Build multi-session traces the way an engine emits them: a
		// shared clock advancing in batches, every observation in one
		// batch sharing the batch's time and meter reading.
		nSessions := 1 + rng.Intn(4)
		traces := make([][]transcode.Observation, nSessions)
		type sample struct{ t, w float64 }
		var emitted []sample
		clock := rng.Float64() * 20
		for ev := 0; ev < rng.Intn(60); ev++ {
			clock += rng.Float64() * 5
			w := 50 + rng.Float64()*150
			batch := 1 + rng.Intn(3)
			for b := 0; b < batch; b++ {
				s := rng.Intn(nSessions)
				traces[s] = append(traces[s], transcode.Observation{Time: clock, PowerW: w})
				emitted = append(emitted, sample{clock, w})
			}
		}
		want, wantErr := TimeWeightedPower(traces, from, to)

		p := NewPowerIntegrator(from, to)
		for _, s := range emitted {
			p.Add(s.t, s.w)
		}
		got, gotErr := p.Average()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: offline %v, streaming %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("trial %d: error text mismatch: offline %q, streaming %q", trial, wantErr, gotErr)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: streaming %v != offline %v (diff %g)", trial, got, want, got-want)
		}
	}
}

// TestPowerIntegratorErrors pins the offline error contract: empty
// window, no samples (ErrNoSamples, the idle fallback), and error texts
// matching TimeWeightedPower's.
func TestPowerIntegratorErrors(t *testing.T) {
	// Empty window.
	p := NewPowerIntegrator(10, 10)
	p.Add(5, 100)
	if _, err := p.Average(); err == nil {
		t.Error("empty window accepted")
	} else if errors.Is(err, ErrNoSamples) {
		t.Errorf("empty window misreported as ErrNoSamples: %v", err)
	}

	// No samples: ErrNoSamples so callers can fall back to idle power.
	p = NewPowerIntegrator(0, 10)
	if _, err := p.Average(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("no samples: got %v, want ErrNoSamples", err)
	}

	// Error texts match the offline integration exactly.
	if _, offline := TimeWeightedPower(nil, 3, 7); offline != nil {
		if _, streaming := NewPowerIntegrator(3, 7).Average(); streaming == nil ||
			streaming.Error() != offline.Error() {
			t.Errorf("no-samples text: offline %q, streaming %v", offline, streaming)
		}
	}
	if _, offline := TimeWeightedPower(nil, 7, 3); offline != nil {
		if _, streaming := NewPowerIntegrator(7, 3).Average(); streaming == nil ||
			streaming.Error() != offline.Error() {
			t.Errorf("empty-interval text: offline %q, streaming %v", offline, streaming)
		}
	}
}

// TestPowerIntegratorIdempotentAverage: Average must not consume state —
// reading mid-stream and at the end gives the same final answer.
func TestPowerIntegratorIdempotentAverage(t *testing.T) {
	p := NewPowerIntegrator(0, 100)
	p.Add(10, 100)
	if _, err := p.Average(); err != nil {
		t.Fatal(err)
	}
	p.Add(50, 200)
	a1, err := p.Average()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Average()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("repeated Average: %v then %v", a1, a2)
	}
	want, err := TimeWeightedPower([][]transcode.Observation{
		{{Time: 10, PowerW: 100}, {Time: 50, PowerW: 200}},
	}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != want {
		t.Errorf("Average %v != offline %v", a2, want)
	}
}

// TestHistogramQuantiles: exact known distributions, tail clamping and
// order independence.
func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	// Uniform 0.5, 1.5, ..., 99.5: one value per bin.
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 1}, {0.95, 95, 1}, {0.99, 99, 1}, {0, 0, 1}, {1, 100, 0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q=%g: got %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}

	// Tails clamp to the range bounds.
	h2, _ := NewHistogram(0, 10, 10)
	h2.Add(-5)
	h2.Add(50)
	if got := h2.Quantile(0.25); got != 0 {
		t.Errorf("underflow quantile = %g, want 0", got)
	}
	if got := h2.Quantile(1); got != 10 {
		t.Errorf("overflow quantile = %g, want 10", got)
	}

	// Order independence: shuffled insertion gives identical quantiles.
	rng := rand.New(rand.NewSource(7))
	vals := rng.Perm(1000)
	ha, _ := NewHistogram(0, 1000, 64)
	hb, _ := NewHistogram(0, 1000, 64)
	for _, v := range vals {
		ha.Add(float64(v))
	}
	sort.Ints(vals)
	for _, v := range vals {
		hb.Add(float64(v))
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		if ha.Quantile(q) != hb.Quantile(q) {
			t.Errorf("q=%g: insertion order changed the estimate", q)
		}
	}
}

// TestHistogramMerge: merging equals feeding the union; mismatched
// shapes are rejected.
func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 10, 20)
	b, _ := NewHistogram(0, 10, 20)
	u, _ := NewHistogram(0, 10, 20)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 12 // includes overflow
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		u.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != u.N() {
		t.Fatalf("merged N=%d, union N=%d", a.N(), u.N())
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if a.Quantile(q) != u.Quantile(q) {
			t.Errorf("q=%g: merged %g != union %g", q, a.Quantile(q), u.Quantile(q))
		}
	}
	c, _ := NewHistogram(0, 10, 10)
	if err := a.Merge(c); err == nil {
		t.Error("mismatched bin count merged silently")
	}
}

// TestDecayedMean: recent samples dominate; without time gaps it is the
// plain mean; invalid tau is rejected.
func TestDecayedMean(t *testing.T) {
	if _, err := NewDecayedMean(0); err == nil {
		t.Error("tau=0 accepted")
	}
	m, err := NewDecayedMean(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Value(); got != 0 {
		t.Errorf("empty decayed mean = %g, want 0", got)
	}
	// Same-instant samples: exact arithmetic mean.
	m.Add(0, 10)
	m.Add(0, 20)
	if got := m.Value(); got != 15 {
		t.Errorf("undecayed mean = %g, want 15", got)
	}
	// A much later sample dominates: the old mass decayed by e^-10.
	m.Add(100, 90)
	if got := m.Value(); math.Abs(got-90) > 1e-2 {
		t.Errorf("decayed mean = %g, want ~90", got)
	}
	if m.Tau() != 10 {
		t.Errorf("Tau = %g, want 10", m.Tau())
	}
}
