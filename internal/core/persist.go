package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"mamut/internal/rl"
	"mamut/internal/transcode"
)

// controllerState is the serialised form of a Controller: the current
// knob values, the current discretized state, and the three agents'
// complete learning state.
type controllerState struct {
	Settings transcode.Settings `json:"settings"`
	CurState int                `json:"cur_state"`
	Agents   [3]json.RawMessage `json:"agents"`
}

// Save serialises the controller's learned state (all three agents'
// Q-tables, visit counts and transition models) so a trained MAMUT
// instance can be redeployed without relearning — the production
// equivalent of the paper's tables persisting across repetitions.
// Pending (not yet finalized) updates are not saved; save between frames
// or accept losing at most one in-flight action's update.
func (c *Controller) Save(w io.Writer) error {
	st := controllerState{Settings: c.settings, CurState: c.curState}
	for k := AgentQP; k < numAgents; k++ {
		var buf bytes.Buffer
		if err := c.agents[k].learner.Save(&buf); err != nil {
			return fmt.Errorf("core: save agent %v: %w", k, err)
		}
		st.Agents[k] = json.RawMessage(buf.Bytes())
	}
	if err := json.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save controller: %w", err)
	}
	return nil
}

// Load restores learning state saved with Save into this controller. The
// controller's configuration must declare the same action-set sizes as
// the saved one.
func (c *Controller) Load(r io.Reader) error {
	var st controllerState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: load controller: %w", err)
	}
	if err := st.Settings.Validate(); err != nil {
		return fmt.Errorf("core: load controller: %w", err)
	}
	if st.CurState < 0 || st.CurState >= NumStates {
		return fmt.Errorf("core: load controller: state %d out of range", st.CurState)
	}
	var loaded [3]*rl.Learner
	for k := AgentQP; k < numAgents; k++ {
		l, err := rl.LoadLearner(bytes.NewReader(st.Agents[k]))
		if err != nil {
			return fmt.Errorf("core: load agent %v: %w", k, err)
		}
		if l.Config().Actions != c.agents[k].actions() {
			return fmt.Errorf("core: load agent %v: %d actions saved, controller has %d",
				k, l.Config().Actions, c.agents[k].actions())
		}
		loaded[k] = l
	}
	for k := AgentQP; k < numAgents; k++ {
		c.agents[k].learner = loaded[k]
	}
	c.settings = st.Settings
	c.curState = st.CurState
	c.pend = nil
	return nil
}
