package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mamut/internal/rl"
	"mamut/internal/transcode"
)

// resumeFormatVersion is the current MarshalResumeState payload format.
// Restorers accept this version and older; newer payloads error cleanly.
const resumeFormatVersion = 1

// pendingState serialises the in-flight Q-update: the action awaiting its
// next-state observation plus the NULL-slot metric accumulators. Save/Load
// deliberately drop this (persisting a trained table between runs), but a
// live migration must carry it — losing it would skip one Q-update and
// fork the learning trajectory from the non-migrated baseline.
type pendingState struct {
	Agent      int     `json:"agent"`
	State      int     `json:"state"`
	Action     int     `json:"action"`
	SumPSNR    float64 `json:"sum_psnr"`
	SumPower   float64 `json:"sum_power"`
	SumBitrate float64 `json:"sum_bitrate"`
	SumFPS     float64 `json:"sum_fps"`
	N          int     `json:"n"`
}

// resumeState is the complete mid-stream controller state minus the rng,
// whose stream belongs to the caller that built the controller (the serve
// layer owns it as an xrand.Source and snapshots it alongside).
type resumeState struct {
	Version  int                `json:"format_version"`
	Settings transcode.Settings `json:"settings"`
	CurState int                `json:"cur_state"`
	Started  bool               `json:"started"`
	Stats    Stats              `json:"stats"`
	Pending  *pendingState      `json:"pending,omitempty"`
	Agents   [3]json.RawMessage `json:"agents"`
}

// MarshalResumeState freezes the controller's complete decision state:
// knob settings, discretized state, learning telemetry, the in-flight
// pending update, and all three agents' full learning state. Unlike Save,
// the payload restores a controller mid-stream with no behavioural fork.
// The exploration rng is not included; the owner of the *rand.Rand passed
// to New must snapshot its stream separately.
func (c *Controller) MarshalResumeState() ([]byte, error) {
	st := resumeState{
		Version:  resumeFormatVersion,
		Settings: c.settings,
		CurState: c.curState,
		Started:  c.started,
		Stats:    c.stats,
	}
	if p := c.pend; p != nil {
		st.Pending = &pendingState{
			Agent: int(p.agent), State: p.state, Action: p.action,
			SumPSNR: p.sumPSNR, SumPower: p.sumPower,
			SumBitrate: p.sumBitrate, SumFPS: p.sumFPS, N: p.n,
		}
	}
	for k := AgentQP; k < numAgents; k++ {
		var buf bytes.Buffer
		if err := c.agents[k].learner.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: resume state: save agent %v: %w", k, err)
		}
		st.Agents[k] = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	out, err := json.Marshal(&st)
	if err != nil {
		return nil, fmt.Errorf("core: resume state: %w", err)
	}
	return out, nil
}

// RestoreResumeState loads a MarshalResumeState payload into this
// controller, which must have been built with the same configuration
// (action-set sizes are checked). On success the controller continues the
// stream exactly where the marshalled one stopped.
func (c *Controller) RestoreResumeState(data []byte) error {
	var st resumeState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: restore resume state: %w", err)
	}
	if st.Version < 0 || st.Version > resumeFormatVersion {
		return fmt.Errorf("core: restore resume state: format version %d not supported (current %d)",
			st.Version, resumeFormatVersion)
	}
	if err := st.Settings.Validate(); err != nil {
		return fmt.Errorf("core: restore resume state: %w", err)
	}
	if st.CurState < 0 || st.CurState >= NumStates {
		return fmt.Errorf("core: restore resume state: state %d out of range", st.CurState)
	}
	var loaded [3]*rl.Learner
	for k := AgentQP; k < numAgents; k++ {
		l, err := rl.LoadLearner(bytes.NewReader(st.Agents[k]))
		if err != nil {
			return fmt.Errorf("core: restore agent %v: %w", k, err)
		}
		if l.Config().Actions != c.agents[k].actions() {
			return fmt.Errorf("core: restore agent %v: %d actions saved, controller has %d",
				k, l.Config().Actions, c.agents[k].actions())
		}
		loaded[k] = l
	}
	var pend *pending
	if p := st.Pending; p != nil {
		if p.Agent < 0 || p.Agent >= int(numAgents) {
			return fmt.Errorf("core: restore resume state: pending agent %d out of range", p.Agent)
		}
		if p.State < 0 || p.State >= NumStates {
			return fmt.Errorf("core: restore resume state: pending state %d out of range", p.State)
		}
		if p.Action < 0 || p.Action >= c.agents[p.Agent].actions() {
			return fmt.Errorf("core: restore resume state: pending action %d out of range", p.Action)
		}
		if p.N < 0 {
			return fmt.Errorf("core: restore resume state: negative pending count %d", p.N)
		}
		pend = &pending{
			agent: AgentKind(p.Agent), state: p.State, action: p.Action,
			sumPSNR: p.SumPSNR, sumPower: p.SumPower,
			sumBitrate: p.SumBitrate, sumFPS: p.SumFPS, n: p.N,
		}
	}
	for k := AgentQP; k < numAgents; k++ {
		c.agents[k].learner = loaded[k]
	}
	c.settings = st.Settings
	c.curState = st.CurState
	c.started = st.Started
	c.stats = st.Stats
	c.pend = pend
	return nil
}
