package core

import (
	"math/rand"
	"testing"

	"mamut/internal/rl"
	"mamut/internal/transcode"
)

// trainState drives enough direct learner updates through every agent of
// c that state s reaches the exploitation phase: each action of each
// agent is visited `visits` times, so both eq. (3) terms drop below the
// thresholds once the per-action totals accumulate.
func trainState(c *Controller, s, visits int) {
	for k := AgentQP; k < numAgents; k++ {
		l := c.Learner(k)
		for a := 0; a < l.Config().Actions; a++ {
			for i := 0; i < visits; i++ {
				l.Update(s, a, s, 0.5, 0)
			}
		}
	}
}

func TestWarmControllerSkipsExploration(t *testing.T) {
	donor := testController(t, 1)
	const state = 42
	trainState(donor, state, 20)

	// Premise: the trained state is in exploitation on the donor.
	for k := AgentQP; k < numAgents; k++ {
		other := donor.otherMinSum(k)
		if got := donor.Learner(k).PhaseFor(state, other); got != rl.Exploitation {
			t.Fatalf("donor agent %v phase %v, want exploitation", k, got)
		}
	}

	sn := donor.Snapshot()
	if err := sn.Validate(); err != nil {
		t.Fatal(err)
	}
	warm, err := NewWarm(testConfig(), transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6},
		rand.New(rand.NewSource(2)), &sn)
	if err != nil {
		t.Fatal(err)
	}
	for k := AgentQP; k < numAgents; k++ {
		other := warm.otherMinSum(k)
		if got := warm.Learner(k).PhaseFor(state, other); got != rl.Exploitation {
			t.Errorf("warm agent %v phase %v, want exploitation", k, got)
		}
		// An untrained state still explores: warm starts are per-state.
		if got := warm.Learner(k).PhaseFor(0, 0); got != rl.Exploration {
			t.Errorf("warm agent %v untrained-state phase %v, want exploration", k, got)
		}
		if got, want := warm.Learner(k).Q.Get(state, 0), donor.Learner(k).Q.Get(state, 0); got != want {
			t.Errorf("warm agent %v Q = %g, want %g", k, got, want)
		}
	}

	// A nil snapshot is a cold start.
	cold, err := NewWarm(testConfig(), transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6},
		rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Learner(AgentQP).PhaseFor(state, 0); got != rl.Exploration {
		t.Errorf("cold controller phase %v, want exploration", got)
	}
}

func TestWarmControllerDimensionMismatch(t *testing.T) {
	donor := testController(t, 1)
	sn := donor.Snapshot()
	cfg := testConfig()
	cfg.ThreadValues = cfg.ThreadValues[:5] // LR-sized action set vs HR snapshot
	if _, err := NewWarm(cfg, transcode.Settings{QP: 32, Threads: 3, FreqGHz: 2.6},
		rand.New(rand.NewSource(2)), &sn); err == nil {
		t.Error("mismatched snapshot accepted by NewWarm")
	}
}

func TestControllerSnapshotMerge(t *testing.T) {
	a := testController(t, 1)
	b := testController(t, 2)
	trainState(a, 10, 4)
	trainState(b, 10, 2)
	trainState(b, 11, 3)

	sn := a.Snapshot()
	if err := sn.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for k := AgentQP; k < numAgents; k++ {
		actions := a.Learner(k).Config().Actions
		for _, s := range []int{10, 11} {
			for act := 0; act < actions; act++ {
				want := a.Learner(k).Visits.Num(s, act) + b.Learner(k).Visits.Num(s, act)
				if got := sn.Agents[k].VisitsSA[s*actions+act]; got != want {
					t.Errorf("agent %v Num(%d,%d) = %d, want %d", k, s, act, got, want)
				}
			}
		}
	}

	// Snapshot is a deep copy of the donor.
	sn.Agents[AgentQP].Q[0] = 1e9
	if a.Learner(AgentQP).Q.Get(0, 0) == 1e9 {
		t.Error("snapshot aliases the controller's tables")
	}
}
