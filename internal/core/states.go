// Package core implements MAMUT, the paper's multi-agent Q-learning
// run-time manager for QoS-aware real-time multi-user HEVC transcoding.
//
// Three cooperating agents per video stream each own one knob — the HEVC
// quantization parameter, the number of WPP encoding threads, and the
// per-core DVFS frequency — and share one discrete state space built from
// the four observables PSNR, power, bitrate and throughput (paper SIII-C).
// Learning follows the paper's SIV machinery: per-(state,action) learning
// rates that couple the agents' exploration progress (eq. 3), per-state
// learning phases, an empirical transition model, and the cooperative
// expected-Q action selection of Algorithm 1 in the exploitation phase.
package core

import "fmt"

// State-space cardinalities from paper SIII-C.
const (
	NumPSNRStates    = 6 // <=30, <=35, <=40, <=45, <=50, >50 dB
	NumPowerStates   = 2 // under cap, at/over cap
	NumBitrateStates = 3 // <3 Mb/s, 3..6 Mb/s, >6 Mb/s
	NumFPSStates     = 5 // <24, <26, <28, <30, >=30
	// NumStates is the full cross-product cardinality (180).
	NumStates = NumPSNRStates * NumPowerStates * NumBitrateStates * NumFPSStates
)

// State is a factored observation of the environment.
type State struct {
	// PSNR in [0,NumPSNRStates): index of the quality band.
	PSNR int
	// Power in [0,NumPowerStates): 0 under the cap, 1 at/over it.
	Power int
	// Bitrate in [0,NumBitrateStates): index of the bandwidth band.
	Bitrate int
	// FPS in [0,NumFPSStates): index of the throughput band.
	FPS int
}

// Validate reports whether every factor is in range.
func (s State) Validate() error {
	if s.PSNR < 0 || s.PSNR >= NumPSNRStates ||
		s.Power < 0 || s.Power >= NumPowerStates ||
		s.Bitrate < 0 || s.Bitrate >= NumBitrateStates ||
		s.FPS < 0 || s.FPS >= NumFPSStates {
		return fmt.Errorf("core: state %+v out of range", s)
	}
	return nil
}

// Index flattens the state into [0,NumStates).
func (s State) Index() int {
	return ((s.PSNR*NumPowerStates+s.Power)*NumBitrateStates+s.Bitrate)*NumFPSStates + s.FPS
}

// StateFromIndex inverts Index.
func StateFromIndex(i int) (State, error) {
	if i < 0 || i >= NumStates {
		return State{}, fmt.Errorf("core: state index %d out of range", i)
	}
	s := State{}
	s.FPS = i % NumFPSStates
	i /= NumFPSStates
	s.Bitrate = i % NumBitrateStates
	i /= NumBitrateStates
	s.Power = i % NumPowerStates
	i /= NumPowerStates
	s.PSNR = i
	return s, nil
}

// PSNRState discretizes a PSNR reading per SIII-C: <=30, <=35, <=40, <=45,
// <=50, >50 dB.
func PSNRState(psnrDB float64) int {
	switch {
	case psnrDB <= 30:
		return 0
	case psnrDB <= 35:
		return 1
	case psnrDB <= 40:
		return 2
	case psnrDB <= 45:
		return 3
	case psnrDB <= 50:
		return 4
	default:
		return 5
	}
}

// PowerState discretizes a power reading against the server cap.
func PowerState(powerW, capW float64) int {
	if powerW >= capW {
		return 1
	}
	return 0
}

// BitrateState discretizes a delivery bitrate per SIII-C, using the 3G
// bandwidth bands: <3 Mb/s, 3..6 Mb/s, >6 Mb/s.
func BitrateState(mbps float64) int {
	switch {
	case mbps < 3:
		return 0
	case mbps <= 6:
		return 1
	default:
		return 2
	}
}

// FPSState discretizes throughput around the 24 FPS real-time target:
// <24, <26, <28, <30, >=30.
func FPSState(fps float64) int {
	switch {
	case fps < 24:
		return 0
	case fps < 26:
		return 1
	case fps < 28:
		return 2
	case fps < 30:
		return 3
	default:
		return 4
	}
}

// Metrics is a raw (or NULL-slot-averaged, per SIV-A) observation vector.
type Metrics struct {
	PSNRdB      float64
	PowerW      float64
	BitrateMbps float64
	FPS         float64
}

// StateOf discretizes a metrics vector against the power cap.
func StateOf(m Metrics, powerCapW float64) State {
	return State{
		PSNR:    PSNRState(m.PSNRdB),
		Power:   PowerState(m.PowerW, powerCapW),
		Bitrate: BitrateState(m.BitrateMbps),
		FPS:     FPSState(m.FPS),
	}
}
