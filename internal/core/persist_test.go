package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mamut/internal/transcode"
)

// trainController drives a controller through n frames of a stationary
// environment.
func trainController(c *Controller, n int) {
	cur := c.Settings()
	for f := 0; f < n; f++ {
		cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		c.OnFrameDone(obsWith(25+3*float64(f%3), 36, 95, 4))
	}
}

func TestControllerSaveLoadRoundTrip(t *testing.T) {
	a := testController(t, 31)
	trainController(a, 2400)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	b := testController(t, 99) // different rng; exploitation is deterministic
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if b.Settings() != a.Settings() {
		t.Errorf("settings %+v, want %+v", b.Settings(), a.Settings())
	}
	for k := AgentQP; k <= AgentDVFS; k++ {
		la, lb := a.Learner(k), b.Learner(k)
		for s := 0; s < NumStates; s++ {
			for ac := 0; ac < la.Config().Actions; ac++ {
				if la.Q.Get(s, ac) != lb.Q.Get(s, ac) {
					t.Fatalf("agent %v Q(%d,%d) differs", k, s, ac)
				}
				if la.Visits.Num(s, ac) != lb.Visits.Num(s, ac) {
					t.Fatalf("agent %v visits(%d,%d) differ", k, s, ac)
				}
			}
		}
	}

	// A state deep in exploitation must produce the same decision.
	sIdx := a.curState
	for k := AgentQP; k <= AgentDVFS; k++ {
		if pa, pb := a.Learner(k).PhaseFor(sIdx, 1000), b.Learner(k).PhaseFor(sIdx, 1000); pa != pb {
			t.Fatalf("agent %v phase differs after load: %v vs %v", k, pa, pb)
		}
	}
	if ga, gb := a.exploitAction(AgentDVFS, sIdx, 2), b.exploitAction(AgentDVFS, sIdx, 2); ga != gb {
		t.Errorf("exploit decision differs after load: %d vs %d", ga, gb)
	}
}

func TestControllerLoadRejectsBadInput(t *testing.T) {
	c := testController(t, 32)
	if err := c.Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	// A controller with a different action-set size must refuse the load.
	cfg := testConfig()
	cfg.QPValues = []int{22, 37}
	other, err := New(cfg, transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	trainController(other, 240)
	var buf bytes.Buffer
	if err := other.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched action sets accepted")
	}
}

// Pretrained deployment: a controller trained in one engine run can be
// saved and reloaded into a fresh run, where it should start near its
// converged policy instead of relearning from scratch.
func TestControllerWarmStartBehaviour(t *testing.T) {
	warm := testController(t, 34)
	trainController(warm, 4800)
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}

	cold := testController(t, 35)
	reloaded := testController(t, 36)
	if err := reloaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	countExploit := func(c *Controller, frames int) int {
		before := c.Stats()
		trainController(c, frames)
		after := c.Stats()
		n := 0
		for k := 0; k < 3; k++ {
			n += after.ByAgent[k].Exploitation - before.ByAgent[k].Exploitation
		}
		return n
	}
	coldExploit := countExploit(cold, 480)
	warmExploit := countExploit(reloaded, 480)
	if warmExploit <= coldExploit {
		t.Errorf("warm-started controller exploited %d decisions vs cold %d; want more",
			warmExploit, coldExploit)
	}
}
