package core

import "testing"

func TestDefaultScheduleMatchesFigure3(t *testing.T) {
	s := DefaultSchedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper SIII-B.d: AGqp every 24 frames; AGthread every 12, offset 1;
	// AGdvfs every 6, offset 2. Within one 24-frame hyper-period the
	// action slots are exactly these:
	want := map[int]AgentKind{
		0: AgentQP, 1: AgentThreads, 2: AgentDVFS, 8: AgentDVFS,
		13: AgentThreads, 14: AgentDVFS, 20: AgentDVFS,
	}
	for f := 0; f < 24; f++ {
		wantK, has := want[f]
		got := s.ActingAgent(f)
		if has && got != wantK {
			t.Errorf("frame %d: agent %v, want %v", f, got, wantK)
		}
		if !has && got != AgentNone {
			t.Errorf("frame %d: agent %v, want NULL", f, got)
		}
	}
	// Pattern repeats with period 24.
	for f := 24; f < 48; f++ {
		if s.ActingAgent(f) != s.ActingAgent(f-24) {
			t.Errorf("frame %d breaks 24-frame periodicity", f)
		}
	}
	// Action frequencies over the hyper-period: 1 QP, 2 thread, 4 DVFS.
	counts := map[AgentKind]int{}
	for f := 0; f < 24; f++ {
		counts[s.ActingAgent(f)]++
	}
	if counts[AgentQP] != 1 || counts[AgentThreads] != 2 || counts[AgentDVFS] != 4 {
		t.Errorf("action counts %v, want 1/2/4", counts)
	}
}

func TestScheduleChains(t *testing.T) {
	s := DefaultSchedule()
	cases := []struct {
		frame int
		want  []AgentKind
	}{
		{0, []AgentKind{AgentThreads, AgentDVFS}}, // QP -> thread -> dvfs -> NULL
		{1, []AgentKind{AgentDVFS}},               // thread -> dvfs -> NULL
		{2, nil},                                  // dvfs -> NULL
		{8, nil},                                  // dvfs -> NULL
		{13, []AgentKind{AgentDVFS}},              // thread -> dvfs -> NULL
		{14, nil},
		{20, nil}, // frames 21..23 are NULL before QP at 24... chain stops at 21
		{24, []AgentKind{AgentThreads, AgentDVFS}},
	}
	for _, c := range cases {
		got := s.Chain(c.frame)
		if len(got) != len(c.want) {
			t.Errorf("Chain(%d) = %v, want %v", c.frame, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chain(%d) = %v, want %v", c.frame, got, c.want)
			}
		}
	}
}

func TestScheduleNextActionFrame(t *testing.T) {
	s := DefaultSchedule()
	cases := []struct{ frame, want int }{
		{0, 1}, {1, 2}, {2, 8}, {8, 13}, {13, 14}, {14, 20}, {20, 24},
	}
	for _, c := range cases {
		if got := s.NextActionFrame(c.frame); got != c.want {
			t.Errorf("NextActionFrame(%d) = %d, want %d", c.frame, got, c.want)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Periods: [3]int{0, 12, 6}, Offsets: [3]int{0, 1, 2}},
		{Periods: [3]int{24, 12, 6}, Offsets: [3]int{24, 1, 2}},
		{Periods: [3]int{24, 12, 6}, Offsets: [3]int{0, -1, 2}},
		// Collision: QP and thread both act at frame 0.
		{Periods: [3]int{24, 12, 6}, Offsets: [3]int{0, 0, 2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestUniformSchedule(t *testing.T) {
	s := UniformSchedule(6)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ActingAgent(0) != AgentQP || s.ActingAgent(1) != AgentThreads || s.ActingAgent(2) != AgentDVFS {
		t.Error("uniform schedule slots wrong")
	}
	if s.ActingAgent(3) != AgentNone {
		t.Error("frame 3 should be NULL")
	}
	counts := map[AgentKind]int{}
	for f := 0; f < 24; f++ {
		counts[s.ActingAgent(f)]++
	}
	if counts[AgentQP] != 4 || counts[AgentThreads] != 4 || counts[AgentDVFS] != 4 {
		t.Errorf("uniform schedule counts %v, want 4 each", counts)
	}
}

func TestActingAgentNegativeFrame(t *testing.T) {
	if DefaultSchedule().ActingAgent(-1) != AgentNone {
		t.Error("negative frame should have no acting agent")
	}
}

func TestAgentKindString(t *testing.T) {
	if AgentQP.String() != "AGqp" || AgentThreads.String() != "AGthread" ||
		AgentDVFS.String() != "AGdvfs" || AgentNone.String() != "NULL" {
		t.Error("agent names wrong")
	}
	if AgentKind(7).String() != "AgentKind(7)" {
		t.Error("unknown agent name wrong")
	}
}

// A dense schedule (an agent on every frame) must still produce finite
// chains thanks to the numAgents cap.
func TestChainBoundedOnDenseSchedule(t *testing.T) {
	s := Schedule{Periods: [3]int{3, 3, 3}, Offsets: [3]int{0, 1, 2}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	chain := s.Chain(0)
	if len(chain) != 3 {
		t.Fatalf("dense chain length = %d, want 3 (capped)", len(chain))
	}
}
