package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPolicyListsVisitedStates(t *testing.T) {
	c := testController(t, 71)
	if len(c.Policy()) != 0 {
		t.Error("fresh controller reports visited states")
	}
	trainController(c, 2400)
	entries := c.Policy()
	if len(entries) == 0 {
		t.Fatal("trained controller reports no visited states")
	}
	// Sorted by visits, descending.
	for i := 1; i < len(entries); i++ {
		if entries[i].Visits > entries[i-1].Visits {
			t.Fatal("policy not sorted by visits")
		}
	}
	// Greedy choices come from the action sets.
	cfg := testConfig()
	for _, e := range entries {
		if e.Threads < 1 || e.Threads > 12 {
			t.Errorf("threads %d out of range", e.Threads)
		}
		okQP, okF := false, false
		for _, v := range cfg.QPValues {
			if e.QP == v {
				okQP = true
			}
		}
		for _, v := range cfg.FreqValues {
			if e.FreqGHz == v {
				okF = true
			}
		}
		if !okQP || !okF {
			t.Errorf("policy entry outside action sets: %+v", e)
		}
		if err := e.State.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestDumpPolicyOutput(t *testing.T) {
	c := testController(t, 72)
	trainController(c, 1200)
	var buf bytes.Buffer
	if err := c.DumpPolicy(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || len(lines) > 6 {
		t.Fatalf("dump lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "visits") || !strings.Contains(lines[0], "GHz") {
		t.Errorf("header missing columns: %q", lines[0])
	}
}
