package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mamut/internal/transcode"
)

// Property: under arbitrary observation streams the controller never
// proposes settings outside its action sets (other than the initial
// values) and its Q-values stay bounded by the reward geometry.
func TestControllerRobustToArbitraryObservations(t *testing.T) {
	cfg := testConfig()
	qpSet := map[int]bool{32: true} // initial value is allowed
	for _, v := range cfg.QPValues {
		qpSet[v] = true
	}
	freqSet := map[float64]bool{2.6: true}
	for _, v := range cfg.FreqValues {
		freqSet[v] = true
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(cfg, transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		cur := c.Settings()
		for f := 0; f < 600; f++ {
			cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
			if !qpSet[cur.QP] || cur.Threads < 1 || cur.Threads > 12 || !freqSet[cur.FreqGHz] {
				return false
			}
			// Wild observations: occasionally absurd values.
			obs := transcode.Observation{
				FPS:         rng.Float64() * 200,
				InstFPS:     rng.Float64() * 200,
				PSNRdB:      10 + rng.Float64()*60,
				PowerW:      rng.Float64() * 400,
				BitrateMbps: rng.Float64() * 30,
			}
			c.OnFrameDone(obs)
		}
		// Q bounded: |Q| <= Rmax/(1-gamma) with Rmax = 4 rewards of
		// magnitude <= 4 => 16/(1-0.6) = 40.
		for k := AgentQP; k <= AgentDVFS; k++ {
			l := c.Learner(k)
			for s := 0; s < NumStates; s++ {
				for a := 0; a < l.Config().Actions; a++ {
					if v := l.Q.Get(s, a); math.Abs(v) > 40+1e-9 || math.IsNaN(v) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property of the eq. (3) coupling: an agent can only leave pure
// exploration once the *combined* exploration progress of its peers
// (the sum of their least-tried-action counts) reaches at least 2 — the
// second learning-rate term 0.2/(1+m) stays at or above the 0.1 threshold
// for m < 2. Note the sum formulation means one thoroughly-explored peer
// can compensate for another (the formula is weaker than the paper's
// prose "other agents have tried all their actions"); this test pins the
// property the formula actually provides.
func TestNoPhaseAdvanceBeforePeerCoverage(t *testing.T) {
	c := testController(t, 61)
	cur := c.Settings()
	for f := 0; f < 3000; f++ {
		cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		c.OnFrameDone(obsWith(25, 36, 95, 4))
		st := c.Stats()
		for k := AgentQP; k <= AgentDVFS; k++ {
			if st.ByAgent[k].Exploitation == 0 && st.ByAgent[k].ExploreExploit == 0 {
				continue
			}
			if m := c.otherMinSum(k); m < 2 {
				t.Fatalf("frame %d: %v advanced past exploration with peer coverage %d < 2", f, k, m)
			}
		}
	}
}

// The schedule, chain and update bookkeeping must stay consistent for any
// valid schedule: every action slot creates exactly one pending update
// that lands at the next action slot.
func TestUpdateCountMatchesActionCount(t *testing.T) {
	for _, sched := range []Schedule{DefaultSchedule(), UniformSchedule(6), UniformSchedule(9)} {
		cfg := testConfig()
		cfg.Schedule = sched
		c, err := New(cfg, transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(62)))
		if err != nil {
			t.Fatal(err)
		}
		cur := c.Settings()
		actions := 0
		const frames = 480
		for f := 0; f < frames; f++ {
			if sched.ActingAgent(f) != AgentNone {
				actions++
			}
			cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
			c.OnFrameDone(obsWith(25, 36, 95, 4))
		}
		visits := 0
		for k := AgentQP; k <= AgentDVFS; k++ {
			l := c.Learner(k)
			for s := 0; s < NumStates; s++ {
				for a := 0; a < l.Config().Actions; a++ {
					visits += l.Visits.Num(s, a)
				}
			}
		}
		// Every action except the still-pending last one has been
		// finalized into exactly one visit.
		if visits != actions-1 {
			t.Errorf("schedule %v: %d visits for %d actions, want actions-1", sched, visits, actions)
		}
	}
}
