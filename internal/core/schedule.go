package core

import "fmt"

// AgentKind identifies one of MAMUT's three agents.
type AgentKind int

const (
	// AgentQP tunes the quantization parameter.
	AgentQP AgentKind = iota
	// AgentThreads tunes the number of WPP encoding threads.
	AgentThreads
	// AgentDVFS tunes the per-core frequency.
	AgentDVFS
	// numAgents is the number of real agents.
	numAgents
	// AgentNone marks frames where no agent acts (the NULL slots of
	// Fig. 3).
	AgentNone AgentKind = -1
)

// String names the agent like the paper does.
func (k AgentKind) String() string {
	switch k {
	case AgentQP:
		return "AGqp"
	case AgentThreads:
		return "AGthread"
	case AgentDVFS:
		return "AGdvfs"
	case AgentNone:
		return "NULL"
	default:
		return fmt.Sprintf("AgentKind(%d)", int(k))
	}
}

// Schedule is the frame-indexed agent activation pattern of Fig. 3. Agent
// k acts right before every frame f with f mod Periods[k] == Offsets[k].
type Schedule struct {
	Periods [3]int
	Offsets [3]int
}

// DefaultSchedule returns the paper's pattern (SIII-B.d): AGqp every 24
// frames, AGthread every 12 with offset 1, AGdvfs every 6 with offset 2.
// The offsets stagger the agents so the faster agents can immediately
// correct throughput after a quality move by AGqp.
func DefaultSchedule() Schedule {
	return Schedule{Periods: [3]int{24, 12, 6}, Offsets: [3]int{0, 1, 2}}
}

// UniformSchedule returns the ablation pattern where all three agents act
// every `period` frames at staggered consecutive offsets.
func UniformSchedule(period int) Schedule {
	return Schedule{Periods: [3]int{period, period, period}, Offsets: [3]int{0, 1, 2}}
}

// Validate reports whether the schedule is usable and collision-free:
// no two agents may act before the same frame.
func (s Schedule) Validate() error {
	for k := 0; k < 3; k++ {
		if s.Periods[k] < 1 {
			return fmt.Errorf("core: schedule period[%d] = %d invalid", k, s.Periods[k])
		}
		if s.Offsets[k] < 0 || s.Offsets[k] >= s.Periods[k] {
			return fmt.Errorf("core: schedule offset[%d] = %d outside [0,%d)", k, s.Offsets[k], s.Periods[k])
		}
	}
	// Check collisions over one hyper-period.
	hyper := lcm(lcm(s.Periods[0], s.Periods[1]), s.Periods[2])
	for f := 0; f < hyper; f++ {
		n := 0
		for k := 0; k < 3; k++ {
			if f%s.Periods[k] == s.Offsets[k] {
				n++
			}
		}
		if n > 1 {
			return fmt.Errorf("core: schedule collision at frame %d", f)
		}
	}
	return nil
}

// ActingAgent returns which agent acts right before the given frame, or
// AgentNone for a NULL slot.
func (s Schedule) ActingAgent(frame int) AgentKind {
	if frame < 0 {
		return AgentNone
	}
	for k := 0; k < 3; k++ {
		if frame%s.Periods[k] == s.Offsets[k] {
			return AgentKind(k)
		}
	}
	return AgentNone
}

// Chain returns the agents acting on the immediately following consecutive
// frames after `frame`, stopping at the first NULL slot. This is the
// lookahead chain of Algorithm 1: the acting agent maximises the expected
// Q-value through exactly these agents (Fig. 3's coloured arrows). An
// empty chain means the action is followed by NULL frames, where the
// agent's update uses the averaged state (SIV-A) and its action selection
// falls back to its own table.
func (s Schedule) Chain(frame int) []AgentKind {
	var chain []AgentKind
	for f := frame + 1; ; f++ {
		k := s.ActingAgent(f)
		if k == AgentNone {
			return chain
		}
		chain = append(chain, k)
		if len(chain) >= int(numAgents) { // a chain can involve at most the other agents
			return chain
		}
	}
}

// NextActionFrame returns the first frame strictly after `frame` at which
// any agent acts.
func (s Schedule) NextActionFrame(frame int) int {
	for f := frame + 1; ; f++ {
		if s.ActingAgent(f) != AgentNone {
			return f
		}
	}
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
