package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumStatesIs180(t *testing.T) {
	if NumStates != 180 {
		t.Fatalf("NumStates = %d, want 180 (6*2*3*5, paper SIII-C)", NumStates)
	}
}

func TestStateIndexRoundTrip(t *testing.T) {
	seen := make(map[int]bool)
	for p := 0; p < NumPSNRStates; p++ {
		for w := 0; w < NumPowerStates; w++ {
			for b := 0; b < NumBitrateStates; b++ {
				for f := 0; f < NumFPSStates; f++ {
					s := State{PSNR: p, Power: w, Bitrate: b, FPS: f}
					if err := s.Validate(); err != nil {
						t.Fatal(err)
					}
					i := s.Index()
					if i < 0 || i >= NumStates {
						t.Fatalf("index %d out of range for %+v", i, s)
					}
					if seen[i] {
						t.Fatalf("index %d duplicated", i)
					}
					seen[i] = true
					back, err := StateFromIndex(i)
					if err != nil {
						t.Fatal(err)
					}
					if back != s {
						t.Fatalf("round trip %+v -> %d -> %+v", s, i, back)
					}
				}
			}
		}
	}
	if len(seen) != NumStates {
		t.Fatalf("indices cover %d states, want %d", len(seen), NumStates)
	}
}

func TestStateFromIndexErrors(t *testing.T) {
	if _, err := StateFromIndex(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := StateFromIndex(NumStates); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestStateValidateRejectsOutOfRange(t *testing.T) {
	bad := []State{
		{PSNR: -1}, {PSNR: NumPSNRStates},
		{Power: 2}, {Bitrate: 3}, {FPS: 5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("state %+v accepted", s)
		}
	}
}

func TestPSNRStateBands(t *testing.T) {
	cases := []struct {
		psnr float64
		want int
	}{
		{25, 0}, {30, 0}, {30.01, 1}, {35, 1}, {36, 2}, {40, 2},
		{44, 3}, {45, 3}, {48, 4}, {50, 4}, {50.5, 5}, {60, 5},
	}
	for _, c := range cases {
		if got := PSNRState(c.psnr); got != c.want {
			t.Errorf("PSNRState(%g) = %d, want %d", c.psnr, got, c.want)
		}
	}
}

func TestPowerState(t *testing.T) {
	if PowerState(139.9, 140) != 0 {
		t.Error("under-cap misclassified")
	}
	if PowerState(140, 140) != 1 {
		t.Error("at-cap misclassified (paper: power >= Pcap)")
	}
}

func TestBitrateStateBands(t *testing.T) {
	cases := []struct {
		mbps float64
		want int
	}{
		{0.5, 0}, {2.99, 0}, {3, 1}, {4.5, 1}, {6, 1}, {6.01, 2}, {12, 2},
	}
	for _, c := range cases {
		if got := BitrateState(c.mbps); got != c.want {
			t.Errorf("BitrateState(%g) = %d, want %d", c.mbps, got, c.want)
		}
	}
}

func TestFPSStateBands(t *testing.T) {
	cases := []struct {
		fps  float64
		want int
	}{
		{10, 0}, {23.99, 0}, {24, 1}, {25.9, 1}, {26, 2}, {27.9, 2},
		{28, 3}, {29.9, 3}, {30, 4}, {60, 4},
	}
	for _, c := range cases {
		if got := FPSState(c.fps); got != c.want {
			t.Errorf("FPSState(%g) = %d, want %d", c.fps, got, c.want)
		}
	}
}

func TestStateOf(t *testing.T) {
	m := Metrics{PSNRdB: 37, PowerW: 100, BitrateMbps: 4, FPS: 25}
	s := StateOf(m, 140)
	want := State{PSNR: 2, Power: 0, Bitrate: 1, FPS: 1}
	if s != want {
		t.Errorf("StateOf = %+v, want %+v", s, want)
	}
}

// Property: any finite metrics vector discretizes to a valid state.
func TestStateOfAlwaysValidProperty(t *testing.T) {
	prop := func(psnr, power, br, fps float64) bool {
		m := Metrics{
			PSNRdB:      math.Mod(math.Abs(psnr), 80),
			PowerW:      math.Mod(math.Abs(power), 300),
			BitrateMbps: math.Mod(math.Abs(br), 20),
			FPS:         math.Mod(math.Abs(fps), 100),
		}
		s := StateOf(m, 140)
		return s.Validate() == nil && s.Index() >= 0 && s.Index() < NumStates
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
