package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRewardFPSEquationOne(t *testing.T) {
	// Below target: -4.
	if got := RewardFPS(23.9, 24); got != ViolationReward {
		t.Errorf("below-target reward = %g, want %g", got, ViolationReward)
	}
	// Exactly at target: maximal reward 1.
	if got := RewardFPS(24, 24); math.Abs(got-1) > 1e-12 {
		t.Errorf("at-target reward = %g, want 1", got)
	}
	// Above target: positive but smaller (wasted resources).
	r26 := RewardFPS(26, 24)
	r30 := RewardFPS(30, 24)
	if !(r26 > 0 && r30 > 0 && r30 < r26 && r26 < 1) {
		t.Errorf("above-target rewards r26=%g r30=%g violate shape", r26, r30)
	}
	// Explicit value: 1/(30-(24-1)) = 1/7.
	if math.Abs(r30-1.0/7) > 1e-12 {
		t.Errorf("r30 = %g, want 1/7", r30)
	}
}

func TestRewardPSNREquationTwo(t *testing.T) {
	// Outside the acceptable band: -4.
	if got := RewardPSNR(29.99); got != ViolationReward {
		t.Errorf("PSNR<30 reward = %g, want %g", got, ViolationReward)
	}
	if got := RewardPSNR(50.01); got != ViolationReward {
		t.Errorf("PSNR>50 reward = %g, want %g", got, ViolationReward)
	}
	// Anchors: 0 at 30 dB, 1 at 50 dB.
	if got := RewardPSNR(30); math.Abs(got) > 1e-12 {
		t.Errorf("reward at 30 dB = %g, want 0", got)
	}
	if got := RewardPSNR(50); math.Abs(got-1) > 1e-12 {
		t.Errorf("reward at 50 dB = %g, want 1", got)
	}
	// Strictly increasing inside the band.
	prev := -1.0
	for p := 30.0; p <= 50; p += 2.5 {
		r := RewardPSNR(p)
		if r <= prev {
			t.Fatalf("reward not increasing at %g dB", p)
		}
		prev = r
	}
}

func TestRewardBitrate(t *testing.T) {
	if got := RewardBitrate(6.1, 6); got != ViolationReward {
		t.Error("over-bandwidth not penalised")
	}
	if got := RewardBitrate(5.9, 6); got != 0 {
		t.Error("within-bandwidth penalised")
	}
	if got := RewardBitrate(100, 0); got != 0 {
		t.Error("unconstrained user penalised")
	}
}

func TestRewardPower(t *testing.T) {
	if got := RewardPower(140, 140); got != ViolationReward {
		t.Error("at-cap not penalised (paper: power >= Pcap violates)")
	}
	if got := RewardPower(139, 140); got != 0 {
		t.Error("under-cap penalised")
	}
}

func TestTotalRewardComposition(t *testing.T) {
	m := Metrics{PSNRdB: 40, PowerW: 100, BitrateMbps: 4, FPS: 24}
	want := RewardFPS(24, 24) + RewardPSNR(40) + 0 + 0
	if got := TotalReward(m, 24, 6, 140); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalReward = %g, want %g", got, want)
	}
	// Everything violated at once.
	bad := Metrics{PSNRdB: 20, PowerW: 150, BitrateMbps: 9, FPS: 10}
	if got := TotalReward(bad, 24, 6, 140); got != 4*ViolationReward {
		t.Errorf("all-violated reward = %g, want %g", got, 4*ViolationReward)
	}
}

// Property: rewards stay within their documented bounds across the domain.
func TestRewardBoundsProperty(t *testing.T) {
	prop := func(fps, psnr float64) bool {
		f := math.Mod(math.Abs(fps), 100)
		p := math.Mod(math.Abs(psnr), 70)
		rf := RewardFPS(f, 24)
		rp := RewardPSNR(p)
		if rf != ViolationReward && (rf <= 0 || rf > 1) {
			return false
		}
		if rp != ViolationReward && (rp < 0 || rp > 1+1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
