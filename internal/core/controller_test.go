package core

import (
	"math/rand"
	"testing"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func testConfig() Config {
	return DefaultConfig(video.HR, platform.DefaultSpec(), 12)
}

func testController(t *testing.T, seed int64) *Controller {
	t.Helper()
	c, err := New(testConfig(), transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wantQP := []int{22, 25, 27, 29, 32, 35, 37}
	if len(cfg.QPValues) != len(wantQP) {
		t.Fatalf("QP values %v", cfg.QPValues)
	}
	for i := range wantQP {
		if cfg.QPValues[i] != wantQP[i] {
			t.Fatalf("QP values %v, want %v", cfg.QPValues, wantQP)
		}
	}
	if len(cfg.ThreadValues) != 12 || cfg.ThreadValues[0] != 1 || cfg.ThreadValues[11] != 12 {
		t.Errorf("thread values %v, want 1..12", cfg.ThreadValues)
	}
	wantF := []float64{1.6, 1.9, 2.3, 2.6, 2.9, 3.2}
	if len(cfg.FreqValues) != len(wantF) {
		t.Fatalf("freq values %v", cfg.FreqValues)
	}
	for i := range wantF {
		if cfg.FreqValues[i] != wantF[i] {
			t.Fatalf("freq values %v, want %v", cfg.FreqValues, wantF)
		}
	}
	if cfg.Beta != 0.3 || cfg.BetaPrime != 0.2 || cfg.Gamma != 0.6 {
		t.Error("learning constants do not match SIV-B")
	}
	if DefaultBandwidth(video.HR) != 6.0 || DefaultBandwidth(video.LR) != 3.0 {
		t.Error("default bandwidths wrong")
	}
}

func TestConfigValidateRejectsBad(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.QPValues = []int{32} },
		func(c *Config) { c.ThreadValues = nil },
		func(c *Config) { c.FreqValues = []float64{2.6} },
		func(c *Config) { c.TargetFPS = 0 },
		func(c *Config) { c.PowerCapW = 0 },
		func(c *Config) { c.BandwidthMbps = -1 },
		func(c *Config) { c.Schedule.Periods[0] = 0 },
	}
	for i, f := range mut {
		cfg := testConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewControllerValidation(t *testing.T) {
	good := transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}
	if _, err := New(testConfig(), good, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := New(testConfig(), transcode.Settings{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid initial settings accepted")
	}
	cfg := testConfig()
	cfg.TargetFPS = -1
	if _, err := New(cfg, good, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestControllerOnlyActsOnScheduledFrames(t *testing.T) {
	c := testController(t, 1)
	initial := c.Settings()
	// Frame 3 is a NULL slot: settings must not change and no pending
	// action may be created.
	got := c.OnFrameStart(transcode.FrameStart{FrameIndex: 3, Current: initial})
	if got != initial {
		t.Errorf("NULL slot changed settings: %+v -> %+v", initial, got)
	}
	if c.pend != nil {
		t.Error("NULL slot created a pending action")
	}
	// Frame 0 belongs to AGqp: only QP may change.
	got = c.OnFrameStart(transcode.FrameStart{FrameIndex: 0, Current: initial})
	if got.Threads != initial.Threads || got.FreqGHz != initial.FreqGHz {
		t.Errorf("QP action changed other knobs: %+v", got)
	}
	qpOK := false
	for _, v := range c.cfg.QPValues {
		if got.QP == v {
			qpOK = true
		}
	}
	if !qpOK {
		t.Errorf("QP %d not in action set", got.QP)
	}
	if c.pend == nil || c.pend.agent != AgentQP {
		t.Error("pending action missing or wrong agent")
	}
}

func obsWith(fps, psnr, power, mbps float64) transcode.Observation {
	return transcode.Observation{FPS: fps, InstFPS: fps, PSNRdB: psnr, PowerW: power, BitrateMbps: mbps}
}

// Drive the controller through one 24-frame hyper-period by hand and check
// the update bookkeeping: updates land when the next agent acts, and the
// NULL-followed DVFS action at frame 2 aggregates six frames (2..7) before
// its update at frame 8 (paper SIV-A).
func TestControllerUpdateTimingAndNullAveraging(t *testing.T) {
	c := testController(t, 2)
	visitsTotal := func(k AgentKind) int {
		n := 0
		l := c.Learner(k)
		for s := 0; s < NumStates; s++ {
			for a := 0; a < l.Config().Actions; a++ {
				n += l.Visits.Num(s, a)
			}
		}
		return n
	}

	cur := c.Settings()
	step := func(frame int, fps float64) {
		cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: frame, Current: cur})
		c.OnFrameDone(obsWith(fps, 38, 100, 4))
	}

	// Frame 0: QP acts. Its update happens at frame 1.
	step(0, 20)
	if got := visitsTotal(AgentQP); got != 0 {
		t.Fatalf("QP visits before frame 1 = %d, want 0", got)
	}
	step(1, 20) // threads act; QP finalized with the single frame-0 obs
	if got := visitsTotal(AgentQP); got != 1 {
		t.Fatalf("QP visits after frame 1 = %d, want 1", got)
	}
	// Frame 2: DVFS acts; frames 3..7 are NULL. Make the per-frame FPS
	// observations such that the *average* lands in the >=30 band while
	// the first frame alone is far below 24: averaging is observable.
	step(2, 10)
	for f := 3; f <= 7; f++ {
		step(f, 40) // NULL slots: no action, observations accumulate
	}
	if got := visitsTotal(AgentDVFS); got != 0 {
		t.Fatalf("DVFS visits before frame 8 = %d, want 0", got)
	}
	step(8, 25) // next DVFS action: previous one finalized now
	if got := visitsTotal(AgentDVFS); got != 1 {
		t.Fatalf("DVFS visits after frame 8 = %d, want 1", got)
	}
	// Find the recorded DVFS transition and verify the successor state
	// used the averaged FPS ((10+5*40)/6 = 35 -> band >=30), not the
	// instantaneous frame-2 FPS (10 -> band <24).
	l := c.Learner(AgentDVFS)
	found := false
	for s := 0; s < NumStates && !found; s++ {
		for a := 0; a < l.Config().Actions && !found; a++ {
			for _, sp := range l.Trans.Successors(s, a) {
				st, err := StateFromIndex(sp.State)
				if err != nil {
					t.Fatal(err)
				}
				if st.FPS != FPSState(35) {
					t.Errorf("DVFS successor FPS band = %d, want %d (averaged)", st.FPS, FPSState(35))
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no DVFS transition recorded")
	}
}

func TestControllerPhaseTelemetry(t *testing.T) {
	c := testController(t, 3)
	cur := c.Settings()
	for f := 0; f < 240; f++ {
		cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		c.OnFrameDone(obsWith(25, 38, 100, 4))
	}
	st := c.Stats()
	total := 0
	for k := 0; k < 3; k++ {
		total += st.ByAgent[k].Exploration + st.ByAgent[k].ExploreExploit + st.ByAgent[k].Exploitation
	}
	// 240 frames = 10 hyper-periods of 7 actions each.
	if total != 70 {
		t.Errorf("total actions = %d, want 70", total)
	}
	if st.ByAgent[AgentDVFS].Exploration == 0 {
		t.Error("DVFS agent never explored")
	}
}

// With a stationary environment observation the agents must eventually
// reach the exploitation phase for the visited state, in DVFS-first order
// (it acts most often and has few actions).
func TestControllerReachesExploitation(t *testing.T) {
	c := testController(t, 4)
	cur := c.Settings()
	for f := 0; f < 4800; f++ {
		cur = c.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		c.OnFrameDone(obsWith(25, 38, 100, 4))
	}
	st := c.Stats()
	for k := AgentQP; k < numAgents; k++ {
		if st.ByAgent[k].Exploitation == 0 {
			t.Errorf("%v never reached exploitation in 4800 stationary frames", k)
		}
	}
	if st.FirstAllExploitFrame < 0 {
		t.Error("FirstAllExploitFrame never set")
	}
	if st.FirstExploitFrame[AgentDVFS] > st.FirstExploitFrame[AgentQP] {
		t.Errorf("DVFS (fast, few actions) exploited at %d, after QP at %d",
			st.FirstExploitFrame[AgentDVFS], st.FirstExploitFrame[AgentQP])
	}
}

// Hand-crafted Algorithm 1 check: the QP agent must pick the action whose
// expected downstream value through the thread and DVFS tables is largest,
// not the action with the best own-Q.
func TestChainArgmaxFollowsExpectedValue(t *testing.T) {
	c := testController(t, 5)
	const s0, s1, s2, s3, s4 = 0, 10, 20, 30, 40

	qp := c.agents[AgentQP].learner
	th := c.agents[AgentThreads].learner
	dv := c.agents[AgentDVFS].learner

	// Own-Q misleads: action 1 looks better on the QP table.
	qp.Q.Set(s0, 0, 0.1)
	qp.Q.Set(s0, 1, 5.0)
	// But transitions say: action 0 lands in s1, action 1 in s2.
	qp.Trans.Observe(s0, 0, s1)
	qp.Trans.Observe(s0, 1, s2)
	// Thread agent: greedy action 2 everywhere; from s1 it lands in s3,
	// from s2 in s4.
	th.Q.Set(s1, 2, 1.0)
	th.Q.Set(s2, 2, 1.0)
	th.Trans.Observe(s1, 2, s3)
	th.Trans.Observe(s2, 2, s4)
	// DVFS (chain end): s3 is worth 10, s4 is worth 1.
	dv.Q.Set(s3, 0, 10)
	dv.Q.Set(s4, 0, 1)

	chain := []AgentKind{AgentThreads, AgentDVFS}
	if got := c.chainArgmax(c.agents[AgentQP], chain, s0); got != 0 {
		t.Errorf("chainArgmax = %d, want 0 (expected value 10 beats 1)", got)
	}
	// Sanity: without the chain, own argmax would pick action 1.
	if got := qp.Q.ArgMax(s0); got != 1 {
		t.Errorf("own argmax = %d, want 1", got)
	}
}

// Stochastic transitions: expected values weight successor states by
// their empirical probabilities.
func TestChainArgmaxUsesProbabilities(t *testing.T) {
	c := testController(t, 6)
	const s0, sGood, sBad = 0, 7, 9
	qp := c.agents[AgentQP].learner
	dv := c.agents[AgentDVFS].learner

	// Action 0: 75% good, 25% bad. Action 1: always bad.
	qp.Trans.Observe(s0, 0, sGood)
	qp.Trans.Observe(s0, 0, sGood)
	qp.Trans.Observe(s0, 0, sGood)
	qp.Trans.Observe(s0, 0, sBad)
	qp.Trans.Observe(s0, 1, sBad)
	dv.Q.Set(sGood, 0, 8)
	dv.Q.Set(sBad, 0, 2)

	chain := []AgentKind{AgentDVFS}
	// E[a0] = 0.75*8 + 0.25*2 = 6.5; E[a1] = 2.
	if got := c.chainArgmax(c.agents[AgentQP], chain, s0); got != 0 {
		t.Errorf("chainArgmax = %d, want 0", got)
	}
}

// Empty chain (action followed by NULL slots): the agent evaluates its
// actions by its own table's value of the landing state.
func TestChainArgmaxEmptyChain(t *testing.T) {
	c := testController(t, 7)
	const s0, s1, s2 = 0, 3, 5
	dv := c.agents[AgentDVFS].learner
	dv.Trans.Observe(s0, 0, s1)
	dv.Trans.Observe(s0, 1, s2)
	dv.Q.Set(s1, 4, 9) // landing in s1 is great per own table
	dv.Q.Set(s2, 4, 1)
	if got := c.chainArgmax(c.agents[AgentDVFS], nil, s0); got != 0 {
		t.Errorf("empty-chain argmax = %d, want 0", got)
	}
}

// When a chain agent has not reached exploitation for the state, the
// acting agent must fall back to its own table (SIV-C).
func TestExploitActionFallsBackWhenPeersNotReady(t *testing.T) {
	c := testController(t, 8)
	qp := c.agents[AgentQP].learner
	qp.Q.Set(0, 3, 42) // own argmax is action 3
	// No peer has explored anything: phases are Exploration.
	if got := c.exploitAction(AgentQP, 0, 0); got != 3 {
		t.Errorf("fallback action = %d, want 3", got)
	}
}

// With cooperation disabled the exploit action is always the own argmax.
func TestExploitActionAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Cooperative = false
	c, err := New(cfg, transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	c.agents[AgentQP].learner.Q.Set(0, 2, 1.0)
	if got := c.exploitAction(AgentQP, 0, 0); got != 2 {
		t.Errorf("ablated exploit action = %d, want 2", got)
	}
}

// End-to-end: MAMUT inside the engine on a single HR stream must learn to
// reduce QoS violations over time.
func TestControllerLearnsInEngine(t *testing.T) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	eng, err := transcode.NewEngine(spec, model, 10)
	if err != nil {
		t.Fatal(err)
	}
	seq := &video.Sequence{
		Name: "learn", Res: video.HR, Frames: 100000, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.4, MeanSceneLen: 90,
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	initial := transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}
	ctrl, err := New(DefaultConfig(video.HR, spec, model.MaxUsefulThreads(video.HR)), initial, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 30000
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source: src, Controller: ctrl, Initial: initial,
		BandwidthMbps: 6, FrameBudget: frames, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Sessions[0].Trace
	countViol := func(from, to int) int {
		n := 0
		for _, obs := range trace[from:to] {
			if obs.FPS < 24 {
				n++
			}
		}
		return n
	}
	early := countViol(0, 2000)
	late := countViol(frames-2000, frames)
	if late >= early {
		t.Errorf("violations did not improve: early %d, late %d", early, late)
	}
	// After learning, the stream should sit at or above the target most
	// of the time.
	if pct := float64(countViol(frames-2000, frames)) / 20; pct > 30 {
		t.Errorf("late violation rate %.1f%%, want < 30%%", pct)
	}
	// Settings must always come from the action sets (plus the initial).
	for _, obs := range trace[100:] {
		okQP := false
		for _, v := range DefaultQPValues {
			if obs.Settings.QP == v {
				okQP = true
			}
		}
		if !okQP {
			t.Fatalf("QP %d not in action set", obs.Settings.QP)
		}
		if obs.Settings.Threads < 1 || obs.Settings.Threads > 12 {
			t.Fatalf("threads %d out of range", obs.Settings.Threads)
		}
		if obs.Settings.FreqGHz < 1.6 || obs.Settings.FreqGHz > 3.2 {
			t.Fatalf("freq %g out of range", obs.Settings.FreqGHz)
		}
	}
}
