package core

import "math"

// Reward constants of paper SIII-D.
const (
	// ViolationReward is the penalty for violating a constraint or the
	// real-time target.
	ViolationReward = -4.0
	// MinAcceptablePSNR and MaxUsefulPSNR bound the quality objective:
	// below 30 dB quality is unacceptable for human vision, above 50 dB
	// the extra bits are wasted.
	MinAcceptablePSNR = 30.0
	MaxUsefulPSNR     = 50.0
)

// psnrRewardA and psnrRewardB are the a and b of eq. (2), chosen so the
// reward is exactly 0 at 30 dB and 1.0 at 50 dB:
//
//	a*e^(50/50) - b = 1,  a*e^(30/50) - b = 0
var (
	psnrRewardA = 1 / (math.E - math.Exp(0.6))
	psnrRewardB = math.Exp(0.6) / (math.E - math.Exp(0.6))
)

// RewardFPS implements eq. (1): hard penalty below the target, maximal
// reward (1.0) exactly at the target, and a hyperbolically shrinking
// positive reward above it, because over-achieving wastes resources that
// could serve other users (the surplus frames are merely buffered).
func RewardFPS(fps, targetFPS float64) float64 {
	if fps < targetFPS {
		return ViolationReward
	}
	return 1 / (fps - (targetFPS - 1))
}

// RewardPSNR implements eq. (2): hard penalty outside the 30..50 dB
// acceptable band, exponentially growing reward within it.
func RewardPSNR(psnrDB float64) float64 {
	if psnrDB < MinAcceptablePSNR || psnrDB > MaxUsefulPSNR {
		return ViolationReward
	}
	return psnrRewardA*math.Exp(psnrDB/50) - psnrRewardB
}

// RewardBitrate is the bandwidth-constraint reward: -4 when the delivery
// bitrate exceeds the user's available bandwidth, 0 otherwise. A
// non-positive bandwidth means the user is unconstrained.
func RewardBitrate(mbps, bandwidthMbps float64) float64 {
	if bandwidthMbps > 0 && mbps > bandwidthMbps {
		return ViolationReward
	}
	return 0
}

// RewardPower is the power-cap constraint reward: -4 at or above the cap,
// 0 under it.
func RewardPower(powerW, capW float64) float64 {
	if powerW >= capW {
		return ViolationReward
	}
	return 0
}

// TotalReward combines the four per-observable rewards of SIII-D into the
// scalar the Q-update consumes.
func TotalReward(m Metrics, targetFPS, bandwidthMbps, capW float64) float64 {
	return RewardFPS(m.FPS, targetFPS) +
		RewardPSNR(m.PSNRdB) +
		RewardBitrate(m.BitrateMbps, bandwidthMbps) +
		RewardPower(m.PowerW, capW)
}
