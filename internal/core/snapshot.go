package core

import (
	"fmt"
	"math/rand"

	"mamut/internal/rl"
	"mamut/internal/transcode"
)

// Snapshot is the portable learned state of one MAMUT controller: the
// three agents' Q-tables, visit counts and transition models. It is the
// unit of cross-session knowledge reuse (the KaaS regime): departing
// sessions export snapshots, a knowledge base folds them together with
// rl.Snapshot.Merge, and NewWarm seeds fresh controllers from the
// accumulated state so well-observed states start past exploration.
type Snapshot struct {
	// Agents holds one rl.Snapshot per agent, indexed by AgentKind.
	Agents [3]rl.Snapshot
}

// Snapshot exports a deep copy of the controller's current learning
// state. A pending (not yet finalized) Q-update is not included — for a
// departed session that is at most one in-flight action.
func (c *Controller) Snapshot() Snapshot {
	var sn Snapshot
	for k := AgentQP; k < numAgents; k++ {
		sn.Agents[k] = c.agents[k].learner.Snapshot()
	}
	return sn
}

// Validate reports whether all three agent snapshots are structurally
// sound.
func (sn Snapshot) Validate() error {
	for k := AgentQP; k < numAgents; k++ {
		if err := sn.Agents[k].Validate(); err != nil {
			return fmt.Errorf("core: snapshot agent %v: %w", k, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the snapshot.
func (sn Snapshot) Clone() Snapshot {
	var cp Snapshot
	for k := AgentQP; k < numAgents; k++ {
		cp.Agents[k] = sn.Agents[k].Clone()
	}
	return cp
}

// Merge folds other into the receiver agent-wise with count-weighted
// averaging (see rl.Snapshot.Merge). Every agent's compatibility is
// checked before any agent is mutated, so a failed merge leaves the
// receiver untouched. Merging is deterministic for a fixed fold order;
// callers needing bit-identical results must fold contributions in a
// fixed order.
func (sn *Snapshot) Merge(other Snapshot) error {
	for k := AgentQP; k < numAgents; k++ {
		if err := sn.Agents[k].Compatible(other.Agents[k]); err != nil {
			return fmt.Errorf("core: merge agent %v: %w", k, err)
		}
	}
	for k := AgentQP; k < numAgents; k++ {
		if err := sn.Agents[k].Merge(other.Agents[k]); err != nil {
			return fmt.Errorf("core: merge agent %v: %w", k, err)
		}
	}
	return nil
}

// SubtractCounts removes base's visit and transition counts agent-wise,
// leaving the Q values untouched (see rl.Snapshot.SubtractCounts): it
// reduces a departing warm-started session's snapshot to the session's
// own experience, excluding the seeded mass. Compatibility is checked
// for every agent before any agent is mutated.
func (sn *Snapshot) SubtractCounts(base Snapshot) error {
	for k := AgentQP; k < numAgents; k++ {
		if err := sn.Agents[k].Compatible(base.Agents[k]); err != nil {
			return fmt.Errorf("core: subtract agent %v: %w", k, err)
		}
	}
	for k := AgentQP; k < numAgents; k++ {
		if err := sn.Agents[k].SubtractCounts(base.Agents[k]); err != nil {
			return fmt.Errorf("core: subtract agent %v: %w", k, err)
		}
	}
	return nil
}

// NewWarm builds a MAMUT controller like New and, when snap is non-nil,
// seeds all three agents from the snapshot before the first frame. The
// eq. (3) learning-rate/phase machinery then takes over: states whose
// folded visit counts push every action's alpha below the thresholds
// start directly in explore-exploit or exploitation, skipping the random
// exploration a cold-started session would spend most of a short
// lifetime in. A nil snap is exactly New (cold start). The snapshot's
// table dimensions must match the configuration's action sets.
func NewWarm(cfg Config, initial transcode.Settings, rng *rand.Rand, snap *Snapshot) (*Controller, error) {
	c, err := New(cfg, initial, rng)
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return c, nil
	}
	for k := AgentQP; k < numAgents; k++ {
		if err := c.agents[k].learner.Seed(snap.Agents[k]); err != nil {
			return nil, fmt.Errorf("core: warm start agent %v: %w", k, err)
		}
	}
	return c, nil
}
