package core

import (
	"fmt"
	"math/rand"

	"mamut/internal/platform"
	"mamut/internal/rl"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// Config parametrises one MAMUT controller (one per video stream).
type Config struct {
	// QPValues is AGqp's action set (paper SIII-B.a).
	QPValues []int
	// ThreadValues is AGthread's action set; it stops at the platform's
	// saturation point for the stream's resolution (SIII-B.b).
	ThreadValues []int
	// FreqValues is AGdvfs's action set: the real-time DVFS rungs
	// (SIII-B.c).
	FreqValues []float64
	// Schedule is the agent activation pattern (SIII-B.d / Fig. 3).
	Schedule Schedule

	// Learning constants (SIV-B).
	Beta, BetaPrime    float64
	AlphaTh1, AlphaTh2 float64
	Gamma              float64

	// TargetFPS is the real-time objective (24 in the paper).
	TargetFPS float64
	// BandwidthMbps is the user's bandwidth (bitrate constraint); zero
	// disables the constraint.
	BandwidthMbps float64
	// PowerCapW is the server power cap the power state and reward use.
	PowerCapW float64

	// Cooperative enables Algorithm 1's expected-Q chain in the
	// exploitation phase. Disabling it is the paper's implicit ablation:
	// each agent then greedily follows its own Q-table.
	Cooperative bool
}

// DefaultQPValues is the paper's AGqp action set.
var DefaultQPValues = []int{22, 25, 27, 29, 32, 35, 37}

// DefaultBandwidth returns the per-resolution default user bandwidth used
// by the experiments: the 3G-band edges of the bitrate states that a
// stream of that resolution can realistically exceed.
func DefaultBandwidth(res video.Resolution) float64 {
	if res == video.HR {
		return 6.0
	}
	return 3.0
}

// DefaultThreadValues returns 1..saturation for the resolution on the
// given platform model (12 for HR, 5 for LR with the default model).
func DefaultThreadValues(maxUseful int) []int {
	vals := make([]int, maxUseful)
	for i := range vals {
		vals[i] = i + 1
	}
	return vals
}

// DefaultConfig assembles the paper's configuration for one stream.
func DefaultConfig(res video.Resolution, spec platform.Spec, maxUsefulThreads int) Config {
	return Config{
		QPValues:      append([]int(nil), DefaultQPValues...),
		ThreadValues:  DefaultThreadValues(maxUsefulThreads),
		FreqValues:    spec.RealTimeFrequencies(),
		Schedule:      DefaultSchedule(),
		Beta:          0.3,
		BetaPrime:     0.2,
		AlphaTh1:      0.1,
		AlphaTh2:      0.05,
		Gamma:         0.6,
		TargetFPS:     transcode.DefaultTargetFPS,
		BandwidthMbps: DefaultBandwidth(res),
		PowerCapW:     spec.PowerCapW,
		Cooperative:   true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.QPValues) < 2 || len(c.ThreadValues) < 2 || len(c.FreqValues) < 2 {
		return fmt.Errorf("core: each agent needs at least 2 actions")
	}
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	if c.TargetFPS <= 0 {
		return fmt.Errorf("core: target FPS %g invalid", c.TargetFPS)
	}
	if c.PowerCapW <= 0 {
		return fmt.Errorf("core: power cap %g invalid", c.PowerCapW)
	}
	if c.BandwidthMbps < 0 {
		return fmt.Errorf("core: bandwidth %g invalid", c.BandwidthMbps)
	}
	return nil
}

// pending is an action awaiting its next-state observation: the paper
// updates Q(st, at) when the following agent acts; for actions followed by
// NULL slots the next state is the average of the states observed during
// those slots (SIV-A).
type pending struct {
	agent  AgentKind
	state  int
	action int

	sumPSNR, sumPower, sumBitrate, sumFPS float64
	n                                     int
}

func (p *pending) accumulate(obs transcode.Observation) {
	p.sumPSNR += obs.PSNRdB
	p.sumPower += obs.PowerW
	p.sumBitrate += obs.BitrateMbps
	// Use the per-frame (instantaneous) throughput: the paper observes the
	// next state "right at the end of the frame", and a windowed estimate
	// would smear the action's effect over pre-action frames, breaking
	// credit assignment for the slow agents.
	p.sumFPS += obs.InstFPS
	p.n++
}

func (p *pending) averaged() Metrics {
	if p.n == 0 {
		return Metrics{}
	}
	f := float64(p.n)
	return Metrics{
		PSNRdB:      p.sumPSNR / f,
		PowerW:      p.sumPower / f,
		BitrateMbps: p.sumBitrate / f,
		FPS:         p.sumFPS / f,
	}
}

// PhaseCounts tallies how many actions an agent took in each phase.
type PhaseCounts struct {
	Exploration    int
	ExploreExploit int
	Exploitation   int
}

// Stats exposes the controller's learning telemetry.
type Stats struct {
	// ByAgent are per-agent phase tallies, indexed by AgentKind.
	ByAgent [3]PhaseCounts
	// FirstExploitFrame is the first frame index at which each agent
	// selected an action in the exploitation phase, -1 if never.
	FirstExploitFrame [3]int
	// FirstAllExploitFrame is the first frame index from which all three
	// agents had reached exploitation at least once, -1 if never.
	FirstAllExploitFrame int
}

// Controller is the MAMUT run-time manager for one transcoding session.
// It implements transcode.Controller.
type Controller struct {
	cfg    Config
	agents [3]*agent
	rng    *rand.Rand

	settings transcode.Settings
	curState int
	pend     *pending
	started  bool

	stats Stats
}

// New builds a MAMUT controller. The initial settings are the knob values
// in force before the first agent acts. The rng drives exploration.
func New(cfg Config, initial transcode.Settings, rng *rand.Rand) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, rng: rng, settings: initial}
	for k := AgentQP; k < numAgents; k++ {
		a, err := newAgent(k, cfg)
		if err != nil {
			return nil, err
		}
		c.agents[k] = a
	}
	// Until the first observation arrives the controller assumes a benign
	// starting state: acceptable quality, under the power cap, mid
	// bitrate, below the FPS target (pessimistic on throughput so early
	// exploration leans toward speed).
	c.curState = State{PSNR: 2, Power: 0, Bitrate: 1, FPS: 0}.Index()
	for k := range c.stats.FirstExploitFrame {
		c.stats.FirstExploitFrame[k] = -1
	}
	c.stats.FirstAllExploitFrame = -1
	return c, nil
}

// Name implements transcode.Controller.
func (c *Controller) Name() string { return "mamut" }

// Stats returns the learning telemetry collected so far.
func (c *Controller) Stats() Stats { return c.stats }

// Settings returns the knob values currently in force.
func (c *Controller) Settings() transcode.Settings { return c.settings }

// Agent learning accessors for tests and ablations.

// Learner returns the rl.Learner of one agent.
func (c *Controller) Learner(k AgentKind) *rl.Learner { return c.agents[k].learner }

// otherMinSum computes the eq. (3) coupling term for agent k: the sum over
// the other agents of their least-taken action's count.
func (c *Controller) otherMinSum(k AgentKind) int {
	sum := 0
	for j := AgentQP; j < numAgents; j++ {
		if j == k {
			continue
		}
		sum += c.agents[j].learner.Visits.MinActionCount()
	}
	return sum
}

// OnFrameStart implements transcode.Controller: finalize any pending
// update if an agent acts at this frame, then let that agent choose its
// action per its learning phase.
func (c *Controller) OnFrameStart(fs transcode.FrameStart) transcode.Settings {
	k := c.cfg.Schedule.ActingAgent(fs.FrameIndex)
	if k == AgentNone {
		return c.settings
	}
	c.finalizePending()

	ag := c.agents[k]
	s := c.curState
	phase := ag.learner.PhaseFor(s, c.otherMinSum(k))
	var action int
	switch phase {
	case rl.Exploration:
		action = rl.RandomAction(ag.actions(), c.rng)
		c.stats.ByAgent[k].Exploration++
	case rl.ExploreExploit:
		action = c.exploreExploitAction(ag, k, s)
		c.stats.ByAgent[k].ExploreExploit++
	default: // rl.Exploitation
		action = c.exploitAction(k, s, fs.FrameIndex)
		c.stats.ByAgent[k].Exploitation++
		if c.stats.FirstExploitFrame[k] < 0 {
			c.stats.FirstExploitFrame[k] = fs.FrameIndex
			if c.stats.FirstAllExploitFrame < 0 {
				all := true
				for j := range c.stats.FirstExploitFrame {
					if c.stats.FirstExploitFrame[j] < 0 {
						all = false
					}
				}
				if all {
					c.stats.FirstAllExploitFrame = fs.FrameIndex
				}
			}
		}
	}
	c.pend = &pending{agent: k, state: s, action: action}
	c.settings = ag.apply(c.settings, action)
	c.started = true
	return c.settings
}

// OnFrameDone implements transcode.Controller: accumulate the observation
// into the pending update (covering both the immediate case and the
// NULL-slot averaging of SIV-A).
func (c *Controller) OnFrameDone(obs transcode.Observation) {
	if c.pend != nil {
		c.pend.accumulate(obs)
	} else if c.started {
		// Between finalization and the next action there is no pending
		// entry only transiently; with a valid schedule every completed
		// frame since the first action belongs to some pending action.
		// Keep the state fresh anyway.
		c.curState = StateOf(Metrics{
			PSNRdB: obs.PSNRdB, PowerW: obs.PowerW,
			BitrateMbps: obs.BitrateMbps, FPS: obs.InstFPS,
		}, c.cfg.PowerCapW).Index()
	}
}

// finalizePending applies the deferred Q-update of the last action using
// the (possibly NULL-averaged) observed metrics.
func (c *Controller) finalizePending() {
	p := c.pend
	if p == nil || p.n == 0 {
		c.pend = nil
		return
	}
	m := p.averaged()
	next := StateOf(m, c.cfg.PowerCapW).Index()
	reward := TotalReward(m, c.cfg.TargetFPS, c.cfg.BandwidthMbps, c.cfg.PowerCapW)
	ag := c.agents[p.agent]
	ag.learner.Update(p.state, p.action, next, reward, c.otherMinSum(p.agent))
	c.curState = next
	c.pend = nil
}

// exploreExploitAction selects the action in the exploration-exploitation
// phase: per SIV-A the agent stops taking *random* actions but the Q-table
// keeps updating. Actions whose learning rate has not yet dropped below
// alpha_th2 are completed deterministically, least-visited first — this is
// what lets every (s,a) pair reach the exploitation threshold and gives
// Algorithm 1 a transition estimate for every action. Once all pairs are
// below the threshold (the state is about to enter exploitation) the agent
// acts greedily.
func (c *Controller) exploreExploitAction(ag *agent, k AgentKind, s int) int {
	other := c.otherMinSum(k)
	best, bestN := -1, 0
	for a := 0; a < ag.actions(); a++ {
		if ag.learner.Alpha(s, a, other) < ag.learner.Config().AlphaTh2 {
			continue
		}
		n := ag.learner.Visits.Num(s, a)
		if best < 0 || n < bestN {
			best, bestN = a, n
		}
	}
	if best < 0 {
		return ag.learner.Q.ArgMax(s)
	}
	return best
}

// exploitAction selects the action in the exploitation phase. When
// cooperation is enabled and every agent in the Fig. 3 chain after this
// frame has also reached exploitation for the current state, it maximises
// the expected Q-value through the chain (Algorithm 1); otherwise the
// agent follows its own Q-table, as SIV-C prescribes for the case where
// the whole system is not yet exploiting.
func (c *Controller) exploitAction(k AgentKind, s int, frame int) int {
	ag := c.agents[k]
	if !c.cfg.Cooperative {
		return ag.learner.Q.ArgMax(s)
	}
	chain := c.cfg.Schedule.Chain(frame)
	for _, j := range chain {
		if c.agents[j].learner.PhaseFor(s, c.otherMinSum(j)) != rl.Exploitation {
			return ag.learner.Q.ArgMax(s)
		}
	}
	return c.chainArgmax(ag, chain, s)
}

// chainArgmax implements line 1 of Algorithm 1: evaluate each own action a
// by the expected downstream value sum_s' P(s --a--> s') * E[Q(chain, s')]
// and return the best. Actions whose transitions were never observed fall
// back to their own Q-value, so unexplored actions are neither favoured
// nor excluded.
func (c *Controller) chainArgmax(ag *agent, chain []AgentKind, s int) int {
	bestA, bestV := 0, 0.0
	for a := 0; a < ag.actions(); a++ {
		var v float64
		if ag.learner.Trans.Observed(s, a) {
			for _, sp := range ag.learner.Trans.Successors(s, a) {
				v += sp.P * c.expectedQ(ag, chain, sp.State)
			}
		} else {
			v = ag.learner.Q.Get(s, a)
		}
		if a == 0 || v > bestV {
			bestA, bestV = a, v
		}
	}
	return bestA
}

// expectedQ implements the recursive E[QValue(AG, s)] of Algorithm 1. An
// exhausted chain values the landing state by the *acting* agent's own
// table (it is the one that will act there next, after the NULL slots).
func (c *Controller) expectedQ(self *agent, chain []AgentKind, s int) float64 {
	if len(chain) == 0 {
		return self.learner.Q.Max(s)
	}
	ag := c.agents[chain[0]]
	if len(chain) == 1 {
		// AG.next() == NULL: return max_a Q_AG(s, a).
		return ag.learner.Q.Max(s)
	}
	a := ag.learner.Q.ArgMax(s)
	if !ag.learner.Trans.Observed(s, a) {
		return ag.learner.Q.Get(s, a)
	}
	var v float64
	for _, sp := range ag.learner.Trans.Successors(s, a) {
		v += sp.P * c.expectedQ(self, chain[1:], sp.State)
	}
	return v
}

var _ transcode.Controller = (*Controller)(nil)
