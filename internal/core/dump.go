package core

import (
	"fmt"
	"io"
	"sort"

	"mamut/internal/rl"
)

// PolicyEntry describes one visited state's greedy policy across the
// three agents — the converged operating point MAMUT would choose there.
type PolicyEntry struct {
	// State is the factored state.
	State State
	// Visits is the total number of agent actions taken in this state.
	Visits int
	// QP, Threads and FreqGHz are the greedy choices of each agent.
	QP      int
	Threads int
	FreqGHz float64
	// Phases are the per-agent learning phases for the state.
	Phases [3]rl.Phase
}

// Policy returns the greedy policy of every visited state, most-visited
// first. It is an introspection tool: the paper's Table I/Fig. 5
// behaviour can be read directly off the hot states' rows.
func (c *Controller) Policy() []PolicyEntry {
	var out []PolicyEntry
	for s := 0; s < NumStates; s++ {
		visits := 0
		for k := AgentQP; k < numAgents; k++ {
			l := c.agents[k].learner
			for a := 0; a < l.Config().Actions; a++ {
				visits += l.Visits.Num(s, a)
			}
		}
		if visits == 0 {
			continue
		}
		st, err := StateFromIndex(s)
		if err != nil {
			// s iterates [0,NumStates): an error is a programming bug.
			panic(err)
		}
		entry := PolicyEntry{State: st, Visits: visits}
		entry.QP = c.cfg.QPValues[c.agents[AgentQP].learner.Q.ArgMax(s)]
		entry.Threads = c.cfg.ThreadValues[c.agents[AgentThreads].learner.Q.ArgMax(s)]
		entry.FreqGHz = c.cfg.FreqValues[c.agents[AgentDVFS].learner.Q.ArgMax(s)]
		for k := AgentQP; k < numAgents; k++ {
			entry.Phases[k] = c.agents[k].learner.PhaseFor(s, c.otherMinSum(k))
		}
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		return out[i].State.Index() < out[j].State.Index()
	})
	return out
}

// DumpPolicy writes the visited-state policy as an aligned text table,
// most-visited states first, at most maxRows rows (0 = all).
func (c *Controller) DumpPolicy(w io.Writer, maxRows int) error {
	entries := c.Policy()
	if maxRows > 0 && len(entries) > maxRows {
		entries = entries[:maxRows]
	}
	if _, err := fmt.Fprintf(w, "%-28s %7s  %4s %7s %5s  %s\n",
		"state(PSNR,Pow,BR,FPS)", "visits", "QP", "threads", "GHz", "phases(qp/thread/dvfs)"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "(%d,%d,%d,%d)%-17s %7d  %4d %7d %5.1f  %v/%v/%v\n",
			e.State.PSNR, e.State.Power, e.State.Bitrate, e.State.FPS, "",
			e.Visits, e.QP, e.Threads, e.FreqGHz,
			e.Phases[AgentQP], e.Phases[AgentThreads], e.Phases[AgentDVFS]); err != nil {
			return err
		}
	}
	return nil
}
