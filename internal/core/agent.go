package core

import (
	"fmt"

	"mamut/internal/rl"
	"mamut/internal/transcode"
)

// agent binds one rl.Learner to the knob it owns. Actions are indices
// into the agent's value list; applying an action overwrites that knob in
// the session settings (the paper's actions are absolute set-points, not
// increments).
type agent struct {
	kind    AgentKind
	learner *rl.Learner

	qpValues     []int
	threadValues []int
	freqValues   []float64
}

// actions returns the size of the agent's action set.
func (a *agent) actions() int {
	switch a.kind {
	case AgentQP:
		return len(a.qpValues)
	case AgentThreads:
		return len(a.threadValues)
	default:
		return len(a.freqValues)
	}
}

// apply returns settings with this agent's knob set to the action's value.
func (a *agent) apply(s transcode.Settings, action int) transcode.Settings {
	switch a.kind {
	case AgentQP:
		s.QP = a.qpValues[action]
	case AgentThreads:
		s.Threads = a.threadValues[action]
	default:
		s.FreqGHz = a.freqValues[action]
	}
	return s
}

// currentAction returns the action index matching the knob value in s, or
// the closest one if the current value is not in the list (possible only
// if external code changed the settings).
func (a *agent) currentAction(s transcode.Settings) int {
	switch a.kind {
	case AgentQP:
		return closestInt(a.qpValues, s.QP)
	case AgentThreads:
		return closestInt(a.threadValues, s.Threads)
	default:
		return closestFloat(a.freqValues, s.FreqGHz)
	}
}

func closestInt(vals []int, x int) int {
	best, bestD := 0, -1
	for i, v := range vals {
		d := v - x
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func closestFloat(vals []float64, x float64) int {
	best, bestD := 0, -1.0
	for i, v := range vals {
		d := v - x
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// newAgent builds the learner for one knob.
func newAgent(kind AgentKind, cfg Config) (*agent, error) {
	a := &agent{
		kind:         kind,
		qpValues:     cfg.QPValues,
		threadValues: cfg.ThreadValues,
		freqValues:   cfg.FreqValues,
	}
	n := a.actions()
	if n < 2 {
		return nil, fmt.Errorf("core: agent %s needs at least 2 actions, has %d", kind, n)
	}
	rlCfg := rl.Config{
		States:    NumStates,
		Actions:   n,
		Beta:      cfg.Beta,
		BetaPrime: cfg.BetaPrime,
		AlphaTh1:  cfg.AlphaTh1,
		AlphaTh2:  cfg.AlphaTh2,
		Gamma:     cfg.Gamma,
	}
	l, err := rl.NewLearner(rlCfg)
	if err != nil {
		return nil, err
	}
	a.learner = l
	return a, nil
}
