package rl

import (
	"fmt"
	"math"
)

// Phase is the per-state learning phase of paper SIV.
type Phase int

const (
	// Exploration: take random actions from the agent's own action set and
	// record every observed transition.
	Exploration Phase = iota
	// ExploreExploit: stop taking random actions but keep updating the
	// Q-table (entered when the learning rate drops below alpha_th1).
	ExploreExploit
	// Exploitation: act cooperatively via the expected-Q chain (entered
	// when the learning rate drops below alpha_th2).
	Exploitation
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Exploration:
		return "exploration"
	case ExploreExploit:
		return "explore-exploit"
	case Exploitation:
		return "exploitation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config parametrises a Learner. The defaults mirror paper SIV-B.
type Config struct {
	// States and Actions size the tables.
	States, Actions int
	// Beta is the weight of the 1/Num(s,a) learning-rate term.
	Beta float64
	// BetaPrime is the weight of the cross-agent coupling term; zero for a
	// mono-agent learner.
	BetaPrime float64
	// AlphaTh1 and AlphaTh2 are the phase thresholds (0.1 and 0.05).
	AlphaTh1, AlphaTh2 float64
	// Gamma is the discount factor (0.6).
	Gamma float64
}

// DefaultConfig returns the paper's constants for the given table sizes.
func DefaultConfig(states, actions int) Config {
	return Config{
		States:    states,
		Actions:   actions,
		Beta:      0.3,
		BetaPrime: 0.2,
		AlphaTh1:  0.1,
		AlphaTh2:  0.05,
		Gamma:     0.6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.States < 1 || c.Actions < 1 {
		return fmt.Errorf("rl: config dimensions %dx%d invalid", c.States, c.Actions)
	}
	if c.Beta <= 0 {
		return fmt.Errorf("rl: beta %g must be positive", c.Beta)
	}
	if c.BetaPrime < 0 {
		return fmt.Errorf("rl: beta' %g must be non-negative", c.BetaPrime)
	}
	if !(c.AlphaTh1 > c.AlphaTh2) || c.AlphaTh2 <= 0 {
		return fmt.Errorf("rl: thresholds must satisfy th1 %g > th2 %g > 0", c.AlphaTh1, c.AlphaTh2)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("rl: gamma %g outside [0,1)", c.Gamma)
	}
	return nil
}

// Learner bundles one agent's Q-table, visit counts and transition model,
// and implements the eq. (3) learning rate and the Q update.
type Learner struct {
	cfg    Config
	Q      *QTable
	Visits *Counter
	Trans  *Transitions
}

// NewLearner builds a learner from a validated config.
func NewLearner(cfg Config) (*Learner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q, err := NewQTable(cfg.States, cfg.Actions)
	if err != nil {
		return nil, err
	}
	v, err := NewCounter(cfg.States, cfg.Actions)
	if err != nil {
		return nil, err
	}
	tr, err := NewTransitions(cfg.States, cfg.Actions)
	if err != nil {
		return nil, err
	}
	return &Learner{cfg: cfg, Q: q, Visits: v, Trans: tr}, nil
}

// Config returns the learner's configuration.
func (l *Learner) Config() Config { return l.cfg }

// Alpha evaluates the eq. (3) learning rate for (s,a):
//
//	alpha_i(s,a) = beta_i/Num(s,a) + beta'_i/(1 + sum_{j!=i} min_a Num_j(a))
//
// otherMinSum is the sum over the *other* agents of their least-taken
// action's count. An unvisited pair has learning rate clamped to 1.
func (l *Learner) Alpha(s, a, otherMinSum int) float64 {
	if otherMinSum < 0 {
		otherMinSum = 0
	}
	n := l.Visits.Num(s, a)
	var first float64
	if n == 0 {
		first = 1
	} else {
		first = l.cfg.Beta / float64(n)
	}
	second := l.cfg.BetaPrime / float64(1+otherMinSum)
	return math.Min(1, first+second)
}

// AlphaMax returns the largest learning rate over the actions of state s —
// the quantity the per-state phase machine thresholds against: a state only
// leaves exploration when *every* one of its actions is well-observed.
func (l *Learner) AlphaMax(s, otherMinSum int) float64 {
	worst := 0.0
	for a := 0; a < l.cfg.Actions; a++ {
		if v := l.Alpha(s, a, otherMinSum); v > worst {
			worst = v
		}
	}
	return worst
}

// PhaseFor returns the learning phase of state s given the other agents'
// exploration progress. New (never-seen) states are in Exploration by
// construction since their alpha is 1.
func (l *Learner) PhaseFor(s, otherMinSum int) Phase {
	a := l.AlphaMax(s, otherMinSum)
	switch {
	case a < l.cfg.AlphaTh2:
		return Exploitation
	case a < l.cfg.AlphaTh1:
		return ExploreExploit
	default:
		return Exploration
	}
}

// Update performs one Q-learning step for the observed interaction
// (s, a, reward, next): records the visit and the transition, then applies
//
//	Q(s,a) += alpha * (reward + gamma*max_a' Q(next,a') - Q(s,a))
//
// with alpha from eq. (3) evaluated *after* the visit is counted. It
// returns the learning rate used.
func (l *Learner) Update(s, a, next int, reward float64, otherMinSum int) float64 {
	l.Visits.Observe(s, a)
	l.Trans.Observe(s, a, next)
	alpha := l.Alpha(s, a, otherMinSum)
	target := reward + l.cfg.Gamma*l.Q.Max(next)
	l.Q.Set(s, a, l.Q.Get(s, a)+alpha*(target-l.Q.Get(s, a)))
	return alpha
}
