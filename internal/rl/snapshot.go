package rl

import "fmt"

// Snapshot is the portable learned state of one Learner: the Q-table,
// the Num(s,a) visit counts and the empirical transition counts. It is
// the unit of cross-session knowledge reuse — a departing transcoding
// session exports its snapshot, snapshots fold together with
// count-weighted averaging (Merge), and a fresh learner absorbs the
// accumulated knowledge (Learner.Seed) so its well-observed states start
// past exploration under the eq. (3) learning-rate thresholds.
type Snapshot struct {
	// States and Actions are the table dimensions.
	States, Actions int
	// Q is the dense Q-table, row-major [state][action].
	Q []float64
	// VisitsSA is the dense Num(s,a) table; VisitsAction the per-action
	// totals Num(a).
	VisitsSA     []int
	VisitsAction []int
	// Trans holds the sparse transition counts: Trans[s*Actions+a][next]
	// is the number of observed s --a--> next transitions (nil maps for
	// never-taken pairs).
	Trans []map[int]int
}

// Snapshot exports a deep copy of the learner's current learning state.
func (l *Learner) Snapshot() Snapshot {
	sn := Snapshot{
		States:       l.cfg.States,
		Actions:      l.cfg.Actions,
		Q:            append([]float64(nil), l.Q.q...),
		VisitsSA:     append([]int(nil), l.Visits.sa...),
		VisitsAction: append([]int(nil), l.Visits.perAction...),
		Trans:        make([]map[int]int, len(l.Trans.counts)),
	}
	for i, m := range l.Trans.counts {
		if m == nil {
			continue
		}
		cp := make(map[int]int, len(m))
		for next, n := range m {
			cp[next] = n
		}
		sn.Trans[i] = cp
	}
	return sn
}

// checkShape verifies the table sizes against the dimensions — the O(1)
// structural half of Validate, cheap enough to run on every fold.
func (sn Snapshot) checkShape() error {
	if sn.States < 1 || sn.Actions < 1 {
		return fmt.Errorf("rl: snapshot dimensions %dx%d invalid", sn.States, sn.Actions)
	}
	n := sn.States * sn.Actions
	if len(sn.Q) != n || len(sn.VisitsSA) != n || len(sn.VisitsAction) != sn.Actions || len(sn.Trans) != n {
		return fmt.Errorf("rl: snapshot table sizes do not match dimensions %dx%d", sn.States, sn.Actions)
	}
	return nil
}

// Validate reports whether the snapshot is structurally sound, including
// a full scan of the transition counts. Snapshots produced by
// Learner.Snapshot are valid by construction; run Validate on snapshots
// crossing a trust boundary (deserialised, externally assembled) — the
// fold operations themselves only re-check shape and dimensions.
func (sn Snapshot) Validate() error {
	if err := sn.checkShape(); err != nil {
		return err
	}
	for i, m := range sn.Trans {
		for next, c := range m {
			if next < 0 || next >= sn.States || c < 1 {
				return fmt.Errorf("rl: snapshot transition (%d -> %d, count %d) invalid", i, next, c)
			}
		}
	}
	return nil
}

// Compatible reports whether other has the receiver's shape and
// dimensions, i.e. whether the two snapshots can fold together. It never
// mutates either side, so callers folding multi-part state (e.g. one
// snapshot per agent) can pre-check every part before mutating any.
func (sn Snapshot) Compatible(other Snapshot) error {
	if err := sn.checkShape(); err != nil {
		return err
	}
	if err := other.checkShape(); err != nil {
		return err
	}
	if sn.States != other.States || sn.Actions != other.Actions {
		return fmt.Errorf("rl: snapshot dimensions %dx%d vs %dx%d", sn.States, sn.Actions, other.States, other.Actions)
	}
	return nil
}

// Clone returns a deep copy of the snapshot.
func (sn Snapshot) Clone() Snapshot {
	cp := Snapshot{
		States:       sn.States,
		Actions:      sn.Actions,
		Q:            append([]float64(nil), sn.Q...),
		VisitsSA:     append([]int(nil), sn.VisitsSA...),
		VisitsAction: append([]int(nil), sn.VisitsAction...),
		Trans:        make([]map[int]int, len(sn.Trans)),
	}
	for i, m := range sn.Trans {
		if m == nil {
			continue
		}
		mc := make(map[int]int, len(m))
		for next, n := range m {
			mc[next] = n
		}
		cp.Trans[i] = mc
	}
	return cp
}

// foldFrom applies the count-weighted fold of src into the destination
// views: every Q value becomes the visit-count-weighted mean of the two
// sides (one-sided visits adopt the visited value exactly, with no
// floating-point round-trip), visit counts add, and transition counts
// add. totals, when non-nil, receives the per-pair transition-count
// increments (the Learner's Transitions keeps a totals cache; a bare
// Snapshot does not). The shapes must already be checked.
func foldFrom(q []float64, visitsSA, visitsAction []int, trans []map[int]int, totals []int, src Snapshot) {
	for i := range q {
		nd, ns := visitsSA[i], src.VisitsSA[i]
		switch {
		case ns == 0:
		case nd == 0:
			q[i] = src.Q[i]
		default:
			q[i] = (float64(nd)*q[i] + float64(ns)*src.Q[i]) / float64(nd+ns)
		}
		visitsSA[i] = nd + ns
	}
	for a := range visitsAction {
		visitsAction[a] += src.VisitsAction[a]
	}
	for i, m := range src.Trans {
		if len(m) == 0 {
			continue
		}
		if trans[i] == nil {
			trans[i] = make(map[int]int, len(m))
		}
		for next, n := range m {
			trans[i][next] += n
			if totals != nil {
				totals[i] += n
			}
		}
	}
}

// Merge folds other into the receiver with count-weighted averaging:
// every Q(s,a) becomes the visit-count-weighted mean of the two tables'
// values, visit counts add, and transition counts add. A pair unvisited
// on both sides keeps the receiver's (zero) value. The receiver is only
// mutated after the compatibility check passes. Merging is exact on
// counts and deterministic on Q for a fixed fold order; callers that
// need bit-identical results across runs must fold contributions in a
// fixed order (floating-point averaging does not commute).
func (sn *Snapshot) Merge(other Snapshot) error {
	if err := sn.Compatible(other); err != nil {
		return err
	}
	foldFrom(sn.Q, sn.VisitsSA, sn.VisitsAction, sn.Trans, nil, other)
	return nil
}

// SubtractCounts removes base's visit and transition counts from the
// snapshot, leaving the Q values untouched. This turns a departing
// warm-started session's snapshot into its own *contribution*: the
// session's final Q estimates weighted by only the experience it
// gathered itself, excluding the mass it was seeded with — re-merging
// the seed's counts on every departure would double the shared pool per
// generation (exponential growth, eventually overflowing the counts)
// and drown new experience under recycled old mass. base must be a
// prefix of the snapshot's history (counts can only have grown since
// seeding); a negative residual count is an error.
func (sn *Snapshot) SubtractCounts(base Snapshot) error {
	if err := sn.Compatible(base); err != nil {
		return err
	}
	for i := range sn.VisitsSA {
		if sn.VisitsSA[i] -= base.VisitsSA[i]; sn.VisitsSA[i] < 0 {
			return fmt.Errorf("rl: subtract pair %d: %d visits below base", i, sn.VisitsSA[i])
		}
	}
	for a := range sn.VisitsAction {
		if sn.VisitsAction[a] -= base.VisitsAction[a]; sn.VisitsAction[a] < 0 {
			return fmt.Errorf("rl: subtract action %d: %d visits below base", a, sn.VisitsAction[a])
		}
	}
	for i, m := range base.Trans {
		for next, n := range m {
			cur := sn.Trans[i][next] - n
			switch {
			case cur < 0:
				return fmt.Errorf("rl: subtract transition (%d -> %d): count %d below base", i, next, cur+n)
			case cur == 0:
				delete(sn.Trans[i], next)
			default:
				sn.Trans[i][next] = cur
			}
		}
	}
	return nil
}

// Seed folds a snapshot into the learner with the same count-weighted
// averaging as Snapshot.Merge. On a fresh (zero-count) learner this
// installs the snapshot verbatim, so states the snapshot has explored
// past the alpha thresholds start directly in the later learning phases;
// on a partially trained learner the two states average by visit weight.
func (l *Learner) Seed(sn Snapshot) error {
	self := Snapshot{States: l.cfg.States, Actions: l.cfg.Actions,
		Q: l.Q.q, VisitsSA: l.Visits.sa, VisitsAction: l.Visits.perAction, Trans: l.Trans.counts}
	if err := self.Compatible(sn); err != nil {
		return fmt.Errorf("rl: seed: %w", err)
	}
	foldFrom(l.Q.q, l.Visits.sa, l.Visits.perAction, l.Trans.counts, l.Trans.totals, sn)
	return nil
}
