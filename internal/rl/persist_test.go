package rl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func trainedLearner(t *testing.T, seed int64) *Learner {
	t.Helper()
	l, err := NewLearner(DefaultConfig(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		l.Update(rng.Intn(20), rng.Intn(5), rng.Intn(20), -4+8*rng.Float64(), rng.Intn(30))
	}
	return l
}

func TestLearnerSaveLoadRoundTrip(t *testing.T) {
	l := trainedLearner(t, 1)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLearner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != l.Config() {
		t.Fatal("config not restored")
	}
	for s := 0; s < 20; s++ {
		for a := 0; a < 5; a++ {
			if got.Q.Get(s, a) != l.Q.Get(s, a) {
				t.Fatalf("Q(%d,%d) = %g, want %g", s, a, got.Q.Get(s, a), l.Q.Get(s, a))
			}
			if got.Visits.Num(s, a) != l.Visits.Num(s, a) {
				t.Fatalf("visits(%d,%d) differ", s, a)
			}
			for next := 0; next < 20; next++ {
				if got.Trans.Prob(s, a, next) != l.Trans.Prob(s, a, next) {
					t.Fatalf("P(%d,%d,%d) differs", s, a, next)
				}
			}
		}
	}
	for a := 0; a < 5; a++ {
		if got.Visits.NumAction(a) != l.Visits.NumAction(a) {
			t.Fatalf("per-action count %d differs", a)
		}
	}
	// The restored learner keeps learning identically.
	alpha1 := l.Update(3, 2, 7, 0.5, 10)
	alpha2 := got.Update(3, 2, 7, 0.5, 10)
	if alpha1 != alpha2 || l.Q.Get(3, 2) != got.Q.Get(3, 2) {
		t.Error("restored learner diverges on further updates")
	}
}

func TestLoadLearnerRejectsGarbage(t *testing.T) {
	if _, err := LoadLearner(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadLearner(strings.NewReader(`{"config":{"States":0}}`)); err == nil {
		t.Error("invalid config accepted")
	}
	// Mismatched table sizes.
	if _, err := LoadLearner(strings.NewReader(
		`{"config":{"States":2,"Actions":2,"Beta":0.3,"AlphaTh1":0.1,"AlphaTh2":0.05,"Gamma":0.6},"q":[1],"visits_sa":[0,0,0,0],"visits_action":[0,0]}`)); err == nil {
		t.Error("short Q table accepted")
	}
	// Invalid transition tuple.
	if _, err := LoadLearner(strings.NewReader(
		`{"config":{"States":2,"Actions":2,"Beta":0.3,"AlphaTh1":0.1,"AlphaTh2":0.05,"Gamma":0.6},` +
			`"q":[0,0,0,0],"visits_sa":[0,0,0,0],"visits_action":[0,0],"transitions":[[5,0,0,1]]}`)); err == nil {
		t.Error("out-of-range transition accepted")
	}
}

// TestLoadLearnerFormatVersions: legacy unversioned payloads still load
// (version 0), the current version round-trips, and payloads from a
// future writer are refused instead of being misread.
func TestLoadLearnerFormatVersions(t *testing.T) {
	l := trainedLearner(t, 2)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	if !strings.Contains(saved, `"format_version":1`) {
		t.Fatalf("saved payload carries no current version stamp: %s", saved[:60])
	}

	// Legacy payload: strip the version field entirely, as written by
	// pre-versioning builds. It must load identically.
	legacy := strings.Replace(saved, `"format_version":1,`, "", 1)
	if legacy == saved {
		t.Fatal("version field not removed")
	}
	got, err := LoadLearner(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy unversioned payload rejected: %v", err)
	}
	if got.Config() != l.Config() || got.Q.Get(3, 2) != l.Q.Get(3, 2) {
		t.Error("legacy payload restored a different learner")
	}

	// A future writer's payload must error cleanly.
	future := strings.Replace(saved, `"format_version":1`, `"format_version":2`, 1)
	if _, err := LoadLearner(strings.NewReader(future)); err == nil {
		t.Error("future format version accepted")
	} else if !strings.Contains(err.Error(), "format version 2 not supported") {
		t.Errorf("unexpected version error: %v", err)
	}

	// Negative versions are nonsense, not legacy.
	if _, err := LoadLearner(strings.NewReader(
		strings.Replace(saved, `"format_version":1`, `"format_version":-1`, 1))); err == nil {
		t.Error("negative format version accepted")
	}
}
