// Package rl implements the tabular Q-learning machinery MAMUT is built
// on: Q-tables, visit counters, empirical transition models, the paper's
// two-term learning-rate function (eq. 3) and the per-state learning-phase
// state machine of SIV.
//
// The package is deliberately agnostic of what states and actions mean:
// states and actions are dense integer indices. The MAMUT controller
// (internal/core) and the mono-agent baseline (internal/baseline) assign
// meaning to them.
package rl

import (
	"fmt"
	"math/rand"
)

// QTable is a dense state x action table of Q-values.
type QTable struct {
	states, actions int
	q               []float64
}

// NewQTable returns a zero-initialised table.
func NewQTable(states, actions int) (*QTable, error) {
	if states < 1 || actions < 1 {
		return nil, fmt.Errorf("rl: QTable dimensions %dx%d invalid", states, actions)
	}
	return &QTable{states: states, actions: actions, q: make([]float64, states*actions)}, nil
}

// States returns the number of states.
func (t *QTable) States() int { return t.states }

// Actions returns the number of actions.
func (t *QTable) Actions() int { return t.actions }

func (t *QTable) idx(s, a int) int {
	if s < 0 || s >= t.states || a < 0 || a >= t.actions {
		panic(fmt.Sprintf("rl: QTable index (%d,%d) out of range %dx%d", s, a, t.states, t.actions))
	}
	return s*t.actions + a
}

// Get returns Q(s,a).
func (t *QTable) Get(s, a int) float64 { return t.q[t.idx(s, a)] }

// Set overwrites Q(s,a).
func (t *QTable) Set(s, a int, v float64) { t.q[t.idx(s, a)] = v }

// Max returns max over actions of Q(s,a).
func (t *QTable) Max(s int) float64 {
	best := t.q[t.idx(s, 0)]
	for a := 1; a < t.actions; a++ {
		if v := t.q[t.idx(s, a)]; v > best {
			best = v
		}
	}
	return best
}

// ArgMax returns the action with the highest Q-value in s, breaking ties
// toward the lowest action index (deterministic).
func (t *QTable) ArgMax(s int) int {
	best, bestA := t.q[t.idx(s, 0)], 0
	for a := 1; a < t.actions; a++ {
		if v := t.q[t.idx(s, a)]; v > best {
			best, bestA = v, a
		}
	}
	return bestA
}

// Counter tracks Num(s,a) visit counts and per-action totals Num(a).
type Counter struct {
	states, actions int
	sa              []int
	perAction       []int
}

// NewCounter returns a zeroed counter.
func NewCounter(states, actions int) (*Counter, error) {
	if states < 1 || actions < 1 {
		return nil, fmt.Errorf("rl: Counter dimensions %dx%d invalid", states, actions)
	}
	return &Counter{
		states:    states,
		actions:   actions,
		sa:        make([]int, states*actions),
		perAction: make([]int, actions),
	}, nil
}

func (c *Counter) idx(s, a int) int {
	if s < 0 || s >= c.states || a < 0 || a >= c.actions {
		panic(fmt.Sprintf("rl: Counter index (%d,%d) out of range %dx%d", s, a, c.states, c.actions))
	}
	return s*c.actions + a
}

// Observe records one occurrence of action a taken in state s.
func (c *Counter) Observe(s, a int) {
	c.sa[c.idx(s, a)]++
	c.perAction[a]++
}

// Num returns Num(s,a): how often a was taken in s.
func (c *Counter) Num(s, a int) int { return c.sa[c.idx(s, a)] }

// NumAction returns how often action a was taken across all states.
func (c *Counter) NumAction(a int) int {
	if a < 0 || a >= c.actions {
		panic(fmt.Sprintf("rl: action %d out of range %d", a, c.actions))
	}
	return c.perAction[a]
}

// MinActionCount returns min over actions of Num(a) — the quantity other
// agents feed into the second term of the eq. (3) learning rate.
func (c *Counter) MinActionCount() int {
	m := c.perAction[0]
	for _, n := range c.perAction[1:] {
		if n < m {
			m = n
		}
	}
	return m
}

// StateProb is one entry of an empirical transition distribution.
type StateProb struct {
	State int
	P     float64
}

// Transitions is the empirical transition model P(s --a--> s') of SIV-A,
// updated throughout learning.
type Transitions struct {
	states, actions int
	counts          []map[int]int
	totals          []int
}

// NewTransitions returns an empty transition model.
func NewTransitions(states, actions int) (*Transitions, error) {
	if states < 1 || actions < 1 {
		return nil, fmt.Errorf("rl: Transitions dimensions %dx%d invalid", states, actions)
	}
	return &Transitions{
		states:  states,
		actions: actions,
		counts:  make([]map[int]int, states*actions),
		totals:  make([]int, states*actions),
	}, nil
}

func (tr *Transitions) idx(s, a int) int {
	if s < 0 || s >= tr.states || a < 0 || a >= tr.actions {
		panic(fmt.Sprintf("rl: Transitions index (%d,%d) out of range %dx%d", s, a, tr.states, tr.actions))
	}
	return s*tr.actions + a
}

// Observe records the transition s --a--> next.
func (tr *Transitions) Observe(s, a, next int) {
	if next < 0 || next >= tr.states {
		panic(fmt.Sprintf("rl: next state %d out of range %d", next, tr.states))
	}
	i := tr.idx(s, a)
	if tr.counts[i] == nil {
		tr.counts[i] = make(map[int]int)
	}
	tr.counts[i][next]++
	tr.totals[i]++
}

// Prob returns P(s --a--> next) from the empirical counts, 0 if (s,a) was
// never observed.
func (tr *Transitions) Prob(s, a, next int) float64 {
	i := tr.idx(s, a)
	if tr.totals[i] == 0 {
		return 0
	}
	return float64(tr.counts[i][next]) / float64(tr.totals[i])
}

// Successors returns the observed successor distribution of (s,a) in
// ascending state order. The probabilities sum to 1 when (s,a) has been
// observed at least once; the slice is empty otherwise.
func (tr *Transitions) Successors(s, a int) []StateProb {
	i := tr.idx(s, a)
	if tr.totals[i] == 0 {
		return nil
	}
	out := make([]StateProb, 0, len(tr.counts[i]))
	// Deterministic order: scan states in ascending index. The maps are
	// small (a handful of observed successors), so this stays cheap via
	// the map lookup only for present keys.
	keys := make([]int, 0, len(tr.counts[i]))
	for k := range tr.counts[i] {
		keys = append(keys, k)
	}
	sortInts(keys)
	total := float64(tr.totals[i])
	for _, k := range keys {
		out = append(out, StateProb{State: k, P: float64(tr.counts[i][k]) / total})
	}
	return out
}

// Observed reports whether (s,a) has at least one recorded transition.
func (tr *Transitions) Observed(s, a int) bool { return tr.totals[tr.idx(s, a)] > 0 }

// sortInts is a tiny insertion sort; successor sets are tiny and this
// avoids pulling in sort for a hot path.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RandomAction draws a uniform action index.
func RandomAction(actions int, rng *rand.Rand) int { return rng.Intn(actions) }
