package rl

import (
	"math"
	"math/rand"
	"testing"
)

// trainedLearner builds a learner and drives a deterministic stream of
// updates through it.
func trainedSmallLearner(t *testing.T, seed int64, steps int) *Learner {
	t.Helper()
	l, err := NewLearner(DefaultConfig(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	s := 0
	for i := 0; i < steps; i++ {
		a := rng.Intn(3)
		next := rng.Intn(6)
		l.Update(s, a, next, rng.Float64()*2-1, rng.Intn(4))
		s = next
	}
	return l
}

func TestSnapshotSeedRoundTrip(t *testing.T) {
	l := trainedSmallLearner(t, 7, 500)
	sn := l.Snapshot()
	if err := sn.Validate(); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewLearner(l.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Seed(sn); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		for a := 0; a < 3; a++ {
			if got, want := fresh.Q.Get(s, a), l.Q.Get(s, a); got != want {
				t.Errorf("Q(%d,%d) = %g, want %g", s, a, got, want)
			}
			if got, want := fresh.Visits.Num(s, a), l.Visits.Num(s, a); got != want {
				t.Errorf("Num(%d,%d) = %d, want %d", s, a, got, want)
			}
			for next := 0; next < 6; next++ {
				if got, want := fresh.Trans.Prob(s, a, next), l.Trans.Prob(s, a, next); got != want {
					t.Errorf("P(%d -%d-> %d) = %g, want %g", s, a, next, got, want)
				}
			}
		}
	}
	for a := 0; a < 3; a++ {
		if got, want := fresh.Visits.NumAction(a), l.Visits.NumAction(a); got != want {
			t.Errorf("NumAction(%d) = %d, want %d", a, got, want)
		}
	}
	// The seeded learner reproduces the phase machinery exactly.
	for s := 0; s < 6; s++ {
		if got, want := fresh.PhaseFor(s, 2), l.PhaseFor(s, 2); got != want {
			t.Errorf("phase(%d) = %v, want %v", s, got, want)
		}
	}

	// Snapshot is a deep copy: mutating it must not touch the learner.
	sn.Q[0] = 1e9
	sn.VisitsSA[0] = 1e6
	if l.Q.Get(0, 0) == 1e9 || l.Visits.Num(0, 0) == 1e6 {
		t.Error("snapshot aliases the learner's tables")
	}
}

func TestSnapshotMergeCountWeighted(t *testing.T) {
	mk := func(q float64, visits int) Snapshot {
		l, err := NewLearner(DefaultConfig(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		sn := l.Snapshot()
		sn.Q[0] = q // (s=0, a=0)
		sn.VisitsSA[0] = visits
		sn.VisitsAction[0] = visits
		if visits > 0 {
			sn.Trans[0] = map[int]int{1: visits}
		}
		return sn
	}
	a := mk(1.0, 3)
	b := mk(5.0, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Count-weighted mean: (3*1 + 1*5)/4 = 2.
	if got := a.Q[0]; math.Abs(got-2.0) > 1e-15 {
		t.Errorf("merged Q = %g, want 2", got)
	}
	if a.VisitsSA[0] != 4 || a.VisitsAction[0] != 4 {
		t.Errorf("merged visits = %d/%d, want 4/4", a.VisitsSA[0], a.VisitsAction[0])
	}
	if a.Trans[0][1] != 4 {
		t.Errorf("merged transition count = %d, want 4", a.Trans[0][1])
	}
	// Unvisited pairs stay untouched.
	if a.Q[1] != 0 || a.VisitsSA[1] != 0 {
		t.Errorf("unvisited pair changed: Q=%g visits=%d", a.Q[1], a.VisitsSA[1])
	}

	// Merging a zero-count snapshot is a no-op on Q.
	c := mk(1.5, 2)
	if err := c.Merge(mk(99, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Q[0] != 1.5 || c.VisitsSA[0] != 2 {
		t.Errorf("zero-count merge changed state: Q=%g visits=%d", c.Q[0], c.VisitsSA[0])
	}
}

func TestSnapshotMergeEquivalentToPooledUpdates(t *testing.T) {
	// Two independently trained learners merged into one snapshot carry
	// the pooled visit mass: total counts equal the sum of the parts.
	l1 := trainedSmallLearner(t, 1, 300)
	l2 := trainedSmallLearner(t, 2, 200)
	sn := l1.Snapshot()
	if err := sn.Merge(l2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		for a := 0; a < 3; a++ {
			want := l1.Visits.Num(s, a) + l2.Visits.Num(s, a)
			if got := sn.VisitsSA[s*3+a]; got != want {
				t.Errorf("pooled Num(%d,%d) = %d, want %d", s, a, got, want)
			}
		}
	}
	// Seeding a fresh learner with the pooled snapshot lowers (or keeps)
	// the learning rate relative to either contributor alone.
	fresh, err := NewLearner(l1.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Seed(sn); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		if a1, am := l1.AlphaMax(s, 0), fresh.AlphaMax(s, 0); am > a1 {
			t.Errorf("state %d: pooled alpha %g above contributor alpha %g", s, am, a1)
		}
	}
}

func TestSnapshotMergeDimensionMismatch(t *testing.T) {
	l1, _ := NewLearner(DefaultConfig(2, 2))
	l2, _ := NewLearner(DefaultConfig(2, 3))
	sn := l1.Snapshot()
	if err := sn.Merge(l2.Snapshot()); err == nil {
		t.Error("dimension mismatch accepted by Merge")
	}
	if err := l2.Seed(l1.Snapshot()); err == nil {
		t.Error("dimension mismatch accepted by Seed")
	}
	bad := l1.Snapshot()
	bad.Q = bad.Q[:1]
	if err := bad.Validate(); err == nil {
		t.Error("truncated snapshot passed validation")
	}
}

// TestSubtractCountsYieldsOwnExperience: a warm-started learner's
// departing snapshot minus its seed-time snapshot carries only the
// visits the learner made itself, with the final Q values intact.
func TestSubtractCountsYieldsOwnExperience(t *testing.T) {
	donor := trainedSmallLearner(t, 5, 400)
	seed := donor.Snapshot()

	warm, err := NewLearner(donor.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Seed(seed); err != nil {
		t.Fatal(err)
	}
	const own = 7
	for i := 0; i < own; i++ {
		warm.Update(1, 2, 3, 0.25, 0)
	}

	delta := warm.Snapshot()
	if err := delta.SubtractCounts(seed); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range delta.VisitsSA {
		total += n
	}
	if total != own {
		t.Errorf("delta carries %d visits, want only the %d own updates", total, own)
	}
	if got, want := delta.VisitsSA[1*3+2], own; got != want {
		t.Errorf("delta Num(1,2) = %d, want %d", got, want)
	}
	if got, want := delta.Q[1*3+2], warm.Q.Get(1, 2); got != want {
		t.Errorf("delta kept Q %g, want the final estimate %g", got, want)
	}
	if got := delta.Trans[1*3+2][3]; got != own {
		t.Errorf("delta transition count %d, want %d", got, own)
	}

	// Subtracting a base that was never part of the history errors
	// instead of going negative.
	fresh, _ := NewLearner(donor.Config())
	bad := fresh.Snapshot()
	if err := bad.SubtractCounts(seed); err == nil {
		t.Error("subtracting unrelated counts did not error")
	}
}

// TestGenerationalMergeStaysLinear guards against the compounding bug:
// across generations of seed -> learn -> contribute-delta -> merge, the
// shared pool's visit mass grows by exactly each generation's own
// experience — re-merging seeded mass would double the pool per
// generation and eventually overflow the counts.
func TestGenerationalMergeStaysLinear(t *testing.T) {
	cfg := DefaultConfig(6, 3)
	pool, err := NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := pool.Snapshot()
	const perGen = 30
	for gen := 1; gen <= 6; gen++ {
		l, err := NewLearner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seed := store.Clone()
		if err := l.Seed(seed); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(gen)))
		for i := 0; i < perGen; i++ {
			l.Update(rng.Intn(6), rng.Intn(3), rng.Intn(6), rng.Float64(), 0)
		}
		delta := l.Snapshot()
		if err := delta.SubtractCounts(seed); err != nil {
			t.Fatal(err)
		}
		if err := store.Merge(delta); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range store.VisitsSA {
			total += n
		}
		if total != gen*perGen {
			t.Fatalf("generation %d: pool carries %d visits, want %d (linear growth)",
				gen, total, gen*perGen)
		}
	}
}

func TestSeedFoldsIntoPartiallyTrainedLearner(t *testing.T) {
	l, err := NewLearner(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// One local visit at (0,0) with Q driven to a known value.
	l.Visits.Observe(0, 0)
	l.Q.Set(0, 0, 4.0)

	donor, err := NewLearner(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	sn := donor.Snapshot()
	sn.Q[0] = 1.0
	sn.VisitsSA[0] = 3
	sn.VisitsAction[0] = 3

	if err := l.Seed(sn); err != nil {
		t.Fatal(err)
	}
	// (1*4 + 3*1)/4 = 1.75
	if got := l.Q.Get(0, 0); math.Abs(got-1.75) > 1e-15 {
		t.Errorf("folded Q = %g, want 1.75", got)
	}
	if got := l.Visits.Num(0, 0); got != 4 {
		t.Errorf("folded visits = %d, want 4", got)
	}
}
