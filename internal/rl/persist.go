package rl

import (
	"encoding/json"
	"fmt"
	"io"
)

// learnerFormatVersion is the current on-disk learner format. Loaders
// accept this version and older — version 0 is the legacy unversioned
// format, identical to version 1 apart from the missing field — while
// payloads from a newer writer error cleanly instead of being
// misinterpreted.
const learnerFormatVersion = 1

// learnerState is the serialised form of a Learner. Transition counts are
// stored sparsely: only observed (s,a,s') triples.
type learnerState struct {
	Version int    `json:"format_version"`
	Config  Config `json:"config"`
	// Q is the dense Q-table, row-major [state][action].
	Q []float64 `json:"q"`
	// VisitsSA is the dense Num(s,a) table; VisitsAction the per-action
	// totals.
	VisitsSA     []int `json:"visits_sa"`
	VisitsAction []int `json:"visits_action"`
	// Transitions lists observed (state, action, next, count) tuples.
	Transitions [][4]int `json:"transitions"`
}

// Save serialises the learner's complete learning state (Q-table, visit
// counts, transition model) as JSON. A trained controller can thus be
// persisted and redeployed — the paper's evaluation relies on tables that
// persist across repetitions of the transcoding process (SV-A).
func (l *Learner) Save(w io.Writer) error {
	st := learnerState{
		Version:      learnerFormatVersion,
		Config:       l.cfg,
		Q:            append([]float64(nil), l.Q.q...),
		VisitsSA:     append([]int(nil), l.Visits.sa...),
		VisitsAction: append([]int(nil), l.Visits.perAction...),
	}
	for s := 0; s < l.cfg.States; s++ {
		for a := 0; a < l.cfg.Actions; a++ {
			i := l.Trans.idx(s, a)
			for next, n := range l.Trans.counts[i] {
				st.Transitions = append(st.Transitions, [4]int{s, a, next, n})
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&st); err != nil {
		return fmt.Errorf("rl: save learner: %w", err)
	}
	return nil
}

// LoadLearner deserialises a learner saved with Save. The restored
// learner is behaviourally identical to the saved one.
func LoadLearner(r io.Reader) (*Learner, error) {
	var st learnerState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("rl: load learner: %w", err)
	}
	if st.Version < 0 || st.Version > learnerFormatVersion {
		return nil, fmt.Errorf("rl: load learner: format version %d not supported (current %d)",
			st.Version, learnerFormatVersion)
	}
	l, err := NewLearner(st.Config)
	if err != nil {
		return nil, fmt.Errorf("rl: load learner: %w", err)
	}
	n := st.Config.States * st.Config.Actions
	if len(st.Q) != n || len(st.VisitsSA) != n || len(st.VisitsAction) != st.Config.Actions {
		return nil, fmt.Errorf("rl: load learner: table sizes do not match config %dx%d",
			st.Config.States, st.Config.Actions)
	}
	copy(l.Q.q, st.Q)
	copy(l.Visits.sa, st.VisitsSA)
	copy(l.Visits.perAction, st.VisitsAction)
	for _, t := range st.Transitions {
		s, a, next, count := t[0], t[1], t[2], t[3]
		if s < 0 || s >= st.Config.States || a < 0 || a >= st.Config.Actions ||
			next < 0 || next >= st.Config.States || count < 1 {
			return nil, fmt.Errorf("rl: load learner: invalid transition tuple %v", t)
		}
		for i := 0; i < count; i++ {
			l.Trans.Observe(s, a, next)
		}
	}
	return l, nil
}
