package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewQTableValidation(t *testing.T) {
	if _, err := NewQTable(0, 3); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := NewQTable(3, 0); err == nil {
		t.Error("zero actions accepted")
	}
}

func TestQTableGetSetMaxArgMax(t *testing.T) {
	q, err := NewQTable(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.States() != 4 || q.Actions() != 3 {
		t.Fatal("dimensions wrong")
	}
	q.Set(2, 0, 1.5)
	q.Set(2, 1, -0.5)
	q.Set(2, 2, 0.7)
	if got := q.Get(2, 0); got != 1.5 {
		t.Errorf("Get = %g", got)
	}
	if got := q.Max(2); got != 1.5 {
		t.Errorf("Max = %g", got)
	}
	if got := q.ArgMax(2); got != 0 {
		t.Errorf("ArgMax = %d", got)
	}
	// Fresh state: all zero, ArgMax ties break to action 0.
	if got := q.ArgMax(0); got != 0 {
		t.Errorf("ArgMax on fresh state = %d", got)
	}
}

func TestQTablePanicsOutOfRange(t *testing.T) {
	q, _ := NewQTable(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	q.Get(2, 0)
}

func TestCounter(t *testing.T) {
	c, err := NewCounter(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(0, 0)
	c.Observe(0, 0)
	c.Observe(1, 1)
	if got := c.Num(0, 0); got != 2 {
		t.Errorf("Num(0,0) = %d, want 2", got)
	}
	if got := c.Num(2, 1); got != 0 {
		t.Errorf("Num(2,1) = %d, want 0", got)
	}
	if got := c.NumAction(0); got != 2 {
		t.Errorf("NumAction(0) = %d, want 2", got)
	}
	if got := c.MinActionCount(); got != 1 {
		t.Errorf("MinActionCount = %d, want 1", got)
	}
	c.Observe(2, 1)
	c.Observe(2, 1)
	if got := c.MinActionCount(); got != 2 {
		t.Errorf("MinActionCount = %d, want 2", got)
	}
}

func TestTransitionsProbabilities(t *testing.T) {
	tr, err := NewTransitions(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Observed(0, 0) {
		t.Error("fresh model claims observation")
	}
	if got := tr.Prob(0, 0, 1); got != 0 {
		t.Errorf("unobserved Prob = %g, want 0", got)
	}
	tr.Observe(0, 0, 1)
	tr.Observe(0, 0, 1)
	tr.Observe(0, 0, 2)
	tr.Observe(0, 0, 4)
	if got := tr.Prob(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Prob(0,0,1) = %g, want 0.5", got)
	}
	succ := tr.Successors(0, 0)
	if len(succ) != 3 {
		t.Fatalf("successors = %v", succ)
	}
	// Ascending state order and probabilities summing to 1.
	sum := 0.0
	prev := -1
	for _, sp := range succ {
		if sp.State <= prev {
			t.Errorf("successors not ascending: %v", succ)
		}
		prev = sp.State
		sum += sp.P
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("successor probabilities sum to %g", sum)
	}
	if !tr.Observed(0, 0) {
		t.Error("Observed false after observations")
	}
}

// Property: after any sequence of observations, each observed (s,a)'s
// successor distribution is a probability distribution.
func TestTransitionsNormalisationProperty(t *testing.T) {
	prop := func(seed int64, nObs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := NewTransitions(6, 3)
		if err != nil {
			return false
		}
		n := 1 + int(nObs)%200
		for i := 0; i < n; i++ {
			tr.Observe(rng.Intn(6), rng.Intn(3), rng.Intn(6))
		}
		for s := 0; s < 6; s++ {
			for a := 0; a < 3; a++ {
				succ := tr.Successors(s, a)
				if !tr.Observed(s, a) {
					if len(succ) != 0 {
						return false
					}
					continue
				}
				sum := 0.0
				for _, sp := range succ {
					if sp.P <= 0 || sp.P > 1 {
						return false
					}
					sum += sp.P
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(180, 7)
	if c.Beta != 0.3 || c.BetaPrime != 0.2 || c.AlphaTh1 != 0.1 || c.AlphaTh2 != 0.05 || c.Gamma != 0.6 {
		t.Errorf("defaults %+v do not match paper SIV-B", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.States = 0 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.BetaPrime = -0.1 },
		func(c *Config) { c.AlphaTh1 = 0.05 }, // th1 == th2
		func(c *Config) { c.AlphaTh2 = 0 },
		func(c *Config) { c.Gamma = 1.0 },
		func(c *Config) { c.Gamma = -0.1 },
	}
	for i, f := range mut {
		c := DefaultConfig(10, 3)
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAlphaEquationThree(t *testing.T) {
	l, err := NewLearner(DefaultConfig(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Unvisited pair: clamped to 1.
	if got := l.Alpha(0, 0, 0); got != 1 {
		t.Errorf("alpha unvisited = %g, want 1", got)
	}
	// After 3 visits with otherMinSum 4: 0.3/3 + 0.2/5 = 0.14.
	for i := 0; i < 3; i++ {
		l.Visits.Observe(0, 0)
	}
	if got, want := l.Alpha(0, 0, 4), 0.3/3+0.2/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("alpha = %g, want %g", got, want)
	}
	// Negative otherMinSum treated as zero.
	if got, want := l.Alpha(0, 0, -5), 0.3/3+0.2/1; math.Abs(got-want) > 1e-12 {
		t.Errorf("alpha with negative otherMin = %g, want %g", got, want)
	}
}

// The defining property of eq. (3): an agent cannot reach exploitation
// until other agents have tried all their actions, no matter how often it
// saw its own pairs.
func TestAlphaBlocksExploitationUntilOthersExplore(t *testing.T) {
	l, err := NewLearner(DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		l.Visits.Observe(0, 0)
		l.Visits.Observe(0, 1)
	}
	// otherMinSum 0 means some other agent has an action never tried:
	// alpha = ~0 + 0.2/1 = 0.2 > th1 -> still exploration.
	if got := l.PhaseFor(0, 0); got != Exploration {
		t.Errorf("phase with unexplored peers = %v, want exploration", got)
	}
	// Once peers have tried all actions a few times the phase advances.
	if got := l.PhaseFor(0, 10); got == Exploration {
		t.Errorf("phase with explored peers = %v, want past exploration", got)
	}
}

func TestPhaseThresholds(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	l, err := NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one action, alphaMax is alpha of that action. Choose visit
	// counts to step through the phases; otherMinSum large so the second
	// term is negligible.
	const others = 100000
	// Num=3: alpha ~ 0.1 -> still exploration (threshold is strict <).
	for i := 0; i < 3; i++ {
		l.Visits.Observe(1, 0)
	}
	if got := l.PhaseFor(1, others); got != Exploration {
		t.Errorf("alpha=0.1 phase = %v, want exploration", got)
	}
	// Num=4: alpha 0.075 -> explore-exploit.
	l.Visits.Observe(1, 0)
	if got := l.PhaseFor(1, others); got != ExploreExploit {
		t.Errorf("alpha=0.075 phase = %v, want explore-exploit", got)
	}
	// Num=7: alpha ~0.043 -> exploitation.
	for i := 0; i < 3; i++ {
		l.Visits.Observe(1, 0)
	}
	if got := l.PhaseFor(1, others); got != Exploitation {
		t.Errorf("alpha=0.043 phase = %v, want exploitation", got)
	}
	// A state never seen stays in exploration regardless.
	if got := l.PhaseFor(3, others); got != Exploration {
		t.Errorf("fresh state phase = %v, want exploration", got)
	}
}

func TestPhaseString(t *testing.T) {
	if Exploration.String() != "exploration" ||
		ExploreExploit.String() != "explore-exploit" ||
		Exploitation.String() != "exploitation" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase name wrong")
	}
}

func TestUpdateMovesQTowardTarget(t *testing.T) {
	l, err := NewLearner(DefaultConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Make next state valuable.
	l.Q.Set(1, 0, 2.0)
	alpha := l.Update(0, 0, 1, 1.0, 1000)
	if alpha <= 0 || alpha > 1 {
		t.Fatalf("alpha = %g", alpha)
	}
	// target = 1.0 + 0.6*2.0 = 2.2; Q moved from 0 toward it by alpha.
	want := alpha * 2.2
	if got := l.Q.Get(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Q after update = %g, want %g", got, want)
	}
	if l.Visits.Num(0, 0) != 1 {
		t.Error("visit not recorded")
	}
	if !l.Trans.Observed(0, 0) {
		t.Error("transition not recorded")
	}
}

// Property: repeated updates with a fixed reward converge the Q-value to
// reward/(1-gamma*[next==s]) ... simpler invariant: with reward bounded in
// [-4, 4] (the paper's reward range) Q stays bounded by 4/(1-gamma)+4.
func TestQBoundedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := NewLearner(DefaultConfig(6, 3))
		if err != nil {
			return false
		}
		bound := 4/(1-0.6) + 4 + 1e-9
		for i := 0; i < 2000; i++ {
			s, a, n := rng.Intn(6), rng.Intn(3), rng.Intn(6)
			r := -4 + 8*rng.Float64()
			l.Update(s, a, n, r, rng.Intn(50))
		}
		for s := 0; s < 6; s++ {
			for a := 0; a < 3; a++ {
				if math.Abs(l.Q.Get(s, a)) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Sanity: a learner on a tiny deterministic MDP learns the optimal action.
func TestLearnerSolvesTinyMDP(t *testing.T) {
	// Two states: taking action 1 in state 0 yields +1 and stays; action 0
	// yields -1. Greedy policy after learning must prefer action 1.
	l, err := NewLearner(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := rng.Intn(2)
		r := -1.0
		if a == 1 {
			r = 1.0
		}
		l.Update(0, a, 0, r, 100)
	}
	if got := l.Q.ArgMax(0); got != 1 {
		t.Errorf("learned policy prefers action %d, want 1 (Q0=%g Q1=%g)",
			got, l.Q.Get(0, 0), l.Q.Get(0, 1))
	}
}

func TestRandomAction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		a := RandomAction(5, rng)
		if a < 0 || a >= 5 {
			t.Fatalf("action %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) != 5 {
		t.Errorf("saw %d distinct actions, want 5", len(seen))
	}
}

func TestNewLearnerRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(10, 3)
	cfg.Gamma = 2
	if _, err := NewLearner(cfg); err == nil {
		t.Error("bad config accepted")
	}
}
