// Package xrand provides cheap deterministic random sources for the
// simulation's per-entity rng streams.
//
// The stdlib rand.NewSource pays a ~600-word table initialisation per
// source; the simulator creates sources per engine, per session and per
// encoder, which profiled as the single largest per-admission cost of a
// serving fleet dispatching thousands of short sessions. splitmix64
// seeds in O(1) with excellent statistical quality for this use. Streams
// are fixed by the seed alone, so simulations remain bit-identical for a
// given seed; they are not streams of the stdlib source, so changing an
// rng over to xrand changes (but does not de-determinise) results.
//
// Unlike the stdlib sources, a Source exposes its complete state (a
// single uint64) through State/SetState: an owner that keeps the typed
// *Source alongside its *rand.Rand can freeze the stream mid-run and
// resume it elsewhere bit-exactly, which is what makes live session
// migration possible.
package xrand

import "math/rand"

// New returns a *rand.Rand over a splitmix64 stream seeded in O(1).
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// NewSource returns the splitmix64 source itself for owners that need to
// snapshot and restore the stream (session migration). rand.New(NewSource(s))
// produces exactly the stream of New(s).
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Source is a splitmix64 rand.Source64 (Sebastiano Vigna's SplitMix64).
// Its entire state is one uint64, readable and settable at any point.
type Source struct{ state uint64 }

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the current stream state. Restoring it with SetState on
// any Source resumes the identical stream.
func (s *Source) State() uint64 { return s.state }

// SetState overwrites the stream state.
func (s *Source) SetState(state uint64) { s.state = state }
