// Package xrand provides cheap deterministic random sources for the
// simulation's per-entity rng streams.
//
// The stdlib rand.NewSource pays a ~600-word table initialisation per
// source; the simulator creates sources per engine, per session and per
// encoder, which profiled as the single largest per-admission cost of a
// serving fleet dispatching thousands of short sessions. splitmix64
// seeds in O(1) with excellent statistical quality for this use. Streams
// are fixed by the seed alone, so simulations remain bit-identical for a
// given seed; they are not streams of the stdlib source, so changing an
// rng over to xrand changes (but does not de-determinise) results.
package xrand

import "math/rand"

// New returns a *rand.Rand over a splitmix64 stream seeded in O(1).
func New(seed int64) *rand.Rand {
	return rand.New(&source{state: uint64(seed)})
}

// source is a splitmix64 rand.Source64 (Sebastiano Vigna's SplitMix64).
type source struct{ state uint64 }

// Seed implements rand.Source.
func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }
