package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("Demo", "name", "watts", "delta")
	tb.MustAddRow("heuristic", "96.0", "34.7")
	tb.MustAddRow("mamut", "88.4", "3.9")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "heuristic") {
		t.Errorf("render output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableArityChecked(t *testing.T) {
	tb := New("", "a", "b")
	if err := tb.AddRow("1"); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tb.MustAddRow("1", "2", "3")
}

func TestTableCSV(t *testing.T) {
	tb := New("x", "a", "b")
	tb.MustAddRow("1", "two, with comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv = %q", out)
	}
	if !strings.Contains(out, `"two, with comma"`) {
		t.Errorf("csv quoting broken: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := New("T", "a", "b")
	tb.MustAddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### T") || !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Errorf("markdown = %q", out)
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F formatting wrong")
	}
	if F(10, 0) != "10" {
		t.Error("F zero decimals wrong")
	}
}
