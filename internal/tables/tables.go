// Package tables renders small result tables as aligned plain text, CSV or
// Markdown. The experiment commands use it to print the reproduction of
// the paper's Tables I and II and the Fig. 4 data series.
package tables

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular table with a header row.
type Table struct {
	// Title is printed above the table when non-empty.
	Title string
	// Headers labels the columns.
	Headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. The number of cells must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("tables: row has %d cells, want %d", len(cells), len(t.Headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow appends a row and panics on arity mismatch; for literal rows.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("tables: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tables: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given number of decimals; the standard cell
// formatter used by the experiment commands.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
