// Package plot renders minimal SVG line/scatter charts with the standard
// library only. It exists so the experiment commands can emit Fig. 2,
// Fig. 4 and Fig. 5 as viewable files, not to be a general plotting
// library.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line (or point set) on a chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data; lengths must match.
	X, Y []float64
	// Scatter draws markers only (no connecting line).
	Scatter bool
}

// Chart is a 2-D chart with linear axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels; defaults 720x420 when zero.
	Width, Height int
}

// palette cycles through visually distinct stroke colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const margin = 56.0

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 420
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q empty", s.Name)
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom on Y.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	px := func(x float64) float64 { return margin + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(height) - margin - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, float64(height)-margin, float64(width)-margin, float64(height)-margin)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, margin, margin, float64(height)-margin)
	// Title and labels.
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-size="15" font-family="sans-serif">%s</text>`+"\n", width/2, escape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" font-family="sans-serif">%s</text>`+"\n", width/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-size="12" font-family="sans-serif" transform="rotate(-90 16 %d)">%s</text>`+"\n", height/2, height/2, escape(c.YLabel))
	}
	// Axis ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		yv := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			px(xv), float64(height)-margin+16, tick(xv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			margin-6, py(yv)+4, tick(yv))
		// Light gridlines.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n",
			margin, py(yv), float64(width)-margin, py(yv))
	}
	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		if !s.Scatter {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		} else {
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
			}
		}
		// Legend entry.
		ly := margin + float64(si)*16
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", float64(width)-margin-110, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			float64(width)-margin-95, ly+9, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func tick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
