package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVGBasic(t *testing.T) {
	c := &Chart{
		Title:  "FPS over time",
		XLabel: "frame",
		YLabel: "FPS",
		Series: []Series{
			{Name: "mamut", X: []float64{0, 1, 2, 3}, Y: []float64{10, 24, 30, 26}},
			{Name: "points", X: []float64{0, 2}, Y: []float64{20, 22}, Scatter: true},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "circle", "FPS over time", "mamut", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	empty := &Chart{Title: "x"}
	if err := empty.WriteSVG(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("mismatched series accepted")
	}
	noData := &Chart{Series: []Series{{Name: "empty"}}}
	if err := noData.WriteSVG(&buf); err == nil {
		t.Error("empty series accepted")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("svg contains NaN coordinates")
	}
}

func TestEscape(t *testing.T) {
	if escape("a<b&c>d") != "a&lt;b&amp;c&gt;d" {
		t.Error("escape wrong")
	}
}
