// Package cliutil holds small helpers shared by the cmd/ binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// splitList breaks a comma-separated flag value into trimmed elements,
// rejecting empty elements (e.g. from a trailing comma) with a clear
// error instead of a confusing parse failure downstream.
func splitList(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty element in list %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseStrings parses a comma-separated list of non-empty strings.
func ParseStrings(s string) ([]string, error) { return splitList(s) }

// ParseInts parses a comma-separated list of integers.
func ParseInts(s string) ([]int, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ParseInt64s parses a comma-separated list of 64-bit integers.
func ParseInt64s(s string) ([]int64, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ParseFloats parses a comma-separated list of floats.
func ParseFloats(s string) ([]float64, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out[i] = v
	}
	return out, nil
}
