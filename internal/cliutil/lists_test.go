package cliutil

import (
	"reflect"
	"testing"
)

func TestParseLists(t *testing.T) {
	if got, err := ParseInts("1, 2,3"); err != nil || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("ParseInts = %v, %v", got, err)
	}
	if got, err := ParseInt64s("10,-2"); err != nil || !reflect.DeepEqual(got, []int64{10, -2}) {
		t.Errorf("ParseInt64s = %v, %v", got, err)
	}
	if got, err := ParseFloats("0.5, 2"); err != nil || !reflect.DeepEqual(got, []float64{0.5, 2}) {
		t.Errorf("ParseFloats = %v, %v", got, err)
	}
	if got, err := ParseStrings(" a ,b"); err != nil || !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ParseStrings = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1,,2", "1,2,", "x"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
	if _, err := ParseFloats("1,zz"); err == nil {
		t.Error("ParseFloats accepted non-float")
	}
}
