package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Scaling reports: the machine-readable record a scaling driver (e.g.
// cmd/mamut-fleetbench) emits so the performance trajectory — ns/arrival
// by fleet size × shard count — is tracked across PRs as a committed
// JSON artifact instead of prose in commit messages. The environment
// block matters as much as the numbers: a 1-core container measuring a
// parallel dispatcher legitimately reports speedup ≈ 1, and without
// GOMAXPROCS in the record that would read as a regression.

// ScalingCell is one measured point of a scaling experiment.
type ScalingCell struct {
	// Label identifies the cell (e.g. "n10000/s8").
	Label string `json:"label"`
	// FleetSize and Shards locate the cell in the scaling matrix.
	FleetSize int `json:"fleet_size"`
	Shards    int `json:"shards"`
	// Arrivals is the work the cell processed; ElapsedSec the wall
	// clock it took; NsPerArrival the quotient — the scaling metric.
	Arrivals     int     `json:"arrivals"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	NsPerArrival float64 `json:"ns_per_arrival"`
	// SpeedupX is wall-clock speedup versus the 1-shard cell of the
	// same fleet size (0 until ComputeSpeedups, or when no baseline
	// cell exists).
	SpeedupX float64 `json:"speedup_x,omitempty"`
}

// ScalingReport is the JSON artifact: the environment the cells were
// measured in, plus the cells.
type ScalingReport struct {
	Name       string        `json:"name"`
	CreatedAt  string        `json:"created_at"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Notes      string        `json:"notes,omitempty"`
	Cells      []ScalingCell `json:"cells"`
}

// NewScalingReport stamps a report with the current environment.
func NewScalingReport(name string) *ScalingReport {
	return &ScalingReport{
		Name:       name,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Measure times one run closure and appends its cell. The closure
// returns the number of arrivals it processed (the unit ns/arrival is
// normalised by).
func (r *ScalingReport) Measure(label string, fleetSize, shards int, run func() (int, error)) (*ScalingCell, error) {
	start := time.Now()
	arrivals, err := run()
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: scaling cell %s: %w", label, err)
	}
	if arrivals <= 0 {
		return nil, fmt.Errorf("experiments: scaling cell %s processed no arrivals", label)
	}
	cell := ScalingCell{
		Label:        label,
		FleetSize:    fleetSize,
		Shards:       shards,
		Arrivals:     arrivals,
		ElapsedSec:   elapsed.Seconds(),
		NsPerArrival: float64(elapsed.Nanoseconds()) / float64(arrivals),
	}
	r.Cells = append(r.Cells, cell)
	return &r.Cells[len(r.Cells)-1], nil
}

// ComputeSpeedups fills each cell's SpeedupX against the first 1-shard
// cell of the same fleet size (including the baseline's own 1.0), and
// returns the largest speedup found. Cells of sizes without a 1-shard
// baseline are left at 0.
func (r *ScalingReport) ComputeSpeedups() float64 {
	base := map[int]float64{}
	for _, c := range r.Cells {
		if c.Shards == 1 {
			if _, ok := base[c.FleetSize]; !ok {
				base[c.FleetSize] = c.NsPerArrival
			}
		}
	}
	best := 0.0
	for i := range r.Cells {
		c := &r.Cells[i]
		if b, ok := base[c.FleetSize]; ok && c.NsPerArrival > 0 {
			c.SpeedupX = b / c.NsPerArrival
			if c.SpeedupX > best {
				best = c.SpeedupX
			}
		}
	}
	return best
}

// WriteJSON writes the indented artifact.
func (r *ScalingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScalingReport parses an artifact written by WriteJSON.
func ReadScalingReport(rd io.Reader) (*ScalingReport, error) {
	var r ScalingReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("experiments: reading scaling report: %w", err)
	}
	return &r, nil
}
