package experiments

import "fmt"

// TableIRow is one approach's row of Table I: the average threads and
// frequency used for each resolution class, aggregated over the Scenario I
// workloads.
type TableIRow struct {
	Approach Approach
	// HRNth and HRFreq are the HR columns; LRNth and LRFreq the LR ones.
	HRNth, HRFreq float64
	LRNth, LRFreq float64
}

// TableI aggregates Scenario I results into the paper's Table I: per
// approach, the session-weighted average thread count and frequency for HR
// and LR streams.
func TableI(results []WorkloadResult) ([]TableIRow, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("experiments: no results")
	}
	rows := make([]TableIRow, 0, len(AllApproaches))
	for _, a := range AllApproaches {
		var row TableIRow
		row.Approach = a
		var hrN, lrN int
		for _, wr := range results {
			r, ok := wr.Get(a)
			if !ok {
				return nil, fmt.Errorf("experiments: workload %s missing approach %s", wr.Spec.Name, a)
			}
			if r.HR.Sessions > 0 {
				row.HRNth += r.HR.Nth * float64(r.HR.Sessions)
				row.HRFreq += r.HR.FreqGHz * float64(r.HR.Sessions)
				hrN += r.HR.Sessions
			}
			if r.LR.Sessions > 0 {
				row.LRNth += r.LR.Nth * float64(r.LR.Sessions)
				row.LRFreq += r.LR.FreqGHz * float64(r.LR.Sessions)
				lrN += r.LR.Sessions
			}
		}
		if hrN > 0 {
			row.HRNth /= float64(hrN)
			row.HRFreq /= float64(hrN)
		}
		if lrN > 0 {
			row.LRNth /= float64(lrN)
			row.LRFreq /= float64(lrN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
