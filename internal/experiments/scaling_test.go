package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingReportMeasureAndSpeedups(t *testing.T) {
	r := NewScalingReport("test")
	if r.NumCPU < 1 || r.GOMAXPROCS < 1 || r.GoVersion == "" {
		t.Fatalf("environment not stamped: %+v", r)
	}
	for _, cell := range []struct {
		label  string
		size   int
		shards int
		n      int
		busy   int
	}{
		{"n100/s1", 100, 1, 1000, 400},
		{"n100/s4", 100, 4, 1000, 100},
		{"n200/s1", 200, 1, 500, 300},
	} {
		cell := cell
		if _, err := r.Measure(cell.label, cell.size, cell.shards, func() (int, error) {
			// Busy-spin a deterministic amount so ns/arrival orders the
			// cells the way the speedup assertions below expect.
			sink := 0
			for i := 0; i < cell.busy*100000; i++ {
				sink += i
			}
			_ = sink
			return cell.n, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Cells) != 3 {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.NsPerArrival <= 0 || c.ElapsedSec <= 0 {
			t.Fatalf("cell %s not measured: %+v", c.Label, c)
		}
	}
	best := r.ComputeSpeedups()
	if got := r.Cells[0].SpeedupX; got != 1 {
		t.Fatalf("1-shard baseline speedup should be exactly 1, got %v", got)
	}
	if got := r.Cells[1].SpeedupX; got <= 1 {
		t.Fatalf("faster 4-shard cell should show >1x speedup, got %v", got)
	}
	if best < r.Cells[1].SpeedupX {
		t.Fatalf("best %v below cell speedup %v", best, r.Cells[1].SpeedupX)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fleet_size"`, `"ns_per_arrival"`, `"gomaxprocs"`, `"speedup_x"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("artifact missing %s:\n%s", want, buf.String())
		}
	}
	back, err := ReadScalingReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(r.Cells) || back.Cells[1].Label != "n100/s4" {
		t.Fatalf("round-trip mangled the report: %+v", back)
	}
}

func TestScalingReportMeasureErrors(t *testing.T) {
	r := NewScalingReport("test")
	if _, err := r.Measure("bad", 1, 1, func() (int, error) { return 0, nil }); err == nil {
		t.Fatal("zero arrivals should be an error")
	}
	if len(r.Cells) != 0 {
		t.Fatal("failed cells must not be recorded")
	}
}
