package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func squareUnits(n int) []Unit[int] {
	units := make([]Unit[int], n)
	for i := range units {
		i := i
		units[i] = Unit[int]{
			Label: fmt.Sprintf("unit %d", i),
			Run:   func() (int, error) { return i * i, nil },
		}
	}
	return units
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("ResolveWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestRunUnitsResultsIndexedByUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := RunUnits(workers, squareUnits(33), nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 33 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunUnitsEmpty(t *testing.T) {
	out, err := RunUnits[int](4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("results = %d", len(out))
	}
}

func TestRunUnitsErrorCarriesLabel(t *testing.T) {
	boom := fmt.Errorf("boom")
	for _, workers := range []int{1, 4} {
		units := squareUnits(10)
		units[5].Run = func() (int, error) { return 0, boom }
		_, err := RunUnits(workers, units, nil)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !strings.Contains(err.Error(), "unit 5") {
			t.Errorf("workers=%d: error %q does not name the failing unit", workers, err)
		}
	}
}

func TestRunUnitsErrorCancelsRemaining(t *testing.T) {
	// Unit 0 fails immediately; cancellation must prevent the pool from
	// churning through the whole queue.
	const n = 200
	var ran atomic.Int64
	units := make([]Unit[int], n)
	for i := range units {
		i := i
		units[i] = Unit[int]{Label: fmt.Sprintf("unit %d", i), Run: func() (int, error) {
			if i == 0 {
				return 0, fmt.Errorf("early failure")
			}
			ran.Add(1)
			return i, nil
		}}
	}
	if _, err := RunUnits(2, units, nil); err == nil {
		t.Fatal("no error")
	}
	if got := ran.Load(); got >= n-1 {
		t.Errorf("all %d remaining units ran despite cancellation", got)
	}
}

func TestRunUnitsSerialStopsAtError(t *testing.T) {
	var ran int
	units := make([]Unit[int], 10)
	for i := range units {
		i := i
		units[i] = Unit[int]{Label: fmt.Sprintf("unit %d", i), Run: func() (int, error) {
			if i == 3 {
				return 0, fmt.Errorf("stop here")
			}
			ran++
			return i, nil
		}}
	}
	if _, err := RunUnits(1, units, nil); err == nil {
		t.Fatal("no error")
	}
	if ran != 3 {
		t.Errorf("serial path ran %d units past the error, want 3 before it", ran)
	}
}

func TestRunUnitsProgressSerializedAndComplete(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var dones []int
		labels := map[string]bool{}
		progress := func(done, total int, label string) {
			if total != 25 {
				t.Errorf("workers=%d: total = %d", workers, total)
			}
			dones = append(dones, done)
			labels[label] = true
		}
		if _, err := RunUnits(workers, squareUnits(25), progress); err != nil {
			t.Fatal(err)
		}
		if len(dones) != 25 {
			t.Fatalf("workers=%d: %d progress calls", workers, len(dones))
		}
		// The scheduler serializes progress and increments done by one per
		// completion, whatever the completion order.
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("workers=%d: progress done sequence %v", workers, dones)
			}
		}
		if len(labels) != 25 {
			t.Errorf("workers=%d: %d distinct labels", workers, len(labels))
		}
	}
}
