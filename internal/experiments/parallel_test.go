package experiments

import (
	"reflect"
	"testing"
)

// equivOptions is small enough for unit tests but has multiple
// repetitions, so rep-order-sensitive aggregation bugs would show.
func equivOptions(workers int) Options {
	o := DefaultOptions()
	o.Repetitions = 3
	o.WarmupFrames = 600
	o.MeasureFrames = 600
	o.Workers = workers
	return o
}

// TestRunWorkloadSerialParallelEquivalence is the acceptance gate for the
// concurrent runner: with the same seed, Workers=1 and Workers=8 must
// produce bit-identical ApproachResults, field for field.
func TestRunWorkloadSerialParallelEquivalence(t *testing.T) {
	w := WorkloadSpec{Name: "1HR1LR", HR: 1, LR: 1}
	for _, a := range AllApproaches {
		serial, err := RunWorkload(w, ScenarioI, a, equivOptions(1))
		if err != nil {
			t.Fatalf("%s serial: %v", a, err)
		}
		parallel, err := RunWorkload(w, ScenarioI, a, equivOptions(8))
		if err != nil {
			t.Fatalf("%s parallel: %v", a, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial and parallel results differ:\n serial:   %+v\n parallel: %+v", a, serial, parallel)
		}
	}
}

// TestRunScenarioMatchesPerWorkloadRuns checks that the scenario-wide
// fan-out aggregates exactly like independent serial RunWorkload calls.
func TestRunScenarioMatchesPerWorkloadRuns(t *testing.T) {
	workloads := []WorkloadSpec{{Name: "1HR", HR: 1}, {Name: "2LR", LR: 2}}
	results, err := RunScenario(workloads, ScenarioI, equivOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range workloads {
		for _, a := range AllApproaches {
			want, err := RunWorkload(w, ScenarioI, a, equivOptions(1))
			if err != nil {
				t.Fatal(err)
			}
			got, ok := results[i].Get(a)
			if !ok {
				t.Fatalf("workload %s missing %s", w.Name, a)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: scenario and workload results differ:\n scenario: %+v\n workload: %+v", w.Name, a, got, want)
			}
		}
	}
}

func TestRunAblationsSerialParallelEquivalence(t *testing.T) {
	w := WorkloadSpec{Name: "1HR", HR: 1}
	serial, err := RunAblations(w, equivOptions(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAblations(w, equivOptions(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("ablation results differ:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

func TestLearningTimeSerialParallelEquivalence(t *testing.T) {
	serial, err := LearningTime(equivOptions(1), 20000)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LearningTime(equivOptions(3), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("learning-time results differ:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

func TestOptionsRejectNegativeWorkers(t *testing.T) {
	o := DefaultOptions()
	o.Workers = -1
	if err := o.Validate(); err == nil {
		t.Error("negative worker count accepted")
	}
}

// TestProgressCoversScenarioGrid checks the progress callback sees every
// (workload, approach, repetition) unit exactly once.
func TestProgressCoversScenarioGrid(t *testing.T) {
	opts := equivOptions(4)
	opts.Repetitions = 2
	var calls int
	var lastTotal int
	opts.Progress = func(done, total int, label string) {
		calls++
		lastTotal = total
	}
	workloads := []WorkloadSpec{{Name: "1HR", HR: 1}}
	if _, err := RunScenario(workloads, ScenarioI, opts); err != nil {
		t.Fatal(err)
	}
	want := len(workloads) * len(AllApproaches) * opts.Repetitions
	if calls != want || lastTotal != want {
		t.Errorf("progress calls = %d (total %d), want %d", calls, lastTotal, want)
	}
}
