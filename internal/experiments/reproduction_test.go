package experiments

import "testing"

// TestHeadlineReproduction is the end-to-end regression guard for the
// paper's headline claims at a reduced-but-converging horizon (about a
// second of wall time). It protects the calibrated shape documented in
// EXPERIMENTS.md: if a model or controller change breaks an ordering,
// this test goes red. The horizon was lengthened to 60k warm-up frames
// when the engine's rng streams moved to xrand: at 30k the MAMUT
// controllers were still mid-descent on the power objective, and the
// power ordering (heuristic highest) is only a converged-behaviour
// claim.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("headline reproduction needs a converging horizon")
	}
	opts := DefaultOptions()
	opts.Repetitions = 1
	opts.WarmupFrames = 60000
	opts.MeasureFrames = 8000

	w := WorkloadSpec{Name: "2HR2LR", HR: 2, LR: 2}
	results := map[Approach]ApproachResult{}
	for _, a := range AllApproaches {
		r, err := RunWorkload(w, ScenarioII, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		results[a] = r
		t.Logf("%-10s watts=%.1f delta=%.1f%% stall=%.1f%% fps=%.1f freq=%.2f",
			a, r.Watts, r.DeltaPct, r.StallPct, r.FPS, r.FreqGHz)
	}
	heur, mono, mamut := results[Heuristic], results[MonoAgent], results[MAMUT]

	// Claim 1 (Fig. 4 / Table II): MAMUT has the fewest QoS violations.
	if mamut.DeltaPct >= heur.DeltaPct {
		t.Errorf("MAMUT delta %.1f%% not below heuristic %.1f%%", mamut.DeltaPct, heur.DeltaPct)
	}
	// The gap to the heuristic is multi-x (paper: up to 8x; require >= 2x).
	if mamut.DeltaPct > 0 && heur.DeltaPct/mamut.DeltaPct < 2 {
		t.Errorf("MAMUT improvement vs heuristic only %.1fx, want >= 2x",
			heur.DeltaPct/mamut.DeltaPct)
	}
	// Claim 2: the heuristic burns the most power (max-frequency governor).
	if heur.Watts <= mamut.Watts || heur.Watts <= mono.Watts {
		t.Errorf("heuristic watts %.1f not the highest (mono %.1f, mamut %.1f)",
			heur.Watts, mono.Watts, mamut.Watts)
	}
	// Claim 3 (Table I fingerprint): heuristic pins the max frequency while
	// the learning managers run below it; MAMUT uses at least as many
	// threads as the heuristic.
	if heur.FreqGHz < 3.19 {
		t.Errorf("heuristic frequency %.2f, want pinned at 3.2", heur.FreqGHz)
	}
	if mamut.FreqGHz >= heur.FreqGHz {
		t.Errorf("MAMUT frequency %.2f not below the heuristic's %.2f", mamut.FreqGHz, heur.FreqGHz)
	}
	if mamut.Nth < heur.Nth {
		t.Errorf("MAMUT threads %.1f below heuristic %.1f", mamut.Nth, heur.Nth)
	}
	// Claim 4 (SIII-D buffering): MAMUT's delivery-side stalls are far
	// below the heuristic's.
	if mamut.StallPct >= heur.StallPct/2 {
		t.Errorf("MAMUT stalls %.1f%% not well below heuristic %.1f%%", mamut.StallPct, heur.StallPct)
	}
	// Constraints met (paper: "all the implementations met the
	// constraints"): power stays under the cap on average.
	for a, r := range results {
		if r.Watts >= opts.Spec.PowerCapW {
			t.Errorf("%s average power %.1f breaches the %g W cap", a, r.Watts, opts.Spec.PowerCapW)
		}
	}
}
