package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

type cell struct {
	Label string  `json:"label"`
	X     float64 `json:"x"`
}

func gridUnits(ran *atomic.Int32) []Unit[cell] {
	units := make([]Unit[cell], 8)
	for i := range units {
		i := i
		label := fmt.Sprintf("cell %d", i)
		units[i] = Unit[cell]{Label: label, Run: func() (cell, error) {
			if ran != nil {
				ran.Add(1)
			}
			// Deterministic per-unit value, bit-exact on every rerun.
			return cell{Label: label, X: float64(i) * 1.25}, nil
		}}
	}
	return units
}

// TestCheckpointResumeBitIdentical: run part of a grid, reopen the
// checkpoint, resume — the combined result must equal an uninterrupted
// run exactly, and restored units must not re-execute.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	want, err := RunUnits(1, gridUnits(nil), nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatal(err)
	}
	// First run: only the first three units (simulating an interrupt by
	// scheduling a truncated grid).
	if _, restored, err := RunUnitsCheckpointed(2, gridUnits(nil)[:3], nil, ck); err != nil {
		t.Fatal(err)
	} else if restored != 0 {
		t.Fatalf("fresh run restored %d units", restored)
	}
	ck.Close()

	// Resume with the full grid from a reopened file.
	ck2, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if got := ck2.Entries(); got != 3 {
		t.Fatalf("reopened checkpoint has %d entries, want 3", got)
	}
	var ran atomic.Int32
	got, restored, err := RunUnitsCheckpointed(2, gridUnits(&ran), nil, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Errorf("restored %d units, want 3", restored)
	}
	if n := ran.Load(); n != 5 {
		t.Errorf("resume executed %d units, want 5", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed grid differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointTornFinalLine: a process killed mid-append leaves a
// partial last line; open must tolerate it, keep the complete records
// and let the torn unit rerun.
func TestCheckpointTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunUnitsCheckpointed(1, gridUnits(nil)[:3], nil, ck); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half.
	lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	defer ck2.Close()
	if got := ck2.Entries(); got != 2 {
		t.Fatalf("after torn line: %d entries, want 2", got)
	}
	// Resuming over the truncated file still converges to the full grid.
	want, _ := RunUnits(1, gridUnits(nil), nil)
	got, restored, err := RunUnitsCheckpointed(1, gridUnits(nil), nil, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Errorf("restored %d, want 2", restored)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-tear resume differs from uninterrupted run")
	}
}

// TestCheckpointMidFileCorruption: damage before the final line is not a
// crash artifact but a broken file, and must be an error.
func TestCheckpointMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunUnitsCheckpointed(1, gridUnits(nil)[:3], nil, ck); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(b), `"unit":1`, `"unit":!`, 1)
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileCheckpoint[cell](path); err == nil {
		t.Error("mid-file corruption accepted")
	} else if !strings.Contains(err.Error(), "corrupted") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestCheckpointLabelMismatch: resuming a different grid against an old
// checkpoint must fail loudly instead of serving wrong cells.
func TestCheckpointLabelMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := OpenFileCheckpoint[cell](path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, _, err := RunUnitsCheckpointed(1, gridUnits(nil)[:2], nil, ck); err != nil {
		t.Fatal(err)
	}
	other := []Unit[cell]{{Label: "different grid", Run: func() (cell, error) { return cell{}, nil }}}
	if _, _, err := RunUnitsCheckpointed(1, other, nil, ck); err == nil {
		t.Error("label mismatch accepted")
	} else if !strings.Contains(err.Error(), "wrong checkpoint") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestCheckpointNilDegradesToRunUnits: a nil checkpointer is plain
// RunUnits.
func TestCheckpointNilDegradesToRunUnits(t *testing.T) {
	want, err := RunUnits(2, gridUnits(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, restored, err := RunUnitsCheckpointed[cell](2, gridUnits(nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Errorf("nil checkpointer restored %d", restored)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("nil checkpointer changed results")
	}
}
