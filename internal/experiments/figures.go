package experiments

import (
	"fmt"
	"math/rand"

	"mamut/internal/core"
	"mamut/internal/metrics"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// Fig2Point is one operating point of the Fig. 2 characterisation: a
// (threads, QP) pair measured at 3.2 GHz on a 1080p ultrafast encode.
type Fig2Point struct {
	Threads int
	QP      int
	// FPS is the measured throughput, PowerW the package power.
	FPS    float64
	PowerW float64
	// PSNRdB and BandwidthMBps form the RD curve (bandwidth at the 24 FPS
	// delivery rate, in megabytes per second as in the paper's axis).
	PSNRdB        float64
	BandwidthMBps float64
}

// Fig2Threads and Fig2QPs are the sweep axes of the paper's figure.
var (
	Fig2Threads = []int{1, 2, 4, 6, 8, 10}
	Fig2QPs     = []int{22, 27, 32, 37}
)

// Fig2Sweep reproduces Fig. 2: RD curves plus power/throughput for each
// thread count and QP, one 1080p stream at the top frequency with no
// controller. Measurement noise is disabled for clean curves.
func Fig2Sweep(opts Options) ([]Fig2Point, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	model := opts.Model
	model.PSNRNoiseDB = 0
	model.BitsNoiseFrac = 0
	spec := opts.Spec
	spec.PowerNoiseW = 0

	var points []Fig2Point
	const frames = 120
	for _, th := range Fig2Threads {
		for _, qp := range Fig2QPs {
			eng, err := transcode.NewEngine(spec, model, SubSeed(opts.Seed, "fig2", th*100+qp))
			if err != nil {
				return nil, err
			}
			seq := &video.Sequence{
				Name: "fig2", Res: video.HR, Frames: frames * 2, FrameRate: 24,
				BaseComplexity: 1.0, Dynamism: 0, MeanSceneLen: 1000,
			}
			src, err := video.NewGenerator(seq, rand.New(rand.NewSource(SubSeed(opts.Seed, "fig2src", th*100+qp))))
			if err != nil {
				return nil, err
			}
			set := transcode.Settings{QP: qp, Threads: th, FreqGHz: spec.MaxGHz()}
			if _, err := eng.AddSession(transcode.SessionConfig{
				Source:      src,
				Controller:  &transcode.Static{S: set},
				Initial:     set,
				FrameBudget: frames,
			}); err != nil {
				return nil, err
			}
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			sr := res.Sessions[0]
			points = append(points, Fig2Point{
				Threads:       th,
				QP:            qp,
				FPS:           sr.AvgFPS,
				PowerW:        res.AvgPowerW,
				PSNRdB:        sr.AvgPSNRdB,
				BandwidthMBps: sr.AvgBitrateMbps / 8, // Mb/s -> MB/s
			})
		}
	}
	return points, nil
}

// Fig5Result is the detailed execution trace of Fig. 5 plus the
// controller's learning telemetry.
type Fig5Result struct {
	// Trace is the captured window (FrameIndex re-based to 0).
	Trace []transcode.Observation
	// Stats is the MAMUT controller telemetry over the whole run.
	Stats core.Stats
}

// Fig5Trace reproduces Fig. 5: a 500-frame execution trace of MAMUT
// transcoding one HR video, captured after the warm-up window so the
// figure shows the converged policy (threads mostly flat, frequency
// oscillating to hold FPS at the target).
func Fig5Trace(opts Options, window int) (*Fig5Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("experiments: window %d < 1", window)
	}
	rng := rand.New(rand.NewSource(SubSeed(opts.Seed, "fig5", 0)))
	eng, err := transcode.NewEngine(opts.Spec, opts.Model, rng.Int63())
	if err != nil {
		return nil, err
	}
	pool := opts.Catalog.ByResolution(video.HR)
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: no HR sequences")
	}
	src, err := video.NewGenerator(pool[0], rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	initial := InitialSettings(video.HR)
	ctrl, err := core.New(core.DefaultConfig(video.HR, opts.Spec, opts.Model.MaxUsefulThreads(video.HR)), initial, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	budget := opts.WarmupFrames + window
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source:        src,
		Controller:    ctrl,
		Initial:       initial,
		BandwidthMbps: core.DefaultBandwidth(video.HR),
		FrameBudget:   budget,
		CollectTrace:  true,
	}); err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	win := metrics.Window(res.Sessions[0].Trace, opts.WarmupFrames, budget)
	out := make([]transcode.Observation, len(win))
	for i, o := range win {
		o.FrameIndex = i
		out[i] = o
	}
	return &Fig5Result{Trace: out, Stats: ctrl.Stats()}, nil
}
