package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file adds durable progress to the experiment scheduler. A long
// grid sweep is a sequence of independent units; checkpointing streams
// each unit's result to a sink the moment it completes, so an
// interrupted run resumes by replaying the sink instead of recomputing.
// Because every unit is independently seeded and results are addressed
// by unit index, a resumed run is bit-identical to an uninterrupted one:
// restored units return the exact bytes they produced the first time,
// and fresh units recompute from their own seeds.

// Checkpointer persists unit results as they complete and answers
// whether a unit already ran. Implementations must be safe for
// concurrent use: the scheduler calls Store from worker goroutines.
type Checkpointer[T any] interface {
	// Lookup reports the stored result for unit i, if any. The label
	// guards against resuming with a different grid: a stored entry
	// whose label differs from the offered one is an error, not a miss.
	Lookup(i int, label string) (T, bool, error)
	// Store records unit i's result. It must be durable before it
	// returns, so a crash after Store never loses the unit.
	Store(i int, label string, v T) error
}

// RunUnitsCheckpointed is RunUnits with durable progress: units already
// present in ck return their stored results without running, fresh units
// run and are stored on completion. It returns the results in unit
// order plus the number of units restored from the checkpoint. ck may
// be nil, which degrades to plain RunUnits.
func RunUnitsCheckpointed[T any](workers int, units []Unit[T], progress ProgressFunc, ck Checkpointer[T]) ([]T, int, error) {
	if ck == nil {
		out, err := RunUnits(workers, units, progress)
		return out, 0, err
	}
	restored := 0
	wrapped := make([]Unit[T], len(units))
	for i, u := range units {
		v, ok, err := ck.Lookup(i, u.Label)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: checkpoint %s: %w", u.Label, err)
		}
		if ok {
			restored++
			cached := v
			wrapped[i] = Unit[T]{Label: u.Label, Run: func() (T, error) { return cached, nil }}
			continue
		}
		i, u := i, u
		wrapped[i] = Unit[T]{Label: u.Label, Run: func() (T, error) {
			v, err := u.Run()
			if err != nil {
				return v, err
			}
			if err := ck.Store(i, u.Label, v); err != nil {
				return v, fmt.Errorf("checkpoint store: %w", err)
			}
			return v, nil
		}}
	}
	out, err := RunUnits(workers, wrapped, progress)
	if err != nil {
		return nil, 0, err
	}
	return out, restored, nil
}

// checkpointEntry is one JSONL record in a FileCheckpoint.
type checkpointEntry struct {
	Unit  int             `json:"unit"`
	Label string          `json:"label"`
	Value json.RawMessage `json:"value"`
}

// FileCheckpoint is a Checkpointer backed by an append-only JSONL file:
// one {"unit":i,"label":...,"value":...} record per completed unit.
// Appending is atomic enough for the crash model that matters here — a
// torn final line (the process died mid-write) is tolerated and
// truncated away on open, while a corrupt record in the middle of the
// file means the artifact itself is damaged and is an error.
type FileCheckpoint[T any] struct {
	mu      sync.Mutex
	f       *os.File
	entries map[int]checkpointEntry
}

// OpenFileCheckpoint opens (or creates) the checkpoint file at path and
// loads every complete record already present.
func OpenFileCheckpoint[T any](path string) (*FileCheckpoint[T], error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: open checkpoint: %w", err)
	}
	c := &FileCheckpoint[T]{f: f, entries: make(map[int]checkpointEntry)}
	if err := c.load(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// load reads the existing records. A malformed or truncated final line
// is discarded (the run died mid-append); malformed earlier lines are
// corruption and error out.
func (c *FileCheckpoint[T]) load() error {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("experiments: read checkpoint: %w", err)
	}
	r := bufio.NewReader(c.f)
	var keep int64
	for {
		line, err := r.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return fmt.Errorf("experiments: read checkpoint: %w", err)
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		if len(line) > 0 {
			var e checkpointEntry
			if jerr := json.Unmarshal(line, &e); jerr != nil {
				if atEOF || !complete {
					// Torn final line: drop it and append over it.
					break
				}
				return fmt.Errorf("experiments: checkpoint corrupted at offset %d: %v", keep, jerr)
			}
			c.entries[e.Unit] = e
			keep += int64(len(line))
		}
		if atEOF {
			break
		}
	}
	if err := c.f.Truncate(keep); err != nil {
		return fmt.Errorf("experiments: truncate checkpoint: %w", err)
	}
	if _, err := c.f.Seek(keep, io.SeekStart); err != nil {
		return fmt.Errorf("experiments: seek checkpoint: %w", err)
	}
	return nil
}

// Lookup implements Checkpointer.
func (c *FileCheckpoint[T]) Lookup(i int, label string) (T, bool, error) {
	var zero T
	c.mu.Lock()
	e, ok := c.entries[i]
	c.mu.Unlock()
	if !ok {
		return zero, false, nil
	}
	if e.Label != label {
		return zero, false, fmt.Errorf("unit %d is %q on file, offered %q — wrong checkpoint for this grid", i, e.Label, label)
	}
	var v T
	if err := json.Unmarshal(e.Value, &v); err != nil {
		return zero, false, fmt.Errorf("unit %d value: %w", i, err)
	}
	return v, true, nil
}

// Store implements Checkpointer. The record is flushed to the OS before
// Store returns, so a subsequent crash cannot lose it.
func (c *FileCheckpoint[T]) Store(i int, label string, v T) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointEntry{Unit: i, Label: label, Value: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.entries[i] = checkpointEntry{Unit: i, Label: label, Value: raw}
	return nil
}

// Entries reports how many completed units are on file.
func (c *FileCheckpoint[T]) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close releases the underlying file.
func (c *FileCheckpoint[T]) Close() error {
	return c.f.Close()
}
