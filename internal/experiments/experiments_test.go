package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mamut/internal/core"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

// tinyOptions keeps unit-test runs fast; the RL managers are nowhere near
// converged at this horizon, so tests only assert structural properties.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Repetitions = 1
	o.WarmupFrames = 600
	o.MeasureFrames = 600
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Options){
		func(o *Options) { o.Catalog = nil },
		func(o *Options) { o.Repetitions = 0 },
		func(o *Options) { o.MeasureFrames = 0 },
		func(o *Options) { o.WarmupFrames = -1 },
		func(o *Options) { o.Spec.Sockets = 0 },
		func(o *Options) { o.Model.QPHalving = 0 },
	}
	for i, f := range mut {
		o := DefaultOptions()
		f(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScenarioWorkloadLists(t *testing.T) {
	s1 := ScenarioIWorkloads()
	if len(s1) != 13 {
		t.Fatalf("Scenario I has %d workloads, want 13 (1..5 HR + 1..8 LR)", len(s1))
	}
	if s1[0].Name != "1HR" || s1[0].HR != 1 || s1[0].LR != 0 {
		t.Errorf("first workload %+v", s1[0])
	}
	if s1[12].Name != "8LR" || s1[12].LR != 8 {
		t.Errorf("last workload %+v", s1[12])
	}
	s2 := ScenarioIIWorkloads()
	if len(s2) != 9 {
		t.Fatalf("Scenario II has %d workloads, want 9 (Table II rows)", len(s2))
	}
	if s2[0].Name != "1HR1LR" || s2[8].Name != "3HR3LR" {
		t.Errorf("Scenario II names %s..%s", s2[0].Name, s2[8].Name)
	}
	for _, w := range s2 {
		if w.Sessions() != w.HR+w.LR {
			t.Errorf("workload %s session count wrong", w.Name)
		}
	}
}

func TestFactoryKnownApproaches(t *testing.T) {
	opts := tinyOptions()
	for _, a := range AllApproaches {
		f, err := Factory(a, opts)
		if err != nil {
			t.Fatalf("factory %s: %v", a, err)
		}
		ctrl, err := f(video.HR, InitialSettings(video.HR), newTestRNG())
		if err != nil {
			t.Fatalf("build %s: %v", a, err)
		}
		if ctrl.Name() != string(a) {
			t.Errorf("controller name %q, want %q", ctrl.Name(), a)
		}
	}
	if _, err := Factory("nonsense", opts); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestInitialSettings(t *testing.T) {
	hr := InitialSettings(video.HR)
	lr := InitialSettings(video.LR)
	if hr.Threads <= lr.Threads {
		t.Error("HR should start with more threads than LR")
	}
	if err := hr.Validate(); err != nil {
		t.Error(err)
	}
	if err := lr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSubSeedDeterministicAndDistinct(t *testing.T) {
	a := SubSeed(1, "x", 0)
	b := SubSeed(1, "x", 0)
	if a != b {
		t.Error("SubSeed not deterministic")
	}
	if SubSeed(1, "x", 1) == a || SubSeed(1, "y", 0) == a || SubSeed(2, "x", 0) == a {
		t.Error("SubSeed collisions across labels")
	}
	if a < 0 {
		t.Error("SubSeed negative")
	}
}

func TestRunWorkloadStructure(t *testing.T) {
	opts := tinyOptions()
	w := WorkloadSpec{Name: "1HR1LR", HR: 1, LR: 1}
	r, err := RunWorkload(w, ScenarioI, Heuristic, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Approach != Heuristic {
		t.Errorf("approach %s", r.Approach)
	}
	if r.Watts <= opts.Spec.IdlePowerW {
		t.Errorf("watts %.1f not above idle", r.Watts)
	}
	if r.FPS <= 0 || r.Nth < 1 || r.PSNRdB < 20 {
		t.Errorf("implausible result %+v", r)
	}
	if r.HR.Sessions != 1 || r.LR.Sessions != 1 {
		t.Errorf("resolution aggregation %+v / %+v", r.HR, r.LR)
	}
	if r.DeltaPct < 0 || r.DeltaPct > 100 {
		t.Errorf("delta %.1f out of range", r.DeltaPct)
	}
}

func TestRunWorkloadDeterminism(t *testing.T) {
	opts := tinyOptions()
	w := WorkloadSpec{Name: "1HR", HR: 1}
	a, err := RunWorkload(w, ScenarioI, MAMUT, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(w, ScenarioI, MAMUT, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Watts != b.Watts || a.DeltaPct != b.DeltaPct || a.FPS != b.FPS {
		t.Error("identical runs diverged")
	}
}

func TestRunWorkloadErrors(t *testing.T) {
	opts := tinyOptions()
	if _, err := RunWorkload(WorkloadSpec{Name: "empty"}, ScenarioI, MAMUT, opts); err == nil {
		t.Error("empty workload accepted")
	}
	bad := opts
	bad.Repetitions = 0
	if _, err := RunWorkload(WorkloadSpec{Name: "1HR", HR: 1}, ScenarioI, MAMUT, bad); err == nil {
		t.Error("invalid options accepted")
	}
	// Unknown scenario kind fails when building sources.
	f, err := Factory(Heuristic, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadWithFactory(WorkloadSpec{Name: "1HR", HR: 1}, ScenarioKind(9), "x", f, opts); err == nil {
		t.Error("unknown scenario kind accepted")
	}
	// A factory that fails propagates.
	badFactory := func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error) {
		return nil, errFactory
	}
	if _, err := RunWorkloadWithFactory(WorkloadSpec{Name: "1HR", HR: 1}, ScenarioI, "bad", badFactory, opts); err == nil {
		t.Error("factory error not propagated")
	}
}

var errFactory = fmt.Errorf("boom")

func TestRunScenarioAllApproaches(t *testing.T) {
	opts := tinyOptions()
	workloads := []WorkloadSpec{{Name: "1HR", HR: 1}, {Name: "1LR", LR: 1}}
	results, err := RunScenario(workloads, ScenarioI, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, wr := range results {
		if len(wr.ByApproach) != 3 {
			t.Fatalf("workload %s has %d approaches", wr.Spec.Name, len(wr.ByApproach))
		}
		for _, a := range AllApproaches {
			if _, ok := wr.Get(a); !ok {
				t.Errorf("workload %s missing %s", wr.Spec.Name, a)
			}
		}
		if _, ok := wr.Get("nope"); ok {
			t.Error("Get returned a result for an unknown approach")
		}
	}
	if _, err := RunScenario(nil, ScenarioI, opts); err == nil {
		t.Error("empty workload list accepted")
	}
}

func TestScenarioIIUsesPlaylists(t *testing.T) {
	opts := tinyOptions()
	w := WorkloadSpec{Name: "1HR", HR: 1}
	if _, err := RunWorkload(w, ScenarioII, Heuristic, opts); err != nil {
		t.Fatal(err)
	}
}

func TestTableIAggregation(t *testing.T) {
	mk := func(a Approach, hrN, hrF, lrN, lrF float64, hrS, lrS int) ApproachResult {
		return ApproachResult{
			Approach: a,
			HR:       ResolutionAgg{Sessions: hrS, Nth: hrN, FreqGHz: hrF},
			LR:       ResolutionAgg{Sessions: lrS, Nth: lrN, FreqGHz: lrF},
		}
	}
	results := []WorkloadResult{
		{Spec: WorkloadSpec{Name: "1HR", HR: 1}, ByApproach: []ApproachResult{
			mk(Heuristic, 6, 3.2, 0, 0, 1, 0), mk(MonoAgent, 9, 2.9, 0, 0, 1, 0), mk(MAMUT, 10, 2.9, 0, 0, 1, 0),
		}},
		{Spec: WorkloadSpec{Name: "1LR", LR: 1}, ByApproach: []ApproachResult{
			mk(Heuristic, 0, 0, 3, 3.2, 0, 1), mk(MonoAgent, 0, 0, 4, 2.9, 0, 1), mk(MAMUT, 0, 0, 4, 2.8, 0, 1),
		}},
		// A second HR workload with twice the sessions to check weighting.
		{Spec: WorkloadSpec{Name: "2HR", HR: 2}, ByApproach: []ApproachResult{
			mk(Heuristic, 4, 3.2, 0, 0, 2, 0), mk(MonoAgent, 8, 2.9, 0, 0, 2, 0), mk(MAMUT, 11, 2.7, 0, 0, 2, 0),
		}},
	}
	rows, err := TableI(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Heuristic HR Nth: (6*1 + 4*2) / 3 = 14/3.
	for _, row := range rows {
		if row.Approach == Heuristic {
			if want := 14.0 / 3; math.Abs(row.HRNth-want) > 1e-12 {
				t.Errorf("heuristic HR Nth = %g, want %g", row.HRNth, want)
			}
			if row.LRNth != 3 {
				t.Errorf("heuristic LR Nth = %g, want 3", row.LRNth)
			}
		}
	}
	if _, err := TableI(nil); err == nil {
		t.Error("empty results accepted")
	}
}

func TestFig2SweepShape(t *testing.T) {
	opts := tinyOptions()
	points, err := Fig2Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig2Threads)*len(Fig2QPs) {
		t.Fatalf("points = %d, want %d", len(points), len(Fig2Threads)*len(Fig2QPs))
	}
	byKey := map[[2]int]Fig2Point{}
	for _, p := range points {
		byKey[[2]int{p.Threads, p.QP}] = p
		if p.FPS <= 0 || p.PowerW <= 0 || p.PSNRdB <= 0 || p.BandwidthMBps <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// More threads -> more FPS and power at fixed QP.
	for _, qp := range Fig2QPs {
		if byKey[[2]int{10, qp}].FPS <= byKey[[2]int{1, qp}].FPS {
			t.Errorf("QP %d: FPS not increasing with threads", qp)
		}
		if byKey[[2]int{10, qp}].PowerW <= byKey[[2]int{1, qp}].PowerW {
			t.Errorf("QP %d: power not increasing with threads", qp)
		}
	}
	// Higher QP -> lower PSNR and bandwidth, higher FPS at fixed threads.
	for _, th := range Fig2Threads {
		p22 := byKey[[2]int{th, 22}]
		p37 := byKey[[2]int{th, 37}]
		if p37.PSNRdB >= p22.PSNRdB {
			t.Errorf("threads %d: PSNR not decreasing with QP", th)
		}
		if p37.BandwidthMBps >= p22.BandwidthMBps {
			t.Errorf("threads %d: bandwidth not decreasing with QP", th)
		}
		if p37.FPS <= p22.FPS {
			t.Errorf("threads %d: FPS not increasing with QP", th)
		}
	}
	// Paper's range anchors: bandwidth axis tops out ~1.2-1.5 MB/s.
	if p := byKey[[2]int{10, 22}]; p.BandwidthMBps < 0.8 || p.BandwidthMBps > 1.6 {
		t.Errorf("QP22 bandwidth %.2f MB/s outside paper range", p.BandwidthMBps)
	}
}

func TestFig5TraceWindow(t *testing.T) {
	opts := tinyOptions()
	opts.WarmupFrames = 1200
	res, err := Fig5Trace(opts, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 500 {
		t.Fatalf("trace = %d, want 500", len(res.Trace))
	}
	for i, o := range res.Trace {
		if o.FrameIndex != i {
			t.Fatalf("trace not re-based at %d", i)
		}
	}
	if _, err := Fig5Trace(opts, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestLearningTimeOrdering(t *testing.T) {
	opts := tinyOptions()
	res, err := LearningTime(opts, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAMUTAllExploit <= 0 {
		t.Fatal("MAMUT never reached full exploitation in 40k frames")
	}
	if res.MonoActions >= res.MonoWideActions {
		t.Error("wide mono subset not wider")
	}
	// The combinatorial-explosion claim (SV-B): the wide joint space takes
	// several times longer than MAMUT's decomposed spaces to start
	// exploiting.
	if res.MonoWideFirstExploit > 0 && res.WideRatio < 1.5 {
		t.Errorf("wide mono ratio %.2f, want > 1.5 (SV-B reports 15x)", res.WideRatio)
	}
	if _, err := LearningTime(opts, 0); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestRunAblationsStructure(t *testing.T) {
	opts := tinyOptions()
	res, err := RunAblations(WorkloadSpec{Name: "1HR", HR: 1}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(DefaultAblations()) {
		t.Fatalf("ablations = %d", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Name] = true
		if r.FPS <= 0 || r.Watts <= 0 {
			t.Errorf("degenerate ablation %+v", r)
		}
	}
	for _, want := range []string{"mamut-full", "no-cooperation", "no-alpha-coupling", "uniform-periods"} {
		if !names[want] {
			t.Errorf("missing ablation %s", want)
		}
	}
	// Zero-valued workload defaults to 2HR1LR.
	res2, err := RunAblations(WorkloadSpec{}, opts, []AblationVariant{{Name: "only-full", Mutate: func(*core.Config) {}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 1 || res2[0].Name != "only-full" {
		t.Errorf("custom variant result %+v", res2)
	}
}
