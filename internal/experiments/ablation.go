package experiments

import (
	"fmt"
	"math/rand"

	"mamut/internal/core"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// AblationResult is one MAMUT variant's behaviour on the ablation
// workload.
type AblationResult struct {
	// Name identifies the variant.
	Name string
	// Headline metrics on the measured window.
	DeltaPct float64
	Watts    float64
	FPS      float64
	PSNRdB   float64
}

// AblationVariant describes one modification of the MAMUT configuration.
type AblationVariant struct {
	// Name identifies the variant in reports.
	Name string
	// Mutate adjusts the default per-stream configuration.
	Mutate func(*core.Config)
}

// DefaultAblations returns the design-choice ablations called out in
// DESIGN.md S5.
func DefaultAblations() []AblationVariant {
	return []AblationVariant{
		{Name: "mamut-full", Mutate: func(*core.Config) {}},
		{Name: "no-cooperation", Mutate: func(c *core.Config) { c.Cooperative = false }},
		{Name: "no-alpha-coupling", Mutate: func(c *core.Config) { c.BetaPrime = 0 }},
		{Name: "uniform-periods", Mutate: func(c *core.Config) { c.Schedule = core.UniformSchedule(6) }},
	}
}

// RunAblations measures every variant on the given workload (the paper's
// moderately loaded 2HR1LR mix by default when w is zero-valued). All
// (variant x repetition) units run concurrently on the Options.Workers
// pool; aggregation stays in variant/repetition order, so the numbers
// match a serial sweep exactly.
func RunAblations(w WorkloadSpec, opts Options, variants []AblationVariant) ([]AblationResult, error) {
	if w.Sessions() == 0 {
		w = WorkloadSpec{Name: "2HR1LR", HR: 2, LR: 1}
	}
	if len(variants) == 0 {
		variants = DefaultAblations()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var units []Unit[repOutcome]
	for _, v := range variants {
		v := v
		factory := func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error) {
			cfg := core.DefaultConfig(res, opts.Spec, opts.Model.MaxUsefulThreads(res))
			v.Mutate(&cfg)
			return core.New(cfg, initial, rng)
		}
		units = append(units, repUnits(w, ScenarioI, "ablation|"+v.Name, factory, opts)...)
	}
	outs, err := RunUnits(opts.Workers, units, opts.Progress)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation: %w", err)
	}
	out := make([]AblationResult, 0, len(variants))
	for i, v := range variants {
		r := aggregateReps(outs[i*opts.Repetitions : (i+1)*opts.Repetitions])
		out = append(out, AblationResult{
			Name:     v.Name,
			DeltaPct: r.DeltaPct,
			Watts:    r.Watts,
			FPS:      r.FPS,
			PSNRdB:   r.PSNRdB,
		})
	}
	return out, nil
}
