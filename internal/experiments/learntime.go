package experiments

import (
	"fmt"
	"math/rand"

	"mamut/internal/baseline"
	"mamut/internal/core"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// LearningTimeResult quantifies the SV-B claim that the mono-agent takes
// far longer to finish learning than MAMUT because of the combinatorial
// joint action space. Two mono-agent granularities are measured: the
// 27-action subset the scenario experiments use (the most favourable
// mono baseline) and a wider 100-action subset closer to a straight
// coarsening of the full space, which exhibits the explosion the paper
// reports as a 15x longer learning time.
type LearningTimeResult struct {
	// MAMUTFirstExploit is the first frame at which each MAMUT agent chose
	// an exploitation action, and MAMUTAllExploit the first frame at which
	// all three had.
	MAMUTFirstExploit [3]int
	MAMUTAllExploit   int
	// MonoFirstExploit is the first frame at which the 27-action
	// mono-agent chose an exploitation action, -1 if it never did within
	// the budget; MonoWideFirstExploit is the same for the 100-action
	// subset.
	MonoFirstExploit     int
	MonoWideFirstExploit int
	// MonoActions and MonoWideActions record the joint-space sizes.
	MonoActions     int
	MonoWideActions int
	// Frames is the simulated budget.
	Frames int
	// Ratio is MonoFirstExploit / MAMUTAllExploit and WideRatio the same
	// for the wide subset, when both quantities are positive.
	Ratio     float64
	WideRatio float64
}

// WideMonoConfig returns the 100-action mono-agent subset used by the
// learning-time experiment: 5 QP x 5 threads x 4 frequencies.
func WideMonoConfig(opts Options) baseline.MonoConfig {
	cfg := baseline.DefaultMonoConfig(video.HR, opts.Spec, opts.Model.MaxUsefulThreads(video.HR))
	cfg.QPValues = []int{22, 25, 29, 32, 37}
	cfg.ThreadValues = []int{1, 3, 6, 9, 12}
	cfg.FreqValues = []float64{1.6, 2.3, 2.9, 3.2}
	return cfg
}

// LearningTime runs MAMUT and the mono-agent on identical single-HR-stream
// workloads and reports how long each takes to first reach the
// exploitation phase.
func LearningTime(opts Options, frames int) (*LearningTimeResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if frames < 1 {
		return nil, fmt.Errorf("experiments: frames %d < 1", frames)
	}

	run := func(label string, build func(rng *rand.Rand) (transcode.Controller, error)) (transcode.Controller, error) {
		rng := rand.New(rand.NewSource(SubSeed(opts.Seed, "learntime|"+label, 0)))
		eng, err := transcode.NewEngine(opts.Spec, opts.Model, rng.Int63())
		if err != nil {
			return nil, err
		}
		pool := opts.Catalog.ByResolution(video.HR)
		src, err := video.NewGenerator(pool[0], rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		ctrl, err := build(rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		if _, err := eng.AddSession(transcode.SessionConfig{
			Source:        src,
			Controller:    ctrl,
			Initial:       InitialSettings(video.HR),
			BandwidthMbps: core.DefaultBandwidth(video.HR),
			FrameBudget:   frames,
		}); err != nil {
			return nil, err
		}
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		return ctrl, nil
	}

	// The three managers are measured on independent, separately seeded
	// single-stream engines, so they run concurrently on the worker pool.
	maxTh := opts.Model.MaxUsefulThreads(video.HR)
	monoCfg := baseline.DefaultMonoConfig(video.HR, opts.Spec, maxTh)
	wideCfg := WideMonoConfig(opts)
	ctrls, err := RunUnits(opts.Workers, []Unit[transcode.Controller]{
		{Label: "learntime/mamut", Run: func() (transcode.Controller, error) {
			return run("mamut", func(rng *rand.Rand) (transcode.Controller, error) {
				return core.New(core.DefaultConfig(video.HR, opts.Spec, maxTh), InitialSettings(video.HR), rng)
			})
		}},
		{Label: "learntime/mono", Run: func() (transcode.Controller, error) {
			return run("mono", func(rng *rand.Rand) (transcode.Controller, error) {
				return baseline.NewMonoAgent(monoCfg, InitialSettings(video.HR), rng)
			})
		}},
		{Label: "learntime/mono-wide", Run: func() (transcode.Controller, error) {
			return run("mono-wide", func(rng *rand.Rand) (transcode.Controller, error) {
				return baseline.NewMonoAgent(wideCfg, InitialSettings(video.HR), rng)
			})
		}},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}

	mStats := ctrls[0].(*core.Controller).Stats()
	moStats := ctrls[1].(*baseline.MonoAgent).Stats()
	wideStats := ctrls[2].(*baseline.MonoAgent).Stats()
	out := &LearningTimeResult{
		MAMUTFirstExploit:    mStats.FirstExploitFrame,
		MAMUTAllExploit:      mStats.FirstAllExploitFrame,
		MonoFirstExploit:     moStats.FirstExploitFrame,
		MonoWideFirstExploit: wideStats.FirstExploitFrame,
		MonoActions:          monoCfg.Actions(),
		MonoWideActions:      wideCfg.Actions(),
		Frames:               frames,
	}
	if out.MAMUTAllExploit > 0 && out.MonoFirstExploit > 0 {
		out.Ratio = float64(out.MonoFirstExploit) / float64(out.MAMUTAllExploit)
	}
	if out.MAMUTAllExploit > 0 && out.MonoWideFirstExploit > 0 {
		out.WideRatio = float64(out.MonoWideFirstExploit) / float64(out.MAMUTAllExploit)
	}
	return out, nil
}
