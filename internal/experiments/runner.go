package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// This file is the experiment scheduler: a deterministic worker pool that
// fans independent work units out across goroutines. Every (workload,
// approach, repetition) cell of the paper's evaluation is independently
// seeded via SubSeed and shares no mutable state, so the grid can run
// concurrently — the only requirement for bit-identical results is that
// aggregation consumes outcomes in the same order as the serial loops,
// which RunUnits guarantees by addressing results by unit index.

// Unit is one schedulable work item producing a value of type T.
type Unit[T any] struct {
	// Label identifies the unit in progress reports and errors.
	Label string
	// Run performs the work. It must be safe to call concurrently with
	// other units' Run functions.
	Run func() (T, error)
}

// ProgressFunc observes scheduler progress. done counts completed units
// out of total; label names the unit that just finished. Calls are
// serialized by the scheduler, so implementations need no locking, but
// they must be fast: the pool holds its bookkeeping lock while reporting.
type ProgressFunc func(done, total int, label string)

// ResolveWorkers maps the Options.Workers convention onto a concrete pool
// size: positive values are taken as-is, zero (the default) means one
// worker per schedulable CPU. GOMAXPROCS rather than NumCPU, so
// CPU-quota'd containers and explicit GOMAXPROCS settings are honoured
// instead of oversubscribed.
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunUnits executes every unit across a pool of workers goroutines
// (ResolveWorkers applies) and returns the results in unit order,
// regardless of completion order. The first error cancels the remaining
// units via context and is returned wrapped with the failing unit's
// label. progress may be nil.
func RunUnits[T any](workers int, units []Unit[T], progress ProgressFunc) ([]T, error) {
	out := make([]T, len(units))
	n := len(units)
	if n == 0 {
		return out, nil
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: same semantics, no goroutine overhead.
		for i, u := range units {
			v, err := u.Run()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", u.Label, err)
			}
			out[i] = v
			if progress != nil {
				progress(i+1, n, u.Label)
			}
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		done     int
		wg       sync.WaitGroup
	)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				v, err := units[i].Run()
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: %s: %w", units[i].Label, err)
						cancel()
					}
					mu.Unlock()
					return
				}
				out[i] = v
				done++
				if progress != nil {
					progress(done, n, units[i].Label)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
