package experiments

import (
	"runtime"
	"testing"
)

// benchScenarioI measures the Table I / Fig. 4 reproduction pipeline on a
// moderately loaded Scenario I workload: 3 approaches x 4 repetitions =
// 12 independent units per iteration, enough to keep a multi-core pool
// busy. Compare:
//
//	go test ./internal/experiments/ -bench BenchmarkScenarioI -benchtime 3x
func benchScenarioI(b *testing.B, workers int) {
	opts := DefaultOptions()
	opts.Repetitions = 4
	opts.WarmupFrames = 1200
	opts.MeasureFrames = 1200
	opts.Workers = workers
	workloads := []WorkloadSpec{{Name: "2HR2LR", HR: 2, LR: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenario(workloads, ScenarioI, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioIWorkers1(b *testing.B) { benchScenarioI(b, 1) }

func BenchmarkScenarioIWorkersNumCPU(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("single-CPU machine: parallel benchmark is meaningless")
	}
	benchScenarioI(b, 0)
}
