// Package experiments reproduces the paper's evaluation: the Fig. 2
// characterisation sweep, the Scenario I workload sweep (Fig. 4, Table I),
// the Scenario II request-batch study (Table II), the Fig. 5 execution
// trace, the mono-agent learning-time comparison (SV-B) and the ablations
// called out in DESIGN.md.
//
// Every run is deterministic for a fixed Options.Seed. Like the paper
// (SV-A), each configuration is repeated several times and averaged; the
// measured window excludes the warm-up/learning frames, mirroring the
// paper's averaging over five repetitions of a system whose tables persist.
package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"mamut/internal/baseline"
	"mamut/internal/core"
	"mamut/internal/hevc"
	"mamut/internal/metrics"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// Approach names one of the three compared run-time managers.
type Approach string

const (
	// Heuristic is the Grellert-style rule-based manager.
	Heuristic Approach = "heuristic"
	// MonoAgent is the single-agent Q-learning manager.
	MonoAgent Approach = "monoagent"
	// MAMUT is the paper's multi-agent manager.
	MAMUT Approach = "mamut"
)

// AllApproaches lists the paper's comparison order.
var AllApproaches = []Approach{Heuristic, MonoAgent, MAMUT}

// Options configures an experiment run.
type Options struct {
	// Spec is the platform model.
	Spec platform.Spec
	// Model is the encoder model.
	Model hevc.Model
	// Catalog provides the video sequences.
	Catalog *video.Catalog
	// Seed drives all randomness deterministically.
	Seed int64
	// Repetitions averages this many runs per configuration (5 in the
	// paper).
	Repetitions int
	// WarmupFrames are excluded from the measured window: the learning
	// phase of the RL managers (the heuristic needs none but is given the
	// same protocol).
	WarmupFrames int
	// MeasureFrames is the size of the measured window per session.
	MeasureFrames int
	// Workers sizes the worker pool that runs independent (workload,
	// approach, repetition) units concurrently: 0 means one worker per
	// logical CPU, 1 forces the serial path. Results are bit-identical
	// for any worker count.
	Workers int
	// Progress, when set, observes every completed unit (see ProgressFunc).
	Progress ProgressFunc
	// WarmStart, when set, supplies the knowledge snapshot each new MAMUT
	// controller is seeded with (cross-session knowledge reuse); a nil
	// return is a cold start. It is consulted at controller-build time,
	// only by the MAMUT factory — the other approaches ignore it. The
	// returned snapshot is read, never retained or mutated.
	WarmStart WarmStartFunc
}

// WarmStartFunc resolves the warm-start snapshot for a new MAMUT session
// of the given resolution class, or nil for a cold start.
type WarmStartFunc func(res video.Resolution) *core.Snapshot

// DefaultOptions returns the configuration used for the published
// experiment outputs in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Spec:          platform.DefaultSpec(),
		Model:         hevc.DefaultModel(),
		Catalog:       video.DefaultCatalog(),
		Seed:          1,
		Repetitions:   5,
		WarmupFrames:  36000,
		MeasureFrames: 6000,
	}
}

// QuickOptions returns a reduced configuration for benchmarks and smoke
// tests: fewer repetitions and shorter windows (the RL managers are only
// partially converged at this horizon).
func QuickOptions() Options {
	o := DefaultOptions()
	o.Repetitions = 2
	o.WarmupFrames = 12000
	o.MeasureFrames = 4000
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if err := o.Spec.Validate(); err != nil {
		return err
	}
	if err := o.Model.Validate(); err != nil {
		return err
	}
	if o.Catalog == nil || o.Catalog.Len() == 0 {
		return fmt.Errorf("experiments: empty catalog")
	}
	if o.Repetitions < 1 {
		return fmt.Errorf("experiments: repetitions %d < 1", o.Repetitions)
	}
	if o.WarmupFrames < 0 || o.MeasureFrames < 1 {
		return fmt.Errorf("experiments: window %d+%d invalid", o.WarmupFrames, o.MeasureFrames)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: workers %d < 0", o.Workers)
	}
	return nil
}

// WorkloadSpec is a mix of simultaneous streams.
type WorkloadSpec struct {
	// Name is the paper's shorthand, e.g. "2HR3LR".
	Name string
	// HR and LR are the stream counts per resolution class.
	HR, LR int
}

// Sessions returns the total stream count.
func (w WorkloadSpec) Sessions() int { return w.HR + w.LR }

// ScenarioIWorkloads returns the homogeneous workloads of Fig. 4:
// 1..5 simultaneous HR videos and 1..8 simultaneous LR videos.
func ScenarioIWorkloads() []WorkloadSpec {
	var out []WorkloadSpec
	for n := 1; n <= 5; n++ {
		out = append(out, WorkloadSpec{Name: fmt.Sprintf("%dHR", n), HR: n})
	}
	for n := 1; n <= 8; n++ {
		out = append(out, WorkloadSpec{Name: fmt.Sprintf("%dLR", n), LR: n})
	}
	return out
}

// ScenarioIIWorkloads returns the mixed batches of Table II.
func ScenarioIIWorkloads() []WorkloadSpec {
	mix := [][2]int{
		{1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 1}, {3, 2}, {3, 3},
	}
	out := make([]WorkloadSpec, 0, len(mix))
	for _, m := range mix {
		out = append(out, WorkloadSpec{Name: fmt.Sprintf("%dHR%dLR", m[0], m[1]), HR: m[0], LR: m[1]})
	}
	return out
}

// ScenarioKind distinguishes the two evaluation protocols.
type ScenarioKind int

const (
	// ScenarioI loops one catalog sequence per stream (SV-B).
	ScenarioI ScenarioKind = iota
	// ScenarioII plays an initial sequence followed by four random
	// same-resolution sequences per stream (SV-C).
	ScenarioII
)

// ResolutionAgg aggregates the sessions of one resolution class.
type ResolutionAgg struct {
	// Sessions counts contributing streams across repetitions.
	Sessions int
	// Nth and FreqGHz are the Table I quantities.
	Nth     float64
	FreqGHz float64
	// PSNRdB, FPS and DeltaPct complete the picture.
	PSNRdB   float64
	FPS      float64
	DeltaPct float64
}

// ApproachResult is one approach's measured behaviour on one workload.
type ApproachResult struct {
	Approach Approach
	// Watts is the time-averaged package power over the measured window,
	// averaged across repetitions; WattsStd is its std-dev across
	// repetitions.
	Watts    float64
	WattsStd float64
	// Session-averaged metrics (the paper's Table II columns).
	Nth         float64
	FPS         float64
	DeltaPct    float64
	PSNRdB      float64
	BitrateMbps float64
	FreqGHz     float64
	QP          float64
	// StallPct is the delivery-side QoS metric: the share of frames
	// missing their playout deadline under the paper's SIII-D buffering
	// model (metrics.BufferedViolations), averaged over sessions.
	StallPct float64
	// HR and LR aggregate the same quantities per resolution class.
	HR, LR ResolutionAgg
}

// WorkloadResult couples a workload with the per-approach results.
type WorkloadResult struct {
	Spec       WorkloadSpec
	ByApproach []ApproachResult
}

// Get returns the result for one approach.
func (w WorkloadResult) Get(a Approach) (ApproachResult, bool) {
	for _, r := range w.ByApproach {
		if r.Approach == a {
			return r, true
		}
	}
	return ApproachResult{}, false
}

// ControllerFactory builds a controller for one stream. Custom factories
// drive the ablation studies; the standard approaches use Factory.
type ControllerFactory func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error)

// Factory returns the standard factory for an approach.
func Factory(a Approach, opts Options) (ControllerFactory, error) {
	switch a {
	case Heuristic:
		return func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error) {
			cfg := baseline.DefaultHeuristicConfig(res, opts.Spec, opts.Model.MaxUsefulThreads(res))
			return baseline.NewHeuristic(cfg, initial)
		}, nil
	case MonoAgent:
		return func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error) {
			cfg := baseline.DefaultMonoConfig(res, opts.Spec, opts.Model.MaxUsefulThreads(res))
			return baseline.NewMonoAgent(cfg, initial, rng)
		}, nil
	case MAMUT:
		return func(res video.Resolution, initial transcode.Settings, rng *rand.Rand) (transcode.Controller, error) {
			cfg := core.DefaultConfig(res, opts.Spec, opts.Model.MaxUsefulThreads(res))
			if opts.WarmStart == nil {
				return core.New(cfg, initial, rng)
			}
			return core.NewWarm(cfg, initial, rng, opts.WarmStart(res))
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown approach %q", a)
	}
}

// InitialSettings returns the common starting knobs used by every
// approach: a mid QP, a moderate thread count and a mid frequency.
func InitialSettings(res video.Resolution) transcode.Settings {
	threads := 6
	if res == video.LR {
		threads = 3
	}
	return transcode.Settings{QP: 32, Threads: threads, FreqGHz: 2.6}
}

// bufferPreroll is the playout pre-roll (in frames) used for the
// delivery-side stall metric: one second at the target frame rate.
const bufferPreroll = 24

// SubSeed derives a deterministic sub-seed from the experiment seed and a
// label, so adding configurations never perturbs existing ones.
func SubSeed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", base, label, rep)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// RunWorkload measures one workload under one named approach.
func RunWorkload(w WorkloadSpec, kind ScenarioKind, a Approach, opts Options) (ApproachResult, error) {
	f, err := Factory(a, opts)
	if err != nil {
		return ApproachResult{}, err
	}
	res, err := RunWorkloadWithFactory(w, kind, string(a), f, opts)
	if err != nil {
		return ApproachResult{}, err
	}
	res.Approach = a
	return res, nil
}

// repOutcome is one repetition's contribution to an ApproachResult: the
// time-weighted package power plus the per-session summaries (overall and
// split by resolution class) and stall percentages, in session order.
type repOutcome struct {
	watts  float64
	sums   []metrics.SessionSummary
	hrSums []metrics.SessionSummary
	lrSums []metrics.SessionSummary
	stalls []float64
}

// runRep executes one fully independent repetition of one workload under
// one controller factory. It owns every piece of mutable state it touches
// (engine, rngs, controllers), deriving determinism solely from
// SubSeed(opts.Seed, w.Name+"|"+label, rep), so concurrent calls with
// distinct (workload, label, rep) tuples are race-free and order-free.
// opts must already be validated.
func runRep(w WorkloadSpec, kind ScenarioKind, label string, factory ControllerFactory, opts Options, rep int) (repOutcome, error) {
	seed := SubSeed(opts.Seed, w.Name+"|"+label, rep)
	rng := rand.New(rand.NewSource(seed))
	eng, err := transcode.NewEngine(opts.Spec, opts.Model, rng.Int63())
	if err != nil {
		return repOutcome{}, err
	}
	resByID := make([]video.Resolution, 0, w.Sessions())
	budget := opts.WarmupFrames + opts.MeasureFrames
	add := func(res video.Resolution, idx int) error {
		src, err := buildSource(kind, res, idx, opts, rng)
		if err != nil {
			return err
		}
		initial := InitialSettings(res)
		ctrl, err := factory(res, initial, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return err
		}
		_, err = eng.AddSession(transcode.SessionConfig{
			Source:        src,
			Controller:    ctrl,
			Initial:       initial,
			BandwidthMbps: core.DefaultBandwidth(res),
			FrameBudget:   budget,
			CollectTrace:  true,
		})
		if err != nil {
			return err
		}
		resByID = append(resByID, res)
		return nil
	}
	for i := 0; i < w.HR; i++ {
		if err := add(video.HR, i); err != nil {
			return repOutcome{}, err
		}
	}
	for i := 0; i < w.LR; i++ {
		if err := add(video.LR, i); err != nil {
			return repOutcome{}, err
		}
	}

	// RunUntilAll keeps every stream transcoding until the slowest one
	// passes its budget, so the measured window below always sees the
	// full workload's contention and power.
	runRes, err := eng.RunUntilAll()
	if err != nil {
		return repOutcome{}, err
	}

	// Per-session measured windows, and the overlapping time interval
	// during which every session was inside its window.
	var out repOutcome
	var windows [][]transcode.Observation
	winStart, winEnd := 0.0, runRes.DurationSec
	for _, sr := range runRes.Sessions {
		win := metrics.Window(sr.Trace, opts.WarmupFrames, budget)
		if len(win) == 0 {
			return repOutcome{}, fmt.Errorf("empty measured window for session %d", sr.ID)
		}
		windows = append(windows, win)
		if t := win[0].Time; t > winStart {
			winStart = t
		}
		if t := win[len(win)-1].Time; t < winEnd {
			winEnd = t
		}
		s := metrics.Summarize(win, transcode.DefaultTargetFPS)
		out.sums = append(out.sums, s)
		if q, err := metrics.BufferedViolations(win, transcode.DefaultTargetFPS, bufferPreroll); err == nil {
			out.stalls = append(out.stalls, q.StallPct)
		}
		if resByID[sr.ID] == video.HR {
			out.hrSums = append(out.hrSums, s)
		} else {
			out.lrSums = append(out.lrSums, s)
		}
	}
	watts, err := metrics.TimeWeightedPower(windows, winStart, winEnd)
	if err != nil {
		// Degenerate overlap (sessions progressing at very different
		// speeds): fall back to the run average.
		watts = runRes.AvgPowerW
	}
	out.watts = watts
	return out, nil
}

// repUnits builds the scheduler units for every repetition of one
// (workload, factory) pair, in repetition order.
func repUnits(w WorkloadSpec, kind ScenarioKind, label string, factory ControllerFactory, opts Options) []Unit[repOutcome] {
	units := make([]Unit[repOutcome], opts.Repetitions)
	for rep := range units {
		rep := rep
		units[rep] = Unit[repOutcome]{
			Label: fmt.Sprintf("%s/%s rep %d", w.Name, label, rep),
			Run: func() (repOutcome, error) {
				return runRep(w, kind, label, factory, opts, rep)
			},
		}
	}
	return units
}

// aggregateReps folds repetition outcomes into an ApproachResult. Outcomes
// must be in repetition order: the fold concatenates the per-session
// summaries exactly as the historical serial loop did, so every mean and
// std-dev is bit-identical regardless of how many workers produced them.
func aggregateReps(outs []repOutcome) ApproachResult {
	var (
		wattsReps []float64
		sums      []metrics.SessionSummary
		hrSums    []metrics.SessionSummary
		lrSums    []metrics.SessionSummary
		stalls    []float64
	)
	for _, o := range outs {
		wattsReps = append(wattsReps, o.watts)
		sums = append(sums, o.sums...)
		hrSums = append(hrSums, o.hrSums...)
		lrSums = append(lrSums, o.lrSums...)
		stalls = append(stalls, o.stalls...)
	}
	mean := metrics.MeanSummary(sums)
	return ApproachResult{
		StallPct:    metrics.Mean(stalls),
		Watts:       metrics.Mean(wattsReps),
		WattsStd:    metrics.StdDev(wattsReps),
		Nth:         mean.AvgThreads,
		FPS:         mean.AvgFPS,
		DeltaPct:    mean.DeltaPct,
		PSNRdB:      mean.AvgPSNRdB,
		BitrateMbps: mean.AvgBitrateMbps,
		FreqGHz:     mean.AvgFreqGHz,
		QP:          mean.AvgQP,
		HR:          aggRes(hrSums),
		LR:          aggRes(lrSums),
	}
}

// RunWorkloadWithFactory measures one workload under a custom controller
// factory (used by the ablations). The label keys the deterministic
// sub-seeding. Repetitions run concurrently on the Options.Workers pool.
func RunWorkloadWithFactory(w WorkloadSpec, kind ScenarioKind, label string, factory ControllerFactory, opts Options) (ApproachResult, error) {
	if err := opts.Validate(); err != nil {
		return ApproachResult{}, err
	}
	if w.Sessions() < 1 {
		return ApproachResult{}, fmt.Errorf("experiments: workload %q has no sessions", w.Name)
	}
	outs, err := RunUnits(opts.Workers, repUnits(w, kind, label, factory, opts), opts.Progress)
	if err != nil {
		return ApproachResult{}, err
	}
	return aggregateReps(outs), nil
}

func aggRes(sums []metrics.SessionSummary) ResolutionAgg {
	if len(sums) == 0 {
		return ResolutionAgg{}
	}
	m := metrics.MeanSummary(sums)
	return ResolutionAgg{
		Sessions: len(sums),
		Nth:      m.AvgThreads,
		FreqGHz:  m.AvgFreqGHz,
		PSNRdB:   m.AvgPSNRdB,
		FPS:      m.AvgFPS,
		DeltaPct: m.DeltaPct,
	}
}

// buildSource creates the stream content for session idx of a workload.
func buildSource(kind ScenarioKind, res video.Resolution, idx int, opts Options, rng *rand.Rand) (video.Source, error) {
	pool := opts.Catalog.ByResolution(res)
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: catalog has no %s sequences", res)
	}
	initial := pool[idx%len(pool)]
	srcRNG := rand.New(rand.NewSource(rng.Int63()))
	switch kind {
	case ScenarioI:
		return video.NewGenerator(initial, srcRNG)
	case ScenarioII:
		return video.ScenarioIIPlaylist(opts.Catalog, initial, 4, srcRNG)
	default:
		return nil, fmt.Errorf("experiments: unknown scenario kind %d", kind)
	}
}

// RunScenario measures every workload under every approach. The full
// (workload x approach x repetition) grid fans out over one shared worker
// pool, so wide scenarios saturate every core instead of draining one
// workload at a time; aggregation consumes outcomes in (workload,
// approach, repetition) order, making the results bit-identical to
// running each workload serially.
func RunScenario(workloads []WorkloadSpec, kind ScenarioKind, opts Options) ([]WorkloadResult, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("experiments: no workloads")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	factories := make(map[Approach]ControllerFactory, len(AllApproaches))
	for _, a := range AllApproaches {
		f, err := Factory(a, opts)
		if err != nil {
			return nil, err
		}
		factories[a] = f
	}
	var units []Unit[repOutcome]
	for _, w := range workloads {
		if w.Sessions() < 1 {
			return nil, fmt.Errorf("experiments: workload %q has no sessions", w.Name)
		}
		for _, a := range AllApproaches {
			units = append(units, repUnits(w, kind, string(a), factories[a], opts)...)
		}
	}
	outs, err := RunUnits(opts.Workers, units, opts.Progress)
	if err != nil {
		return nil, err
	}
	out := make([]WorkloadResult, 0, len(workloads))
	next := 0
	for _, w := range workloads {
		wr := WorkloadResult{Spec: w}
		for _, a := range AllApproaches {
			r := aggregateReps(outs[next : next+opts.Repetitions])
			next += opts.Repetitions
			r.Approach = a
			wr.ByApproach = append(wr.ByApproach, r)
		}
		out = append(out, wr)
	}
	return out, nil
}
