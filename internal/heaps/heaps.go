// Package heaps provides a minimal generic binary min-heap used by the
// serve dispatcher's event and policy indexes. It is generic over the
// element's Less method (no container/heap interface boxing, no stored
// comparison closures), so each instantiation stays a concrete slice
// with direct comparisons.
//
// internal/transcode keeps its own concrete eventHeap: frame events are
// the simulator's hottest path and its heap predates this package; see
// transcode/events.go.
package heaps

// Lesser is the ordering contract: a.Less(b) reports whether a sorts
// strictly before b. Implementations must be total orders (use a field
// like an index as the final tie-break for determinism).
type Lesser[T any] interface {
	Less(T) bool
}

// Heap is a binary min-heap over T's Less ordering. The zero value is
// an empty heap; Peek/Pop require Len() > 0.
type Heap[T Lesser[T]] []T

// Len returns the number of elements.
func (h Heap[T]) Len() int { return len(h) }

// Peek returns the minimum element without removing it.
func (h Heap[T]) Peek() T { return h[0] }

// Push adds an element.
func (h *Heap[T]) Push(v T) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].Less((*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// Pop removes and returns the minimum element.
func (h *Heap[T]) Pop() T {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	var zero T
	old[n] = zero
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h Heap[T]) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h[right].Less(h[left]) {
			child = right
		}
		if !h[child].Less(h[i]) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}
