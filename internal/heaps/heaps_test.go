package heaps

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

// item is a test element with the deterministic tie-break the package
// doc demands: equal keys order by sequence number.
type item struct {
	key float64
	seq int
}

func (a item) Less(b item) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// refHeap adapts []item to container/heap as the trusted reference.
type refHeap []item

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(v interface{}) { *h = append(*h, v.(item)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	v := old[n]
	*h = old[:n]
	return v
}

// TestHeapSortsLikeReference: a long randomized interleaving of pushes
// and pops must agree element-for-element with container/heap over the
// same operation sequence.
func TestHeapSortsLikeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Heap[item]
	ref := &refHeap{}
	seq := 0
	for op := 0; op < 20000; op++ {
		if h.Len() != ref.Len() {
			t.Fatalf("op %d: len %d != reference %d", op, h.Len(), ref.Len())
		}
		if h.Len() > 0 && h.Peek() != (*ref)[0] {
			t.Fatalf("op %d: peek %v != reference %v", op, h.Peek(), (*ref)[0])
		}
		if h.Len() == 0 || rng.Intn(3) != 0 {
			// Duplicate keys are common in event heaps; force collisions.
			v := item{key: float64(rng.Intn(50)), seq: seq}
			seq++
			h.Push(v)
			heap.Push(ref, v)
		} else {
			got := h.Pop()
			want := heap.Pop(ref).(item)
			if got != want {
				t.Fatalf("op %d: pop %v, reference popped %v", op, got, want)
			}
		}
	}
	// Drain: the remaining elements come out in exact sorted order.
	var drained []item
	for h.Len() > 0 {
		drained = append(drained, h.Pop())
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i].Less(drained[j]) }) {
		t.Error("drain order not sorted")
	}
	for i := 1; i < len(drained); i++ {
		if !drained[i-1].Less(drained[i]) {
			t.Fatalf("drain not strictly ordered at %d: %v then %v", i, drained[i-1], drained[i])
		}
	}
}

// TestHeapZeroValue: the zero heap is usable without construction.
func TestHeapZeroValue(t *testing.T) {
	var h Heap[item]
	if h.Len() != 0 {
		t.Fatal("zero heap not empty")
	}
	h.Push(item{key: 2})
	h.Push(item{key: 1})
	if got := h.Pop(); got.key != 1 {
		t.Errorf("min = %v, want key 1", got)
	}
	if got := h.Pop(); got.key != 2 {
		t.Errorf("second = %v, want key 2", got)
	}
	if h.Len() != 0 {
		t.Error("heap not drained")
	}
}

// lazyKey mirrors the dispatcher's lazy-invalidation pattern: heap
// entries are (server, key) snapshots, and an entry is stale when the
// server's current key moved on. Popping must always surface the live
// minimum despite stale entries shadowing it.
type lazyKey struct {
	server int
	key    float64
}

func (a lazyKey) Less(b lazyKey) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.server < b.server
}

// TestHeapLazyInvalidation drives the stale-entry discipline the serve
// dispatcher uses: on every key change a fresh entry is pushed (the old
// one stays), and readers skip entries whose snapshot disagrees with
// the live key table. The surfaced minimum must match a linear scan.
func TestHeapLazyInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const servers = 16
	live := make([]float64, servers)
	var h Heap[lazyKey]
	for s := range live {
		live[s] = rng.Float64() * 100
		h.Push(lazyKey{server: s, key: live[s]})
	}
	popMin := func() int {
		for h.Len() > 0 {
			top := h.Peek()
			if live[top.server] != top.key {
				h.Pop() // stale snapshot
				continue
			}
			return top.server
		}
		t.Fatal("heap exhausted with live entries outstanding")
		return -1
	}
	for round := 0; round < 5000; round++ {
		// Mutate a few keys, pushing fresh entries over the stale ones.
		for m := 0; m < 1+rng.Intn(3); m++ {
			s := rng.Intn(servers)
			live[s] = rng.Float64() * 100
			h.Push(lazyKey{server: s, key: live[s]})
		}
		got := popMin()
		want := 0
		for s := 1; s < servers; s++ {
			if (lazyKey{server: s, key: live[s]}).Less(lazyKey{server: want, key: live[want]}) {
				want = s
			}
		}
		if got != want {
			t.Fatalf("round %d: lazy pop chose server %d (key %g), scan says %d (key %g)",
				round, got, live[got], want, live[want])
		}
	}
}

// FuzzHeap cross-checks push/pop against container/heap over arbitrary
// operation tapes.
func FuzzHeap(f *testing.F) {
	f.Add([]byte{1, 5, 3, 0, 2, 0, 9})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		var h Heap[item]
		ref := &refHeap{}
		for i, b := range tape {
			if b%4 == 0 && h.Len() > 0 {
				got := h.Pop()
				want := heap.Pop(ref).(item)
				if got != want {
					t.Fatalf("pop %v != reference %v", got, want)
				}
				continue
			}
			v := item{key: float64(b / 4), seq: i}
			h.Push(v)
			heap.Push(ref, v)
		}
		for h.Len() > 0 {
			got := h.Pop()
			want := heap.Pop(ref).(item)
			if got != want {
				t.Fatalf("drain %v != reference %v", got, want)
			}
		}
		if ref.Len() != 0 {
			t.Fatal("reference not drained")
		}
	})
}
