package baseline

import (
	"encoding/json"
	"fmt"

	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// HeuristicConfig parametrises the rule-based baseline.
type HeuristicConfig struct {
	// Spec provides the DVFS ladder the governor steps on.
	Spec platform.Spec
	// MaxThreads bounds the thread ladder (the encoder saturation point).
	MaxThreads int
	// QPMin and QPMax bound the QP adjustments (22..37, the same interval
	// the learning managers use).
	QPMin, QPMax int
	// PSNRTargetdB is the quality set-point the QP rule chases when
	// throughput and bandwidth allow (Grellert's quality objective).
	PSNRTargetdB float64
	// FPSHeadroom is the multiplicative margin above the target at which
	// the thread rule releases a thread (hysteresis against oscillation).
	FPSHeadroom float64
	// Period is the decision cadence in frames (6, as for the mono-agent).
	Period int
	// Objectives and constraints.
	TargetFPS     float64
	BandwidthMbps float64
	PowerCapW     float64
}

// DefaultHeuristicConfig returns the configuration used in the
// experiments.
func DefaultHeuristicConfig(res video.Resolution, spec platform.Spec, maxUsefulThreads int) HeuristicConfig {
	bw := 6.0
	if res == video.LR {
		bw = 3.0
	}
	return HeuristicConfig{
		Spec:          spec,
		MaxThreads:    maxUsefulThreads,
		QPMin:         22,
		QPMax:         37,
		PSNRTargetdB:  40.5,
		FPSHeadroom:   1.08,
		Period:        6,
		TargetFPS:     transcode.DefaultTargetFPS,
		BandwidthMbps: bw,
		PowerCapW:     spec.PowerCapW,
	}
}

// Validate reports whether the configuration is usable.
func (c HeuristicConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.MaxThreads < 1 {
		return fmt.Errorf("baseline: max threads %d invalid", c.MaxThreads)
	}
	if c.QPMin < 0 || c.QPMax > 51 || c.QPMin >= c.QPMax {
		return fmt.Errorf("baseline: QP bounds [%d,%d] invalid", c.QPMin, c.QPMax)
	}
	if c.Period < 1 {
		return fmt.Errorf("baseline: period %d invalid", c.Period)
	}
	if c.FPSHeadroom <= 1 {
		return fmt.Errorf("baseline: FPS headroom %g must exceed 1", c.FPSHeadroom)
	}
	if c.TargetFPS <= 0 || c.PowerCapW <= 0 || c.BandwidthMbps < 0 {
		return fmt.Errorf("baseline: objectives invalid")
	}
	return nil
}

// Heuristic is the Grellert-style rule-based controller: once per period
// it reacts to the averaged observations with one step per knob.
//
// Characteristic behaviour (paper SV-B): it drives quality up to its PSNR
// set-point with a *low* number of threads, relies on the *maximum*
// frequency for throughput, and only leaves it when the power cap is hit
// — the opposite strategy to MAMUT's many-threads/low-frequency policy,
// and the reason it burns 10-24% more power.
type Heuristic struct {
	cfg      HeuristicConfig
	settings transcode.Settings

	n          int
	sumFPS     float64
	sumPSNR    float64
	sumPower   float64
	sumBitrate float64

	// lastFPS and grewThreads implement Grellert's effectiveness check:
	// if adding a thread did not improve throughput (parallel efficiency
	// exhausted or the machine is saturated), the step is undone instead
	// of escalating further.
	lastFPS     float64
	grewThreads bool
}

// NewHeuristic builds the rule-based controller.
func NewHeuristic(cfg HeuristicConfig, initial transcode.Settings) (*Heuristic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if initial.Threads > cfg.MaxThreads {
		initial.Threads = cfg.MaxThreads
	}
	return &Heuristic{cfg: cfg, settings: initial}, nil
}

// Name implements transcode.Controller.
func (h *Heuristic) Name() string { return "heuristic" }

// OnFrameStart implements transcode.Controller.
func (h *Heuristic) OnFrameStart(fs transcode.FrameStart) transcode.Settings {
	if fs.FrameIndex%h.cfg.Period != 0 || h.n == 0 {
		return h.settings
	}
	f := float64(h.n)
	fps := h.sumFPS / f
	psnr := h.sumPSNR / f
	power := h.sumPower / f
	bitrate := h.sumBitrate / f
	h.n, h.sumFPS, h.sumPSNR, h.sumPower, h.sumBitrate = 0, 0, 0, 0, 0

	s := h.settings

	// Power governor: back off one rung at/over the cap, otherwise run at
	// the top rung for maximum throughput headroom.
	if power >= h.cfg.PowerCapW {
		s.FreqGHz = h.cfg.Spec.StepDown(s.FreqGHz, true)
	} else {
		s.FreqGHz = h.cfg.Spec.MaxGHz()
	}

	// Thread rule: chase the FPS target one thread at a time, with
	// hysteresis before releasing, and undo a grow step that brought no
	// throughput (the effectiveness check of the original scheme — on a
	// saturated machine more threads only add contention).
	switch {
	case h.grewThreads && fps <= h.lastFPS*1.02 && s.Threads > 1:
		s.Threads--
		h.grewThreads = false
	case fps < h.cfg.TargetFPS && s.Threads < h.cfg.MaxThreads:
		s.Threads++
		h.grewThreads = true
	case fps > h.cfg.TargetFPS*h.cfg.FPSHeadroom && s.Threads > 1:
		s.Threads--
		h.grewThreads = false
	default:
		h.grewThreads = false
	}
	h.lastFPS = fps

	// QP rule: bandwidth violations dominate; then, if throughput is
	// satisfied, chase the quality set-point; if throughput fails with
	// threads exhausted, trade quality for speed.
	switch {
	case h.cfg.BandwidthMbps > 0 && bitrate > h.cfg.BandwidthMbps && s.QP < h.cfg.QPMax:
		s.QP++
	case fps < h.cfg.TargetFPS && h.settings.Threads >= h.cfg.MaxThreads && s.QP < h.cfg.QPMax:
		s.QP++
	case fps >= h.cfg.TargetFPS && psnr < h.cfg.PSNRTargetdB && s.QP > h.cfg.QPMin:
		s.QP--
	}

	h.settings = s
	return s
}

// OnFrameDone implements transcode.Controller.
func (h *Heuristic) OnFrameDone(obs transcode.Observation) {
	h.sumFPS += obs.InstFPS
	h.sumPSNR += obs.PSNRdB
	h.sumPower += obs.PowerW
	h.sumBitrate += obs.BitrateMbps
	h.n++
}

// Settings returns the knob values currently in force.
func (h *Heuristic) Settings() transcode.Settings { return h.settings }

// heuristicState serialises the controller's mutable state for live
// session migration (the config is rebuilt by the destination).
type heuristicState struct {
	Settings    transcode.Settings `json:"settings"`
	N           int                `json:"n"`
	SumFPS      float64            `json:"sum_fps"`
	SumPSNR     float64            `json:"sum_psnr"`
	SumPower    float64            `json:"sum_power"`
	SumBitrate  float64            `json:"sum_bitrate"`
	LastFPS     float64            `json:"last_fps"`
	GrewThreads bool               `json:"grew_threads"`
}

// ControllerState implements transcode.StatefulController: the complete
// decision state (current settings, window accumulators, effectiveness
// check memory), so a migrated session's rule firing is unchanged.
func (h *Heuristic) ControllerState() ([]byte, error) {
	return json.Marshal(heuristicState{
		Settings: h.settings, N: h.n,
		SumFPS: h.sumFPS, SumPSNR: h.sumPSNR,
		SumPower: h.sumPower, SumBitrate: h.sumBitrate,
		LastFPS: h.lastFPS, GrewThreads: h.grewThreads,
	})
}

// RestoreControllerState implements transcode.StatefulController.
func (h *Heuristic) RestoreControllerState(data []byte) error {
	var st heuristicState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("baseline: restore heuristic state: %w", err)
	}
	if err := st.Settings.Validate(); err != nil {
		return fmt.Errorf("baseline: restore heuristic state: %w", err)
	}
	if st.N < 0 {
		return fmt.Errorf("baseline: restore heuristic state: negative window count %d", st.N)
	}
	h.settings = st.Settings
	h.n = st.N
	h.sumFPS, h.sumPSNR, h.sumPower, h.sumBitrate = st.SumFPS, st.SumPSNR, st.SumPower, st.SumBitrate
	h.lastFPS, h.grewThreads = st.LastFPS, st.GrewThreads
	return nil
}

var _ transcode.Controller = (*Heuristic)(nil)
var _ transcode.StatefulController = (*Heuristic)(nil)
