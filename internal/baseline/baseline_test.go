package baseline

import (
	"math/rand"
	"testing"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func monoCfg() MonoConfig {
	return DefaultMonoConfig(video.HR, platform.DefaultSpec(), 12)
}

func heurCfg() HeuristicConfig {
	return DefaultHeuristicConfig(video.HR, platform.DefaultSpec(), 12)
}

var initSettings = transcode.Settings{QP: 32, Threads: 6, FreqGHz: 2.6}

func TestDefaultMonoConfig(t *testing.T) {
	cfg := monoCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// HR: 3 QP x 3 threads x 3 freqs = 27 joint actions.
	if cfg.Actions() != 27 {
		t.Errorf("HR joint actions = %d, want 27", cfg.Actions())
	}
	lr := DefaultMonoConfig(video.LR, platform.DefaultSpec(), 5)
	if lr.Actions() != 27 {
		t.Errorf("LR joint actions = %d, want 27", lr.Actions())
	}
	if cfg.Period != 6 {
		t.Errorf("period = %d, want 6 (paper SV-A)", cfg.Period)
	}
	// Coarser than MAMUT's per-knob sets but covering the same interval.
	if cfg.QPValues[0] != 22 || cfg.QPValues[len(cfg.QPValues)-1] != 37 {
		t.Error("QP subset does not span 22..37")
	}
	if cfg.FreqValues[0] != 1.6 || cfg.FreqValues[len(cfg.FreqValues)-1] != 3.2 {
		t.Error("frequency subset does not span 1.6..3.2")
	}
}

func TestMonoConfigClampsThreadLadder(t *testing.T) {
	cfg := DefaultMonoConfig(video.HR, platform.DefaultSpec(), 6)
	for _, v := range cfg.ThreadValues {
		if v > 6 {
			t.Errorf("thread value %d exceeds saturation 6", v)
		}
	}
	if len(cfg.ThreadValues) < 2 {
		t.Error("clamped ladder too small")
	}
}

func TestMonoConfigValidation(t *testing.T) {
	mut := []func(*MonoConfig){
		func(c *MonoConfig) { c.QPValues = []int{32} },
		func(c *MonoConfig) { c.Period = 0 },
		func(c *MonoConfig) { c.TargetFPS = 0 },
		func(c *MonoConfig) { c.BandwidthMbps = -1 },
	}
	for i, f := range mut {
		cfg := monoCfg()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewMonoAgentValidation(t *testing.T) {
	if _, err := NewMonoAgent(monoCfg(), initSettings, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewMonoAgent(monoCfg(), transcode.Settings{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad initial settings accepted")
	}
	bad := monoCfg()
	bad.Period = 0
	if _, err := NewMonoAgent(bad, initSettings, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMonoAgentDecodeCoversActionSpace(t *testing.T) {
	m, err := NewMonoAgent(monoCfg(), initSettings, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[transcode.Settings]bool{}
	for a := 0; a < m.cfg.Actions(); a++ {
		s := m.decode(a)
		if err := s.Validate(); err != nil {
			t.Fatalf("action %d decodes invalid settings: %v", a, err)
		}
		if seen[s] {
			t.Fatalf("action %d duplicates settings %+v", a, s)
		}
		seen[s] = true
	}
	if len(seen) != 27 {
		t.Errorf("decoded %d distinct settings, want 27", len(seen))
	}
}

func TestMonoAgentActsOnPeriod(t *testing.T) {
	m, err := NewMonoAgent(monoCfg(), initSettings, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0: decision (exploration -> random joint action).
	s0 := m.OnFrameStart(transcode.FrameStart{FrameIndex: 0, Current: initSettings})
	m.OnFrameDone(transcode.Observation{InstFPS: 20, PSNRdB: 36, PowerW: 90, BitrateMbps: 4})
	// Frames 1..5: no decision, settings unchanged.
	for f := 1; f < 6; f++ {
		got := m.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: s0})
		if got != s0 {
			t.Fatalf("frame %d changed settings", f)
		}
		m.OnFrameDone(transcode.Observation{InstFPS: 20, PSNRdB: 36, PowerW: 90, BitrateMbps: 4})
	}
	// Frame 6: decision; the pending update must land.
	m.OnFrameStart(transcode.FrameStart{FrameIndex: 6, Current: s0})
	total := 0
	for s := 0; s < m.learner.Config().States; s++ {
		for a := 0; a < m.learner.Config().Actions; a++ {
			total += m.learner.Visits.Num(s, a)
		}
	}
	if total != 1 {
		t.Errorf("visits after second decision = %d, want 1", total)
	}
}

func TestMonoAgentReachesExploitation(t *testing.T) {
	m, err := NewMonoAgent(monoCfg(), initSettings, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	cur := initSettings
	// Stationary environment: a single state must eventually complete its
	// 27-action exploration. 27 actions x ~7 visits x 6 frames ~ 1.2k
	// frames needed per state; run 20k frames.
	for f := 0; f < 20000; f++ {
		cur = m.OnFrameStart(transcode.FrameStart{FrameIndex: f, Current: cur})
		m.OnFrameDone(transcode.Observation{InstFPS: 25, PSNRdB: 38, PowerW: 90, BitrateMbps: 4})
	}
	if m.Stats().Phases.Exploitation == 0 {
		t.Error("mono-agent never reached exploitation")
	}
	if m.Stats().FirstExploitFrame < 0 {
		t.Error("FirstExploitFrame unset")
	}
}

func TestHeuristicConfigValidation(t *testing.T) {
	if err := heurCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*HeuristicConfig){
		func(c *HeuristicConfig) { c.MaxThreads = 0 },
		func(c *HeuristicConfig) { c.QPMin = 40 }, // min >= max
		func(c *HeuristicConfig) { c.Period = 0 },
		func(c *HeuristicConfig) { c.FPSHeadroom = 1.0 },
		func(c *HeuristicConfig) { c.TargetFPS = 0 },
		func(c *HeuristicConfig) { c.Spec.Sockets = 0 },
	}
	for i, f := range mut {
		cfg := heurCfg()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestHeuristicThreadRule(t *testing.T) {
	h, err := NewHeuristic(heurCfg(), initSettings)
	if err != nil {
		t.Fatal(err)
	}
	// Below target: one more thread per decision.
	feed := func(fps float64) transcode.Settings {
		for i := 0; i < 6; i++ {
			h.OnFrameDone(transcode.Observation{InstFPS: fps, PSNRdB: 30, PowerW: 90, BitrateMbps: 4})
		}
		return h.OnFrameStart(transcode.FrameStart{FrameIndex: h6(h), Current: h.Settings()})
	}
	before := h.Settings().Threads
	s := feed(18)
	if s.Threads != before+1 {
		t.Errorf("threads %d, want %d (FPS below target)", s.Threads, before+1)
	}
	// Far above target: release a thread.
	before = s.Threads
	s = feed(35)
	if s.Threads != before-1 {
		t.Errorf("threads %d, want %d (FPS above headroom)", s.Threads, before-1)
	}
	// In the hysteresis band (24 <= fps <= 24*1.08): unchanged.
	before = s.Threads
	s = feed(25)
	if s.Threads != before {
		t.Errorf("threads %d, want %d (hysteresis band)", s.Threads, before)
	}
}

// h6 returns the next decision frame index for the heuristic (multiples
// of the period, tracked by a counter on the test side).
var h6Counter = map[*Heuristic]int{}

func h6(h *Heuristic) int {
	h6Counter[h] += 6
	return h6Counter[h]
}

func TestHeuristicFrequencyGovernor(t *testing.T) {
	h, err := NewHeuristic(heurCfg(), initSettings)
	if err != nil {
		t.Fatal(err)
	}
	// Under the cap: always jumps to the maximum frequency.
	for i := 0; i < 6; i++ {
		h.OnFrameDone(transcode.Observation{InstFPS: 25, PSNRdB: 38, PowerW: 100, BitrateMbps: 4})
	}
	s := h.OnFrameStart(transcode.FrameStart{FrameIndex: 6, Current: initSettings})
	if s.FreqGHz != 3.2 {
		t.Errorf("freq %g, want 3.2 (greedy governor)", s.FreqGHz)
	}
	// Over the cap: one rung down.
	for i := 0; i < 6; i++ {
		h.OnFrameDone(transcode.Observation{InstFPS: 25, PSNRdB: 38, PowerW: 150, BitrateMbps: 4})
	}
	s = h.OnFrameStart(transcode.FrameStart{FrameIndex: 12, Current: s})
	if s.FreqGHz != 2.9 {
		t.Errorf("freq %g, want 2.9 (cap exceeded)", s.FreqGHz)
	}
}

func TestHeuristicQPRules(t *testing.T) {
	h, err := NewHeuristic(heurCfg(), initSettings)
	if err != nil {
		t.Fatal(err)
	}
	step := func(fps, psnr, mbps float64, frame int) transcode.Settings {
		for i := 0; i < 6; i++ {
			h.OnFrameDone(transcode.Observation{InstFPS: fps, PSNRdB: psnr, PowerW: 90, BitrateMbps: mbps})
		}
		return h.OnFrameStart(transcode.FrameStart{FrameIndex: frame, Current: h.Settings()})
	}
	// Bandwidth violated: QP up (coarser), even though PSNR is low.
	before := h.Settings().QP
	s := step(25, 33, 7.5, 6)
	if s.QP != before+1 {
		t.Errorf("QP %d, want %d (bandwidth violated)", s.QP, before+1)
	}
	// Quality below set-point with throughput fine: QP down (finer).
	before = s.QP
	s = step(28, 36, 4, 12)
	if s.QP != before-1 {
		t.Errorf("QP %d, want %d (chasing PSNR target)", s.QP, before-1)
	}
	// Throughput failing with threads exhausted: QP up.
	h2, _ := NewHeuristic(heurCfg(), transcode.Settings{QP: 32, Threads: 12, FreqGHz: 3.2})
	for i := 0; i < 6; i++ {
		h2.OnFrameDone(transcode.Observation{InstFPS: 18, PSNRdB: 36, PowerW: 90, BitrateMbps: 4})
	}
	s2 := h2.OnFrameStart(transcode.FrameStart{FrameIndex: 6, Current: h2.Settings()})
	if s2.QP != 33 {
		t.Errorf("QP %d, want 33 (sacrifice quality for throughput)", s2.QP)
	}
}

func TestHeuristicClampsInitialThreads(t *testing.T) {
	h, err := NewHeuristic(heurCfg(), transcode.Settings{QP: 32, Threads: 30, FreqGHz: 2.6})
	if err != nil {
		t.Fatal(err)
	}
	if h.Settings().Threads != 12 {
		t.Errorf("initial threads %d, want clamped to 12", h.Settings().Threads)
	}
}

func TestHeuristicNoDecisionWithoutObservations(t *testing.T) {
	h, err := NewHeuristic(heurCfg(), initSettings)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0 is a decision slot but nothing was observed yet.
	if got := h.OnFrameStart(transcode.FrameStart{FrameIndex: 0, Current: initSettings}); got != h.Settings() {
		t.Error("decision taken without observations")
	}
}

// Head-to-head smoke test: on a lightly loaded machine the heuristic ends
// up at max frequency with few threads while consuming more power than a
// static many-threads/low-frequency configuration would - the behavioural
// signature the paper reports in Table I.
func TestHeuristicSignatureInEngine(t *testing.T) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	eng, err := transcode.NewEngine(spec, model, 21)
	if err != nil {
		t.Fatal(err)
	}
	seq := &video.Sequence{
		Name: "sig", Res: video.HR, Frames: 100000, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.4, MeanSceneLen: 90,
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeuristic(heurCfg(), initSettings)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source: src, Controller: h, Initial: initSettings,
		BandwidthMbps: 6, FrameBudget: 2000,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Sessions[0]
	if sr.AvgFreqGHz < 3.0 {
		t.Errorf("heuristic average frequency %.2f, want ~3.2 (greedy governor)", sr.AvgFreqGHz)
	}
	if sr.AvgThreads > 11 {
		t.Errorf("heuristic average threads %.1f, want low (<11)", sr.AvgThreads)
	}
	// It must reach the target on average on an idle machine.
	if sr.AvgFPS < 22 {
		t.Errorf("heuristic average FPS %.1f too low", sr.AvgFPS)
	}
}

func TestMonoAgentInEngineSmoke(t *testing.T) {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	eng, err := transcode.NewEngine(spec, model, 23)
	if err != nil {
		t.Fatal(err)
	}
	seq := &video.Sequence{
		Name: "smoke", Res: video.HR, Frames: 100000, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.4, MeanSceneLen: 90,
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonoAgent(monoCfg(), initSettings, rand.New(rand.NewSource(25)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddSession(transcode.SessionConfig{
		Source: src, Controller: m, Initial: initSettings,
		BandwidthMbps: 6, FrameBudget: 3000, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The mono-agent explores a 100-action space: in 3000 frames it is
	// still mostly exploring. Sanity: settings always decode validly.
	for _, obs := range res.Sessions[0].Trace {
		if err := obs.Settings.Validate(); err != nil {
			t.Fatalf("invalid settings in trace: %v", err)
		}
	}
}
