// Package baseline implements the two comparison controllers of paper SV-A:
//
//   - MonoAgent: the mono-agent Q-learning manager adapted from Iranfar et
//     al. (IEEE TPDS 2018), with one agent over the joint action space. As
//     in the paper, the joint space is coarsened ("a representative subset
//     ... ranging the same interval as the original actions, but with less
//     granularity") because the full cross product is untrainable.
//   - Heuristic: the rule-based manager adapted from Grellert et al.
//     (ICIP 2013): threads chase the FPS target, QP chases quality subject
//     to bandwidth and throughput, DVFS acts as a power-cap governor.
//
// Both act every 6 frames, the cadence of MAMUT's fastest agent (SV-A).
package baseline

import (
	"fmt"
	"math/rand"

	"mamut/internal/core"
	"mamut/internal/platform"
	"mamut/internal/rl"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// MonoConfig parametrises the mono-agent baseline.
type MonoConfig struct {
	// QPValues, ThreadValues and FreqValues are the coarsened per-knob
	// subsets whose cross product forms the joint action set.
	QPValues     []int
	ThreadValues []int
	FreqValues   []float64
	// Period is the decision cadence in frames (6 in the paper).
	Period int
	// Learning constants: the mono-agent has no peers, so only the
	// 1/Num(s,a) learning-rate term applies (beta' = 0).
	Beta               float64
	AlphaTh1, AlphaTh2 float64
	Gamma              float64
	// Objectives and constraints, as for MAMUT.
	TargetFPS     float64
	BandwidthMbps float64
	PowerCapW     float64
}

// DefaultMonoConfig returns the coarsened joint action space used in the
// experiments: 3 QP x 3 threads x 3 frequencies spanning the same
// intervals as MAMUT's per-knob sets. The paper coarsens the joint space
// the same way ("a representative subset ... ranging the same interval as
// the original actions, but with less granularity") because the full
// cross product cannot be trained in a reasonable time: in this
// implementation already 4x4x4 joint actions keep the agent in its noisy
// exploration regime for the whole experiment horizon. Even at 3x3x3 the
// joint space takes several times longer to explore than MAMUT's
// decomposed sets (SV-B reports 15x on the paper's configuration), and
// the coarse grid is what limits the mono-agent's fine-tuning headroom.
func DefaultMonoConfig(res video.Resolution, spec platform.Spec, maxUsefulThreads int) MonoConfig {
	threads := []int{1, 6, 12}
	if res == video.LR {
		threads = []int{1, 3, 5}
	}
	if len(threads) > 0 && threads[len(threads)-1] > maxUsefulThreads {
		// Clamp the ladder to the saturation point if a custom encoder
		// model lowered it.
		var t []int
		for _, v := range threads {
			if v <= maxUsefulThreads {
				t = append(t, v)
			}
		}
		if len(t) < 2 {
			t = []int{1, maxUsefulThreads}
		}
		threads = t
	}
	return MonoConfig{
		QPValues:      []int{22, 29, 37},
		ThreadValues:  threads,
		FreqValues:    []float64{1.6, 2.9, 3.2},
		Period:        6,
		Beta:          0.3,
		AlphaTh1:      0.1,
		AlphaTh2:      0.05,
		Gamma:         0.6,
		TargetFPS:     transcode.DefaultTargetFPS,
		BandwidthMbps: core.DefaultBandwidth(res),
		PowerCapW:     spec.PowerCapW,
	}
}

// Validate reports whether the configuration is usable.
func (c MonoConfig) Validate() error {
	if len(c.QPValues) < 2 || len(c.ThreadValues) < 2 || len(c.FreqValues) < 2 {
		return fmt.Errorf("baseline: mono-agent needs at least 2 values per knob")
	}
	if c.Period < 1 {
		return fmt.Errorf("baseline: period %d invalid", c.Period)
	}
	if c.TargetFPS <= 0 || c.PowerCapW <= 0 || c.BandwidthMbps < 0 {
		return fmt.Errorf("baseline: objectives invalid")
	}
	return nil
}

// Actions returns the joint action count.
func (c MonoConfig) Actions() int {
	return len(c.QPValues) * len(c.ThreadValues) * len(c.FreqValues)
}

// MonoAgent is the mono-agent Q-learning controller.
type MonoAgent struct {
	cfg     MonoConfig
	learner *rl.Learner
	rng     *rand.Rand

	settings transcode.Settings
	curState int

	pendState  int
	pendAction int
	pendN      int
	sumPSNR    float64
	sumPower   float64
	sumBitrate float64
	sumFPS     float64
	hasPending bool

	stats MonoStats
}

// MonoStats is the mono-agent's learning telemetry.
type MonoStats struct {
	// Phases tallies decisions per learning phase.
	Phases core.PhaseCounts
	// FirstExploitFrame is the first frame index decided in exploitation,
	// -1 if never reached.
	FirstExploitFrame int
}

// NewMonoAgent builds the baseline controller.
func NewMonoAgent(cfg MonoConfig, initial transcode.Settings, rng *rand.Rand) (*MonoAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("baseline: nil rng")
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	l, err := rl.NewLearner(rl.Config{
		States:    core.NumStates,
		Actions:   cfg.Actions(),
		Beta:      cfg.Beta,
		BetaPrime: 0,
		AlphaTh1:  cfg.AlphaTh1,
		AlphaTh2:  cfg.AlphaTh2,
		Gamma:     cfg.Gamma,
	})
	if err != nil {
		return nil, err
	}
	return &MonoAgent{
		cfg:      cfg,
		learner:  l,
		rng:      rng,
		settings: initial,
		curState: core.State{PSNR: 2, Power: 0, Bitrate: 1, FPS: 0}.Index(),
		stats:    MonoStats{FirstExploitFrame: -1},
	}, nil
}

// Name implements transcode.Controller.
func (m *MonoAgent) Name() string { return "monoagent" }

// Stats returns the learning telemetry.
func (m *MonoAgent) Stats() MonoStats { return m.stats }

// Learner exposes the underlying tables for tests and analysis.
func (m *MonoAgent) Learner() *rl.Learner { return m.learner }

// decode maps a joint action index to settings.
func (m *MonoAgent) decode(action int) transcode.Settings {
	nf := len(m.cfg.FreqValues)
	nt := len(m.cfg.ThreadValues)
	fi := action % nf
	ti := (action / nf) % nt
	qi := action / (nf * nt)
	return transcode.Settings{
		QP:      m.cfg.QPValues[qi],
		Threads: m.cfg.ThreadValues[ti],
		FreqGHz: m.cfg.FreqValues[fi],
	}
}

// OnFrameStart implements transcode.Controller.
func (m *MonoAgent) OnFrameStart(fs transcode.FrameStart) transcode.Settings {
	if fs.FrameIndex%m.cfg.Period != 0 {
		return m.settings
	}
	m.finalize()

	s := m.curState
	phase := m.learner.PhaseFor(s, 0)
	var action int
	switch phase {
	case rl.Exploration:
		action = rl.RandomAction(m.cfg.Actions(), m.rng)
		m.stats.Phases.Exploration++
	case rl.ExploreExploit:
		action = m.leastVisitedIncomplete(s)
		m.stats.Phases.ExploreExploit++
	default:
		action = m.learner.Q.ArgMax(s)
		m.stats.Phases.Exploitation++
		if m.stats.FirstExploitFrame < 0 {
			m.stats.FirstExploitFrame = fs.FrameIndex
		}
	}
	m.pendState, m.pendAction, m.hasPending = s, action, true
	m.pendN, m.sumPSNR, m.sumPower, m.sumBitrate, m.sumFPS = 0, 0, 0, 0, 0
	m.settings = m.decode(action)
	return m.settings
}

// leastVisitedIncomplete mirrors MAMUT's explore-exploit completion: pick
// the least-visited action whose learning rate is still above the
// exploitation threshold, falling back to greedy when all are done.
func (m *MonoAgent) leastVisitedIncomplete(s int) int {
	best, bestN := -1, 0
	for a := 0; a < m.cfg.Actions(); a++ {
		if m.learner.Alpha(s, a, 0) < m.cfg.AlphaTh2 {
			continue
		}
		n := m.learner.Visits.Num(s, a)
		if best < 0 || n < bestN {
			best, bestN = a, n
		}
	}
	if best < 0 {
		return m.learner.Q.ArgMax(s)
	}
	return best
}

// OnFrameDone implements transcode.Controller.
func (m *MonoAgent) OnFrameDone(obs transcode.Observation) {
	if !m.hasPending {
		return
	}
	m.sumPSNR += obs.PSNRdB
	m.sumPower += obs.PowerW
	m.sumBitrate += obs.BitrateMbps
	m.sumFPS += obs.InstFPS
	m.pendN++
}

// finalize applies the deferred Q-update over the frames since the last
// decision (the whole decision period acts as the observation window).
func (m *MonoAgent) finalize() {
	if !m.hasPending || m.pendN == 0 {
		m.hasPending = false
		return
	}
	f := float64(m.pendN)
	metrics := core.Metrics{
		PSNRdB:      m.sumPSNR / f,
		PowerW:      m.sumPower / f,
		BitrateMbps: m.sumBitrate / f,
		FPS:         m.sumFPS / f,
	}
	next := core.StateOf(metrics, m.cfg.PowerCapW).Index()
	reward := core.TotalReward(metrics, m.cfg.TargetFPS, m.cfg.BandwidthMbps, m.cfg.PowerCapW)
	m.learner.Update(m.pendState, m.pendAction, next, reward, 0)
	m.curState = next
	m.hasPending = false
}

var _ transcode.Controller = (*MonoAgent)(nil)
