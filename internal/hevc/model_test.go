package hevc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mamut/internal/video"
)

func mustEncoder(t *testing.T, res video.Resolution, p Preset) *Encoder {
	t.Helper()
	e, err := NewEncoder(res, p, DefaultModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPresetString(t *testing.T) {
	if Ultrafast.String() != "ultrafast" || Slow.String() != "slow" {
		t.Error("preset names wrong")
	}
	if Preset(9).String() != "Preset(9)" {
		t.Error("unknown preset name wrong")
	}
}

func TestPresetFor(t *testing.T) {
	if PresetFor(video.HR) != Ultrafast {
		t.Error("HR should use ultrafast (paper SV-A)")
	}
	if PresetFor(video.LR) != Slow {
		t.Error("LR should use slow (paper SV-A)")
	}
}

func TestDefaultModelValidates(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateRejectsBadFields(t *testing.T) {
	mut := []func(*Model){
		func(m *Model) { m.CyclesPerPixelUltrafast = 0 },
		func(m *Model) { m.CyclesPerPixelSlow = -1 },
		func(m *Model) { m.PSNRQPSlope = 0 },
		func(m *Model) { m.QPHalving = 0 },
		func(m *Model) { m.WorkQPSlope = -0.1 },
		func(m *Model) { m.MaxUsefulThreadsHR = 0 },
		func(m *Model) { m.BitsNoiseFrac = -1 },
	}
	for i, f := range mut {
		m := DefaultModel()
		f(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewEncoderRejectsBadInput(t *testing.T) {
	if _, err := NewEncoder(video.HR, Preset(42), DefaultModel(), nil); err == nil {
		t.Error("unknown preset accepted")
	}
	bad := DefaultModel()
	bad.QPHalving = 0
	if _, err := NewEncoder(video.HR, Ultrafast, bad, nil); err == nil {
		t.Error("invalid model accepted")
	}
}

// Calibration anchor from Fig. 2: a 1080p ultrafast encode at 3.2 GHz does
// roughly 5 FPS single-threaded and roughly 40 FPS with 10 threads at QP 37.
func TestHRCalibrationAnchors(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	t1, err := e.EncodeSeconds(32, 1, 3.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fps1 := 1 / t1
	if fps1 < 3.0 || fps1 > 7.5 {
		t.Errorf("1-thread 1080p FPS = %.2f, want ~5 (3.0..7.5)", fps1)
	}
	t10, err := e.EncodeSeconds(37, 10, 3.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fps10 := 1 / t10
	if fps10 < 28 || fps10 > 48 {
		t.Errorf("10-thread QP37 1080p FPS = %.2f, want ~40 (28..48)", fps10)
	}
}

// LR slow-preset anchor: about 4 threads near 2.9 GHz should hold ~24 FPS
// (Table I reports LR served with 3.7 threads at 2.8 GHz on average).
func TestLRCalibrationAnchor(t *testing.T) {
	e := mustEncoder(t, video.LR, Slow)
	sec, err := e.EncodeSeconds(35, 4, 2.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fps := 1 / sec
	if fps < 22 || fps > 34 {
		t.Errorf("LR 4-thread 2.9GHz QP35 FPS = %.2f, want 22..34", fps)
	}
}

func TestSpeedupProperties(t *testing.T) {
	for _, res := range []video.Resolution{video.HR, video.LR} {
		e := mustEncoder(t, res, PresetFor(res))
		if got := e.Speedup(1); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s Speedup(1) = %g, want 1", res, got)
		}
		if got := e.Speedup(0); got != 0 {
			t.Errorf("%s Speedup(0) = %g, want 0", res, got)
		}
		prev := 0.0
		for n := 1; n <= 16; n++ {
			s := e.Speedup(n)
			if s < prev-1e-12 {
				t.Fatalf("%s Speedup not monotone at n=%d: %g < %g", res, n, s, prev)
			}
			if s > float64(n) {
				t.Fatalf("%s Speedup(%d)=%g exceeds linear", res, n, s)
			}
			prev = s
		}
	}
}

func TestSpeedupSaturation(t *testing.T) {
	m := DefaultModel()
	hr := mustEncoder(t, video.HR, Ultrafast)
	if hr.Speedup(m.MaxUsefulThreadsHR) != hr.Speedup(m.MaxUsefulThreadsHR+4) {
		t.Error("HR speedup not saturated past the documented limit")
	}
	lr := mustEncoder(t, video.LR, Slow)
	if lr.Speedup(m.MaxUsefulThreadsLR) != lr.Speedup(m.MaxUsefulThreadsLR+4) {
		t.Error("LR speedup not saturated past the documented limit")
	}
	// The saturation points differ by resolution, as in the paper.
	if m.MaxUsefulThreads(video.HR) != 12 || m.MaxUsefulThreads(video.LR) != 5 {
		t.Errorf("saturation points = %d/%d, want 12/5",
			m.MaxUsefulThreads(video.HR), m.MaxUsefulThreads(video.LR))
	}
}

func TestFrameWorkMonotoneInQPAndComplexity(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	w22, _ := e.FrameWork(22, 1.0)
	w37, _ := e.FrameWork(37, 1.0)
	if w22 <= w37 {
		t.Errorf("work at QP22 (%g) should exceed work at QP37 (%g)", w22, w37)
	}
	wLo, _ := e.FrameWork(32, 0.6)
	wHi, _ := e.FrameWork(32, 1.4)
	if wHi <= wLo {
		t.Errorf("work should grow with complexity: %g <= %g", wHi, wLo)
	}
}

func TestFrameWorkErrors(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	if _, err := e.FrameWork(-1, 1); err == nil {
		t.Error("negative QP accepted")
	}
	if _, err := e.FrameWork(52, 1); err == nil {
		t.Error("QP 52 accepted")
	}
	if _, err := e.FrameWork(32, 0); err == nil {
		t.Error("zero complexity accepted")
	}
}

func TestFrameQualityRDShape(t *testing.T) {
	for _, res := range []video.Resolution{video.HR, video.LR} {
		e := mustEncoder(t, res, PresetFor(res))
		prevPSNR, prevBits := math.Inf(1), math.Inf(1)
		for _, qp := range []int{22, 25, 27, 29, 32, 35, 37} {
			psnr, bits, err := e.FrameQuality(qp, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if psnr >= prevPSNR {
				t.Errorf("%s PSNR not decreasing with QP at %d: %g >= %g", res, qp, psnr, prevPSNR)
			}
			if bits >= prevBits {
				t.Errorf("%s bits not decreasing with QP at %d: %g >= %g", res, qp, bits, prevBits)
			}
			prevPSNR, prevBits = psnr, bits
		}
	}
}

// Fig. 2 anchors: 1080p ultrafast spans roughly 32..40 dB and up to
// ~1.2 MB/s over QP 37..22.
func TestHRQualityCalibration(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	p22, b22, _ := e.FrameQuality(22, 1.0)
	p37, b37, _ := e.FrameQuality(37, 1.0)
	if p22 < 38 || p22 > 42 {
		t.Errorf("PSNR at QP22 = %.1f, want ~40", p22)
	}
	if p37 < 30 || p37 > 34 {
		t.Errorf("PSNR at QP37 = %.1f, want ~32", p37)
	}
	// Bandwidth at the 24 FPS delivery rate, in MB/s.
	mbps22 := b22 * 24 / 8 / 1e6
	mbps37 := b37 * 24 / 8 / 1e6
	if mbps22 < 0.8 || mbps22 > 1.6 {
		t.Errorf("bandwidth at QP22 = %.2f MB/s, want ~1.2", mbps22)
	}
	if mbps37 > 0.35 {
		t.Errorf("bandwidth at QP37 = %.2f MB/s, want < 0.35", mbps37)
	}
}

// The slow preset must dominate ultrafast in RD terms at equal QP:
// higher PSNR and (per pixel) fewer bits.
func TestSlowPresetBetterRD(t *testing.T) {
	uf := mustEncoder(t, video.LR, Ultrafast)
	sl := mustEncoder(t, video.LR, Slow)
	for _, qp := range []int{22, 29, 37} {
		pu, bu, _ := uf.FrameQuality(qp, 1.0)
		ps, bs, _ := sl.FrameQuality(qp, 1.0)
		if ps <= pu {
			t.Errorf("QP %d: slow PSNR %g <= ultrafast %g", qp, ps, pu)
		}
		if bs >= bu {
			t.Errorf("QP %d: slow bits %g >= ultrafast %g", qp, bs, bu)
		}
	}
}

func TestFrameQualityNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := NewEncoder(video.HR, Ultrafast, DefaultModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	base, bits0, _ := mustEncoder(t, video.HR, Ultrafast).FrameQuality(32, 1.0)
	varied := false
	for i := 0; i < 50; i++ {
		p, b, _ := e.FrameQuality(32, 1.0)
		if p != base || b != bits0 {
			varied = true
		}
		if math.Abs(p-base) > 2.0 {
			t.Errorf("PSNR noise too large: %g vs %g", p, base)
		}
		if b <= 0 {
			t.Errorf("non-positive bits %g", b)
		}
	}
	if !varied {
		t.Error("noisy encoder produced deterministic output")
	}
}

func TestEncodeSecondsScalesWithFrequency(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	tLow, _ := e.EncodeSeconds(32, 8, 1.6, 1.0)
	tHigh, _ := e.EncodeSeconds(32, 8, 3.2, 1.0)
	ratio := tLow / tHigh
	if math.Abs(ratio-2.0) > 1e-9 {
		t.Errorf("halving frequency should double time, ratio = %g", ratio)
	}
}

func TestEncodeSecondsErrors(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	if _, err := e.EncodeSeconds(32, 0, 3.2, 1); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := e.EncodeSeconds(32, 4, 0, 1); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := e.EncodeSeconds(99, 4, 3.2, 1); err == nil {
		t.Error("bad QP accepted")
	}
}

func TestFrameQualityErrors(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	if _, _, err := e.FrameQuality(-3, 1); err == nil {
		t.Error("bad QP accepted")
	}
	if _, _, err := e.FrameQuality(32, -1); err == nil {
		t.Error("negative complexity accepted")
	}
}

// Property: across the whole valid knob domain, work, PSNR and bits are
// finite and positive, and more threads never slow a frame down.
func TestEncoderPropertyFiniteAndMonotone(t *testing.T) {
	e := mustEncoder(t, video.HR, Ultrafast)
	prop := func(qpRaw, thRaw uint8, cRaw float64) bool {
		qp := 22 + int(qpRaw)%16 // 22..37
		th := 1 + int(thRaw)%12  // 1..12
		c := 0.4 + math.Mod(math.Abs(cRaw), 2.0)
		w, err := e.FrameWork(qp, c)
		if err != nil || !(w > 0) || math.IsInf(w, 0) {
			return false
		}
		p, b, err := e.FrameQuality(qp, c)
		if err != nil || math.IsNaN(p) || !(b > 0) {
			return false
		}
		t1, err := e.EncodeSeconds(qp, th, 2.3, c)
		if err != nil || !(t1 > 0) {
			return false
		}
		if th < 12 {
			t2, err := e.EncodeSeconds(qp, th+1, 2.3, c)
			if err != nil || t2 > t1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
