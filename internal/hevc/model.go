// Package hevc provides an analytic model of an HEVC software encoder in
// the style of Kvazaar, the encoder used by the paper.
//
// The real system measures four outputs per frame — throughput (FPS), PSNR,
// bitrate, and (via the platform) power — as functions of the three knobs
// MAMUT controls (QP, WPP threads, DVFS frequency) plus the video content.
// This package reproduces those response surfaces:
//
//   - encode work (cycles/frame) grows with resolution and content
//     complexity, and shrinks as QP rises (less residual/entropy coding);
//   - WPP parallel speedup follows the wavefront ramp bounded by the number
//     of CTU rows and saturates (12 threads for 1080p, 5 for 832x480,
//     matching paper SV-A);
//   - PSNR falls roughly linearly with QP within the 22-37 working range;
//   - bits/frame halve roughly every 6 QP steps (the classic RD rule).
//
// Constants are calibrated against the operating points published in the
// paper's Fig. 2 and Tables I-II; see DESIGN.md S6 and EXPERIMENTS.md.
package hevc

import (
	"fmt"
	"math"
	"math/rand"

	"mamut/internal/video"
)

// Preset selects the encoder effort level. The paper encodes HR videos with
// Kvazaar's ultrafast preset and LR videos with the slow preset (SV-A).
type Preset int

const (
	// Ultrafast is the lowest-effort preset (used for HR/1080p streams).
	Ultrafast Preset = iota
	// Slow is a high-effort preset (used for LR/832x480 streams).
	Slow
)

// String returns the Kvazaar-style preset name.
func (p Preset) String() string {
	switch p {
	case Ultrafast:
		return "ultrafast"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// PresetFor returns the preset the paper assigns to a resolution class.
func PresetFor(r video.Resolution) Preset {
	if r == video.HR {
		return Ultrafast
	}
	return Slow
}

// QP bounds of the HEVC standard. The MAMUT action set uses a subset.
const (
	MinQP = 0
	MaxQP = 51
)

// Model holds the calibration constants of the encoder response surfaces.
// The zero value is unusable; start from DefaultModel.
type Model struct {
	// CyclesPerPixel is the single-thread encode cost in cycles per luma
	// sample at the reference QP (37) and complexity 1.0, per preset.
	CyclesPerPixelUltrafast float64
	CyclesPerPixelSlow      float64
	// DecodeCyclesPerPixel is the decode-side cost of the transcoder. The
	// paper (SI) cites encoding as ~100x more complex than decoding.
	DecodeCyclesPerPixel float64
	// WorkQPSlope is the relative extra work per QP step below the
	// reference QP 37 (lower QP => more residual data => more work).
	WorkQPSlope float64
	// SyncOverheadPerThread is the per-extra-thread WPP synchronisation
	// loss applied on top of the wavefront ramp.
	SyncOverheadPerThread float64
	// MaxUsefulThreadsHR/LR are the saturation points beyond which extra
	// threads add no throughput (12 and 5 in the paper's platform).
	MaxUsefulThreadsHR int
	MaxUsefulThreadsLR int

	// PSNRAtQP22 and PSNRQPSlope define quality: PSNR = PSNRAtQP22 -
	// PSNRQPSlope*(QP-22), per preset (slow presets achieve higher
	// quality at equal QP).
	PSNRAtQP22Ultrafast float64
	PSNRAtQP22Slow      float64
	PSNRQPSlope         float64
	// PSNRComplexitySlope lowers PSNR on complex frames at equal QP.
	PSNRComplexitySlope float64
	// PSNRNoiseDB is the per-frame measurement jitter (std dev).
	PSNRNoiseDB float64

	// BitsPerPixelAtQP22 anchors the rate model per preset; QPHalving is
	// the number of QP steps that halves the bitrate.
	BitsPerPixelAtQP22Ultrafast float64
	BitsPerPixelAtQP22Slow      float64
	QPHalving                   float64
	// BitsNoiseFrac is the per-frame relative jitter of the frame size.
	BitsNoiseFrac float64
}

// DefaultModel returns constants calibrated to the paper's published
// operating points (see DESIGN.md S6).
func DefaultModel() Model {
	return Model{
		CyclesPerPixelUltrafast: 250,
		CyclesPerPixelSlow:      650,
		DecodeCyclesPerPixel:    3,
		WorkQPSlope:             0.04,
		SyncOverheadPerThread:   0.012,
		MaxUsefulThreadsHR:      12,
		MaxUsefulThreadsLR:      5,

		PSNRAtQP22Ultrafast: 40.0,
		PSNRAtQP22Slow:      43.0,
		PSNRQPSlope:         0.53,
		PSNRComplexitySlope: 1.5,
		PSNRNoiseDB:         0.25,

		BitsPerPixelAtQP22Ultrafast: 0.19,
		BitsPerPixelAtQP22Slow:      0.14,
		QPHalving:                   6.0,
		BitsNoiseFrac:               0.04,
	}
}

// Validate reports whether the model constants are physically sensible.
func (m *Model) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"CyclesPerPixelUltrafast", m.CyclesPerPixelUltrafast},
		{"CyclesPerPixelSlow", m.CyclesPerPixelSlow},
		{"PSNRAtQP22Ultrafast", m.PSNRAtQP22Ultrafast},
		{"PSNRAtQP22Slow", m.PSNRAtQP22Slow},
		{"PSNRQPSlope", m.PSNRQPSlope},
		{"BitsPerPixelAtQP22Ultrafast", m.BitsPerPixelAtQP22Ultrafast},
		{"BitsPerPixelAtQP22Slow", m.BitsPerPixelAtQP22Slow},
		{"QPHalving", m.QPHalving},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("hevc: model field %s must be positive, got %g", p.name, p.v)
		}
	}
	if m.DecodeCyclesPerPixel < 0 || m.WorkQPSlope < 0 || m.SyncOverheadPerThread < 0 ||
		m.PSNRComplexitySlope < 0 || m.PSNRNoiseDB < 0 || m.BitsNoiseFrac < 0 {
		return fmt.Errorf("hevc: model has negative noise/slope field")
	}
	if m.MaxUsefulThreadsHR < 1 || m.MaxUsefulThreadsLR < 1 {
		return fmt.Errorf("hevc: max useful threads must be >= 1")
	}
	return nil
}

// MaxUsefulThreads returns the thread saturation point for a resolution.
func (m *Model) MaxUsefulThreads(r video.Resolution) int {
	if r == video.HR {
		return m.MaxUsefulThreadsHR
	}
	return m.MaxUsefulThreadsLR
}

// Encoder models one encoding (strictly: transcoding) process for a stream
// of a fixed resolution class and preset. A nil rng disables measurement
// noise, which the characterisation sweeps use to get clean curves.
type Encoder struct {
	res    video.Resolution
	preset Preset
	model  Model
	rng    *rand.Rand
}

// NewEncoder builds an encoder model for one stream.
func NewEncoder(res video.Resolution, preset Preset, model Model, rng *rand.Rand) (*Encoder, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if preset != Ultrafast && preset != Slow {
		return nil, fmt.Errorf("hevc: unknown preset %d", int(preset))
	}
	return &Encoder{res: res, preset: preset, model: model, rng: rng}, nil
}

// Res returns the stream's resolution class.
func (e *Encoder) Res() video.Resolution { return e.res }

// Preset returns the encoder preset.
func (e *Encoder) Preset() Preset { return e.preset }

// Model returns the calibration constants in use.
func (e *Encoder) Model() Model { return e.model }

// cyclesPerPixel returns the preset's single-thread encode cost anchor.
func (e *Encoder) cyclesPerPixel() float64 {
	if e.preset == Ultrafast {
		return e.model.CyclesPerPixelUltrafast
	}
	return e.model.CyclesPerPixelSlow
}

// workQPFactor scales encode work by QP: the reference is QP 37 (factor
// 1.0); each QP step below it adds WorkQPSlope of work, and QPs above it
// save a little, floored so work never vanishes.
func (e *Encoder) workQPFactor(qp int) float64 {
	f := 1 + e.model.WorkQPSlope*float64(37-qp)
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// FrameWork returns the total compute work for transcoding one frame, in
// CPU cycles at one thread: decode cost plus QP- and content-dependent
// encode cost.
func (e *Encoder) FrameWork(qp int, complexity float64) (float64, error) {
	if qp < MinQP || qp > MaxQP {
		return 0, fmt.Errorf("hevc: QP %d outside [%d,%d]", qp, MinQP, MaxQP)
	}
	if complexity <= 0 {
		return 0, fmt.Errorf("hevc: non-positive complexity %g", complexity)
	}
	px := float64(e.res.Pixels())
	encode := px * e.cyclesPerPixel() * e.workQPFactor(qp) * complexity
	decode := px * e.model.DecodeCyclesPerPixel
	return encode + decode, nil
}

// Speedup returns the WPP parallel speedup of n threads for this stream:
// the wavefront ramp n*R/(R+n-1) for R CTU rows, degraded by per-thread
// synchronisation overhead, with threads beyond the saturation point
// contributing nothing. Speedup(1) == 1 by construction.
func (e *Encoder) Speedup(n int) float64 {
	if n < 1 {
		return 0
	}
	if maxN := e.model.MaxUsefulThreads(e.res); n > maxN {
		n = maxN
	}
	rows := float64(e.res.CTURows())
	nf := float64(n)
	ramp := nf * rows / (rows + nf - 1)
	sync := 1 + e.model.SyncOverheadPerThread*(nf-1)
	return ramp / sync
}

// FrameQuality returns the output PSNR (dB) and compressed size (bits) of a
// frame encoded at the given QP with the given content complexity. With a
// nil rng the result is deterministic.
func (e *Encoder) FrameQuality(qp int, complexity float64) (psnrDB, bits float64, err error) {
	if qp < MinQP || qp > MaxQP {
		return 0, 0, fmt.Errorf("hevc: QP %d outside [%d,%d]", qp, MinQP, MaxQP)
	}
	if complexity <= 0 {
		return 0, 0, fmt.Errorf("hevc: non-positive complexity %g", complexity)
	}
	anchor := e.model.PSNRAtQP22Ultrafast
	bpp22 := e.model.BitsPerPixelAtQP22Ultrafast
	if e.preset == Slow {
		anchor = e.model.PSNRAtQP22Slow
		bpp22 = e.model.BitsPerPixelAtQP22Slow
	}
	psnrDB = anchor - e.model.PSNRQPSlope*float64(qp-22) - e.model.PSNRComplexitySlope*(complexity-1)
	bpp := bpp22 * math.Exp2(-float64(qp-22)/e.model.QPHalving) * complexity
	bits = bpp * float64(e.res.Pixels())
	if e.rng != nil {
		psnrDB += e.model.PSNRNoiseDB * e.rng.NormFloat64()
		bits *= 1 + e.model.BitsNoiseFrac*e.rng.NormFloat64()
		if bits < 1 {
			bits = 1
		}
	}
	return psnrDB, bits, nil
}

// EncodeSeconds returns the wall time to transcode one frame at the given
// settings on an otherwise idle machine (no contention): work divided by
// the parallel service rate at the given core frequency.
func (e *Encoder) EncodeSeconds(qp, threads int, freqGHz, complexity float64) (float64, error) {
	if threads < 1 {
		return 0, fmt.Errorf("hevc: threads %d < 1", threads)
	}
	if freqGHz <= 0 {
		return 0, fmt.Errorf("hevc: non-positive frequency %g", freqGHz)
	}
	work, err := e.FrameWork(qp, complexity)
	if err != nil {
		return 0, err
	}
	rate := freqGHz * 1e9 * e.Speedup(threads)
	return work / rate, nil
}
