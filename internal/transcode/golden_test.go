package transcode

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
)

// -update regenerates testdata/golden_mix.json from the linear reference
// simulator (reference_test.go), which reproduces the pre-refactor engine
// semantics operation for operation.
// TestReferenceReproducesGoldenExactly holds the reference to the golden
// bit for bit, and TestEngineMatchesGolden holds the event-scheduled
// engine to it within goldenTimeTol. (The committed golden was
// regenerated when the engine's internal rng streams moved to xrand
// splitmix64 sources — O(1) seeding on the fleet admission path; the
// regeneration came from the reference with the same streams, so the
// linear-vs-event-scheduled equivalence the golden pins is unchanged.)
var update = flag.Bool("update", false, "regenerate golden testdata")

const goldenPath = "testdata/golden_mix.json"

// goldenTimeTol is the relative tolerance on time-derived golden fields.
// The event-scheduled engine reduces the same per-frame quantities in a
// different floating-point order than the pre-refactor linear scan
// (lazy virtual-time completion instead of per-event work decrements), so
// event times agree to ~1e-15 relative, not bit-for-bit; content fields
// (frame complexity, PSNR, bits, settings) are reproduced exactly.
const goldenTimeTol = 1e-12

// goldenSpec removes power-meter jitter: the meter rng is drawn per event,
// and the event-scheduled engine coalesces events differently than the
// linear scan, so a noisy meter would make traces incomparable. Encoder
// noise stays on (hevc.DefaultModel): it is drawn from per-session rngs in
// per-session frame order, which any faithful core reproduces exactly.
func goldenSpec() platform.Spec { return quietSpec() }

// goldenSessions defines the seeded multi-session mix of the golden trace:
// staggered arrivals, mixed HR/LR, distinct budgets and operating points,
// enough aggregate demand (42 threads on a 32-CPU server) for contention
// to couple every session.
func goldenSessions(t *testing.T) []SessionConfig {
	t.Helper()
	mk := func(res video.Resolution, seed int64, s Settings, budget int, start float64) SessionConfig {
		return SessionConfig{
			Source:       testSource(t, res, seed),
			Controller:   &Static{S: s},
			Initial:      s,
			FrameBudget:  budget,
			StartAtSec:   start,
			CollectTrace: true,
		}
	}
	return []SessionConfig{
		mk(video.HR, 101, Settings{QP: 32, Threads: 8, FreqGHz: 3.2}, 120, 0),
		mk(video.HR, 102, Settings{QP: 27, Threads: 10, FreqGHz: 2.9}, 90, 0),
		mk(video.LR, 103, Settings{QP: 32, Threads: 4, FreqGHz: 2.6}, 150, 1.5),
		mk(video.LR, 104, Settings{QP: 37, Threads: 2, FreqGHz: 1.6}, 60, 3.0),
		mk(video.HR, 105, Settings{QP: 22, Threads: 12, FreqGHz: 3.2}, 80, 5.0),
		mk(video.LR, 106, Settings{QP: 42, Threads: 6, FreqGHz: 2.3}, 200, 0.5),
	}
}

const goldenSeed = 2026

type goldenSession struct {
	ID         int
	Frames     int
	Violations int
	DynEnergyJ float64
	AvgFPS     float64
	Trace      []Observation
}

type goldenFile struct {
	DurationSec float64
	EnergyJ     float64
	AvgPowerW   float64
	Sessions    []goldenSession
}

func toGolden(res *Result) *goldenFile {
	g := &goldenFile{DurationSec: res.DurationSec, EnergyJ: res.EnergyJ, AvgPowerW: res.AvgPowerW}
	for _, sr := range res.Sessions {
		g.Sessions = append(g.Sessions, goldenSession{
			ID: sr.ID, Frames: sr.Frames, Violations: sr.Violations,
			DynEnergyJ: sr.DynEnergyJ, AvgFPS: sr.AvgFPS, Trace: sr.Trace,
		})
	}
	return g
}

func loadGolden(t *testing.T) *goldenFile {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

func writeGolden(t *testing.T, g *goldenFile) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden testdata written to %s", goldenPath)
}

// relClose reports |a-b| <= tol*max(1,|a|,|b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// compareToGolden checks a run result against the golden file: content
// fields exactly, time-derived fields within timeTol (0 = bit-identical).
func compareToGolden(t *testing.T, g *goldenFile, res *Result, timeTol float64) {
	t.Helper()
	checkF := func(name string, got, want float64) {
		t.Helper()
		if timeTol == 0 {
			if got != want {
				t.Errorf("%s = %v, golden %v", name, got, want)
			}
		} else if !relClose(got, want, timeTol) {
			t.Errorf("%s = %v, golden %v (rel tol %g)", name, got, want, timeTol)
		}
	}
	checkF("DurationSec", res.DurationSec, g.DurationSec)
	checkF("EnergyJ", res.EnergyJ, g.EnergyJ)
	checkF("AvgPowerW", res.AvgPowerW, g.AvgPowerW)
	if len(res.Sessions) != len(g.Sessions) {
		t.Fatalf("sessions = %d, golden %d", len(res.Sessions), len(g.Sessions))
	}
	for i, sr := range res.Sessions {
		gs := g.Sessions[i]
		if sr.ID != gs.ID || sr.Frames != gs.Frames || sr.Violations != gs.Violations {
			t.Errorf("session %d summary = (%d,%d,%d), golden (%d,%d,%d)",
				i, sr.ID, sr.Frames, sr.Violations, gs.ID, gs.Frames, gs.Violations)
		}
		checkF("DynEnergyJ", sr.DynEnergyJ, gs.DynEnergyJ)
		checkF("AvgFPS", sr.AvgFPS, gs.AvgFPS)
		if len(sr.Trace) != len(gs.Trace) {
			t.Fatalf("session %d trace length = %d, golden %d", i, len(sr.Trace), len(gs.Trace))
		}
		for f, obs := range sr.Trace {
			want := gs.Trace[f]
			// Content fields: derived from per-session rng streams and the
			// controller; reproduced bit-identically by any faithful core.
			if obs.SessionID != want.SessionID || obs.FrameIndex != want.FrameIndex ||
				obs.Settings != want.Settings || obs.SceneChange != want.SceneChange ||
				obs.SequenceName != want.SequenceName || obs.OverCap != want.OverCap {
				t.Fatalf("session %d frame %d content fields diverge:\n got %+v\nwant %+v", i, f, obs, want)
			}
			if obs.Complexity != want.Complexity || obs.PSNRdB != want.PSNRdB ||
				obs.BitrateMbps != want.BitrateMbps {
				t.Fatalf("session %d frame %d quality fields diverge:\n got %+v\nwant %+v", i, f, obs, want)
			}
			// Time-derived fields.
			checkF("Time", obs.Time, want.Time)
			checkF("DurationSec", obs.DurationSec, want.DurationSec)
			checkF("FPS", obs.FPS, want.FPS)
			checkF("InstFPS", obs.InstFPS, want.InstFPS)
			checkF("PowerW", obs.PowerW, want.PowerW)
			if t.Failed() {
				t.Fatalf("first divergence at session %d frame %d", i, f)
			}
		}
	}
}

// TestEngineMatchesGolden holds the engine to the committed pre-refactor
// trace: content fields bit-identical, event times within goldenTimeTol.
func TestEngineMatchesGolden(t *testing.T) {
	eng, err := NewEngine(goldenSpec(), hevc.DefaultModel(), goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range goldenSessions(t) {
		if _, err := eng.AddSession(cfg); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		// The golden is regenerated from the linear reference
		// (TestReferenceReproducesGoldenExactly), which must match it with
		// zero tolerance; the event-scheduled engine only matches within
		// goldenTimeTol, so writing its output here would poison the
		// exactness check.
		t.Skip("regenerating golden data from the reference simulator")
	}
	g := loadGolden(t)
	compareToGolden(t, g, res, goldenTimeTol)

	// Guard against knife-edge violation accounting: every windowed FPS
	// estimate must sit clearly away from the 24 FPS target, or the exact
	// Violations comparison above would be FP-luck.
	for _, sr := range res.Sessions {
		for _, obs := range sr.Trace {
			if math.Abs(obs.FPS-DefaultTargetFPS) < 1e-5 {
				t.Fatalf("session %d frame %d FPS %.9f too close to the target for exact violation comparison",
					sr.ID, obs.FrameIndex, obs.FPS)
			}
		}
	}
}
