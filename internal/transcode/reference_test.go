package transcode

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// This file keeps the pre-refactor linear simulation core alive as a test
// oracle. refEngine is an operation-for-operation port of the engine as
// it stood before the event-scheduled rewrite: every event re-runs
// startFrames over all sessions, re-evaluates the whole platform
// (platform.Server.Evaluate), takes the minimum dt by linear scan and
// decrements every active session's remaining work. It is O(n) per event
// and exists only so that:
//
//   - TestReferenceReproducesGoldenExactly proves the port is faithful:
//     it reproduces the committed pre-refactor golden trace bit for bit;
//   - TestEngineMatchesReference holds the O(log n) event-scheduled core
//     to the linear semantics on randomized multi-session mixes.

type refSession struct {
	cfg      SessionConfig
	id       int
	enc      *hevc.Encoder
	settings Settings

	frameIdx   int
	remaining  float64
	frameStart float64
	curFrame   video.Frame
	curPSNR    float64
	curBits    float64

	durations [fpsWindow]float64
	nDur      int

	done bool

	dynEnergyJ float64
	frames     int
	violations int
	sumFPS     float64
	sumPSNR    float64
	sumBitrate float64
	sumThreads float64
	sumFreq    float64
	sumQP      float64
	trace      []Observation
}

type refEngine struct {
	server   *platform.Server
	model    hevc.Model
	sessions []*refSession
	rng      *rand.Rand
	now      float64
	energy   float64
	thermal  *platform.ThermalState
}

func newRefEngine(t *testing.T, spec platform.Spec, model hevc.Model, seed int64) *refEngine {
	t.Helper()
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	srv, err := platform.NewServer(spec, xrand.New(rng.Int63()))
	if err != nil {
		t.Fatal(err)
	}
	e := &refEngine{server: srv, model: model, rng: rng}
	if spec.Thermal.Enabled {
		ts, err := platform.NewThermalState(spec.Thermal)
		if err != nil {
			t.Fatal(err)
		}
		e.thermal = ts
	}
	return e
}

func (e *refEngine) addSession(t *testing.T, cfg SessionConfig) {
	t.Helper()
	if cfg.TargetFPS == 0 {
		cfg.TargetFPS = DefaultTargetFPS
	}
	preset := hevc.PresetFor(cfg.Source.Res())
	if cfg.Preset != nil {
		preset = *cfg.Preset
	}
	enc, err := hevc.NewEncoder(cfg.Source.Res(), preset, e.model, xrand.New(e.rng.Int63()))
	if err != nil {
		t.Fatal(err)
	}
	e.sessions = append(e.sessions, &refSession{
		cfg:      cfg,
		id:       len(e.sessions),
		enc:      enc,
		settings: cfg.Initial,
	})
}

func (e *refEngine) run(untilAll bool) (*Result, error) {
	if len(e.sessions) == 0 {
		return nil, fmt.Errorf("transcode: no sessions")
	}
	totalFrames := 0
	for _, s := range e.sessions {
		totalFrames += s.cfg.FrameBudget
	}
	maxEvents := totalFrames * maxEventsPerFrame

	for events := 0; ; events++ {
		if events > maxEvents {
			return nil, fmt.Errorf("transcode: event budget exhausted (%d events)", maxEvents)
		}
		if untilAll && e.allReachedBudget() {
			break
		}

		active := e.startFrames(untilAll)
		if len(active) == 0 {
			if arrival := e.nextArrival(); !math.IsInf(arrival, 1) {
				idle := e.server.Spec().IdlePowerW
				e.energy += idle * (arrival - e.now)
				if e.thermal != nil {
					e.thermal.Advance(idle, arrival-e.now)
				}
				e.now = arrival
				continue
			}
			break
		}

		loads := make([]platform.SessionLoad, len(active))
		for i, s := range active {
			loads[i] = platform.SessionLoad{
				Threads: s.settings.Threads,
				FreqGHz: s.settings.FreqGHz,
				Speedup: s.enc.Speedup(s.settings.Threads),
			}
		}
		snap, err := e.server.Evaluate(loads)
		if err != nil {
			return nil, fmt.Errorf("transcode: t=%.3f: %w", e.now, err)
		}

		if e.thermal != nil && e.thermal.Throttled() {
			f := e.thermal.ThrottleFactor()
			for i := range snap.Rates {
				snap.Rates[i] *= f
				snap.DynPowerW[i] *= f
			}
			idle := e.server.Spec().IdlePowerW
			snap.PowerIdealW = idle + (snap.PowerIdealW-idle)*f
			snap.PowerW = idle + (snap.PowerW-idle)*f
		}

		dt := math.Inf(1)
		for i, s := range active {
			if t := s.remaining / snap.Rates[i]; t < dt {
				dt = t
			}
		}
		if arrival := e.nextArrival(); arrival-e.now < dt {
			dt = arrival - e.now
			if dt < 0 {
				dt = 0
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return nil, fmt.Errorf("transcode: no progress at t=%.3f", e.now)
		}
		e.now += dt
		e.energy += snap.PowerIdealW * dt
		if e.thermal != nil {
			e.thermal.Advance(snap.PowerIdealW, dt)
		}

		const eps = 1e-9
		for i, s := range active {
			s.remaining -= snap.Rates[i] * dt
			s.dynEnergyJ += snap.DynPowerW[i] * dt
			if s.remaining <= eps*snap.Rates[i] {
				e.completeFrame(s, snap)
			}
		}
	}
	return e.buildResult(), nil
}

func (e *refEngine) allReachedBudget() bool {
	for _, s := range e.sessions {
		if s.frames < s.cfg.FrameBudget {
			return false
		}
	}
	return true
}

func (e *refEngine) startFrames(untilAll bool) []*refSession {
	var active []*refSession
	for _, s := range e.sessions {
		if s.done || s.cfg.StartAtSec > e.now {
			continue
		}
		if s.remaining <= 0 {
			if !untilAll && s.frames >= s.cfg.FrameBudget {
				s.done = true
				continue
			}
			e.beginFrame(s)
		}
		active = append(active, s)
	}
	return active
}

func (e *refEngine) nextArrival() float64 {
	next := math.Inf(1)
	for _, s := range e.sessions {
		if !s.done && s.cfg.StartAtSec > e.now && s.cfg.StartAtSec < next {
			next = s.cfg.StartAtSec
		}
	}
	return next
}

func (e *refEngine) beginFrame(s *refSession) {
	proposed := s.cfg.Controller.OnFrameStart(FrameStart{
		SessionID:  s.id,
		FrameIndex: s.frameIdx,
		Time:       e.now,
		Current:    s.settings,
	})
	s.settings = e.sanitize(proposed)

	s.curFrame = s.cfg.Source.Next()
	work, err := s.enc.FrameWork(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		panic(err)
	}
	s.remaining = work
	s.frameStart = e.now
	psnr, bits, err := s.enc.FrameQuality(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		panic(err)
	}
	s.curPSNR, s.curBits = psnr, bits
}

func (e *refEngine) sanitize(p Settings) Settings {
	if p.QP < hevc.MinQP {
		p.QP = hevc.MinQP
	}
	if p.QP > hevc.MaxQP {
		p.QP = hevc.MaxQP
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	if max := e.server.Spec().LogicalCPUs(); p.Threads > max {
		p.Threads = max
	}
	p.FreqGHz = e.server.Spec().Nearest(p.FreqGHz)
	return p
}

func (e *refEngine) completeFrame(s *refSession, snap platform.Snapshot) {
	dur := e.now - s.frameStart
	if dur <= 0 {
		dur = 1e-9
	}
	s.durations[s.nDur%fpsWindow] = dur
	s.nDur++

	n := s.nDur
	if n > fpsWindow {
		n = fpsWindow
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.durations[i]
	}
	fps := float64(n) / sum

	obs := Observation{
		SessionID:    s.id,
		FrameIndex:   s.frameIdx,
		Time:         e.now,
		DurationSec:  dur,
		FPS:          fps,
		InstFPS:      1 / dur,
		PSNRdB:       s.curPSNR,
		BitrateMbps:  s.curBits * s.cfg.TargetFPS / 1e6,
		PowerW:       snap.PowerW,
		OverCap:      e.server.OverCap(snap.PowerW),
		Settings:     s.settings,
		Complexity:   s.curFrame.Complexity,
		SceneChange:  s.curFrame.SceneChange,
		SequenceName: s.cfg.Source.Sequence().Name,
	}

	s.frames++
	s.frameIdx++
	s.remaining = 0
	if fps < s.cfg.TargetFPS {
		s.violations++
	}
	s.sumFPS += fps
	s.sumPSNR += s.curPSNR
	s.sumBitrate += obs.BitrateMbps
	s.sumThreads += float64(s.settings.Threads)
	s.sumFreq += s.settings.FreqGHz
	s.sumQP += float64(s.settings.QP)
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, obs)
	}
	s.cfg.Controller.OnFrameDone(obs)
}

func (e *refEngine) buildResult() *Result {
	res := &Result{DurationSec: e.now, EnergyJ: e.energy}
	if e.now > 0 {
		res.AvgPowerW = e.energy / e.now
	}
	if e.thermal != nil {
		res.TempMaxC = e.thermal.MaxC()
		res.TempAvgC = e.thermal.AvgC()
	}
	for _, s := range e.sessions {
		sr := SessionResult{
			ID:         s.id,
			Name:       s.cfg.Controller.Name(),
			Res:        s.cfg.Source.Res(),
			Frames:     s.frames,
			Violations: s.violations,
			DynEnergyJ: s.dynEnergyJ,
			Trace:      s.trace,
		}
		if s.frames > 0 {
			f := float64(s.frames)
			sr.ViolationPct = 100 * float64(s.violations) / f
			sr.AvgFPS = s.sumFPS / f
			sr.AvgPSNRdB = s.sumPSNR / f
			sr.AvgBitrateMbps = s.sumBitrate / f
			sr.AvgThreads = s.sumThreads / f
			sr.AvgFreqGHz = s.sumFreq / f
			sr.AvgQP = s.sumQP / f
		}
		res.Sessions = append(res.Sessions, sr)
	}
	return res
}

// TestReferenceReproducesGoldenExactly holds the reference — an
// operation-for-operation port of the pre-refactor linear engine — to
// the committed golden trace with zero tolerance on every field. With
// -update it regenerates the golden from the reference (the golden must
// come from the reference, not the event-scheduled engine, precisely so
// this zero-tolerance comparison stays meaningful).
func TestReferenceReproducesGoldenExactly(t *testing.T) {
	ref := newRefEngine(t, goldenSpec(), hevc.DefaultModel(), goldenSeed)
	for _, cfg := range goldenSessions(t) {
		ref.addSession(t, cfg)
	}
	res, err := ref.run(false)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		writeGolden(t, toGolden(res))
		return
	}
	compareToGolden(t, loadGolden(t), res, 0)
}

// randomMix builds a seeded random multi-session workload: 4-9 sessions,
// mixed HR/LR, random static operating points, staggered arrivals and
// distinct budgets.
func randomMix(t *testing.T, rng *rand.Rand, spec platform.Spec) []SessionConfig {
	t.Helper()
	n := 4 + rng.Intn(6)
	freqs := spec.Frequencies()
	cfgs := make([]SessionConfig, 0, n)
	for i := 0; i < n; i++ {
		res := video.LR
		if rng.Float64() < 0.4 {
			res = video.HR
		}
		set := Settings{
			QP:      22 + rng.Intn(21),
			Threads: 1 + rng.Intn(12),
			FreqGHz: freqs[rng.Intn(len(freqs))],
		}
		cfgs = append(cfgs, SessionConfig{
			Source:       testSource(t, res, rng.Int63()),
			Controller:   &Static{S: set},
			Initial:      set,
			FrameBudget:  20 + rng.Intn(100),
			StartAtSec:   float64(rng.Intn(9)) * 0.9,
			CollectTrace: true,
		})
	}
	return cfgs
}

// TestEngineMatchesReference holds the event-scheduled engine to the
// linear reference semantics across randomized mixes, in both stop-mode
// and until-all mode: identical frame counts and completion orders, exact
// content fields, event times within goldenTimeTol.
func TestEngineMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, untilAll := range []bool{false, true} {
			mixRng := rand.New(rand.NewSource(900 + seed))
			cfgs := randomMix(t, mixRng, quietSpec())
			// Rebuild sources per engine: a video.Source is stateful.
			mixRng2 := rand.New(rand.NewSource(900 + seed))
			cfgs2 := randomMix(t, mixRng2, quietSpec())

			eng, err := NewEngine(quietSpec(), hevc.DefaultModel(), 7000+seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := eng.AddSession(cfg); err != nil {
					t.Fatal(err)
				}
			}
			ref := newRefEngine(t, quietSpec(), hevc.DefaultModel(), 7000+seed)
			for _, cfg := range cfgs2 {
				ref.addSession(t, cfg)
			}

			var got, want *Result
			if untilAll {
				got, err = eng.RunUntilAll()
			} else {
				got, err = eng.Run()
			}
			if err != nil {
				t.Fatal(err)
			}
			want, err = ref.run(untilAll)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(fmt.Sprintf("seed%d_untilAll%v", seed, untilAll), func(t *testing.T) {
				compareToGolden(t, toGolden(want), got, goldenTimeTol)
			})
		}
	}
}
