package transcode

import (
	"math"
	"testing"

	"mamut/internal/video"
)

func TestSessionArrivalJoinsLate(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 61)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 10, FreqGHz: 3.2}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 62), Controller: &Static{S: set},
		Initial: set, FrameBudget: 200, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	// The second user arrives 3 simulated seconds in.
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 63), Controller: &Static{S: set},
		Initial: set, FrameBudget: 100, StartAtSec: 3.0, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	late := res.Sessions[1].Trace
	if len(late) != 100 {
		t.Fatalf("late session frames = %d", len(late))
	}
	if first := late[0].Time; first < 3.0 {
		t.Errorf("late session completed a frame at %.2fs, before its arrival", first)
	}
	// The early session must slow down once the second one arrives: its
	// last frames take longer than its first ones (12 extra threads
	// oversubscribe a 10-thread-wide speedup budget... both at 10
	// threads: demand 2 x 5.9 > capacity at 20 threads = 17).
	early := res.Sessions[0].Trace
	if early[5].DurationSec >= early[150].DurationSec {
		t.Errorf("contention after arrival did not slow the first session: %.4f vs %.4f",
			early[5].DurationSec, early[150].DurationSec)
	}
}

func TestSessionArrivalOnIdleServer(t *testing.T) {
	// The only session arrives at t=10: the engine must idle forward and
	// account idle energy for the gap.
	eng, err := NewEngine(quietSpec(), quietModel(), 64)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 4, FreqGHz: 2.6}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 65), Controller: &Static{S: set},
		Initial: set, FrameBudget: 24, StartAtSec: 10, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[0].Trace[0].Time < 10 {
		t.Error("session ran before its arrival")
	}
	// Energy must include the idle lead-in: at least idle power * 10 s.
	if res.EnergyJ < quietSpec().IdlePowerW*10 {
		t.Errorf("energy %.1f J misses the idle lead-in", res.EnergyJ)
	}
}

func TestNegativeStartRejected(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 66)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 4, FreqGHz: 2.6}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 67), Controller: &Static{S: set},
		Initial: set, FrameBudget: 10, StartAtSec: -1,
	}); err == nil {
		t.Error("negative start time accepted")
	}
}

func TestDynEnergyAttribution(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 68)
	if err != nil {
		t.Fatal(err)
	}
	// Two sessions with very different footprints: the big one must be
	// charged more dynamic energy, and the parts must sum to the total
	// minus idle.
	big := Settings{QP: 22, Threads: 12, FreqGHz: 3.2}
	small := Settings{QP: 37, Threads: 2, FreqGHz: 1.6}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 69), Controller: &Static{S: big},
		Initial: big, FrameBudget: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 70), Controller: &Static{S: small},
		Initial: small, FrameBudget: 100,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := res.Sessions[0].DynEnergyJ, res.Sessions[1].DynEnergyJ
	if e0 <= e1 {
		t.Errorf("big session charged %.1f J, small %.1f J", e0, e1)
	}
	idleE := quietSpec().IdlePowerW * res.DurationSec
	if diff := math.Abs((e0 + e1 + idleE) - res.EnergyJ); diff > res.EnergyJ*0.01 {
		t.Errorf("energy attribution gap %.2f J (total %.1f)", diff, res.EnergyJ)
	}
}
