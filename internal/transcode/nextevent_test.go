package transcode

import (
	"math"
	"reflect"
	"testing"

	"mamut/internal/video"
)

// countingController wraps Static and counts completed frames, so tests
// can observe event processing without waiting for a final result.
type countingController struct {
	Static
	done int
}

func (c *countingController) OnFrameDone(Observation) { c.done++ }

// TestNextEventTime pins the contract the fleet dispatcher relies on:
// +Inf for an idle engine, the exact arrival time for a scheduled
// session, and the exact instant the next frame completion fires —
// advancing to just before it processes nothing, advancing to it
// processes the event.
func TestNextEventTime(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 31)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.NextEventTime(); !math.IsInf(got, 1) {
		t.Fatalf("empty engine NextEventTime = %g, want +Inf", got)
	}

	set := Settings{QP: 32, Threads: 6, FreqGHz: 2.9}
	ctrl := &countingController{Static: Static{S: set}}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 32), Controller: ctrl,
		Initial: set, FrameBudget: 5, StartAtSec: 2.0,
	}); err != nil {
		t.Fatal(err)
	}
	if got := eng.NextEventTime(); got != 2.0 {
		t.Fatalf("pending arrival NextEventTime = %g, want 2.0", got)
	}

	// Park well before the arrival: still nothing to process.
	if err := eng.AdvanceTo(1.5); err != nil {
		t.Fatal(err)
	}
	if got := eng.NextEventTime(); got != 2.0 {
		t.Fatalf("after park, NextEventTime = %g, want 2.0", got)
	}

	// Process the arrival; the next event is the first frame completion.
	if err := eng.AdvanceTo(2.0); err != nil {
		t.Fatal(err)
	}
	next := eng.NextEventTime()
	if math.IsInf(next, 1) || next <= 2.0 {
		t.Fatalf("first completion NextEventTime = %g, want finite > 2.0", next)
	}
	if err := eng.AdvanceTo(next * (1 - 1e-12)); err != nil {
		t.Fatal(err)
	}
	if ctrl.done != 0 {
		t.Fatalf("advancing short of the event completed %d frames", ctrl.done)
	}
	if got := eng.NextEventTime(); got != next {
		t.Fatalf("NextEventTime moved %g -> %g without an event", next, got)
	}
	if err := eng.AdvanceTo(next); err != nil {
		t.Fatal(err)
	}
	if ctrl.done != 1 {
		t.Fatalf("advancing to the event completed %d frames, want 1", ctrl.done)
	}

	// Drain: once every session departed, the engine is idle again.
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.NextEventTime(); !math.IsInf(got, 1) {
		t.Fatalf("drained engine NextEventTime = %g, want +Inf", got)
	}
}

// TestParkInvarianceExact: slicing a run into arbitrary AdvanceTo steps
// must not change the result AT ALL — integration is settled lazily at
// events, so park boundaries cannot split the energy/thermal/virtual
// clock FP reductions. This exactness is what lets the serve dispatcher
// skip idle engines and still reproduce the all-server sweep
// byte-identically.
func TestParkInvarianceExact(t *testing.T) {
	spec := quietSpec()
	spec.Thermal = DefaultThermalForTest()
	build := func() *Engine {
		eng, err := NewEngine(spec, quietModel(), 85)
		if err != nil {
			t.Fatal(err)
		}
		sets := []Settings{
			{QP: 32, Threads: 10, FreqGHz: 3.2},
			{QP: 27, Threads: 8, FreqGHz: 2.6},
			{QP: 37, Threads: 4, FreqGHz: 2.3},
		}
		for i, set := range sets {
			if _, err := eng.AddSession(SessionConfig{
				Source: testSource(t, video.HR, int64(86+i)), Controller: &Static{S: set},
				Initial: set, FrameBudget: 100, StartAtSec: float64(i) * 1.3,
				CollectTrace: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	whole := build()
	want, err := whole.Run()
	if err != nil {
		t.Fatal(err)
	}

	chunked := build()
	for step := 0.3; step < want.DurationSec; step += 0.3 {
		if err := chunked.AdvanceTo(step); err != nil {
			t.Fatal(err)
		}
	}
	got, err := chunked.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("chunked AdvanceTo run differs from the continuous run")
	}
}
