// Package transcode simulates a multi-user real-time transcoding server in
// virtual time.
//
// The engine runs any number of concurrent transcoding sessions, each
// encoding its own video stream with its own knob settings, on one shared
// platform model. Sessions couple through the platform: core contention
// slows everybody, and the package power every controller observes is a
// global quantity. The simulation is event-driven processor sharing:
// between frame completions every session's service rate is constant, so
// event times are exact, the simulation is deterministic for a fixed seed,
// and thousands of simulated seconds cost milliseconds of wall time.
package transcode

import (
	"encoding/json"
	"fmt"
)

// Settings are the three knobs MAMUT manages per session (paper SIII-A).
type Settings struct {
	// QP is the HEVC quantization parameter.
	QP int
	// Threads is the number of WPP encoding threads.
	Threads int
	// FreqGHz is the per-core DVFS frequency of the session's cores.
	FreqGHz float64
}

// Validate performs basic sanity checks; full validation (ladder rungs,
// saturation limits) happens in the platform and encoder models.
func (s Settings) Validate() error {
	if s.QP < 0 || s.QP > 51 {
		return fmt.Errorf("transcode: QP %d outside [0,51]", s.QP)
	}
	if s.Threads < 1 {
		return fmt.Errorf("transcode: threads %d < 1", s.Threads)
	}
	if s.FreqGHz <= 0 {
		return fmt.Errorf("transcode: frequency %g <= 0", s.FreqGHz)
	}
	return nil
}

// Observation is what a session's controller sees at the end of a frame:
// exactly the four observables of paper SIII-C plus bookkeeping.
type Observation struct {
	// SessionID identifies the session within the engine.
	SessionID int
	// FrameIndex is the per-session frame counter, starting at 0.
	FrameIndex int
	// Time is the simulated completion time in seconds.
	Time float64
	// DurationSec is how long this frame took to encode.
	DurationSec float64
	// FPS is the windowed throughput estimate the controller states are
	// built from; InstFPS is the single-frame reciprocal duration.
	FPS     float64
	InstFPS float64
	// PSNRdB is the frame's output quality.
	PSNRdB float64
	// BitrateMbps is the delivery bitrate: frame bits at the target frame
	// rate, in megabits per second.
	BitrateMbps float64
	// PowerW is the server package power reading at completion time; this
	// is global, not per-session.
	PowerW float64
	// OverCap reports PowerW measured at or above the server's power cap.
	OverCap bool
	// Settings are the knob values the frame was encoded with.
	Settings Settings
	// Complexity and SceneChange describe the frame content.
	Complexity  float64
	SceneChange bool
	// SequenceName is the catalog entry the frame came from.
	SequenceName string
}

// FrameStart is the information available to a controller right before a
// frame begins (paper SIV-A: agents act "right before a frame starts").
type FrameStart struct {
	// SessionID identifies the session.
	SessionID int
	// FrameIndex is the index of the frame about to be encoded.
	FrameIndex int
	// Time is the current simulated time.
	Time float64
	// Current are the settings in force.
	Current Settings
}

// Controller decides the knob settings of one session. Implementations:
// internal/core (MAMUT), internal/baseline (mono-agent QL and heuristic),
// and Static below.
type Controller interface {
	// Name returns a short identifier used in reports.
	Name() string
	// OnFrameStart returns the settings to use for the frame about to be
	// encoded. Returning the current settings keeps them unchanged.
	OnFrameStart(fs FrameStart) Settings
	// OnFrameDone delivers the end-of-frame observation.
	OnFrameDone(obs Observation)
}

// Static is a Controller that never changes its settings. The Fig. 2
// characterisation sweeps use it to measure the raw response surfaces.
type Static struct {
	S Settings
}

// Name implements Controller.
func (s *Static) Name() string { return "static" }

// OnFrameStart implements Controller.
func (s *Static) OnFrameStart(FrameStart) Settings { return s.S }

// OnFrameDone implements Controller.
func (s *Static) OnFrameDone(Observation) {}

// ControllerState implements StatefulController (migrate.go): a static
// controller's whole state is its settings.
func (s *Static) ControllerState() ([]byte, error) { return json.Marshal(s.S) }

// RestoreControllerState implements StatefulController.
func (s *Static) RestoreControllerState(data []byte) error {
	var set Settings
	if err := json.Unmarshal(data, &set); err != nil {
		return fmt.Errorf("transcode: restore static controller: %w", err)
	}
	if err := set.Validate(); err != nil {
		return fmt.Errorf("transcode: restore static controller: %w", err)
	}
	s.S = set
	return nil
}

var _ Controller = (*Static)(nil)
