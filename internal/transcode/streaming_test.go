package transcode

import (
	"reflect"
	"testing"

	"mamut/internal/video"
)

// streamEngine builds a three-session engine for the streaming-hook
// tests.
func streamEngine(t *testing.T, collectTrace bool) *Engine {
	t.Helper()
	eng, err := NewEngine(quietSpec(), quietModel(), 91)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 6, FreqGHz: 2.9}
	for i, budget := range []int{30, 60, 90} {
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, int64(92+i)), Controller: &Static{S: set},
			Initial: set, FrameBudget: budget, CollectTrace: collectTrace,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestSessionEndResult: the result delivered at the departure instant
// must equal the session's entry in the end-of-run Result bit for bit —
// the property that lets a dispatcher fold sessions at departure and
// drop them.
func TestSessionEndResult(t *testing.T) {
	eng := streamEngine(t, true)
	atDepart := map[int]SessionResult{}
	eng.OnSessionEnd(func(end SessionEnd) { atDepart[end.SessionID] = end.Result })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(atDepart) != 3 {
		t.Fatalf("hook delivered %d results, want 3", len(atDepart))
	}
	for id, sr := range res.Sessions {
		if !reflect.DeepEqual(atDepart[id], sr) {
			t.Errorf("session %d: depart-time result differs from end-of-run result", id)
		}
	}
}

// TestOnFrameStreamsEveryObservation: the per-frame hook must see the
// exact observation sequence the retained traces record, in emission
// order.
func TestOnFrameStreamsEveryObservation(t *testing.T) {
	eng := streamEngine(t, true)
	var streamed []Observation
	eng.OnFrame(func(obs Observation) { streamed = append(streamed, obs) })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sr := range res.Sessions {
		total += len(sr.Trace)
	}
	if len(streamed) != total {
		t.Fatalf("streamed %d observations, traces hold %d", len(streamed), total)
	}
	// Emission times are non-decreasing — the property the streaming
	// power integrator relies on.
	for i := 1; i < len(streamed); i++ {
		if streamed[i].Time < streamed[i-1].Time {
			t.Fatalf("observation %d at t=%g emitted after t=%g", i, streamed[i].Time, streamed[i-1].Time)
		}
	}
	// Per-session, the streamed subsequence equals the retained trace.
	perSession := map[int][]Observation{}
	for _, obs := range streamed {
		perSession[obs.SessionID] = append(perSession[obs.SessionID], obs)
	}
	for id, sr := range res.Sessions {
		if !reflect.DeepEqual(perSession[id], sr.Trace) {
			t.Errorf("session %d: streamed observations differ from retained trace", id)
		}
	}
}

// TestDiscardDeparted: with discard enabled the end-of-run result omits
// departed sessions, but the hook already delivered each result — and
// those results match a no-discard run exactly.
func TestDiscardDeparted(t *testing.T) {
	ref := streamEngine(t, true)
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	eng := streamEngine(t, true)
	eng.DiscardDeparted(true)
	got := map[int]SessionResult{}
	eng.OnSessionEnd(func(end SessionEnd) { got[end.SessionID] = end.Result })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 0 {
		t.Errorf("discard run retained %d session results", len(res.Sessions))
	}
	if len(got) != len(want.Sessions) {
		t.Fatalf("hook delivered %d results, want %d", len(got), len(want.Sessions))
	}
	for id, sr := range want.Sessions {
		if !reflect.DeepEqual(got[id], sr) {
			t.Errorf("session %d: discard-run result differs from retaining run", id)
		}
	}
	// Fleet aggregates are unaffected by discarding.
	if res.EnergyJ != want.EnergyJ || res.DurationSec != want.DurationSec {
		t.Errorf("discard changed engine aggregates: energy %g vs %g, duration %g vs %g",
			res.EnergyJ, want.EnergyJ, res.DurationSec, want.DurationSec)
	}
}
