package transcode

import (
	"math"
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

// thermalSpec returns a platform whose thermal model throttles quickly
// under full load.
func thermalSpec() platform.Spec {
	s := quietSpec()
	s.Thermal = platform.DefaultThermalSpec()
	s.Thermal.TauSec = 5 // fast thermal response for a short test
	return s
}

func TestEngineThermalTrackingReported(t *testing.T) {
	eng, err := NewEngine(thermalSpec(), quietModel(), 41)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 10, FreqGHz: 3.2}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 42), Controller: &Static{S: set},
		Initial: set, FrameBudget: 600,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	amb := thermalSpec().Thermal.AmbientC
	if res.TempMaxC <= amb {
		t.Errorf("max temp %.1fC not above ambient %.1fC", res.TempMaxC, amb)
	}
	if res.TempAvgC <= amb || res.TempAvgC > res.TempMaxC {
		t.Errorf("avg temp %.1fC outside (ambient, max]", res.TempAvgC)
	}
}

func TestEngineThermalThrottlingSlowsHotWorkload(t *testing.T) {
	// A saturating workload heats the package past the throttle point;
	// with throttling the same workload takes longer and caps cooler
	// than the un-throttled steady state would imply.
	run := func(spec platform.Spec) *Result {
		eng, err := NewEngine(spec, quietModel(), 43)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 22, Threads: 12, FreqGHz: 3.2}
		for i := 0; i < 6; i++ {
			if _, err := eng.AddSession(SessionConfig{
				Source: testSource(t, video.HR, int64(44+i)), Controller: &Static{S: set},
				Initial: set, FrameBudget: 1500,
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hot := thermalSpec()
	hot.Thermal.ThrottleC = 60 // low threshold: throttling will engage
	cold := quietSpec()        // thermal disabled

	throttled := run(hot)
	free := run(cold)
	if throttled.DurationSec <= free.DurationSec {
		t.Errorf("throttled run not slower: %.1fs vs %.1fs", throttled.DurationSec, free.DurationSec)
	}
	if free.TempMaxC != 0 {
		t.Errorf("disabled thermal reported temperature %.1f", free.TempMaxC)
	}
	// Throttling must bound the temperature near the threshold: the
	// package cannot keep heating at full power once throttled.
	if throttled.TempMaxC > hot.Thermal.ThrottleC+10 {
		t.Errorf("max temp %.1fC far above throttle point %.1fC", throttled.TempMaxC, hot.Thermal.ThrottleC)
	}
}

func TestEngineThrottledSessionEnergyReconciles(t *testing.T) {
	// The package energy integrates PowerIdealW = idle + sum(DynPowerW),
	// so the per-session dynamic energies must always sum to the package
	// energy minus the idle floor — including while the thermal model is
	// throttling, which scales both sides by the same factor.
	spec := thermalSpec()
	spec.Thermal.ThrottleC = 60 // engage throttling quickly
	eng, err := NewEngine(spec, quietModel(), 47)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 22, Threads: 12, FreqGHz: 3.2}
	for i := 0; i < 6; i++ {
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, int64(48+i)), Controller: &Static{S: set},
			Initial: set, FrameBudget: 1500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TempMaxC < spec.Thermal.ThrottleC {
		t.Fatalf("workload never throttled (max %.1fC < %.1fC); test is vacuous",
			res.TempMaxC, spec.Thermal.ThrottleC)
	}
	var sessionDyn float64
	for _, sr := range res.Sessions {
		if sr.DynEnergyJ <= 0 {
			t.Errorf("session %d has non-positive dynamic energy %.1f J", sr.ID, sr.DynEnergyJ)
		}
		sessionDyn += sr.DynEnergyJ
	}
	packageDyn := res.EnergyJ - spec.IdlePowerW*res.DurationSec
	if packageDyn <= 0 {
		t.Fatalf("package dynamic energy %.1f J not positive", packageDyn)
	}
	if rel := math.Abs(sessionDyn-packageDyn) / packageDyn; rel > 1e-6 {
		t.Errorf("session dynamic energies %.1f J do not reconcile with package dynamic energy %.1f J (rel err %.2e)",
			sessionDyn, packageDyn, rel)
	}
}

// TestEngineThermalAccountsIdleGapArrival covers the idle-gap arrival
// jump with the thermal model enabled: when the only session arrives
// late, the engine must integrate idle power and the thermal RC model
// across the gap, and the energy attribution must still reconcile.
func TestEngineThermalAccountsIdleGapArrival(t *testing.T) {
	const gap = 20.0
	spec := thermalSpec() // thermal enabled, fast response, no throttle here
	run := func(start float64) *Result {
		eng, err := NewEngine(spec, quietModel(), 71)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 32, Threads: 4, FreqGHz: 2.6}
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.LR, 72), Controller: &Static{S: set},
			Initial: set, FrameBudget: 200, StartAtSec: start, CollectTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gapped := run(gap)
	immediate := run(0)

	// Energy across the jump: the gapped run costs exactly the idle
	// lead-in more than the immediate one (the loaded part is identical).
	idleLead := spec.IdlePowerW * gap
	if diff := math.Abs(gapped.EnergyJ - (immediate.EnergyJ + idleLead)); diff > 1e-6*gapped.EnergyJ {
		t.Errorf("energy across idle gap off by %.3f J (gapped %.1f, immediate %.1f + idle %.1f)",
			diff, gapped.EnergyJ, immediate.EnergyJ, idleLead)
	}
	// And it still reconciles with the per-session attribution.
	sessionDyn := gapped.Sessions[0].DynEnergyJ
	packageDyn := gapped.EnergyJ - spec.IdlePowerW*gapped.DurationSec
	if rel := math.Abs(sessionDyn-packageDyn) / packageDyn; rel > 1e-6 {
		t.Errorf("idle-gap run: session dynamic energy %.2f J vs package %.2f J (rel %.2e)",
			sessionDyn, packageDyn, rel)
	}

	// Temperature across the jump: the gap is integrated as one idle
	// segment, so the package temperature at arrival must match the RC
	// model advanced over it. With idle power at 50 W the package warms
	// toward the idle steady state (~46.5C) during the gap — if the
	// engine skipped thermal accounting across the jump, the load plateau
	// would start from ambient and never reach that temperature in this
	// short run.
	tsRef, err := platform.NewThermalState(spec.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	tsRef.Advance(spec.IdlePowerW, gap)
	arrivalTemp := tsRef.TempC()
	if gapped.TempMaxC < arrivalTemp-1e-9 {
		t.Errorf("gapped peak %.2fC below the idle-warmed arrival temperature %.2fC: thermal state lost across the jump",
			gapped.TempMaxC, arrivalTemp)
	}
	if gapped.TempMaxC < immediate.TempMaxC-0.1 {
		t.Errorf("gapped peak %.2fC below immediate peak %.2fC despite warm start",
			gapped.TempMaxC, immediate.TempMaxC)
	}
	if gapped.TempAvgC <= spec.Thermal.AmbientC || gapped.TempAvgC > gapped.TempMaxC {
		t.Errorf("gapped avg %.2fC outside (ambient %.1fC, max %.2fC]",
			gapped.TempAvgC, spec.Thermal.AmbientC, gapped.TempMaxC)
	}
}

func TestEngineRejectsInvalidThermalSpec(t *testing.T) {
	s := quietSpec()
	s.Thermal = platform.DefaultThermalSpec()
	s.Thermal.ThrottleFactor = 2
	if _, err := NewEngine(s, quietModel(), 1); err == nil {
		t.Error("invalid thermal spec accepted")
	}
}
