package transcode

import (
	"math"
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

// thermalSpec returns a platform whose thermal model throttles quickly
// under full load.
func thermalSpec() platform.Spec {
	s := quietSpec()
	s.Thermal = platform.DefaultThermalSpec()
	s.Thermal.TauSec = 5 // fast thermal response for a short test
	return s
}

func TestEngineThermalTrackingReported(t *testing.T) {
	eng, err := NewEngine(thermalSpec(), quietModel(), 41)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 10, FreqGHz: 3.2}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 42), Controller: &Static{S: set},
		Initial: set, FrameBudget: 600,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	amb := thermalSpec().Thermal.AmbientC
	if res.TempMaxC <= amb {
		t.Errorf("max temp %.1fC not above ambient %.1fC", res.TempMaxC, amb)
	}
	if res.TempAvgC <= amb || res.TempAvgC > res.TempMaxC {
		t.Errorf("avg temp %.1fC outside (ambient, max]", res.TempAvgC)
	}
}

func TestEngineThermalThrottlingSlowsHotWorkload(t *testing.T) {
	// A saturating workload heats the package past the throttle point;
	// with throttling the same workload takes longer and caps cooler
	// than the un-throttled steady state would imply.
	run := func(spec platform.Spec) *Result {
		eng, err := NewEngine(spec, quietModel(), 43)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 22, Threads: 12, FreqGHz: 3.2}
		for i := 0; i < 6; i++ {
			if _, err := eng.AddSession(SessionConfig{
				Source: testSource(t, video.HR, int64(44+i)), Controller: &Static{S: set},
				Initial: set, FrameBudget: 1500,
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hot := thermalSpec()
	hot.Thermal.ThrottleC = 60 // low threshold: throttling will engage
	cold := quietSpec()        // thermal disabled

	throttled := run(hot)
	free := run(cold)
	if throttled.DurationSec <= free.DurationSec {
		t.Errorf("throttled run not slower: %.1fs vs %.1fs", throttled.DurationSec, free.DurationSec)
	}
	if free.TempMaxC != 0 {
		t.Errorf("disabled thermal reported temperature %.1f", free.TempMaxC)
	}
	// Throttling must bound the temperature near the threshold: the
	// package cannot keep heating at full power once throttled.
	if throttled.TempMaxC > hot.Thermal.ThrottleC+10 {
		t.Errorf("max temp %.1fC far above throttle point %.1fC", throttled.TempMaxC, hot.Thermal.ThrottleC)
	}
}

func TestEngineThrottledSessionEnergyReconciles(t *testing.T) {
	// The package energy integrates PowerIdealW = idle + sum(DynPowerW),
	// so the per-session dynamic energies must always sum to the package
	// energy minus the idle floor — including while the thermal model is
	// throttling, which scales both sides by the same factor.
	spec := thermalSpec()
	spec.Thermal.ThrottleC = 60 // engage throttling quickly
	eng, err := NewEngine(spec, quietModel(), 47)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 22, Threads: 12, FreqGHz: 3.2}
	for i := 0; i < 6; i++ {
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, int64(48+i)), Controller: &Static{S: set},
			Initial: set, FrameBudget: 1500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TempMaxC < spec.Thermal.ThrottleC {
		t.Fatalf("workload never throttled (max %.1fC < %.1fC); test is vacuous",
			res.TempMaxC, spec.Thermal.ThrottleC)
	}
	var sessionDyn float64
	for _, sr := range res.Sessions {
		if sr.DynEnergyJ <= 0 {
			t.Errorf("session %d has non-positive dynamic energy %.1f J", sr.ID, sr.DynEnergyJ)
		}
		sessionDyn += sr.DynEnergyJ
	}
	packageDyn := res.EnergyJ - spec.IdlePowerW*res.DurationSec
	if packageDyn <= 0 {
		t.Fatalf("package dynamic energy %.1f J not positive", packageDyn)
	}
	if rel := math.Abs(sessionDyn-packageDyn) / packageDyn; rel > 1e-6 {
		t.Errorf("session dynamic energies %.1f J do not reconcile with package dynamic energy %.1f J (rel err %.2e)",
			sessionDyn, packageDyn, rel)
	}
}

func TestEngineRejectsInvalidThermalSpec(t *testing.T) {
	s := quietSpec()
	s.Thermal = platform.DefaultThermalSpec()
	s.Thermal.ThrottleFactor = 2
	if _, err := NewEngine(s, quietModel(), 1); err == nil {
		t.Error("invalid thermal spec accepted")
	}
}
