package transcode

// Event scheduling primitives of the engine: one hand-rolled binary
// min-heap type, instantiated twice — for frame completions keyed by
// *virtual service time* and for session arrivals keyed by real time. It
// is concrete (no container/heap interface boxing) because push/pop sit
// on the hottest path of the simulator.
//
// Virtual service time is the engine clock that makes the completion heap
// stable under contention: it advances at scale*throttle times real time,
// the uniform factor every active session's service rate is multiplied
// by. A frame that needs W cycles on a session with unscaled rate r
// completes exactly when the virtual clock reaches v_start + W/r, no
// matter how the contention scale moves while it encodes — so arrivals,
// departures and setting changes never re-key pending events, and an
// event costs O(log n).

// event is one pending occurrence: a frame completion (key = virtual
// service time) or a session arrival (key = real time).
type event struct {
	key float64
	// id is the session; it tie-breaks equal keys for determinism.
	id int
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].id < h[j].id
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.siftDown(0)
	return top
}

// removeByID deletes the pending event of one session and returns it.
// Session migration is the only caller: the scan is O(n) but runs once
// per extraction, never on the per-frame path. Heap pop order depends
// only on the (key, id) total order, not on the array layout, so a
// removal (or a removal followed by re-pushing the same event) leaves
// the future event sequence unchanged.
func (h *eventHeap) removeByID(id int) (event, bool) {
	for i := range *h {
		if (*h)[i].id != id {
			continue
		}
		ev := (*h)[i]
		last := len(*h) - 1
		(*h)[i] = (*h)[last]
		*h = (*h)[:last]
		if i < last {
			h.fix(i)
		}
		return ev, true
	}
	return event{}, false
}

// fix restores the heap property around index i after its element was
// replaced: sift up if it beats its parent, otherwise sift down.
func (h *eventHeap) fix(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
	h.siftDown(i)
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}
