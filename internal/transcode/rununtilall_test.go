package transcode

import (
	"testing"

	"mamut/internal/video"
)

// TestRunUntilAllSkewedBudgetsSurviveEventBudget regresses the event
// budget miscount: the pre-refactor engine derived its livelock budget
// from the *nominal* frame budgets (sum * maxEventsPerFrame), but
// until-all mode keeps fast sessions transcoding catch-up frames until
// the slowest session reaches its budget — with a large speed skew the
// catch-up frames alone exceed the nominal-budget bound and the run dies
// with "event budget exhausted". The budget now scales with frames
// actually completed, so this workload must finish.
func TestRunUntilAllSkewedBudgetsSurviveEventBudget(t *testing.T) {
	// Slowest possible session: HR content on one thread at the bottom
	// ladder rung, expensive QP; plus three fastest-possible sessions with
	// token budgets that transcode catch-up frames the whole run.
	slow := Settings{QP: 22, Threads: 1, FreqGHz: 1.2}
	fast := Settings{QP: 47, Threads: 10, FreqGHz: 3.2}
	add := func(addSession func(SessionConfig) (int, error)) {
		t.Helper()
		if _, err := addSession(SessionConfig{
			Source: testSource(t, video.HR, 56), Controller: &Static{S: slow},
			Initial: slow, FrameBudget: 40,
		}); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 3; i++ {
			if _, err := addSession(SessionConfig{
				Source: testSource(t, video.LR, 57+i), Controller: &Static{S: fast},
				Initial: fast, FrameBudget: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	eng, err := NewEngine(quietSpec(), quietModel(), 55)
	if err != nil {
		t.Fatal(err)
	}
	add(eng.AddSession)
	res, err := eng.RunUntilAll()
	if err != nil {
		t.Fatalf("skewed until-all run failed: %v", err)
	}
	if res.Sessions[0].Frames != 40 {
		t.Errorf("slow session frames = %d, want 40", res.Sessions[0].Frames)
	}
	total := 0
	for _, sr := range res.Sessions {
		total += sr.Frames
	}
	if oldBudget := (40 + 3) * maxEventsPerFrame; total <= oldBudget {
		t.Fatalf("catch-up frames %d do not exceed the old budget %d; test is vacuous", total, oldBudget)
	}

	// The pre-refactor core (the linear reference) dies on exactly this
	// workload: its livelock budget counts nominal frames only.
	ref := newRefEngine(t, quietSpec(), quietModel(), 55)
	add(func(cfg SessionConfig) (int, error) { ref.addSession(t, cfg); return 0, nil })
	if _, err := ref.run(true); err == nil {
		t.Error("pre-refactor event budget did not trip; regression test is vacuous")
	}
}

func TestRunUntilAllKeepsContentionConstant(t *testing.T) {
	// One fast (LR) and one slow (HR) session with equal budgets: with
	// Run the LR session finishes early and leaves; with RunUntilAll it
	// keeps transcoding until the HR session reaches its budget.
	build := func() *Engine {
		eng, err := NewEngine(quietSpec(), quietModel(), 51)
		if err != nil {
			t.Fatal(err)
		}
		lr := Settings{QP: 32, Threads: 5, FreqGHz: 3.2}
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.LR, 52), Controller: &Static{S: lr},
			Initial: lr, FrameBudget: 200, CollectTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		hr := Settings{QP: 22, Threads: 2, FreqGHz: 1.6} // slow on purpose
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, 53), Controller: &Static{S: hr},
			Initial: hr, FrameBudget: 200, CollectTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	resStop, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	resAll, err := build().RunUntilAll()
	if err != nil {
		t.Fatal(err)
	}

	// Budgets are exact in stop mode; in until-all mode the fast session
	// transcodes extra frames.
	if resStop.Sessions[0].Frames != 200 {
		t.Errorf("stop mode frames = %d, want 200", resStop.Sessions[0].Frames)
	}
	if resAll.Sessions[0].Frames <= 200 {
		t.Errorf("until-all fast session frames = %d, want > 200", resAll.Sessions[0].Frames)
	}
	if resAll.Sessions[1].Frames < 200 {
		t.Errorf("until-all slow session frames = %d, want >= 200", resAll.Sessions[1].Frames)
	}

	// The run durations are driven by the slow session either way.
	if resAll.DurationSec < resStop.DurationSec*0.95 {
		t.Errorf("until-all duration %.1f much shorter than stop %.1f", resAll.DurationSec, resStop.DurationSec)
	}

	// In until-all mode the fast session keeps the machine loaded for the
	// whole run: average power is at least that of the stop-mode run,
	// where the tail has one session only.
	if resAll.AvgPowerW < resStop.AvgPowerW {
		t.Errorf("until-all avg power %.1f below stop mode %.1f", resAll.AvgPowerW, resStop.AvgPowerW)
	}
}

// TestRunUntilAllIsTerminal pins the lifecycle boundary: until-all mode
// stops with sessions frozen mid-frame and their loads still resident, so
// the engine must reject any attempt to keep simulating from that state
// (the phantom loads would distort contention and energy for new
// sessions) while repeated RunUntilAll stays idempotent.
func TestRunUntilAllIsTerminal(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 51)
	if err != nil {
		t.Fatal(err)
	}
	s := Settings{QP: 32, Threads: 4, FreqGHz: 2.6}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 52), Controller: &Static{S: s},
		Initial: s, FrameBudget: 50,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunUntilAll()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := eng.Run(); err == nil {
		t.Error("Run after RunUntilAll succeeded; want terminal error")
	}
	if err := eng.AdvanceTo(res.DurationSec + 1); err == nil {
		t.Error("AdvanceTo after RunUntilAll succeeded; want terminal error")
	}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 53), Controller: &Static{S: s},
		Initial: s, FrameBudget: 10,
	}); err == nil {
		t.Error("AddSession after RunUntilAll succeeded; want terminal error")
	}

	again, err := eng.RunUntilAll()
	if err != nil {
		t.Fatalf("repeated RunUntilAll: %v", err)
	}
	if again.DurationSec != res.DurationSec || again.EnergyJ != res.EnergyJ {
		t.Errorf("repeated RunUntilAll result differs: %.6f s / %.3f J vs %.6f s / %.3f J",
			again.DurationSec, again.EnergyJ, res.DurationSec, res.EnergyJ)
	}
}
