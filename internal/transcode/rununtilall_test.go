package transcode

import (
	"testing"

	"mamut/internal/video"
)

func TestRunUntilAllKeepsContentionConstant(t *testing.T) {
	// One fast (LR) and one slow (HR) session with equal budgets: with
	// Run the LR session finishes early and leaves; with RunUntilAll it
	// keeps transcoding until the HR session reaches its budget.
	build := func() *Engine {
		eng, err := NewEngine(quietSpec(), quietModel(), 51)
		if err != nil {
			t.Fatal(err)
		}
		lr := Settings{QP: 32, Threads: 5, FreqGHz: 3.2}
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.LR, 52), Controller: &Static{S: lr},
			Initial: lr, FrameBudget: 200, CollectTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		hr := Settings{QP: 22, Threads: 2, FreqGHz: 1.6} // slow on purpose
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, 53), Controller: &Static{S: hr},
			Initial: hr, FrameBudget: 200, CollectTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	resStop, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	resAll, err := build().RunUntilAll()
	if err != nil {
		t.Fatal(err)
	}

	// Budgets are exact in stop mode; in until-all mode the fast session
	// transcodes extra frames.
	if resStop.Sessions[0].Frames != 200 {
		t.Errorf("stop mode frames = %d, want 200", resStop.Sessions[0].Frames)
	}
	if resAll.Sessions[0].Frames <= 200 {
		t.Errorf("until-all fast session frames = %d, want > 200", resAll.Sessions[0].Frames)
	}
	if resAll.Sessions[1].Frames < 200 {
		t.Errorf("until-all slow session frames = %d, want >= 200", resAll.Sessions[1].Frames)
	}

	// The run durations are driven by the slow session either way.
	if resAll.DurationSec < resStop.DurationSec*0.95 {
		t.Errorf("until-all duration %.1f much shorter than stop %.1f", resAll.DurationSec, resStop.DurationSec)
	}

	// In until-all mode the fast session keeps the machine loaded for the
	// whole run: average power is at least that of the stop-mode run,
	// where the tail has one session only.
	if resAll.AvgPowerW < resStop.AvgPowerW {
		t.Errorf("until-all avg power %.1f below stop mode %.1f", resAll.AvgPowerW, resStop.AvgPowerW)
	}
}
