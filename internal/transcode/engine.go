package transcode

import (
	"fmt"
	"math"
	"math/rand"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// DefaultTargetFPS is the real-time target frame rate of the paper.
const DefaultTargetFPS = 24.0

// fpsWindow is the number of recent frames the windowed FPS estimate
// averages over. Six frames matches the fastest agent period, so every
// DVFS decision sees a fresh estimate.
const fpsWindow = 6

// SessionConfig describes one user's transcoding request.
type SessionConfig struct {
	// Source provides the stream content. Required.
	Source video.Source
	// Preset overrides the paper's resolution->preset mapping when set.
	Preset *hevc.Preset
	// Controller drives the session's knobs. Required.
	Controller Controller
	// Initial are the knob settings for the first frame.
	Initial Settings
	// BandwidthMbps is the user's available bandwidth (the bitrate
	// constraint). Zero means unconstrained.
	BandwidthMbps float64
	// TargetFPS is the real-time target; DefaultTargetFPS when zero.
	TargetFPS float64
	// FrameBudget is how many frames to transcode; required, positive.
	FrameBudget int
	// StartAtSec delays the session's arrival: it joins the contention
	// pool at this simulated time (0 = present from the start). Models
	// the paper's SV-C "users coming and going continuously". A session
	// added while the simulation is already past this time joins
	// immediately.
	StartAtSec float64
	// CollectTrace keeps every Observation in the session result.
	CollectTrace bool
}

// session is the engine's live state for one stream.
type session struct {
	cfg      SessionConfig
	id       int
	enc      *hevc.Encoder
	encSrc   *xrand.Source // the encoder rng's source, for migration snapshots
	settings Settings

	frameIdx   int
	frameStart float64 // sim time the current frame began
	curFrame   video.Frame
	curPSNR    float64
	curBits    float64

	// Event-scheduler state. While a session is running it holds exactly
	// one resident load in the engine's LoadAccount and exactly one
	// pending completion event in the heap.
	running bool
	load    platform.SessionLoad
	dynCoef float64 // DynPowerPerCoreW * V^2f-norm * speedup for this frame
	vMark   float64 // virtual time the dynamic-energy integral was settled at

	durations [fpsWindow]float64
	nDur      int

	done bool // departed (budget reached in stop mode)

	// accumulators for the result
	dynEnergyJ  float64
	frames      int
	violations  int
	sumFPS      float64
	sumPSNR     float64
	sumBitrate  float64
	sumThreads  float64
	sumFreq     float64
	sumQP       float64
	trace       []Observation
	firstAction bool
}

// SessionResult summarises one session after a run.
type SessionResult struct {
	// ID is the session's index in the engine.
	ID int
	// Name is the controller name.
	Name string
	// Res is the stream's resolution class.
	Res video.Resolution
	// Frames is the number of frames transcoded.
	Frames int
	// Violations counts frames whose windowed FPS fell below the target;
	// ViolationPct is the paper's Delta metric.
	Violations   int
	ViolationPct float64
	// DynEnergyJ is the session's share of the dynamic energy (idle power
	// is not attributed to sessions).
	DynEnergyJ float64
	// Averages over all frames.
	AvgFPS         float64
	AvgPSNRdB      float64
	AvgBitrateMbps float64
	AvgThreads     float64
	AvgFreqGHz     float64
	AvgQP          float64
	// Trace holds per-frame observations when CollectTrace was set.
	Trace []Observation
}

// Result is the outcome of an engine run.
type Result struct {
	// DurationSec is the total simulated time.
	DurationSec float64
	// EnergyJ integrates the noise-free package power over the run.
	EnergyJ float64
	// AvgPowerW is EnergyJ / DurationSec.
	AvgPowerW float64
	// TempMaxC and TempAvgC report package temperature when the spec
	// enables the thermal model (zero otherwise).
	TempMaxC float64
	TempAvgC float64
	// Sessions holds one entry per configured session, in order.
	Sessions []SessionResult
}

// SessionEnd is the departure notification delivered to the OnSessionEnd
// hook when a session reaches its frame budget and releases its resources.
type SessionEnd struct {
	// SessionID is the departing session's engine id.
	SessionID int
	// Res is the stream's resolution class.
	Res video.Resolution
	// Time is the simulated departure time (the last frame's completion).
	Time float64
	// Frames is the number of frames the session transcoded.
	Frames int
	// Result is the session's complete summary at departure — identical
	// to the entry buildResult would produce for it, so a streaming
	// consumer can fold the session at this event and never look at the
	// end-of-run result (see DiscardDeparted).
	Result SessionResult
}

// Engine simulates a set of sessions sharing one server.
//
// The core is an indexed event scheduler: pending frame completions live
// in a min-heap keyed by virtual service time (see events.go), the
// platform's contention state is maintained incrementally in a
// platform.LoadAccount, and per-session dynamic energy integrates lazily
// against the virtual clock. One frame event therefore costs O(log n) in
// the number of active sessions instead of the O(n) full-platform rescan
// the linear core paid.
//
// The engine also supports a live session lifecycle: AddSession works
// mid-run (including from an OnSessionEnd hook), AdvanceTo steps the
// simulation to an absolute time so callers can interleave it with an
// outer event loop (internal/serve interleaves a whole fleet this way),
// and OnSessionEnd delivers explicit departure notifications.
type Engine struct {
	server   *platform.Server
	model    hevc.Model
	sessions []*session
	rng      *rand.Rand
	now      float64 // real simulated time
	vnow     float64 // virtual service time (integral of scale*throttle dt)
	segStart float64 // time energy/thermal/vnow are settled up to (<= now)
	energy   float64
	thermal  *platform.ThermalState
	acct     *platform.LoadAccount
	compl    eventHeap // pending completions keyed by virtual service time
	arrivals eventHeap // pending arrivals keyed by real time
	onEnd    func(SessionEnd)
	onFrame  func(Observation)
	discard  bool // drop departed sessions' state (see DiscardDeparted)

	totalBudget int // sum of frame budgets, for the livelock guard
	framesDone  int // frames completed so far (catch-up frames included)
	events      int
	finished    bool // RunUntilAll completed; the live lifecycle is closed

	// Migration state (see migrate.go). stateGen counts engine state
	// mutations; the extraction stash is valid only while it is unchanged.
	stateGen  uint64
	stash     *extractStash
	extracted map[int]bool // ids removed by ExtractSession (vs discarded)

	batch []*session // scratch for completion batches
}

// NewEngine builds an engine over the given platform spec and encoder
// model. The seed drives all stochastic parts owned by the engine (power
// metering and encoder noise); video sources carry their own rngs. The
// engine's rng streams are xrand (splitmix64) streams: sources seed in
// O(1), so creating an engine — and admitting a session, which seeds the
// encoder's noise rng — stays cheap on a serving fleet's admission path.
func NewEngine(spec platform.Spec, model hevc.Model, seed int64) (*Engine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	srv, err := platform.NewServer(spec, xrand.New(rng.Int63()))
	if err != nil {
		return nil, err
	}
	e := &Engine{server: srv, model: model, rng: rng, acct: srv.NewLoadAccount()}
	if spec.Thermal.Enabled {
		ts, err := platform.NewThermalState(spec.Thermal)
		if err != nil {
			return nil, err
		}
		e.thermal = ts
	}
	return e, nil
}

// Server exposes the platform (used by controllers needing spec data).
func (e *Engine) Server() *platform.Server { return e.server }

// Reprofile swaps the server's platform spec live — the fault-injection
// layer uses it to cut (and later restore) a degraded machine's power
// cap mid-run. The running segment is settled at the old spec's rates
// first, so energy, thermal state and the virtual clock up to this
// instant are exactly what they would have been without the swap; the
// new spec governs from now on. The spec is validated; the frequency
// ladder must keep every resident load's frequency (their contention
// contributions were resolved at admission), which holds trivially for
// cap-only changes.
func (e *Engine) Reprofile(spec platform.Spec) error {
	if e.finished {
		return errFinished
	}
	powerIdeal, speed := e.segRates()
	e.settle(e.now, powerIdeal, speed)
	if err := e.server.SetSpec(spec); err != nil {
		return fmt.Errorf("transcode: Reprofile: %w", err)
	}
	e.stateGen++
	return nil
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// ActiveSessions returns the number of sessions currently holding
// resources (arrived and not departed).
func (e *Engine) ActiveSessions() int { return e.acct.Active() }

// OnSessionEnd installs the departure hook. It fires when a session
// reaches its frame budget and leaves (Run/AdvanceTo semantics; in
// RunUntilAll nobody departs, so it never fires). The hook runs inside
// the event loop: it may call AddSession, but must not call Run,
// RunUntilAll or AdvanceTo. A nil hook disables notification.
func (e *Engine) OnSessionEnd(fn func(SessionEnd)) { e.onEnd = fn }

// OnFrame installs a per-frame observer: it receives every Observation
// the engine books, in event order, whether or not the session collects
// a trace. It lets a streaming consumer (the serve layer's power
// integrator) see each reading once at completion time instead of
// replaying retained traces after the run. The hook runs inside the
// event loop and must not call back into the engine. A nil hook
// disables observation.
func (e *Engine) OnFrame(fn func(Observation)) { e.onFrame = fn }

// DiscardDeparted makes depart drop a session's state (accumulators,
// trace, encoder) once its OnSessionEnd notification — which carries the
// complete SessionResult — has fired. The engine then holds O(active
// sessions) instead of O(total sessions ever admitted), which is what
// makes arbitrarily long serving horizons run in constant memory.
// Discarded sessions are skipped in the end-of-run Result.Sessions; ids
// are never reused, so event ordering and determinism are unaffected.
func (e *Engine) DiscardDeparted(on bool) { e.discard = on }

// AddSession registers a session and returns the session id. Before the
// first Run/AdvanceTo call this is the classic batch setup; called
// mid-run it is a live arrival — the session joins the contention pool at
// StartAtSec, or immediately when that time has already passed.
func (e *Engine) AddSession(cfg SessionConfig) (int, error) {
	if cfg.Source == nil {
		return 0, fmt.Errorf("transcode: session needs a video source")
	}
	if cfg.Controller == nil {
		return 0, fmt.Errorf("transcode: session needs a controller")
	}
	if cfg.FrameBudget < 1 {
		return 0, fmt.Errorf("transcode: frame budget %d < 1", cfg.FrameBudget)
	}
	if err := cfg.Initial.Validate(); err != nil {
		return 0, fmt.Errorf("transcode: initial settings: %w", err)
	}
	if cfg.TargetFPS == 0 {
		cfg.TargetFPS = DefaultTargetFPS
	}
	if cfg.TargetFPS < 0 {
		return 0, fmt.Errorf("transcode: negative target FPS %g", cfg.TargetFPS)
	}
	if cfg.StartAtSec < 0 {
		return 0, fmt.Errorf("transcode: negative start time %g", cfg.StartAtSec)
	}
	if e.finished {
		return 0, errFinished
	}
	if cfg.StartAtSec < e.now {
		cfg.StartAtSec = e.now
	}
	preset := hevc.PresetFor(cfg.Source.Res())
	if cfg.Preset != nil {
		preset = *cfg.Preset
	}
	// The encoder rng is built over an owned xrand.Source (same stream as
	// xrand.New) so ExtractSession can freeze the noise stream mid-run.
	encSrc := xrand.NewSource(e.rng.Int63())
	enc, err := hevc.NewEncoder(cfg.Source.Res(), preset, e.model, rand.New(encSrc))
	if err != nil {
		return 0, err
	}
	id := len(e.sessions)
	e.sessions = append(e.sessions, &session{
		cfg:         cfg,
		id:          id,
		enc:         enc,
		encSrc:      encSrc,
		settings:    cfg.Initial,
		firstAction: true,
	})
	e.arrivals.push(event{key: cfg.StartAtSec, id: id})
	e.totalBudget += cfg.FrameBudget
	e.stateGen++
	return id, nil
}

// maxEventsPerFrame bounds the event loop against accidental livelock.
// The budget scales with frames actually completed (not just the nominal
// frame budgets), so RunUntilAll catch-up frames — which can dwarf the
// budgets under skewed session speeds — never trip it spuriously.
const maxEventsPerFrame = 64

// Run simulates until every session exhausts its frame budget and returns
// the aggregated result. A session that reaches its budget stops encoding
// and releases its resources (the user left).
func (e *Engine) Run() (*Result, error) {
	if len(e.sessions) == 0 {
		return nil, fmt.Errorf("transcode: no sessions")
	}
	if e.finished {
		return nil, errFinished
	}
	if err := e.advance(math.Inf(1), false); err != nil {
		return nil, err
	}
	return e.buildResult(), nil
}

// errFinished guards the live lifecycle after a terminal RunUntilAll:
// sessions past their budget are frozen mid-frame with their loads still
// resident, so advancing or growing the simulation from that state would
// silently distort contention and energy for any new session.
var errFinished = fmt.Errorf("transcode: engine finished (RunUntilAll is terminal; build a new engine to continue)")

// RunUntilAll simulates until every session has reached its frame budget,
// but — unlike Run — sessions that reach their budget keep transcoding
// until the last one catches up. This models a server whose streams
// continue beyond the measurement window, so contention stays constant
// and a measured window is never polluted by departed sessions.
//
// RunUntilAll is terminal: it stops with every session frozen mid-frame
// (loads resident, completions unscheduled), so the engine afterwards
// rejects Run, AdvanceTo and AddSession. Calling RunUntilAll again just
// returns the same result.
func (e *Engine) RunUntilAll() (*Result, error) {
	if len(e.sessions) == 0 {
		return nil, fmt.Errorf("transcode: no sessions")
	}
	if err := e.advance(math.Inf(1), true); err != nil {
		return nil, err
	}
	e.finished = true
	return e.buildResult(), nil
}

// AdvanceTo steps the simulation to the given absolute time: every frame
// completion, departure and arrival at or before it is processed, and the
// clock lands exactly on t. It lets an outer event loop interleave this
// engine with other event sources — other servers of a fleet, a
// dispatcher placing arrivals — and observe actual session lifetimes as
// they happen. Times at or before the current clock are a no-op.
//
// Between events the engine's state (contention scale, power, throttle
// factor) is constant, so energy, thermal and virtual-clock integration
// is settled lazily at the next event rather than at every AdvanceTo
// call: parking the clock is O(1) and results are bit-identical no
// matter how often (or rarely) a caller steps an idle engine. Fleet
// dispatchers exploit this by consulting NextEventTime and skipping
// engines with nothing pending.
func (e *Engine) AdvanceTo(t float64) error {
	if math.IsInf(t, 1) || math.IsNaN(t) {
		return fmt.Errorf("transcode: AdvanceTo time must be finite")
	}
	if e.finished {
		return errFinished
	}
	return e.advance(t, false)
}

// NextEventTime returns the simulated wall-clock time of the engine's
// earliest pending event: the head of the completion heap translated
// through the current virtual-clock speed (contention scale x thermal
// throttle), or the next scheduled session arrival, whichever is sooner.
// It returns +Inf when nothing is pending — advancing an idle engine
// processes no event, so a fleet dispatcher can skip it entirely. The
// returned time is exactly the instant AdvanceTo would process the event
// at (the speed only changes when an event is processed).
func (e *Engine) NextEventTime() float64 {
	t := math.Inf(1)
	if e.finished {
		return t
	}
	if len(e.compl) > 0 {
		_, speed := e.segRates()
		if speed <= 0 {
			// Defensive: advancing will surface the no-progress error.
			return e.now
		}
		t = e.completionTime(speed)
	}
	if len(e.arrivals) > 0 && e.arrivals[0].key < t {
		t = e.arrivals[0].key
		if t < e.now {
			t = e.now
		}
	}
	return t
}

// advance is the event loop: it processes events in time order until the
// limit (exclusive of events strictly beyond it), then parks the clock at
// the limit when finite. Parking does not integrate anything: the
// energy/thermal/virtual-clock accounting of the running segment is
// settled in one step when the next event fires (or in buildResult),
// which both makes parking an idle engine O(1) and makes the simulation
// independent of how an outer loop slices its AdvanceTo calls.
func (e *Engine) advance(limit float64, untilAll bool) error {
	for {
		if untilAll && e.allReachedBudget() {
			return nil
		}
		// Power and virtual-clock speed of the current segment: both are
		// uniform across sessions and constant until the next event.
		powerIdeal, speed := e.segRates()

		// Next event: the earliest pending frame completion or arrival.
		tNext := math.Inf(1)
		completion := false
		if len(e.compl) > 0 {
			if speed <= 0 {
				return fmt.Errorf("transcode: no progress at t=%.3f", e.now)
			}
			tNext = e.completionTime(speed)
			completion = true
		}
		if len(e.arrivals) > 0 && e.arrivals[0].key < tNext {
			// A strictly earlier arrival preempts the completion; at equal
			// times the completion is processed first and the arrival joins
			// at the same instant on the next iteration.
			tNext = e.arrivals[0].key
			if tNext < e.now {
				tNext = e.now
			}
			completion = false
		}
		if math.IsInf(tNext, 1) || tNext > limit {
			// Nothing to process inside the limit: park the clock on it.
			if !math.IsInf(limit, 1) && limit > e.now {
				e.now = limit
			}
			return nil
		}

		e.events++
		e.stateGen++
		if e.events > maxEventsPerFrame*(e.framesDone+e.totalBudget+len(e.sessions)+1) {
			return fmt.Errorf("transcode: event budget exhausted (%d events for %d frames)", e.events, e.framesDone)
		}

		e.settle(tNext, powerIdeal, speed)
		if tNext > e.now {
			e.now = tNext
		}
		if !completion {
			// Process every arrival due now, in (time, id) order.
			for len(e.arrivals) > 0 && e.arrivals[0].key <= e.now {
				s := e.sessions[e.arrivals.pop().id]
				if err := e.beginFrame(s); err != nil {
					return err
				}
			}
			continue
		}

		// Land the virtual clock exactly on the completing key, then drain
		// every completion due at it. The batch is popped in (key, id)
		// order, which is id order within one instant.
		e.vnow = e.compl[0].key
		batch := e.batch[:0]
		for len(e.compl) > 0 && e.compl[0].key <= e.vnow {
			batch = append(batch, e.sessions[e.compl.pop().id])
		}
		// One meter reading per event, shared by the batch — the power of
		// the interval that just elapsed, before any load changes below.
		powerRead := e.server.MeterPower(powerIdeal)
		for _, s := range batch {
			e.completeFrame(s, powerRead)
		}
		if untilAll && e.allReachedBudget() {
			e.batch = batch[:0]
			return nil
		}
		for _, s := range batch {
			if !untilAll && s.frames >= s.cfg.FrameBudget {
				if err := e.depart(s); err != nil {
					return err
				}
				continue
			}
			if err := e.beginFrame(s); err != nil {
				return err
			}
		}
		e.batch = batch[:0]
	}
}

// segRates returns the package power and virtual-clock speed of the
// current segment. Both only change when an event is processed (a load
// joins, leaves or is re-shaped; the thermal state steps), so they hold
// from the last settled point to the next event regardless of clock
// parks in between.
func (e *Engine) segRates() (powerIdeal, speed float64) {
	f := 1.0
	if e.thermal != nil && e.thermal.Throttled() {
		f = e.thermal.ThrottleFactor()
	}
	return e.server.Spec().IdlePowerW + e.acct.DynPowerW()*f, e.acct.Scale() * f
}

// completionTime translates the completion heap's head from virtual
// service time to wall time. It anchors at the settled segment start —
// not at a possibly parked clock — so the computed instant is identical
// however the caller sliced its AdvanceTo steps.
func (e *Engine) completionTime(speed float64) float64 {
	dv := e.compl[0].key - e.vnow
	if dv < 0 {
		dv = 0
	}
	t := e.segStart + dv/speed
	if t < e.now {
		t = e.now
	}
	return t
}

// settle integrates energy, the thermal model and the virtual clock over
// [segStart, t] at the given (constant) segment power and speed. Because
// the whole pending span is integrated in one step, the accounting is
// independent of how many times the clock was parked inside it.
func (e *Engine) settle(t, powerIdeal, speed float64) {
	dt := t - e.segStart
	if dt > 0 {
		e.energy += powerIdeal * dt
		if e.thermal != nil {
			e.thermal.Advance(powerIdeal, dt)
		}
		if len(e.compl) > 0 {
			e.vnow += speed * dt
		}
	}
	e.segStart = t
}

// allReachedBudget reports whether every session has transcoded at least
// its frame budget.
func (e *Engine) allReachedBudget() bool {
	for _, s := range e.sessions {
		if s == nil {
			continue // discarded sessions reached their budget by definition
		}
		if s.frames < s.cfg.FrameBudget {
			return false
		}
	}
	return true
}

// beginFrame consults the controller, applies validated settings, draws
// the next frame's content and quality, installs the session's load in
// the contention account and schedules the completion event.
func (e *Engine) beginFrame(s *session) error {
	proposed := s.cfg.Controller.OnFrameStart(FrameStart{
		SessionID:  s.id,
		FrameIndex: s.frameIdx,
		Time:       e.now,
		Current:    s.settings,
	})
	s.settings = e.sanitize(s, proposed)

	s.curFrame = s.cfg.Source.Next()
	work, err := s.enc.FrameWork(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		// sanitize guarantees a valid QP; a failure here means the source
		// produced an invalid frame, which is a programming error.
		panic(err)
	}
	psnr, bits, err := s.enc.FrameQuality(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		panic(err)
	}
	s.curPSNR, s.curBits = psnr, bits

	load := platform.SessionLoad{
		Threads: s.settings.Threads,
		FreqGHz: s.settings.FreqGHz,
		Speedup: s.enc.Speedup(s.settings.Threads),
	}
	if !s.running {
		if err := e.acct.Add(load); err != nil {
			return fmt.Errorf("transcode: t=%.3f session %d: %w", e.now, s.id, err)
		}
		s.running = true
		s.load = load
		s.dynCoef = e.dynCoef(load)
	} else if load != s.load {
		if err := e.acct.Update(s.load, load); err != nil {
			return fmt.Errorf("transcode: t=%.3f session %d: %w", e.now, s.id, err)
		}
		s.load = load
		s.dynCoef = e.dynCoef(load)
	}
	s.vMark = e.vnow
	s.frameStart = e.now
	e.compl.push(event{key: e.vnow + work/(load.FreqGHz*1e9*load.Speedup), id: s.id})
	return nil
}

// dynCoef is the session's dynamic-power coefficient: its busy
// core-equivalents weighted by V^2*f, so that instantaneous dynamic power
// is dynCoef * scale * throttle and dynamic energy integrates as
// dynCoef * (virtual time elapsed).
func (e *Engine) dynCoef(l platform.SessionLoad) float64 {
	vf, err := e.server.Spec().VFNorm(l.FreqGHz)
	if err != nil {
		// sanitize guarantees a ladder rung.
		panic(err)
	}
	return e.server.Spec().DynPowerPerCoreW * vf * l.Speedup
}

// sanitize clamps controller output to what the hardware and encoder
// accept, so a buggy or exploring controller cannot wedge the engine.
func (e *Engine) sanitize(s *session, p Settings) Settings {
	if p.QP < hevc.MinQP {
		p.QP = hevc.MinQP
	}
	if p.QP > hevc.MaxQP {
		p.QP = hevc.MaxQP
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	if max := e.server.Spec().LogicalCPUs(); p.Threads > max {
		p.Threads = max
	}
	p.FreqGHz = e.server.Spec().Nearest(p.FreqGHz)
	return p
}

// completeFrame settles the session's dynamic energy, books metrics and
// notifies the controller.
func (e *Engine) completeFrame(s *session, powerRead float64) {
	s.dynEnergyJ += s.dynCoef * (e.vnow - s.vMark)
	s.vMark = e.vnow

	dur := e.now - s.frameStart
	if dur <= 0 {
		dur = 1e-9
	}
	s.durations[s.nDur%fpsWindow] = dur
	s.nDur++

	n := s.nDur
	if n > fpsWindow {
		n = fpsWindow
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.durations[i]
	}
	fps := float64(n) / sum

	obs := Observation{
		SessionID:    s.id,
		FrameIndex:   s.frameIdx,
		Time:         e.now,
		DurationSec:  dur,
		FPS:          fps,
		InstFPS:      1 / dur,
		PSNRdB:       s.curPSNR,
		BitrateMbps:  s.curBits * s.cfg.TargetFPS / 1e6,
		PowerW:       powerRead,
		OverCap:      e.server.OverCap(powerRead),
		Settings:     s.settings,
		Complexity:   s.curFrame.Complexity,
		SceneChange:  s.curFrame.SceneChange,
		SequenceName: s.cfg.Source.Sequence().Name,
	}

	s.frames++
	s.frameIdx++
	e.framesDone++
	if fps < s.cfg.TargetFPS {
		s.violations++
	}
	s.sumFPS += fps
	s.sumPSNR += s.curPSNR
	s.sumBitrate += obs.BitrateMbps
	s.sumThreads += float64(s.settings.Threads)
	s.sumFreq += s.settings.FreqGHz
	s.sumQP += float64(s.settings.QP)
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, obs)
	}
	if e.onFrame != nil {
		e.onFrame(obs)
	}
	s.cfg.Controller.OnFrameDone(obs)
}

// depart releases a finished session's resources and notifies the hook.
// In discard mode the session's state is dropped afterwards: the
// SessionEnd carried its complete result, and its dynamic energy was
// settled by the final completeFrame, so nothing buildResult would later
// compute differs from what the hook already saw. An accounting mismatch
// surfaces as an error (the run aborts) rather than a panic, so a fleet
// layer injecting faults can never take the whole process down through a
// release-path inconsistency.
func (e *Engine) depart(s *session) error {
	if err := e.acct.Remove(s.load); err != nil {
		return fmt.Errorf("transcode: t=%.3f session %d depart: %w", e.now, s.id, err)
	}
	s.running = false
	s.done = true
	if e.onEnd != nil {
		e.onEnd(SessionEnd{
			SessionID: s.id,
			Res:       s.cfg.Source.Res(),
			Time:      e.now,
			Frames:    s.frames,
			Result:    s.result(e.vnow),
		})
	}
	if e.discard {
		e.sessions[s.id] = nil
	}
	return nil
}

func (e *Engine) buildResult() *Result {
	// A park (AdvanceTo beyond the last event) leaves the tail segment
	// unsettled; fold it in so duration, energy and in-flight dynamic
	// energy agree with the clock. Settling to the current instant is
	// idempotent, so repeated result builds stay consistent.
	powerIdeal, speed := e.segRates()
	e.settle(e.now, powerIdeal, speed)
	res := &Result{DurationSec: e.now, EnergyJ: e.energy}
	if e.now > 0 {
		res.AvgPowerW = e.energy / e.now
	}
	if e.thermal != nil {
		res.TempMaxC = e.thermal.MaxC()
		res.TempAvgC = e.thermal.AvgC()
	}
	for _, s := range e.sessions {
		if s == nil {
			continue // departed and discarded (DiscardDeparted)
		}
		res.Sessions = append(res.Sessions, s.result(e.vnow))
	}
	return res
}

// result summarises the session's state as of virtual time vnow — the
// same entry buildResult reports, shared with the departure notification
// so both paths compute identical floats.
func (s *session) result(vnow float64) SessionResult {
	dynE := s.dynEnergyJ
	if s.running {
		// Sessions still encoding (RunUntilAll tails, AdvanceTo
		// snapshots) settle their in-flight frame's energy to now.
		dynE += s.dynCoef * (vnow - s.vMark)
	}
	sr := SessionResult{
		ID:         s.id,
		Name:       s.cfg.Controller.Name(),
		Res:        s.cfg.Source.Res(),
		Frames:     s.frames,
		Violations: s.violations,
		DynEnergyJ: dynE,
		Trace:      s.trace,
	}
	if s.frames > 0 {
		f := float64(s.frames)
		sr.ViolationPct = 100 * float64(s.violations) / f
		sr.AvgFPS = s.sumFPS / f
		sr.AvgPSNRdB = s.sumPSNR / f
		sr.AvgBitrateMbps = s.sumBitrate / f
		sr.AvgThreads = s.sumThreads / f
		sr.AvgFreqGHz = s.sumFreq / f
		sr.AvgQP = s.sumQP / f
	}
	return sr
}
