package transcode

import (
	"fmt"
	"math"
	"math/rand"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
)

// DefaultTargetFPS is the real-time target frame rate of the paper.
const DefaultTargetFPS = 24.0

// fpsWindow is the number of recent frames the windowed FPS estimate
// averages over. Six frames matches the fastest agent period, so every
// DVFS decision sees a fresh estimate.
const fpsWindow = 6

// SessionConfig describes one user's transcoding request.
type SessionConfig struct {
	// Source provides the stream content. Required.
	Source video.Source
	// Preset overrides the paper's resolution->preset mapping when set.
	Preset *hevc.Preset
	// Controller drives the session's knobs. Required.
	Controller Controller
	// Initial are the knob settings for the first frame.
	Initial Settings
	// BandwidthMbps is the user's available bandwidth (the bitrate
	// constraint). Zero means unconstrained.
	BandwidthMbps float64
	// TargetFPS is the real-time target; DefaultTargetFPS when zero.
	TargetFPS float64
	// FrameBudget is how many frames to transcode; required, positive.
	FrameBudget int
	// StartAtSec delays the session's arrival: it joins the contention
	// pool at this simulated time (0 = present from the start). Models
	// the paper's SV-C "users coming and going continuously".
	StartAtSec float64
	// CollectTrace keeps every Observation in the session result.
	CollectTrace bool
}

// session is the engine's live state for one stream.
type session struct {
	cfg      SessionConfig
	id       int
	enc      *hevc.Encoder
	settings Settings

	frameIdx   int
	remaining  float64 // cycles left in the current frame
	frameStart float64 // sim time the current frame began
	curFrame   video.Frame
	curPSNR    float64
	curBits    float64

	durations [fpsWindow]float64
	nDur      int

	done bool

	// accumulators for the result
	dynEnergyJ  float64
	frames      int
	violations  int
	sumFPS      float64
	sumPSNR     float64
	sumBitrate  float64
	sumThreads  float64
	sumFreq     float64
	sumQP       float64
	trace       []Observation
	firstAction bool
}

// SessionResult summarises one session after a run.
type SessionResult struct {
	// ID is the session's index in the engine.
	ID int
	// Name is the controller name.
	Name string
	// Res is the stream's resolution class.
	Res video.Resolution
	// Frames is the number of frames transcoded.
	Frames int
	// Violations counts frames whose windowed FPS fell below the target;
	// ViolationPct is the paper's Delta metric.
	Violations   int
	ViolationPct float64
	// DynEnergyJ is the session's share of the dynamic energy (idle power
	// is not attributed to sessions).
	DynEnergyJ float64
	// Averages over all frames.
	AvgFPS         float64
	AvgPSNRdB      float64
	AvgBitrateMbps float64
	AvgThreads     float64
	AvgFreqGHz     float64
	AvgQP          float64
	// Trace holds per-frame observations when CollectTrace was set.
	Trace []Observation
}

// Result is the outcome of an engine run.
type Result struct {
	// DurationSec is the total simulated time.
	DurationSec float64
	// EnergyJ integrates the noise-free package power over the run.
	EnergyJ float64
	// AvgPowerW is EnergyJ / DurationSec.
	AvgPowerW float64
	// TempMaxC and TempAvgC report package temperature when the spec
	// enables the thermal model (zero otherwise).
	TempMaxC float64
	TempAvgC float64
	// Sessions holds one entry per configured session, in order.
	Sessions []SessionResult
}

// Engine simulates a set of sessions sharing one server.
type Engine struct {
	server   *platform.Server
	model    hevc.Model
	sessions []*session
	rng      *rand.Rand
	now      float64
	energy   float64
	thermal  *platform.ThermalState
}

// NewEngine builds an engine over the given platform spec and encoder
// model. The seed drives all stochastic parts owned by the engine (power
// metering and encoder noise); video sources carry their own rngs.
func NewEngine(spec platform.Spec, model hevc.Model, seed int64) (*Engine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	srv, err := platform.NewServer(spec, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	e := &Engine{server: srv, model: model, rng: rng}
	if spec.Thermal.Enabled {
		ts, err := platform.NewThermalState(spec.Thermal)
		if err != nil {
			return nil, err
		}
		e.thermal = ts
	}
	return e, nil
}

// Server exposes the platform (used by controllers needing spec data).
func (e *Engine) Server() *platform.Server { return e.server }

// AddSession registers a session before Run. It returns the session id.
func (e *Engine) AddSession(cfg SessionConfig) (int, error) {
	if cfg.Source == nil {
		return 0, fmt.Errorf("transcode: session needs a video source")
	}
	if cfg.Controller == nil {
		return 0, fmt.Errorf("transcode: session needs a controller")
	}
	if cfg.FrameBudget < 1 {
		return 0, fmt.Errorf("transcode: frame budget %d < 1", cfg.FrameBudget)
	}
	if err := cfg.Initial.Validate(); err != nil {
		return 0, fmt.Errorf("transcode: initial settings: %w", err)
	}
	if cfg.TargetFPS == 0 {
		cfg.TargetFPS = DefaultTargetFPS
	}
	if cfg.TargetFPS < 0 {
		return 0, fmt.Errorf("transcode: negative target FPS %g", cfg.TargetFPS)
	}
	if cfg.StartAtSec < 0 {
		return 0, fmt.Errorf("transcode: negative start time %g", cfg.StartAtSec)
	}
	preset := hevc.PresetFor(cfg.Source.Res())
	if cfg.Preset != nil {
		preset = *cfg.Preset
	}
	enc, err := hevc.NewEncoder(cfg.Source.Res(), preset, e.model, rand.New(rand.NewSource(e.rng.Int63())))
	if err != nil {
		return 0, err
	}
	id := len(e.sessions)
	e.sessions = append(e.sessions, &session{
		cfg:         cfg,
		id:          id,
		enc:         enc,
		settings:    cfg.Initial,
		firstAction: true,
	})
	return id, nil
}

// maxEventsPerFrame bounds the event loop against accidental livelock.
const maxEventsPerFrame = 64

// Run simulates until every session exhausts its frame budget and returns
// the aggregated result. A session that reaches its budget stops encoding
// and releases its resources (the user left).
func (e *Engine) Run() (*Result, error) { return e.run(false) }

// RunUntilAll simulates until every session has reached its frame budget,
// but — unlike Run — sessions that reach their budget keep transcoding
// until the last one catches up. This models a server whose streams
// continue beyond the measurement window, so contention stays constant
// and a measured window is never polluted by departed sessions.
func (e *Engine) RunUntilAll() (*Result, error) { return e.run(true) }

func (e *Engine) run(untilAll bool) (*Result, error) {
	if len(e.sessions) == 0 {
		return nil, fmt.Errorf("transcode: no sessions")
	}
	totalFrames := 0
	for _, s := range e.sessions {
		totalFrames += s.cfg.FrameBudget
	}
	maxEvents := totalFrames * maxEventsPerFrame

	for events := 0; ; events++ {
		if events > maxEvents {
			return nil, fmt.Errorf("transcode: event budget exhausted (%d events)", maxEvents)
		}
		if untilAll && e.allReachedBudget() {
			break
		}

		// Start frames for any session that needs one.
		active := e.startFrames(untilAll)
		if len(active) == 0 {
			// Nothing running: jump to the next arrival if one is
			// pending, otherwise the run is complete.
			if arrival := e.nextArrival(); !math.IsInf(arrival, 1) {
				idle := e.server.Spec().IdlePowerW
				e.energy += idle * (arrival - e.now)
				if e.thermal != nil {
					e.thermal.Advance(idle, arrival-e.now)
				}
				e.now = arrival
				continue
			}
			break
		}

		// Evaluate the platform for the current allocations.
		loads := make([]platform.SessionLoad, len(active))
		for i, s := range active {
			loads[i] = platform.SessionLoad{
				Threads: s.settings.Threads,
				FreqGHz: s.settings.FreqGHz,
				Speedup: s.enc.Speedup(s.settings.Threads),
			}
		}
		snap, err := e.server.Evaluate(loads)
		if err != nil {
			return nil, fmt.Errorf("transcode: t=%.3f: %w", e.now, err)
		}

		// Thermal throttling scales service and dynamic power together
		// while the package sits above the throttle point. The per-session
		// dynamic-power shares must scale by the same factor, or the
		// session energy accounting stops reconciling with package power.
		if e.thermal != nil && e.thermal.Throttled() {
			f := e.thermal.ThrottleFactor()
			for i := range snap.Rates {
				snap.Rates[i] *= f
				snap.DynPowerW[i] *= f
			}
			idle := e.server.Spec().IdlePowerW
			snap.PowerIdealW = idle + (snap.PowerIdealW-idle)*f
			snap.PowerW = idle + (snap.PowerW-idle)*f
		}

		// Advance to the next frame completion or session arrival,
		// whichever comes first.
		dt := math.Inf(1)
		for i, s := range active {
			if t := s.remaining / snap.Rates[i]; t < dt {
				dt = t
			}
		}
		if arrival := e.nextArrival(); arrival-e.now < dt {
			dt = arrival - e.now
			if dt < 0 {
				dt = 0
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return nil, fmt.Errorf("transcode: no progress at t=%.3f", e.now)
		}
		e.now += dt
		e.energy += snap.PowerIdealW * dt
		if e.thermal != nil {
			e.thermal.Advance(snap.PowerIdealW, dt)
		}

		const eps = 1e-9
		for i, s := range active {
			s.remaining -= snap.Rates[i] * dt
			s.dynEnergyJ += snap.DynPowerW[i] * dt
			if s.remaining <= eps*snap.Rates[i] {
				e.completeFrame(s, snap)
			}
		}
	}
	return e.buildResult(), nil
}

// allReachedBudget reports whether every session has transcoded at least
// its frame budget.
func (e *Engine) allReachedBudget() bool {
	for _, s := range e.sessions {
		if s.frames < s.cfg.FrameBudget {
			return false
		}
	}
	return true
}

// startFrames asks controllers for settings and pulls frames for sessions
// between frames; it returns the sessions that are actively encoding. In
// untilAll mode sessions run past their budget until everyone has reached
// theirs.
func (e *Engine) startFrames(untilAll bool) []*session {
	var active []*session
	for _, s := range e.sessions {
		if s.done || s.cfg.StartAtSec > e.now {
			continue
		}
		if s.remaining <= 0 { // needs a new frame
			if !untilAll && s.frames >= s.cfg.FrameBudget {
				s.done = true
				continue
			}
			e.beginFrame(s)
		}
		active = append(active, s)
	}
	return active
}

// nextArrival returns the earliest pending session arrival strictly after
// the current time, or +Inf when none is pending.
func (e *Engine) nextArrival() float64 {
	next := math.Inf(1)
	for _, s := range e.sessions {
		if !s.done && s.cfg.StartAtSec > e.now && s.cfg.StartAtSec < next {
			next = s.cfg.StartAtSec
		}
	}
	return next
}

// beginFrame consults the controller, applies validated settings and draws
// the next frame's content and quality.
func (e *Engine) beginFrame(s *session) {
	proposed := s.cfg.Controller.OnFrameStart(FrameStart{
		SessionID:  s.id,
		FrameIndex: s.frameIdx,
		Time:       e.now,
		Current:    s.settings,
	})
	s.settings = e.sanitize(s, proposed)

	s.curFrame = s.cfg.Source.Next()
	work, err := s.enc.FrameWork(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		// sanitize guarantees a valid QP; a failure here means the source
		// produced an invalid frame, which is a programming error.
		panic(err)
	}
	s.remaining = work
	s.frameStart = e.now
	psnr, bits, err := s.enc.FrameQuality(s.settings.QP, s.curFrame.Complexity)
	if err != nil {
		panic(err)
	}
	s.curPSNR, s.curBits = psnr, bits
}

// sanitize clamps controller output to what the hardware and encoder
// accept, so a buggy or exploring controller cannot wedge the engine.
func (e *Engine) sanitize(s *session, p Settings) Settings {
	if p.QP < hevc.MinQP {
		p.QP = hevc.MinQP
	}
	if p.QP > hevc.MaxQP {
		p.QP = hevc.MaxQP
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	if max := e.server.Spec().LogicalCPUs(); p.Threads > max {
		p.Threads = max
	}
	p.FreqGHz = e.server.Spec().Nearest(p.FreqGHz)
	return p
}

// completeFrame books metrics and notifies the controller.
func (e *Engine) completeFrame(s *session, snap platform.Snapshot) {
	dur := e.now - s.frameStart
	if dur <= 0 {
		dur = 1e-9
	}
	s.durations[s.nDur%fpsWindow] = dur
	s.nDur++

	n := s.nDur
	if n > fpsWindow {
		n = fpsWindow
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.durations[i]
	}
	fps := float64(n) / sum

	obs := Observation{
		SessionID:    s.id,
		FrameIndex:   s.frameIdx,
		Time:         e.now,
		DurationSec:  dur,
		FPS:          fps,
		InstFPS:      1 / dur,
		PSNRdB:       s.curPSNR,
		BitrateMbps:  s.curBits * s.cfg.TargetFPS / 1e6,
		PowerW:       snap.PowerW,
		OverCap:      e.server.OverCap(snap.PowerW),
		Settings:     s.settings,
		Complexity:   s.curFrame.Complexity,
		SceneChange:  s.curFrame.SceneChange,
		SequenceName: s.cfg.Source.Sequence().Name,
	}

	s.frames++
	s.frameIdx++
	s.remaining = 0
	if fps < s.cfg.TargetFPS {
		s.violations++
	}
	s.sumFPS += fps
	s.sumPSNR += s.curPSNR
	s.sumBitrate += obs.BitrateMbps
	s.sumThreads += float64(s.settings.Threads)
	s.sumFreq += s.settings.FreqGHz
	s.sumQP += float64(s.settings.QP)
	if s.cfg.CollectTrace {
		s.trace = append(s.trace, obs)
	}
	s.cfg.Controller.OnFrameDone(obs)
}

func (e *Engine) buildResult() *Result {
	res := &Result{DurationSec: e.now, EnergyJ: e.energy}
	if e.now > 0 {
		res.AvgPowerW = e.energy / e.now
	}
	if e.thermal != nil {
		res.TempMaxC = e.thermal.MaxC()
		res.TempAvgC = e.thermal.AvgC()
	}
	for _, s := range e.sessions {
		sr := SessionResult{
			ID:         s.id,
			Name:       s.cfg.Controller.Name(),
			Res:        s.cfg.Source.Res(),
			Frames:     s.frames,
			Violations: s.violations,
			DynEnergyJ: s.dynEnergyJ,
			Trace:      s.trace,
		}
		if s.frames > 0 {
			f := float64(s.frames)
			sr.ViolationPct = 100 * float64(s.violations) / f
			sr.AvgFPS = s.sumFPS / f
			sr.AvgPSNRdB = s.sumPSNR / f
			sr.AvgBitrateMbps = s.sumBitrate / f
			sr.AvgThreads = s.sumThreads / f
			sr.AvgFreqGHz = s.sumFreq / f
			sr.AvgQP = s.sumQP / f
		}
		res.Sessions = append(res.Sessions, sr)
	}
	return res
}
