package transcode_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mamut/internal/baseline"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

func migSequence(res video.Resolution, name string) *video.Sequence {
	return &video.Sequence{
		Name: name, Res: res, Frames: 600, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.5, MeanSceneLen: 48,
	}
}

// migEngine builds an engine with n sessions whose sources and
// controllers all support migration. Construction is fully determined by
// seed, so two calls build bit-identical engines.
func migEngine(t *testing.T, n int, seed int64) *transcode.Engine {
	t.Helper()
	spec := platform.DefaultSpec()
	eng, err := transcode.NewEngine(spec, hevc.DefaultModel(), seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := addMigSession(t, eng, i, seed); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func addMigSession(t *testing.T, eng *transcode.Engine, i int, seed int64) (int, error) {
	t.Helper()
	res := video.HR
	if i%2 == 1 {
		res = video.LR
	}
	spec := eng.Server().Spec()
	src, err := video.NewStatefulGenerator(migSequence(res, "mig"), seed*100+int64(i))
	if err != nil {
		t.Fatal(err)
	}
	initial := transcode.Settings{QP: 32, Threads: 2, FreqGHz: spec.MaxGHz()}
	hcfg := baseline.DefaultHeuristicConfig(res, spec, 6)
	ctrl, err := baseline.NewHeuristic(hcfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	return eng.AddSession(transcode.SessionConfig{
		Source:      src,
		Controller:  ctrl,
		Initial:     initial,
		FrameBudget: 120,
		StartAtSec:  float64(i) * 0.4,
	})
}

// TestExtractInjectSameEngineBitIdentical is the headline migration
// invariant: extracting a session and immediately injecting the unmodified
// state back into the same engine is bit-identical to never migrating —
// the whole Result (energy, durations, every per-session float) compares
// DeepEqual against a baseline engine that ran undisturbed.
func TestExtractInjectSameEngineBitIdentical(t *testing.T) {
	const seed = 41
	base := migEngine(t, 3, seed)
	mig := migEngine(t, 3, seed)

	for _, eng := range []*transcode.Engine{base, mig} {
		if err := eng.AdvanceTo(1.7); err != nil {
			t.Fatal(err)
		}
	}

	// Round-trip session 1 in place, including a JSON encode/decode leg to
	// prove serialization does not break the exact restore.
	st, err := mig.ExtractSession(1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := transcode.EncodeSessionState(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := transcode.DecodeSessionState(blob)
	if err != nil {
		t.Fatal(err)
	}
	id, err := mig.InjectSession(nil, nil, st2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("same-engine reinjection returned id %d, want 1", id)
	}

	for _, eng := range []*transcode.Engine{base, mig} {
		if err := eng.AdvanceTo(3.3); err != nil {
			t.Fatal(err)
		}
	}
	// Round-trip a second session after more events, this time without the
	// serialization leg.
	st, err = mig.ExtractSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mig.InjectSession(nil, nil, st); err != nil {
		t.Fatal(err)
	}

	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := mig.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip migrated result differs from never-migrated baseline:\n got %+v\nwant %+v", got, want)
	}
}

// TestExtractInjectCrossEngine moves a session mid-stream onto a second
// engine and checks the stream continues: the frame cursor advances from
// where it stopped, the budget completes on the destination, and the
// accumulators carry over.
func TestExtractInjectCrossEngine(t *testing.T) {
	const seed = 77
	src := migEngine(t, 2, seed)
	if err := src.AdvanceTo(2.5); err != nil {
		t.Fatal(err)
	}
	st, err := src.ExtractSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Running || st.Frames == 0 {
		t.Fatalf("expected a mid-stream running session, got %+v", st)
	}

	dst, err := transcode.NewEngine(platform.DefaultSpec(), hevc.DefaultModel(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AdvanceTo(src.Now()); err != nil {
		t.Fatal(err)
	}
	spec := dst.Server().Spec()
	newSrc, err := video.NewStatefulGenerator(migSequence(st.Res, "mig"), 1)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := baseline.DefaultHeuristicConfig(st.Res, spec, 6)
	ctrl, err := baseline.NewHeuristic(hcfg, st.Initial)
	if err != nil {
		t.Fatal(err)
	}
	var ended []transcode.SessionEnd
	dst.OnSessionEnd(func(se transcode.SessionEnd) { ended = append(ended, se) })
	id, err := dst.InjectSession(newSrc, ctrl, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AdvanceTo(src.Now() + 60); err != nil {
		t.Fatal(err)
	}
	if len(ended) != 1 || ended[0].SessionID != id {
		t.Fatalf("migrated session did not depart on destination: %+v", ended)
	}
	if got := ended[0].Result.Frames; got != st.FrameBudget {
		t.Fatalf("migrated session completed %d frames, budget %d", got, st.FrameBudget)
	}
	if ended[0].Result.DynEnergyJ <= st.DynEnergyJ {
		t.Fatalf("dynamic energy did not carry over: end %g <= extract %g",
			ended[0].Result.DynEnergyJ, st.DynEnergyJ)
	}
	// The source engine must keep running without the extracted session:
	// the remaining session completes its own budget and departs.
	var srcEnded []transcode.SessionEnd
	src.OnSessionEnd(func(se transcode.SessionEnd) { srcEnded = append(srcEnded, se) })
	if err := src.AdvanceTo(src.Now() + 60); err != nil {
		t.Fatal(err)
	}
	if len(srcEnded) != 1 || srcEnded[0].SessionID != 1 {
		t.Fatalf("remaining session did not depart cleanly on source: %+v", srcEnded)
	}
}

// TestExtractSessionStallPenalty pins the migration-cost model: a stalled
// injection delays the in-flight frame's completion.
func TestExtractSessionStallPenalty(t *testing.T) {
	const seed = 9
	mkDst := func(stall float64) float64 {
		src := migEngine(t, 1, seed)
		if err := src.AdvanceTo(2.0); err != nil {
			t.Fatal(err)
		}
		st, err := src.ExtractSession(0)
		if err != nil {
			t.Fatal(err)
		}
		st.StallSec = stall
		dst, err := transcode.NewEngine(platform.DefaultSpec(), hevc.DefaultModel(), seed+5)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.AdvanceTo(src.Now()); err != nil {
			t.Fatal(err)
		}
		newSrc, err := video.NewStatefulGenerator(migSequence(st.Res, "mig"), 1)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := baseline.NewHeuristic(baseline.DefaultHeuristicConfig(st.Res, dst.Server().Spec(), 6), st.Initial)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.InjectSession(newSrc, ctrl, st); err != nil {
			t.Fatal(err)
		}
		return dst.NextEventTime()
	}
	plain := mkDst(0)
	stalled := mkDst(0.5)
	if stalled <= plain {
		t.Fatalf("stalled completion %g not later than plain %g", stalled, plain)
	}
	if diff := stalled - plain; diff < 0.4 || diff > 0.6 {
		t.Fatalf("0.5s stall shifted completion by %g", diff)
	}
}

// TestExtractSessionTerminalState pins the PR 3 terminal-state guard
// extension: after RunUntilAll the sessions are frozen mid-frame and
// extraction must be rejected with a clear error.
func TestExtractSessionTerminalState(t *testing.T) {
	eng := migEngine(t, 2, 3)
	if _, err := eng.RunUntilAll(); err != nil {
		t.Fatal(err)
	}
	_, err := eng.ExtractSession(0)
	if err == nil {
		t.Fatal("ExtractSession succeeded on a finished engine")
	}
	if !strings.Contains(err.Error(), "frozen mid-frame") || !strings.Contains(err.Error(), "terminal") {
		t.Fatalf("terminal-state error not descriptive: %v", err)
	}
}

// TestExtractSessionErrors covers the remaining rejection paths.
func TestExtractSessionErrors(t *testing.T) {
	eng := migEngine(t, 1, 5)
	if _, err := eng.ExtractSession(7); err == nil {
		t.Fatal("extraction of unknown id succeeded")
	}
	if _, err := eng.ExtractSession(-1); err == nil {
		t.Fatal("extraction of negative id succeeded")
	}

	// A source without snapshot support is rejected.
	spec := eng.Server().Spec()
	plain, err := video.NewGenerator(migSequence(video.HR, "mig"), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	id, err := eng.AddSession(transcode.SessionConfig{
		Source:      plain,
		Controller:  &transcode.Static{S: transcode.Settings{QP: 32, Threads: 1, FreqGHz: spec.MaxGHz()}},
		Initial:     transcode.Settings{QP: 32, Threads: 1, FreqGHz: spec.MaxGHz()},
		FrameBudget: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExtractSession(id); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("extraction with plain source: %v", err)
	}

	// Extracting twice is rejected, and the error names the cause.
	withState, err := video.NewStatefulGenerator(migSequence(video.HR, "mig"), 2)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := eng.AddSession(transcode.SessionConfig{
		Source:      withState,
		Controller:  &transcode.Static{S: transcode.Settings{QP: 32, Threads: 1, FreqGHz: spec.MaxGHz()}},
		Initial:     transcode.Settings{QP: 32, Threads: 1, FreqGHz: spec.MaxGHz()},
		FrameBudget: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExtractSession(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExtractSession(id2); err == nil || !strings.Contains(err.Error(), "already extracted") {
		t.Fatalf("double extraction: %v", err)
	}
}

// TestSessionStateDecodeRejectsCorruption mirrors the knowledge artifact
// corruption tests: truncated and bit-flipped payloads are rejected,
// valid ones round-trip bit-identically.
func TestSessionStateDecodeRejectsCorruption(t *testing.T) {
	eng := migEngine(t, 1, 11)
	if err := eng.AdvanceTo(1.5); err != nil {
		t.Fatal(err)
	}
	st, err := eng.ExtractSession(0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := transcode.EncodeSessionState(st)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := transcode.DecodeSessionState(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	for _, pos := range []int{len(blob) / 4, len(blob) / 2, len(blob) - 10} {
		bad := append([]byte(nil), blob...)
		switch bad[pos] {
		case '7':
			bad[pos] = '3'
		default:
			bad[pos] = '7'
		}
		if bytes.Equal(bad, blob) {
			continue
		}
		if _, err := transcode.DecodeSessionState(bad); err == nil {
			t.Fatalf("bit-flip at %d accepted", pos)
		}
	}

	back, err := transcode.DecodeSessionState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, st) {
		t.Fatalf("decoded state differs:\n got %+v\nwant %+v", back, st)
	}
	blob2, err := transcode.EncodeSessionState(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded state is not byte-identical")
	}
}

// FuzzSessionStateDecode feeds arbitrary bytes to the decoder: it must
// reject or return a state that validates — never panic, never return
// invalid state.
func FuzzSessionStateDecode(f *testing.F) {
	eng, err := transcode.NewEngine(platform.DefaultSpec(), hevc.DefaultModel(), 13)
	if err != nil {
		f.Fatal(err)
	}
	src, err := video.NewStatefulGenerator(migSequence(video.HR, "mig"), 3)
	if err != nil {
		f.Fatal(err)
	}
	spec := eng.Server().Spec()
	set := transcode.Settings{QP: 32, Threads: 2, FreqGHz: spec.MaxGHz()}
	id, err := eng.AddSession(transcode.SessionConfig{
		Source: src, Controller: &transcode.Static{S: set}, Initial: set, FrameBudget: 30,
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := eng.AdvanceTo(1); err != nil {
		f.Fatal(err)
	}
	st, err := eng.ExtractSession(id)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := transcode.EncodeSessionState(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/3])
	f.Add([]byte(`{"format_version":1,"sha256":"x","payload":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := transcode.DecodeSessionState(data)
		if err != nil {
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("decoder returned invalid state: %v", verr)
		}
	})
}
