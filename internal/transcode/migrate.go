package transcode

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
	"mamut/internal/xrand"
)

// Live session migration: ExtractSession freezes one session into a
// serializable SessionState; InjectSession resumes it mid-stream on
// another engine (or the same one). The state is complete — frame cursor,
// playlist/content process, per-session energy and duration accumulators,
// every rng stream, the controller's decision state, and the in-flight
// frame's completion anchor — so a migrated session continues as the same
// logical stream, deterministically.
//
// Extract immediately followed by Inject on the same engine is bit-exact
// to never migrating: extraction stashes the engine anchors it had to
// disturb (the lazy-settlement segment, the LoadAccount aggregates, the
// heap event), and re-injection of the unmodified state restores them
// verbatim. Cross-engine injection pays the honest settlement instead:
// the destination's accounting is exact for its own timeline, but a
// migrated fleet is a different physical scenario than an unmigrated one,
// so its floats legitimately differ.

// StatefulController is a Controller whose decision state can be frozen
// and restored, which is what makes its session migratable. The payload
// is opaque to the engine; RestoreControllerState is called on a
// freshly built controller of the same configuration.
type StatefulController interface {
	Controller
	// ControllerState freezes the complete decision state.
	ControllerState() ([]byte, error)
	// RestoreControllerState resumes from a ControllerState payload.
	RestoreControllerState(data []byte) error
}

// sessionFormatVersion is the current SessionState payload format.
// Decoders accept this version and older; newer payloads error cleanly.
const sessionFormatVersion = 1

// SessionState is a frozen, serializable session: everything InjectSession
// needs to resume the stream on another engine. All floats are finite, so
// the state round-trips bit-identically through encoding/json.
type SessionState struct {
	Version int `json:"format_version"`
	// ID is the session's id on the engine it was extracted from.
	ID int `json:"id"`
	// Res is the stream's resolution class.
	Res video.Resolution `json:"res"`

	// Session parameters (the SessionConfig minus source and controller,
	// which travel as opaque state payloads below).
	Initial       Settings     `json:"initial"`
	Preset        *hevc.Preset `json:"preset,omitempty"`
	BandwidthMbps float64      `json:"bandwidth_mbps"`
	TargetFPS     float64      `json:"target_fps"`
	FrameBudget   int          `json:"frame_budget"`
	StartAtSec    float64      `json:"start_at_sec"`
	CollectTrace  bool         `json:"collect_trace,omitempty"`

	// Stream cursor and in-flight frame. Running is false only for a
	// session extracted before its scheduled arrival; CompletionKey and
	// VNow anchor the in-flight frame's pending completion on the source
	// engine's virtual clock.
	Running       bool        `json:"running"`
	Settings      Settings    `json:"settings"`
	FrameIdx      int         `json:"frame_idx"`
	FrameStart    float64     `json:"frame_start"`
	CurFrame      video.Frame `json:"cur_frame"`
	CurPSNR       float64     `json:"cur_psnr"`
	CurBits       float64     `json:"cur_bits"`
	CompletionKey float64     `json:"completion_key"`
	VNow          float64     `json:"vnow"`

	// Accumulators.
	Durations   [fpsWindow]float64 `json:"durations"`
	DynEnergyJ  float64            `json:"dyn_energy_j"`
	Frames      int                `json:"frames"`
	Violations  int                `json:"violations"`
	SumFPS      float64            `json:"sum_fps"`
	SumPSNR     float64            `json:"sum_psnr"`
	SumBitrate  float64            `json:"sum_bitrate"`
	SumThreads  float64            `json:"sum_threads"`
	SumFreq     float64            `json:"sum_freq"`
	SumQP       float64            `json:"sum_qp"`
	FirstAction bool               `json:"first_action"`
	Trace       []Observation      `json:"trace,omitempty"`

	// Opaque sub-states: the content process (video.StatefulSource), the
	// controller (StatefulController) and the encoder noise stream.
	Source     json.RawMessage `json:"source"`
	Controller json.RawMessage `json:"controller"`
	EncoderRNG uint64          `json:"encoder_rng"`

	// StallSec is the migration cost: extra real-time the in-flight frame
	// is stalled at injection, modelling state transfer and stream
	// re-attachment. The migration coordinator sets it before injecting;
	// the lengthened frame duration counts against the SLO like any slow
	// frame. Extraction always leaves it zero.
	StallSec float64 `json:"stall_sec,omitempty"`
}

// Validate checks the state's internal consistency. It is called by
// InjectSession and DecodeSessionState, so a corrupted or hand-rolled
// payload fails loudly instead of desynchronising an engine.
func (st *SessionState) Validate() error {
	if st.Version < 0 || st.Version > sessionFormatVersion {
		return fmt.Errorf("transcode: session state: format version %d not supported (current %d)", st.Version, sessionFormatVersion)
	}
	if st.Res != video.HR && st.Res != video.LR {
		return fmt.Errorf("transcode: session state: unknown resolution %d", int(st.Res))
	}
	if err := st.Initial.Validate(); err != nil {
		return fmt.Errorf("transcode: session state: initial settings: %w", err)
	}
	if err := st.Settings.Validate(); err != nil {
		return fmt.Errorf("transcode: session state: settings: %w", err)
	}
	if st.FrameBudget < 1 {
		return fmt.Errorf("transcode: session state: frame budget %d < 1", st.FrameBudget)
	}
	if st.Frames < 0 || st.Frames >= st.FrameBudget {
		return fmt.Errorf("transcode: session state: %d frames done outside [0,%d)", st.Frames, st.FrameBudget)
	}
	if st.Violations < 0 || st.Violations > st.Frames {
		return fmt.Errorf("transcode: session state: %d violations outside [0,%d]", st.Violations, st.Frames)
	}
	if st.FrameIdx < st.Frames {
		return fmt.Errorf("transcode: session state: frame index %d below %d frames done", st.FrameIdx, st.Frames)
	}
	for _, v := range []struct {
		name string
		v    float64
		min  float64
	}{
		{"bandwidth", st.BandwidthMbps, 0},
		{"target fps", st.TargetFPS, math.SmallestNonzeroFloat64},
		{"start time", st.StartAtSec, 0},
		{"frame start", st.FrameStart, 0},
		{"current psnr", st.CurPSNR, 0},
		{"current bits", st.CurBits, 0},
		{"completion key", st.CompletionKey, 0},
		{"vnow", st.VNow, 0},
		{"dynamic energy", st.DynEnergyJ, 0},
		{"stall", st.StallSec, 0},
	} {
		if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < v.min {
			return fmt.Errorf("transcode: session state: %s %g invalid", v.name, v.v)
		}
	}
	for _, v := range []float64{st.SumFPS, st.SumPSNR, st.SumBitrate, st.SumThreads, st.SumFreq, st.SumQP} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("transcode: session state: non-finite accumulator %g", v)
		}
	}
	n := st.Frames
	if n > fpsWindow {
		n = fpsWindow
	}
	for i := 0; i < n; i++ {
		if d := st.Durations[i]; math.IsNaN(d) || math.IsInf(d, 0) || d <= 0 {
			return fmt.Errorf("transcode: session state: frame duration %g invalid", d)
		}
	}
	if st.Running {
		if st.CompletionKey < st.VNow {
			return fmt.Errorf("transcode: session state: completion key %g before virtual clock %g", st.CompletionKey, st.VNow)
		}
	} else if st.Frames != 0 || st.FrameIdx != 0 {
		return fmt.Errorf("transcode: session state: not running but %d frames at index %d", st.Frames, st.FrameIdx)
	}
	if len(st.Source) == 0 {
		return fmt.Errorf("transcode: session state: missing source state")
	}
	if len(st.Controller) == 0 {
		return fmt.Errorf("transcode: session state: missing controller state")
	}
	return nil
}

// sessionEnvelope is the durable encoding of a SessionState: the payload
// plus a checksum, mirroring the knowledge artifact format, so a
// truncated or bit-flipped transfer is rejected instead of resuming a
// corrupted stream.
type sessionEnvelope struct {
	Version int             `json:"format_version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// EncodeSessionState serialises a SessionState with an integrity checksum
// for transfer between processes. DecodeSessionState is the inverse.
func EncodeSessionState(st *SessionState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("transcode: encode session state: nil state")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("transcode: encode session state: %w", err)
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(sessionEnvelope{
		Version: sessionFormatVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// DecodeSessionState parses an EncodeSessionState artifact, verifying the
// checksum and validating the state.
func DecodeSessionState(data []byte) (*SessionState, error) {
	var env sessionEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("transcode: decode session state: %w", err)
	}
	if env.Version < 0 || env.Version > sessionFormatVersion {
		return nil, fmt.Errorf("transcode: decode session state: format version %d not supported (current %d)", env.Version, sessionFormatVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return nil, fmt.Errorf("transcode: decode session state: payload checksum mismatch (artifact corrupted or tampered with): have %s, recorded %s", got, env.SHA256)
	}
	st := new(SessionState)
	if err := json.Unmarshal(env.Payload, st); err != nil {
		return nil, fmt.Errorf("transcode: decode session state: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// extractStash holds everything ExtractSession disturbed, so an immediate
// re-injection of the unmodified state on the same engine can restore the
// exact pre-extraction floats (settling a segment in two steps is not
// bitwise the same as settling it in one; removing and re-adding a load
// does not restore the LoadAccount's running sums exactly).
type extractStash struct {
	gen      uint64 // e.stateGen at extraction; any later mutation invalidates
	id       int
	payload  []byte // canonical JSON of the state handed out
	sess     *session
	sessCopy session
	ev       event // the removed completion (running) or arrival event
	running  bool

	vnow, segStart, energy float64
	acct                   platform.LoadAccount
	thermal                platform.ThermalState
	hadThermal             bool
	totalBudget            int
}

// ExtractSession removes one live session from the engine and returns its
// frozen state. The session's resources are released (its load leaves the
// contention pool, its pending event is unscheduled) and its id is
// retired — ids are never reused, so event determinism is unaffected. The
// session's source and controller must support state snapshots
// (video.StatefulSource, StatefulController).
//
// Extraction settles the running segment first: the departing load
// contributed power and contention up to this instant, and the remaining
// sessions' accounting must reflect that.
func (e *Engine) ExtractSession(id int) (*SessionState, error) {
	if e.finished {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): sessions are frozen mid-frame in the terminal state and cannot be exported: %w", id, errFinished)
	}
	if id < 0 || id >= len(e.sessions) {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): no such session", id)
	}
	s := e.sessions[id]
	if s == nil {
		if e.extracted[id] {
			return nil, fmt.Errorf("transcode: ExtractSession(%d): session already extracted", id)
		}
		return nil, fmt.Errorf("transcode: ExtractSession(%d): session departed and was discarded", id)
	}
	if s.done {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): session already departed", id)
	}
	src, ok := s.cfg.Source.(video.StatefulSource)
	if !ok {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): video source %T does not support state snapshots", id, s.cfg.Source)
	}
	ctrl, ok := s.cfg.Controller.(StatefulController)
	if !ok {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): controller %q does not support migration", id, s.cfg.Controller.Name())
	}
	srcState, err := src.SourceState()
	if err != nil {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): %w", id, err)
	}
	ctrlState, err := ctrl.ControllerState()
	if err != nil {
		return nil, fmt.Errorf("transcode: ExtractSession(%d): %w", id, err)
	}

	stash := &extractStash{
		id: id, sess: s, sessCopy: *s, running: s.running,
		vnow: e.vnow, segStart: e.segStart, energy: e.energy,
		acct: *e.acct, totalBudget: e.totalBudget,
	}
	if e.thermal != nil {
		stash.thermal = *e.thermal
		stash.hadThermal = true
	}

	st := &SessionState{
		Version:       sessionFormatVersion,
		ID:            id,
		Res:           s.cfg.Source.Res(),
		Initial:       s.cfg.Initial,
		BandwidthMbps: s.cfg.BandwidthMbps,
		TargetFPS:     s.cfg.TargetFPS,
		FrameBudget:   s.cfg.FrameBudget,
		StartAtSec:    s.cfg.StartAtSec,
		CollectTrace:  s.cfg.CollectTrace,
		Settings:      s.settings,
		FrameIdx:      s.frameIdx,
		CurFrame:      s.curFrame,
		CurPSNR:       s.curPSNR,
		CurBits:       s.curBits,
		Durations:     s.durations,
		Frames:        s.frames,
		Violations:    s.violations,
		SumFPS:        s.sumFPS,
		SumPSNR:       s.sumPSNR,
		SumBitrate:    s.sumBitrate,
		SumThreads:    s.sumThreads,
		SumFreq:       s.sumFreq,
		SumQP:         s.sumQP,
		FirstAction:   s.firstAction,
		Trace:         s.trace,
		Source:        srcState,
		Controller:    ctrlState,
		EncoderRNG:    s.encSrc.State(),
	}
	if s.cfg.Preset != nil {
		p := *s.cfg.Preset
		st.Preset = &p
	}

	if s.running {
		// Settle energy/thermal/virtual clock to now at the pre-removal
		// rates, then settle the session's own dynamic-energy integral.
		powerIdeal, speed := e.segRates()
		e.settle(e.now, powerIdeal, speed)
		s.dynEnergyJ += s.dynCoef * (e.vnow - s.vMark)
		s.vMark = e.vnow
		ev, ok := e.compl.removeByID(id)
		if !ok {
			// Unreachable: a running session always has a pending completion.
			return nil, fmt.Errorf("transcode: ExtractSession(%d): no pending completion", id)
		}
		stash.ev = ev
		if err := e.acct.Remove(s.load); err != nil {
			// Put the completion back: the engine is still consistent and
			// the caller sees the accounting mismatch as a plain error.
			e.compl.push(ev)
			return nil, fmt.Errorf("transcode: ExtractSession(%d): %w", id, err)
		}
		st.Running = true
		st.CompletionKey = ev.key
		st.VNow = e.vnow
		st.FrameStart = s.frameStart
	} else {
		ev, ok := e.arrivals.removeByID(id)
		if !ok {
			return nil, fmt.Errorf("transcode: ExtractSession(%d): no pending arrival", id)
		}
		stash.ev = ev
		st.StartAtSec = ev.key
	}
	st.DynEnergyJ = s.dynEnergyJ

	e.totalBudget -= s.cfg.FrameBudget - s.frames
	e.sessions[id] = nil
	if e.extracted == nil {
		e.extracted = make(map[int]bool)
	}
	e.extracted[id] = true
	e.stateGen++

	payload, err := json.Marshal(st)
	if err != nil {
		// Unreachable for the finite floats the engine produces; leave the
		// stash valid so the caller can at least re-inject.
		payload = nil
	}
	stash.gen = e.stateGen
	stash.payload = payload
	e.stash = stash
	return st, nil
}

// InjectSession resumes an extracted session on this engine. src and ctrl
// are freshly built counterparts of the originals (same sequence, same
// controller configuration); their mid-stream state is restored from the
// payload. The returned id is the session's id on this engine.
//
// When the state is injected back into the engine it was just extracted
// from — nothing having happened in between and the state unmodified —
// the engine restores its pre-extraction anchors verbatim, making the
// round-trip bit-identical to never migrating. Otherwise the in-flight
// frame's completion is re-anchored on this engine's virtual clock, plus
// StallSec of migration stall converted at the current clock speed.
func (e *Engine) InjectSession(src video.Source, ctrl Controller, st *SessionState) (int, error) {
	if e.finished {
		return 0, fmt.Errorf("transcode: InjectSession: %w", errFinished)
	}
	if st == nil {
		return 0, fmt.Errorf("transcode: InjectSession: nil session state")
	}
	if err := st.Validate(); err != nil {
		return 0, err
	}
	if e.stash != nil && e.stash.gen == e.stateGen && e.stash.id == st.ID && len(e.stash.payload) > 0 {
		if incoming, err := json.Marshal(st); err == nil && bytes.Equal(incoming, e.stash.payload) {
			e.undoExtract()
			return st.ID, nil
		}
	}
	if src == nil {
		return 0, fmt.Errorf("transcode: InjectSession: nil video source")
	}
	if ctrl == nil {
		return 0, fmt.Errorf("transcode: InjectSession: nil controller")
	}
	if src.Res() != st.Res {
		return 0, fmt.Errorf("transcode: InjectSession: source is %s, state is %s", src.Res(), st.Res)
	}
	ssrc, ok := src.(video.StatefulSource)
	if !ok {
		return 0, fmt.Errorf("transcode: InjectSession: video source %T does not support state snapshots", src)
	}
	if err := ssrc.RestoreSourceState(st.Source); err != nil {
		return 0, fmt.Errorf("transcode: InjectSession: %w", err)
	}
	sctrl, ok := ctrl.(StatefulController)
	if !ok {
		return 0, fmt.Errorf("transcode: InjectSession: controller %q does not support migration", ctrl.Name())
	}
	if err := sctrl.RestoreControllerState(st.Controller); err != nil {
		return 0, fmt.Errorf("transcode: InjectSession: %w", err)
	}

	preset := hevc.PresetFor(st.Res)
	if st.Preset != nil {
		preset = *st.Preset
	}
	encSrc := xrand.NewSource(0)
	encSrc.SetState(st.EncoderRNG)
	enc, err := hevc.NewEncoder(st.Res, preset, e.model, rand.New(encSrc))
	if err != nil {
		return 0, fmt.Errorf("transcode: InjectSession: %w", err)
	}

	id := len(e.sessions)
	s := &session{
		cfg: SessionConfig{
			Source:        src,
			Controller:    ctrl,
			Initial:       st.Initial,
			BandwidthMbps: st.BandwidthMbps,
			TargetFPS:     st.TargetFPS,
			FrameBudget:   st.FrameBudget,
			StartAtSec:    st.StartAtSec,
			CollectTrace:  st.CollectTrace,
		},
		id:          id,
		enc:         enc,
		encSrc:      encSrc,
		settings:    st.Settings,
		frameIdx:    st.FrameIdx,
		curFrame:    st.CurFrame,
		curPSNR:     st.CurPSNR,
		curBits:     st.CurBits,
		durations:   st.Durations,
		nDur:        st.Frames,
		dynEnergyJ:  st.DynEnergyJ,
		frames:      st.Frames,
		violations:  st.Violations,
		sumFPS:      st.SumFPS,
		sumPSNR:     st.SumPSNR,
		sumBitrate:  st.SumBitrate,
		sumThreads:  st.SumThreads,
		sumFreq:     st.SumFreq,
		sumQP:       st.SumQP,
		trace:       st.Trace,
		firstAction: st.FirstAction,
	}
	if st.Preset != nil {
		p := *st.Preset
		s.cfg.Preset = &p
	}

	if !st.Running {
		// Extracted before its arrival: schedule it like a fresh admission.
		at := st.StartAtSec
		if at < e.now {
			at = e.now
			s.cfg.StartAtSec = at
		}
		e.sessions = append(e.sessions, s)
		e.arrivals.push(event{key: at, id: id})
		e.totalBudget += st.FrameBudget - st.Frames
		e.stateGen++
		return id, nil
	}

	// Resume mid-frame. Settle the running segment at the pre-arrival
	// rates first — the incoming load only contends from this instant —
	// then anchor the in-flight completion on this engine's virtual clock:
	// the frame still needs (CompletionKey - VNow) virtual seconds.
	powerIdeal, speed := e.segRates()
	e.settle(e.now, powerIdeal, speed)
	load := platform.SessionLoad{
		Threads: st.Settings.Threads,
		FreqGHz: st.Settings.FreqGHz,
		Speedup: enc.Speedup(st.Settings.Threads),
	}
	if err := e.acct.Add(load); err != nil {
		return 0, fmt.Errorf("transcode: InjectSession: %w", err)
	}
	s.running = true
	s.load = load
	s.dynCoef = e.dynCoef(load)
	s.vMark = e.vnow
	s.frameStart = st.FrameStart
	if s.frameStart > e.now {
		s.frameStart = e.now
	}
	key := st.CompletionKey
	if e.vnow != st.VNow {
		key = e.vnow + (st.CompletionKey - st.VNow)
	}
	if st.StallSec > 0 {
		// Convert the real-time stall to virtual seconds at the clock
		// speed now in force (with the migrated load already resident).
		_, speedNow := e.segRates()
		key += st.StallSec * speedNow
	}
	e.sessions = append(e.sessions, s)
	e.compl.push(event{key: key, id: id})
	e.totalBudget += st.FrameBudget - st.Frames
	e.stateGen++
	return id, nil
}

// undoExtract reverts the engine to its exact pre-extraction state: the
// fast path for a same-engine extract→inject round-trip with nothing in
// between. Settlement anchors, account aggregates, the thermal state and
// the removed heap event are restored verbatim, so every future float is
// bit-identical to a run that never migrated. The clock (e.now) is left
// alone: parking it settles nothing, so a park between extract and inject
// is harmless.
func (e *Engine) undoExtract() {
	stash := e.stash
	e.stash = nil
	*stash.sess = stash.sessCopy
	e.sessions[stash.id] = stash.sess
	delete(e.extracted, stash.id)
	e.vnow = stash.vnow
	e.segStart = stash.segStart
	e.energy = stash.energy
	if stash.hadThermal {
		*e.thermal = stash.thermal
	}
	*e.acct = stash.acct
	e.totalBudget = stash.totalBudget
	if stash.running {
		e.compl.push(stash.ev)
	} else {
		e.arrivals.push(stash.ev)
	}
	e.stateGen++
}
