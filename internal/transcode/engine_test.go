package transcode

import (
	"math"
	"math/rand"
	"testing"

	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
)

func testSource(t *testing.T, res video.Resolution, seed int64) video.Source {
	t.Helper()
	seq := &video.Sequence{
		Name: "test", Res: res, Frames: 100000, FrameRate: 24,
		BaseComplexity: 1.0, Dynamism: 0.0, MeanSceneLen: 1000,
	}
	src, err := video.NewGenerator(seq, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// quietModel removes measurement noise for analytic comparisons.
func quietModel() hevc.Model {
	m := hevc.DefaultModel()
	m.PSNRNoiseDB = 0
	m.BitsNoiseFrac = 0
	return m
}

func quietSpec() platform.Spec {
	s := platform.DefaultSpec()
	s.PowerNoiseW = 0
	return s
}

func TestEngineSingleSessionMatchesAnalyticModel(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 8, FreqGHz: 3.2}
	_, err = eng.AddSession(SessionConfig{
		Source:      testSource(t, video.HR, 1),
		Controller:  &Static{S: set},
		Initial:     set,
		FrameBudget: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	sr := res.Sessions[0]
	if sr.Frames != 50 {
		t.Errorf("frames = %d, want 50", sr.Frames)
	}
	// Uncontended: FPS should match the encoder's analytic time for the
	// mean complexity ~1.0 (dynamism 0 keeps complexity near base).
	enc, err := hevc.NewEncoder(video.HR, hevc.Ultrafast, quietModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := enc.EncodeSeconds(32, 8, 3.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wantFPS := 1 / sec
	if math.Abs(sr.AvgFPS-wantFPS)/wantFPS > 0.15 {
		t.Errorf("AvgFPS = %.2f, analytic %.2f", sr.AvgFPS, wantFPS)
	}
	if sr.AvgThreads != 8 || math.Abs(sr.AvgFreqGHz-3.2) > 1e-9 || sr.AvgQP != 32 {
		t.Errorf("averaged settings %+v wrong", sr)
	}
	// Power must match the ideal platform model for this load.
	srv, _ := platform.NewServer(quietSpec(), nil)
	snap, _ := srv.Evaluate([]platform.SessionLoad{{Threads: 8, FreqGHz: 3.2, Speedup: enc.Speedup(8)}})
	if math.Abs(res.AvgPowerW-snap.PowerIdealW) > 0.5 {
		t.Errorf("AvgPowerW = %.2f, want %.2f", res.AvgPowerW, snap.PowerIdealW)
	}
	if res.DurationSec <= 0 || res.EnergyJ <= 0 {
		t.Error("non-positive duration or energy")
	}
}

func TestEngineViolationAccounting(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 1 thread at 1.2 GHz cannot reach 24 FPS on HR: every frame violates.
	set := Settings{QP: 37, Threads: 1, FreqGHz: 1.2}
	if _, err := eng.AddSession(SessionConfig{
		Source:      testSource(t, video.HR, 3),
		Controller:  &Static{S: set},
		Initial:     set,
		FrameBudget: 30,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[0].ViolationPct != 100 {
		t.Errorf("violations = %.1f%%, want 100%%", res.Sessions[0].ViolationPct)
	}
	// And a fast configuration should have none.
	eng2, _ := NewEngine(quietSpec(), quietModel(), 2)
	fast := Settings{QP: 37, Threads: 12, FreqGHz: 3.2}
	if _, err := eng2.AddSession(SessionConfig{
		Source:      testSource(t, video.HR, 3),
		Controller:  &Static{S: fast},
		Initial:     fast,
		FrameBudget: 30,
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Sessions[0].ViolationPct != 0 {
		t.Errorf("fast config violations = %.1f%%, want 0%%", res2.Sessions[0].ViolationPct)
	}
}

func TestEngineContentionCouplesSessions(t *testing.T) {
	run := func(n int) *Result {
		eng, err := NewEngine(quietSpec(), quietModel(), 4)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 32, Threads: 12, FreqGHz: 3.2}
		for i := 0; i < n; i++ {
			if _, err := eng.AddSession(SessionConfig{
				Source:      testSource(t, video.HR, int64(10+i)),
				Controller:  &Static{S: set},
				Initial:     set,
				FrameBudget: 40,
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.Sessions[0].AvgFPS >= one.Sessions[0].AvgFPS {
		t.Errorf("contention did not reduce FPS: %.2f >= %.2f",
			four.Sessions[0].AvgFPS, one.Sessions[0].AvgFPS)
	}
	if four.AvgPowerW <= one.AvgPowerW {
		t.Errorf("more sessions should use more power: %.1f <= %.1f",
			four.AvgPowerW, one.AvgPowerW)
	}
}

func TestEngineTraceCollection(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 27, Threads: 4, FreqGHz: 2.6}
	if _, err := eng.AddSession(SessionConfig{
		Source:       testSource(t, video.LR, 6),
		Controller:   &Static{S: set},
		Initial:      set,
		FrameBudget:  25,
		CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Sessions[0].Trace
	if len(trace) != 25 {
		t.Fatalf("trace length = %d, want 25", len(trace))
	}
	prevTime := -1.0
	for i, obs := range trace {
		if obs.FrameIndex != i {
			t.Errorf("trace[%d].FrameIndex = %d", i, obs.FrameIndex)
		}
		if obs.Time <= prevTime {
			t.Errorf("trace times not increasing at %d", i)
		}
		prevTime = obs.Time
		if obs.PSNRdB < 20 || obs.PSNRdB > 55 {
			t.Errorf("trace[%d] PSNR %.1f implausible", i, obs.PSNRdB)
		}
		if obs.BitrateMbps <= 0 {
			t.Errorf("trace[%d] bitrate %.2f", i, obs.BitrateMbps)
		}
		if obs.SequenceName != "test" {
			t.Errorf("trace[%d] sequence %q", i, obs.SequenceName)
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 7)
	if err != nil {
		t.Fatal(err)
	}
	good := Settings{QP: 32, Threads: 4, FreqGHz: 2.6}
	src := testSource(t, video.HR, 8)
	cases := []SessionConfig{
		{Controller: &Static{S: good}, Initial: good, FrameBudget: 5},              // no source
		{Source: src, Initial: good, FrameBudget: 5},                               // no controller
		{Source: src, Controller: &Static{S: good}, Initial: good, FrameBudget: 0}, // no budget
		{Source: src, Controller: &Static{S: good}, Initial: Settings{QP: 99, Threads: 1, FreqGHz: 2.6}, FrameBudget: 5},
		{Source: src, Controller: &Static{S: good}, Initial: good, FrameBudget: 5, TargetFPS: -1},
	}
	for i, cfg := range cases {
		if _, err := eng.AddSession(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := eng.Run(); err == nil {
		t.Error("Run with no sessions succeeded")
	}
}

// wildController returns absurd settings; the engine must sanitize them
// rather than fail.
type wildController struct{ calls int }

func (w *wildController) Name() string { return "wild" }
func (w *wildController) OnFrameStart(fs FrameStart) Settings {
	w.calls++
	return Settings{QP: 500, Threads: 999, FreqGHz: 2.75}
}
func (w *wildController) OnFrameDone(Observation) {}

func TestEngineSanitizesControllerOutput(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 9)
	if err != nil {
		t.Fatal(err)
	}
	wc := &wildController{}
	if _, err := eng.AddSession(SessionConfig{
		Source:       testSource(t, video.HR, 10),
		Controller:   wc,
		Initial:      Settings{QP: 32, Threads: 4, FreqGHz: 2.6},
		FrameBudget:  10,
		CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if wc.calls != 10 {
		t.Errorf("controller called %d times, want 10", wc.calls)
	}
	for _, obs := range res.Sessions[0].Trace {
		if obs.Settings.QP != hevc.MaxQP {
			t.Errorf("QP sanitized to %d, want %d", obs.Settings.QP, hevc.MaxQP)
		}
		if obs.Settings.Threads != 32 {
			t.Errorf("threads sanitized to %d, want 32", obs.Settings.Threads)
		}
		if obs.Settings.FreqGHz != 2.6 && obs.Settings.FreqGHz != 2.9 {
			t.Errorf("freq sanitized to %g, want a ladder rung near 2.75", obs.Settings.FreqGHz)
		}
	}
}

// sequencedController records the alternation of start/done callbacks.
type sequencedController struct {
	t      *testing.T
	expect string // "start" or "done"
}

func (s *sequencedController) Name() string { return "seq" }
func (s *sequencedController) OnFrameStart(fs FrameStart) Settings {
	if s.expect != "start" {
		s.t.Errorf("OnFrameStart out of order at frame %d", fs.FrameIndex)
	}
	s.expect = "done"
	return fs.Current
}
func (s *sequencedController) OnFrameDone(Observation) {
	if s.expect != "done" {
		s.t.Error("OnFrameDone out of order")
	}
	s.expect = "start"
}

func TestEngineCallbackOrdering(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sc := &sequencedController{t: t, expect: "start"}
	if _, err := eng.AddSession(SessionConfig{
		Source:      testSource(t, video.LR, 12),
		Controller:  sc,
		Initial:     Settings{QP: 32, Threads: 2, FreqGHz: 2.3},
		FrameBudget: 20,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		eng, err := NewEngine(platform.DefaultSpec(), hevc.DefaultModel(), 42)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 32, Threads: 6, FreqGHz: 2.9}
		for i := 0; i < 2; i++ {
			if _, err := eng.AddSession(SessionConfig{
				Source:      testSource(t, video.HR, 100),
				Controller:  &Static{S: set},
				Initial:     set,
				FrameBudget: 30,
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DurationSec != b.DurationSec || a.EnergyJ != b.EnergyJ {
		t.Error("engine runs with identical seeds diverged")
	}
	for i := range a.Sessions {
		if a.Sessions[i].AvgFPS != b.Sessions[i].AvgFPS {
			t.Errorf("session %d FPS diverged", i)
		}
	}
}

func TestEngineDifferentBudgets(t *testing.T) {
	// Sessions with different budgets: the short ones leave, freeing
	// capacity for the long one; all budgets are honoured exactly.
	eng, err := NewEngine(quietSpec(), quietModel(), 13)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 12, FreqGHz: 3.2}
	for i := 0; i < 3; i++ {
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.HR, int64(14+i)), Controller: &Static{S: set},
			Initial: set, FrameBudget: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.HR, 17), Controller: &Static{S: set},
		Initial: set, FrameBudget: 60, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[0].Frames != 10 || res.Sessions[3].Frames != 60 {
		t.Fatalf("frames = %d/%d, want 10/60", res.Sessions[0].Frames, res.Sessions[3].Frames)
	}
	// Four 12-thread HR encoders oversubscribe the machine; after the
	// other three leave, the survivor's frames speed up.
	trace := res.Sessions[3].Trace
	early := trace[5].DurationSec
	late := trace[55].DurationSec
	if late >= early {
		t.Errorf("frame duration did not drop after contention ended: %.4f >= %.4f", late, early)
	}
}

func TestSettingsValidate(t *testing.T) {
	if err := (Settings{QP: 32, Threads: 4, FreqGHz: 2.6}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Settings{
		{QP: -1, Threads: 4, FreqGHz: 2.6},
		{QP: 52, Threads: 4, FreqGHz: 2.6},
		{QP: 32, Threads: 0, FreqGHz: 2.6},
		{QP: 32, Threads: 4, FreqGHz: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad settings %d accepted", i)
		}
	}
}

func TestStaticController(t *testing.T) {
	s := &Static{S: Settings{QP: 22, Threads: 3, FreqGHz: 1.6}}
	if s.Name() != "static" {
		t.Error("name wrong")
	}
	got := s.OnFrameStart(FrameStart{Current: Settings{QP: 37, Threads: 1, FreqGHz: 3.2}})
	if got != s.S {
		t.Error("static controller did not return its settings")
	}
	s.OnFrameDone(Observation{}) // must not panic
}
