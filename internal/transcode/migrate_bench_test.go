package transcode_test

import (
	"fmt"
	"testing"

	"mamut/internal/baseline"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/transcode"
	"mamut/internal/video"
)

// benchEngine is migEngine for benchmarks: n migratable sessions, all
// started and advanced to mid-stream.
func benchEngine(b *testing.B, n int, seed int64) *transcode.Engine {
	b.Helper()
	spec := platform.DefaultSpec()
	eng, err := transcode.NewEngine(spec, hevc.DefaultModel(), seed)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res := video.HR
		if i%2 == 1 {
			res = video.LR
		}
		src, err := video.NewStatefulGenerator(migSequence(res, "mig"), seed*100+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		initial := transcode.Settings{QP: 32, Threads: 2, FreqGHz: spec.MaxGHz()}
		ctrl, err := baseline.NewHeuristic(baseline.DefaultHeuristicConfig(res, spec, 6), initial)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.AddSession(transcode.SessionConfig{
			Source:      src,
			Controller:  ctrl,
			Initial:     initial,
			FrameBudget: 1 << 30, // effectively unbounded: no departures mid-benchmark
			StartAtSec:  0,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.AdvanceTo(2.0); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkMigration measures one full live migration — extract, wire
// encode, wire decode, inject into another engine — ping-ponging a
// session between two engines with n resident sessions each, so the cost
// includes the completion-heap and load-accounting work at realistic
// occupancy.
func BenchmarkMigration(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("resident=%d", n), func(b *testing.B) {
			engs := [2]*transcode.Engine{benchEngine(b, n, 41), benchEngine(b, n, 42)}
			// Fresh shells per injection are part of a real migration's
			// cost; build their configs once.
			seqHR := migSequence(video.HR, "mig")
			spec := platform.DefaultSpec()
			initial := transcode.Settings{QP: 32, Threads: 2, FreqGHz: spec.MaxGHz()}
			hcfg := baseline.DefaultHeuristicConfig(video.HR, spec, 6)
			cur, id := 0, 0 // session 0 is HR
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := engs[cur].ExtractSession(id)
				if err != nil {
					b.Fatal(err)
				}
				wire, err := transcode.EncodeSessionState(st)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := transcode.DecodeSessionState(wire)
				if err != nil {
					b.Fatal(err)
				}
				src, err := video.NewStatefulGenerator(seqHR, 0)
				if err != nil {
					b.Fatal(err)
				}
				ctrl, err := baseline.NewHeuristic(hcfg, initial)
				if err != nil {
					b.Fatal(err)
				}
				cur = 1 - cur
				if id, err = engs[cur].InjectSession(src, ctrl, rt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
