package transcode

import (
	"math"
	"testing"

	"mamut/internal/platform"
	"mamut/internal/video"
)

// TestAddSessionMidRunMatchesPreRegistered: adding a session while the
// simulation is already running must be indistinguishable from having
// registered it with the same StartAtSec up front — the engine rng is
// consumed in AddSession order either way.
func TestAddSessionMidRunMatchesPreRegistered(t *testing.T) {
	set1 := Settings{QP: 32, Threads: 8, FreqGHz: 2.9}
	set2 := Settings{QP: 27, Threads: 6, FreqGHz: 3.2}
	mk := func(seed int64, s Settings, start float64) SessionConfig {
		return SessionConfig{
			Source: testSource(t, video.HR, seed), Controller: &Static{S: s},
			Initial: s, FrameBudget: 80, StartAtSec: start, CollectTrace: true,
		}
	}

	// Batch setup: both sessions registered before the run.
	batch, err := NewEngine(quietSpec(), quietModel(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.AddSession(mk(201, set1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := batch.AddSession(mk(202, set2, 2.5)); err != nil {
		t.Fatal(err)
	}
	want, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Live setup: the second session is added mid-run, before its arrival.
	live, err := NewEngine(quietSpec(), quietModel(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.AddSession(mk(201, set1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := live.AddSession(mk(202, set2, 2.5)); err != nil {
		t.Fatal(err)
	}
	if err := live.AdvanceTo(1.0); err != nil {
		t.Fatal(err)
	}
	if live.Now() != 1.0 {
		t.Fatalf("Now() = %g after AdvanceTo(1)", live.Now())
	}
	got, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}
	// AdvanceTo splits the energy integral at t=1 but changes no event, so
	// the runs agree bit-for-bit except for that one extra FP rounding.
	compareToGolden(t, toGolden(want), got, 1e-12)

	// A mid-run add whose StartAtSec already passed joins immediately.
	lateAdd, err := NewEngine(quietSpec(), quietModel(), 78)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lateAdd.AddSession(mk(203, set1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := lateAdd.AdvanceTo(2.0); err != nil {
		t.Fatal(err)
	}
	id, err := lateAdd.AddSession(mk(204, set2, 0.5)) // in the past
	if err != nil {
		t.Fatal(err)
	}
	res, err := lateAdd.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := res.Sessions[id].Trace[0]
	if first.Time < 2.0 {
		t.Errorf("late-added session completed a frame at %.3fs, before it was added", first.Time)
	}
	if res.Sessions[id].Frames != 80 {
		t.Errorf("late-added session frames = %d, want 80", res.Sessions[id].Frames)
	}
}

// TestOnSessionEndHook: departures fire the hook exactly once per
// session, in completion order, with the departure time matching the last
// trace observation; RunUntilAll never fires it (nobody departs).
func TestOnSessionEndHook(t *testing.T) {
	build := func() *Engine {
		eng, err := NewEngine(quietSpec(), quietModel(), 81)
		if err != nil {
			t.Fatal(err)
		}
		set := Settings{QP: 32, Threads: 6, FreqGHz: 2.9}
		for i, budget := range []int{30, 60, 90} {
			if _, err := eng.AddSession(SessionConfig{
				Source: testSource(t, video.HR, int64(82+i)), Controller: &Static{S: set},
				Initial: set, FrameBudget: budget, CollectTrace: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	eng := build()
	var ends []SessionEnd
	eng.OnSessionEnd(func(end SessionEnd) { ends = append(ends, end) })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(ends))
	}
	prev := 0.0
	seen := map[int]bool{}
	for _, end := range ends {
		if end.Time < prev {
			t.Errorf("departures out of order at t=%g", end.Time)
		}
		prev = end.Time
		if seen[end.SessionID] {
			t.Errorf("session %d departed twice", end.SessionID)
		}
		seen[end.SessionID] = true
		sr := res.Sessions[end.SessionID]
		if end.Frames != sr.Frames {
			t.Errorf("session %d hook frames %d != result %d", end.SessionID, end.Frames, sr.Frames)
		}
		if last := sr.Trace[len(sr.Trace)-1].Time; end.Time != last {
			t.Errorf("session %d departed at %g, last frame at %g", end.SessionID, end.Time, last)
		}
		if end.Res != video.HR {
			t.Errorf("session %d hook res %v", end.SessionID, end.Res)
		}
	}

	all := build()
	fired := 0
	all.OnSessionEnd(func(SessionEnd) { fired++ })
	if _, err := all.RunUntilAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("RunUntilAll fired the departure hook %d times", fired)
	}
}

// TestAdvanceToChunksMatchSingleRun: stepping the simulation through many
// AdvanceTo calls must process the same events as one continuous run; the
// chunk boundaries only split the energy/thermal integration segments.
func TestAdvanceToChunksMatchSingleRun(t *testing.T) {
	spec := quietSpec()
	spec.Thermal = DefaultThermalForTest()
	build := func() *Engine {
		eng, err := NewEngine(spec, quietModel(), 85)
		if err != nil {
			t.Fatal(err)
		}
		sets := []Settings{
			{QP: 32, Threads: 10, FreqGHz: 3.2},
			{QP: 27, Threads: 8, FreqGHz: 2.6},
			{QP: 37, Threads: 4, FreqGHz: 2.3},
		}
		for i, set := range sets {
			if _, err := eng.AddSession(SessionConfig{
				Source: testSource(t, video.HR, int64(86+i)), Controller: &Static{S: set},
				Initial: set, FrameBudget: 100, StartAtSec: float64(i) * 1.3,
				CollectTrace: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	whole := build()
	want, err := whole.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Chunk strictly inside the run: parking the clock beyond the last
	// event would (correctly) extend the duration with idle time.
	chunked := build()
	for step := 0.7; step < want.DurationSec; step += 0.7 {
		if err := chunked.AdvanceTo(step); err != nil {
			t.Fatal(err)
		}
		if chunked.Now() != step {
			t.Fatalf("Now() = %g after AdvanceTo(%g)", chunked.Now(), step)
		}
	}
	got, err := chunked.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Chunking splits FP reductions; events themselves are identical.
	compareToGolden(t, toGolden(want), got, 1e-9)
	if got.TempMaxC <= spec.Thermal.AmbientC {
		t.Error("thermal tracking lost across AdvanceTo chunks")
	}
	if math.Abs(got.TempMaxC-want.TempMaxC) > 0.5 {
		t.Errorf("chunked max temp %.2fC far from continuous %.2fC", got.TempMaxC, want.TempMaxC)
	}
}

// TestHookDrivenAddSession: an OnSessionEnd hook that immediately refills
// the server with a fresh session — the continuous-churn pattern the serve
// layer builds on.
func TestHookDrivenAddSession(t *testing.T) {
	eng, err := NewEngine(quietSpec(), quietModel(), 91)
	if err != nil {
		t.Fatal(err)
	}
	set := Settings{QP: 32, Threads: 6, FreqGHz: 2.9}
	if _, err := eng.AddSession(SessionConfig{
		Source: testSource(t, video.LR, 92), Controller: &Static{S: set},
		Initial: set, FrameBudget: 40, CollectTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	refills := 0
	eng.OnSessionEnd(func(end SessionEnd) {
		if refills >= 2 {
			return
		}
		refills++
		if _, err := eng.AddSession(SessionConfig{
			Source: testSource(t, video.LR, int64(93+refills)), Controller: &Static{S: set},
			Initial: set, FrameBudget: 40, StartAtSec: end.Time, CollectTrace: true,
		}); err != nil {
			t.Errorf("refill add failed: %v", err)
		}
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 3 {
		t.Fatalf("sessions = %d, want 3 (1 seed + 2 refills)", len(res.Sessions))
	}
	for i, sr := range res.Sessions {
		if sr.Frames != 40 {
			t.Errorf("session %d frames = %d, want 40", i, sr.Frames)
		}
	}
	// Refill i starts where its predecessor ended.
	for i := 1; i < 3; i++ {
		prevEnd := res.Sessions[i-1].Trace[39].Time
		firstDone := res.Sessions[i].Trace[0].Time
		if firstDone <= prevEnd {
			t.Errorf("refill %d completed a frame at %g, before predecessor ended at %g", i, firstDone, prevEnd)
		}
	}
}

// DefaultThermalForTest returns a fast-response thermal spec that never
// throttles, so AdvanceTo chunk boundaries stay pure integration splits.
func DefaultThermalForTest() platform.ThermalSpec {
	ts := platform.DefaultThermalSpec()
	ts.TauSec = 5
	ts.ThrottleC = 300
	return ts
}
