package config

import (
	"bytes"
	"strings"
	"testing"

	"mamut/internal/experiments"
)

func TestDefaultRoundTrip(t *testing.T) {
	f := Default()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform.PhysicalCores() != f.Platform.PhysicalCores() {
		t.Error("platform not round-tripped")
	}
	if got.Encoder.CyclesPerPixelUltrafast != f.Encoder.CyclesPerPixelUltrafast {
		t.Error("encoder not round-tripped")
	}
	if len(got.Sequences) != len(f.Sequences) {
		t.Error("sequences not round-tripped")
	}
	if *got.Experiment.Repetitions != *f.Experiment.Repetitions {
		t.Error("experiment params not round-tripped")
	}
}

func TestApplyOverlays(t *testing.T) {
	reps := 2
	warmup := 100
	measure := 50
	seed := int64(9)
	f := &File{Experiment: &ExperimentParams{
		Seed: &seed, Repetitions: &reps, WarmupFrames: &warmup, MeasureFrames: &measure,
	}}
	opts, err := f.Apply(experiments.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 9 || opts.Repetitions != 2 || opts.WarmupFrames != 100 || opts.MeasureFrames != 50 {
		t.Errorf("apply result %+v", opts)
	}
	// Sections absent: defaults kept.
	if opts.Spec.PhysicalCores() != 16 || opts.Catalog.Len() != 9 {
		t.Error("absent sections overwrote defaults")
	}
}

func TestApplyCustomCatalog(t *testing.T) {
	in := `{"sequences":[{"Name":"custom","Res":0,"Frames":100,"FrameRate":24,"BaseComplexity":1,"Dynamism":0.4,"MeanSceneLen":60}]}`
	f, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := f.Apply(experiments.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Catalog.Len() != 1 {
		t.Fatalf("catalog size %d, want 1", opts.Catalog.Len())
	}
	if _, err := opts.Catalog.Get("custom"); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	bad := []string{
		"not json",
		`{"unknown_field": 1}`,
		`{"experiment":{"repetitions":0}}`,
		`{"experiment":{"measure_frames":0}}`,
		`{"sequences":[{"Name":"","Res":0,"Frames":1,"FrameRate":24,"BaseComplexity":1,"Dynamism":0,"MeanSceneLen":10}]}`,
		`{"platform":{"Sockets":0}}`,
	}
	for i, in := range bad {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLoadPathMissingFile(t *testing.T) {
	if _, err := LoadPath("/nonexistent/config.json"); err == nil {
		t.Error("missing file accepted")
	}
}
