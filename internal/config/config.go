// Package config loads and saves the simulator's calibration and
// experiment parameters as JSON, so a deployment can re-calibrate the
// platform/encoder models (DESIGN.md S6) or change the experiment
// protocol without recompiling.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mamut/internal/experiments"
	"mamut/internal/hevc"
	"mamut/internal/platform"
	"mamut/internal/video"
)

// ExperimentParams are the protocol knobs of experiments.Options that make
// sense in a file (the catalog and models are configured separately).
type ExperimentParams struct {
	Seed          *int64 `json:"seed,omitempty"`
	Repetitions   *int   `json:"repetitions,omitempty"`
	WarmupFrames  *int   `json:"warmup_frames,omitempty"`
	MeasureFrames *int   `json:"measure_frames,omitempty"`
}

// File is the on-disk configuration. Every section is optional; absent
// sections keep their defaults.
type File struct {
	// Platform overrides the server model.
	Platform *platform.Spec `json:"platform,omitempty"`
	// Encoder overrides the encoder model.
	Encoder *hevc.Model `json:"encoder,omitempty"`
	// Sequences replaces the video catalog when non-empty.
	Sequences []video.Sequence `json:"sequences,omitempty"`
	// Experiment overrides protocol knobs.
	Experiment *ExperimentParams `json:"experiment,omitempty"`
}

// Load parses a configuration from r and validates every present section.
func Load(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: parse: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// LoadPath loads a configuration file from disk.
func LoadPath(path string) (*File, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer file.Close()
	return Load(file)
}

// Save writes the configuration as indented JSON.
func (f *File) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("config: save: %w", err)
	}
	return nil
}

// Validate checks every present section.
func (f *File) Validate() error {
	if f.Platform != nil {
		if err := f.Platform.Validate(); err != nil {
			return err
		}
	}
	if f.Encoder != nil {
		if err := f.Encoder.Validate(); err != nil {
			return err
		}
	}
	for i := range f.Sequences {
		if err := f.Sequences[i].Validate(); err != nil {
			return fmt.Errorf("config: sequence %d: %w", i, err)
		}
	}
	if e := f.Experiment; e != nil {
		if e.Repetitions != nil && *e.Repetitions < 1 {
			return fmt.Errorf("config: repetitions %d < 1", *e.Repetitions)
		}
		if e.WarmupFrames != nil && *e.WarmupFrames < 0 {
			return fmt.Errorf("config: warmup frames %d < 0", *e.WarmupFrames)
		}
		if e.MeasureFrames != nil && *e.MeasureFrames < 1 {
			return fmt.Errorf("config: measure frames %d < 1", *e.MeasureFrames)
		}
	}
	return nil
}

// Apply overlays the file's sections onto opts and returns the result.
func (f *File) Apply(opts experiments.Options) (experiments.Options, error) {
	if f.Platform != nil {
		opts.Spec = *f.Platform
	}
	if f.Encoder != nil {
		opts.Model = *f.Encoder
	}
	if len(f.Sequences) > 0 {
		seqs := make([]*video.Sequence, len(f.Sequences))
		for i := range f.Sequences {
			seqs[i] = &f.Sequences[i]
		}
		catalog, err := video.NewCatalog(seqs...)
		if err != nil {
			return opts, err
		}
		opts.Catalog = catalog
	}
	if e := f.Experiment; e != nil {
		if e.Seed != nil {
			opts.Seed = *e.Seed
		}
		if e.Repetitions != nil {
			opts.Repetitions = *e.Repetitions
		}
		if e.WarmupFrames != nil {
			opts.WarmupFrames = *e.WarmupFrames
		}
		if e.MeasureFrames != nil {
			opts.MeasureFrames = *e.MeasureFrames
		}
	}
	if err := opts.Validate(); err != nil {
		return opts, err
	}
	return opts, nil
}

// Default returns a File capturing the repository's default calibration —
// useful as a starting point for custom configurations (`-dump-config`).
func Default() *File {
	spec := platform.DefaultSpec()
	model := hevc.DefaultModel()
	var seqs []video.Sequence
	cat := video.DefaultCatalog()
	for _, name := range cat.Names() {
		s, err := cat.Get(name)
		if err == nil {
			seqs = append(seqs, *s)
		}
	}
	opts := experiments.DefaultOptions()
	return &File{
		Platform:  &spec,
		Encoder:   &model,
		Sequences: seqs,
		Experiment: &ExperimentParams{
			Seed:          &opts.Seed,
			Repetitions:   &opts.Repetitions,
			WarmupFrames:  &opts.WarmupFrames,
			MeasureFrames: &opts.MeasureFrames,
		},
	}
}
